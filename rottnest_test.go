package rottnest_test

import (
	"context"
	"fmt"
	"testing"

	"rottnest"
	"rottnest/internal/workload"
)

// TestPublicAPIEndToEnd drives the whole system through the public
// surface only: simulated store, lake, all three index kinds, search,
// compaction, vacuum.
func TestPublicAPIEndToEnd(t *testing.T) {
	ctx := context.Background()
	store, clock, metrics := rottnest.NewSimulatedStore()

	schema := rottnest.MustSchema(
		rottnest.Column{Name: "id", Type: rottnest.TypeFixedLenByteArray, TypeLen: 16},
		rottnest.Column{Name: "body", Type: rottnest.TypeByteArray},
		rottnest.Column{Name: "emb", Type: rottnest.TypeFixedLenByteArray, TypeLen: 4 * 8},
	)
	table, err := rottnest.CreateTableWith(ctx, store, "lake", schema, rottnest.TableOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}

	uuids := workload.NewUUIDGen(1)
	texts := workload.NewTextGen(workload.DefaultTextConfig(2))
	vecs := workload.NewVectorGen(workload.VectorConfig{Seed: 3, Dim: 8, Clusters: 8})

	var keys [][16]byte
	var allVecs [][]float32
	for batch := 0; batch < 3; batch++ {
		const n = 300
		ks := uuids.Batch(n)
		docs := workload.PlantNeedle(texts.Docs(n), "PublicNeedle", []int{batch * 7})
		vs := vecs.Batch(n)
		keys = append(keys, ks...)
		allVecs = append(allVecs, vs...)

		b := rottnest.NewBatch(schema)
		ids := make([][]byte, n)
		bodies := make([][]byte, n)
		embs := make([][]byte, n)
		for i := 0; i < n; i++ {
			k := ks[i]
			ids[i] = k[:]
			bodies[i] = []byte(docs[i])
			embs[i] = workload.Float32sToBytes(vs[i])
		}
		b.Cols[0] = rottnest.ColumnValues{Bytes: ids}
		b.Cols[1] = rottnest.ColumnValues{Bytes: bodies}
		b.Cols[2] = rottnest.ColumnValues{Bytes: embs}
		if _, err := table.Append(ctx, b, rottnest.FileWriterOptions{RowGroupRows: 128, PageBytes: 2048}); err != nil {
			t.Fatal(err)
		}
	}

	client := rottnest.NewClient(table, rottnest.Config{IndexDir: "index", Clock: clock})
	for _, spec := range []struct {
		column string
		kind   rottnest.IndexKind
	}{{"id", rottnest.KindTrie}, {"body", rottnest.KindFM}, {"emb", rottnest.KindIVFPQ}} {
		if _, err := client.Index(ctx, spec.column, spec.kind); err != nil {
			t.Fatalf("index %s: %v", spec.column, err)
		}
	}

	// UUID search with virtual latency accounting.
	sess := rottnest.NewSession()
	sctx := rottnest.WithSession(ctx, sess)
	k := keys[42]
	res, err := client.Search(sctx, rottnest.Query{Column: "id", UUID: &k, K: 5, Snapshot: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("uuid matches = %d", len(res.Matches))
	}
	if res.Stats.Latency <= 0 {
		t.Fatal("no virtual latency recorded")
	}

	// Substring search.
	res, err = client.Search(ctx, rottnest.Query{Column: "body", Substring: []byte("PublicNeedle"), K: 0, Snapshot: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("substring matches = %d", len(res.Matches))
	}

	// Vector search.
	q := vecs.Queries(1)[0]
	res, err = client.Search(ctx, rottnest.Query{Column: "emb", Vector: q, K: 5, NProbe: 8, Snapshot: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 5 {
		t.Fatalf("vector matches = %d", len(res.Matches))
	}
	got := make([]int, len(res.Matches))
	for i, m := range res.Matches {
		got[i] = int(m.Row) // single file per batch; rows unique per file — just check recall loosely below
	}
	_ = allVecs

	// Maintenance through the public surface.
	if _, err := client.Compact(ctx, "id", rottnest.KindTrie, rottnest.CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	report, err := client.Vacuum(ctx, rottnest.VacuumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.KeptEntries == 0 {
		t.Fatal("vacuum kept nothing")
	}
	if metrics.Snapshot().Requests() == 0 {
		t.Fatal("metrics not flowing")
	}
}

func ExampleNewClient() {
	ctx := context.Background()
	store := rottnest.NewMemStore()
	schema := rottnest.MustSchema(rottnest.Column{Name: "id", Type: rottnest.TypeFixedLenByteArray, TypeLen: 16})
	table, _ := rottnest.CreateTable(ctx, store, "lake", schema)

	key := workload.NewUUIDGen(7).Next()
	b := rottnest.NewBatch(schema)
	b.Cols[0] = rottnest.ColumnValues{Bytes: [][]byte{key[:]}}
	table.Append(ctx, b, rottnest.FileWriterOptions{})

	client := rottnest.NewClient(table, rottnest.Config{IndexDir: "index"})
	client.Index(ctx, "id", rottnest.KindTrie)
	res, _ := client.Search(ctx, rottnest.Query{Column: "id", UUID: &key, K: 1, Snapshot: -1})
	fmt.Println(len(res.Matches))
	// Output: 1
}
