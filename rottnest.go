// Package rottnest is a Go implementation of Rottnest ("Rottnest:
// Indexing Data Lakes for Search", ICDE 2025): a bolt-on system that
// maintains lightweight, object-storage-resident search indices —
// high-cardinality UUID lookup, exact substring search, and vector
// nearest-neighbor search — on top of a Parquet-based transactional
// data lake.
//
// The library is self-contained: it ships its own object-store
// abstraction (in-memory simulated S3 and a directory-backed store),
// a Parquet-equivalent columnar format with both a traditional reader
// and Rottnest's page-granular optimized reader, a Delta-Lake-style
// transactional table format with deletion vectors, the three
// componentized index families, the lazy consistent-on-demand index
// protocol with its four APIs (index, search, compact, vacuum), both
// evaluation baselines, and the paper's TCO phase-diagram framework.
//
// # Store layering
//
// Object-store wrappers compose in one canonical order, innermost
// first: base → fault → retry → instrument → cache (see NewStack).
// The single-wrapper constructors are conveniences over that order;
// handing NewStack's outermost Store to CreateTable and NewClient
// gives every component the same substrate.
//
// # Observability
//
// Every protocol phase, index probe, in-situ page read, retry sleep,
// and store request reports into the obs subsystem: Client.Trace runs
// one search with a span tree attached ("EXPLAIN ANALYZE"; render it
// with RenderTrace), and Client.Metrics returns a MetricsSnapshot of
// every counter, gauge, and histogram (Prometheus text format via its
// WritePrometheus method).
//
// # Quick start
//
//	store := rottnest.NewMemStore()
//	schema := rottnest.MustSchema(rottnest.Column{
//		Name: "id", Type: rottnest.TypeFixedLenByteArray, TypeLen: 16,
//	})
//	table, _ := rottnest.CreateTable(ctx, store, "my-lake", schema)
//	// ... table.Append batches ...
//	client := rottnest.NewClient(table, rottnest.Config{IndexDir: "my-index"})
//	client.Index(ctx, "id", rottnest.KindTrie)
//	res, _ := client.Search(ctx, rottnest.Query{Column: "id", UUID: &key, K: 10, Snapshot: -1})
//
// See examples/ for runnable end-to-end programs and DESIGN.md for
// the architecture.
package rottnest

import (
	"context"
	"io"

	"rottnest/internal/adaptive"
	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/ingest"
	"rottnest/internal/insitu"
	"rottnest/internal/lake"
	"rottnest/internal/meta"
	"rottnest/internal/objectstore"
	"rottnest/internal/obs"
	"rottnest/internal/parquet"
	"rottnest/internal/shard"
	"rottnest/internal/simtime"
)

// Core client types. Client is the Rottnest handle offering the four
// protocol APIs: Index, Search, Compact, and Vacuum.
type (
	// Client is the Rottnest client (see core.Client).
	Client = core.Client
	// Config tunes a Client.
	Config = core.Config
	// Query describes one search.
	Query = core.Query
	// PartitionFilter prunes searched files by a structured-attribute
	// range (file-granular).
	PartitionFilter = core.PartitionFilter
	// Result is a search outcome.
	Result = core.Result
	// Stats summarizes a search's work.
	Stats = core.Stats
	// Match is one matching row.
	Match = insitu.Match
	// IndexEntry is one metadata-table row.
	IndexEntry = meta.IndexEntry
	// CompactOptions tunes index compaction.
	CompactOptions = core.CompactOptions
	// VacuumOptions tunes index garbage collection.
	VacuumOptions = core.VacuumOptions
	// VacuumReport summarizes a vacuum.
	VacuumReport = core.VacuumReport
	// IndexStatus describes one index's state vs the latest snapshot.
	IndexStatus = core.IndexStatus
	// IndexSpec names one maintained (column, kind) index.
	IndexSpec = core.IndexSpec
	// MaintainPolicy tunes the automated maintenance pass.
	MaintainPolicy = core.MaintainPolicy
	// MaintainReport summarizes one maintenance pass.
	MaintainReport = core.MaintainReport
)

// Compound query types: boolean AND/OR trees over the predicate kinds,
// executed by the multi-predicate planner (Client.SearchCompound).
type (
	// CompoundQuery is a search over a boolean predicate tree.
	CompoundQuery = core.CompoundQuery
	// Expr is one node of a predicate tree.
	Expr = core.Expr
	// Pred is one leaf predicate.
	Pred = core.Pred
	// Op discriminates Expr nodes.
	Op = core.Op
)

// Expr node kinds.
const (
	// OpLeaf is a single predicate.
	OpLeaf = core.OpLeaf
	// OpAnd is a conjunction of children.
	OpAnd = core.OpAnd
	// OpOr is a disjunction of children.
	OpOr = core.OpOr
)

// Predicate-tree constructors.
var (
	// And conjoins subtrees.
	And = core.And
	// Or disjoins subtrees.
	Or = core.Or
	// Leaf wraps one predicate as a tree.
	Leaf = core.Leaf
	// PredUUID is an exact 16-byte key predicate.
	PredUUID = core.PredUUID
	// PredSubstring is a substring predicate.
	PredSubstring = core.PredSubstring
	// PredRegex is a regular-expression predicate.
	PredRegex = core.PredRegex
	// PredVector is a ranked nearest-neighbour leaf.
	PredVector = core.PredVector
)

// Sharded serving tier: a ShardRouter partitions a table's snapshot
// into N contiguous file ranges, scatters every query to per-shard
// replica workers (hedging slow ones), merges the results into
// single-node order, and rate-limits tenants at the front door.
type (
	// ShardRouter is the scatter-gather front door (see shard.Router).
	ShardRouter = shard.Router
	// ShardOptions configures a ShardRouter.
	ShardOptions = shard.Options
	// ShardResult is a routed query outcome.
	ShardResult = shard.Result
	// ShardStats summarizes one routed query.
	ShardStats = shard.Stats
	// HedgeOptions tunes hedged replica requests.
	HedgeOptions = shard.HedgeOptions
	// AdmissionOptions tunes per-tenant token-bucket rate limits.
	AdmissionOptions = shard.AdmissionOptions
	// FileRange restricts a Query or CompoundQuery to a contiguous
	// path range of the snapshot — the shard-scoped view routers fan
	// out. Nil searches everything.
	FileRange = core.FileRange
)

// ErrRateLimited: the query's tenant exhausted its admission bucket.
var ErrRateLimited = shard.ErrRateLimited

// NewShardRouter builds a scatter-gather router over the table at
// root. Every worker reads through store with its own slice of the
// router's cache budgets.
func NewShardRouter(ctx context.Context, store Store, root string, opts ShardOptions) (*ShardRouter, error) {
	return shard.New(ctx, store, root, opts)
}

// WithTenant tags ctx with the tenant name admission control buckets
// requests by; untagged requests share the "default" tenant.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return shard.WithTenant(ctx, tenant)
}

// ParseWhere parses the CLI's -where predicate grammar ("a~x AND
// (b=~\"er+or\" OR c=HEX)") into a predicate tree.
func ParseWhere(input string) (*Expr, error) { return core.ParseWhere(input) }

// FormatWhere renders a predicate tree back to the -where grammar.
func FormatWhere(e *Expr) (string, error) { return core.FormatWhere(e) }

// IndexKind identifies an index family.
type IndexKind = component.Kind

// The three index kinds of the paper's Section V-C.
const (
	// KindTrie is the binary-trie UUID index.
	KindTrie = component.KindTrie
	// KindFM is the FM-index substring index.
	KindFM = component.KindFM
	// KindIVFPQ is the IVF-PQ vector index.
	KindIVFPQ = component.KindIVFPQ
)

// Errors surfaced by the client.
var (
	// ErrAborted: an index/compact operation must be retried.
	ErrAborted = core.ErrAborted
	// ErrTimeout: the operation exceeded the index timeout.
	ErrTimeout = core.ErrTimeout
	// ErrBadColumn: the column's type cannot host the index kind.
	ErrBadColumn = core.ErrBadColumn
	// ErrBelowMinRows: too few new rows for a vector index file.
	ErrBelowMinRows = core.ErrBelowMinRows
)

// Schema types (the columnar format's schema language).
type (
	// Schema is an ordered set of columns.
	Schema = parquet.Schema
	// Column describes one field.
	Column = parquet.Column
	// ColumnType is a physical column type.
	ColumnType = parquet.Type
	// Batch is a set of rows appended to a table.
	Batch = parquet.Batch
	// ColumnValues holds one column of a batch.
	ColumnValues = parquet.ColumnValues
	// FileWriterOptions tune data file layout (row groups, pages,
	// compression).
	FileWriterOptions = parquet.WriterOptions
)

// Physical column types.
const (
	TypeBool              = parquet.TypeBool
	TypeInt64             = parquet.TypeInt64
	TypeDouble            = parquet.TypeDouble
	TypeByteArray         = parquet.TypeByteArray
	TypeFixedLenByteArray = parquet.TypeFixedLenByteArray
)

// NewSchema validates and builds a schema.
func NewSchema(cols ...Column) (*Schema, error) { return parquet.NewSchema(cols...) }

// MustSchema is NewSchema panicking on error.
func MustSchema(cols ...Column) *Schema { return parquet.MustSchema(cols...) }

// NewBatch returns an empty batch for the schema.
func NewBatch(schema *Schema) *Batch { return parquet.NewBatch(schema) }

// Lake types (the transactional table format).
type (
	// Table is a transactional lake table.
	Table = lake.Table
	// Snapshot is a point-in-time view of a table.
	Snapshot = lake.Snapshot
	// DataFile describes one active data file.
	DataFile = lake.DataFile
)

// Store types (the object-storage substrate).
type (
	// Store is a strongly consistent object store.
	Store = objectstore.Store
	// LatencyModel shapes simulated request latency.
	LatencyModel = objectstore.LatencyModel
	// StoreMetrics meters requests and bytes.
	StoreMetrics = objectstore.Metrics
	// CacheOptions tune a cached store (byte budget, coalesce gap).
	CacheOptions = objectstore.CacheOptions
	// CacheStats snapshots read-cache counters.
	CacheStats = objectstore.CacheStats
	// RetryPolicy tunes the bounded-backoff retry layer (see
	// Config.Retry and NewRetryStore).
	RetryPolicy = objectstore.RetryPolicy
	// RetryStats snapshots retry counters.
	RetryStats = objectstore.RetryStats
	// FaultProfile configures deterministic fault injection for chaos
	// testing (see NewFaultStore).
	FaultProfile = objectstore.FaultProfile
	// FaultCounts reports injected faults by kind.
	FaultCounts = objectstore.FaultCounts
	// StackOptions selects the wrapper layers NewStack composes.
	StackOptions = objectstore.StackOptions
	// Stack is a composed wrapper chain with handles to each layer.
	Stack = objectstore.Stack
)

// Observability types (the obs subsystem: context-propagated trace
// spans plus a typed metrics registry).
type (
	// TraceNode is one node of a finished span tree, as returned by
	// Client.Trace; it serializes to JSON and renders via RenderTrace.
	TraceNode = obs.Node
	// TraceSpan is a live span created by WithTrace or StartSpan.
	TraceSpan = obs.Span
	// MetricsSnapshot is a point-in-time view of every metric
	// (counters, gauges, histograms), as returned by Client.Metrics.
	// It renders in Prometheus text format via WritePrometheus.
	MetricsSnapshot = obs.Snapshot
)

// WithTrace starts a new trace rooted at name and returns the derived
// context carrying it. End the returned span, then call its Tree
// method for the finished TraceNode. Client.Trace wraps this for the
// common "explain one search" case.
func WithTrace(ctx context.Context, name string) (context.Context, *TraceSpan) {
	return obs.WithTrace(ctx, name)
}

// StartSpan opens a child span under the trace carried by ctx; it is
// a no-op (nil span, same ctx) when ctx carries no trace, so
// libraries can call it unconditionally.
func StartSpan(ctx context.Context, name string) (context.Context, *TraceSpan) {
	return obs.Start(ctx, name)
}

// RenderTrace writes an indented, human-readable rendering of a span
// tree — the text form of "EXPLAIN ANALYZE".
func RenderTrace(w io.Writer, n *TraceNode) error { return obs.RenderText(w, n) }

// CacheStatsFrom derives the legacy CacheStats view from a metrics
// snapshot (the cache.* counters of Client.Metrics).
func CacheStatsFrom(snap MetricsSnapshot) CacheStats { return objectstore.CacheStatsFrom(snap) }

// RetryStatsFrom derives the legacy RetryStats view from a metrics
// snapshot (the retry.* counters of Client.Metrics).
func RetryStatsFrom(snap MetricsSnapshot) RetryStats { return objectstore.RetryStatsFrom(snap) }

// Clock abstracts time for simulation; see NewVirtualClock.
type Clock = simtime.Clock

// Session tracks virtual latency of one logical operation.
type Session = simtime.Session

// NewMemStore returns an in-memory object store with real-time
// timestamps, suitable for tests and embedded use.
func NewMemStore() *objectstore.MemStore {
	return objectstore.NewMemStore(nil)
}

// NewStack composes the store wrapper zoo around base in the one
// canonical order, innermost first:
//
//	base → fault → retry → instrument → cache
//
// Each layer is optional (see StackOptions) but the order is fixed,
// and it is the order every layer was designed for: faults sit at the
// bottom so everything above sees the misbehaving substrate a real
// client would; retries sit directly above the faults so recovery
// happens before metering (a retried GET costs two metered requests,
// exactly as on real S3); instrumentation charges the latency model's
// virtual time and counts requests and bytes; the read cache is
// outermost so hits cost zero requests and zero virtual latency.
//
// The returned Stack exposes a handle to each constructed layer plus
// MetricsSnapshot, which merges every layer's metric registry. The
// single-wrapper constructors below (NewCachedStore, NewRetryStore,
// NewFaultStore, NewSimulatedStore) are all thin wrappers over
// NewStack.
func NewStack(base Store, opts StackOptions) *Stack {
	return objectstore.NewStack(base, opts)
}

// NewSimulatedStore returns an in-memory object store stamped by a
// fresh virtual clock, wrapped in the paper's S3 latency model and a
// shared read cache (a NewStack with Latency and the default cache).
// Operations run inside a Session (see WithSession) accumulate
// virtual latency; cache hits are free (zero latency, zero requests).
// The returned metrics meter the requests and bytes that actually
// reach the simulated store. A client built over a table on this
// store joins the same cache (see Config's CacheBytes), so lake
// snapshot reads are accelerated too.
func NewSimulatedStore() (Store, *simtime.VirtualClock, *StoreMetrics) {
	clock := simtime.NewVirtualClock()
	model := objectstore.DefaultS3Model()
	st := objectstore.NewStack(objectstore.NewMemStore(clock), objectstore.StackOptions{Latency: &model})
	return st.Store, clock, st.Metrics
}

// NewCachedStore layers a size-bounded LRU read cache with
// singleflight and adjacent-range GET coalescing over a store. Safe
// for immutable-object workloads like Rottnest's lake and index files
// (stale entries only arise from deletion, which invalidates). It is
// the cache layer of NewStack, alone.
func NewCachedStore(inner Store, opts CacheOptions) *objectstore.CachedStore {
	max := opts.MaxBytes
	if max < 0 {
		max = 0 // CacheOptions: <= 0 means the default budget
	}
	return objectstore.NewStack(inner, objectstore.StackOptions{
		CacheBytes:  max,
		CoalesceGap: opts.CoalesceGap,
	}).Cache
}

// NewDirStore returns an object store backed by a local directory, so
// lakes and indices persist across process runs.
func NewDirStore(dir string) (Store, error) {
	return objectstore.NewDirStore(dir)
}

// NewRetryStore layers bounded exponential-backoff-with-jitter
// retries over a store, resolving ambiguous conditional puts by
// read-back. Clients built over a table on this store share it (see
// Config's Retry). It is the retry layer of NewStack, alone.
func NewRetryStore(inner Store, policy RetryPolicy) *objectstore.RetryStore {
	policy.Enabled = true
	return objectstore.NewStack(inner, objectstore.StackOptions{
		Retry:      policy,
		CacheBytes: -1,
	}).Retry
}

// NewFaultStore wraps a store with seeded, deterministic fault
// injection for chaos testing: transient errors, throttle bursts,
// latency spikes, request-deadline expirations, and ambiguous
// conditional writes (see internal/harness for the differential
// correctness harness built on it). It is the fault layer of
// NewStack, alone.
func NewFaultStore(inner Store, profile FaultProfile) *objectstore.FaultStore {
	return objectstore.NewStack(inner, objectstore.StackOptions{
		Faults:     &profile,
		CacheBytes: -1,
	}).Fault
}

// NewVirtualClock returns a manually advanced clock for simulations.
func NewVirtualClock() *simtime.VirtualClock { return simtime.NewVirtualClock() }

// NewSession returns a fresh virtual-latency session.
func NewSession() *Session { return simtime.NewSession() }

// WithSession attaches a session to the context; store operations
// under it accumulate virtual latency (parallel fans overlap).
func WithSession(ctx context.Context, s *Session) context.Context {
	return simtime.With(ctx, s)
}

// TableOptions configure CreateTableWith/OpenTableWith; the zero
// value (real wall clock) is what CreateTable/OpenTable use.
type TableOptions = lake.OpenOptions

// CreateTable initializes a new lake table at root on the store.
func CreateTable(ctx context.Context, store Store, root string, schema *Schema) (*Table, error) {
	return lake.CreateWith(ctx, store, root, schema, lake.OpenOptions{})
}

// CreateTableWith is CreateTable with explicit options (simulations
// set TableOptions.Clock so lake commits share the virtual timeline).
func CreateTableWith(ctx context.Context, store Store, root string, schema *Schema, opts TableOptions) (*Table, error) {
	return lake.CreateWith(ctx, store, root, schema, opts)
}

// OpenTable opens an existing lake table at root.
func OpenTable(ctx context.Context, store Store, root string) (*Table, error) {
	return lake.OpenWith(ctx, store, root, lake.OpenOptions{})
}

// OpenTableWith is OpenTable with explicit options.
func OpenTableWith(ctx context.Context, store Store, root string, opts TableOptions) (*Table, error) {
	return lake.OpenWith(ctx, store, root, opts)
}

// NewClient returns a Rottnest client over the table. The clock
// driving timeouts and vacuum decisions comes from cfg.Clock; leave it
// nil for the real wall clock, or set a VirtualClock for simulations.
func NewClient(table *Table, cfg Config) *Client {
	return core.NewClient(table, cfg)
}

// Continuous ingestion types: a micro-batching group-commit writer and
// a budgeted background maintenance scheduler (see internal/ingest and
// DESIGN.md §16).
type (
	// Writer is the micro-batching, group-committing ingestion writer.
	Writer = ingest.Writer
	// WriterOptions tune a Writer (batch bounds, group size,
	// backpressure budget).
	//
	// Renamed meaning: before the ingest subsystem, WriterOptions
	// named the data-file layout options (row groups, pages,
	// compression); that type is now FileWriterOptions, and a
	// WriterOptions value carries it in its Parquet field. Code that
	// configured file layout through rottnest.WriterOptions should
	// migrate to FileWriterOptions — see README "API stability".
	WriterOptions = ingest.WriterOptions
	// IngestWriterOptions is an explicit alias for WriterOptions, for
	// call sites that want the unambiguous name across the rename.
	IngestWriterOptions = ingest.WriterOptions
	// Ack resolves when an appended batch is durably committed.
	Ack = ingest.Ack
	// CommittedFile describes one micro-batch landed by a group commit.
	CommittedFile = ingest.CommittedFile
	// Scheduler is the budgeted background maintenance daemon.
	Scheduler = ingest.Scheduler
	// SchedulerOptions tune a Scheduler (request budget, watermarks,
	// maintained index specs).
	SchedulerOptions = ingest.SchedulerOptions
)

// NewWriter returns a micro-batching writer over the table: concurrent
// Appends coalesce into size/age-bounded micro-batches, sealed batches
// group-commit through one conditional PUT per group, and every Append
// returns an Ack resolving at durability. Close drains all pending
// acks.
func NewWriter(table *Table, opts WriterOptions) *Writer {
	return ingest.NewWriter(table, opts)
}

// NewScheduler returns a background maintenance scheduler for the
// table: it watches commits (and opts.Writer, when set), then runs
// index, compact, and vacuum jobs by priority under a request-per-
// second budget, pausing the writer when unindexed rows outrun
// indexing. Drive it with Run (daemon) or Step/Quiesce (manual).
func NewScheduler(table *Table, opts SchedulerOptions) *Scheduler {
	return ingest.NewScheduler(table, opts)
}

// Workload-adaptive maintenance types: a decayed query-heat ledger, a
// live TCO autopilot, and the scheduler policy that joins them (see
// internal/adaptive and DESIGN.md §17).
type (
	// HeatObserver receives per-(column, file) query observations; a
	// Client tap installed with Client.SetHeatObserver feeds one.
	HeatObserver = core.HeatObserver
	// HeatLedger is the decayed per-(column, file) query-heat ledger.
	HeatLedger = adaptive.Ledger
	// HeatLedgerOptions tune a HeatLedger (half-life, capacity).
	HeatLedgerOptions = adaptive.LedgerOptions
	// Autopilot evaluates the TCO phase diagram per column from live
	// measurements and exposes index/scan/deep verdicts.
	Autopilot = adaptive.Autopilot
	// AutopilotOptions tune an Autopilot (pricing, horizon, refresh
	// cadence, scale factor).
	AutopilotOptions = adaptive.AutopilotOptions
	// AdaptivePolicy plugs a HeatLedger and an Autopilot into a
	// Scheduler via SchedulerOptions.Adaptive: hot files are indexed
	// first, never-queried columns are demoted to the scan path, and
	// vector indexes refine progressively under probe traffic.
	AdaptivePolicy = adaptive.Policy
	// AdaptivePolicyOptions wire an AdaptivePolicy (ledger, autopilot,
	// client, hot-subset bounds).
	AdaptivePolicyOptions = adaptive.PolicyOptions
)

// NewHeatLedger returns a decayed query-heat ledger. Install it with
// Client.SetHeatObserver so searches feed it, then hand it to
// NewAdaptivePolicy.
func NewHeatLedger(opts HeatLedgerOptions) *HeatLedger {
	return adaptive.NewLedger(opts)
}

// NewAutopilot returns a live TCO autopilot deciding over the given
// specs' columns: each refresh feeds measured sizes and the ledger's
// observed query rates into the phase diagram (tco.Params.Best) and
// records an index, scan, or deep verdict per column.
func NewAutopilot(client *Client, ledger *HeatLedger, specs []IndexSpec, opts AutopilotOptions) *Autopilot {
	return adaptive.NewAutopilot(client, ledger, specs, opts)
}

// NewAdaptivePolicy returns the scheduler policy that turns heat and
// TCO verdicts into maintenance decisions. Set it as
// SchedulerOptions.Adaptive.
func NewAdaptivePolicy(opts AdaptivePolicyOptions) *AdaptivePolicy {
	return adaptive.NewPolicy(opts)
}
