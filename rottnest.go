// Package rottnest is a Go implementation of Rottnest ("Rottnest:
// Indexing Data Lakes for Search", ICDE 2025): a bolt-on system that
// maintains lightweight, object-storage-resident search indices —
// high-cardinality UUID lookup, exact substring search, and vector
// nearest-neighbor search — on top of a Parquet-based transactional
// data lake.
//
// The library is self-contained: it ships its own object-store
// abstraction (in-memory simulated S3 and a directory-backed store),
// a Parquet-equivalent columnar format with both a traditional reader
// and Rottnest's page-granular optimized reader, a Delta-Lake-style
// transactional table format with deletion vectors, the three
// componentized index families, the lazy consistent-on-demand index
// protocol with its four APIs (index, search, compact, vacuum), both
// evaluation baselines, and the paper's TCO phase-diagram framework.
//
// # Quick start
//
//	store := rottnest.NewMemStore()
//	schema := rottnest.MustSchema(rottnest.Column{
//		Name: "id", Type: rottnest.TypeFixedLenByteArray, TypeLen: 16,
//	})
//	table, _ := rottnest.CreateTable(ctx, store, "my-lake", schema)
//	// ... table.Append batches ...
//	client := rottnest.NewClient(table, rottnest.Config{IndexDir: "my-index"})
//	client.Index(ctx, "id", rottnest.KindTrie)
//	res, _ := client.Search(ctx, rottnest.Query{Column: "id", UUID: &key, K: 10, Snapshot: -1})
//
// See examples/ for runnable end-to-end programs and DESIGN.md for
// the architecture.
package rottnest

import (
	"context"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/insitu"
	"rottnest/internal/lake"
	"rottnest/internal/meta"
	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
)

// Core client types. Client is the Rottnest handle offering the four
// protocol APIs: Index, Search, Compact, and Vacuum.
type (
	// Client is the Rottnest client (see core.Client).
	Client = core.Client
	// Config tunes a Client.
	Config = core.Config
	// Query describes one search.
	Query = core.Query
	// PartitionFilter prunes searched files by a structured-attribute
	// range (file-granular).
	PartitionFilter = core.PartitionFilter
	// Result is a search outcome.
	Result = core.Result
	// Stats summarizes a search's work.
	Stats = core.Stats
	// Match is one matching row.
	Match = insitu.Match
	// IndexEntry is one metadata-table row.
	IndexEntry = meta.IndexEntry
	// CompactOptions tunes index compaction.
	CompactOptions = core.CompactOptions
	// VacuumOptions tunes index garbage collection.
	VacuumOptions = core.VacuumOptions
	// VacuumReport summarizes a vacuum.
	VacuumReport = core.VacuumReport
	// IndexStatus describes one index's state vs the latest snapshot.
	IndexStatus = core.IndexStatus
	// IndexSpec names one maintained (column, kind) index.
	IndexSpec = core.IndexSpec
	// MaintainPolicy tunes the automated maintenance pass.
	MaintainPolicy = core.MaintainPolicy
	// MaintainReport summarizes one maintenance pass.
	MaintainReport = core.MaintainReport
)

// IndexKind identifies an index family.
type IndexKind = component.Kind

// The three index kinds of the paper's Section V-C.
const (
	// KindTrie is the binary-trie UUID index.
	KindTrie = component.KindTrie
	// KindFM is the FM-index substring index.
	KindFM = component.KindFM
	// KindIVFPQ is the IVF-PQ vector index.
	KindIVFPQ = component.KindIVFPQ
)

// Errors surfaced by the client.
var (
	// ErrAborted: an index/compact operation must be retried.
	ErrAborted = core.ErrAborted
	// ErrTimeout: the operation exceeded the index timeout.
	ErrTimeout = core.ErrTimeout
	// ErrBadColumn: the column's type cannot host the index kind.
	ErrBadColumn = core.ErrBadColumn
	// ErrBelowMinRows: too few new rows for a vector index file.
	ErrBelowMinRows = core.ErrBelowMinRows
)

// Schema types (the columnar format's schema language).
type (
	// Schema is an ordered set of columns.
	Schema = parquet.Schema
	// Column describes one field.
	Column = parquet.Column
	// ColumnType is a physical column type.
	ColumnType = parquet.Type
	// Batch is a set of rows appended to a table.
	Batch = parquet.Batch
	// ColumnValues holds one column of a batch.
	ColumnValues = parquet.ColumnValues
	// WriterOptions tune data file layout (row groups, pages,
	// compression).
	WriterOptions = parquet.WriterOptions
)

// Physical column types.
const (
	TypeBool              = parquet.TypeBool
	TypeInt64             = parquet.TypeInt64
	TypeDouble            = parquet.TypeDouble
	TypeByteArray         = parquet.TypeByteArray
	TypeFixedLenByteArray = parquet.TypeFixedLenByteArray
)

// NewSchema validates and builds a schema.
func NewSchema(cols ...Column) (*Schema, error) { return parquet.NewSchema(cols...) }

// MustSchema is NewSchema panicking on error.
func MustSchema(cols ...Column) *Schema { return parquet.MustSchema(cols...) }

// NewBatch returns an empty batch for the schema.
func NewBatch(schema *Schema) *Batch { return parquet.NewBatch(schema) }

// Lake types (the transactional table format).
type (
	// Table is a transactional lake table.
	Table = lake.Table
	// Snapshot is a point-in-time view of a table.
	Snapshot = lake.Snapshot
	// DataFile describes one active data file.
	DataFile = lake.DataFile
)

// Store types (the object-storage substrate).
type (
	// Store is a strongly consistent object store.
	Store = objectstore.Store
	// LatencyModel shapes simulated request latency.
	LatencyModel = objectstore.LatencyModel
	// StoreMetrics meters requests and bytes.
	StoreMetrics = objectstore.Metrics
	// CacheOptions tune a cached store (byte budget, coalesce gap).
	CacheOptions = objectstore.CacheOptions
	// CacheStats snapshots read-cache counters.
	CacheStats = objectstore.CacheStats
	// RetryPolicy tunes the bounded-backoff retry layer (see
	// Config.Retry and NewRetryStore).
	RetryPolicy = objectstore.RetryPolicy
	// RetryStats snapshots retry counters.
	RetryStats = objectstore.RetryStats
	// FaultProfile configures deterministic fault injection for chaos
	// testing (see NewFaultStore).
	FaultProfile = objectstore.FaultProfile
	// FaultCounts reports injected faults by kind.
	FaultCounts = objectstore.FaultCounts
)

// Clock abstracts time for simulation; see NewVirtualClock.
type Clock = simtime.Clock

// Session tracks virtual latency of one logical operation.
type Session = simtime.Session

// NewMemStore returns an in-memory object store with real-time
// timestamps, suitable for tests and embedded use.
func NewMemStore() *objectstore.MemStore {
	return objectstore.NewMemStore(nil)
}

// NewSimulatedStore returns an in-memory object store stamped by a
// fresh virtual clock, wrapped in the paper's S3 latency model and a
// shared read cache. Operations run inside a Session (see
// WithSession) accumulate virtual latency; cache hits are free (zero
// latency, zero requests). The returned metrics meter the requests
// and bytes that actually reach the simulated store. A client built
// over a table on this store joins the same cache (see Config's
// CacheBytes), so lake snapshot reads are accelerated too.
func NewSimulatedStore() (Store, *simtime.VirtualClock, *StoreMetrics) {
	clock := simtime.NewVirtualClock()
	inst, metrics := objectstore.Instrument(objectstore.NewMemStore(clock), objectstore.DefaultS3Model())
	return NewCachedStore(inst, CacheOptions{}), clock, metrics
}

// NewCachedStore layers a size-bounded LRU read cache with
// singleflight and adjacent-range GET coalescing over a store. Safe
// for immutable-object workloads like Rottnest's lake and index files
// (stale entries only arise from deletion, which invalidates).
func NewCachedStore(inner Store, opts CacheOptions) *objectstore.CachedStore {
	return objectstore.NewCachedStore(inner, opts)
}

// NewDirStore returns an object store backed by a local directory, so
// lakes and indices persist across process runs.
func NewDirStore(dir string) (Store, error) {
	return objectstore.NewDirStore(dir)
}

// NewRetryStore layers bounded exponential-backoff-with-jitter
// retries over a store, resolving ambiguous conditional puts by
// read-back. Clients built over a table on this store share it (see
// Config's Retry).
func NewRetryStore(inner Store, policy RetryPolicy) *objectstore.RetryStore {
	return objectstore.NewRetryStore(inner, policy)
}

// NewFaultStore wraps a store with seeded, deterministic fault
// injection for chaos testing: transient errors, throttle bursts,
// latency spikes, request-deadline expirations, and ambiguous
// conditional writes (see internal/harness for the differential
// correctness harness built on it).
func NewFaultStore(inner Store, profile FaultProfile) *objectstore.FaultStore {
	return objectstore.NewFaultStoreWithProfile(inner, profile)
}

// NewVirtualClock returns a manually advanced clock for simulations.
func NewVirtualClock() *simtime.VirtualClock { return simtime.NewVirtualClock() }

// NewSession returns a fresh virtual-latency session.
func NewSession() *Session { return simtime.NewSession() }

// WithSession attaches a session to the context; store operations
// under it accumulate virtual latency (parallel fans overlap).
func WithSession(ctx context.Context, s *Session) context.Context {
	return simtime.With(ctx, s)
}

// CreateTable initializes a new lake table at root on the store.
func CreateTable(ctx context.Context, store Store, root string, schema *Schema) (*Table, error) {
	return lake.Create(ctx, store, nil, root, schema)
}

// CreateTableWithClock is CreateTable stamping commits from the given
// clock (used by simulations).
func CreateTableWithClock(ctx context.Context, store Store, clock Clock, root string, schema *Schema) (*Table, error) {
	return lake.Create(ctx, store, clock, root, schema)
}

// OpenTable opens an existing lake table at root.
func OpenTable(ctx context.Context, store Store, root string) (*Table, error) {
	return lake.Open(ctx, store, nil, root)
}

// OpenTableWithClock is OpenTable with an explicit clock.
func OpenTableWithClock(ctx context.Context, store Store, clock Clock, root string) (*Table, error) {
	return lake.Open(ctx, store, clock, root)
}

// NewClient returns a Rottnest client over the table using the real
// wall clock.
func NewClient(table *Table, cfg Config) *Client {
	return core.NewClient(table, nil, cfg)
}

// NewClientWithClock is NewClient with an explicit clock (used by
// simulations, whose vacuum timeouts run on virtual time).
func NewClientWithClock(table *Table, clock Clock, cfg Config) *Client {
	return core.NewClient(table, clock, cfg)
}
