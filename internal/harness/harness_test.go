package harness

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rottnest/internal/objectstore"
)

// profileFor rotates fault emphasis across seeds so the suite covers
// transient-heavy, throttle-heavy, deadline/ambiguous-heavy, and
// everything-at-once weather. Every profile keeps all fault kinds
// nonzero — short mode trims seeds, never op or fault coverage.
func profileFor(seed int64) objectstore.FaultProfile {
	base := objectstore.FaultProfile{
		Transient:     0.02,
		Throttle:      0.01,
		ThrottleBurst: 2,
		Latency:       0.02,
		SpikeLatency:  200 * time.Millisecond,
		Deadline:      0.01,
		AmbiguousPut:  0.05,
	}
	switch seed % 4 {
	case 0:
		base.Transient = 0.08
	case 1:
		base.Throttle = 0.05
	case 2:
		base.Deadline = 0.04
		base.AmbiguousPut = 0.25
	default:
		base.Transient = 0.05
		base.Throttle = 0.03
		base.Deadline = 0.02
		base.AmbiguousPut = 0.15
	}
	return base
}

// TestDifferentialFaultWorkloads is the acceptance suite: >= 20
// distinct seeded chaos workloads, each checking every search
// byte-for-byte against the brute-force oracle while faults fire and
// retries absorb them. Short mode trims the seed count only; both
// modes and all four fault emphases stay covered.
func TestDifferentialFaultWorkloads(t *testing.T) {
	n := 24
	if testing.Short() {
		n = 8
	}
	for seed := int64(0); seed < int64(n); seed++ {
		seed := seed
		mode := ModeUUID
		if seed%2 == 1 {
			mode = ModeText
		}
		t.Run(fmt.Sprintf("seed=%d/mode=%d", seed, mode), func(t *testing.T) {
			t.Parallel()
			sum, err := Run(context.Background(), Options{
				Seed:    seed,
				Mode:    mode,
				Profile: profileFor(seed),
				Retry:   objectstore.RetryPolicy{Enabled: true, MaxAttempts: 8},
			})
			if err != nil {
				t.Fatalf("run failed: %v\nsummary: %+v", err, sum)
			}
			if sum.Searches == 0 {
				t.Fatalf("no differential searches ran: %+v", sum)
			}
			if sum.Appends == 0 {
				t.Fatalf("no appends ran: %+v", sum)
			}
		})
	}
}

// TestCompoundDifferentialWorkloads runs seeded chaos workloads in
// compound mode: every search is a boolean AND/OR tree over the two
// indexed columns, executed through the multi-predicate planner under
// faults and concurrent maintenance, and compared byte-for-byte
// against the multi-column oracle scan.
func TestCompoundDifferentialWorkloads(t *testing.T) {
	n := 10
	if testing.Short() {
		n = 6
	}
	for seed := int64(100); seed < int64(100+n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sum, err := Run(context.Background(), Options{
				Seed:    seed,
				Mode:    ModeCompound,
				Profile: profileFor(seed),
				Retry:   objectstore.RetryPolicy{Enabled: true, MaxAttempts: 8},
			})
			if err != nil {
				t.Fatalf("run failed: %v\nsummary: %+v", err, sum)
			}
			if sum.Searches == 0 {
				t.Fatalf("no differential searches ran: %+v", sum)
			}
			if sum.Appends == 0 {
				t.Fatalf("no appends ran: %+v", sum)
			}
		})
	}
}

// TestShardedDifferentialWorkloads runs seeded chaos workloads in
// sharded mode: every compound differential search also replays
// through scatter-gather routers at 1, 2, and 5 shards (the 2-shard
// router hedging across two replicas), and every fan-out must return
// byte-identical matches while faults fire and maintenance churns.
func TestShardedDifferentialWorkloads(t *testing.T) {
	n := 6
	if testing.Short() {
		n = 3
	}
	for seed := int64(200); seed < int64(200+n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sum, err := Run(context.Background(), Options{
				Seed:    seed,
				Mode:    ModeSharded,
				Profile: profileFor(seed),
				Retry:   objectstore.RetryPolicy{Enabled: true, MaxAttempts: 8},
			})
			if err != nil {
				t.Fatalf("run failed: %v\nsummary: %+v", err, sum)
			}
			if sum.Searches == 0 {
				t.Fatalf("no differential searches ran: %+v", sum)
			}
			if sum.Appends == 0 {
				t.Fatalf("no appends ran: %+v", sum)
			}
		})
	}
}

// TestIngestDifferentialWorkloads runs seeded chaos workloads in
// ingest mode: every append flows through the group-commit writer and
// all maintenance through the budgeted scheduler, under rotating fault
// weather. Each run checks byte-identical search results against the
// oracle and — in the finale — that every acked row is visible exactly
// once, so an ambiguous group commit that landed must not duplicate
// rows when the writer retries it.
func TestIngestDifferentialWorkloads(t *testing.T) {
	n := 8
	if testing.Short() {
		n = 4
	}
	for seed := int64(300); seed < int64(300+n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sum, err := Run(context.Background(), Options{
				Seed:    seed,
				Mode:    ModeIngest,
				Profile: profileFor(seed),
				Retry:   objectstore.RetryPolicy{Enabled: true, MaxAttempts: 8},
			})
			if err != nil {
				t.Fatalf("run failed: %v\nsummary: %+v", err, sum)
			}
			if sum.Searches == 0 {
				t.Fatalf("no differential searches ran: %+v", sum)
			}
			if sum.Appends == 0 {
				t.Fatalf("no appends ran: %+v", sum)
			}
			if sum.GroupCommits == 0 || sum.BatchesCommitted < sum.GroupCommits {
				t.Fatalf("writer did not group-commit: %+v", sum)
			}
			if sum.LagObservations == 0 {
				t.Fatalf("scheduler recorded no searchable-lag observations: %+v", sum)
			}
		})
	}
}

// TestAdaptiveDifferentialWorkloads reruns the ingest-mode chaos
// workloads with the heat-driven adaptive policy wired into the
// scheduler: the query stream feeds the ledger, index jobs chase hot
// files first (sometimes as partial hot-subset builds that leave a
// cold tail unindexed), and every search must still be byte-identical
// to the brute-force oracle under the same fault weather.
func TestAdaptiveDifferentialWorkloads(t *testing.T) {
	n := 6
	if testing.Short() {
		n = 3
	}
	for seed := int64(400); seed < int64(400+n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			sum, err := Run(context.Background(), Options{
				Seed:     seed,
				Mode:     ModeIngest,
				Adaptive: true,
				Profile:  profileFor(seed),
				Retry:    objectstore.RetryPolicy{Enabled: true, MaxAttempts: 8},
			})
			if err != nil {
				t.Fatalf("run failed: %v\nsummary: %+v", err, sum)
			}
			if sum.Searches == 0 || sum.MatchesCompared == 0 {
				t.Fatalf("no differential searches compared: %+v", sum)
			}
			if sum.Appends == 0 {
				t.Fatalf("no appends ran: %+v", sum)
			}
			if sum.LagObservations == 0 {
				t.Fatalf("scheduler recorded no searchable-lag observations: %+v", sum)
			}
		})
	}
}

// TestHarnessFaultsActuallyFire is the meta-check that chaos runs
// exercise the failure paths: faults are injected and the retry layer
// does real recovery work.
func TestHarnessFaultsActuallyFire(t *testing.T) {
	sum, err := Run(context.Background(), Options{
		Seed: 99,
		Mode: ModeUUID,
		Profile: objectstore.FaultProfile{
			Transient:     0.08,
			Throttle:      0.04,
			ThrottleBurst: 2,
			Latency:       0.05,
			Deadline:      0.03,
			AmbiguousPut:  0.25,
		},
		Retry: objectstore.RetryPolicy{Enabled: true, MaxAttempts: 8},
	})
	if err != nil {
		t.Fatalf("run failed: %v\nsummary: %+v", err, sum)
	}
	if sum.Faults.Total() == 0 {
		t.Fatalf("no faults injected: %+v", sum.Faults)
	}
	if sum.Faults.Transient == 0 || sum.Faults.Throttles == 0 || sum.Faults.AmbiguousPuts == 0 {
		t.Fatalf("fault kinds missing: %+v", sum.Faults)
	}
	if sum.Retry.Retries == 0 {
		t.Fatalf("retry layer did no work despite %d faults", sum.Faults.Total())
	}
}

// TestHarnessSurfacesFaultsWithoutRetries proves the injection is
// real: the same weather with the retry layer off makes the workload
// fail with an injected error.
func TestHarnessSurfacesFaultsWithoutRetries(t *testing.T) {
	sum, err := Run(context.Background(), Options{
		Seed: 7,
		Mode: ModeUUID,
		Profile: objectstore.FaultProfile{
			Transient:    0.1,
			Throttle:     0.05,
			Deadline:     0.05,
			AmbiguousPut: 0.3,
		},
		Retry: objectstore.RetryPolicy{Enabled: false},
	})
	if err == nil {
		t.Fatalf("faults with no retries must surface; run passed: %+v", sum)
	}
	if !errors.Is(err, objectstore.ErrInjected) {
		t.Fatalf("surfaced error is not the injected fault: %v", err)
	}
	if sum.Faults.Total() == 0 {
		t.Fatalf("no faults recorded: %+v", sum.Faults)
	}
}

// TestHarnessFaultFree sanity-checks the harness itself: a calm world
// with no faults and no retries must pass every differential check.
func TestHarnessFaultFree(t *testing.T) {
	for _, mode := range []Mode{ModeUUID, ModeText, ModeCompound, ModeSharded, ModeIngest} {
		mode := mode
		t.Run(fmt.Sprintf("mode=%d", mode), func(t *testing.T) {
			t.Parallel()
			sum, err := Run(context.Background(), Options{Seed: 1234, Mode: mode})
			if err != nil {
				t.Fatalf("fault-free run failed: %v\nsummary: %+v", err, sum)
			}
			if sum.Faults.Total() != 0 || sum.Retry.Retries != 0 {
				t.Fatalf("fault-free run injected faults: %+v", sum)
			}
			if sum.Searches == 0 || sum.MatchesCompared == 0 {
				t.Fatalf("nothing compared: %+v", sum)
			}
		})
	}
}
