// Package harness is Rottnest's differential correctness harness: it
// runs seeded randomized workloads — ingest, search, index, compact,
// vacuum, concurrently — against an object store with deterministic
// fault injection (objectstore.FaultStore) and bounded-backoff
// recovery (objectstore.RetryStore), and checks every indexed search
// against the brute-force oracle (internal/bruteforce) scanning the
// same bytes through a pristine, fault-free handle.
//
// The harness turns the paper's correctness argument (Section IV) into
// an executable test. A run fails if any of these is violated:
//
//   - Differential equality: every exact search (K=0) at a pinned
//     snapshot returns byte-for-byte the matches the oracle's full
//     scan returns at that snapshot.
//   - Monotone snapshots: the table version observed by any single
//     worker never decreases.
//   - No lost rows / no resurrection: after the storm quiesces, every
//     live planted key is found exactly once, every deleted key not at
//     all, and no lake-vacuumed file reappears in a snapshot.
//   - Existence: every committed index file is present in the bucket,
//     before and after maintenance physically deletes garbage.
//
// With retries enabled, injected faults must be absorbed (any
// surfaced injected error fails the run); with retries disabled the
// same faults surface, which the meta-tests assert — proving the
// injection actually exercises the failure paths.
package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"regexp"
	"sync"
	"time"

	"rottnest/internal/adaptive"
	"rottnest/internal/bruteforce"
	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/ingest"
	"rottnest/internal/insitu"
	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/shard"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

// Mode selects the indexed column family a run exercises.
type Mode int

const (
	// ModeUUID ingests 16-byte keys under a trie index and searches
	// exact keys (live, deleted, and absent ones).
	ModeUUID Mode = iota
	// ModeText ingests Zipf documents with planted markers under an
	// FM-index and searches substrings and regexes.
	ModeText
	// ModeCompound ingests two indexed columns (16-byte keys under a
	// trie, documents under an FM-index) and searches compound AND/OR
	// trees spanning both, checked against the multi-column oracle.
	ModeCompound
	// ModeSharded runs the compound workload and additionally replays
	// every differential search through scatter-gather routers at 1, 2,
	// and 5 shards (the 2-shard router with two replicas and hedging),
	// requiring byte-identical results from every fan-out — against the
	// single-node client and the oracle — under the same faults and
	// concurrent maintenance.
	ModeSharded
	// ModeIngest routes every append through the continuous-ingestion
	// writer (micro-batching, group commits, per-producer acks) and
	// replaces explicit index/compact/vacuum ops with budgeted
	// scheduler steps, all under the same faults. It checks ingestion's
	// exactly-once contract end to end: every acked row is visible
	// exactly once even across ambiguous group commits (a committed-
	// but-errored commit round must not duplicate rows on retry), and
	// every search stays byte-identical to the oracle.
	ModeIngest
)

// Options configures one harness run.
type Options struct {
	// Seed drives every random decision of the run: the workload
	// generators, each worker's op schedule, the fault profile rolls,
	// and the retry jitter. Same options, same interleaving class.
	Seed int64
	// Mode selects the workload (default ModeUUID).
	Mode Mode
	// Workers is the number of concurrent workers (default 3).
	Workers int
	// OpsPerWorker is each worker's op count (default 20).
	OpsPerWorker int
	// Profile is the fault profile injected under the retry layer.
	// The zero profile runs fault-free.
	Profile objectstore.FaultProfile
	// Retry is the recovery policy. With Enabled false the run uses
	// the faulty store directly, so injected faults surface as op
	// errors — the configuration the meta-tests use.
	Retry objectstore.RetryPolicy
	// Adaptive (ModeIngest only) wires a heat ledger and adaptive
	// policy into the scheduler: the query stream feeds the ledger and
	// index jobs chase hot files first (possibly as partial hot-subset
	// builds), so the differential checks prove that heat-driven
	// scheduling never changes what a search returns.
	Adaptive bool
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 3
	}
	if o.OpsPerWorker <= 0 {
		o.OpsPerWorker = 20
	}
	o.Profile.Seed = o.Seed
	o.Retry.Seed = o.Seed
	return o
}

// Summary reports what a run did, for meta-assertions ("did faults
// actually fire?", "were searches actually compared?").
type Summary struct {
	// Appends, Deletes, and Maintenance count successful mutating ops.
	Appends     int
	Deletes     int
	Maintenance int
	// Searches counts differential searches; every one was compared
	// byte-for-byte against the oracle.
	Searches int
	// MatchesCompared is the total number of matches both sides
	// agreed on.
	MatchesCompared int
	// Faults is what the fault layer injected.
	Faults objectstore.FaultCounts
	// Retry is what the retry layer absorbed (zero when disabled).
	Retry objectstore.RetryStats
	// Store is the legacy atomic request/byte totals, checked for
	// equality against the obs registry view at every quiescent point.
	Store objectstore.Snapshot
	// FinalVersion is the lake version after the final maintenance.
	FinalVersion int64
	// GroupCommits and BatchesCommitted report the ingest writer's
	// amortization (ModeIngest only): batches exceeding commits means
	// grouping actually occurred under faults.
	GroupCommits     int64
	BatchesCommitted int64
	// LagObservations counts the searchable-lag measurements the
	// scheduler's freshness ledger recorded (ModeIngest only).
	LagObservations int64
}

// world is the shared state of one run.
type world struct {
	opts      Options
	clock     *simtime.VirtualClock
	base      *objectstore.MemStore
	faulty    *objectstore.FaultStore
	retry     *objectstore.RetryStore // nil when disabled
	inst      *objectstore.Instrumented
	metrics   *objectstore.Metrics
	table     *lake.Table
	cli       *core.Client
	unordered *core.Client // cost-based AND ordering off: differential baseline
	oracle    *bruteforce.Cluster
	routers   []*shard.Router   // ModeSharded: 1-, 2-, and 5-shard fan-outs
	writer    *ingest.Writer    // ModeIngest: the group-commit writer
	sched     *ingest.Scheduler // ModeIngest: the maintenance scheduler

	column string
	kind   component.Kind
	specs  []core.IndexSpec // every indexed column of the mode
	schema *parquet.Schema

	mu      sync.Mutex
	pins    map[int64]int
	live    map[[16]byte]string // uuid mode: key -> insert path
	deleted map[[16]byte]bool
	needles []string // text mode: planted markers
	uuidGen *workload.UUIDGen
	textGen *workload.TextGen
	removed map[string]bool // lake paths physically vacuumed

	searches, compared, appends, deletes, maintenance int

	// budget bounds total virtual-clock advance during the storm so
	// no object ages past the index timeout mid-run (physical garbage
	// collection is exercised in the quiescent final phase instead).
	budget time.Duration
}

var uuidSchema = parquet.MustSchema(
	parquet.Column{Name: "id", Type: parquet.TypeFixedLenByteArray, TypeLen: 16},
	parquet.Column{Name: "payload", Type: parquet.TypeByteArray},
)

var textSchema = parquet.MustSchema(
	parquet.Column{Name: "body", Type: parquet.TypeByteArray},
)

var compoundSchema = parquet.MustSchema(
	parquet.Column{Name: "id", Type: parquet.TypeFixedLenByteArray, TypeLen: 16},
	parquet.Column{Name: "body", Type: parquet.TypeByteArray},
)

// Run executes one seeded workload and returns its summary. The error
// is the first invariant violation or unabsorbed op failure; the
// summary is valid (best-effort) even when err != nil.
func Run(ctx context.Context, opts Options) (*Summary, error) {
	opts = opts.withDefaults()
	w := &world{
		opts:    opts,
		clock:   simtime.NewVirtualClock(),
		pins:    make(map[int64]int),
		live:    make(map[[16]byte]string),
		deleted: make(map[[16]byte]bool),
		removed: make(map[string]bool),
		uuidGen: workload.NewUUIDGen(opts.Seed),
		textGen: workload.NewTextGen(workload.DefaultTextConfig(opts.Seed)),
		budget:  45 * time.Minute,
	}
	w.base = objectstore.NewMemStore(w.clock)
	// The canonical stack, minus the cache (every read must traverse
	// the fault layer so read-path recovery is exercised maximally).
	// The zero latency model meters requests and bytes without
	// charging virtual time, feeding the registry-vs-StoreMetrics
	// drift assertion.
	st := objectstore.NewStack(w.base, objectstore.StackOptions{
		Faults:     &opts.Profile,
		Retry:      opts.Retry,
		Latency:    &objectstore.LatencyModel{},
		CacheBytes: -1,
	})
	w.faulty = st.Fault
	w.retry = st.Retry
	w.inst = st.Instrumented
	w.metrics = st.Metrics
	chain := st.Store

	switch opts.Mode {
	case ModeText:
		w.column, w.kind, w.schema = "body", component.KindFM, textSchema
	case ModeCompound, ModeSharded:
		w.column, w.kind, w.schema = "id", component.KindTrie, compoundSchema
		w.specs = append(w.specs, core.IndexSpec{Column: "body", Kind: component.KindFM})
	default:
		w.column, w.kind, w.schema = "id", component.KindTrie, uuidSchema
	}
	w.specs = append([]core.IndexSpec{{Column: w.column, Kind: w.kind}}, w.specs...)

	err := w.run(ctx, chain)
	sum := &Summary{
		Appends:         w.appends,
		Deletes:         w.deletes,
		Maintenance:     w.maintenance,
		Searches:        w.searches,
		MatchesCompared: w.compared,
		Faults:          w.faulty.Counts(),
	}
	if w.retry != nil {
		sum.Retry = w.retry.Stats()
	}
	sum.Store = w.metrics.Snapshot()
	if w.writer != nil {
		ws := w.writer.Registry().Snapshot()
		sum.GroupCommits = ws.Counter("ingest.group_commits")
		sum.BatchesCommitted = ws.Counter("ingest.batches_committed")
		sum.LagObservations = w.sched.Registry().Snapshot().Histograms["ingest.searchable_lag_ns"].Count
	}
	if err == nil {
		err = w.checkStoreDrift()
	}
	if w.table != nil {
		if v, verr := w.table.Version(octx(ctx)); verr == nil {
			sum.FinalVersion = v
		}
	}
	return sum, err
}

// octx attaches a fresh simtime session so retry backoffs and latency
// spikes cost virtual time, not wall time.
func octx(ctx context.Context) context.Context {
	return simtime.With(ctx, simtime.NewSession())
}

func (w *world) run(ctx context.Context, chain objectstore.Store) error {
	table, err := lake.CreateWith(octx(ctx), chain, "lake", w.schema, lake.OpenOptions{Clock: w.clock})
	if err != nil {
		return fmt.Errorf("harness: create lake: %w", err)
	}
	w.table = table
	w.cli = core.NewClient(table, core.Config{
		Clock:    w.clock,
		IndexDir: "rottnest",
		Timeout:  time.Hour,
		// No read cache: every read must traverse the fault layer, so
		// read-path recovery is exercised maximally.
		CacheBytes: -1,
		Retry:      w.opts.Retry,
	})
	// A second client with cost-based AND ordering disabled reads the
	// same faulty chain: every compound differential also pins that the
	// staged (ordered / short-circuited) executor returns byte-identical
	// rows to the unstaged one.
	w.unordered = core.NewClient(table, core.Config{
		Clock:              w.clock,
		IndexDir:           "rottnest",
		Timeout:            time.Hour,
		CacheBytes:         -1,
		Retry:              w.opts.Retry,
		DisableANDOrdering: true,
	})
	// The oracle reads the same bytes through a pristine handle on the
	// base store: ground truth is never subject to injected faults.
	oracleTable, err := lake.OpenWith(ctx, w.base, "lake", lake.OpenOptions{Clock: w.clock})
	if err != nil {
		return fmt.Errorf("harness: open oracle: %w", err)
	}
	w.oracle = bruteforce.NewCluster(oracleTable, bruteforce.ClusterConfig{Workers: 4})

	// ModeSharded: scatter-gather routers over the same faulty chain.
	// Every differential search replays through each fan-out and must
	// come back byte-identical (compareCompound). The two-shard router
	// runs two replicas with hedging enabled so the hedge path sees
	// faults too; worker caches are off so every shard read traverses
	// the fault layer (the workers share the chain's retry layer).
	if w.opts.Mode == ModeSharded {
		for _, o := range []shard.Options{
			{Shards: 1},
			{Shards: 2, Replicas: 2, Hedge: shard.HedgeOptions{Enabled: true}},
			{Shards: 5},
		} {
			o.IndexDir = "rottnest"
			o.Clock = w.clock
			o.Timeout = time.Hour
			o.CacheBytes = -1
			r, err := shard.New(octx(ctx), chain, "lake", o)
			if err != nil {
				return fmt.Errorf("harness: shard router: %w", err)
			}
			w.routers = append(w.routers, r)
		}
	}

	// ModeIngest: appends flow through the group-commit writer over the
	// same faulty chain, and maintenance runs as scheduler steps. The
	// pause watermark sits above anything the run can accumulate —
	// liveness must not depend on a worker stepping the scheduler while
	// every other worker is blocked in Append — and the request budget
	// is effectively unlimited so every step may work (pacing has its
	// own tests in internal/ingest).
	if w.opts.Mode == ModeIngest {
		w.writer = ingest.NewWriter(table, ingest.WriterOptions{
			MaxBatchRows:       64,
			GroupCommitBatches: 4,
			Parquet:            parquet.WriterOptions{RowGroupRows: 64, PageBytes: 1024},
			Clock:              w.clock,
		})
		var policy adaptive.SchedulerPolicy
		if w.opts.Adaptive {
			// Heat-driven scheduling under the same faults: searches
			// feed the ledger, index jobs chase hot files (sometimes as
			// partial hot-subset builds), and the differential checks
			// prove none of it changes a search result. No autopilot:
			// demotion has its own virtual-clock test in internal/ingest,
			// and here every column is queried, so it could never fire.
			ledger := adaptive.NewLedger(adaptive.LedgerOptions{Clock: w.clock})
			w.cli.SetHeatObserver(ledger)
			policy = adaptive.NewPolicy(adaptive.PolicyOptions{Ledger: ledger, Client: w.cli})
		}
		w.sched = ingest.NewScheduler(table, ingest.SchedulerOptions{
			Client:         w.cli,
			Writer:         w.writer,
			Specs:          w.specs,
			Clock:          w.clock,
			RequestsPerSec: 1e9,
			PauseAboveRows: 1 << 30,
			Adaptive:       policy,
		})
	}

	// Seed data so early searches and indexes have something to chew.
	seedRng := rand.New(rand.NewSource(w.opts.Seed))
	for i := 0; i < 2; i++ {
		if err := w.appendBatch(octx(ctx), seedRng); err != nil {
			return err
		}
	}
	if err := w.index(octx(ctx)); err != nil {
		return err
	}

	// The storm: seeded workers interleaving every op type.
	errs := make([]error, w.opts.Workers)
	var wg sync.WaitGroup
	for i := 0; i < w.opts.Workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.worker(ctx, i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("harness: worker %d: %w", i, err)
		}
	}
	// The storm has quiesced: the registry mirror and the legacy
	// atomic StoreMetrics must have counted exactly the same work.
	if err := w.checkStoreDrift(); err != nil {
		return fmt.Errorf("harness: after storm: %w", err)
	}
	return w.finale(ctx)
}

// checkStoreDrift is the double-counting guard: the Instrumented
// layer feeds both the legacy atomic Metrics and its obs registry,
// and the two must agree request-for-request and byte-for-byte at
// every quiescent point. Only call it when no ops are in flight —
// the two counters are bumped non-atomically within each request.
func (w *world) checkStoreDrift() error {
	legacy := w.metrics.Snapshot()
	view := objectstore.MetricsFromSnapshot(w.inst.Registry().Snapshot())
	if legacy != view {
		return fmt.Errorf("store metrics drift: registry %+v vs legacy %+v", view, legacy)
	}
	return nil
}

// worker runs one seeded op schedule.
func (w *world) worker(ctx context.Context, id int) error {
	rng := rand.New(rand.NewSource(w.opts.Seed*1000 + int64(id)))
	lastVersion := int64(-1)
	for i := 0; i < w.opts.OpsPerWorker; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		opCtx := octx(ctx)
		var err error
		if w.opts.Mode == ModeIngest {
			// Maintenance flows through the scheduler instead of
			// explicit index/compact/vacuum ops.
			switch pick := rng.Intn(13); {
			case pick < 4:
				lastVersion, err = w.searchDifferential(opCtx, rng, lastVersion)
			case pick < 7:
				err = w.appendBatch(opCtx, rng)
			case pick < 8:
				err = w.deleteOne(opCtx, rng)
			case pick < 11:
				err = w.schedStep(opCtx)
			case pick == 11:
				err = w.lakeCompact(opCtx)
			default:
				err = w.writerFlush(opCtx)
			}
		} else {
			switch pick := rng.Intn(13); {
			case pick < 4:
				lastVersion, err = w.searchDifferential(opCtx, rng, lastVersion)
			case pick < 6:
				err = w.appendBatch(opCtx, rng)
			case pick < 8:
				err = w.deleteOne(opCtx, rng)
			case pick < 10:
				err = w.index(opCtx)
			case pick == 10:
				err = w.compact(opCtx)
			case pick == 11:
				err = w.lakeCompact(opCtx)
			default:
				err = w.vacuum(opCtx, rng)
			}
		}
		if err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
		w.advance(time.Duration(5+rng.Intn(25)) * time.Second)
	}
	return nil
}

// advance moves the world clock forward within the storm budget.
func (w *world) advance(d time.Duration) {
	w.mu.Lock()
	if d > w.budget {
		d = w.budget
	}
	w.budget -= d
	w.mu.Unlock()
	if d > 0 {
		w.clock.Advance(d)
	}
}

// pin registers a snapshot version as in use, protecting it from
// concurrent lake vacuums; the returned func releases it.
func (w *world) pin(v int64) func() {
	w.mu.Lock()
	w.pins[v]++
	w.mu.Unlock()
	return func() {
		w.mu.Lock()
		w.pins[v]--
		if w.pins[v] == 0 {
			delete(w.pins, v)
		}
		w.mu.Unlock()
	}
}

// minPinned is the oldest version a vacuum must keep searchable.
func (w *world) minPinned(latest int64) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	min := latest
	for v := range w.pins {
		if v < min {
			min = v
		}
	}
	return min
}

// appendBatch ingests one batch and records the planted state.
func (w *world) appendBatch(ctx context.Context, rng *rand.Rand) error {
	n := 40 + rng.Intn(40)
	b := parquet.NewBatch(w.schema)
	var keys [][16]byte
	var needle string
	switch w.opts.Mode {
	case ModeText:
		w.mu.Lock()
		docs := w.textGen.Docs(n)
		needle = fmt.Sprintf("marker-%d-x", len(w.needles))
		w.mu.Unlock()
		docs = workload.PlantNeedle(docs, needle, []int{0, n / 2, n - 1})
		vals := make([][]byte, n)
		for i, d := range docs {
			vals[i] = []byte(d)
		}
		b.Cols[0] = parquet.ColumnValues{Bytes: vals}
	case ModeCompound, ModeSharded:
		// Two indexed columns per row: a unique key and a document.
		// Every document carries the common tag (so key AND tag pins
		// exactly one row); a per-batch marker lands on three rows.
		w.mu.Lock()
		keys = w.uuidGen.Batch(n)
		docs := w.textGen.Docs(n)
		needle = fmt.Sprintf("marker-%d-x", len(w.needles))
		w.mu.Unlock()
		docs = workload.PlantNeedle(docs, needle, []int{0, n / 2, n - 1})
		ids := make([][]byte, n)
		bodies := make([][]byte, n)
		for i, k := range keys {
			kk := k
			ids[i] = kk[:]
			bodies[i] = []byte(docs[i] + " common-tag")
		}
		b.Cols[0] = parquet.ColumnValues{Bytes: ids}
		b.Cols[1] = parquet.ColumnValues{Bytes: bodies}
	default:
		w.mu.Lock()
		keys = w.uuidGen.Batch(n)
		w.mu.Unlock()
		ids := make([][]byte, n)
		pay := make([][]byte, n)
		for i, k := range keys {
			kk := k
			ids[i] = kk[:]
			pay[i] = []byte("p")
		}
		b.Cols[0] = parquet.ColumnValues{Bytes: ids}
		b.Cols[1] = parquet.ColumnValues{Bytes: pay}
	}
	var path string
	if w.opts.Mode == ModeIngest {
		// Through the group-commit writer: the ack resolves only at
		// durability, and its path is where the rows actually landed
		// (possibly a micro-batch shared with other producers).
		ack, err := w.writer.Append(ctx, b)
		if err != nil {
			return fmt.Errorf("writer append: %w", err)
		}
		if _, err := ack.Wait(ctx); err != nil {
			return fmt.Errorf("writer ack: %w", err)
		}
		path = ack.Path()
	} else {
		var err error
		path, err = w.table.Append(ctx, b, parquet.WriterOptions{RowGroupRows: 64, PageBytes: 1024})
		if err != nil {
			return fmt.Errorf("append: %w", err)
		}
	}
	w.mu.Lock()
	if needle != "" {
		w.needles = append(w.needles, needle)
	}
	for _, k := range keys {
		w.live[k] = path
	}
	w.appends++
	w.mu.Unlock()
	return nil
}

// deleteOne removes one row via a deletion vector. UUID mode deletes
// a tracked live key (feeding the exactly-once finale); text mode
// deletes an arbitrary row (the oracle tracks the truth).
func (w *world) deleteOne(ctx context.Context, rng *rand.Rand) error {
	snap, err := w.table.Snapshot(ctx)
	if err != nil {
		return fmt.Errorf("delete: snapshot: %w", err)
	}
	if w.opts.Mode == ModeText {
		if len(snap.Files) == 0 {
			return nil
		}
		f := snap.Files[rng.Intn(len(snap.Files))]
		if f.Rows == 0 {
			return nil
		}
		err := w.table.DeleteRows(ctx, f.Path, []uint32{uint32(rng.Int63n(f.Rows))})
		if errors.Is(err, lake.ErrConflict) || errors.Is(err, lake.ErrNoSnapshot) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("delete rows: %w", err)
		}
		w.mu.Lock()
		w.deletes++
		w.mu.Unlock()
		return nil
	}
	w.mu.Lock()
	var victim [16]byte
	var path string
	for k, p := range w.live {
		victim, path = k, p
		break
	}
	w.mu.Unlock()
	if path == "" {
		return nil
	}
	if _, ok := snap.File(path); !ok {
		return nil // compacted away; key now lives elsewhere
	}
	// Introspection (finding the victim's row) reads the pristine base
	// store: it is the test driver's bookkeeping, not system behaviour.
	vals, _, _, err := parquet.ScanColumn(ctx, w.base, w.table.Root()+path, 0)
	if err != nil {
		return nil // racing lake maintenance
	}
	for i, v := range vals.Bytes {
		if bytes.Equal(v, victim[:]) {
			err := w.table.DeleteRows(ctx, path, []uint32{uint32(i)})
			if errors.Is(err, lake.ErrConflict) {
				return nil
			}
			if err != nil {
				return fmt.Errorf("delete rows: %w", err)
			}
			w.mu.Lock()
			delete(w.live, victim)
			w.deleted[victim] = true
			w.deletes++
			w.mu.Unlock()
			return nil
		}
	}
	return nil
}

func (w *world) index(ctx context.Context) error {
	for _, spec := range w.specs {
		_, err := w.cli.Index(ctx, spec.Column, spec.Kind)
		if errors.Is(err, core.ErrAborted) || errors.Is(err, core.ErrBelowMinRows) {
			continue
		}
		if err != nil {
			return fmt.Errorf("index %s: %w", spec.Column, err)
		}
	}
	return nil
}

func (w *world) compact(ctx context.Context) error {
	for _, spec := range w.specs {
		_, err := w.cli.Compact(ctx, spec.Column, spec.Kind, core.CompactOptions{})
		if errors.Is(err, core.ErrAborted) {
			continue
		}
		if err != nil {
			return fmt.Errorf("compact %s: %w", spec.Column, err)
		}
	}
	return nil
}

func (w *world) lakeCompact(ctx context.Context) error {
	_, err := w.table.Compact(ctx, 1<<30, 0)
	if errors.Is(err, lake.ErrConflict) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("lake compact: %w", err)
	}
	return nil
}

// vacuum runs index or lake garbage collection, keeping every pinned
// snapshot searchable. During the storm the minimum-age rule keeps all
// young objects safe; the finale exercises physical deletion.
func (w *world) vacuum(ctx context.Context, rng *rand.Rand) error {
	latest, err := w.table.Version(ctx)
	if err != nil {
		return fmt.Errorf("vacuum: version: %w", err)
	}
	keep := w.minPinned(latest)
	if rng.Intn(2) == 0 {
		if _, err := w.cli.Vacuum(ctx, core.VacuumOptions{KeepSnapshot: keep}); err != nil {
			return fmt.Errorf("index vacuum: %w", err)
		}
	} else {
		removed, err := w.table.Vacuum(ctx, keep, time.Hour)
		if err != nil {
			return fmt.Errorf("lake vacuum: %w", err)
		}
		w.mu.Lock()
		for _, p := range removed {
			w.removed[p] = true
		}
		w.mu.Unlock()
	}
	w.mu.Lock()
	w.maintenance++
	w.mu.Unlock()
	return nil
}

// schedStep runs one scheduler decision. Concurrent steps may race on
// the same maintenance op (two workers both picking the index job),
// which the protocol resolves by aborting one side — tolerated here
// exactly as the explicit maintenance ops tolerate it.
func (w *world) schedStep(ctx context.Context) error {
	worked, err := w.sched.Step(ctx)
	if errors.Is(err, core.ErrAborted) || errors.Is(err, lake.ErrConflict) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("sched step: %w", err)
	}
	if worked {
		w.mu.Lock()
		w.maintenance++
		w.mu.Unlock()
	}
	return nil
}

// writerFlush forces the writer to commit everything staged so far.
func (w *world) writerFlush(ctx context.Context) error {
	if err := w.writer.Flush(ctx); err != nil {
		return fmt.Errorf("writer flush: %w", err)
	}
	return nil
}

// pickQuery builds one exact K=0 query plus the oracle predicate that
// defines its ground truth.
func (w *world) pickQuery(rng *rand.Rand, version int64) (core.Query, insitu.Predicate, error) {
	if w.opts.Mode == ModeText {
		w.mu.Lock()
		n := len(w.needles)
		var needle string
		if n > 0 {
			needle = w.needles[rng.Intn(n)]
		}
		w.mu.Unlock()
		switch {
		case needle == "" || rng.Intn(4) == 0:
			// All markers at once: a substring shared by every needle.
			pat := []byte("marker-")
			return core.Query{Column: w.column, Substring: pat, K: 0, Snapshot: version},
				func(v []byte) (bool, float64) { return bytes.Contains(v, pat), 0 }, nil
		case rng.Intn(3) == 0:
			expr := `marker-[0-9]+-x`
			re, err := regexp.Compile(expr)
			if err != nil {
				return core.Query{}, nil, err
			}
			return core.Query{Column: w.column, Regex: expr, K: 0, Snapshot: version},
				func(v []byte) (bool, float64) { return re.Match(v), 0 }, nil
		default:
			pat := []byte(needle)
			return core.Query{Column: w.column, Substring: pat, K: 0, Snapshot: version},
				func(v []byte) (bool, float64) { return bytes.Contains(v, pat), 0 }, nil
		}
	}
	// UUID mode: live key usually, deleted or absent key sometimes —
	// negative results must agree too.
	w.mu.Lock()
	var key [16]byte
	roll := rng.Intn(10)
	switch {
	case roll < 7 && len(w.live) > 0:
		for k := range w.live {
			key = k
			break
		}
	case roll < 9 && len(w.deleted) > 0:
		for k := range w.deleted {
			key = k
			break
		}
	default:
		rng.Read(key[:])
	}
	w.mu.Unlock()
	kk := key
	return core.Query{Column: w.column, UUID: &kk, K: 0, Snapshot: version},
		func(v []byte) (bool, float64) { return bytes.Equal(v, kk[:]), 0 }, nil
}

// pickCompound builds one compound K=0 query plus the multi-column
// oracle predicate defining its ground truth. columns lists what the
// oracle must scan, aligned with the vals tuple eval receives;
// outputIdx locates the query's output column in that tuple.
func (w *world) pickCompound(rng *rand.Rand, version int64) (cq core.CompoundQuery, columns []string, outputIdx int, eval func([][]byte) (bool, float64), err error) {
	w.mu.Lock()
	var liveKey, deadKey [16]byte
	haveLive, haveDead := false, false
	for k := range w.live {
		liveKey, haveLive = k, true
		break
	}
	for k := range w.deleted {
		deadKey, haveDead = k, true
		break
	}
	n1, n2 := "marker-", "common-tag"
	if len(w.needles) > 0 {
		n1 = w.needles[rng.Intn(len(w.needles))]
		n2 = w.needles[rng.Intn(len(w.needles))]
	}
	w.mu.Unlock()
	if !haveLive {
		rng.Read(liveKey[:])
	}
	if !haveDead {
		rng.Read(deadKey[:])
	}
	lk, dk := liveKey, deadKey

	has := func(pat string) func(v []byte) bool {
		p := []byte(pat)
		return func(v []byte) bool { return bytes.Contains(v, p) }
	}
	markerRe := regexp.MustCompile(`marker-[0-9]+-x`)
	bodyOnly := func(expr *core.Expr, pred func(v []byte) bool) {
		cq = core.CompoundQuery{Expr: expr, K: 0, Snapshot: version, Output: "body"}
		columns, outputIdx = []string{"body"}, 0
		eval = func(vals [][]byte) (bool, float64) { return pred(vals[0]), 0 }
	}
	cross := func(expr *core.Expr, pred func(id, body []byte) bool) {
		cq = core.CompoundQuery{Expr: expr, K: 0, Snapshot: version, Output: "body"}
		columns, outputIdx = []string{"id", "body"}, 1
		eval = func(vals [][]byte) (bool, float64) { return pred(vals[0], vals[1]), 0 }
	}

	switch rng.Intn(7) {
	case 0:
		// Live key AND the tag every row carries: pins exactly one row
		// through a cross-column page intersection.
		cross(core.And(core.PredUUID("id", lk), core.PredSubstring("body", []byte("common-tag"))),
			func(id, body []byte) bool {
				return bytes.Equal(id, lk[:]) && bytes.Contains(body, []byte("common-tag"))
			})
	case 1:
		p1, p2 := has("marker-"), has(n1)
		bodyOnly(core.And(core.PredSubstring("body", []byte("marker-")), core.PredSubstring("body", []byte(n1))),
			func(v []byte) bool { return p1(v) && p2(v) })
	case 2:
		p1, p2 := has(n1), has(n2)
		bodyOnly(core.Or(core.PredSubstring("body", []byte(n1)), core.PredSubstring("body", []byte(n2))),
			func(v []byte) bool { return p1(v) || p2(v) })
	case 3:
		tag := has("common-tag")
		bodyOnly(core.And(core.PredRegex("body", `marker-[0-9]+-x`), core.PredSubstring("body", []byte("common-tag"))),
			func(v []byte) bool { return markerRe.Match(v) && tag(v) })
	case 4:
		cq = core.CompoundQuery{
			Expr: core.Or(core.PredUUID("id", lk), core.PredUUID("id", dk)),
			K:    0, Snapshot: version, Output: "id",
		}
		columns, outputIdx = []string{"id"}, 0
		eval = func(vals [][]byte) (bool, float64) {
			return bytes.Equal(vals[0], lk[:]) || bytes.Equal(vals[0], dk[:]), 0
		}
	case 5:
		p1, p2, p3 := has(n1), has(n2), has("marker-")
		bodyOnly(core.And(
			core.Or(core.PredSubstring("body", []byte(n1)), core.PredSubstring("body", []byte(n2))),
			core.PredSubstring("body", []byte("marker-"))),
			func(v []byte) bool { return (p1(v) || p2(v)) && p3(v) })
	default:
		// Deleted key AND tag: both sides must agree the row is gone.
		cross(core.And(core.PredUUID("id", dk), core.PredSubstring("body", []byte("common-tag"))),
			func(id, body []byte) bool {
				return bytes.Equal(id, dk[:]) && bytes.Contains(body, []byte("common-tag"))
			})
	}
	return cq, columns, outputIdx, eval, nil
}

// searchDifferential pins a snapshot, searches it through the faulty
// indexed path, scans it through the pristine oracle, and requires
// byte-for-byte identical results. It also checks version
// monotonicity per worker.
func (w *world) searchDifferential(ctx context.Context, rng *rand.Rand, lastVersion int64) (int64, error) {
	v, err := w.table.Version(ctx)
	if err != nil {
		return lastVersion, fmt.Errorf("search: version: %w", err)
	}
	if v < lastVersion {
		return lastVersion, fmt.Errorf("snapshot went backwards: %d after %d", v, lastVersion)
	}
	unpin := w.pin(v)
	defer unpin()

	if w.opts.Mode == ModeCompound || w.opts.Mode == ModeSharded {
		return v, w.compareCompound(ctx, rng, v)
	}

	q, pred, err := w.pickQuery(rng, v)
	if err != nil {
		return v, err
	}
	res, tree, err := w.cli.Trace(ctx, q)
	if err != nil {
		return v, fmt.Errorf("search: %w", err)
	}
	// Span-tree well-formedness: every search's trace must be a closed,
	// named, non-negative tree rooted at the protocol phases.
	if verr := tree.Validate(); verr != nil {
		return v, fmt.Errorf("search span tree (%s): %w", describeQuery(q), verr)
	}
	if tree.Find("search.plan") == nil {
		return v, fmt.Errorf("search span tree (%s): no search.plan phase", describeQuery(q))
	}
	want, _, err := w.oracle.Scan(octx(ctx), v, w.column, pred)
	if err != nil {
		return v, fmt.Errorf("oracle: %w", err)
	}
	if err := diffMatches(res.Matches, want); err != nil {
		return v, fmt.Errorf("differential mismatch at version %d (%s): %w", v, describeQuery(q), err)
	}
	w.mu.Lock()
	w.searches++
	w.compared += len(want)
	w.mu.Unlock()
	return v, nil
}

// compareCompound runs one compound differential search at the pinned
// version: the faulty indexed path against the pristine multi-column
// oracle scan, byte for byte.
func (w *world) compareCompound(ctx context.Context, rng *rand.Rand, v int64) error {
	cq, columns, outputIdx, eval, err := w.pickCompound(rng, v)
	if err != nil {
		return err
	}
	res, tree, err := w.cli.TraceCompound(ctx, cq)
	if err != nil {
		return fmt.Errorf("compound search (%s): %w", describeCompound(cq), err)
	}
	if verr := tree.Validate(); verr != nil {
		return fmt.Errorf("compound span tree (%s): %w", describeCompound(cq), verr)
	}
	if tree.Find("search.plan") == nil {
		return fmt.Errorf("compound span tree (%s): no search.plan phase", describeCompound(cq))
	}
	want, _, err := w.oracle.ScanColumns(octx(ctx), v, columns, outputIdx, eval)
	if err != nil {
		return fmt.Errorf("compound oracle: %w", err)
	}
	if err := diffMatches(res.Matches, want); err != nil {
		return fmt.Errorf("compound differential mismatch at version %d (%s): %w", v, describeCompound(cq), err)
	}
	// The same pinned query through the ordering-disabled client must be
	// byte-identical: cost-based AND staging (and its short-circuit) may
	// only change probe order and count, never the rows.
	ures, err := w.unordered.SearchCompound(ctx, cq)
	if err != nil {
		return fmt.Errorf("unordered compound search (%s): %w", describeCompound(cq), err)
	}
	if ures.Stats.OrderedAND || ures.Stats.ShortCircuited {
		return fmt.Errorf("unordered client reported staged execution (%s)", describeCompound(cq))
	}
	if err := diffMatches(ures.Matches, want); err != nil {
		return fmt.Errorf("ordered/unordered differential mismatch at version %d (%s): %w", v, describeCompound(cq), err)
	}
	// ModeSharded: the same pinned query must come back byte-identical
	// through every scatter-gather fan-out. The routers read through
	// the same faulty chain, so per-shard recovery is exercised too,
	// and each trace must be a well-formed scatter tree.
	for _, r := range w.routers {
		rres, rtree, err := r.TraceCompound(ctx, cq)
		if err != nil {
			return fmt.Errorf("sharded search (%d shards, %s): %w", r.Shards(), describeCompound(cq), err)
		}
		if verr := rtree.Validate(); verr != nil {
			return fmt.Errorf("sharded span tree (%d shards, %s): %w", r.Shards(), describeCompound(cq), verr)
		}
		if rtree.Find("router.plan") == nil {
			return fmt.Errorf("sharded span tree (%d shards): no router.plan phase", r.Shards())
		}
		if got := len(rtree.FindAll("router.shard")); got != rres.Stats.Shards {
			return fmt.Errorf("sharded span tree (%d shards): %d router.shard spans, stats say %d",
				r.Shards(), got, rres.Stats.Shards)
		}
		if err := diffMatches(rres.Matches, want); err != nil {
			return fmt.Errorf("sharded differential mismatch at version %d (%d shards, %s): %w",
				v, r.Shards(), describeCompound(cq), err)
		}
		w.mu.Lock()
		w.compared += len(want)
		w.mu.Unlock()
	}
	w.mu.Lock()
	w.searches++
	w.compared += len(want)
	w.mu.Unlock()
	return nil
}

func describeCompound(cq core.CompoundQuery) string {
	if s, err := core.FormatWhere(cq.Expr); err == nil {
		return s
	}
	return "compound"
}

func describeQuery(q core.Query) string {
	switch {
	case q.UUID != nil:
		return fmt.Sprintf("uuid=%x", *q.UUID)
	case q.Regex != "":
		return "regex=" + q.Regex
	default:
		return fmt.Sprintf("substring=%q", q.Substring)
	}
}

// diffMatches requires got == want, byte for byte, after canonical
// ordering.
func diffMatches(got, want []insitu.Match) error {
	got = append([]insitu.Match(nil), got...)
	want = append([]insitu.Match(nil), want...)
	insitu.SortMatches(got)
	insitu.SortMatches(want)
	if len(got) != len(want) {
		return fmt.Errorf("indexed search found %d matches, oracle %d", len(got), len(want))
	}
	for i := range got {
		g, o := got[i], want[i]
		if g.Path != o.Path || g.Row != o.Row || !bytes.Equal(g.Value, o.Value) {
			return fmt.Errorf("match %d differs: indexed (%s,%d,%q) vs oracle (%s,%d,%q)",
				i, g.Path, g.Row, g.Value, o.Path, o.Row, o.Value)
		}
	}
	return nil
}

// finale quiesces the world, ages it past the index timeout, runs the
// full maintenance cycle (exercising physical deletion), and verifies
// the terminal invariants.
func (w *world) finale(ctx context.Context) error {
	fctx := octx(ctx)
	// ModeIngest: drain the writer (every pending ack must resolve)
	// and let the scheduler converge before the terminal invariants.
	if w.writer != nil {
		if err := w.writer.Close(fctx); err != nil {
			return fmt.Errorf("finale writer close: %w", err)
		}
		if err := w.sched.Quiesce(fctx); err != nil {
			return fmt.Errorf("finale scheduler quiesce: %w", err)
		}
	}
	// Age everything past the index timeout so vacuum's physical
	// deletion actually fires, then tidy up.
	w.clock.Advance(2 * time.Hour)
	if err := w.index(fctx); err != nil {
		return fmt.Errorf("finale: %w", err)
	}
	if _, err := w.cli.Maintain(fctx, core.MaintainPolicy{CompactWhenEntries: 2},
		w.specs...); err != nil {
		return fmt.Errorf("finale maintain: %w", err)
	}
	latest, err := w.table.Version(fctx)
	if err != nil {
		return err
	}
	removed, err := w.table.Vacuum(fctx, latest, time.Minute)
	if err != nil {
		return fmt.Errorf("finale lake vacuum: %w", err)
	}
	w.mu.Lock()
	for _, p := range removed {
		w.removed[p] = true
	}
	w.maintenance++
	w.mu.Unlock()

	// Existence invariant after physical deletion.
	if err := w.cli.CheckExistence(fctx); err != nil {
		return fmt.Errorf("finale: %w", err)
	}
	// No resurrected vacuumed files.
	snap, err := w.table.Snapshot(fctx)
	if err != nil {
		return err
	}
	for _, f := range snap.Files {
		if w.removed[f.Path] {
			return fmt.Errorf("vacuumed file %s resurrected in snapshot %d", f.Path, snap.Version)
		}
	}

	// Terminal differential sweep plus the exactly-once model check.
	rng := rand.New(rand.NewSource(w.opts.Seed + 42))
	for i := 0; i < 8; i++ {
		if _, err := w.searchDifferential(octx(ctx), rng, -1); err != nil {
			return fmt.Errorf("finale: %w", err)
		}
	}
	if w.opts.Mode != ModeText {
		checked := 0
		for k := range w.live {
			res, err := w.cli.Search(octx(ctx), core.Query{Column: w.column, UUID: ptr(k), K: 0, Snapshot: -1})
			if err != nil {
				return fmt.Errorf("finale live search: %w", err)
			}
			if len(res.Matches) != 1 {
				return fmt.Errorf("live key %x matched %d times (lost or duplicated row)", k, len(res.Matches))
			}
			// Exactly-once must hold through every fan-out too.
			if checked < 10 {
				for _, r := range w.routers {
					rres, err := r.Search(octx(ctx), core.Query{Column: w.column, UUID: ptr(k), K: 0, Snapshot: -1})
					if err != nil {
						return fmt.Errorf("finale sharded live search (%d shards): %w", r.Shards(), err)
					}
					if len(rres.Matches) != 1 {
						return fmt.Errorf("live key %x matched %d times through %d shards", k, len(rres.Matches), r.Shards())
					}
				}
			}
			if checked++; checked >= 30 {
				break
			}
		}
		checked = 0
		for k := range w.deleted {
			res, err := w.cli.Search(octx(ctx), core.Query{Column: w.column, UUID: ptr(k), K: 0, Snapshot: -1})
			if err != nil {
				return fmt.Errorf("finale deleted search: %w", err)
			}
			if len(res.Matches) != 0 {
				return fmt.Errorf("deleted key %x resurrected", k)
			}
			if checked < 5 {
				for _, r := range w.routers {
					rres, err := r.Search(octx(ctx), core.Query{Column: w.column, UUID: ptr(k), K: 0, Snapshot: -1})
					if err != nil {
						return fmt.Errorf("finale sharded deleted search (%d shards): %w", r.Shards(), err)
					}
					if len(rres.Matches) != 0 {
						return fmt.Errorf("deleted key %x resurrected through %d shards", k, r.Shards())
					}
				}
			}
			if checked++; checked >= 15 {
				break
			}
		}
	}
	return nil
}

func ptr(k [16]byte) *[16]byte { return &k }
