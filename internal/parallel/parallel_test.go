package parallel

import (
	"sync/atomic"
	"testing"
)

// TestForWorkersPartition checks every element of [0, n) is visited
// exactly once, for every (workers, n) shape the builders use —
// including workers > n, n == 0, and the serial fallback.
func TestForWorkersPartition(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 63, 64, 65, 1000} {
			visits := make([]int32, n)
			ForWorkers(workers, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("workers=%d n=%d: bad range [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

// TestForEachVisitsAll checks the per-item wrapper covers the range
// exactly once.
func TestForEachVisitsAll(t *testing.T) {
	const n = 257
	visits := make([]int32, n)
	ForEach(n, func(i int) { atomic.AddInt32(&visits[i], 1) })
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

// TestDoRunsAll checks Do waits for every function, including the
// single-function inline path.
func TestDoRunsAll(t *testing.T) {
	var ran atomic.Int32
	Do(func() { ran.Add(1) })
	Do(func() { ran.Add(1) }, func() { ran.Add(1) }, func() { ran.Add(1) })
	if got := ran.Load(); got != 4 {
		t.Fatalf("ran %d functions, want 4", got)
	}
}

// TestForWorkersDeterministicSlots checks the static-partition
// contract the byte-determinism of the builds rests on: each index's
// output lands in its own slot regardless of worker count.
func TestForWorkersDeterministicSlots(t *testing.T) {
	const n = 100
	want := make([]int, n)
	ForWorkers(1, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			want[i] = i * i
		}
	})
	for _, workers := range []int{2, 3, 8} {
		got := make([]int, n)
		ForWorkers(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = i * i
			}
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}
