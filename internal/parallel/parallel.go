// Package parallel provides the shared CPU worker-pool primitives used
// by the index build pipelines (fmindex, trie, ivfpq) and the
// component compressor.
//
// The index builds are Rottnest's last CPU-bound hot path: the lazy
// protocol of Section IV only pays off if Index() is cheap, because
// the TCO phase diagram (Section VII) charges every refresh against
// the query savings. All helpers here preserve determinism — work is
// partitioned by index, never by arrival order, and no helper reorders
// results — so parallel builds emit byte-identical index files to
// serial ones.
package parallel

import (
	"runtime"
	"sync"
)

// For runs fn over contiguous chunks partitioning [0, n), on up to
// GOMAXPROCS goroutines. fn must be safe to call concurrently on
// disjoint ranges. Chunks are assigned statically (worker w gets one
// contiguous range), so per-index outputs land exactly where a serial
// loop would put them.
func For(n int, fn func(lo, hi int)) {
	ForWorkers(runtime.GOMAXPROCS(0), n, fn)
}

// ForWorkers is For with an explicit worker bound; workers <= 1 runs
// fn(0, n) inline on the calling goroutine.
func ForWorkers(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n) across up to GOMAXPROCS
// goroutines. Use For when the per-item work is tiny; ForEach saves
// the inner loop when each item is substantial (a block to compress, a
// bucket to sort).
func ForEach(n int, fn func(i int)) {
	For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Do runs the given functions concurrently and waits for all of them.
func Do(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	wg.Wait()
}
