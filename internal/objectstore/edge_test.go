package objectstore

import (
	"context"
	"errors"
	"testing"
	"time"

	"rottnest/internal/simtime"
)

func TestContextCancellationRespected(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			s := mk()
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if err := s.Put(ctx, "k", []byte("v")); !errors.Is(err, context.Canceled) {
				t.Fatalf("Put: %v", err)
			}
			if _, err := s.Get(ctx, "k"); !errors.Is(err, context.Canceled) {
				t.Fatalf("Get: %v", err)
			}
			if _, err := s.List(ctx, ""); !errors.Is(err, context.Canceled) {
				t.Fatalf("List: %v", err)
			}
			if err := s.Delete(ctx, "k"); !errors.Is(err, context.Canceled) {
				t.Fatalf("Delete: %v", err)
			}
			if _, err := s.Head(ctx, "k"); !errors.Is(err, context.Canceled) {
				t.Fatalf("Head: %v", err)
			}
			if err := s.PutIfAbsent(ctx, "k", nil); !errors.Is(err, context.Canceled) {
				t.Fatalf("PutIfAbsent: %v", err)
			}
		})
	}
}

func TestDirStorePersistenceAcrossHandles(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s1, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(ctx, "a/b", []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(ctx, "a/b")
	if err != nil || string(got) != "persisted" {
		t.Fatalf("Get via new handle: %q, %v", got, err)
	}
	if s1.Root() != s2.Root() {
		t.Fatal("roots differ")
	}
}

func TestInstrumentedDeleteAndHeadCharges(t *testing.T) {
	s, metrics := Instrument(NewMemStore(nil), testModel())
	sess := simtime.NewSession()
	ctx := simtime.With(context.Background(), sess)
	s.Put(ctx, "k", []byte("v"))
	afterPut := sess.Elapsed()
	if _, err := s.Head(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if sess.Elapsed() != afterPut+testModel().GetTTFB {
		t.Fatalf("Head charge: %v", sess.Elapsed()-afterPut)
	}
	beforeDel := sess.Elapsed()
	if err := s.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if sess.Elapsed() != beforeDel+testModel().PutTTFB {
		t.Fatalf("Delete charge: %v", sess.Elapsed()-beforeDel)
	}
	snap := metrics.Snapshot()
	if snap.Heads != 1 || snap.Deletes != 1 {
		t.Fatalf("metrics: %+v", snap)
	}
}

func TestFanGetWithoutSessionStillParallel(t *testing.T) {
	s, metrics := Instrument(NewMemStore(nil), testModel())
	ctx := context.Background()
	for _, k := range []string{"a", "b", "c", "d"} {
		s.Put(ctx, k, []byte("x"))
	}
	reqs := []RangeRequest{{Key: "a", Length: -1}, {Key: "b", Length: -1}, {Key: "c", Length: -1}, {Key: "d", Length: -1}}
	before := metrics.Snapshot()
	res, err := FanGet(ctx, s, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if string(r) != "x" {
			t.Fatalf("result %d = %q", i, r)
		}
	}
	if metrics.Snapshot().Sub(before).Gets != 4 {
		t.Fatal("fan GET count")
	}
}

func TestPutLatencyScalesWithSize(t *testing.T) {
	m := testModel()
	small := m.PutLatency(1 << 10)
	big := m.PutLatency(100 << 20)
	if big <= small {
		t.Fatalf("put latency flat: %v vs %v", small, big)
	}
	if small < m.PutTTFB {
		t.Fatalf("put latency below TTFB: %v", small)
	}
}

func TestVirtualClockTimestampsOrderVacuumDecisions(t *testing.T) {
	// The vacuum protocol compares object Created timestamps against
	// the timeout; verify ordering across clock advances.
	clock := simtime.NewVirtualClock()
	s := NewMemStore(clock)
	ctx := context.Background()
	s.Put(ctx, "old", []byte("1"))
	clock.Advance(time.Hour)
	s.Put(ctx, "new", []byte("2"))
	oldInfo, _ := s.Head(ctx, "old")
	newInfo, _ := s.Head(ctx, "new")
	cutoff := clock.Now().Add(-30 * time.Minute)
	if !oldInfo.Created.Before(cutoff) {
		t.Fatal("old object not before cutoff")
	}
	if newInfo.Created.Before(cutoff) {
		t.Fatal("new object before cutoff")
	}
}

func TestFailNthScopedPerOpClass(t *testing.T) {
	inner := NewMemStore(nil)
	fs := NewFaultStore(inner, FailNth(OpGet, 2))
	ctx := context.Background()
	inner.Put(ctx, "k", []byte("v"))
	// Puts never fire a Get fault.
	for i := 0; i < 3; i++ {
		if err := fs.Put(ctx, "p", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.Get(ctx, "k"); err != nil {
		t.Fatalf("first get: %v", err)
	}
	if _, err := fs.Get(ctx, "k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("second get: %v", err)
	}
	if _, err := fs.GetRange(ctx, "k", 0, 1); err != nil {
		t.Fatalf("third get: %v", err)
	}
	// Head faults fire separately.
	fs2 := NewFaultStore(inner, FailNth(OpHead, 1))
	if _, err := fs2.Head(ctx, "k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("head fault: %v", err)
	}
}
