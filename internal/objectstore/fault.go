package objectstore

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rottnest/internal/obs"
	"rottnest/internal/simtime"
)

// Errors injected by a FaultStore. Every injected error wraps
// ErrInjected, so tests and retry layers can use errors.Is against it
// to distinguish injected failures from real ones regardless of the
// specific fault kind.
var (
	// ErrInjected is the base error of every injected fault.
	ErrInjected = errors.New("objectstore: injected fault")
	// ErrThrottled models the store shedding load (S3's 503 SlowDown).
	// Retry layers classify it separately: throttles want longer,
	// jittered waits rather than the plain backoff schedule.
	ErrThrottled = fmt.Errorf("503 SlowDown: %w", ErrInjected)
	// ErrInjectedDeadline models a per-request deadline expiry (the
	// SDK-level timeout of a single HTTP attempt). It wraps both
	// context.DeadlineExceeded — so callers see the shape a real
	// request timeout has — and ErrInjected. Note the parent context
	// is NOT expired: the request is retryable.
	ErrInjectedDeadline = fmt.Errorf("request deadline expired: %w (%w)", context.DeadlineExceeded, ErrInjected)
	// ErrAmbiguousPut models the nastiest conditional-write failure:
	// the PutIfAbsent landed in the store but the response was lost,
	// so the caller gets an error for a write that succeeded. Only a
	// read-back can tell what happened.
	ErrAmbiguousPut = fmt.Errorf("response lost after conditional write: %w", ErrInjected)
)

// Op identifies a Store operation class for fault matching.
type Op int

// Operation classes.
const (
	OpPut Op = iota
	OpGet
	OpList
	OpDelete
	OpHead
)

// FaultKind enumerates the injected failure modes of a FaultProfile.
type FaultKind int

// Fault kinds, in the order a profile rolls them.
const (
	// FaultTransient is a retryable 5xx-style failure: the request
	// never reaches the store and ErrInjected is returned.
	FaultTransient FaultKind = iota
	// FaultThrottle is a 503 SlowDown, optionally starting a burst in
	// which the next ThrottleBurst operations are also throttled
	// (throttling is correlated in real stores: a hot prefix sheds
	// load for a window, not for one request).
	FaultThrottle
	// FaultLatency is a latency spike: the operation succeeds but is
	// charged SpikeLatency extra virtual time.
	FaultLatency
	// FaultDeadline is a per-request deadline expiry: the request
	// never reaches the store and ErrInjectedDeadline is returned.
	FaultDeadline
	// FaultAmbiguousPut applies to PutIfAbsent only: the write lands
	// in the store and ErrAmbiguousPut is returned anyway.
	FaultAmbiguousPut

	numFaultKinds
)

// Fault decides whether a given operation should fail with a plain
// transient ErrInjected. It is called with the operation class, the
// key (the prefix for List) and the 1-based sequence number of the
// operation across the store's lifetime. It is the scripted-fault-
// point hook of a FaultProfile, and the whole configuration of the
// legacy NewFaultStore constructor.
type Fault func(op Op, key string, seq int64) bool

// FaultProfile configures a FaultStore: seeded per-operation fault
// probabilities plus a scripted fault hook. The zero profile injects
// nothing. All probabilities are independent per operation and rolled
// in FaultKind order; the first that fires wins.
type FaultProfile struct {
	// Seed makes the probability rolls deterministic. Two stores with
	// the same profile fed the same operation sequence inject the
	// same faults.
	Seed int64

	// Transient is the probability of a FaultTransient per operation.
	Transient float64
	// Throttle is the probability of a FaultThrottle per operation.
	Throttle float64
	// ThrottleBurst is how many operations after a throttle are also
	// throttled, modelling correlated SlowDown windows. 0 means
	// throttles are independent.
	ThrottleBurst int
	// Latency is the probability of a FaultLatency per operation.
	Latency float64
	// SpikeLatency is the extra virtual time a latency spike charges.
	// Defaults to 400ms when Latency > 0.
	SpikeLatency time.Duration
	// Deadline is the probability of a FaultDeadline per operation.
	Deadline float64
	// AmbiguousPut is the probability, per PutIfAbsent, that the write
	// lands but ErrAmbiguousPut is returned.
	AmbiguousPut float64

	// Ops restricts injection to the listed operation classes; empty
	// means all classes. (FaultAmbiguousPut additionally requires the
	// operation to be a conditional put.)
	Ops []Op

	// Script is an optional scripted fault point: when it returns
	// true the operation fails with a FaultTransient before any
	// probability is rolled. Use it to hit an exact protocol step
	// (e.g. "the first meta-table commit after upload").
	Script Fault
}

func (p FaultProfile) withDefaults() FaultProfile {
	if p.SpikeLatency <= 0 {
		p.SpikeLatency = 400 * time.Millisecond
	}
	return p
}

// FaultCounts reports how many faults of each kind a FaultStore has
// injected. The differential harness uses it as a meta-check that a
// chaos run actually exercised the failure paths.
type FaultCounts struct {
	Transient     int64
	Throttles     int64
	LatencySpikes int64
	Deadlines     int64
	AmbiguousPuts int64
}

// Total is the number of injected faults of any kind.
func (c FaultCounts) Total() int64 {
	return c.Transient + c.Throttles + c.LatencySpikes + c.Deadlines + c.AmbiguousPuts
}

// FaultStore wraps a Store and injects failures according to a
// FaultProfile: transient errors, throttling bursts, latency spikes,
// per-request deadline expirations, and ambiguous conditional writes.
// Protocol tests use scripted faults to model indexer crashes before
// and after upload, failed commits, and vacuum races (Section IV-D of
// the paper); the differential harness uses seeded probabilities to
// model a misbehaving S3 under a whole workload.
type FaultStore struct {
	inner   Store
	profile FaultProfile
	seq     atomic.Int64

	mu        sync.Mutex
	rng       *rand.Rand
	burstLeft int
	counts    [numFaultKinds]int64
	reg       *obs.Registry
}

// faultMetricNames maps a FaultKind to its registry counter name.
var faultMetricNames = [numFaultKinds]string{
	FaultTransient:    "fault.transient",
	FaultThrottle:     "fault.throttles",
	FaultLatency:      "fault.latency_spikes",
	FaultDeadline:     "fault.deadlines",
	FaultAmbiguousPut: "fault.ambiguous_puts",
}

// faultKindLabels name kinds in trace span attributes.
var faultKindLabels = [numFaultKinds]string{
	FaultTransient:    "transient",
	FaultThrottle:     "throttle",
	FaultLatency:      "latency",
	FaultDeadline:     "deadline",
	FaultAmbiguousPut: "ambiguous_put",
}

// NewFaultStore wraps inner with a scripted fault predicate (a nil
// predicate never fires). It is shorthand for a FaultProfile with
// only Script set.
func NewFaultStore(inner Store, fault Fault) *FaultStore {
	return NewFaultStoreWithProfile(inner, FaultProfile{Script: fault})
}

// NewFaultStoreWithProfile wraps inner with the given fault profile.
func NewFaultStoreWithProfile(inner Store, profile FaultProfile) *FaultStore {
	profile = profile.withDefaults()
	return &FaultStore{
		inner:   inner,
		profile: profile,
		rng:     rand.New(rand.NewSource(profile.Seed)),
		reg:     obs.NewRegistry(),
	}
}

// Registry returns the store's metrics registry ("fault.*" names),
// mirroring Counts.
func (s *FaultStore) Registry() *obs.Registry { return s.reg }

// Inner returns the wrapped store, so chain-walking helpers (and the
// differential harness's pristine oracle handle) can reach below the
// fault layer.
func (s *FaultStore) Inner() Store { return s.inner }

// Counts returns how many faults of each kind have been injected.
func (s *FaultStore) Counts() FaultCounts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return FaultCounts{
		Transient:     s.counts[FaultTransient],
		Throttles:     s.counts[FaultThrottle],
		LatencySpikes: s.counts[FaultLatency],
		Deadlines:     s.counts[FaultDeadline],
		AmbiguousPuts: s.counts[FaultAmbiguousPut],
	}
}

// FailNth returns a Fault firing exactly on the nth operation of the
// given class (1-based count within that class).
func FailNth(op Op, n int64) Fault {
	var count atomic.Int64
	return func(o Op, _ string, _ int64) bool {
		if o != op {
			return false
		}
		return count.Add(1) == n
	}
}

// opAllowed reports whether the profile injects into this op class.
func (p *FaultProfile) opAllowed(op Op) bool {
	if len(p.Ops) == 0 {
		return true
	}
	for _, o := range p.Ops {
		if o == op {
			return true
		}
	}
	return false
}

// noFault is the sentinel "nothing fired" decision.
const noFault FaultKind = -1

// decide rolls the profile for one operation and returns the fault to
// inject, if any. Decisions are made under one lock so a seeded run
// is reproducible for a deterministic operation sequence.
func (s *FaultStore) decide(op Op, key string, conditional bool) FaultKind {
	seq := s.seq.Add(1)
	p := &s.profile
	if p.Script != nil && p.Script(op, key, seq) {
		s.mu.Lock()
		s.counts[FaultTransient]++
		s.mu.Unlock()
		s.reg.Counter(faultMetricNames[FaultTransient]).Inc()
		return FaultTransient
	}
	if !p.opAllowed(op) {
		return noFault
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.burstLeft > 0 {
		s.burstLeft--
		s.counts[FaultThrottle]++
		s.reg.Counter(faultMetricNames[FaultThrottle]).Inc()
		return FaultThrottle
	}
	kind := noFault
	switch {
	case p.Transient > 0 && s.rng.Float64() < p.Transient:
		kind = FaultTransient
	case p.Throttle > 0 && s.rng.Float64() < p.Throttle:
		kind = FaultThrottle
		s.burstLeft = p.ThrottleBurst
	case p.Latency > 0 && s.rng.Float64() < p.Latency:
		kind = FaultLatency
	case p.Deadline > 0 && s.rng.Float64() < p.Deadline:
		kind = FaultDeadline
	case conditional && p.AmbiguousPut > 0 && s.rng.Float64() < p.AmbiguousPut:
		kind = FaultAmbiguousPut
	}
	if kind != noFault {
		s.counts[kind]++
		s.reg.Counter(faultMetricNames[kind]).Inc()
	}
	return kind
}

// check decides and applies the pre-operation faults. It returns a
// non-nil error when the operation must fail without reaching the
// store, and ambiguous=true when the operation must run and then
// still report ErrAmbiguousPut.
func (s *FaultStore) check(ctx context.Context, op Op, key string, conditional bool) (ambiguous bool, err error) {
	kind := s.decide(op, key, conditional)
	if kind == noFault {
		return false, nil
	}
	ctx, span := obs.Start(ctx, "fault.inject")
	span.SetAttr("kind", faultKindLabels[kind])
	span.SetAttr("key", key)
	defer span.End()
	switch kind {
	case FaultTransient:
		return false, ErrInjected
	case FaultThrottle:
		return false, ErrThrottled
	case FaultLatency:
		simtime.Charge(ctx, s.profile.SpikeLatency)
		return false, nil
	case FaultDeadline:
		return false, ErrInjectedDeadline
	case FaultAmbiguousPut:
		return true, nil
	}
	return false, nil
}

// Put implements Store.
func (s *FaultStore) Put(ctx context.Context, key string, data []byte) error {
	if _, err := s.check(ctx, OpPut, key, false); err != nil {
		return err
	}
	return s.inner.Put(ctx, key, data)
}

// PutIfAbsent implements Store. An ambiguous fault performs the write
// and returns ErrAmbiguousPut anyway — the write has landed, matching
// a lost 200 response.
func (s *FaultStore) PutIfAbsent(ctx context.Context, key string, data []byte) error {
	ambiguous, err := s.check(ctx, OpPut, key, true)
	if err != nil {
		return err
	}
	err = s.inner.PutIfAbsent(ctx, key, data)
	if ambiguous && err == nil {
		return ErrAmbiguousPut
	}
	return err
}

// Get implements Store.
func (s *FaultStore) Get(ctx context.Context, key string) ([]byte, error) {
	if _, err := s.check(ctx, OpGet, key, false); err != nil {
		return nil, err
	}
	return s.inner.Get(ctx, key)
}

// GetRange implements Store.
func (s *FaultStore) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	if _, err := s.check(ctx, OpGet, key, false); err != nil {
		return nil, err
	}
	return s.inner.GetRange(ctx, key, offset, length)
}

// Head implements Store.
func (s *FaultStore) Head(ctx context.Context, key string) (ObjectInfo, error) {
	if _, err := s.check(ctx, OpHead, key, false); err != nil {
		return ObjectInfo{}, err
	}
	return s.inner.Head(ctx, key)
}

// List implements Store.
func (s *FaultStore) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	if _, err := s.check(ctx, OpList, prefix, false); err != nil {
		return nil, err
	}
	return s.inner.List(ctx, prefix)
}

// Delete implements Store.
func (s *FaultStore) Delete(ctx context.Context, key string) error {
	if _, err := s.check(ctx, OpDelete, key, false); err != nil {
		return err
	}
	return s.inner.Delete(ctx, key)
}
