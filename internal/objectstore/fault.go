package objectstore

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrInjected is the error returned by a FaultStore when a fault
// fires. Tests use errors.Is against it to distinguish injected
// failures from real ones.
var ErrInjected = errors.New("objectstore: injected fault")

// Op identifies a Store operation class for fault matching.
type Op int

// Operation classes.
const (
	OpPut Op = iota
	OpGet
	OpList
	OpDelete
	OpHead
)

// Fault decides whether a given operation should fail. It is called
// with the operation class, the key (empty for List) and the 1-based
// sequence number of the operation across the store's lifetime.
type Fault func(op Op, key string, seq int64) bool

// FaultStore wraps a Store and fails operations selected by the Fault
// predicate with ErrInjected. It is used by protocol tests to model
// indexer crashes before and after upload, failed commits, and vacuum
// races (Section IV-D of the paper).
type FaultStore struct {
	inner Store
	fault Fault
	seq   atomic.Int64
}

// NewFaultStore wraps inner with the fault predicate. A nil predicate
// never fires.
func NewFaultStore(inner Store, fault Fault) *FaultStore {
	if fault == nil {
		fault = func(Op, string, int64) bool { return false }
	}
	return &FaultStore{inner: inner, fault: fault}
}

// FailNth returns a Fault firing exactly on the nth operation of the
// given class (1-based count within that class).
func FailNth(op Op, n int64) Fault {
	var count atomic.Int64
	return func(o Op, _ string, _ int64) bool {
		if o != op {
			return false
		}
		return count.Add(1) == n
	}
}

func (s *FaultStore) check(op Op, key string) error {
	if s.fault(op, key, s.seq.Add(1)) {
		return ErrInjected
	}
	return nil
}

// Put implements Store.
func (s *FaultStore) Put(ctx context.Context, key string, data []byte) error {
	if err := s.check(OpPut, key); err != nil {
		return err
	}
	return s.inner.Put(ctx, key, data)
}

// PutIfAbsent implements Store.
func (s *FaultStore) PutIfAbsent(ctx context.Context, key string, data []byte) error {
	if err := s.check(OpPut, key); err != nil {
		return err
	}
	return s.inner.PutIfAbsent(ctx, key, data)
}

// Get implements Store.
func (s *FaultStore) Get(ctx context.Context, key string) ([]byte, error) {
	if err := s.check(OpGet, key); err != nil {
		return nil, err
	}
	return s.inner.Get(ctx, key)
}

// GetRange implements Store.
func (s *FaultStore) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	if err := s.check(OpGet, key); err != nil {
		return nil, err
	}
	return s.inner.GetRange(ctx, key, offset, length)
}

// Head implements Store.
func (s *FaultStore) Head(ctx context.Context, key string) (ObjectInfo, error) {
	if err := s.check(OpHead, key); err != nil {
		return ObjectInfo{}, err
	}
	return s.inner.Head(ctx, key)
}

// List implements Store.
func (s *FaultStore) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	if err := s.check(OpList, prefix); err != nil {
		return nil, err
	}
	return s.inner.List(ctx, prefix)
}

// Delete implements Store.
func (s *FaultStore) Delete(ctx context.Context, key string) error {
	if err := s.check(OpDelete, key); err != nil {
		return err
	}
	return s.inner.Delete(ctx, key)
}
