package objectstore

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DirStore is a Store backed by a directory tree on the local
// filesystem. Keys map to file paths under the root; creation times
// come from file modification times. It provides the same strong
// read-after-write semantics as MemStore (local filesystems are
// strongly consistent) and is used by the CLI and runnable examples so
// that lakes and indices persist across process runs.
type DirStore struct {
	root string
	// mu serializes PutIfAbsent, which needs a check-then-create
	// sequence (O_EXCL covers cross-process races; the mutex covers
	// in-process ones cheaply).
	mu sync.Mutex
}

// NewDirStore returns a DirStore rooted at dir, creating it if needed.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("objectstore: create root: %w", err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("objectstore: resolve root: %w", err)
	}
	return &DirStore{root: abs}, nil
}

// Root returns the directory the store writes under.
func (s *DirStore) Root() string { return s.root }

func (s *DirStore) path(key string) (string, error) {
	clean := filepath.Clean("/" + key) // forces the key under root
	p := filepath.Join(s.root, clean)
	if !strings.HasPrefix(p, s.root) {
		return "", fmt.Errorf("objectstore: key %q escapes store root", key)
	}
	return p, nil
}

// Put implements Store. The write is staged to a temporary file and
// renamed into place so concurrent readers never observe a partial
// object; note this is an implementation detail of the local backend,
// not a primitive Rottnest's protocol relies on.
func (s *DirStore) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("objectstore: put %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".put-*")
	if err != nil {
		return fmt.Errorf("objectstore: put %s: %w", key, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("objectstore: put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("objectstore: put %s: %w", key, err)
	}
	if err := os.Rename(tmpName, p); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("objectstore: put %s: %w", key, err)
	}
	return nil
}

// PutIfAbsent implements Store using O_EXCL file creation.
func (s *DirStore) PutIfAbsent(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p, err := s.path(key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("objectstore: put-if-absent %s: %w", key, err)
	}
	f, err := os.OpenFile(p, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if errors.Is(err, fs.ErrExist) {
		return ErrExists
	}
	if err != nil {
		return fmt.Errorf("objectstore: put-if-absent %s: %w", key, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(p)
		return fmt.Errorf("objectstore: put-if-absent %s: %w", key, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(p)
		return fmt.Errorf("objectstore: put-if-absent %s: %w", key, err)
	}
	return nil
}

// Get implements Store.
func (s *DirStore) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := s.path(key)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("objectstore: get %s: %w", key, err)
	}
	return data, nil
}

// GetRange implements Store.
func (s *DirStore) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := s.path(key)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("objectstore: get-range %s: %w", key, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("objectstore: get-range %s: %w", key, err)
	}
	start, end, err := resolveRange(fi.Size(), offset, length)
	if err != nil {
		return nil, err
	}
	out := make([]byte, end-start)
	if _, err := f.ReadAt(out, start); err != nil && end > start {
		return nil, fmt.Errorf("objectstore: get-range %s: %w", key, err)
	}
	return out, nil
}

// Head implements Store.
func (s *DirStore) Head(ctx context.Context, key string) (ObjectInfo, error) {
	if err := ctx.Err(); err != nil {
		return ObjectInfo{}, err
	}
	p, err := s.path(key)
	if err != nil {
		return ObjectInfo{}, err
	}
	fi, err := os.Stat(p)
	if errors.Is(err, fs.ErrNotExist) {
		return ObjectInfo{}, ErrNotFound
	}
	if err != nil {
		return ObjectInfo{}, fmt.Errorf("objectstore: head %s: %w", key, err)
	}
	return ObjectInfo{Key: key, Size: fi.Size(), Created: fi.ModTime()}, nil
}

// List implements Store.
func (s *DirStore) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var infos []ObjectInfo
	err := filepath.WalkDir(s.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasPrefix(filepath.Base(p), ".put-") {
			return nil // in-flight staging file
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if !strings.HasPrefix(key, prefix) {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		infos = append(infos, ObjectInfo{Key: key, Size: fi.Size(), Created: fi.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("objectstore: list %s: %w", prefix, err)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Key < infos[j].Key })
	return infos, nil
}

// Delete implements Store.
func (s *DirStore) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("objectstore: delete %s: %w", key, err)
	}
	return nil
}
