package objectstore

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"rottnest/internal/simtime"
)

func newCachedWorld(t *testing.T, opts CacheOptions) (*CachedStore, *Metrics, *MemStore) {
	t.Helper()
	mem := NewMemStore(simtime.NewVirtualClock())
	inst, metrics := Instrument(mem, DefaultS3Model())
	return NewCachedStore(inst, opts), metrics, mem
}

func TestCachedStoreHitSkipsStoreAndLatency(t *testing.T) {
	ctx := context.Background()
	cached, metrics, _ := newCachedWorld(t, CacheOptions{})
	if err := cached.Put(ctx, "a", []byte("hello world")); err != nil {
		t.Fatal(err)
	}

	session := simtime.NewSession()
	sctx := simtime.With(ctx, session)
	got, err := cached.GetRange(sctx, "a", 0, 5)
	if err != nil || string(got) != "hello" {
		t.Fatalf("cold read = %q, %v", got, err)
	}
	coldLatency := session.Elapsed()
	if coldLatency == 0 {
		t.Fatal("cold read charged no latency")
	}
	coldGets := metrics.Gets.Load()

	session2 := simtime.NewSession()
	got, err = cached.GetRange(simtime.With(ctx, session2), "a", 0, 5)
	if err != nil || string(got) != "hello" {
		t.Fatalf("warm read = %q, %v", got, err)
	}
	if session2.Elapsed() != 0 {
		t.Fatalf("cache hit charged %v, want zero store latency", session2.Elapsed())
	}
	if metrics.Gets.Load() != coldGets {
		t.Fatalf("cache hit issued a GET (%d -> %d)", coldGets, metrics.Gets.Load())
	}
	st := cached.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.BytesSaved != 5 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 5 bytes saved", st)
	}
}

func TestCachedStoreKeyedByRange(t *testing.T) {
	ctx := context.Background()
	cached, _, _ := newCachedWorld(t, CacheOptions{})
	if err := cached.Put(ctx, "a", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	first, _ := cached.GetRange(ctx, "a", 0, 4)
	second, _ := cached.GetRange(ctx, "a", 4, 4)
	if string(first) != "0123" || string(second) != "4567" {
		t.Fatalf("got %q / %q", first, second)
	}
	if st := cached.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("distinct ranges must be distinct entries: %+v", st)
	}
	// Suffix range and full Get are their own entries too.
	if got, err := cached.GetRange(ctx, "a", -3, 0); err != nil || string(got) != "789" {
		t.Fatalf("suffix = %q, %v", got, err)
	}
	if got, err := cached.Get(ctx, "a"); err != nil || string(got) != "0123456789" {
		t.Fatalf("full = %q, %v", got, err)
	}
	if got, err := cached.GetRange(ctx, "a", -3, 0); err != nil || string(got) != "789" {
		t.Fatalf("suffix rehit = %q, %v", got, err)
	}
	if st := cached.Stats(); st.Hits != 1 || st.Misses != 4 {
		t.Fatalf("stats = %+v, want 1 hit / 4 misses", st)
	}
}

func TestCachedStoreLRUEviction(t *testing.T) {
	ctx := context.Background()
	// Budget of 1000 bytes with 250-byte objects: the cache holds
	// four; the fifth insert evicts the least recently used.
	cached, _, _ := newCachedWorld(t, CacheOptions{MaxBytes: 1000})
	payload := bytes.Repeat([]byte("x"), 250)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("obj-%d", i)
		if err := cached.Put(ctx, key, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := cached.Get(ctx, key); err != nil {
			t.Fatal(err)
		}
	}
	st := cached.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// obj-0 was evicted; obj-4 is resident.
	if _, err := cached.Get(ctx, "obj-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := cached.Get(ctx, "obj-4"); err != nil {
		t.Fatal(err)
	}
	st = cached.Stats()
	if st.Hits != 1 || st.Misses != 6 {
		t.Fatalf("stats = %+v, want obj-0 re-miss and obj-4 hit", st)
	}
}

func TestCachedStoreOversizedEntryNotCached(t *testing.T) {
	ctx := context.Background()
	cached, _, _ := newCachedWorld(t, CacheOptions{MaxBytes: 1024})
	big := bytes.Repeat([]byte("y"), 600) // > 1024/4
	if err := cached.Put(ctx, "big", big); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if got, err := cached.Get(ctx, "big"); err != nil || len(got) != 600 {
			t.Fatalf("read %d = %d bytes, %v", i, len(got), err)
		}
	}
	if st := cached.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("oversized entry was cached: %+v", st)
	}
}

func TestCachedStoreDeleteInvalidates(t *testing.T) {
	ctx := context.Background()
	cached, _, _ := newCachedWorld(t, CacheOptions{})
	if err := cached.Put(ctx, "a", []byte("content")); err != nil {
		t.Fatal(err)
	}
	if _, err := cached.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := cached.GetRange(ctx, "a", 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := cached.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	// All ranges of the key are gone: reads must see the store's
	// truth (NotFound), not cached bytes.
	if _, err := cached.Get(ctx, "a"); err != ErrNotFound {
		t.Fatalf("read after delete = %v, want ErrNotFound", err)
	}
	if _, err := cached.GetRange(ctx, "a", 0, 3); err != ErrNotFound {
		t.Fatalf("range read after delete = %v, want ErrNotFound", err)
	}
}

func TestCachedStorePutInvalidates(t *testing.T) {
	ctx := context.Background()
	cached, _, _ := newCachedWorld(t, CacheOptions{})
	if err := cached.Put(ctx, "a", []byte("old-bytes")); err != nil {
		t.Fatal(err)
	}
	if got, _ := cached.GetRange(ctx, "a", 0, 3); string(got) != "old" {
		t.Fatalf("got %q", got)
	}
	// The lake never overwrites, but the wrapper still invalidates if
	// someone does.
	if err := cached.Put(ctx, "a", []byte("new-bytes")); err != nil {
		t.Fatal(err)
	}
	if got, _ := cached.GetRange(ctx, "a", 0, 3); string(got) != "new" {
		t.Fatalf("stale read after overwrite: %q", got)
	}
}

// blockingStore delays GetRange until released, to hold reads
// in flight.
type blockingStore struct {
	Store
	mu      sync.Mutex
	gets    int
	release chan struct{}
}

func (b *blockingStore) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	b.mu.Lock()
	b.gets++
	b.mu.Unlock()
	<-b.release
	return b.Store.GetRange(ctx, key, offset, length)
}

func (b *blockingStore) Get(ctx context.Context, key string) ([]byte, error) {
	return b.GetRange(ctx, key, 0, -1)
}

func TestCachedStoreSingleflight(t *testing.T) {
	ctx := context.Background()
	mem := NewMemStore(simtime.NewVirtualClock())
	if err := mem.Put(ctx, "a", []byte("shared-bytes")); err != nil {
		t.Fatal(err)
	}
	blocking := &blockingStore{Store: mem, release: make(chan struct{})}
	cached := NewCachedStore(blocking, CacheOptions{})

	const readers = 8
	var wg sync.WaitGroup
	results := make([][]byte, readers)
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = cached.GetRange(ctx, "a", 0, 6)
		}(i)
	}
	// Let every reader reach the flight, then release the one
	// upstream GET.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := cached.Stats()
		blocking.mu.Lock()
		started := blocking.gets
		blocking.mu.Unlock()
		if started == 1 && st.CoalescedGets+1 >= 1 {
			// One leader in flight. Give followers a moment to park.
			time.Sleep(10 * time.Millisecond)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leader never reached the store (gets=%d)", started)
		}
		time.Sleep(time.Millisecond)
	}
	close(blocking.release)
	wg.Wait()

	for i := 0; i < readers; i++ {
		if errs[i] != nil || string(results[i]) != "shared" {
			t.Fatalf("reader %d = %q, %v", i, results[i], errs[i])
		}
	}
	blocking.mu.Lock()
	upstream := blocking.gets
	blocking.mu.Unlock()
	if upstream != 1 {
		t.Fatalf("upstream GETs = %d, want 1 (singleflight)", upstream)
	}
	st := cached.Stats()
	if st.Misses+st.CoalescedGets+st.Hits != readers {
		t.Fatalf("stats don't account for all readers: %+v", st)
	}
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 leader", st.Misses)
	}
}

func TestFanGetCoalescesAdjacentRanges(t *testing.T) {
	ctx := context.Background()
	cached, metrics, _ := newCachedWorld(t, CacheOptions{CoalesceGap: 16})
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := cached.Put(ctx, "obj", data); err != nil {
		t.Fatal(err)
	}
	if err := cached.Put(ctx, "other", data); err != nil {
		t.Fatal(err)
	}

	reqs := []RangeRequest{
		{Key: "obj", Offset: 0, Length: 100},   // |
		{Key: "obj", Offset: 110, Length: 50},  // | gap 10 <= 16: merge
		{Key: "obj", Offset: 500, Length: 100}, // gap 340: separate
		{Key: "other", Offset: 20, Length: 30}, // different key
		{Key: "obj", Offset: 160, Length: 40},  // adjacent to second: merge
		{Key: "obj", Offset: -24, Length: 0},   // suffix: never merged
	}
	before := metrics.Gets.Load()
	session := simtime.NewSession()
	got, err := FanGet(simtime.With(ctx, session), cached, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		var want []byte
		if r.Offset < 0 {
			want = data[len(data)+int(r.Offset):]
		} else {
			want = data[r.Offset : r.Offset+r.Length]
		}
		if !bytes.Equal(got[i], want) {
			t.Fatalf("req %d: got %d bytes, want %d (first diff at content)", i, len(got[i]), len(want))
		}
	}
	// 6 requests collapse into 4 GETs: [0,200) merged, [500,600),
	// other, suffix.
	if gets := metrics.Gets.Load() - before; gets != 4 {
		t.Fatalf("issued %d GETs, want 4", gets)
	}
}

func TestFanGetCoalescingDisabledWithoutCache(t *testing.T) {
	ctx := context.Background()
	mem := NewMemStore(simtime.NewVirtualClock())
	inst, metrics := Instrument(mem, DefaultS3Model())
	if err := inst.Put(ctx, "obj", bytes.Repeat([]byte("z"), 100)); err != nil {
		t.Fatal(err)
	}
	before := metrics.Gets.Load()
	reqs := []RangeRequest{
		{Key: "obj", Offset: 0, Length: 10},
		{Key: "obj", Offset: 10, Length: 10},
	}
	if _, err := FanGet(ctx, inst, reqs); err != nil {
		t.Fatal(err)
	}
	if gets := metrics.Gets.Load() - before; gets != 2 {
		t.Fatalf("uncached FanGet issued %d GETs, want 2 (no coalescing)", gets)
	}
}

func TestCoalesceRangesMapping(t *testing.T) {
	reqs := []RangeRequest{
		{Key: "k", Offset: 100, Length: 10},
		{Key: "k", Offset: 100, Length: 10}, // duplicate
		{Key: "k", Offset: 105, Length: 20}, // overlap
		{Key: "k", Offset: 300, Length: 5},
	}
	issued, refs := coalesceRanges(reqs, 8)
	if len(issued) != 2 {
		t.Fatalf("issued = %v, want 2 merged requests", issued)
	}
	if issued[0].Offset != 100 || issued[0].Length != 25 {
		t.Fatalf("merged = %+v, want [100,125)", issued[0])
	}
	for i, r := range reqs[:3] {
		if refs[i].issued != 0 || refs[i].off != r.Offset-100 || refs[i].length != r.Length {
			t.Fatalf("ref %d = %+v", i, refs[i])
		}
	}
	if refs[3].issued != 1 || refs[3].off != 0 {
		t.Fatalf("ref 3 = %+v", refs[3])
	}
}

func TestCachedStoreConcurrentMixedOps(t *testing.T) {
	// Race-detector workout: concurrent reads, writes, deletes, and
	// flushes over a small keyspace.
	ctx := context.Background()
	cached, _, _ := newCachedWorld(t, CacheOptions{MaxBytes: 4096})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (w+i)%5)
				switch i % 5 {
				case 0:
					_ = cached.Put(ctx, key, bytes.Repeat([]byte{byte(i)}, 64))
				case 1, 2:
					_, _ = cached.GetRange(ctx, key, 0, 16)
				case 3:
					_ = cached.Delete(ctx, key)
				default:
					if i%40 == 4 {
						cached.Flush()
					}
					_, _ = cached.Get(ctx, key)
				}
			}
		}(w)
	}
	wg.Wait()
}
