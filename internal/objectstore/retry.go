package objectstore

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"rottnest/internal/obs"
	"rottnest/internal/simtime"
)

// RetryPolicy tunes a RetryStore: bounded exponential backoff with
// jitter. The zero value is not usable directly — call withDefaults
// via NewRetryStore, or use core.Config{Retry: {Enabled: true}} which
// applies the defaults.
type RetryPolicy struct {
	// Enabled gates retry wrapping when the policy travels through
	// core.Config. A RetryStore built explicitly always retries.
	Enabled bool
	// MaxAttempts bounds the tries per operation (first attempt
	// included) that fail with non-throttle retryable errors.
	// Defaults to 6.
	MaxAttempts int
	// ThrottleAttempts separately bounds tries consumed by throttles
	// (503 SlowDown). Throttling is correlated — a shedding store
	// throttles whole windows of requests — so waiting it out needs a
	// larger budget than generic transient errors. Defaults to
	// 4*MaxAttempts.
	ThrottleAttempts int
	// BaseDelay is the backoff before the first retry. Defaults to
	// 20ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff. Defaults to 2s.
	MaxDelay time.Duration
	// Multiplier grows the delay per retry. Defaults to 2.
	Multiplier float64
	// Jitter spreads each delay uniformly over
	// [delay*(1-Jitter/2), delay*(1+Jitter/2)], decorrelating
	// retry storms. Defaults to 0.5; negative disables jitter.
	Jitter float64
	// ThrottleFloor is the minimum wait after a throttle (503
	// SlowDown): throttled stores want clients to back off longer
	// than a generic transient error warrants. Defaults to 200ms.
	ThrottleFloor time.Duration
	// Seed makes the jitter deterministic for simulations.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 6
	}
	if p.ThrottleAttempts <= 0 {
		p.ThrottleAttempts = 4 * p.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 20 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.ThrottleFloor <= 0 {
		p.ThrottleFloor = 200 * time.Millisecond
	}
	return p
}

// RetryStats counts a RetryStore's recovery work.
type RetryStats struct {
	// Retries is the number of repeated attempts (attempts beyond the
	// first of each operation).
	Retries int64
	// ThrottleWaits is how many of those retries waited out a
	// throttle (and so slept at least ThrottleFloor).
	ThrottleWaits int64
	// AmbiguousResolved is how many conditional puts were resolved by
	// read-back after an ambiguous outcome.
	AmbiguousResolved int64
}

// Sub returns a-b, for windowed deltas around one logical operation.
func (a RetryStats) Sub(b RetryStats) RetryStats {
	return RetryStats{
		Retries:           a.Retries - b.Retries,
		ThrottleWaits:     a.ThrottleWaits - b.ThrottleWaits,
		AmbiguousResolved: a.AmbiguousResolved - b.AmbiguousResolved,
	}
}

// errClass is the retry classification of an error.
type errClass int

const (
	// classPermanent errors reflect true state or caller intent and
	// must not be retried: ErrNotFound, ErrExists, ErrInvalidRange,
	// and context.Canceled.
	classPermanent errClass = iota
	// classRetryable errors are transient: unknown failures and
	// per-request deadline expirations.
	classRetryable
	// classThrottle errors are the store shedding load; retried after
	// at least ThrottleFloor.
	classThrottle
)

// classifyErr buckets an operation error. context.DeadlineExceeded is
// retryable because a single request's deadline can expire while the
// caller's own context is still live — the retry loop separately
// checks the parent context and stops when it is done.
func classifyErr(err error) errClass {
	switch {
	case errors.Is(err, ErrThrottled):
		return classThrottle
	case errors.Is(err, ErrNotFound),
		errors.Is(err, ErrExists),
		errors.Is(err, ErrInvalidRange),
		errors.Is(err, context.Canceled):
		return classPermanent
	default:
		return classRetryable
	}
}

// RetryStore wraps a Store with bounded exponential-backoff-with-
// jitter retries. Errors are classified retryable / permanent /
// ambiguous-conditional; the last — a PutIfAbsent whose outcome is
// unknown — is resolved by reading the key back and comparing bytes,
// which is sound for Rottnest because everything written by
// conditional put (lake log records, metadata checkpoints) is
// content-addressed: identical bytes mean the caller's own write
// landed.
//
// Backoff sleeps charge virtual time to the context's simtime.Session
// when one is present (simulations pay latency, not wall time) and
// real-sleep otherwise.
type RetryStore struct {
	inner  Store
	policy RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand

	// Counters live in the registry ("retry.*" names); RetryStats is a
	// view derived from its snapshot.
	reg               *obs.Registry
	retries           *obs.Counter
	throttleWaits     *obs.Counter
	ambiguousResolved *obs.Counter
}

// NewRetryStore wraps inner with the policy (zero fields take the
// documented defaults).
func NewRetryStore(inner Store, policy RetryPolicy) *RetryStore {
	policy = policy.withDefaults()
	reg := obs.NewRegistry()
	return &RetryStore{
		inner:             inner,
		policy:            policy,
		rng:               rand.New(rand.NewSource(policy.Seed)),
		reg:               reg,
		retries:           reg.Counter("retry.retries"),
		throttleWaits:     reg.Counter("retry.throttle_waits"),
		ambiguousResolved: reg.Counter("retry.ambiguous_resolved"),
	}
}

// Inner returns the wrapped store.
func (s *RetryStore) Inner() Store { return s.inner }

// Stats snapshots the store's cumulative retry counters. It is a view
// over the registry — RetryStatsFrom(s.Registry().Snapshot()).
func (s *RetryStore) Stats() RetryStats {
	return RetryStatsFrom(s.reg.Snapshot())
}

// Registry returns the store's metrics registry ("retry.*" names).
func (s *RetryStore) Registry() *obs.Registry { return s.reg }

// RetryStatsFrom derives the legacy RetryStats view from a registry
// snapshot's "retry.*" counters.
func RetryStatsFrom(s obs.Snapshot) RetryStats {
	return RetryStats{
		Retries:           s.Counter("retry.retries"),
		ThrottleWaits:     s.Counter("retry.throttle_waits"),
		AmbiguousResolved: s.Counter("retry.ambiguous_resolved"),
	}
}

// FindRetry walks a store chain (via InnerStore) and returns the first
// RetryStore, or nil.
func FindRetry(s Store) *RetryStore {
	for s != nil {
		if r, ok := s.(*RetryStore); ok {
			return r
		}
		inner, ok := s.(InnerStore)
		if !ok {
			return nil
		}
		s = inner.Inner()
	}
	return nil
}

// backoff returns the jittered delay before retry number attempt
// (0-based), with the throttle floor applied when throttled.
func (s *RetryStore) backoff(attempt int, throttled bool) time.Duration {
	d := float64(s.policy.BaseDelay)
	for i := 0; i < attempt; i++ {
		d *= s.policy.Multiplier
		if d >= float64(s.policy.MaxDelay) {
			d = float64(s.policy.MaxDelay)
			break
		}
	}
	if j := s.policy.Jitter; j > 0 {
		s.mu.Lock()
		f := 1 - j/2 + j*s.rng.Float64()
		s.mu.Unlock()
		d *= f
	}
	delay := time.Duration(d)
	if delay > s.policy.MaxDelay {
		delay = s.policy.MaxDelay
	}
	if throttled && delay < s.policy.ThrottleFloor {
		delay = s.policy.ThrottleFloor
	}
	if delay < time.Millisecond {
		delay = time.Millisecond
	}
	return delay
}

// sleep waits out a backoff delay as a "retry.backoff" span. Virtual
// time is always charged; the real sleep only happens outside a
// simulation session, and is cut short by context cancellation.
func (s *RetryStore) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ctx, span := obs.Start(ctx, "retry.backoff")
	defer span.End()
	simtime.Charge(ctx, d)
	if simtime.From(ctx) != nil {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do runs op under the retry loop for non-conditional operations.
// Throttles and other retryable failures draw from separate attempt
// budgets: throttle storms are correlated, so outlasting one must not
// exhaust the transient-error budget (and vice versa).
func (s *RetryStore) do(ctx context.Context, op func() error) error {
	transients, throttles := 0, 0
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		class := classifyErr(err)
		switch {
		case class == classPermanent:
			return err
		case class == classThrottle:
			if throttles++; throttles >= s.policy.ThrottleAttempts {
				return err
			}
			s.throttleWaits.Add(1)
		default:
			if transients++; transients >= s.policy.MaxAttempts {
				return err
			}
		}
		s.retries.Add(1)
		if serr := s.sleep(ctx, s.backoff(attempt, class == classThrottle)); serr != nil {
			return serr
		}
	}
}

// putOutcome is the read-back verdict on an ambiguous conditional put.
type putOutcome int

const (
	putLanded putOutcome = iota // key holds our bytes: the write won
	putLost                     // key holds other bytes: a competitor won
	putAbsent                   // key missing: the write never landed
)

// readBack resolves an ambiguous PutIfAbsent by fetching the key and
// comparing content.
func (s *RetryStore) readBack(ctx context.Context, key string, data []byte) (putOutcome, error) {
	got, err := s.inner.Get(ctx, key)
	if errors.Is(err, ErrNotFound) {
		return putAbsent, nil
	}
	if err != nil {
		return 0, err
	}
	if bytes.Equal(got, data) {
		return putLanded, nil
	}
	return putLost, nil
}

// Put implements Store.
func (s *RetryStore) Put(ctx context.Context, key string, data []byte) error {
	return s.do(ctx, func() error { return s.inner.Put(ctx, key, data) })
}

// PutIfAbsent implements Store. Any non-permanent failure — including
// an explicit ambiguous outcome and a plain ErrExists that might be
// our own earlier write — is resolved by read-back: identical bytes
// mean success, different bytes mean a competitor won (ErrExists), a
// missing key means the write never landed and is retried.
func (s *RetryStore) PutIfAbsent(ctx context.Context, key string, data []byte) error {
	transients, throttles := 0, 0
	var err error
	for attempt := 0; ; attempt++ {
		err = s.inner.PutIfAbsent(ctx, key, data)
		if err == nil {
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		ambiguous := errors.Is(err, ErrExists) || classifyErr(err) != classPermanent
		if !ambiguous {
			return err
		}
		switch outcome, rerr := s.readBack(ctx, key, data); {
		case rerr == nil && outcome == putLanded:
			s.ambiguousResolved.Add(1)
			return nil
		case rerr == nil && outcome == putLost:
			return ErrExists
		}
		// The write never landed, or the read-back itself failed:
		// back off and try the put again.
		throttled := classifyErr(err) == classThrottle
		if throttled {
			if throttles++; throttles >= s.policy.ThrottleAttempts {
				return err
			}
			s.throttleWaits.Add(1)
		} else {
			if transients++; transients >= s.policy.MaxAttempts {
				return err
			}
		}
		s.retries.Add(1)
		if serr := s.sleep(ctx, s.backoff(attempt, throttled)); serr != nil {
			return serr
		}
	}
}

// Get implements Store.
func (s *RetryStore) Get(ctx context.Context, key string) ([]byte, error) {
	var out []byte
	err := s.do(ctx, func() error {
		var e error
		out, e = s.inner.Get(ctx, key)
		return e
	})
	return out, err
}

// GetRange implements Store.
func (s *RetryStore) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	var out []byte
	err := s.do(ctx, func() error {
		var e error
		out, e = s.inner.GetRange(ctx, key, offset, length)
		return e
	})
	return out, err
}

// Head implements Store.
func (s *RetryStore) Head(ctx context.Context, key string) (ObjectInfo, error) {
	var out ObjectInfo
	err := s.do(ctx, func() error {
		var e error
		out, e = s.inner.Head(ctx, key)
		return e
	})
	return out, err
}

// List implements Store.
func (s *RetryStore) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	var out []ObjectInfo
	err := s.do(ctx, func() error {
		var e error
		out, e = s.inner.List(ctx, prefix)
		return e
	})
	return out, err
}

// Delete implements Store.
func (s *RetryStore) Delete(ctx context.Context, key string) error {
	return s.do(ctx, func() error { return s.inner.Delete(ctx, key) })
}
