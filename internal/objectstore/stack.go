package objectstore

import "rottnest/internal/obs"

// StackOptions selects which wrapper layers NewStack composes around
// a base store. The zero value yields an instrument-free, cache-on
// stack only if CacheBytes is 0 — see each field.
type StackOptions struct {
	// Faults, when non-nil, injects failures at the bottom of the
	// stack (closest to the base store), so retries and caching see
	// the same misbehaving substrate a real client would.
	Faults *FaultProfile
	// Retry wraps the fault layer when Retry.Enabled is true, so
	// injected failures are retried before they surface.
	Retry RetryPolicy
	// Latency, when non-nil, adds an Instrumented layer charging the
	// model's virtual latency and counting requests/bytes. Use a zero
	// LatencyModel to meter requests without charging latency.
	Latency *LatencyModel
	// CacheBytes sizes the outermost read-cache layer: 0 means
	// DefaultCacheBytes, negative disables the cache entirely —
	// matching core.Config.CacheBytes.
	CacheBytes int64
	// CoalesceGap is the cache's adjacent-range merge threshold
	// (0 = DefaultCoalesceGap, negative disables coalescing).
	CoalesceGap int64
}

// Stack is a composed store wrapper chain plus handles to each layer
// (nil when the layer was not requested). Store is the outermost
// layer — the one to hand to lake.Create/Open.
type Stack struct {
	Store        Store
	Base         Store
	Fault        *FaultStore
	Retry        *RetryStore
	Instrumented *Instrumented
	Metrics      *Metrics
	Cache        *CachedStore
}

// NewStack composes the wrapper zoo around base in the one canonical
// order, innermost first:
//
//	base → fault → retry → instrument → cache
//
// Faults sit at the bottom so every layer above sees the misbehaving
// substrate; retries sit directly above so recovery happens before
// metering (a retried GET costs two metered requests, like on real
// S3); instrumentation charges virtual latency and counts requests;
// the cache is outermost so hits cost zero requests and zero latency.
func NewStack(base Store, opts StackOptions) *Stack {
	s := &Stack{Base: base, Store: base}
	if opts.Faults != nil {
		s.Fault = NewFaultStoreWithProfile(s.Store, *opts.Faults)
		s.Store = s.Fault
	}
	if opts.Retry.Enabled {
		s.Retry = NewRetryStore(s.Store, opts.Retry)
		s.Store = s.Retry
	}
	if opts.Latency != nil {
		s.Instrumented, s.Metrics = Instrument(s.Store, *opts.Latency)
		s.Store = s.Instrumented
	}
	if opts.CacheBytes >= 0 {
		s.Cache = NewCachedStore(s.Store, CacheOptions{
			MaxBytes:    opts.CacheBytes,
			CoalesceGap: opts.CoalesceGap,
		})
		s.Store = s.Cache
	}
	return s
}

// MetricsSnapshot merges every layer's registry into one snapshot
// ("fault.*", "retry.*", "store.*", "cache.*" names).
func (s *Stack) MetricsSnapshot() obs.Snapshot {
	var snaps []obs.Snapshot
	if s.Fault != nil {
		snaps = append(snaps, s.Fault.Registry().Snapshot())
	}
	if s.Retry != nil {
		snaps = append(snaps, s.Retry.Registry().Snapshot())
	}
	if s.Instrumented != nil {
		snaps = append(snaps, s.Instrumented.Registry().Snapshot())
	}
	if s.Cache != nil {
		snaps = append(snaps, s.Cache.Registry().Snapshot())
	}
	return obs.Merge(snaps...)
}
