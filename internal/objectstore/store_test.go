package objectstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"rottnest/internal/simtime"
)

// storeFactories returns constructors for every Store backend so the
// conformance tests run against all of them.
func storeFactories(t *testing.T) map[string]func() Store {
	return map[string]func() Store{
		"mem": func() Store { return NewMemStore(simtime.NewVirtualClock()) },
		"dir": func() Store {
			s, err := NewDirStore(t.TempDir())
			if err != nil {
				t.Fatalf("NewDirStore: %v", err)
			}
			return s
		},
	}
}

func TestStoreConformance(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			s := mk()

			if _, err := s.Get(ctx, "missing"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get missing: err = %v, want ErrNotFound", err)
			}
			if _, err := s.Head(ctx, "missing"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Head missing: err = %v, want ErrNotFound", err)
			}
			if err := s.Delete(ctx, "missing"); err != nil {
				t.Fatalf("Delete missing should be a no-op, got %v", err)
			}

			data := []byte("hello object storage")
			if err := s.Put(ctx, "a/b/file1", data); err != nil {
				t.Fatalf("Put: %v", err)
			}
			got, err := s.Get(ctx, "a/b/file1")
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("Get = %q, %v", got, err)
			}

			// Read-after-write: Head and List observe the Put.
			info, err := s.Head(ctx, "a/b/file1")
			if err != nil || info.Size != int64(len(data)) {
				t.Fatalf("Head = %+v, %v", info, err)
			}
			infos, err := s.List(ctx, "a/")
			if err != nil || len(infos) != 1 || infos[0].Key != "a/b/file1" {
				t.Fatalf("List = %+v, %v", infos, err)
			}

			// Overwrite.
			if err := s.Put(ctx, "a/b/file1", []byte("v2")); err != nil {
				t.Fatalf("overwrite Put: %v", err)
			}
			got, _ = s.Get(ctx, "a/b/file1")
			if string(got) != "v2" {
				t.Fatalf("after overwrite Get = %q", got)
			}

			// Conditional create.
			if err := s.PutIfAbsent(ctx, "a/b/file1", []byte("v3")); !errors.Is(err, ErrExists) {
				t.Fatalf("PutIfAbsent existing: err = %v, want ErrExists", err)
			}
			if err := s.PutIfAbsent(ctx, "a/b/file2", []byte("new")); err != nil {
				t.Fatalf("PutIfAbsent new: %v", err)
			}

			// Delete removes.
			if err := s.Delete(ctx, "a/b/file1"); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if _, err := s.Get(ctx, "a/b/file1"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after Delete: err = %v", err)
			}
		})
	}
}

func TestStoreGetRange(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			s := mk()
			data := []byte("0123456789")
			if err := s.Put(ctx, "k", data); err != nil {
				t.Fatalf("Put: %v", err)
			}
			cases := []struct {
				off, n int64
				want   string
			}{
				{0, 4, "0123"},
				{3, 4, "3456"},
				{0, -1, "0123456789"},
				{5, -1, "56789"},
				{-3, 0, "789"},          // suffix range
				{-100, 0, "0123456789"}, // suffix larger than object
				{8, 100, "89"},          // clipped tail
				{10, 5, ""},             // empty at end
			}
			for _, tc := range cases {
				got, err := s.GetRange(ctx, "k", tc.off, tc.n)
				if err != nil {
					t.Fatalf("GetRange(%d,%d): %v", tc.off, tc.n, err)
				}
				if string(got) != tc.want {
					t.Fatalf("GetRange(%d,%d) = %q, want %q", tc.off, tc.n, got, tc.want)
				}
			}
			if _, err := s.GetRange(ctx, "k", 11, 1); !errors.Is(err, ErrInvalidRange) {
				t.Fatalf("out-of-bounds range: err = %v, want ErrInvalidRange", err)
			}
		})
	}
}

func TestStoreListOrderingAndPrefix(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			s := mk()
			keys := []string{"p/z", "p/a", "q/b", "p/m/n"}
			for _, k := range keys {
				if err := s.Put(ctx, k, []byte(k)); err != nil {
					t.Fatalf("Put %s: %v", k, err)
				}
			}
			infos, err := s.List(ctx, "p/")
			if err != nil {
				t.Fatalf("List: %v", err)
			}
			want := []string{"p/a", "p/m/n", "p/z"}
			if len(infos) != len(want) {
				t.Fatalf("List returned %d entries, want %d", len(infos), len(want))
			}
			for i, w := range want {
				if infos[i].Key != w {
					t.Fatalf("List[%d] = %s, want %s", i, infos[i].Key, w)
				}
			}
		})
	}
}

func TestStoreConcurrentPutIfAbsent(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			s := mk()
			const n = 16
			var wins int
			var mu sync.Mutex
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					err := s.PutIfAbsent(ctx, "commit/0001", []byte(fmt.Sprintf("writer-%d", i)))
					if err == nil {
						mu.Lock()
						wins++
						mu.Unlock()
					} else if !errors.Is(err, ErrExists) {
						t.Errorf("unexpected error: %v", err)
					}
				}(i)
			}
			wg.Wait()
			if wins != 1 {
				t.Fatalf("PutIfAbsent winners = %d, want exactly 1", wins)
			}
		})
	}
}

func TestMemStoreCreationTimestamps(t *testing.T) {
	clock := simtime.NewVirtualClock()
	s := NewMemStore(clock)
	ctx := context.Background()
	if err := s.Put(ctx, "a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Hour)
	if err := s.Put(ctx, "b", []byte("y")); err != nil {
		t.Fatal(err)
	}
	ia, _ := s.Head(ctx, "a")
	ib, _ := s.Head(ctx, "b")
	if !ib.Created.Equal(ia.Created.Add(time.Hour)) {
		t.Fatalf("timestamps: a=%v b=%v", ia.Created, ib.Created)
	}
}

func TestMemStoreIsolation(t *testing.T) {
	s := NewMemStore(nil)
	ctx := context.Background()
	data := []byte("mutable")
	if err := s.Put(ctx, "k", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X' // caller mutates its buffer after Put
	got, _ := s.Get(ctx, "k")
	if string(got) != "mutable" {
		t.Fatalf("Put did not copy: %q", got)
	}
	got[0] = 'Y' // caller mutates the returned buffer
	got2, _ := s.Get(ctx, "k")
	if string(got2) != "mutable" {
		t.Fatalf("Get did not copy: %q", got2)
	}
}

func TestMemStoreAccounting(t *testing.T) {
	s := NewMemStore(nil)
	ctx := context.Background()
	s.Put(ctx, "a", make([]byte, 100))
	s.Put(ctx, "b", make([]byte, 50))
	if s.Len() != 2 || s.TotalBytes() != 150 {
		t.Fatalf("Len=%d TotalBytes=%d", s.Len(), s.TotalBytes())
	}
}

func TestDirStoreKeyEscapeRejected(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Cleaned to stay under root rather than escaping it.
	if err := s.Put(ctx, "../../etc/passwd", []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	infos, err := s.List(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if info.Key == "" || info.Key[0] == '.' {
			t.Fatalf("suspicious listed key %q", info.Key)
		}
	}
}
