package objectstore

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestFanGetPreCanceledContext checks a fan over an already-canceled
// context returns ctx.Err() without issuing any store requests.
func TestFanGetPreCanceledContext(t *testing.T) {
	s, metrics := Instrument(NewMemStore(nil), testModel())
	ctx, cancel := context.WithCancel(context.Background())
	s.Put(ctx, "a", []byte("x"))
	s.Put(ctx, "b", []byte("y"))
	before := metrics.Snapshot()
	cancel()
	_, err := FanGet(ctx, s, []RangeRequest{{Key: "a", Length: -1}, {Key: "b", Length: -1}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := metrics.Snapshot().Sub(before).Gets; got != 0 {
		t.Fatalf("canceled fan issued %d GETs", got)
	}
}

// parkedStore parks every GetRange until its context is canceled,
// then reports the cancellation — the shape of a hung remote request.
type parkedStore struct {
	Store
	entered chan struct{}
}

func (b *parkedStore) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	select {
	case b.entered <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestFanGetCanceledMidFlight cancels while branch requests are parked
// inside the store: the fan must return promptly with ctx.Err()
// rather than waiting on the stuck branches' results.
func TestFanGetCanceledMidFlight(t *testing.T) {
	inner := NewMemStore(nil)
	ctx0 := context.Background()
	inner.Put(ctx0, "a", []byte("x"))
	inner.Put(ctx0, "b", []byte("y"))
	bs := &parkedStore{Store: inner, entered: make(chan struct{}, 1)}

	ctx, cancel := context.WithCancel(ctx0)
	done := make(chan error, 1)
	go func() {
		_, err := FanGet(ctx, bs, []RangeRequest{{Key: "a", Length: -1}, {Key: "b", Length: -1}})
		done <- err
	}()
	<-bs.entered // at least one branch is parked in the store
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("FanGet did not return after cancellation")
	}
}
