package objectstore

import (
	"context"
	"errors"
	"testing"

	"rottnest/internal/simtime"
)

// TestGetRangeEdgeParity pins the GetRange edge semantics and checks
// every store implementation agrees: readers pick ranges against one
// contract, not against whichever store backs the lake today. The
// cached store must agree both cold (miss path) and warm (hit path),
// and the retry/fault wrappers must be transparent.
func TestGetRangeEdgeParity(t *testing.T) {
	const body = "0123456789"
	cases := []struct {
		name           string
		offset, length int64
		want           string
		wantErr        error
	}{
		{name: "whole object", offset: 0, length: -1, want: body},
		{name: "interior slice", offset: 2, length: 3, want: "234"},
		{name: "suffix", offset: -4, length: 0, want: "6789"},
		{name: "suffix ignores length", offset: -4, length: 2, want: "6789"},
		{name: "suffix larger than object clamps to start", offset: -100, length: 0, want: body},
		{name: "negative length reads to end", offset: 3, length: -1, want: "3456789"},
		{name: "zero length mid-object", offset: 3, length: 0, want: ""},
		{name: "zero length at end", offset: 10, length: 0, want: ""},
		{name: "negative length at end", offset: 10, length: -1, want: ""},
		{name: "length clamped at end", offset: 8, length: 100, want: "89"},
		{name: "offset past end", offset: 11, length: 1, wantErr: ErrInvalidRange},
		{name: "offset past end negative length", offset: 11, length: -1, wantErr: ErrInvalidRange},
	}

	factories := map[string]func() Store{
		"mem": func() Store { return NewMemStore(simtime.NewVirtualClock()) },
		"dir": func() Store {
			s, err := NewDirStore(t.TempDir())
			if err != nil {
				t.Fatalf("NewDirStore: %v", err)
			}
			return s
		},
		"cached": func() Store {
			return NewCachedStore(NewMemStore(simtime.NewVirtualClock()), CacheOptions{})
		},
		"retry": func() Store {
			return NewRetryStore(NewMemStore(simtime.NewVirtualClock()), RetryPolicy{Enabled: true})
		},
		"fault-quiet": func() Store {
			return NewFaultStoreWithProfile(NewMemStore(simtime.NewVirtualClock()), FaultProfile{})
		},
	}

	for name, mk := range factories {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			s := mk()
			if err := s.Put(ctx, "obj", []byte(body)); err != nil {
				t.Fatal(err)
			}
			for _, tc := range cases {
				// Twice: a cached store must agree on both the miss
				// and the hit path.
				for pass := 0; pass < 2; pass++ {
					got, err := s.GetRange(ctx, "obj", tc.offset, tc.length)
					if tc.wantErr != nil {
						if !errors.Is(err, tc.wantErr) {
							t.Fatalf("%s (pass %d): err = %v, want %v", tc.name, pass, err, tc.wantErr)
						}
						continue
					}
					if err != nil {
						t.Fatalf("%s (pass %d): %v", tc.name, pass, err)
					}
					if string(got) != tc.want {
						t.Fatalf("%s (pass %d): got %q, want %q", tc.name, pass, got, tc.want)
					}
				}
			}
			// Ranges on missing keys surface ErrNotFound, not
			// ErrInvalidRange, on every implementation.
			if _, err := s.GetRange(ctx, "missing", 0, 4); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing key: err = %v, want ErrNotFound", err)
			}
		})
	}
}
