package objectstore

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"

	"rottnest/internal/simtime"
)

// MemStore is an in-memory Store with strong read-after-write
// consistency. Object creation times are stamped from the provided
// Clock, which in simulations is the single global clock of the world.
type MemStore struct {
	clock simtime.Clock

	mu      sync.RWMutex
	objects map[string]memObject
}

type memObject struct {
	data    []byte
	created time.Time
}

// NewMemStore returns an empty MemStore stamping creation times from
// clock. A nil clock defaults to the real wall clock.
func NewMemStore(clock simtime.Clock) *MemStore {
	if clock == nil {
		clock = simtime.RealClock{}
	}
	return &MemStore{clock: clock, objects: make(map[string]memObject)}
}

// Put implements Store.
func (s *MemStore) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.objects[key] = memObject{data: cp, created: s.clock.Now()}
	s.mu.Unlock()
	return nil
}

// PutIfAbsent implements Store.
func (s *MemStore) PutIfAbsent(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[key]; ok {
		return ErrExists
	}
	s.objects[key] = memObject{data: cp, created: s.clock.Now()}
	return nil
}

// Get implements Store.
func (s *MemStore) Get(ctx context.Context, key string) ([]byte, error) {
	return s.GetRange(ctx, key, 0, -1)
}

// GetRange implements Store.
func (s *MemStore) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	obj, ok := s.objects[key]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	start, end, err := resolveRange(int64(len(obj.data)), offset, length)
	if err != nil {
		return nil, err
	}
	out := make([]byte, end-start)
	copy(out, obj.data[start:end])
	return out, nil
}

// Head implements Store.
func (s *MemStore) Head(ctx context.Context, key string) (ObjectInfo, error) {
	if err := ctx.Err(); err != nil {
		return ObjectInfo{}, err
	}
	s.mu.RLock()
	obj, ok := s.objects[key]
	s.mu.RUnlock()
	if !ok {
		return ObjectInfo{}, ErrNotFound
	}
	return ObjectInfo{Key: key, Size: int64(len(obj.data)), Created: obj.created}, nil
}

// List implements Store.
func (s *MemStore) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	infos := make([]ObjectInfo, 0, 16)
	for key, obj := range s.objects {
		if strings.HasPrefix(key, prefix) {
			infos = append(infos, ObjectInfo{Key: key, Size: int64(len(obj.data)), Created: obj.created})
		}
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Key < infos[j].Key })
	return infos, nil
}

// Delete implements Store.
func (s *MemStore) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.objects, key)
	s.mu.Unlock()
	return nil
}

// Len reports the number of stored objects.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// TotalBytes reports the sum of all object sizes, i.e. the storage
// footprint the TCO model charges per month.
func (s *MemStore) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, obj := range s.objects {
		total += int64(len(obj.data))
	}
	return total
}
