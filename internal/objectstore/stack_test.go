package objectstore

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"rottnest/internal/simtime"
)

func TestStackCanonicalOrder(t *testing.T) {
	base := NewMemStore(simtime.NewVirtualClock())
	model := DefaultS3Model()
	st := NewStack(base, StackOptions{
		Faults:  &FaultProfile{},
		Retry:   RetryPolicy{Enabled: true},
		Latency: &model,
	})
	if st.Fault == nil || st.Retry == nil || st.Instrumented == nil || st.Cache == nil {
		t.Fatalf("missing layers: %+v", st)
	}
	// Outer → inner must be cache → instrument → retry → fault → base.
	if st.Store != Store(st.Cache) {
		t.Fatal("cache is not outermost")
	}
	if st.Cache.Inner() != Store(st.Instrumented) {
		t.Fatal("instrument is not directly under cache")
	}
	if st.Instrumented.Inner() != Store(st.Retry) {
		t.Fatal("retry is not directly under instrument")
	}
	if st.Retry.Inner() != Store(st.Fault) {
		t.Fatal("fault is not directly under retry")
	}
	if st.Fault.Inner() != Store(base) {
		t.Fatal("base is not innermost")
	}
	// The chain walkers must reach each layer from the top.
	if FindCached(st.Store) != st.Cache || FindInstrumented(st.Store) != st.Instrumented || FindRetry(st.Store) != st.Retry {
		t.Fatal("chain walkers lost a layer")
	}
}

func TestStackLayerGating(t *testing.T) {
	base := NewMemStore(simtime.NewVirtualClock())
	st := NewStack(base, StackOptions{CacheBytes: -1})
	if st.Store != Store(base) {
		t.Fatal("empty options should yield the bare base store")
	}
	if st.Fault != nil || st.Retry != nil || st.Instrumented != nil || st.Cache != nil {
		t.Fatalf("unexpected layers: %+v", st)
	}
	// CacheBytes 0 means cache on at the default budget.
	st = NewStack(base, StackOptions{})
	if st.Cache == nil || st.Store != Store(st.Cache) {
		t.Fatal("zero CacheBytes should enable the default cache")
	}
}

// TestStackRegistryMatchesMetrics is the drift check the chaos harness
// also enforces: the registry's store.* counters and the legacy atomic
// Metrics must agree after a workload.
func TestStackRegistryMatchesMetrics(t *testing.T) {
	ctx := simtime.With(context.Background(), simtime.NewSession())
	base := NewMemStore(simtime.NewVirtualClock())
	model := DefaultS3Model()
	st := NewStack(base, StackOptions{Latency: &model, CacheBytes: -1})
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := st.Store.Put(ctx, key, make([]byte, 100+i)); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Store.Get(ctx, key); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Store.List(ctx, ""); err != nil {
		t.Fatal(err)
	}
	legacy := st.Metrics.Snapshot()
	view := MetricsFromSnapshot(st.MetricsSnapshot())
	if legacy != view {
		t.Fatalf("registry view %+v != legacy metrics %+v", view, legacy)
	}
	if legacy.Gets != 5 || legacy.Puts != 5 || legacy.Lists != 1 {
		t.Fatalf("unexpected totals: %+v", legacy)
	}
}

// TestFanGetRegistryConcurrent hammers the registry from parallel
// FanGet branches; run under -race via make check.
func TestFanGetRegistryConcurrent(t *testing.T) {
	base := NewMemStore(simtime.NewVirtualClock())
	model := DefaultS3Model()
	st := NewStack(base, StackOptions{Latency: &model, CacheBytes: -1})
	ctx := context.Background()
	const objects = 8
	for i := 0; i < objects; i++ {
		if err := st.Store.Put(ctx, fmt.Sprintf("obj%d", i), make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sctx := simtime.With(ctx, simtime.NewSession())
			reqs := make([]RangeRequest, objects)
			for i := range reqs {
				reqs[i] = RangeRequest{Key: fmt.Sprintf("obj%d", i), Offset: int64(w * 16), Length: 256}
			}
			if _, err := FanGet(sctx, st.Store, reqs); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	snap := st.MetricsSnapshot()
	wantGets := int64(workers * objects)
	if got := snap.Counter("store.gets"); got != wantGets {
		t.Fatalf("store.gets = %d, want %d", got, wantGets)
	}
	if got := st.Metrics.Gets.Load(); got != wantGets {
		t.Fatalf("legacy Gets = %d, want %d", got, wantGets)
	}
	if snap.Counter("store.bytes_read") != st.Metrics.BytesRead.Load() {
		t.Fatal("bytes_read drifted between registry and legacy metrics")
	}
}
