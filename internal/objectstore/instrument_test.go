package objectstore

import (
	"context"
	"errors"
	"testing"
	"time"

	"rottnest/internal/simtime"
)

func testModel() LatencyModel {
	return LatencyModel{
		GetTTFB:            30 * time.Millisecond,
		PutTTFB:            40 * time.Millisecond,
		ListTTFB:           60 * time.Millisecond,
		FlatUntil:          1 << 20,
		BandwidthBps:       100e6,
		MaxGetRPSPerPrefix: 5500,
		ListPageSize:       1000,
	}
}

func TestLatencyModelShape(t *testing.T) {
	m := testModel()
	// Flat regime: any size <= 1 MiB costs exactly TTFB (Fig 10a).
	for _, size := range []int64{0, 1024, 300 << 10, 1 << 20} {
		if got := m.GetLatency(size); got != m.GetTTFB {
			t.Fatalf("GetLatency(%d) = %v, want flat %v", size, got, m.GetTTFB)
		}
	}
	// Linear regime: 101 MiB read ≈ TTFB + 100MiB/bandwidth.
	size := int64(101 << 20)
	want := m.GetTTFB + time.Duration(float64(size-1<<20)/m.BandwidthBps*float64(time.Second))
	if got := m.GetLatency(size); got != want {
		t.Fatalf("GetLatency(%d) = %v, want %v", size, got, want)
	}
	// Monotonic in the linear regime.
	if m.GetLatency(10<<20) >= m.GetLatency(100<<20) {
		t.Fatal("latency must grow with size beyond the flat window")
	}
}

func TestListLatencyPaging(t *testing.T) {
	m := testModel()
	if got := m.ListLatency(10); got != m.ListTTFB {
		t.Fatalf("ListLatency(10) = %v", got)
	}
	if got := m.ListLatency(2500); got != 3*m.ListTTFB {
		t.Fatalf("ListLatency(2500) = %v, want 3 pages", got)
	}
}

func TestInstrumentedChargesSession(t *testing.T) {
	inner := NewMemStore(nil)
	s, metrics := Instrument(inner, testModel())
	sess := simtime.NewSession()
	ctx := simtime.With(context.Background(), sess)

	payload := make([]byte, 2<<20)
	if err := s.Put(ctx, "k", payload); err != nil {
		t.Fatal(err)
	}
	putCost := testModel().PutLatency(int64(len(payload)))
	if got := sess.Elapsed(); got != putCost {
		t.Fatalf("after Put: elapsed %v, want %v", got, putCost)
	}

	if _, err := s.GetRange(ctx, "k", 0, 1000); err != nil {
		t.Fatal(err)
	}
	want := putCost + testModel().GetTTFB
	if got := sess.Elapsed(); got != want {
		t.Fatalf("after small GetRange: elapsed %v, want %v", got, want)
	}

	snap := metrics.Snapshot()
	if snap.Puts != 1 || snap.Gets != 1 {
		t.Fatalf("metrics %+v", snap)
	}
	if snap.BytesWritten != int64(len(payload)) || snap.BytesRead != 1000 {
		t.Fatalf("byte metrics %+v", snap)
	}
}

func TestInstrumentedNoSessionStillWorks(t *testing.T) {
	s, metrics := Instrument(NewMemStore(nil), testModel())
	ctx := context.Background()
	if err := s.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if metrics.Snapshot().Requests() != 2 {
		t.Fatalf("requests = %d", metrics.Snapshot().Requests())
	}
}

func TestSnapshotSub(t *testing.T) {
	s, metrics := Instrument(NewMemStore(nil), testModel())
	ctx := context.Background()
	s.Put(ctx, "a", []byte("1"))
	before := metrics.Snapshot()
	s.Get(ctx, "a")
	s.Get(ctx, "a")
	delta := metrics.Snapshot().Sub(before)
	if delta.Gets != 2 || delta.Puts != 0 || delta.Requests() != 2 {
		t.Fatalf("delta = %+v", delta)
	}
}

func TestFanGetParallelLatency(t *testing.T) {
	s, _ := Instrument(NewMemStore(nil), testModel())
	ctx := context.Background()
	for _, k := range []string{"a", "b", "c"} {
		if err := s.Put(ctx, k, make([]byte, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	sess := simtime.NewSession()
	sctx := simtime.With(ctx, sess)
	reqs := []RangeRequest{
		{Key: "a", Offset: 0, Length: 100},
		{Key: "b", Offset: 0, Length: 100},
		{Key: "c", Offset: 0, Length: 100},
	}
	results, err := FanGet(sctx, s, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if len(r) != 100 {
			t.Fatalf("result %d has %d bytes", i, len(r))
		}
	}
	// 3 parallel small GETs: one TTFB plus the tiny RPS queue charge,
	// far less than 3 sequential TTFBs.
	queueSecs := 3.0 / 5500.0
	queue := time.Duration(queueSecs * float64(time.Second))
	want := testModel().GetTTFB + queue
	if got := sess.Elapsed(); got != want {
		t.Fatalf("fan latency %v, want %v", got, want)
	}
}

func TestFanGetThrottleQueueing(t *testing.T) {
	s, _ := Instrument(NewMemStore(nil), testModel())
	ctx := context.Background()
	if err := s.Put(ctx, "k", make([]byte, 10000)); err != nil {
		t.Fatal(err)
	}
	const n = 11000 // 2 seconds worth of queue at 5500 RPS
	reqs := make([]RangeRequest, n)
	for i := range reqs {
		reqs[i] = RangeRequest{Key: "k", Offset: 0, Length: 10}
	}
	sess := simtime.NewSession()
	if _, err := FanGet(simtime.With(ctx, sess), s, reqs); err != nil {
		t.Fatal(err)
	}
	elapsed := sess.Elapsed()
	if elapsed < 2*time.Second {
		t.Fatalf("throttled fan of %d requests took only %v", n, elapsed)
	}
}

func TestFanGetErrorPropagates(t *testing.T) {
	s, _ := Instrument(NewMemStore(nil), testModel())
	ctx := context.Background()
	s.Put(ctx, "exists", []byte("x"))
	_, err := FanGet(ctx, s, []RangeRequest{
		{Key: "exists", Offset: 0, Length: 1},
		{Key: "missing", Offset: 0, Length: 1},
	})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestFanGetEmpty(t *testing.T) {
	s, _ := Instrument(NewMemStore(nil), testModel())
	res, err := FanGet(context.Background(), s, nil)
	if err != nil || res != nil {
		t.Fatalf("FanGet(nil) = %v, %v", res, err)
	}
}

func TestFaultStoreInjection(t *testing.T) {
	inner := NewMemStore(nil)
	fs := NewFaultStore(inner, FailNth(OpPut, 2))
	ctx := context.Background()
	if err := fs.Put(ctx, "a", []byte("1")); err != nil {
		t.Fatalf("first put should succeed: %v", err)
	}
	if err := fs.Put(ctx, "b", []byte("2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second put err = %v, want ErrInjected", err)
	}
	if err := fs.Put(ctx, "c", []byte("3")); err != nil {
		t.Fatalf("third put should succeed: %v", err)
	}
	// The failed put must not have landed.
	if _, err := inner.Get(ctx, "b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed put landed anyway: %v", err)
	}
}

func TestFaultStoreNilPredicate(t *testing.T) {
	fs := NewFaultStore(NewMemStore(nil), nil)
	ctx := context.Background()
	if err := fs.Put(ctx, "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.List(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
}
