package objectstore

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"rottnest/internal/simtime"
)

// chaosProfile is a profile aggressive enough that a few hundred ops
// hit every fault kind.
func chaosProfile(seed int64) FaultProfile {
	return FaultProfile{
		Seed:          seed,
		Transient:     0.1,
		Throttle:      0.05,
		ThrottleBurst: 2,
		Latency:       0.05,
		SpikeLatency:  100 * time.Millisecond,
		Deadline:      0.05,
		AmbiguousPut:  0.3,
	}
}

func TestFaultProfileDeterministic(t *testing.T) {
	run := func() []string {
		fs := NewFaultStoreWithProfile(NewMemStore(nil), chaosProfile(7))
		ctx := context.Background()
		var errs []string
		for i := 0; i < 200; i++ {
			err := fs.Put(ctx, "k", []byte("v"))
			if err == nil {
				errs = append(errs, "")
			} else {
				errs = append(errs, err.Error())
			}
		}
		return errs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestFaultProfileHitsEveryKind(t *testing.T) {
	fs := NewFaultStoreWithProfile(NewMemStore(nil), chaosProfile(3))
	ctx := context.Background()
	for i := 0; i < 300; i++ {
		fs.Put(ctx, "k", []byte("v"))
		fs.PutIfAbsent(ctx, keyN(i), []byte("v"))
		fs.Get(ctx, "k")
	}
	c := fs.Counts()
	if c.Transient == 0 || c.Throttles == 0 || c.LatencySpikes == 0 || c.Deadlines == 0 || c.AmbiguousPuts == 0 {
		t.Fatalf("some fault kinds never fired: %+v", c)
	}
	if c.Total() != c.Transient+c.Throttles+c.LatencySpikes+c.Deadlines+c.AmbiguousPuts {
		t.Fatalf("Total mismatch: %+v", c)
	}
}

func keyN(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i%10))
}

func TestFaultThrottleBurstCorrelated(t *testing.T) {
	fs := NewFaultStoreWithProfile(NewMemStore(nil), FaultProfile{
		Seed:          1,
		Throttle:      0.2,
		ThrottleBurst: 3,
	})
	ctx := context.Background()
	streak, maxStreak := 0, 0
	for i := 0; i < 300; i++ {
		if _, err := fs.Get(ctx, "missing"); errors.Is(err, ErrThrottled) {
			streak++
			if streak > maxStreak {
				maxStreak = streak
			}
		} else {
			streak = 0
		}
	}
	// A throttle starts a burst of 3 more: streaks of >= 4 must occur.
	if maxStreak < 4 {
		t.Fatalf("max throttle streak %d, want >= 4 (bursts not correlated)", maxStreak)
	}
}

func TestFaultAmbiguousPutLandsWrite(t *testing.T) {
	inner := NewMemStore(nil)
	fs := NewFaultStoreWithProfile(inner, FaultProfile{Seed: 1, AmbiguousPut: 1})
	ctx := context.Background()
	err := fs.PutIfAbsent(ctx, "log/0001", []byte("record"))
	if !errors.Is(err, ErrAmbiguousPut) || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrAmbiguousPut wrapping ErrInjected", err)
	}
	got, gerr := inner.Get(ctx, "log/0001")
	if gerr != nil || string(got) != "record" {
		t.Fatalf("write did not land: %q, %v", got, gerr)
	}
	// Plain Put is unconditional: never ambiguous.
	if err := fs.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("unconditional put: %v", err)
	}
}

func TestFaultLatencySpikeChargesSession(t *testing.T) {
	fs := NewFaultStoreWithProfile(NewMemStore(nil), FaultProfile{
		Seed: 1, Latency: 1, SpikeLatency: 250 * time.Millisecond,
	})
	sess := simtime.NewSession()
	ctx := simtime.With(context.Background(), sess)
	if err := fs.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("latency spike must not fail the op: %v", err)
	}
	if sess.Elapsed() != 250*time.Millisecond {
		t.Fatalf("elapsed = %v, want 250ms", sess.Elapsed())
	}
}

func TestFaultDeadlineLooksLikeRequestTimeout(t *testing.T) {
	fs := NewFaultStoreWithProfile(NewMemStore(nil), FaultProfile{Seed: 1, Deadline: 1})
	err := fs.Put(context.Background(), "k", []byte("v"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped DeadlineExceeded", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want wrapped ErrInjected", err)
	}
}

func TestFaultOpsRestriction(t *testing.T) {
	fs := NewFaultStoreWithProfile(NewMemStore(nil), FaultProfile{
		Seed: 1, Transient: 1, Ops: []Op{OpGet},
	})
	ctx := context.Background()
	if err := fs.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("put must pass (Ops excludes OpPut): %v", err)
	}
	if _, err := fs.Get(ctx, "k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("get must fail: %v", err)
	}
}

func TestRetryRecoversFromTransients(t *testing.T) {
	var fails atomic.Int64
	fs := NewFaultStore(NewMemStore(nil), func(op Op, _ string, _ int64) bool {
		return op == OpGet && fails.Add(1) <= 2
	})
	rs := NewRetryStore(fs, RetryPolicy{Seed: 1})
	ctx := simtime.With(context.Background(), simtime.NewSession())
	fs.Inner().Put(ctx, "k", []byte("v"))
	got, err := rs.Get(ctx, "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if s := rs.Stats(); s.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", s.Retries)
	}
}

func TestRetryPermanentErrorsNotRetried(t *testing.T) {
	rs := NewRetryStore(NewMemStore(nil), RetryPolicy{Seed: 1})
	ctx := context.Background()
	if _, err := rs.Get(ctx, "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: %v", err)
	}
	if _, err := rs.GetRange(ctx, "missing", 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetRange missing: %v", err)
	}
	rs.Put(ctx, "k", []byte("v"))
	if _, err := rs.GetRange(ctx, "k", 10, 1); !errors.Is(err, ErrInvalidRange) {
		t.Fatalf("GetRange oob: %v", err)
	}
	if s := rs.Stats(); s.Retries != 0 {
		t.Fatalf("Retries = %d, want 0", s.Retries)
	}
}

func TestRetryExhaustionSurfacesError(t *testing.T) {
	fs := NewFaultStoreWithProfile(NewMemStore(nil), FaultProfile{Seed: 1, Transient: 1, Ops: []Op{OpGet}})
	rs := NewRetryStore(fs, RetryPolicy{Seed: 1, MaxAttempts: 3})
	ctx := simtime.With(context.Background(), simtime.NewSession())
	if _, err := rs.Get(ctx, "k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("exhausted retry must surface the fault: %v", err)
	}
	if s := rs.Stats(); s.Retries != 2 {
		t.Fatalf("Retries = %d, want 2 (3 attempts)", s.Retries)
	}
}

func TestRetryThrottleWaitsFloor(t *testing.T) {
	throttleOnce := &onceThrottleStore{Store: NewMemStore(nil)}
	rs := NewRetryStore(throttleOnce, RetryPolicy{Seed: 1, ThrottleFloor: 300 * time.Millisecond})
	sess := simtime.NewSession()
	ctx := simtime.With(context.Background(), sess)
	if err := rs.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s := rs.Stats()
	if s.ThrottleWaits != 1 || s.Retries != 1 {
		t.Fatalf("stats = %+v, want 1 throttle wait", s)
	}
	if sess.Elapsed() < 300*time.Millisecond {
		t.Fatalf("throttle wait %v below floor", sess.Elapsed())
	}
}

// onceThrottleStore throttles the first Put, then delegates.
type onceThrottleStore struct {
	Store
	fired atomic.Bool
}

func (s *onceThrottleStore) Put(ctx context.Context, key string, data []byte) error {
	if !s.fired.Swap(true) {
		return ErrThrottled
	}
	return s.Store.Put(ctx, key, data)
}

func TestRetryAmbiguousPutResolvedByReadBack(t *testing.T) {
	inner := NewMemStore(nil)
	fs := NewFaultStoreWithProfile(inner, FaultProfile{Seed: 1, AmbiguousPut: 1})
	rs := NewRetryStore(fs, RetryPolicy{Seed: 1})
	ctx := simtime.With(context.Background(), simtime.NewSession())
	if err := rs.PutIfAbsent(ctx, "log/0001", []byte("record")); err != nil {
		t.Fatalf("ambiguous put must resolve to success: %v", err)
	}
	if s := rs.Stats(); s.AmbiguousResolved != 1 {
		t.Fatalf("AmbiguousResolved = %d, want 1", s.AmbiguousResolved)
	}
	// A competitor's bytes under the same key stay ErrExists.
	inner.Put(ctx, "log/0002", []byte("theirs"))
	if err := rs.PutIfAbsent(ctx, "log/0002", []byte("ours")); !errors.Is(err, ErrExists) {
		t.Fatalf("competitor's key: %v, want ErrExists", err)
	}
	// Re-putting our own bytes resolves to success (idempotent).
	if err := rs.PutIfAbsent(ctx, "log/0001", []byte("record")); err != nil {
		t.Fatalf("idempotent re-put: %v", err)
	}
}

func TestRetryPutIfAbsentTransientThenSucceeds(t *testing.T) {
	var n atomic.Int64
	inner := NewMemStore(nil)
	fs := NewFaultStore(inner, func(op Op, key string, _ int64) bool {
		// Fail the first conditional-put attempt; the read-back (a Get)
		// and the second attempt pass.
		return op == OpPut && n.Add(1) == 1
	})
	rs := NewRetryStore(fs, RetryPolicy{Seed: 1})
	ctx := simtime.With(context.Background(), simtime.NewSession())
	if err := rs.PutIfAbsent(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, _ := inner.Get(ctx, "k"); string(got) != "v" {
		t.Fatalf("value = %q", got)
	}
}

func TestRetryHonorsContextCancellation(t *testing.T) {
	fs := NewFaultStoreWithProfile(NewMemStore(nil), FaultProfile{Seed: 1, Transient: 1})
	// No simtime session: backoff would real-sleep, but the context is
	// canceled, so the retry loop must bail out promptly.
	rs := NewRetryStore(fs, RetryPolicy{Seed: 1, BaseDelay: time.Hour, MaxDelay: time.Hour, MaxAttempts: 5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := rs.Get(ctx, "k")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatalf("cancellation not prompt: %v", time.Since(start))
	}
}

func TestRetryBackoffGrowsAndCaps(t *testing.T) {
	rs := NewRetryStore(NewMemStore(nil), RetryPolicy{
		Seed: 1, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond,
		Multiplier: 2, Jitter: -1, // disable jitter for exact values
	})
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := rs.backoff(i, false); got != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestFindRetryWalksChain(t *testing.T) {
	mem := NewMemStore(nil)
	rs := NewRetryStore(mem, RetryPolicy{Seed: 1})
	cached := NewCachedStore(rs, CacheOptions{})
	if FindRetry(cached) != rs {
		t.Fatal("FindRetry through CachedStore failed")
	}
	if FindRetry(mem) != nil {
		t.Fatal("FindRetry on bare MemStore must be nil")
	}
	fs := NewFaultStore(mem, nil)
	if FindRetry(fs) != nil {
		t.Fatal("FindRetry through FaultStore with no retry must be nil")
	}
	if fs.Inner() != mem {
		t.Fatal("FaultStore.Inner")
	}
}
