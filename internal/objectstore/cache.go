package objectstore

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"rottnest/internal/obs"
	"rottnest/internal/simtime"
)

// Cache sizing defaults.
const (
	// DefaultCacheBytes is the read cache's default byte budget.
	DefaultCacheBytes = 64 << 20
	// DefaultCoalesceGap is the default maximum gap between two
	// ranged GETs of the same object that FanGet merges into one
	// request. It sits well below the latency model's ~1 MiB flat
	// window (Figure 10a of the paper), so merging costs near-zero
	// extra latency while saving whole requests.
	DefaultCoalesceGap = 128 << 10
)

// CacheStats is a point-in-time snapshot of a CachedStore's counters.
type CacheStats struct {
	// Hits and Misses count cache lookups on the GET path.
	Hits, Misses int64
	// BytesSaved is the total size of reads served from the cache
	// instead of the store.
	BytesSaved int64
	// Evictions counts entries dropped to stay within the byte
	// budget.
	Evictions int64
	// CoalescedGets counts GETs absorbed by singleflight: concurrent
	// requests for a range that another goroutine was already
	// fetching.
	CoalescedGets int64
	// UpstreamGets and UpstreamBytes count the GET requests and bytes
	// the cache actually forwarded to the wrapped store. They let
	// callers meter request footprints even when no Instrumented
	// store is underneath (e.g. the CLI's directory store).
	UpstreamGets, UpstreamBytes int64
}

// Sub returns the counter deltas from an earlier snapshot, for
// attributing cache activity to a single operation.
func (s CacheStats) Sub(earlier CacheStats) CacheStats {
	return CacheStats{
		Hits:          s.Hits - earlier.Hits,
		Misses:        s.Misses - earlier.Misses,
		BytesSaved:    s.BytesSaved - earlier.BytesSaved,
		Evictions:     s.Evictions - earlier.Evictions,
		CoalescedGets: s.CoalescedGets - earlier.CoalescedGets,
		UpstreamGets:  s.UpstreamGets - earlier.UpstreamGets,
		UpstreamBytes: s.UpstreamBytes - earlier.UpstreamBytes,
	}
}

// CacheOptions tune a CachedStore.
type CacheOptions struct {
	// MaxBytes is the cache's byte budget. <= 0 means
	// DefaultCacheBytes.
	MaxBytes int64
	// CoalesceGap is the adjacent-range merge threshold used by
	// FanGet when fanning requests through this store. 0 means
	// DefaultCoalesceGap; negative disables coalescing.
	CoalesceGap int64
}

// CachedStore wraps a Store with a concurrency-safe, size-bounded LRU
// read cache keyed on (key, offset, length), plus singleflight
// coalescing of concurrent identical reads.
//
// The wrapper exploits the lake's immutability invariant: objects are
// written once and never overwritten — data files, deletion vectors,
// and index files all get fresh crypto-random names, and log records
// commit with PutIfAbsent — so a cached range can only go stale by
// deletion, and invalidation is delete-only. Writes and deletes
// through the wrapper invalidate the key's entries as belt and
// braces.
//
// Virtual-time accounting: a cache hit bypasses the wrapped store
// entirely, so an Instrumented store underneath charges it zero
// latency — the simtime model sees exactly the requests that would
// hit S3. A singleflight follower still rides an in-flight GET, so it
// is charged the full modelled GET latency (conservative: it may join
// partway through) while saving the request itself.
//
// Callers must treat returned byte slices as read-only: hits alias
// the cached buffer.
type CachedStore struct {
	inner       Store
	model       *LatencyModel // latency model of the wrapped chain, if instrumented
	maxBytes    int64
	coalesceGap int64

	flights flightGroup

	// Counters live in the registry ("cache.*" names); CacheStats is a
	// view derived from its snapshot.
	reg                        *obs.Registry
	hits, misses, bytesSaved   *obs.Counter
	evictions, coalesced       *obs.Counter
	upstreamGets, upstreamByts *obs.Counter
	residentBytes              *obs.Gauge

	mu    sync.Mutex
	lru   *list.List               // front = most recently used
	items map[string]*list.Element // composite range key -> element
	byObj map[string]map[string]*list.Element
	bytes int64
}

type cacheEntry struct {
	ckey   string // composite (key, offset, length) cache key
	objKey string // object key, for delete-time invalidation
	data   []byte
}

// NewCachedStore wraps inner with a read cache. If inner (or a store
// it wraps) is an Instrumented store, its latency model is used to
// charge singleflight followers.
func NewCachedStore(inner Store, opts CacheOptions) *CachedStore {
	maxBytes := opts.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	gap := opts.CoalesceGap
	if gap == 0 {
		gap = DefaultCoalesceGap
	}
	reg := obs.NewRegistry()
	c := &CachedStore{
		inner:         inner,
		maxBytes:      maxBytes,
		coalesceGap:   gap,
		reg:           reg,
		hits:          reg.Counter("cache.hits"),
		misses:        reg.Counter("cache.misses"),
		bytesSaved:    reg.Counter("cache.bytes_saved"),
		evictions:     reg.Counter("cache.evictions"),
		coalesced:     reg.Counter("cache.coalesced_gets"),
		upstreamGets:  reg.Counter("cache.upstream_gets"),
		upstreamByts:  reg.Counter("cache.upstream_bytes"),
		residentBytes: reg.Gauge("cache.bytes"),
		lru:           list.New(),
		items:         make(map[string]*list.Element),
		byObj:         make(map[string]map[string]*list.Element),
	}
	if inst := FindInstrumented(inner); inst != nil {
		m := inst.Model()
		c.model = &m
	}
	return c
}

// Inner returns the wrapped store.
func (c *CachedStore) Inner() Store { return c.inner }

// CoalesceGap returns the adjacent-range merge threshold in bytes
// (negative means coalescing is disabled). FanGet consults it.
func (c *CachedStore) CoalesceGap() int64 { return c.coalesceGap }

// Stats returns a snapshot of the cache counters. It is a view over
// the registry — CacheStatsFrom(c.Registry().Snapshot()).
func (c *CachedStore) Stats() CacheStats {
	return CacheStatsFrom(c.reg.Snapshot())
}

// Registry returns the cache's metrics registry ("cache.*" names).
func (c *CachedStore) Registry() *obs.Registry { return c.reg }

// CacheStatsFrom derives the legacy CacheStats view from a registry
// snapshot's "cache.*" counters.
func CacheStatsFrom(s obs.Snapshot) CacheStats {
	return CacheStats{
		Hits:          s.Counter("cache.hits"),
		Misses:        s.Counter("cache.misses"),
		BytesSaved:    s.Counter("cache.bytes_saved"),
		Evictions:     s.Counter("cache.evictions"),
		CoalescedGets: s.Counter("cache.coalesced_gets"),
		UpstreamGets:  s.Counter("cache.upstream_gets"),
		UpstreamBytes: s.Counter("cache.upstream_bytes"),
	}
}

// Flush drops every cached entry (counters are kept).
func (c *CachedStore) Flush() {
	c.mu.Lock()
	c.lru.Init()
	c.items = make(map[string]*list.Element)
	c.byObj = make(map[string]map[string]*list.Element)
	c.bytes = 0
	c.residentBytes.Set(0)
	c.mu.Unlock()
}

func cacheKey(key string, offset, length int64) string {
	return fmt.Sprintf("%s\x00%d\x00%d", key, offset, length)
}

// lookup returns the cached bytes for the composite key, promoting
// the entry to most-recently-used.
func (c *CachedStore) lookup(ckey string) ([]byte, bool) {
	c.mu.Lock()
	elem, ok := c.items[ckey]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.lru.MoveToFront(elem)
	data := elem.Value.(*cacheEntry).data
	c.mu.Unlock()
	return data, true
}

// insert stores data under the composite key, evicting LRU entries to
// stay within the byte budget. Entries larger than a quarter of the
// budget are not cached (one oversized read must not wipe the cache).
func (c *CachedStore) insert(objKey, ckey string, data []byte) {
	size := int64(len(data))
	if size > c.maxBytes/4 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[ckey]; ok {
		return // raced with another inserter; keep the resident copy
	}
	elem := c.lru.PushFront(&cacheEntry{ckey: ckey, objKey: objKey, data: data})
	c.items[ckey] = elem
	ranges := c.byObj[objKey]
	if ranges == nil {
		ranges = make(map[string]*list.Element)
		c.byObj[objKey] = ranges
	}
	ranges[ckey] = elem
	c.bytes += size
	for c.bytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions.Inc()
	}
	c.residentBytes.Set(c.bytes)
}

func (c *CachedStore) removeLocked(elem *list.Element) {
	e := elem.Value.(*cacheEntry)
	c.lru.Remove(elem)
	delete(c.items, e.ckey)
	if ranges := c.byObj[e.objKey]; ranges != nil {
		delete(ranges, e.ckey)
		if len(ranges) == 0 {
			delete(c.byObj, e.objKey)
		}
	}
	c.bytes -= int64(len(e.data))
}

// invalidate drops every cached range of the object key.
func (c *CachedStore) invalidate(objKey string) {
	c.mu.Lock()
	for _, elem := range c.byObj[objKey] {
		c.removeLocked(elem)
	}
	c.residentBytes.Set(c.bytes)
	c.mu.Unlock()
}

// cachedGet is the shared hit/singleflight/fill path of Get and
// GetRange.
func (c *CachedStore) cachedGet(ctx context.Context, key, ckey string, fetch func() ([]byte, error)) ([]byte, error) {
	if data, ok := c.lookup(ckey); ok {
		c.hits.Inc()
		c.bytesSaved.Add(int64(len(data)))
		return data, nil
	}
	data, err, shared := c.flights.Do(ckey, func() ([]byte, error) {
		d, err := fetch()
		if err != nil {
			return nil, err
		}
		c.upstreamGets.Inc()
		c.upstreamByts.Add(int64(len(d)))
		c.insert(key, ckey, d)
		return d, nil
	})
	if err != nil {
		return nil, err
	}
	if shared {
		// The follower saved a request but still waited for the
		// leader's in-flight GET; charge the full modelled latency.
		c.coalesced.Inc()
		if c.model != nil {
			simtime.Charge(ctx, c.model.GetLatency(int64(len(data))))
		}
	} else {
		c.misses.Inc()
	}
	return data, nil
}

// Get implements Store.
func (c *CachedStore) Get(ctx context.Context, key string) ([]byte, error) {
	return c.cachedGet(ctx, key, cacheKey(key, 0, -1), func() ([]byte, error) {
		return c.inner.Get(ctx, key)
	})
}

// GetRange implements Store.
func (c *CachedStore) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	return c.cachedGet(ctx, key, cacheKey(key, offset, length), func() ([]byte, error) {
		return c.inner.GetRange(ctx, key, offset, length)
	})
}

// Put implements Store, invalidating any cached ranges of the key.
func (c *CachedStore) Put(ctx context.Context, key string, data []byte) error {
	if err := c.inner.Put(ctx, key, data); err != nil {
		return err
	}
	c.invalidate(key)
	return nil
}

// PutIfAbsent implements Store. A successful conditional create means
// the key did not exist, so nothing can be cached under it; no
// invalidation is needed.
func (c *CachedStore) PutIfAbsent(ctx context.Context, key string, data []byte) error {
	return c.inner.PutIfAbsent(ctx, key, data)
}

// Head implements Store. Metadata is never cached: vacuum's existence
// checks and age reads must observe the store's truth.
func (c *CachedStore) Head(ctx context.Context, key string) (ObjectInfo, error) {
	return c.inner.Head(ctx, key)
}

// List implements Store. Listings are never cached (new objects must
// become visible immediately for read-after-write consistency).
func (c *CachedStore) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	return c.inner.List(ctx, prefix)
}

// Delete implements Store, invalidating the key's cached ranges —
// the only invalidation the immutability invariant requires.
func (c *CachedStore) Delete(ctx context.Context, key string) error {
	if err := c.inner.Delete(ctx, key); err != nil {
		return err
	}
	c.invalidate(key)
	return nil
}

// InnerStore is implemented by store wrappers that expose the store
// they wrap.
type InnerStore interface{ Inner() Store }

// FindInstrumented walks a chain of store wrappers and returns the
// first Instrumented store found, or nil.
func FindInstrumented(s Store) *Instrumented {
	for s != nil {
		if inst, ok := s.(*Instrumented); ok {
			return inst
		}
		w, ok := s.(InnerStore)
		if !ok {
			return nil
		}
		s = w.Inner()
	}
	return nil
}

// FindCached walks a chain of store wrappers and returns the first
// CachedStore found, or nil.
func FindCached(s Store) *CachedStore {
	for s != nil {
		if c, ok := s.(*CachedStore); ok {
			return c
		}
		w, ok := s.(InnerStore)
		if !ok {
			return nil
		}
		s = w.Inner()
	}
	return nil
}
