package objectstore

import "sync"

// flightGroup is a minimal, stdlib-only request coalescer in the style
// of golang.org/x/sync/singleflight (which this repo cannot depend
// on): concurrent Do calls with the same key share one execution of
// fn. The cache wrapper uses it so N concurrent searches probing the
// same component tail or Parquet footer issue exactly one upstream
// GET.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// Do executes fn for key, unless another goroutine is already
// executing it, in which case the caller blocks until the in-flight
// execution finishes and receives its result. shared reports whether
// this caller received the result of another caller's execution.
//
// Results are not memoized past the in-flight window: once the leader
// returns, the next Do for the same key executes fn again. Durable
// reuse is the cache's job, not the flight group's.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}
