package objectstore

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"rottnest/internal/simtime"
)

// LatencyModel describes the request latency of a cloud object store.
// It reproduces the access shape measured in Figure 10a of the paper:
// byte-range GET latency is flat with respect to read size until about
// 1 MB, after which it grows linearly with size at the per-stream
// bandwidth.
type LatencyModel struct {
	// GetTTFB is the fixed time-to-first-byte of a GET request.
	GetTTFB time.Duration
	// PutTTFB is the fixed latency of a PUT request (before transfer).
	PutTTFB time.Duration
	// ListTTFB is the fixed latency of a LIST request page.
	ListTTFB time.Duration
	// FlatUntil is the transfer size absorbed into the TTFB window;
	// reads at or below this size cost only GetTTFB.
	FlatUntil int64
	// BandwidthBps is the sustained per-stream transfer bandwidth in
	// bytes per second, applied to bytes beyond FlatUntil.
	BandwidthBps float64
	// MaxGetRPSPerPrefix caps GET request throughput against a
	// single key prefix, as S3 does at 5500 GET/s. It is enforced by
	// FanGet for wide request fans (Section VII-D3). Zero disables
	// the cap.
	MaxGetRPSPerPrefix float64
	// ListPageSize is the number of entries returned per LIST page;
	// longer listings pay ListTTFB once per page. Zero means one page.
	ListPageSize int
}

// DefaultS3Model returns latency parameters matching the paper's S3
// measurements: ~30 ms TTFB, ~1 MiB flat window, ~90 MB/s per stream,
// 5500 GET RPS per prefix.
func DefaultS3Model() LatencyModel {
	return LatencyModel{
		GetTTFB:            30 * time.Millisecond,
		PutTTFB:            40 * time.Millisecond,
		ListTTFB:           60 * time.Millisecond,
		FlatUntil:          1 << 20,
		BandwidthBps:       90e6,
		MaxGetRPSPerPrefix: 5500,
		ListPageSize:       1000,
	}
}

// GetLatency returns the modelled latency of a single byte-range GET
// of the given size.
func (m LatencyModel) GetLatency(size int64) time.Duration {
	d := m.GetTTFB
	if size > m.FlatUntil && m.BandwidthBps > 0 {
		d += time.Duration(float64(size-m.FlatUntil) / m.BandwidthBps * float64(time.Second))
	}
	return d
}

// PutLatency returns the modelled latency of a PUT of the given size.
func (m LatencyModel) PutLatency(size int64) time.Duration {
	d := m.PutTTFB
	if m.BandwidthBps > 0 {
		d += time.Duration(float64(size) / m.BandwidthBps * float64(time.Second))
	}
	return d
}

// ListLatency returns the modelled latency of listing n entries.
func (m LatencyModel) ListLatency(n int) time.Duration {
	pages := 1
	if m.ListPageSize > 0 && n > m.ListPageSize {
		pages = (n + m.ListPageSize - 1) / m.ListPageSize
	}
	return time.Duration(pages) * m.ListTTFB
}

// Metrics accumulates request counts and byte volumes for a store.
// All fields are updated atomically and may be read while in use.
type Metrics struct {
	Gets         atomic.Int64
	Puts         atomic.Int64
	Lists        atomic.Int64
	Deletes      atomic.Int64
	Heads        atomic.Int64
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64
}

// Snapshot is a point-in-time copy of Metrics counters.
type Snapshot struct {
	Gets, Puts, Lists, Deletes, Heads int64
	BytesRead, BytesWritten           int64
}

// Snapshot returns a copy of the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Gets:         m.Gets.Load(),
		Puts:         m.Puts.Load(),
		Lists:        m.Lists.Load(),
		Deletes:      m.Deletes.Load(),
		Heads:        m.Heads.Load(),
		BytesRead:    m.BytesRead.Load(),
		BytesWritten: m.BytesWritten.Load(),
	}
}

// Sub returns the counter deltas from an earlier snapshot, for
// attributing request costs to a single operation.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	return Snapshot{
		Gets:         s.Gets - earlier.Gets,
		Puts:         s.Puts - earlier.Puts,
		Lists:        s.Lists - earlier.Lists,
		Deletes:      s.Deletes - earlier.Deletes,
		Heads:        s.Heads - earlier.Heads,
		BytesRead:    s.BytesRead - earlier.BytesRead,
		BytesWritten: s.BytesWritten - earlier.BytesWritten,
	}
}

// Requests returns the total request count in the snapshot.
func (s Snapshot) Requests() int64 {
	return s.Gets + s.Puts + s.Lists + s.Deletes + s.Heads
}

// Instrumented wraps a Store with a latency model and metrics. Request
// latency is charged to the simtime.Session carried in the operation's
// context, so dependent request chains accumulate virtual time while
// parallel fans overlap.
type Instrumented struct {
	inner   Store
	model   LatencyModel
	metrics *Metrics
}

// Instrument wraps inner with the given latency model. The returned
// Metrics is shared with the wrapper and accumulates across all
// operations.
func Instrument(inner Store, model LatencyModel) (*Instrumented, *Metrics) {
	m := &Metrics{}
	return &Instrumented{inner: inner, model: model, metrics: m}, m
}

// Inner returns the wrapped store.
func (s *Instrumented) Inner() Store { return s.inner }

// Model returns the latency model in effect.
func (s *Instrumented) Model() LatencyModel { return s.model }

// Put implements Store.
func (s *Instrumented) Put(ctx context.Context, key string, data []byte) error {
	simtime.Charge(ctx, s.model.PutLatency(int64(len(data))))
	s.metrics.Puts.Add(1)
	s.metrics.BytesWritten.Add(int64(len(data)))
	return s.inner.Put(ctx, key, data)
}

// PutIfAbsent implements Store.
func (s *Instrumented) PutIfAbsent(ctx context.Context, key string, data []byte) error {
	simtime.Charge(ctx, s.model.PutLatency(int64(len(data))))
	s.metrics.Puts.Add(1)
	s.metrics.BytesWritten.Add(int64(len(data)))
	return s.inner.PutIfAbsent(ctx, key, data)
}

// Get implements Store.
func (s *Instrumented) Get(ctx context.Context, key string) ([]byte, error) {
	data, err := s.inner.Get(ctx, key)
	simtime.Charge(ctx, s.model.GetLatency(int64(len(data))))
	s.metrics.Gets.Add(1)
	s.metrics.BytesRead.Add(int64(len(data)))
	return data, err
}

// GetRange implements Store.
func (s *Instrumented) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	data, err := s.inner.GetRange(ctx, key, offset, length)
	simtime.Charge(ctx, s.model.GetLatency(int64(len(data))))
	s.metrics.Gets.Add(1)
	s.metrics.BytesRead.Add(int64(len(data)))
	return data, err
}

// Head implements Store.
func (s *Instrumented) Head(ctx context.Context, key string) (ObjectInfo, error) {
	simtime.Charge(ctx, s.model.GetTTFB)
	s.metrics.Heads.Add(1)
	return s.inner.Head(ctx, key)
}

// List implements Store.
func (s *Instrumented) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	infos, err := s.inner.List(ctx, prefix)
	simtime.Charge(ctx, s.model.ListLatency(len(infos)))
	s.metrics.Lists.Add(1)
	return infos, err
}

// Delete implements Store.
func (s *Instrumented) Delete(ctx context.Context, key string) error {
	simtime.Charge(ctx, s.model.PutTTFB)
	s.metrics.Deletes.Add(1)
	return s.inner.Delete(ctx, key)
}

// RangeRequest names one byte range of one object for a parallel fan.
type RangeRequest struct {
	Key    string
	Offset int64
	Length int64
}

// FanGet fetches every requested range concurrently and returns the
// results in request order. Virtual time advances by the slowest
// request in the fan plus, when the store is an Instrumented store
// with a per-prefix RPS cap, the queueing delay of pushing len(reqs)
// requests through that cap — the throughput effect discussed in
// Section VII-D3 of the paper. The first error encountered is
// returned, with results for the remaining requests still populated
// where available.
func FanGet(ctx context.Context, store Store, reqs []RangeRequest) ([][]byte, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	session := simtime.From(ctx)
	results := make([][]byte, len(reqs))
	errs := make([]error, len(reqs))

	run := func(i int, branch *simtime.Session) {
		bctx := ctx
		if branch != nil {
			bctx = simtime.With(ctx, branch)
		}
		results[i], errs[i] = store.GetRange(bctx, reqs[i].Key, reqs[i].Offset, reqs[i].Length)
	}

	if session != nil {
		session.ParallelN(len(reqs), len(reqs), run)
		if inst, ok := store.(*Instrumented); ok && inst.model.MaxGetRPSPerPrefix > 0 && len(reqs) > 1 {
			queue := time.Duration(float64(len(reqs)) / inst.model.MaxGetRPSPerPrefix * float64(time.Second))
			session.Add(queue)
		}
	} else {
		var wg sync.WaitGroup
		for i := range reqs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i, nil)
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
