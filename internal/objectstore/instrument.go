package objectstore

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rottnest/internal/obs"
	"rottnest/internal/simtime"
)

// LatencyModel describes the request latency of a cloud object store.
// It reproduces the access shape measured in Figure 10a of the paper:
// byte-range GET latency is flat with respect to read size until about
// 1 MB, after which it grows linearly with size at the per-stream
// bandwidth.
type LatencyModel struct {
	// GetTTFB is the fixed time-to-first-byte of a GET request.
	GetTTFB time.Duration
	// PutTTFB is the fixed latency of a PUT request (before transfer).
	PutTTFB time.Duration
	// ListTTFB is the fixed latency of a LIST request page.
	ListTTFB time.Duration
	// FlatUntil is the transfer size absorbed into the TTFB window;
	// reads at or below this size cost only GetTTFB.
	FlatUntil int64
	// BandwidthBps is the sustained per-stream transfer bandwidth in
	// bytes per second, applied to bytes beyond FlatUntil.
	BandwidthBps float64
	// MaxGetRPSPerPrefix caps GET request throughput against a
	// single key prefix, as S3 does at 5500 GET/s. It is enforced by
	// FanGet for wide request fans (Section VII-D3). Zero disables
	// the cap.
	MaxGetRPSPerPrefix float64
	// ListPageSize is the number of entries returned per LIST page;
	// longer listings pay ListTTFB once per page. Zero means one page.
	ListPageSize int
}

// DefaultS3Model returns latency parameters matching the paper's S3
// measurements: ~30 ms TTFB, ~1 MiB flat window, ~90 MB/s per stream,
// 5500 GET RPS per prefix.
func DefaultS3Model() LatencyModel {
	return LatencyModel{
		GetTTFB:            30 * time.Millisecond,
		PutTTFB:            40 * time.Millisecond,
		ListTTFB:           60 * time.Millisecond,
		FlatUntil:          1 << 20,
		BandwidthBps:       90e6,
		MaxGetRPSPerPrefix: 5500,
		ListPageSize:       1000,
	}
}

// GetLatency returns the modelled latency of a single byte-range GET
// of the given size.
func (m LatencyModel) GetLatency(size int64) time.Duration {
	d := m.GetTTFB
	if size > m.FlatUntil && m.BandwidthBps > 0 {
		d += time.Duration(float64(size-m.FlatUntil) / m.BandwidthBps * float64(time.Second))
	}
	return d
}

// PutLatency returns the modelled latency of a PUT of the given size.
func (m LatencyModel) PutLatency(size int64) time.Duration {
	d := m.PutTTFB
	if m.BandwidthBps > 0 {
		d += time.Duration(float64(size) / m.BandwidthBps * float64(time.Second))
	}
	return d
}

// ListLatency returns the modelled latency of listing n entries.
func (m LatencyModel) ListLatency(n int) time.Duration {
	pages := 1
	if m.ListPageSize > 0 && n > m.ListPageSize {
		pages = (n + m.ListPageSize - 1) / m.ListPageSize
	}
	return time.Duration(pages) * m.ListTTFB
}

// Metrics accumulates request counts and byte volumes for a store.
// All fields are updated atomically and may be read while in use.
type Metrics struct {
	Gets         atomic.Int64
	Puts         atomic.Int64
	Lists        atomic.Int64
	Deletes      atomic.Int64
	Heads        atomic.Int64
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64
}

// Snapshot is a point-in-time copy of Metrics counters.
type Snapshot struct {
	Gets, Puts, Lists, Deletes, Heads int64
	BytesRead, BytesWritten           int64
}

// Snapshot returns a copy of the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Gets:         m.Gets.Load(),
		Puts:         m.Puts.Load(),
		Lists:        m.Lists.Load(),
		Deletes:      m.Deletes.Load(),
		Heads:        m.Heads.Load(),
		BytesRead:    m.BytesRead.Load(),
		BytesWritten: m.BytesWritten.Load(),
	}
}

// Sub returns the counter deltas from an earlier snapshot, for
// attributing request costs to a single operation.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	return Snapshot{
		Gets:         s.Gets - earlier.Gets,
		Puts:         s.Puts - earlier.Puts,
		Lists:        s.Lists - earlier.Lists,
		Deletes:      s.Deletes - earlier.Deletes,
		Heads:        s.Heads - earlier.Heads,
		BytesRead:    s.BytesRead - earlier.BytesRead,
		BytesWritten: s.BytesWritten - earlier.BytesWritten,
	}
}

// Requests returns the total request count in the snapshot.
func (s Snapshot) Requests() int64 {
	return s.Gets + s.Puts + s.Lists + s.Deletes + s.Heads
}

// Instrumented wraps a Store with a latency model and metrics. Request
// latency is charged to the simtime.Session carried in the operation's
// context, so dependent request chains accumulate virtual time while
// parallel fans overlap. Every request also becomes a "store.*" trace
// span when the context carries a trace, and counts are mirrored into
// an obs.Registry under "store.*" names. The legacy atomic Metrics
// struct is kept deliberately alongside the registry: the chaos
// harness asserts the two stay equal, catching accounting drift.
type Instrumented struct {
	inner   Store
	model   LatencyModel
	metrics *Metrics
	reg     *obs.Registry

	gets, puts, lists, deletes, heads *obs.Counter
	bytesRead, bytesWritten           *obs.Counter
}

// Instrument wraps inner with the given latency model. The returned
// Metrics is shared with the wrapper and accumulates across all
// operations.
func Instrument(inner Store, model LatencyModel) (*Instrumented, *Metrics) {
	m := &Metrics{}
	reg := obs.NewRegistry()
	return &Instrumented{
		inner:        inner,
		model:        model,
		metrics:      m,
		reg:          reg,
		gets:         reg.Counter("store.gets"),
		puts:         reg.Counter("store.puts"),
		lists:        reg.Counter("store.lists"),
		deletes:      reg.Counter("store.deletes"),
		heads:        reg.Counter("store.heads"),
		bytesRead:    reg.Counter("store.bytes_read"),
		bytesWritten: reg.Counter("store.bytes_written"),
	}, m
}

// Inner returns the wrapped store.
func (s *Instrumented) Inner() Store { return s.inner }

// Model returns the latency model in effect.
func (s *Instrumented) Model() LatencyModel { return s.model }

// Metrics returns the wrapper's shared counters.
func (s *Instrumented) Metrics() *Metrics { return s.metrics }

// Registry returns the wrapper's metrics registry ("store.*" names).
func (s *Instrumented) Registry() *obs.Registry { return s.reg }

// Put implements Store.
func (s *Instrumented) Put(ctx context.Context, key string, data []byte) error {
	ctx, span := obs.Start(ctx, "store.put")
	simtime.Charge(ctx, s.model.PutLatency(int64(len(data))))
	s.metrics.Puts.Add(1)
	s.metrics.BytesWritten.Add(int64(len(data)))
	s.puts.Inc()
	s.bytesWritten.Add(int64(len(data)))
	err := s.inner.Put(ctx, key, data)
	span.SetAttr("key", key)
	span.SetAttr("bytes", len(data))
	span.End()
	return err
}

// PutIfAbsent implements Store.
func (s *Instrumented) PutIfAbsent(ctx context.Context, key string, data []byte) error {
	ctx, span := obs.Start(ctx, "store.put")
	simtime.Charge(ctx, s.model.PutLatency(int64(len(data))))
	s.metrics.Puts.Add(1)
	s.metrics.BytesWritten.Add(int64(len(data)))
	s.puts.Inc()
	s.bytesWritten.Add(int64(len(data)))
	err := s.inner.PutIfAbsent(ctx, key, data)
	span.SetAttr("key", key)
	span.SetAttr("bytes", len(data))
	span.SetAttr("conditional", true)
	span.End()
	return err
}

// Get implements Store.
func (s *Instrumented) Get(ctx context.Context, key string) ([]byte, error) {
	ctx, span := obs.Start(ctx, "store.get")
	data, err := s.inner.Get(ctx, key)
	simtime.Charge(ctx, s.model.GetLatency(int64(len(data))))
	s.metrics.Gets.Add(1)
	s.metrics.BytesRead.Add(int64(len(data)))
	s.gets.Inc()
	s.bytesRead.Add(int64(len(data)))
	span.SetAttr("key", key)
	span.SetAttr("bytes", len(data))
	span.End()
	return data, err
}

// GetRange implements Store.
func (s *Instrumented) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	ctx, span := obs.Start(ctx, "store.get")
	data, err := s.inner.GetRange(ctx, key, offset, length)
	simtime.Charge(ctx, s.model.GetLatency(int64(len(data))))
	s.metrics.Gets.Add(1)
	s.metrics.BytesRead.Add(int64(len(data)))
	s.gets.Inc()
	s.bytesRead.Add(int64(len(data)))
	span.SetAttr("key", key)
	span.SetAttr("bytes", len(data))
	span.End()
	return data, err
}

// Head implements Store.
func (s *Instrumented) Head(ctx context.Context, key string) (ObjectInfo, error) {
	ctx, span := obs.Start(ctx, "store.head")
	simtime.Charge(ctx, s.model.GetTTFB)
	s.metrics.Heads.Add(1)
	s.heads.Inc()
	info, err := s.inner.Head(ctx, key)
	span.SetAttr("key", key)
	span.End()
	return info, err
}

// List implements Store.
func (s *Instrumented) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	ctx, span := obs.Start(ctx, "store.list")
	infos, err := s.inner.List(ctx, prefix)
	simtime.Charge(ctx, s.model.ListLatency(len(infos)))
	s.metrics.Lists.Add(1)
	s.lists.Inc()
	span.SetAttr("prefix", prefix)
	span.SetAttr("entries", len(infos))
	span.End()
	return infos, err
}

// Delete implements Store.
func (s *Instrumented) Delete(ctx context.Context, key string) error {
	ctx, span := obs.Start(ctx, "store.delete")
	simtime.Charge(ctx, s.model.PutTTFB)
	s.metrics.Deletes.Add(1)
	s.deletes.Inc()
	err := s.inner.Delete(ctx, key)
	span.SetAttr("key", key)
	span.End()
	return err
}

// MetricsFromSnapshot derives a legacy Snapshot view from a registry
// snapshot's "store.*" counters.
func MetricsFromSnapshot(s obs.Snapshot) Snapshot {
	return Snapshot{
		Gets:         s.Counter("store.gets"),
		Puts:         s.Counter("store.puts"),
		Lists:        s.Counter("store.lists"),
		Deletes:      s.Counter("store.deletes"),
		Heads:        s.Counter("store.heads"),
		BytesRead:    s.Counter("store.bytes_read"),
		BytesWritten: s.Counter("store.bytes_written"),
	}
}

// RangeRequest names one byte range of one object for a parallel fan.
type RangeRequest struct {
	Key    string
	Offset int64
	Length int64
}

// FanGet fetches every requested range concurrently and returns the
// results in request order. Virtual time advances by the slowest
// request in the fan plus, when the store chain contains an
// Instrumented store with a per-prefix RPS cap, the queueing delay of
// pushing the issued requests through that cap — the throughput
// effect discussed in Section VII-D3 of the paper.
//
// When the store chain contains a CachedStore with a non-negative
// coalesce gap, adjacent ranges of the same object whose gap is at
// most that threshold are merged into one ranged GET and sliced back
// afterwards: below the latency model's flat window extra bytes are
// nearly free, while every merged request saves a full TTFB and a
// unit of the per-prefix RPS budget.
//
// The first error encountered is returned, with results for the
// remaining requests still populated where available.
func FanGet(ctx context.Context, store Store, reqs []RangeRequest) ([][]byte, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	gap := int64(-1)
	if c := FindCached(store); c != nil {
		gap = c.CoalesceGap()
	}
	issued, refs := coalesceRanges(reqs, gap)

	session := simtime.From(ctx)
	fetched := make([][]byte, len(issued))
	errs := make([]error, len(issued))

	run := func(i int, branch *simtime.Session) {
		// Once the fan's context dies, remaining branches short-circuit
		// instead of issuing their GETs.
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		bctx := ctx
		if branch != nil {
			bctx = simtime.With(ctx, branch)
		}
		fetched[i], errs[i] = store.GetRange(bctx, issued[i].Key, issued[i].Offset, issued[i].Length)
	}

	if session != nil {
		session.ParallelN(len(issued), len(issued), run)
		if inst := FindInstrumented(store); inst != nil && inst.model.MaxGetRPSPerPrefix > 0 && len(issued) > 1 {
			queue := time.Duration(float64(len(issued)) / inst.model.MaxGetRPSPerPrefix * float64(time.Second))
			session.Add(queue)
		}
	} else {
		var wg sync.WaitGroup
		for i := range issued {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i, nil)
			}(i)
		}
		wg.Wait()
	}
	results := make([][]byte, len(reqs))
	var firstErr error
	for i, ref := range refs {
		if errs[ref.issued] != nil {
			if firstErr == nil {
				firstErr = errs[ref.issued]
			}
			continue
		}
		data := fetched[ref.issued]
		if ref.direct {
			results[i] = data
			continue
		}
		// Slice the original request back out of the merged read,
		// clamping at the object end the way the individual GetRange
		// would have.
		if ref.off >= int64(len(data)) {
			results[i] = nil
			continue
		}
		end := ref.off + ref.length
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		results[i] = data[ref.off:end]
	}
	return results, firstErr
}

// sliceRef maps one original fan request onto the issued request that
// carries its bytes.
type sliceRef struct {
	issued int
	// direct passes the issued result through unsliced (the request
	// was not merged).
	direct bool
	// off/length locate the original range within the merged read.
	off, length int64
}

// coalesceRanges merges same-key requests whose byte gap is at most
// gap into single ranged GETs. Requests with suffix or to-end ranges
// (negative offset or length) are never merged. A negative gap
// disables merging entirely. Overlapping and duplicate ranges also
// collapse into one request.
func coalesceRanges(reqs []RangeRequest, gap int64) ([]RangeRequest, []sliceRef) {
	refs := make([]sliceRef, len(reqs))
	if gap < 0 {
		out := make([]RangeRequest, len(reqs))
		copy(out, reqs)
		for i := range refs {
			refs[i] = sliceRef{issued: i, direct: true}
		}
		return out, refs
	}
	// Indices of mergeable requests per key, insertion-ordered keys.
	byKey := make(map[string][]int)
	var keys []string
	var issued []RangeRequest
	for i, r := range reqs {
		if r.Offset < 0 || r.Length < 0 {
			refs[i] = sliceRef{issued: len(issued), direct: true}
			issued = append(issued, r)
			continue
		}
		if _, ok := byKey[r.Key]; !ok {
			keys = append(keys, r.Key)
		}
		byKey[r.Key] = append(byKey[r.Key], i)
	}
	for _, key := range keys {
		idxs := byKey[key]
		sort.Slice(idxs, func(a, b int) bool {
			ra, rb := reqs[idxs[a]], reqs[idxs[b]]
			if ra.Offset != rb.Offset {
				return ra.Offset < rb.Offset
			}
			return ra.Length < rb.Length
		})
		for run := 0; run < len(idxs); {
			start := reqs[idxs[run]].Offset
			end := start + reqs[idxs[run]].Length
			next := run + 1
			for next < len(idxs) && reqs[idxs[next]].Offset <= end+gap {
				if e := reqs[idxs[next]].Offset + reqs[idxs[next]].Length; e > end {
					end = e
				}
				next++
			}
			mi := len(issued)
			issued = append(issued, RangeRequest{Key: key, Offset: start, Length: end - start})
			for _, i := range idxs[run:next] {
				refs[i] = sliceRef{issued: mi, off: reqs[i].Offset - start, length: reqs[i].Length}
			}
			run = next
		}
	}
	return issued, refs
}
