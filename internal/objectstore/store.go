// Package objectstore provides the cloud object storage substrate that
// Rottnest runs on: a key/value blob store with strong read-after-write
// consistency, byte-range reads, prefix listing, and conditional
// creation (put-if-absent), matching the primitives available on all
// major cloud object stores (Section II-A and IV of the paper).
//
// Two backends are provided: MemStore, an in-memory store for tests and
// simulations, and DirStore, a directory-backed store for the CLI and
// examples. The Instrumented wrapper layers a latency model, request
// throttling, and request/byte/cost metering on top of any Store so
// that simulated experiments reproduce the access-latency shape of S3
// (Figure 10a of the paper).
package objectstore

import (
	"context"
	"errors"
	"time"
)

// Errors returned by Store implementations.
var (
	// ErrNotFound reports that the requested key does not exist.
	ErrNotFound = errors.New("objectstore: key not found")
	// ErrExists reports that a conditional create found the key
	// already present.
	ErrExists = errors.New("objectstore: key already exists")
	// ErrInvalidRange reports a byte range outside the object.
	ErrInvalidRange = errors.New("objectstore: invalid byte range")
)

// ObjectInfo describes one stored object.
type ObjectInfo struct {
	// Key is the full object key.
	Key string
	// Size is the object length in bytes.
	Size int64
	// Created is the object creation time according to the store's
	// global clock. Rottnest's vacuum protocol compares it against
	// the index timeout to detect abandoned uploads.
	Created time.Time
}

// Store is a strongly consistent object store. All operations provide
// read-after-write consistency: a Get or List issued after a Put
// returns observes that Put. Implementations must be safe for
// concurrent use.
//
// No atomic rename is offered, mirroring the paper's portability
// constraint: Rottnest's protocol must work with only these
// primitives.
type Store interface {
	// Put stores data under key, overwriting any existing object.
	Put(ctx context.Context, key string, data []byte) error

	// PutIfAbsent stores data under key only if the key does not
	// exist, returning ErrExists otherwise. This is the conditional
	// write primitive used for optimistic-concurrency log commits.
	PutIfAbsent(ctx context.Context, key string, data []byte) error

	// Get returns the full contents of the object at key.
	Get(ctx context.Context, key string) ([]byte, error)

	// GetRange returns length bytes starting at offset. A negative
	// length means "to the end of the object". A negative offset
	// means a suffix range of -offset bytes (like an HTTP suffix
	// range request), in which case length is ignored.
	GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error)

	// Head returns metadata for the object at key without reading
	// its contents.
	Head(ctx context.Context, key string) (ObjectInfo, error)

	// List returns metadata for every object whose key has the given
	// prefix, in lexicographic key order.
	List(ctx context.Context, prefix string) ([]ObjectInfo, error)

	// Delete removes the object at key. Deleting a missing key is
	// not an error, matching S3 semantics.
	Delete(ctx context.Context, key string) error
}

// resolveRange converts a (possibly negative) offset/length pair into a
// concrete [start, end) window within an object of the given size.
func resolveRange(size, offset, length int64) (start, end int64, err error) {
	switch {
	case offset < 0: // suffix range of -offset bytes
		start = size + offset
		if start < 0 {
			start = 0
		}
		end = size
	case length < 0:
		start, end = offset, size
	default:
		start, end = offset, offset+length
	}
	if start > size || start < 0 {
		return 0, 0, ErrInvalidRange
	}
	if end > size {
		end = size
	}
	if end < start {
		return 0, 0, ErrInvalidRange
	}
	return start, end, nil
}
