package lake

import (
	"context"
	"errors"
	"sync"
	"testing"

	"rottnest/internal/parquet"
)

// TestCompactDetectsConcurrentDelete is the regression test for the
// write-write race where a compaction planned before a DeleteRows
// would rewrite the input file without its new deletion vector,
// resurrecting the deleted row. The compaction must observe the DV
// change at commit time and abort with ErrConflict.
func TestCompactDetectsConcurrentDelete(t *testing.T) {
	ctx := context.Background()
	tbl, _, _ := newTestTable(t)
	p1, err := tbl.Append(ctx, msgBatch("a", "b"), parquet.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Append(ctx, msgBatch("c"), parquet.WriterOptions{}); err != nil {
		t.Fatal(err)
	}

	// Interleave: run both concurrently many times; whatever the
	// interleaving, the final state must never resurrect "a" once a
	// successful delete committed.
	var wg sync.WaitGroup
	var delErr, compErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		delErr = tbl.DeleteRows(ctx, p1, []uint32{0})
	}()
	go func() {
		defer wg.Done()
		_, compErr = tbl.Compact(ctx, 1<<30, 0)
	}()
	wg.Wait()
	if compErr != nil && !errors.Is(compErr, ErrConflict) {
		t.Fatalf("compact: %v", compErr)
	}
	if delErr != nil && !errors.Is(delErr, ErrConflict) {
		t.Fatalf("delete: %v", delErr)
	}

	// If the delete won, "a" must be dead everywhere (including in
	// any compacted rewrite).
	if delErr == nil {
		snap, err := tbl.Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range snap.Files {
			batch, _, err := parquet.ReadAll(ctx, tbl.Store(), tbl.Root()+f.Path)
			if err != nil {
				t.Fatal(err)
			}
			dv, err := tbl.ReadDeletionVector(ctx, f)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range batch.Cols[1].Bytes {
				if string(v) == "a" && !dv.Contains(uint32(i)) {
					t.Fatal("deleted row resurrected")
				}
			}
		}
	}
}

// TestConcurrentDeletesOnSameFileConflict verifies that two racing
// DeleteRows on one file cannot silently drop each other's rows: one
// commits, the other observes the DV change and conflicts.
func TestConcurrentDeletesOnSameFileConflict(t *testing.T) {
	ctx := context.Background()
	for trial := 0; trial < 10; trial++ {
		tbl, _, _ := newTestTable(t)
		path, err := tbl.Append(ctx, msgBatch("a", "b", "c", "d"), parquet.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, 2)
		wg.Add(2)
		go func() { defer wg.Done(); errs[0] = tbl.DeleteRows(ctx, path, []uint32{0}) }()
		go func() { defer wg.Done(); errs[1] = tbl.DeleteRows(ctx, path, []uint32{1}) }()
		wg.Wait()
		snap, err := tbl.Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		f, _ := snap.File(path)
		dv, err := tbl.ReadDeletionVector(ctx, f)
		if err != nil {
			t.Fatal(err)
		}
		// Every delete that reported success must be durable.
		if errs[0] == nil && !dv.Contains(0) {
			t.Fatal("committed delete of row 0 lost")
		}
		if errs[1] == nil && !dv.Contains(1) {
			t.Fatal("committed delete of row 1 lost")
		}
		for i, err := range errs {
			if err != nil && !errors.Is(err, ErrConflict) {
				t.Fatalf("delete %d: %v", i, err)
			}
		}
	}
}

// TestSnapshotIsolationDuringMaintenance verifies a reader holding an
// old snapshot keeps a consistent view while appends, deletes, and
// compactions churn underneath (until vacuum, which it does not run).
func TestSnapshotIsolationDuringMaintenance(t *testing.T) {
	ctx := context.Background()
	tbl, store, _ := newTestTable(t)
	tbl.Append(ctx, msgBatch("a", "b"), parquet.WriterOptions{})
	frozen, err := tbl.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Churn.
	p2, _ := tbl.Append(ctx, msgBatch("c"), parquet.WriterOptions{})
	tbl.DeleteRows(ctx, p2, []uint32{0})
	if _, err := tbl.Compact(ctx, 1<<30, 0); err != nil {
		t.Fatal(err)
	}

	// The frozen snapshot still reads its original files and rows.
	reread, err := tbl.SnapshotAt(ctx, frozen.Version)
	if err != nil {
		t.Fatal(err)
	}
	if len(reread.Files) != len(frozen.Files) || reread.LiveRows() != 2 {
		t.Fatalf("frozen view changed: %+v", reread)
	}
	for _, f := range reread.Files {
		if _, _, err := parquet.ReadAll(ctx, store, tbl.Root()+f.Path); err != nil {
			t.Fatalf("frozen file unreadable before vacuum: %v", err)
		}
	}
}
