// Package lake implements the transactional data-lake substrate: a
// Delta/Iceberg-equivalent table format storing immutable columnar
// files on an object store, coordinated by a JSON transaction log with
// optimistic concurrency (conditional PUT of the next log entry — no
// atomic rename required).
//
// It supports the operations Rottnest's protocol must survive
// (Section IV of the paper): appends, file compaction, row deletes via
// deletion vectors, snapshot time travel, and vacuum (physical garbage
// collection of unreferenced files).
package lake

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
)

// Errors returned by table operations.
var (
	// ErrConflict reports that a concurrent commit invalidated this
	// operation's plan (e.g. a compaction's inputs were removed).
	ErrConflict = errors.New("lake: concurrent commit conflict")
	// ErrNoTable reports that no table exists at the given root.
	ErrNoTable = errors.New("lake: table not found")
	// ErrNoSnapshot reports a request for a version that does not
	// exist (or was never committed).
	ErrNoSnapshot = errors.New("lake: snapshot not found")
	// ErrCommitAmbiguous reports that a commit's conditional PUT
	// failed in a way that could not be resolved by reading the log
	// entry back: the commit may or may not have landed. Callers that
	// must be exactly-once (the ingest writer) resolve it by checking
	// a later snapshot for the commit's unique file paths.
	ErrCommitAmbiguous = errors.New("lake: commit outcome ambiguous")
)

// ColumnStats are file-level min/max statistics for one column,
// recorded in the log the way Delta Lake records per-file stats; they
// enable partition-style file pruning for queries carrying a
// structured filter (Section VI's normalized queries).
type ColumnStats struct {
	// Min and Max are orderable byte encodings (see parquet's
	// statistics); for int64 columns they decode to the numeric
	// bounds.
	Min []byte `json:"min,omitempty"`
	Max []byte `json:"max,omitempty"`
}

// AddFile records a new data file joining the table.
type AddFile struct {
	// Path is the file's key relative to the table root.
	Path string `json:"path"`
	// Rows is the file's row count.
	Rows int64 `json:"rows"`
	// Size is the file's byte size.
	Size int64 `json:"size"`
	// Stats holds per-column min/max, keyed by column name.
	Stats map[string]ColumnStats `json:"stats,omitempty"`
}

// RemoveFile records a data file leaving the current snapshot (it
// remains physically present until vacuumed).
type RemoveFile struct {
	Path string `json:"path"`
}

// AddDV attaches (or replaces) the deletion vector of a data file.
type AddDV struct {
	// File is the data file the vector applies to.
	File string `json:"file"`
	// Path is the vector's key relative to the table root.
	Path string `json:"path"`
	// Deleted is the total number of deleted rows in the vector.
	Deleted int64 `json:"deleted"`
}

// TableMeta carries table-level metadata (written by the first
// commit).
type TableMeta struct {
	Schema *parquet.Schema `json:"schema"`
}

// Action is one effect within a commit; exactly one field is set.
type Action struct {
	Add      *AddFile    `json:"add,omitempty"`
	Remove   *RemoveFile `json:"remove,omitempty"`
	DV       *AddDV      `json:"dv,omitempty"`
	Metadata *TableMeta  `json:"metadata,omitempty"`
}

// Commit is one transaction-log entry.
type Commit struct {
	Version   int64     `json:"version"`
	Timestamp time.Time `json:"timestamp"`
	Operation string    `json:"operation"`
	Actions   []Action  `json:"actions"`
}

const logDir = "_log/"

// logKey returns the log entry key for a version, zero-padded so
// lexicographic listing equals version order.
func logKey(root string, version int64) string {
	return fmt.Sprintf("%s%s%020d.json", root, logDir, version)
}

// versionFromKey parses a log key back to its version.
func versionFromKey(root, key string) (int64, bool) {
	name := strings.TrimPrefix(key, root+logDir)
	name = strings.TrimSuffix(name, ".json")
	if len(name) != 20 {
		return 0, false
	}
	var v int64
	for _, c := range name {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	return v, true
}

// readLog returns the newest usable checkpoint at or below maxVersion
// plus all commits after it (in version order, up to maxVersion; < 0
// means all). Log objects are fetched with one parallel fan and the
// checkpoint bounds the replayed suffix, keeping snapshot
// construction cost flat as the log grows.
func readLog(ctx context.Context, store objectstore.Store, root string, maxVersion int64) (*checkpointState, []Commit, error) {
	infos, err := store.List(ctx, root+logDir)
	if err != nil {
		return nil, nil, fmt.Errorf("lake: list log: %w", err)
	}
	base := loadCheckpoint(ctx, store, root, infos, maxVersion)
	minExclusive := int64(0)
	if base != nil {
		minExclusive = base.Version
	}
	var keys []string
	for _, info := range infos {
		v, ok := versionFromKey(root, info.Key)
		if !ok {
			continue
		}
		if v <= minExclusive || (maxVersion >= 0 && v > maxVersion) {
			continue
		}
		keys = append(keys, info.Key)
	}
	reqs := make([]objectstore.RangeRequest, len(keys))
	for i, k := range keys {
		reqs[i] = objectstore.RangeRequest{Key: k, Offset: 0, Length: -1}
	}
	bodies, err := objectstore.FanGet(ctx, store, reqs)
	if err != nil {
		return nil, nil, fmt.Errorf("lake: read log: %w", err)
	}
	commits := make([]Commit, 0, len(keys))
	for i, data := range bodies {
		var c Commit
		if err := json.Unmarshal(data, &c); err != nil {
			return nil, nil, fmt.Errorf("lake: parse log %s: %w", keys[i], err)
		}
		commits = append(commits, c)
	}
	return base, commits, nil
}
