package lake

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// DeletionVector records individual deleted rows of one data file, the
// mechanism Delta Lake and Iceberg use to delete rows without
// rewriting Parquet files (Section IV, file dv.bin in Figure 3).
// Row indices are file-local.
type DeletionVector struct {
	rows map[uint32]struct{}
}

// NewDeletionVector returns an empty vector.
func NewDeletionVector() *DeletionVector {
	return &DeletionVector{rows: make(map[uint32]struct{})}
}

// Add marks a file-local row as deleted.
func (d *DeletionVector) Add(row uint32) {
	d.rows[row] = struct{}{}
}

// Contains reports whether the row is deleted.
func (d *DeletionVector) Contains(row uint32) bool {
	if d == nil {
		return false
	}
	_, ok := d.rows[row]
	return ok
}

// Len returns the number of deleted rows.
// Footprint estimates the vector's resident bytes for cache cost
// accounting.
func (d *DeletionVector) Footprint() int64 {
	return 16*int64(d.Len()) + 64
}

func (d *DeletionVector) Len() int {
	if d == nil {
		return 0
	}
	return len(d.rows)
}

// Union folds other's rows into d.
func (d *DeletionVector) Union(other *DeletionVector) {
	if other == nil {
		return
	}
	for r := range other.rows {
		d.rows[r] = struct{}{}
	}
}

// Rows returns the deleted rows in ascending order.
func (d *DeletionVector) Rows() []uint32 {
	if d == nil {
		return nil
	}
	out := make([]uint32, 0, len(d.rows))
	for r := range d.rows {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// dvMagic identifies serialized deletion vectors.
var dvMagic = []byte("RDV1")

// Serialize encodes the vector as sorted varint deltas.
func (d *DeletionVector) Serialize() []byte {
	rows := d.Rows()
	out := append([]byte(nil), dvMagic...)
	out = binary.AppendUvarint(out, uint64(len(rows)))
	prev := uint32(0)
	for i, r := range rows {
		if i == 0 {
			out = binary.AppendUvarint(out, uint64(r))
		} else {
			out = binary.AppendUvarint(out, uint64(r-prev))
		}
		prev = r
	}
	return out
}

// ParseDeletionVector decodes a serialized vector.
func ParseDeletionVector(data []byte) (*DeletionVector, error) {
	if len(data) < len(dvMagic) || string(data[:len(dvMagic)]) != string(dvMagic) {
		return nil, fmt.Errorf("lake: bad deletion vector magic")
	}
	pos := len(dvMagic)
	count, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("lake: deletion vector truncated")
	}
	pos += n
	d := NewDeletionVector()
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		delta, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("lake: deletion vector truncated at row %d", i)
		}
		pos += n
		if i == 0 {
			prev = delta
		} else {
			prev += delta
		}
		d.rows[uint32(prev)] = struct{}{}
	}
	return d, nil
}
