package lake

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
)

// DataFile describes one active data file of a snapshot.
type DataFile struct {
	// Path is the file key relative to the table root.
	Path string
	// Rows and Size mirror the AddFile action.
	Rows int64
	Size int64
	// DVPath is the key of the file's deletion vector, if any.
	DVPath string
	// Deleted is the number of rows removed by the deletion vector.
	Deleted int64
	// Stats holds per-column min/max recorded at write time, used
	// for partition-style file pruning.
	Stats map[string]ColumnStats
}

// MayContainRange reports whether the file could hold rows of the
// named column within [min, max] (orderable byte encodings). Files
// without stats for the column always may.
func (f DataFile) MayContainRange(column string, min, max []byte) bool {
	s, ok := f.Stats[column]
	if !ok || len(s.Min) == 0 || len(s.Max) == 0 {
		return true
	}
	if len(max) > 0 && bytes.Compare(s.Min, max) > 0 {
		return false
	}
	if len(min) > 0 && bytes.Compare(s.Max, min) < 0 {
		return false
	}
	return true
}

// Snapshot is a point-in-time view of the table: the manifest list of
// data files (with their deletion vectors) that make up one version.
type Snapshot struct {
	Version int64
	Schema  *parquet.Schema
	Files   []DataFile
}

// File returns the snapshot entry for a path, if present.
func (s *Snapshot) File(path string) (DataFile, bool) {
	for _, f := range s.Files {
		if f.Path == path {
			return f, true
		}
	}
	return DataFile{}, false
}

// Paths returns the set of active data file paths.
func (s *Snapshot) Paths() map[string]bool {
	out := make(map[string]bool, len(s.Files))
	for _, f := range s.Files {
		out[f.Path] = true
	}
	return out
}

// LiveRows returns the total number of live (non-deleted) rows.
func (s *Snapshot) LiveRows() int64 {
	var total int64
	for _, f := range s.Files {
		total += f.Rows - f.Deleted
	}
	return total
}

// Table is a transactional lake table rooted at a key prefix on an
// object store.
type Table struct {
	store objectstore.Store
	clock simtime.Clock
	root  string

	hookMu   sync.Mutex
	onCommit []func(version int64)
	onVacuum []func(removed []string)
}

// OnCommit registers fn to run after every successful commit through
// this handle, with the committed version. Callers use it to advance
// version-keyed caches; fn must be fast and must not call back into
// the table.
func (t *Table) OnCommit(fn func(version int64)) {
	t.hookMu.Lock()
	t.onCommit = append(t.onCommit, fn)
	t.hookMu.Unlock()
}

// OnVacuum registers fn to run after every Vacuum through this handle,
// with the removed keys relative to the table root. Callers use it to
// drop cached decoded objects (deletion vectors) for deleted files.
func (t *Table) OnVacuum(fn func(removed []string)) {
	t.hookMu.Lock()
	t.onVacuum = append(t.onVacuum, fn)
	t.hookMu.Unlock()
}

func (t *Table) fireCommit(version int64) {
	t.hookMu.Lock()
	hooks := make([]func(int64), len(t.onCommit))
	copy(hooks, t.onCommit)
	t.hookMu.Unlock()
	for _, fn := range hooks {
		fn(version)
	}
}

func (t *Table) fireVacuum(removed []string) {
	if len(removed) == 0 {
		return
	}
	t.hookMu.Lock()
	hooks := make([]func([]string), len(t.onVacuum))
	copy(hooks, t.onVacuum)
	t.hookMu.Unlock()
	for _, fn := range hooks {
		fn(removed)
	}
}

// OpenOptions configure how a table handle is created or opened.
type OpenOptions struct {
	// Clock stamps commit timestamps and drives snapshot-age
	// decisions. Nil means the real wall clock; simulations set a
	// VirtualClock so lake time and store latency share one timeline.
	Clock simtime.Clock
}

// CreateWith initializes a new table at root with the given schema,
// committing version 1 with the table metadata. It fails if a table
// already exists there.
func CreateWith(ctx context.Context, store objectstore.Store, root string, schema *parquet.Schema, opts OpenOptions) (*Table, error) {
	clock := opts.Clock
	if clock == nil {
		clock = simtime.RealClock{}
	}
	t := &Table{store: store, clock: clock, root: normalizeRoot(root)}
	commit := Commit{
		Version:   1,
		Timestamp: clock.Now(),
		Operation: "CREATE",
		Actions:   []Action{{Metadata: &TableMeta{Schema: schema}}},
	}
	data, err := json.Marshal(commit)
	if err != nil {
		return nil, fmt.Errorf("lake: encode create: %w", err)
	}
	if err := store.PutIfAbsent(ctx, logKey(t.root, 1), data); err != nil {
		if errors.Is(err, objectstore.ErrExists) {
			return nil, fmt.Errorf("lake: table already exists at %s", root)
		}
		return nil, err
	}
	return t, nil
}

// OpenWith returns a handle to an existing table at root.
func OpenWith(ctx context.Context, store objectstore.Store, root string, opts OpenOptions) (*Table, error) {
	clock := opts.Clock
	if clock == nil {
		clock = simtime.RealClock{}
	}
	t := &Table{store: store, clock: clock, root: normalizeRoot(root)}
	if _, err := t.store.Head(ctx, logKey(t.root, 1)); err != nil {
		if errors.Is(err, objectstore.ErrNotFound) {
			return nil, ErrNoTable
		}
		return nil, err
	}
	return t, nil
}

func normalizeRoot(root string) string {
	if root != "" && root[len(root)-1] != '/' {
		return root + "/"
	}
	return root
}

// Root returns the table's key prefix.
func (t *Table) Root() string { return t.root }

// Store returns the table's object store.
func (t *Table) Store() objectstore.Store { return t.store }

// Version returns the latest committed version.
func (t *Table) Version(ctx context.Context) (int64, error) {
	infos, err := t.store.List(ctx, t.root+logDir)
	if err != nil {
		return 0, err
	}
	var max int64
	for _, info := range infos {
		if v, ok := versionFromKey(t.root, info.Key); ok && v > max {
			max = v
		}
	}
	if max == 0 {
		return 0, ErrNoTable
	}
	return max, nil
}

// Snapshot returns the latest snapshot.
func (t *Table) Snapshot(ctx context.Context) (*Snapshot, error) {
	return t.SnapshotAt(ctx, -1)
}

// SnapshotAt returns the snapshot at the given version (time travel);
// version < 0 means latest.
func (t *Table) SnapshotAt(ctx context.Context, version int64) (*Snapshot, error) {
	base, commits, err := readLog(ctx, t.store, t.root, version)
	if err != nil {
		return nil, err
	}
	if base == nil && len(commits) == 0 {
		return nil, ErrNoSnapshot
	}
	latest := int64(0)
	if base != nil {
		latest = base.Version
	}
	if len(commits) > 0 {
		latest = commits[len(commits)-1].Version
	}
	if version >= 0 && latest != version {
		return nil, ErrNoSnapshot
	}
	snap := &Snapshot{Version: latest}
	files := make(map[string]*DataFile)
	if base != nil {
		snap.Schema = base.Schema
		for _, f := range base.Files {
			ff := f
			files[f.Path] = &ff
		}
	}
	for _, c := range commits {
		for _, a := range c.Actions {
			switch {
			case a.Metadata != nil:
				snap.Schema = a.Metadata.Schema
			case a.Add != nil:
				files[a.Add.Path] = &DataFile{Path: a.Add.Path, Rows: a.Add.Rows, Size: a.Add.Size, Stats: a.Add.Stats}
			case a.Remove != nil:
				delete(files, a.Remove.Path)
			case a.DV != nil:
				if f, ok := files[a.DV.File]; ok {
					f.DVPath = a.DV.Path
					f.Deleted = a.DV.Deleted
				}
			}
		}
	}
	for _, f := range files {
		snap.Files = append(snap.Files, *f)
	}
	sort.Slice(snap.Files, func(i, j int) bool { return snap.Files[i].Path < snap.Files[j].Path })
	return snap, nil
}

// commit appends a log entry with optimistic concurrency: it
// repeatedly attempts PutIfAbsent on the next version. The validate
// callback (may be nil) re-checks the operation's plan against the
// latest snapshot before each retry and may return ErrConflict to
// abort.
func (t *Table) commit(ctx context.Context, op string, actions []Action, validate func(*Snapshot) error) (int64, error) {
	for attempt := 0; attempt < 32; attempt++ {
		version, err := t.Version(ctx)
		if err != nil {
			return 0, err
		}
		if validate != nil {
			snap, err := t.SnapshotAt(ctx, version)
			if err != nil {
				return 0, err
			}
			if err := validate(snap); err != nil {
				return 0, err
			}
		}
		c := Commit{Version: version + 1, Timestamp: t.clock.Now(), Operation: op, Actions: actions}
		data, err := json.Marshal(c)
		if err != nil {
			return 0, fmt.Errorf("lake: encode commit: %w", err)
		}
		err = t.store.PutIfAbsent(ctx, logKey(t.root, version+1), data)
		if err == nil {
			t.maybeCheckpoint(ctx, version+1)
			t.fireCommit(version + 1)
			return version + 1, nil
		}
		if errors.Is(err, objectstore.ErrExists) {
			// Lost the race: re-read and retry.
			continue
		}
		// The conditional PUT failed with neither success nor a clean
		// loss. On stores without a retry layer an ambiguous put (the
		// write landed, the response was lost) surfaces here; resolve
		// it by reading the log entry back and comparing payloads, so
		// OnCommit fires exactly once per version that we committed.
		switch landed, rerr := t.readBackCommit(ctx, version+1, data); {
		case rerr == nil && landed:
			t.maybeCheckpoint(ctx, version+1)
			t.fireCommit(version + 1)
			return version + 1, nil
		case rerr == nil && !landed:
			// Someone else's entry occupies the slot: lost the race.
			continue
		case errors.Is(rerr, objectstore.ErrNotFound):
			// Nothing landed at all: the original error is accurate.
			return 0, err
		default:
			return 0, fmt.Errorf("%w: put %v, read-back %v", ErrCommitAmbiguous, err, rerr)
		}
	}
	return 0, fmt.Errorf("lake: commit retries exhausted: %w", ErrConflict)
}

// readBackCommit fetches the log entry at version and reports whether
// it byte-matches the payload this handle just tried to write.
func (t *Table) readBackCommit(ctx context.Context, version int64, payload []byte) (bool, error) {
	got, err := t.store.Get(ctx, logKey(t.root, version))
	if err != nil {
		return false, err
	}
	return bytes.Equal(got, payload), nil
}

// newFileName returns a fresh random data-file name, mirroring the
// UUID-named Parquet files of real lakes.
func newFileName(ext string) string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand does not fail on supported platforms
	}
	return hex.EncodeToString(b[:]) + ext
}

// PendingFile describes a data file staged by WriteFile but not yet
// committed: invisible to every snapshot until CommitFiles lands it.
// Paths are random, so a pending file's presence in a later snapshot
// uniquely identifies its commit — the ingest writer's exactly-once
// check relies on this.
type PendingFile struct {
	// Path is the file key relative to the table root.
	Path string
	// Rows and Size mirror the AddFile action to come.
	Rows int64
	Size int64
	// Stats holds per-column min/max recorded at write time.
	Stats map[string]ColumnStats
}

// WriteFile stages the batch as a new data file without committing
// it. The upload is idempotent (unique random path, plain PUT), so a
// caller may safely retry it, and an uncommitted staged file is
// garbage that Vacuum eventually collects.
func (t *Table) WriteFile(ctx context.Context, b *parquet.Batch, opts parquet.WriterOptions) (PendingFile, error) {
	path := "data/" + newFileName(".rpq")
	w := parquet.NewFileWriter(b.Schema, opts)
	if err := w.Append(b); err != nil {
		return PendingFile{}, err
	}
	data, meta, err := w.Close()
	if err != nil {
		return PendingFile{}, err
	}
	if err := t.store.Put(ctx, t.root+path, data); err != nil {
		return PendingFile{}, err
	}
	return PendingFile{Path: path, Rows: meta.NumRows, Size: int64(len(data)), Stats: statsFromMeta(meta)}, nil
}

// CommitFiles commits staged files in one log round: N batches become
// N Add actions in a single entry, so a group of micro-batches costs
// one conditional PUT instead of one per batch. It returns the
// committed version.
func (t *Table) CommitFiles(ctx context.Context, files ...PendingFile) (int64, error) {
	if len(files) == 0 {
		return 0, fmt.Errorf("lake: commit of zero files")
	}
	actions := make([]Action, len(files))
	for i, f := range files {
		actions[i] = Action{Add: &AddFile{Path: f.Path, Rows: f.Rows, Size: f.Size, Stats: f.Stats}}
	}
	return t.commit(ctx, "APPEND", actions, nil)
}

// Append writes the batch as a new data file and commits it, with
// per-column min/max stats recorded in the log entry.
func (t *Table) Append(ctx context.Context, b *parquet.Batch, opts parquet.WriterOptions) (string, error) {
	pf, err := t.WriteFile(ctx, b, opts)
	if err != nil {
		return "", err
	}
	if _, err := t.CommitFiles(ctx, pf); err != nil {
		return "", err
	}
	return pf.Path, nil
}

// statsFromMeta folds a file's chunk-level min/max statistics into
// file-level per-column stats for the log.
func statsFromMeta(meta *parquet.FileMeta) map[string]ColumnStats {
	stats := make(map[string]ColumnStats, len(meta.Schema.Columns))
	for ci, col := range meta.Schema.Columns {
		var s ColumnStats
		for _, g := range meta.RowGroups {
			chunk := g.Chunks[ci]
			if len(chunk.Min) == 0 && len(chunk.Max) == 0 {
				continue
			}
			if s.Min == nil || bytes.Compare(chunk.Min, s.Min) < 0 {
				s.Min = chunk.Min
			}
			if s.Max == nil || bytes.Compare(chunk.Max, s.Max) > 0 {
				s.Max = chunk.Max
			}
		}
		if s.Min != nil || s.Max != nil {
			stats[col.Name] = s
		}
	}
	if len(stats) == 0 {
		return nil
	}
	return stats
}

// Compact merges every active data file smaller than smallBytes into
// new files of roughly targetRows rows, dropping rows masked by
// deletion vectors. It returns the paths of the new files. Compaction
// is the lake-side maintenance operation that invalidates Rottnest
// index files pointing at the old physical locations.
func (t *Table) Compact(ctx context.Context, smallBytes int64, targetRows int64) ([]string, error) {
	snap, err := t.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	var inputs []DataFile
	for _, f := range snap.Files {
		if f.Size < smallBytes {
			inputs = append(inputs, f)
		}
	}
	if len(inputs) < 2 {
		return nil, nil
	}
	if targetRows <= 0 {
		targetRows = 1 << 20
	}

	// Read and concatenate inputs, applying deletion vectors.
	merged := parquet.NewBatch(snap.Schema)
	for _, f := range inputs {
		batch, _, err := parquet.ReadAll(ctx, t.store, t.root+f.Path)
		if err != nil {
			return nil, fmt.Errorf("lake: compact read %s: %w", f.Path, err)
		}
		dv, err := t.readDV(ctx, f)
		if err != nil {
			return nil, err
		}
		for ci := range merged.Cols {
			merged.Cols[ci] = merged.Cols[ci].Append(filterDeleted(batch.Cols[ci], dv))
		}
	}

	// Write replacement files of ~targetRows each.
	var actions []Action
	var newPaths []string
	total := merged.NumRows()
	for start := 0; start < total; start += int(targetRows) {
		end := start + int(targetRows)
		if end > total {
			end = total
		}
		part := parquet.NewBatch(snap.Schema)
		for ci := range part.Cols {
			part.Cols[ci] = merged.Cols[ci].Slice(start, end)
		}
		path := "data/" + newFileName(".rpq")
		w := parquet.NewFileWriter(snap.Schema, parquet.WriterOptions{})
		if err := w.Append(part); err != nil {
			return nil, err
		}
		data, meta, err := w.Close()
		if err != nil {
			return nil, err
		}
		if err := t.store.Put(ctx, t.root+path, data); err != nil {
			return nil, err
		}
		actions = append(actions, Action{Add: &AddFile{Path: path, Rows: meta.NumRows, Size: int64(len(data)), Stats: statsFromMeta(meta)}})
		newPaths = append(newPaths, path)
	}
	for _, f := range inputs {
		actions = append(actions, Action{Remove: &RemoveFile{Path: f.Path}})
	}

	// Validate on commit that the inputs are still active and their
	// deletion vectors unchanged (a racing compactor or row delete
	// would otherwise be silently lost — resurrecting deleted rows).
	_, err = t.commit(ctx, "COMPACT", actions, func(latest *Snapshot) error {
		for _, f := range inputs {
			cur, ok := latest.File(f.Path)
			if !ok {
				return fmt.Errorf("lake: compaction input %s removed concurrently: %w", f.Path, ErrConflict)
			}
			if cur.DVPath != f.DVPath {
				return fmt.Errorf("lake: compaction input %s deleted-from concurrently: %w", f.Path, ErrConflict)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return newPaths, nil
}

// filterDeleted drops values at rows marked in the deletion vector.
func filterDeleted(v parquet.ColumnValues, dv *DeletionVector) parquet.ColumnValues {
	if dv.Len() == 0 {
		return v
	}
	var out parquet.ColumnValues
	n := v.Len()
	for i := 0; i < n; i++ {
		if dv.Contains(uint32(i)) {
			continue
		}
		out = out.Append(v.Slice(i, i+1))
	}
	return out
}

// readDV loads a file's deletion vector, or an empty one.
func (t *Table) readDV(ctx context.Context, f DataFile) (*DeletionVector, error) {
	if f.DVPath == "" {
		return NewDeletionVector(), nil
	}
	data, err := t.store.Get(ctx, t.root+f.DVPath)
	if err != nil {
		return nil, fmt.Errorf("lake: read dv %s: %w", f.DVPath, err)
	}
	return ParseDeletionVector(data)
}

// ReadDeletionVector loads the deletion vector for a snapshot file,
// returning an empty vector when none exists. Search paths use it to
// mask deleted rows during in-situ probing.
func (t *Table) ReadDeletionVector(ctx context.Context, f DataFile) (*DeletionVector, error) {
	return t.readDV(ctx, f)
}

// DeleteRows marks file-local rows of one data file as deleted by
// writing a new deletion vector (merged with any existing one) and
// committing it.
func (t *Table) DeleteRows(ctx context.Context, path string, rows []uint32) error {
	snap, err := t.Snapshot(ctx)
	if err != nil {
		return err
	}
	f, ok := snap.File(path)
	if !ok {
		return fmt.Errorf("lake: delete from inactive file %s: %w", path, ErrConflict)
	}
	dv, err := t.readDV(ctx, f)
	if err != nil {
		return err
	}
	for _, r := range rows {
		dv.Add(r)
	}
	dvPath := "dv/" + newFileName(".dv")
	if err := t.store.Put(ctx, t.root+dvPath, dv.Serialize()); err != nil {
		return err
	}
	_, err = t.commit(ctx, "DELETE", []Action{{DV: &AddDV{File: path, Path: dvPath, Deleted: int64(dv.Len())}}}, func(latest *Snapshot) error {
		cur, ok := latest.File(path)
		if !ok {
			return fmt.Errorf("lake: file %s removed concurrently: %w", path, ErrConflict)
		}
		if cur.DVPath != f.DVPath {
			// A racing delete landed; our merged vector would drop
			// its rows.
			return fmt.Errorf("lake: file %s deleted-from concurrently: %w", path, ErrConflict)
		}
		return nil
	})
	return err
}

// Vacuum physically deletes data and deletion-vector files that are
// not referenced by any snapshot at or after keepVersion and whose age
// exceeds minAge (protecting in-flight writers). It returns the keys
// removed.
func (t *Table) Vacuum(ctx context.Context, keepVersion int64, minAge time.Duration) ([]string, error) {
	latest, err := t.Version(ctx)
	if err != nil {
		return nil, err
	}
	if keepVersion < 1 {
		keepVersion = 1
	}
	if keepVersion > latest {
		keepVersion = latest
	}
	referenced := make(map[string]bool)
	for v := keepVersion; v <= latest; v++ {
		snap, err := t.SnapshotAt(ctx, v)
		if err != nil {
			if errors.Is(err, ErrNoSnapshot) {
				continue
			}
			return nil, err
		}
		for _, f := range snap.Files {
			referenced[f.Path] = true
			if f.DVPath != "" {
				referenced[f.DVPath] = true
			}
		}
	}
	cutoff := t.clock.Now().Add(-minAge)
	var removed []string
	for _, prefix := range []string{"data/", "dv/"} {
		infos, err := t.store.List(ctx, t.root+prefix)
		if err != nil {
			return nil, err
		}
		for _, info := range infos {
			rel := info.Key[len(t.root):]
			if referenced[rel] || info.Created.After(cutoff) {
				continue
			}
			if err := t.store.Delete(ctx, info.Key); err != nil {
				return nil, err
			}
			removed = append(removed, rel)
		}
	}
	t.fireVacuum(removed)
	return removed, nil
}
