package lake

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
)

var tblSchema = parquet.MustSchema(
	parquet.Column{Name: "ts", Type: parquet.TypeInt64},
	parquet.Column{Name: "msg", Type: parquet.TypeByteArray},
)

func msgBatch(msgs ...string) *parquet.Batch {
	b := parquet.NewBatch(tblSchema)
	ints := make([]int64, len(msgs))
	bytes := make([][]byte, len(msgs))
	for i, m := range msgs {
		ints[i] = int64(i)
		bytes[i] = []byte(m)
	}
	b.Cols[0] = parquet.ColumnValues{Ints: ints}
	b.Cols[1] = parquet.ColumnValues{Bytes: bytes}
	return b
}

func newTestTable(t *testing.T) (*Table, *objectstore.MemStore, *simtime.VirtualClock) {
	t.Helper()
	clock := simtime.NewVirtualClock()
	store := objectstore.NewMemStore(clock)
	tbl, err := CreateWith(context.Background(), store, "tbl", tblSchema, OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	return tbl, store, clock
}

func TestCreateOpenAppendSnapshot(t *testing.T) {
	ctx := context.Background()
	tbl, store, clock := newTestTable(t)

	if _, err := CreateWith(ctx, store, "tbl", tblSchema, OpenOptions{Clock: clock}); err == nil {
		t.Fatal("double create accepted")
	}
	reopened, err := OpenWith(ctx, store, "tbl", OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Root() != "tbl/" {
		t.Fatalf("root = %q", reopened.Root())
	}
	if _, err := OpenWith(ctx, store, "nope", OpenOptions{Clock: clock}); !errors.Is(err, ErrNoTable) {
		t.Fatalf("open missing: %v", err)
	}

	p1, err := tbl.Append(ctx, msgBatch("a", "b", "c"), parquet.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := tbl.Append(ctx, msgBatch("d", "e"), parquet.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := tbl.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 3 {
		t.Fatalf("version = %d", snap.Version)
	}
	if len(snap.Files) != 2 || snap.LiveRows() != 5 {
		t.Fatalf("files=%d live=%d", len(snap.Files), snap.LiveRows())
	}
	if _, ok := snap.File(p1); !ok {
		t.Fatalf("file %s missing from snapshot", p1)
	}
	if _, ok := snap.File(p2); !ok {
		t.Fatalf("file %s missing from snapshot", p2)
	}
	if snap.Schema == nil || len(snap.Schema.Columns) != 2 {
		t.Fatal("schema not carried in snapshot")
	}
}

func TestTimeTravel(t *testing.T) {
	ctx := context.Background()
	tbl, _, _ := newTestTable(t)
	tbl.Append(ctx, msgBatch("a"), parquet.WriterOptions{})
	tbl.Append(ctx, msgBatch("b"), parquet.WriterOptions{})

	old, err := tbl.SnapshotAt(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(old.Files) != 1 || old.LiveRows() != 1 {
		t.Fatalf("v2: files=%d rows=%d", len(old.Files), old.LiveRows())
	}
	if _, err := tbl.SnapshotAt(ctx, 99); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("future snapshot: %v", err)
	}
}

func TestDeletionVectorRoundTrip(t *testing.T) {
	dv := NewDeletionVector()
	for _, r := range []uint32{5, 1, 100000, 5, 42} {
		dv.Add(r)
	}
	if dv.Len() != 4 {
		t.Fatalf("Len = %d", dv.Len())
	}
	parsed, err := ParseDeletionVector(dv.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []uint32{1, 5, 42, 100000} {
		if !parsed.Contains(r) {
			t.Fatalf("missing row %d", r)
		}
	}
	if parsed.Contains(2) {
		t.Fatal("phantom row")
	}
	rows := parsed.Rows()
	for i := 1; i < len(rows); i++ {
		if rows[i-1] >= rows[i] {
			t.Fatal("rows not sorted")
		}
	}
	if _, err := ParseDeletionVector([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	var nilDV *DeletionVector
	if nilDV.Contains(1) || nilDV.Len() != 0 || nilDV.Rows() != nil {
		t.Fatal("nil DV behavior")
	}
}

func TestDeletionVectorProperty(t *testing.T) {
	f := func(rows []uint32) bool {
		dv := NewDeletionVector()
		want := make(map[uint32]bool)
		for _, r := range rows {
			dv.Add(r)
			want[r] = true
		}
		parsed, err := ParseDeletionVector(dv.Serialize())
		if err != nil || parsed.Len() != len(want) {
			return false
		}
		for r := range want {
			if !parsed.Contains(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRows(t *testing.T) {
	ctx := context.Background()
	tbl, _, _ := newTestTable(t)
	path, _ := tbl.Append(ctx, msgBatch("a", "b", "c", "d"), parquet.WriterOptions{})

	if err := tbl.DeleteRows(ctx, path, []uint32{1, 3}); err != nil {
		t.Fatal(err)
	}
	snap, _ := tbl.Snapshot(ctx)
	f, _ := snap.File(path)
	if f.Deleted != 2 || f.DVPath == "" {
		t.Fatalf("file after delete: %+v", f)
	}
	if snap.LiveRows() != 2 {
		t.Fatalf("LiveRows = %d", snap.LiveRows())
	}
	dv, err := tbl.ReadDeletionVector(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if !dv.Contains(1) || !dv.Contains(3) || dv.Contains(0) {
		t.Fatal("dv contents wrong")
	}

	// Second delete merges with the first.
	if err := tbl.DeleteRows(ctx, path, []uint32{0}); err != nil {
		t.Fatal(err)
	}
	snap, _ = tbl.Snapshot(ctx)
	f, _ = snap.File(path)
	if f.Deleted != 3 {
		t.Fatalf("merged deleted = %d", f.Deleted)
	}

	if err := tbl.DeleteRows(ctx, "data/nope.rpq", []uint32{0}); err == nil {
		t.Fatal("delete from missing file accepted")
	}
}

func TestCompactMergesSmallFilesAndDropsDeleted(t *testing.T) {
	ctx := context.Background()
	tbl, store, _ := newTestTable(t)
	p1, _ := tbl.Append(ctx, msgBatch("a", "b"), parquet.WriterOptions{})
	tbl.Append(ctx, msgBatch("c", "d"), parquet.WriterOptions{})
	tbl.Append(ctx, msgBatch("e"), parquet.WriterOptions{})
	if err := tbl.DeleteRows(ctx, p1, []uint32{0}); err != nil {
		t.Fatal(err)
	}

	newPaths, err := tbl.Compact(ctx, 1<<30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(newPaths) != 1 {
		t.Fatalf("new files = %v", newPaths)
	}
	snap, _ := tbl.Snapshot(ctx)
	if len(snap.Files) != 1 || snap.Files[0].Path != newPaths[0] {
		t.Fatalf("post-compaction files: %+v", snap.Files)
	}
	if snap.LiveRows() != 4 { // "a" dropped
		t.Fatalf("LiveRows = %d", snap.LiveRows())
	}
	// Contents survive, deleted row gone.
	batch, _, err := parquet.ReadAll(ctx, store, tbl.Root()+newPaths[0])
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, m := range batch.Cols[1].Bytes {
		got[string(m)] = true
	}
	for _, want := range []string{"b", "c", "d", "e"} {
		if !got[want] {
			t.Fatalf("row %q lost in compaction (have %v)", want, got)
		}
	}
	if got["a"] {
		t.Fatal("deleted row resurrected by compaction")
	}
	// Old files remain physically present until vacuum.
	if _, err := store.Head(ctx, tbl.Root()+p1); err != nil {
		t.Fatal("compaction must not physically delete inputs")
	}
}

func TestCompactNoOpCases(t *testing.T) {
	ctx := context.Background()
	tbl, _, _ := newTestTable(t)
	tbl.Append(ctx, msgBatch("a"), parquet.WriterOptions{})
	// Single small file: nothing to merge.
	paths, err := tbl.Compact(ctx, 1<<30, 0)
	if err != nil || paths != nil {
		t.Fatalf("single-file compact: %v, %v", paths, err)
	}
	tbl.Append(ctx, msgBatch("b"), parquet.WriterOptions{})
	// Threshold excludes everything.
	paths, err = tbl.Compact(ctx, 1, 0)
	if err != nil || paths != nil {
		t.Fatalf("below-threshold compact: %v, %v", paths, err)
	}
}

func TestVacuumRemovesUnreferencedOldFiles(t *testing.T) {
	ctx := context.Background()
	tbl, store, clock := newTestTable(t)
	p1, _ := tbl.Append(ctx, msgBatch("a", "b"), parquet.WriterOptions{})
	p2, _ := tbl.Append(ctx, msgBatch("c", "d"), parquet.WriterOptions{})
	if _, err := tbl.Compact(ctx, 1<<30, 0); err != nil {
		t.Fatal(err)
	}
	ver, _ := tbl.Version(ctx)

	// Too young: nothing removed.
	removed, err := tbl.Vacuum(ctx, ver, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("young files vacuumed: %v", removed)
	}

	clock.Advance(2 * time.Hour)
	removed, err = tbl.Vacuum(ctx, ver, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed = %v", removed)
	}
	for _, p := range []string{p1, p2} {
		if _, err := store.Head(ctx, tbl.Root()+p); !errors.Is(err, objectstore.ErrNotFound) {
			t.Fatalf("%s survived vacuum: %v", p, err)
		}
	}
	// The compacted file survives.
	snap, _ := tbl.Snapshot(ctx)
	for _, f := range snap.Files {
		if _, err := store.Head(ctx, tbl.Root()+f.Path); err != nil {
			t.Fatalf("active file %s vacuumed: %v", f.Path, err)
		}
	}
}

func TestVacuumRespectsTimeTravelHorizon(t *testing.T) {
	ctx := context.Background()
	tbl, store, clock := newTestTable(t)
	p1, _ := tbl.Append(ctx, msgBatch("a"), parquet.WriterOptions{})
	tbl.Append(ctx, msgBatch("b"), parquet.WriterOptions{})
	if _, err := tbl.Compact(ctx, 1<<30, 0); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Hour)
	// Keeping from version 2 preserves files of snapshots 2..latest.
	removed, err := tbl.Vacuum(ctx, 2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("horizon-protected files vacuumed: %v", removed)
	}
	if _, err := store.Head(ctx, tbl.Root()+p1); err != nil {
		t.Fatal("p1 must survive while version 2 is retained")
	}
}

func TestConcurrentAppendsAllCommit(t *testing.T) {
	ctx := context.Background()
	tbl, _, _ := newTestTable(t)
	const n = 12
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = tbl.Append(ctx, msgBatch(fmt.Sprintf("row-%d", i)), parquet.WriterOptions{})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	snap, err := tbl.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Files) != n || snap.LiveRows() != n {
		t.Fatalf("files=%d rows=%d, want %d", len(snap.Files), snap.LiveRows(), n)
	}
	if snap.Version != n+1 {
		t.Fatalf("version = %d, want %d", snap.Version, n+1)
	}
}

func TestCompactConflictWithConcurrentCompaction(t *testing.T) {
	ctx := context.Background()
	tbl, _, _ := newTestTable(t)
	tbl.Append(ctx, msgBatch("a"), parquet.WriterOptions{})
	tbl.Append(ctx, msgBatch("b"), parquet.WriterOptions{})

	// First compaction succeeds; a second one planned against the old
	// snapshot must observe the conflict.
	if _, err := tbl.Compact(ctx, 1<<30, 0); err != nil {
		t.Fatal(err)
	}
	// DeleteRows against a removed file also conflicts.
	snapBefore, _ := tbl.SnapshotAt(ctx, 3)
	oldFile := snapBefore.Files[0].Path
	if err := tbl.DeleteRows(ctx, oldFile, []uint32{0}); !errors.Is(err, ErrConflict) {
		t.Fatalf("delete on compacted file: %v, want ErrConflict", err)
	}
}

func TestLogVersionKeyRoundTrip(t *testing.T) {
	key := logKey("tbl/", 42)
	v, ok := versionFromKey("tbl/", key)
	if !ok || v != 42 {
		t.Fatalf("round trip: %d, %v", v, ok)
	}
	if _, ok := versionFromKey("tbl/", "tbl/_log/short.json"); ok {
		t.Fatal("bad key parsed")
	}
	if _, ok := versionFromKey("tbl/", "tbl/_log/0000000000000000004x.json"); ok {
		t.Fatal("non-digit key parsed")
	}
}

func TestFileStatsRecordedAndPruned(t *testing.T) {
	ctx := context.Background()
	tbl, _, _ := newTestTable(t)
	// Two batches with disjoint ts ranges (ints 0..2 vs 100..102 via
	// msgBatch's sequential ts column).
	b1 := msgBatch("a", "b", "c")
	b1.Cols[0] = parquet.ColumnValues{Ints: []int64{0, 1, 2}}
	b2 := msgBatch("d", "e", "f")
	b2.Cols[0] = parquet.ColumnValues{Ints: []int64{100, 101, 102}}
	p1, err := tbl.Append(ctx, b1, parquet.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Append(ctx, b2, parquet.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	snap, err := tbl.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	f1, ok := snap.File(p1)
	if !ok {
		t.Fatal("file missing")
	}
	s, ok := f1.Stats["ts"]
	if !ok || len(s.Min) == 0 {
		t.Fatalf("ts stats missing: %+v", f1.Stats)
	}
	if got := parquet.DecodeOrderableInt64(s.Min); got != 0 {
		t.Fatalf("min = %d", got)
	}
	if got := parquet.DecodeOrderableInt64(s.Max); got != 2 {
		t.Fatalf("max = %d", got)
	}

	// MayContainRange semantics.
	in := func(lo, hi int64) bool {
		return f1.MayContainRange("ts", parquet.OrderableInt64(lo), parquet.OrderableInt64(hi))
	}
	if !in(0, 0) || !in(2, 50) || !in(-5, 0) {
		t.Fatal("overlapping ranges pruned")
	}
	if in(3, 99) || in(-10, -1) {
		t.Fatal("disjoint ranges kept")
	}
	// Unknown column: always maybe.
	if !f1.MayContainRange("nope", parquet.OrderableInt64(0), parquet.OrderableInt64(1)) {
		t.Fatal("missing stats must not prune")
	}

	// Compaction outputs carry recomputed stats spanning both inputs.
	newPaths, err := tbl.Compact(ctx, 1<<30, 0)
	if err != nil || len(newPaths) != 1 {
		t.Fatalf("compact: %v, %v", newPaths, err)
	}
	snap, _ = tbl.Snapshot(ctx)
	merged, _ := snap.File(newPaths[0])
	ms := merged.Stats["ts"]
	if parquet.DecodeOrderableInt64(ms.Min) != 0 || parquet.DecodeOrderableInt64(ms.Max) != 102 {
		t.Fatalf("merged stats = [%d, %d]", parquet.DecodeOrderableInt64(ms.Min), parquet.DecodeOrderableInt64(ms.Max))
	}
}
