package lake

import (
	"context"
	"errors"
	"sync"
	"testing"

	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
)

// TestCommitFilesOneRound verifies a group of staged files lands as
// one log entry: one version advance for N batches.
func TestCommitFilesOneRound(t *testing.T) {
	ctx := context.Background()
	tbl, _, _ := newTestTable(t)
	before, err := tbl.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var pending []PendingFile
	for i := 0; i < 4; i++ {
		pf, err := tbl.WriteFile(ctx, msgBatch("a", "b"), parquet.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, pf)
	}
	// Staged files are invisible until committed.
	snap, err := tbl.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Files) != 0 {
		t.Fatalf("staged files visible before commit: %d", len(snap.Files))
	}
	v, err := tbl.CommitFiles(ctx, pending...)
	if err != nil {
		t.Fatal(err)
	}
	if v != before+1 {
		t.Fatalf("group commit advanced %d versions, want 1", v-before)
	}
	snap, err = tbl.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Files) != 4 || snap.LiveRows() != 8 {
		t.Fatalf("snapshot files=%d rows=%d, want 4/8", len(snap.Files), snap.LiveRows())
	}
	if _, err := tbl.CommitFiles(ctx); err == nil {
		t.Fatal("empty group commit accepted")
	}
}

// TestRacingGroupCommitsBothLand verifies the commit retry loop under
// contention: two concurrent group commits must both land at disjoint
// versions with no lost batches, and OnCommit must fire exactly once
// per committed version.
func TestRacingGroupCommitsBothLand(t *testing.T) {
	ctx := context.Background()
	for trial := 0; trial < 10; trial++ {
		tbl, _, _ := newTestTable(t)

		var hookMu sync.Mutex
		fired := make(map[int64]int)
		tbl.OnCommit(func(v int64) {
			hookMu.Lock()
			fired[v]++
			hookMu.Unlock()
		})

		stage := func(n int) []PendingFile {
			var out []PendingFile
			for i := 0; i < n; i++ {
				pf, err := tbl.WriteFile(ctx, msgBatch("x"), parquet.WriterOptions{})
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, pf)
			}
			return out
		}
		g1, g2 := stage(3), stage(3)

		var wg sync.WaitGroup
		versions := make([]int64, 2)
		errs := make([]error, 2)
		wg.Add(2)
		go func() { defer wg.Done(); versions[0], errs[0] = tbl.CommitFiles(ctx, g1...) }()
		go func() { defer wg.Done(); versions[1], errs[1] = tbl.CommitFiles(ctx, g2...) }()
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
		}
		if versions[0] == versions[1] {
			t.Fatalf("both commits claimed version %d", versions[0])
		}

		snap, err := tbl.Snapshot(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]bool{}
		for _, pf := range append(g1, g2...) {
			want[pf.Path] = true
		}
		if len(snap.Files) != len(want) {
			t.Fatalf("snapshot has %d files, want %d", len(snap.Files), len(want))
		}
		for _, f := range snap.Files {
			if !want[f.Path] {
				t.Fatalf("unexpected file %s", f.Path)
			}
		}

		hookMu.Lock()
		for _, v := range versions {
			if fired[v] != 1 {
				t.Fatalf("OnCommit fired %d times for version %d", fired[v], v)
			}
		}
		hookMu.Unlock()
	}
}

// TestCommitResolvesAmbiguousPut verifies that when every conditional
// PUT reports an ambiguous outcome (the write lands, the response is
// lost), the commit loop resolves it by read-back: the caller sees
// success, the version advances exactly once, no batch is duplicated,
// and OnCommit fires exactly once.
func TestCommitResolvesAmbiguousPut(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	mem := objectstore.NewMemStore(clock)
	if _, err := CreateWith(ctx, mem, "tbl", tblSchema, OpenOptions{Clock: clock}); err != nil {
		t.Fatal(err)
	}
	faulty := objectstore.NewFaultStoreWithProfile(mem, objectstore.FaultProfile{AmbiguousPut: 1.0})
	tbl, err := OpenWith(ctx, faulty, "tbl", OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}

	var hookMu sync.Mutex
	fired := make(map[int64]int)
	tbl.OnCommit(func(v int64) {
		hookMu.Lock()
		fired[v]++
		hookMu.Unlock()
	})

	g := make([]PendingFile, 0, 2)
	for i := 0; i < 2; i++ {
		pf, err := tbl.WriteFile(ctx, msgBatch("a"), parquet.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		g = append(g, pf)
	}
	v, err := tbl.CommitFiles(ctx, g...)
	if err != nil {
		t.Fatalf("ambiguous commit not resolved: %v", err)
	}
	if v != 2 {
		t.Fatalf("version = %d, want 2", v)
	}
	if got := faulty.Counts().AmbiguousPuts; got < 1 {
		t.Fatalf("no ambiguous put injected (counts=%d)", got)
	}
	hookMu.Lock()
	if fired[v] != 1 || len(fired) != 1 {
		t.Fatalf("OnCommit fired %v, want exactly once for version %d", fired, v)
	}
	hookMu.Unlock()

	snap, err := tbl.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Files) != 2 || snap.LiveRows() != 2 {
		t.Fatalf("snapshot files=%d rows=%d, want 2/2", len(snap.Files), snap.LiveRows())
	}
}

// TestCommitCleanFailureFiresNoHook verifies the complementary path: a
// conditional PUT that never reaches the store (read-back finds no log
// entry) must surface the error, fire no hook, and leave the table
// retryable without duplication.
func TestCommitCleanFailureFiresNoHook(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	mem := objectstore.NewMemStore(clock)
	if _, err := CreateWith(ctx, mem, "tbl", tblSchema, OpenOptions{Clock: clock}); err != nil {
		t.Fatal(err)
	}
	// The first conditional PUT through the faulty handle is the group
	// commit (WriteFile uses plain Put); fail exactly that one.
	var conds int
	faulty := objectstore.NewFaultStore(mem, func(op objectstore.Op, key string, _ int64) bool {
		if op != objectstore.OpPut {
			return false
		}
		if len(key) < 9 || key[len(key)-5:] != ".json" {
			return false
		}
		conds++
		return conds == 1
	})
	tbl, err := OpenWith(ctx, faulty, "tbl", OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	fires := 0
	tbl.OnCommit(func(int64) { fires++ })

	pf, err := tbl.WriteFile(ctx, msgBatch("a"), parquet.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.CommitFiles(ctx, pf); !errors.Is(err, objectstore.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if fires != 0 {
		t.Fatalf("OnCommit fired %d times on failed commit", fires)
	}
	// The caller may retry the same staged file: exactly one copy lands.
	v, err := tbl.CommitFiles(ctx, pf)
	if err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("OnCommit fired %d times, want 1", fires)
	}
	snap, err := tbl.SnapshotAt(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Files) != 1 || snap.Files[0].Path != pf.Path {
		t.Fatalf("snapshot %+v, want exactly %s", snap.Files, pf.Path)
	}
}
