package lake

import (
	"context"
	"fmt"
	"testing"

	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
)

func TestCheckpointsBoundReplay(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	mem := objectstore.NewMemStore(clock)
	store, metrics := objectstore.Instrument(mem, objectstore.DefaultS3Model())
	tbl, err := CreateWith(ctx, store, "tbl", tblSchema, OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	const appends = 70
	for i := 0; i < appends; i++ {
		if _, err := tbl.Append(ctx, msgBatch(fmt.Sprintf("row-%d", i)), parquet.WriterOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoints exist at versions 32 and 64.
	for _, v := range []int64{32, 64} {
		if _, err := store.Head(ctx, checkpointKey("tbl/", v)); err != nil {
			t.Fatalf("checkpoint at %d missing: %v", v, err)
		}
	}

	// A fresh snapshot replays only the post-checkpoint suffix: one
	// LIST + one checkpoint GET + (71-64) commit GETs.
	before := metrics.Snapshot()
	snap, err := tbl.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	delta := metrics.Snapshot().Sub(before)
	if snap.Version != appends+1 || snap.LiveRows() != appends {
		t.Fatalf("snapshot = v%d, %d rows", snap.Version, snap.LiveRows())
	}
	if delta.Gets > 12 {
		t.Fatalf("snapshot construction used %d GETs; checkpoint did not bound replay", delta.Gets)
	}

	// Time travel to a pre-checkpoint version still works (replays
	// from scratch, no checkpoint at or below it besides... v32 > 5).
	old, err := tbl.SnapshotAt(ctx, 5)
	if err != nil || old.LiveRows() != 4 {
		t.Fatalf("time travel: %v, %v", old, err)
	}
	// And to a version between checkpoints.
	mid, err := tbl.SnapshotAt(ctx, 50)
	if err != nil || mid.LiveRows() != 49 {
		t.Fatalf("mid travel: %+v, %v", mid, err)
	}
}

func TestCheckpointCorruptionFallsBack(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	store := objectstore.NewMemStore(clock)
	tbl, err := CreateWith(ctx, store, "tbl", tblSchema, OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := tbl.Append(ctx, msgBatch("x"), parquet.WriterOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the checkpoint: snapshots must fall back to full
	// replay and still be correct.
	if err := store.Put(ctx, checkpointKey("tbl/", 32), []byte("not json")); err != nil {
		t.Fatal(err)
	}
	snap, err := tbl.Snapshot(ctx)
	if err != nil || snap.LiveRows() != 40 {
		t.Fatalf("fallback snapshot: %v, %v", snap, err)
	}
}

func TestCheckpointKeysDoNotConfuseVersioning(t *testing.T) {
	ctx := context.Background()
	tbl, _, _ := newTestTable(t)
	for i := 0; i < CheckpointInterval+2; i++ {
		if _, err := tbl.Append(ctx, msgBatch("x"), parquet.WriterOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := tbl.Version(ctx)
	if err != nil || v != int64(CheckpointInterval+3) {
		t.Fatalf("Version = %d, %v", v, err)
	}
	if _, ok := checkpointVersionFromKey("tbl/", checkpointKey("tbl/", 32)); !ok {
		t.Fatal("checkpoint key round trip")
	}
	if _, ok := checkpointVersionFromKey("tbl/", logKey("tbl/", 32)); ok {
		t.Fatal("commit key parsed as checkpoint")
	}
	if _, ok := versionFromKey("tbl/", checkpointKey("tbl/", 32)); ok {
		t.Fatal("checkpoint key parsed as commit")
	}
}
