package lake

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
)

// CheckpointInterval is how many commits between automatic log
// checkpoints. A checkpoint summarizes the table state at one version
// so snapshot construction replays only the log suffix — the same
// mechanism Delta Lake uses to keep log replay O(1) as tables age.
const CheckpointInterval = 32

// checkpointState is the serialized table state at one version.
type checkpointState struct {
	Version int64           `json:"version"`
	Schema  *parquet.Schema `json:"schema"`
	Files   []DataFile      `json:"files"`
}

func checkpointKey(root string, version int64) string {
	return fmt.Sprintf("%s%scheckpoint-%020d.json", root, logDir, version)
}

// checkpointVersionFromKey parses a checkpoint key.
func checkpointVersionFromKey(root, key string) (int64, bool) {
	name := strings.TrimPrefix(key, root+logDir+"checkpoint-")
	if name == key || !strings.HasSuffix(name, ".json") {
		return 0, false
	}
	name = strings.TrimSuffix(name, ".json")
	if len(name) != 20 {
		return 0, false
	}
	var v int64
	for _, c := range name {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	return v, true
}

// maybeCheckpoint writes a checkpoint if the committed version is a
// multiple of CheckpointInterval. Best effort: a failed checkpoint
// write never fails the commit, and an identical re-write by a racing
// committer is harmless (the content is deterministic for a version).
func (t *Table) maybeCheckpoint(ctx context.Context, version int64) {
	if version%CheckpointInterval != 0 {
		return
	}
	snap, err := t.SnapshotAt(ctx, version)
	if err != nil {
		return
	}
	state := checkpointState{Version: snap.Version, Schema: snap.Schema, Files: snap.Files}
	data, err := json.Marshal(state)
	if err != nil {
		return
	}
	_ = t.store.Put(ctx, checkpointKey(t.root, version), data)
}

// loadCheckpoint returns the newest parseable checkpoint at or below
// maxVersion (maxVersion < 0 means any), or nil.
func loadCheckpoint(ctx context.Context, store objectstore.Store, root string, infos []objectstore.ObjectInfo, maxVersion int64) *checkpointState {
	best := int64(-1)
	var bestKey string
	for _, info := range infos {
		v, ok := checkpointVersionFromKey(root, info.Key)
		if !ok {
			continue
		}
		if (maxVersion < 0 || v <= maxVersion) && v > best {
			best, bestKey = v, info.Key
		}
	}
	if best < 0 {
		return nil
	}
	data, err := store.Get(ctx, bestKey)
	if err != nil {
		return nil // fall back to full replay
	}
	var state checkpointState
	if err := json.Unmarshal(data, &state); err != nil {
		return nil // corrupted checkpoint: fall back to full replay
	}
	return &state
}
