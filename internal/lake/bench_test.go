package lake

import (
	"context"
	"fmt"
	"testing"

	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
)

func benchStore() (*simtime.VirtualClock, *objectstore.MemStore) {
	clock := simtime.NewVirtualClock()
	return clock, objectstore.NewMemStore(clock)
}

// BenchmarkAppendCommit measures the append + optimistic-commit path.
func BenchmarkAppendCommit(b *testing.B) {
	ctx := context.Background()
	clock, store := benchStore()
	tbl, err := CreateWith(ctx, store, "tbl", tblSchema, OpenOptions{Clock: clock})
	if err != nil {
		b.Fatal(err)
	}
	batch := msgBatch("one", "two", "three", "four")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Append(ctx, batch, parquet.WriterOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotReplay measures snapshot construction over a
// checkpointed log.
func BenchmarkSnapshotReplay(b *testing.B) {
	ctx := context.Background()
	clock, store := benchStore()
	tbl, err := CreateWith(ctx, store, "tbl", tblSchema, OpenOptions{Clock: clock})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := tbl.Append(ctx, msgBatch(fmt.Sprintf("r%d", i)), parquet.WriterOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Snapshot(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
