package shard

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"rottnest/internal/core"
	"rottnest/internal/insitu"
	"rottnest/internal/lake"
	"rottnest/internal/objcache"
	"rottnest/internal/objectstore"
	"rottnest/internal/obs"
	"rottnest/internal/simtime"
)

// worker is one replica of one shard: a core.Client over the worker's
// own cache stack, serving the shard's file range.
type worker struct {
	client *core.Client
}

// Router is the scatter-gather front door: it resolves a query's
// snapshot version once, partitions the snapshot into contiguous
// file ranges, scatters the pinned per-shard queries to workers in
// parallel (hedging slow replicas), and merges the results into
// single-node order.
type Router struct {
	opts    Options
	table   *lake.Table
	workers [][]*worker // [shard][replica]
	seq     []atomic.Uint64
	hedgers []*hedger
	admit   *admission
	reg     *obs.Registry
}

// New builds a router over the table at root. store is the shared
// substrate every worker reads through (typically the instrumented —
// and, under test, faulty — chain); each worker layers its own
// cache-budgeted objectstore.NewStack on top, so per-shard budgets
// are set in exactly one code path.
func New(ctx context.Context, store objectstore.Store, root string, opts Options) (*Router, error) {
	opts = opts.withDefaults()
	table, err := lake.OpenWith(ctx, store, root, lake.OpenOptions{Clock: opts.Clock})
	if err != nil {
		return nil, fmt.Errorf("shard: open table: %w", err)
	}
	n := opts.Shards * opts.Replicas
	byteBudget := splitBudget(opts.CacheBytes, objectstore.DefaultCacheBytes, n)
	decodedBudget := splitBudget(opts.DecodedCacheBytes, objcache.DefaultMaxBytes, n)

	r := &Router{
		opts:    opts,
		table:   table,
		workers: make([][]*worker, opts.Shards),
		seq:     make([]atomic.Uint64, opts.Shards),
		hedgers: make([]*hedger, opts.Shards),
		admit:   newAdmission(opts.Admission, opts.Clock),
		reg:     obs.NewRegistry(),
	}
	for s := 0; s < opts.Shards; s++ {
		r.hedgers[s] = newHedger(opts.Hedge)
		row := make([]*worker, opts.Replicas)
		for rep := 0; rep < opts.Replicas; rep++ {
			ws := store
			if opts.ReplicaWrap != nil {
				ws = opts.ReplicaWrap(s, rep, ws)
			}
			if byteBudget >= 0 {
				ws = objectstore.NewStack(ws, objectstore.StackOptions{
					CacheBytes:  byteBudget,
					CoalesceGap: opts.CoalesceGap,
				}).Store
			}
			wt, err := lake.OpenWith(ctx, ws, root, lake.OpenOptions{Clock: opts.Clock})
			if err != nil {
				return nil, fmt.Errorf("shard: open worker table %d/%d: %w", s, rep, err)
			}
			row[rep] = &worker{client: core.NewClient(wt, core.Config{
				IndexDir:             opts.IndexDir,
				Clock:                opts.Clock,
				Timeout:              opts.Timeout,
				SearchWidth:          opts.SearchWidth,
				CacheBytes:           -1, // the worker stack above carries the byte cache
				CoalesceGap:          opts.CoalesceGap,
				DecodedCacheBytes:    decodedBudget,
				PlanCacheTTLVersions: opts.PlanCacheTTLVersions,
				ProbeBatchBytes:      opts.ProbeBatchBytes,
			})}
		}
		r.workers[s] = row
	}
	return r, nil
}

// Shards returns the configured shard count.
func (r *Router) Shards() int { return r.opts.Shards }

// Replicas returns the configured replicas per shard.
func (r *Router) Replicas() int { return r.opts.Replicas }

// Client exposes one worker's client (tests and tooling).
func (r *Router) Client(shard, replica int) *core.Client {
	return r.workers[shard][replica].client
}

// Metrics snapshots the router's own registry: router.queries,
// router.rejected, router.hedges, router.hedge_wins. Worker-level
// store metrics live on the workers' clients.
func (r *Router) Metrics() obs.Snapshot { return r.reg.Snapshot() }

// Stats summarizes one routed query.
type Stats struct {
	// Latency is the query's virtual latency: plan + slowest shard +
	// merge, as charged to the caller's simtime session.
	Latency time.Duration
	// Version is the snapshot version every shard searched.
	Version int64
	// Shards is the number of non-empty shards scattered to.
	Shards int
	// Hedges and HedgeWins count this query's hedged shard fan-outs
	// and how many the hedge replica won.
	Hedges    int64
	HedgeWins int64
}

// Result is a routed query outcome.
type Result struct {
	Matches []insitu.Match
	Stats   Stats
}

// Search routes a single-predicate query: scatter to every shard with
// a pinned snapshot version and the shard's file range, then merge.
func (r *Router) Search(ctx context.Context, q core.Query) (*Result, error) {
	return r.run(ctx, q.Snapshot, q.Vector != nil, q.K,
		func(ctx context.Context, cli *core.Client, ver int64, fr core.FileRange) (*core.Result, error) {
			sq := q
			sq.Snapshot = ver
			sq.FileRange = &fr
			return cli.Search(ctx, sq)
		})
}

// SearchCompound routes a compound boolean query.
func (r *Router) SearchCompound(ctx context.Context, cq core.CompoundQuery) (*Result, error) {
	return r.run(ctx, cq.Snapshot, exprHasVector(cq.Expr), cq.K,
		func(ctx context.Context, cli *core.Client, ver int64, fr core.FileRange) (*core.Result, error) {
			scq := cq
			scq.Snapshot = ver
			scq.FileRange = &fr
			return cli.SearchCompound(ctx, scq)
		})
}

// Trace is Search with a trace attached: the returned tree is the
// scatter tree — router.plan, then router.scatter with one
// router.shard branch per non-empty shard (each holding the per-shard
// search.* subtree), then router.merge — whose phase virtual
// durations sum exactly to the reported latency.
func (r *Router) Trace(ctx context.Context, q core.Query) (*Result, *obs.Node, error) {
	ctx, root := r.startTrace(ctx)
	res, err := r.Search(ctx, q)
	root.End()
	return res, root.Tree(), err
}

// TraceCompound is Trace for compound queries.
func (r *Router) TraceCompound(ctx context.Context, cq core.CompoundQuery) (*Result, *obs.Node, error) {
	ctx, root := r.startTrace(ctx)
	res, err := r.SearchCompound(ctx, cq)
	root.End()
	return res, root.Tree(), err
}

func (r *Router) startTrace(ctx context.Context) (context.Context, *obs.Span) {
	if simtime.From(ctx) == nil {
		ctx = simtime.With(ctx, simtime.NewSession())
	}
	return obs.WithTrace(ctx, "router.search")
}

func exprHasVector(e *core.Expr) bool {
	if e == nil {
		return false
	}
	if e.Op == core.OpLeaf {
		return e.Pred != nil && e.Pred.Vector != nil
	}
	for _, c := range e.Children {
		if exprHasVector(c) {
			return true
		}
	}
	return false
}

// shardDo executes one shard's slice of the query on one worker.
type shardDo func(ctx context.Context, cli *core.Client, ver int64, fr core.FileRange) (*core.Result, error)

func (r *Router) run(ctx context.Context, snapVer int64, isVector bool, k int, do shardDo) (*Result, error) {
	if err := r.admit.allow(TenantFrom(ctx)); err != nil {
		r.reg.Counter("router.rejected").Inc()
		return nil, err
	}
	r.reg.Counter("router.queries").Inc()
	session := simtime.From(ctx)
	start := session.Elapsed()

	// Plan: resolve the version once so every shard searches the same
	// snapshot, and partition its files into contiguous ranges.
	pctx, planSpan := obs.Start(ctx, "router.plan")
	ver := snapVer
	var err error
	if ver <= 0 {
		ver, err = r.table.Version(pctx)
	}
	var snap *lake.Snapshot
	if err == nil {
		snap, err = r.table.SnapshotAt(pctx, ver)
	}
	planSpan.SetAttr("version", ver)
	if snap != nil {
		planSpan.SetAttr("files", len(snap.Files))
	}
	planSpan.End()
	if err != nil {
		return nil, fmt.Errorf("shard: plan: %w", err)
	}
	parts := Partition(snap.Files, r.opts.Shards)
	var scattered []int
	for i, p := range parts {
		if p.Files > 0 {
			scattered = append(scattered, i)
		}
	}

	// Scatter: one parallel branch per non-empty shard; each branch's
	// session advances by the shard's (possibly hedged) latency, and
	// the scatter phase costs the slowest shard.
	var hedges, hedgeWins int64
	type shardOut struct {
		idx int
		res *core.Result
		err error
	}
	outs := make([]shardOut, len(scattered))
	sctx, scatterSpan := obs.Start(ctx, "router.scatter")
	scatterSpan.SetAttr("shards", len(scattered))
	branches := make([]func(*simtime.Session), len(scattered))
	for bi, si := range scattered {
		bi, si := bi, si
		branches[bi] = func(bs *simtime.Session) {
			bctx := simtime.With(sctx, bs)
			shctx, span := obs.Start(bctx, "router.shard")
			span.SetAttr("shard", si)
			span.SetAttr("files", parts[si].Files)
			res, hi, err := r.runShard(shctx, bs, si, ver, parts[si].Range, do)
			if hi.hedged {
				atomic.AddInt64(&hedges, 1)
				span.SetAttr("hedged", true)
				span.SetAttr("deadline_ns", int64(hi.deadline))
				if hi.hedgeWon {
					atomic.AddInt64(&hedgeWins, 1)
					span.SetAttr("winner", "hedge")
				} else {
					span.SetAttr("winner", "primary")
				}
			}
			span.End()
			outs[bi] = shardOut{si, res, err}
		}
	}
	if len(branches) > 0 {
		session.Parallel(branches...)
	}
	scatterSpan.End()

	lists := make([][]insitu.Match, 0, len(outs))
	for _, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("shard %d: %w", o.idx, o.err)
		}
		lists = append(lists, o.res.Matches)
	}

	// Merge: in-memory, so the phase costs (virtually) nothing; it is
	// traced for the scatter tree's completeness.
	_, mergeSpan := obs.Start(ctx, "router.merge")
	var merged []insitu.Match
	if isVector {
		merged = MergeTopK(lists, k)
	} else {
		merged = MergeExact(lists, k)
	}
	mergeSpan.SetAttr("matches", len(merged))
	mergeSpan.End()

	res := &Result{Matches: merged}
	res.Stats.Version = ver
	res.Stats.Shards = len(scattered)
	res.Stats.Hedges = hedges
	res.Stats.HedgeWins = hedgeWins
	res.Stats.Latency = session.Elapsed() - start
	return res, nil
}

// hedgeInfo reports one shard fan-out's hedging outcome.
type hedgeInfo struct {
	hedged   bool
	hedgeWon bool
	deadline time.Duration
}

// runShard executes one shard's query with hedged replica fan-out.
// Replica attempts run on their own fresh sessions so their full
// durations are known; the shard's branch session then advances by
// the modeled outcome: the primary's duration when it beat the hedge
// deadline, otherwise min(primary, deadline+hedge). The losing
// attempt's context is cancelled.
func (r *Router) runShard(ctx context.Context, bs *simtime.Session, si int, ver int64, fr core.FileRange, do shardDo) (*core.Result, hedgeInfo, error) {
	m := len(r.workers[si])
	primary := int(r.seq[si].Add(1)-1) % m
	h := r.hedgers[si]

	attempt := func(replica int, role string) (*core.Result, time.Duration, context.CancelFunc, error) {
		as := simtime.NewSession()
		actx, cancel := context.WithCancel(ctx)
		actx = simtime.With(actx, as)
		actx, span := obs.Start(actx, "router.attempt")
		span.SetAttr("replica", replica)
		span.SetAttr("role", role)
		res, err := do(actx, r.workers[si][replica].client, ver, fr)
		span.End()
		return res, as.Elapsed(), cancel, err
	}

	deadline := time.Duration(math.MaxInt64)
	if r.opts.Hedge.Enabled && m > 1 {
		deadline = h.deadline()
	}
	pres, pdur, pcancel, perr := attempt(primary, "primary")
	h.observe(pdur)
	if pdur <= deadline {
		pcancel()
		bs.Add(pdur)
		return pres, hedgeInfo{}, perr
	}

	info := hedgeInfo{hedged: true, deadline: deadline}
	r.reg.Counter("router.hedges").Inc()
	hres, hdur, hcancel, herr := attempt((primary+1)%m, "hedge")
	hedgeLat := deadline + hdur
	hedgeWins := hedgeLat < pdur
	if perr != nil && herr == nil {
		hedgeWins = true
	} else if herr != nil && perr == nil {
		hedgeWins = false
	}
	if hedgeWins {
		info.hedgeWon = true
		r.reg.Counter("router.hedge_wins").Inc()
		pcancel() // the primary lost the race: cancel it
		bs.Add(hedgeLat)
		return hres, info, herr
	}
	hcancel() // the hedge lost the race: cancel it
	bs.Add(pdur)
	return pres, info, perr
}
