package shard

import (
	"rottnest/internal/insitu"
)

// MergeExact merges per-shard exact (trie/FM/compound filter) results
// into the single-node order: concatenate, sort by (path, row), drop
// duplicates, truncate to k (0 = unbounded). Shard ranges are
// disjoint so duplicates only arise from replica overlap or callers
// merging overlapping sets; dedup makes the merge idempotent either
// way, keeping the best (lowest) score when overlapping sets disagree
// so the output never depends on shard order.
func MergeExact(lists [][]insitu.Match, k int) []insitu.Match {
	var all []insitu.Match
	for _, l := range lists {
		all = append(all, l...)
	}
	insitu.SortMatches(all)
	var out []insitu.Match
	for _, m := range all {
		if n := len(out); n > 0 && out[n-1].Path == m.Path && out[n-1].Row == m.Row {
			if m.Score < out[n-1].Score {
				out[n-1] = m
			}
			continue
		}
		out = append(out, m)
	}
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// MergeTopK merges per-shard vector results into the global top-k:
// concatenate, keep the best (lowest) score per (path, row), sort by
// (score, path, row), truncate to k (0 = unbounded). Because each
// shard returns its own top-k and the global top-k rows each live in
// some shard, the union always contains the global answer.
func MergeTopK(lists [][]insitu.Match, k int) []insitu.Match {
	type key struct {
		path string
		row  int64
	}
	best := make(map[key]int)
	var uniq []insitu.Match
	for _, l := range lists {
		for _, m := range l {
			kk := key{m.Path, m.Row}
			if i, ok := best[kk]; ok {
				if m.Score < uniq[i].Score {
					uniq[i] = m
				}
				continue
			}
			best[kk] = len(uniq)
			uniq = append(uniq, m)
		}
	}
	insitu.SortByScore(uniq)
	if k > 0 && len(uniq) > k {
		uniq = uniq[:k]
	}
	return uniq
}
