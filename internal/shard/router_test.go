package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/insitu"
	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/obs"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

var uuidSchema = parquet.MustSchema(
	parquet.Column{Name: "id", Type: parquet.TypeFixedLenByteArray, TypeLen: 16},
	parquet.Column{Name: "payload", Type: parquet.TypeByteArray},
)

// testWorld is a small simulated deployment: an instrumented MemStore
// holding a multi-file uuid table with a trie index, a single-node
// client (the byte-identity reference), and helpers to build routers
// over the same substrate.
type testWorld struct {
	clock *simtime.VirtualClock
	store *objectstore.Instrumented
	table *lake.Table
	cli   *core.Client
	keys  [][16]byte
}

func newTestWorld(t testing.TB, batches, rowsPerBatch int) *testWorld {
	t.Helper()
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	mem := objectstore.NewMemStore(clock)
	store, _ := objectstore.Instrument(mem, objectstore.DefaultS3Model())
	table, err := lake.CreateWith(ctx, store, "lake", uuidSchema, lake.OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	w := &testWorld{clock: clock, store: store, table: table}
	w.cli = core.NewClient(table, core.Config{IndexDir: "rottnest", Clock: clock})
	gen := workload.NewUUIDGen(7)
	for b := 0; b < batches; b++ {
		keys := gen.Batch(rowsPerBatch)
		batch := parquet.NewBatch(uuidSchema)
		ids := make([][]byte, len(keys))
		payloads := make([][]byte, len(keys))
		for i := range keys {
			k := keys[i]
			ids[i] = k[:]
			payloads[i] = []byte(fmt.Sprintf("payload-%d-%d", b, i))
		}
		batch.Cols[0] = parquet.ColumnValues{Bytes: ids}
		batch.Cols[1] = parquet.ColumnValues{Bytes: payloads}
		if _, err := table.Append(ctx, batch, parquet.WriterOptions{RowGroupRows: 256, PageBytes: 2048}); err != nil {
			t.Fatal(err)
		}
		w.keys = append(w.keys, keys...)
	}
	if _, err := w.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *testWorld) router(t testing.TB, opts Options) *Router {
	t.Helper()
	opts.IndexDir = "rottnest"
	opts.Clock = w.clock
	rt, err := New(context.Background(), w.store, "lake", opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func sameMatches(a, b []insitu.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Path != b[i].Path || a[i].Row != b[i].Row || string(a[i].Value) != string(b[i].Value) {
			return false
		}
	}
	return true
}

func TestRouterMatchesSingleNode(t *testing.T) {
	w := newTestWorld(t, 6, 300)
	ctx := context.Background()
	for _, shards := range []int{1, 2, 3, 5, 9} {
		rt := w.router(t, Options{Shards: shards})
		for i := 0; i < len(w.keys); i += 217 {
			k := w.keys[i]
			q := core.Query{Column: "id", UUID: &k, K: 0, Snapshot: -1}
			want, err := w.cli.Search(simtime.With(ctx, simtime.NewSession()), q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rt.Search(simtime.With(ctx, simtime.NewSession()), q)
			if err != nil {
				t.Fatalf("shards=%d: %v", shards, err)
			}
			if !sameMatches(got.Matches, want.Matches) {
				t.Fatalf("shards=%d key %d: router %d matches, single-node %d", shards, i, len(got.Matches), len(want.Matches))
			}
			if len(got.Matches) == 0 {
				t.Fatalf("shards=%d key %d: no matches", shards, i)
			}
		}
	}
}

func TestRouterCompoundMatchesSingleNode(t *testing.T) {
	w := newTestWorld(t, 4, 200)
	ctx := context.Background()
	rt := w.router(t, Options{Shards: 3})
	k := w.keys[42]
	cq := core.CompoundQuery{
		Expr: core.Or(
			core.PredUUID("id", k),
			core.PredUUID("id", w.keys[599]),
		),
		Snapshot: -1,
		Output:   "id",
	}
	want, err := w.cli.SearchCompound(simtime.With(ctx, simtime.NewSession()), cq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rt.SearchCompound(simtime.With(ctx, simtime.NewSession()), cq)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Matches) != 2 || !sameMatches(got.Matches, want.Matches) {
		t.Fatalf("compound: router %d matches, single-node %d", len(got.Matches), len(want.Matches))
	}
}

// TestRouterTraceSums pins the scatter-tree latency accounting: the
// root's sequential phases (router.plan, router.scatter, router.merge)
// sum exactly to the reported latency, and the scatter phase costs
// exactly the slowest shard branch.
func TestRouterTraceSums(t *testing.T) {
	w := newTestWorld(t, 5, 250)
	ctx := context.Background()
	rt := w.router(t, Options{Shards: 4})
	k := w.keys[100]
	res, tree, err := rt.Trace(ctx, core.Query{Column: "id", UUID: &k, Snapshot: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Latency <= 0 {
		t.Fatalf("latency = %v, want > 0", res.Stats.Latency)
	}
	var phaseSum time.Duration
	for _, c := range tree.Children {
		phaseSum += c.Virtual
	}
	if phaseSum != res.Stats.Latency {
		t.Fatalf("phase sum %v != latency %v", phaseSum, res.Stats.Latency)
	}
	scatter := tree.Find("router.scatter")
	if scatter == nil {
		t.Fatal("no router.scatter span")
	}
	shardSpans := scatter.FindAll("router.shard")
	if len(shardSpans) != res.Stats.Shards {
		t.Fatalf("%d shard spans, stats say %d shards", len(shardSpans), res.Stats.Shards)
	}
	var slowest time.Duration
	for _, s := range shardSpans {
		if s.Virtual > slowest {
			slowest = s.Virtual
		}
		// Each shard branch holds the worker's search.* subtree.
		if s.Find("search.plan") == nil {
			t.Fatalf("shard span missing search.plan subtree:\n%s", renderTree(t, s))
		}
	}
	if scatter.Virtual != slowest {
		t.Fatalf("scatter %v != slowest shard %v", scatter.Virtual, slowest)
	}
	if tree.Find("router.plan") == nil || tree.Find("router.merge") == nil {
		t.Fatal("missing router.plan / router.merge spans")
	}
}

func renderTree(t testing.TB, n *obs.Node) string {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.RenderText(&buf, n); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRouterAdmissionControl(t *testing.T) {
	w := newTestWorld(t, 2, 100)
	ctx := context.Background()
	rt := w.router(t, Options{
		Shards:    2,
		Admission: AdmissionOptions{Enabled: true, Rate: 1, Burst: 3},
	})
	k := w.keys[0]
	q := core.Query{Column: "id", UUID: &k, Snapshot: -1}

	alice := WithTenant(ctx, "alice")
	var limited int
	for i := 0; i < 5; i++ {
		_, err := rt.Search(simtime.With(alice, simtime.NewSession()), q)
		if errors.Is(err, ErrRateLimited) {
			limited++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if limited != 2 {
		t.Fatalf("burst of 5 at burst=3: %d limited, want 2", limited)
	}
	// Another tenant has its own bucket.
	if _, err := rt.Search(simtime.With(WithTenant(ctx, "bob"), simtime.NewSession()), q); err != nil {
		t.Fatalf("bob should be admitted: %v", err)
	}
	// Virtual time refills alice's bucket at 1 query/sec.
	w.clock.Advance(2 * time.Second)
	for i := 0; i < 2; i++ {
		if _, err := rt.Search(simtime.With(alice, simtime.NewSession()), q); err != nil {
			t.Fatalf("after refill query %d: %v", i, err)
		}
	}
	if _, err := rt.Search(simtime.With(alice, simtime.NewSession()), q); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("3rd query after 2s refill should be limited, got %v", err)
	}
	if got := rt.Metrics().Counter("router.rejected"); got != 3 {
		t.Fatalf("router.rejected = %d, want 3", got)
	}
}

func TestRouterEmptySnapshot(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	mem := objectstore.NewMemStore(clock)
	store, _ := objectstore.Instrument(mem, objectstore.DefaultS3Model())
	if _, err := lake.CreateWith(ctx, store, "lake", uuidSchema, lake.OpenOptions{Clock: clock}); err != nil {
		t.Fatal(err)
	}
	rt, err := New(ctx, store, "lake", Options{Shards: 3, IndexDir: "rottnest", Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	var k [16]byte
	res, err := rt.Search(ctx, core.Query{Column: "id", UUID: &k, Snapshot: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 || res.Stats.Shards != 0 {
		t.Fatalf("empty snapshot: %+v", res.Stats)
	}
}
