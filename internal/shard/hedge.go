package shard

import (
	"math"
	"sort"
	"sync"
	"time"
)

// hedger tracks one shard's recent primary-attempt latencies and
// derives the hedge deadline: the configured percentile of the
// sliding window, floored at MinDelay. With an empty window the
// deadline is effectively infinite, so the first query on a cold
// shard never hedges.
type hedger struct {
	opts HedgeOptions

	mu     sync.Mutex
	window []time.Duration // ring buffer
	next   int
	filled bool
}

func newHedger(opts HedgeOptions) *hedger {
	return &hedger{opts: opts, window: make([]time.Duration, 0, opts.Window)}
}

// observe records a primary attempt's duration.
func (h *hedger) observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.window) < h.opts.Window {
		h.window = append(h.window, d)
		return
	}
	h.window[h.next] = d
	h.next = (h.next + 1) % h.opts.Window
	h.filled = true
}

// deadline returns the current hedge deadline. The percentile uses
// the same nearest-rank rule as the bench reports: index
// int(p·(len-1)) of the sorted window.
func (h *hedger) deadline() time.Duration {
	h.mu.Lock()
	n := len(h.window)
	lats := append([]time.Duration(nil), h.window...)
	h.mu.Unlock()
	if n == 0 {
		return math.MaxInt64
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	d := lats[int(h.opts.Percentile*float64(n-1))]
	if d < h.opts.MinDelay {
		d = h.opts.MinDelay
	}
	return d
}
