package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rottnest/internal/simtime"
)

type tenantCtxKey struct{}

// WithTenant tags ctx with the tenant issuing the query, the key the
// admission controller's token buckets are kept per. Untagged queries
// share the "default" tenant.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantCtxKey{}, tenant)
}

// TenantFrom returns the tenant tagged on ctx ("default" when none).
func TenantFrom(ctx context.Context) string {
	if t, ok := ctx.Value(tenantCtxKey{}).(string); ok && t != "" {
		return t
	}
	return "default"
}

// admission is the front-door controller: one token bucket per
// tenant, refilled from the world clock, so a burst of queries beyond
// Burst + Rate·elapsed is rejected with ErrRateLimited instead of
// being queued onto the shard workers.
type admission struct {
	opts  AdmissionOptions
	clock simtime.Clock

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newAdmission(opts AdmissionOptions, clock simtime.Clock) *admission {
	if clock == nil {
		clock = simtime.RealClock{}
	}
	if opts.Burst <= 0 {
		opts.Burst = opts.Rate
		if opts.Burst < 1 {
			opts.Burst = 1
		}
	}
	return &admission{opts: opts, clock: clock, buckets: make(map[string]*bucket)}
}

// allow spends one token from tenant's bucket, refilling by the clock
// time elapsed since the last visit.
func (a *admission) allow(tenant string) error {
	if a == nil || !a.opts.Enabled {
		return nil
	}
	now := a.clock.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.buckets[tenant]
	if !ok {
		b = &bucket{tokens: a.opts.Burst, last: now}
		a.buckets[tenant] = b
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * a.opts.Rate
		if b.tokens > a.opts.Burst {
			b.tokens = a.opts.Burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return fmt.Errorf("%w: tenant %q", ErrRateLimited, tenant)
	}
	b.tokens--
	return nil
}
