// Package shard implements the scatter-gather serving tier: a table's
// snapshot is partitioned into N contiguous file ranges, each served
// by M replica workers (a core.Client with its own warm caches over a
// shard-budgeted store stack), and a Router that scatters every query
// to all shards in parallel, hedges slow replicas, merges the
// per-shard results, and admits tenants through token-bucket rate
// limits at the front door.
//
// Correctness rides on the core protocol, not on the router: each
// worker runs the full lazy in-situ search restricted to its file
// range (core.Query.FileRange), and because the partitioner's ranges
// are disjoint and cover the snapshot, the union of per-shard exact
// results equals the unrestricted single-node search byte for byte.
// The differential harness (internal/harness ModeSharded) checks
// exactly that, under faults and concurrent maintenance.
package shard

import (
	"errors"
	"time"

	"rottnest/internal/objectstore"
	"rottnest/internal/simtime"
)

// ErrRateLimited is returned (wrapped, with the tenant name) when the
// admission controller's token bucket for the query's tenant is empty.
var ErrRateLimited = errors.New("shard: tenant rate limit exceeded")

// HedgeOptions tunes hedged replica requests. A hedge fires when the
// primary replica's virtual latency exceeds the configured percentile
// of the shard's recent latencies: the router then runs the next
// replica and charges the shard min(primary, deadline+hedge) — the
// loser's context is cancelled.
type HedgeOptions struct {
	// Enabled turns hedging on (needs Replicas > 1 to have effect).
	Enabled bool
	// Percentile of the shard's sliding latency window used as the
	// hedge deadline (0 < p < 1; default 0.9).
	Percentile float64
	// MinDelay floors the deadline so cheap cache-hit queries never
	// hedge. Default 1ms.
	MinDelay time.Duration
	// Window is the sliding latency window length. Default 64.
	Window int
}

func (h HedgeOptions) withDefaults() HedgeOptions {
	if h.Percentile <= 0 || h.Percentile >= 1 {
		h.Percentile = 0.9
	}
	if h.MinDelay <= 0 {
		h.MinDelay = time.Millisecond
	}
	if h.Window <= 0 {
		h.Window = 64
	}
	return h
}

// AdmissionOptions tunes the front-door per-tenant token buckets.
type AdmissionOptions struct {
	// Enabled turns admission control on.
	Enabled bool
	// Rate is the sustained queries/sec each tenant may issue.
	Rate float64
	// Burst is the bucket capacity (instantaneous burst). Default
	// max(Rate, 1).
	Burst float64
}

// Options configures a Router.
type Options struct {
	// Shards is the number of contiguous file-range partitions
	// (default 1).
	Shards int
	// Replicas is the number of workers per shard (default 1). All
	// replicas serve the same file range; hedging picks among them.
	Replicas int
	// IndexDir is the key prefix holding index files and the
	// metadata table, exactly as core.Config.IndexDir.
	IndexDir string
	// Clock is the world clock (nil = real wall clock).
	Clock simtime.Clock
	// Timeout is the per-worker index timeout (core.Config.Timeout).
	Timeout time.Duration
	// SearchWidth caps each worker's request fan-out
	// (core.Config.SearchWidth).
	SearchWidth int

	// CacheBytes is the total byte-cache budget split evenly across
	// all Shards×Replicas workers (each worker gets its own
	// objectstore.NewStack cache layer). 0 means
	// objectstore.DefaultCacheBytes total; negative disables the
	// per-worker byte caches entirely.
	CacheBytes int64
	// CoalesceGap is each worker cache's ranged-GET merge threshold
	// (core.Config.CoalesceGap conventions).
	CoalesceGap int64
	// DecodedCacheBytes is the total decoded-object cache budget
	// split across workers (0 = default total; negative disables).
	DecodedCacheBytes int64
	// PlanCacheTTLVersions and ProbeBatchBytes are passed through to
	// every worker's core.Config unchanged.
	PlanCacheTTLVersions int
	ProbeBatchBytes      int64

	// Hedge tunes hedged replica requests.
	Hedge HedgeOptions
	// Admission tunes per-tenant rate limits.
	Admission AdmissionOptions

	// ReplicaWrap, when non-nil, wraps each worker's store before the
	// worker's cache stack is layered on — the test and bench hook
	// for per-replica fault or latency injection.
	ReplicaWrap func(shard, replica int, s objectstore.Store) objectstore.Store
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	o.Hedge = o.Hedge.withDefaults()
	return o
}

// splitBudget divides a total cache budget across n workers using the
// 0=default / negative=disabled convention.
func splitBudget(total, def int64, n int) int64 {
	if total < 0 {
		return -1
	}
	if total == 0 {
		total = def
	}
	per := total / int64(n)
	if per < 1 {
		per = 1
	}
	return per
}
