package shard

import (
	"sort"

	"rottnest/internal/core"
	"rottnest/internal/lake"
)

// Part is one shard's slice of a snapshot: the half-open path range
// the shard serves plus the files and bytes that fall inside it.
type Part struct {
	Range core.FileRange
	Files int
	Bytes int64
}

// Partition splits a snapshot's files into n contiguous, byte-balanced
// path ranges. The returned parts are always exactly n; ranges of
// non-empty parts are disjoint and cover the full path space
// ("" → … → ""), so every file — including files committed after the
// partitioning decision — falls in exactly one part. Empty parts (n
// larger than the file count, or a giant file absorbing several
// targets) carry a range that matches nothing.
//
// Balancing is greedy over file sizes in sorted path order: the i-th
// boundary is the first file at which the cumulative size reaches
// ceil(total*i/n). Files with unknown size weigh 1 so empty stats
// still balance by count.
func Partition(files []lake.DataFile, n int) []Part {
	if n < 1 {
		n = 1
	}
	sorted := append([]lake.DataFile(nil), files...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	prefix := make([]int64, len(sorted)+1)
	for i, f := range sorted {
		w := f.Size
		if w <= 0 {
			w = 1
		}
		prefix[i+1] = prefix[i] + w
	}
	total := prefix[len(sorted)]

	cuts := make([]int, n+1)
	cuts[n] = len(sorted)
	for i := 1; i < n; i++ {
		target := (total*int64(i) + int64(n) - 1) / int64(n)
		j := sort.Search(len(prefix), func(k int) bool { return prefix[k] >= target })
		if j > len(sorted) {
			j = len(sorted)
		}
		if j < cuts[i-1] {
			j = cuts[i-1]
		}
		cuts[i] = j
	}

	parts := make([]Part, n)
	prevEnd := ""
	for i := 0; i < n; i++ {
		lo, hi := cuts[i], cuts[i+1]
		p := &parts[i]
		p.Files = hi - lo
		for k := lo; k < hi; k++ {
			p.Bytes += sorted[k].Size
		}
		if p.Files == 0 {
			// Start == End (non-empty) can never contain a path.
			s := prevEnd
			if s == "" {
				s = "\x00"
			}
			p.Range = core.FileRange{Start: s, End: s}
			continue
		}
		end := ""
		if hi < len(sorted) {
			end = sorted[hi].Path
		}
		p.Range = core.FileRange{Start: prevEnd, End: end}
		prevEnd = end
	}
	return parts
}
