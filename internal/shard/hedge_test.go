package shard

import (
	"context"
	"sync"
	"testing"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

// hookStore wraps a store and runs hook(ctx) before every request —
// the per-replica latency-injection and context-capture hook the
// hedge tests use.
type hookStore struct {
	inner objectstore.Store
	hook  func(ctx context.Context)
}

func (h *hookStore) Put(ctx context.Context, key string, data []byte) error {
	h.hook(ctx)
	return h.inner.Put(ctx, key, data)
}
func (h *hookStore) PutIfAbsent(ctx context.Context, key string, data []byte) error {
	h.hook(ctx)
	return h.inner.PutIfAbsent(ctx, key, data)
}
func (h *hookStore) Get(ctx context.Context, key string) ([]byte, error) {
	h.hook(ctx)
	return h.inner.Get(ctx, key)
}
func (h *hookStore) GetRange(ctx context.Context, key string, offset, length int64) ([]byte, error) {
	h.hook(ctx)
	return h.inner.GetRange(ctx, key, offset, length)
}
func (h *hookStore) Head(ctx context.Context, key string) (objectstore.ObjectInfo, error) {
	h.hook(ctx)
	return h.inner.Head(ctx, key)
}
func (h *hookStore) List(ctx context.Context, prefix string) ([]objectstore.ObjectInfo, error) {
	h.hook(ctx)
	return h.inner.List(ctx, prefix)
}
func (h *hookStore) Delete(ctx context.Context, key string) error {
	h.hook(ctx)
	return h.inner.Delete(ctx, key)
}

// ctxRecorder remembers the last context a replica's store saw, so
// the test can assert the losing attempt's context was cancelled.
type ctxRecorder struct {
	mu   sync.Mutex
	last context.Context
}

func (c *ctxRecorder) record(ctx context.Context) {
	c.mu.Lock()
	c.last = ctx
	c.mu.Unlock()
}

func (c *ctxRecorder) lastCtx() context.Context {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// TestHedgeDeterminism drives the hedging machinery on the virtual
// clock with fully deterministic per-replica latencies (no latency
// model, only fixed per-request charges: replica 0 fast, replica 1
// slow) and asserts the exact modeled timeline:
//
//   - query 1 lands on the fast replica (round-robin), cannot hedge
//     (empty window), and seeds the latency window;
//   - query 2 lands on the slow replica, hedges at exactly the
//     configured percentile of the window — which is query 1's
//     duration — and the hedge (fast replica again) wins, making the
//     shard latency exactly deadline + hedge duration;
//   - the loser's context is cancelled, the winner's is not;
//   - router.hedges / router.hedge_wins match the trace's hedged
//     span attributes.
func TestHedgeDeterminism(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	mem := objectstore.NewMemStore(clock)
	table, err := lake.CreateWith(ctx, mem, "lake", uuidSchema, lake.OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	builder := core.NewClient(table, core.Config{IndexDir: "rottnest", Clock: clock})
	gen := workload.NewUUIDGen(3)
	keys := gen.Batch(400)
	batch := parquet.NewBatch(uuidSchema)
	ids := make([][]byte, len(keys))
	payloads := make([][]byte, len(keys))
	for i := range keys {
		k := keys[i]
		ids[i] = k[:]
		payloads[i] = []byte("p")
	}
	batch.Cols[0] = parquet.ColumnValues{Bytes: ids}
	batch.Cols[1] = parquet.ColumnValues{Bytes: payloads}
	if _, err := table.Append(ctx, batch, parquet.WriterOptions{RowGroupRows: 256, PageBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	if _, err := builder.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}

	const fastDelay = 2 * time.Millisecond
	const slowDelay = 100 * time.Millisecond
	recorders := [2]*ctxRecorder{{}, {}}
	rt, err := New(ctx, mem, "lake", Options{
		Shards:   1,
		Replicas: 2,
		IndexDir: "rottnest",
		Clock:    clock,
		// All caches off: both replicas repeat identical request
		// sequences, so durations are exactly reproducible.
		CacheBytes:           -1,
		DecodedCacheBytes:    -1,
		PlanCacheTTLVersions: -1,
		ProbeBatchBytes:      -1,
		Hedge:                HedgeOptions{Enabled: true, Percentile: 0.5, MinDelay: time.Millisecond, Window: 8},
		ReplicaWrap: func(shard, replica int, s objectstore.Store) objectstore.Store {
			delay := fastDelay
			if replica == 1 {
				delay = slowDelay
			}
			rec := recorders[replica]
			return &hookStore{inner: s, hook: func(ctx context.Context) {
				rec.record(ctx)
				simtime.Charge(ctx, delay)
			}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	k := keys[17]
	q := core.Query{Column: "id", UUID: &k, Snapshot: -1}

	// Query 1: primary = replica 0 (fast), empty window, no hedge.
	res1, tree1, err := rt.Trace(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.Hedges != 0 {
		t.Fatalf("query 1 hedged: %+v", res1.Stats)
	}
	shard1 := tree1.Find("router.shard")
	if shard1 == nil {
		t.Fatal("no shard span in query 1")
	}
	fastDur := shard1.Virtual
	if fastDur <= 0 {
		t.Fatalf("fast attempt duration = %v", fastDur)
	}
	attempts1 := tree1.FindAll("router.attempt")
	if len(attempts1) != 1 || attempts1[0].Attrs["role"] != "primary" || attempts1[0].Attrs["replica"] != 0 {
		t.Fatalf("query 1 attempts = %+v", attempts1)
	}

	// Query 2: primary = replica 1 (slow). The hedge must fire at
	// exactly the 0.5-percentile of the one-sample window — query
	// 1's duration — and the fast hedge must win.
	res2, tree2, err := rt.Trace(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Hedges != 1 || res2.Stats.HedgeWins != 1 {
		t.Fatalf("query 2 stats = %+v, want 1 hedge, 1 win", res2.Stats)
	}
	shard2 := tree2.Find("router.shard")
	if shard2 == nil || shard2.Attrs["hedged"] != true || shard2.Attrs["winner"] != "hedge" {
		t.Fatalf("query 2 shard span attrs = %+v", shard2.Attrs)
	}
	deadline := time.Duration(shard2.Attrs["deadline_ns"].(int64))
	if deadline != fastDur {
		t.Fatalf("hedge deadline %v != window percentile %v", deadline, fastDur)
	}
	attempts2 := tree2.FindAll("router.attempt")
	if len(attempts2) != 2 {
		t.Fatalf("query 2 has %d attempts, want 2", len(attempts2))
	}
	var hedgeDur, primaryDur time.Duration
	for _, a := range attempts2 {
		switch a.Attrs["role"] {
		case "primary":
			if a.Attrs["replica"] != 1 {
				t.Fatalf("primary attempt on replica %v, want 1", a.Attrs["replica"])
			}
			primaryDur = a.Virtual
		case "hedge":
			if a.Attrs["replica"] != 0 {
				t.Fatalf("hedge attempt on replica %v, want 0", a.Attrs["replica"])
			}
			hedgeDur = a.Virtual
		}
	}
	// The fast replica repeats the identical request sequence with
	// caches off, so the hedge attempt's duration equals query 1's.
	if hedgeDur != fastDur {
		t.Fatalf("hedge attempt %v != query-1 fast attempt %v", hedgeDur, fastDur)
	}
	if primaryDur <= deadline {
		t.Fatalf("slow primary %v should overrun deadline %v", primaryDur, deadline)
	}
	// Modeled shard latency: the hedge fired at the deadline and ran
	// to completion — exactly deadline + hedge duration.
	if want := deadline + hedgeDur; shard2.Virtual != want {
		t.Fatalf("shard latency %v != deadline+hedge %v", shard2.Virtual, want)
	}

	// The loser (slow primary, replica 1) was cancelled; the winner
	// (fast hedge, replica 0) was not.
	if err := recorders[1].lastCtx().Err(); err != context.Canceled {
		t.Fatalf("loser context err = %v, want Canceled", err)
	}
	if err := recorders[0].lastCtx().Err(); err != nil {
		t.Fatalf("winner context err = %v, want nil", err)
	}

	// Counters match the trace: one hedged shard span, one hedge win.
	m := rt.Metrics()
	hedgedSpans, wonSpans := 0, 0
	for _, s := range append(tree1.FindAll("router.shard"), tree2.FindAll("router.shard")...) {
		if s.Attrs["hedged"] == true {
			hedgedSpans++
			if s.Attrs["winner"] == "hedge" {
				wonSpans++
			}
		}
	}
	if m.Counter("router.hedges") != int64(hedgedSpans) || m.Counter("router.hedge_wins") != int64(wonSpans) {
		t.Fatalf("counters hedges=%d wins=%d, trace says %d/%d",
			m.Counter("router.hedges"), m.Counter("router.hedge_wins"), hedgedSpans, wonSpans)
	}
	if m.Counter("router.hedges") != 1 || m.Counter("router.hedge_wins") != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", m.Counter("router.hedges"), m.Counter("router.hedge_wins"))
	}
}
