package shard

import (
	"fmt"
	"testing"

	"rottnest/internal/lake"
)

func mkFiles(sizes ...int64) []lake.DataFile {
	files := make([]lake.DataFile, len(sizes))
	for i, s := range sizes {
		files[i] = lake.DataFile{Path: fmt.Sprintf("data/%05d.parquet", i), Size: s}
	}
	return files
}

// checkPartition asserts the structural invariants every partitioning
// must satisfy: exactly n parts, every file in exactly one part's
// range, per-part file counts matching range membership, and empty
// parts matching nothing.
func checkPartition(t *testing.T, files []lake.DataFile, n int) []Part {
	t.Helper()
	parts := Partition(files, n)
	if len(parts) != n {
		t.Fatalf("Partition returned %d parts, want %d", len(parts), n)
	}
	totalFiles := 0
	for _, f := range files {
		owners := 0
		for _, p := range parts {
			if p.Range.Contains(f.Path) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("file %q contained by %d part ranges, want 1", f.Path, owners)
		}
	}
	for i, p := range parts {
		got := 0
		for _, f := range files {
			if p.Range.Contains(f.Path) {
				got++
			}
		}
		if got != p.Files {
			t.Fatalf("part %d: range contains %d files, Files says %d", i, got, p.Files)
		}
		totalFiles += p.Files
	}
	if totalFiles != len(files) {
		t.Fatalf("parts cover %d files, want %d", totalFiles, len(files))
	}
	return parts
}

func TestPartitionEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		files []lake.DataFile
		n     int
	}{
		{"no files", nil, 3},
		{"one file one shard", mkFiles(100), 1},
		{"n greater than file count", mkFiles(10, 10), 5},
		{"n equals file count", mkFiles(1, 1, 1, 1), 4},
		{"one giant file", mkFiles(1, 1000, 1, 1, 1), 4},
		{"giant file first", mkFiles(1000, 1, 1, 1), 3},
		{"giant file last", mkFiles(1, 1, 1, 1000), 3},
		{"unknown sizes", mkFiles(0, 0, 0, 0, 0, 0), 3},
		{"balanced", mkFiles(10, 10, 10, 10, 10, 10, 10, 10), 4},
		{"single shard", mkFiles(5, 5, 5), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			parts := checkPartition(t, tc.files, tc.n)
			// A later file (committed after partitioning) still lands
			// in exactly one non-empty part: non-empty ranges chain
			// "" → … → "".
			if len(tc.files) > 0 {
				owners := 0
				for _, p := range parts {
					if p.Range.Contains("data/99999.parquet") {
						owners++
					}
				}
				if owners != 1 {
					t.Fatalf("future path contained by %d ranges, want 1", owners)
				}
			}
		})
	}
}

func TestPartitionBalance(t *testing.T) {
	// Equal-size files split evenly.
	parts := checkPartition(t, mkFiles(10, 10, 10, 10, 10, 10, 10, 10), 4)
	for i, p := range parts {
		if p.Files != 2 || p.Bytes != 20 {
			t.Fatalf("part %d = %+v, want 2 files / 20 bytes", i, p)
		}
	}

	// A giant file absorbs its shard; the rest still spread.
	parts = checkPartition(t, mkFiles(1, 1000, 1, 1, 1), 4)
	empties := 0
	for _, p := range parts {
		if p.Files == 0 {
			empties++
			if p.Range.Contains("data/00000.parquet") || p.Range.Contains("") {
				t.Fatalf("empty part range %+v contains paths", p.Range)
			}
		}
	}
	if empties == 0 {
		t.Fatalf("expected at least one empty part around the giant file, got %+v", parts)
	}
}

func TestPartitionSingleShardIsFullRange(t *testing.T) {
	parts := Partition(mkFiles(1, 2, 3), 1)
	if parts[0].Range.Start != "" || parts[0].Range.End != "" {
		t.Fatalf("single-shard range = %+v, want full", parts[0].Range)
	}
	if parts[0].Files != 3 || parts[0].Bytes != 6 {
		t.Fatalf("single-shard part = %+v", parts[0])
	}
}

func TestFileRangeContains(t *testing.T) {
	full := Partition(mkFiles(1), 1)[0].Range
	if !full.Contains("anything") || !full.Contains("") {
		t.Fatal("full range should contain everything")
	}
}
