package shard

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"rottnest/internal/insitu"
)

// decodeMergeInput deterministically expands fuzz bytes into
// per-shard match lists plus a k: paths and rows come from a small
// alphabet so duplicates across "shards" are common, and scores are
// derived from the same byte so a (path, row) pair always scores
// consistently within one list but may differ across lists
// (replica disagreement exercises keep-best dedup).
func decodeMergeInput(data []byte) (lists [][]insitu.Match, k int) {
	if len(data) == 0 {
		return nil, 0
	}
	k = int(data[0] % 8)
	data = data[1:]
	nLists := 1 + k%4
	lists = make([][]insitu.Match, nLists)
	for i, b := range data {
		li := i % nLists
		path := fmt.Sprintf("f%d", b%5)
		row := int64(b / 5 % 7)
		score := float64(b%11) / 3
		lists[li] = append(lists[li], insitu.Match{
			Path:  path,
			Row:   row,
			Value: []byte{b},
			Score: score,
		})
	}
	return lists, k
}

// refExact is the merge oracle: plain concatenation, sort by
// (path, row), drop duplicate keys, truncate.
func refExact(lists [][]insitu.Match, k int) []insitu.Match {
	var all []insitu.Match
	for _, l := range lists {
		all = append(all, l...)
	}
	insitu.SortMatches(all)
	var out []insitu.Match
	seen := map[[2]interface{}]int{}
	for _, m := range all {
		key := [2]interface{}{m.Path, m.Row}
		if i, ok := seen[key]; ok {
			if m.Score < out[i].Score {
				out[i] = m
			}
			continue
		}
		seen[key] = len(out)
		out = append(out, m)
	}
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// refTopK is the top-k oracle: global keep-best dedup, sort by
// (score, path, row), truncate.
func refTopK(lists [][]insitu.Match, k int) []insitu.Match {
	best := map[[2]interface{}]insitu.Match{}
	for _, l := range lists {
		for _, m := range l {
			key := [2]interface{}{m.Path, m.Row}
			if old, ok := best[key]; !ok || m.Score < old.Score {
				best[key] = m
			}
		}
	}
	var out []insitu.Match
	for _, m := range best {
		out = append(out, m)
	}
	insitu.SortByScore(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func matchKeys(ms []insitu.Match) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = fmt.Sprintf("%s:%d:%g", m.Path, m.Row, m.Score)
	}
	return out
}

func TestMergeExactBasics(t *testing.T) {
	a := []insitu.Match{{Path: "a", Row: 1}, {Path: "a", Row: 3}}
	b := []insitu.Match{{Path: "a", Row: 2}, {Path: "b", Row: 0}}
	got := MergeExact([][]insitu.Match{b, a, nil}, 0)
	want := []insitu.Match{{Path: "a", Row: 1}, {Path: "a", Row: 2}, {Path: "a", Row: 3}, {Path: "b", Row: 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %v, want %v", matchKeys(got), matchKeys(want))
	}
	if got := MergeExact([][]insitu.Match{a, a}, 0); len(got) != 2 {
		t.Fatalf("duplicate lists not deduped: %v", matchKeys(got))
	}
	if got := MergeExact([][]insitu.Match{a, b}, 3); len(got) != 3 {
		t.Fatalf("k truncation: got %d", len(got))
	}
	if got := MergeExact(nil, 5); got != nil {
		t.Fatalf("empty merge = %v, want nil", got)
	}
}

func TestMergeTopKKeepsBestScore(t *testing.T) {
	a := []insitu.Match{{Path: "a", Row: 1, Score: 2.0}}
	b := []insitu.Match{{Path: "a", Row: 1, Score: 1.0}, {Path: "b", Row: 2, Score: 3.0}}
	got := MergeTopK([][]insitu.Match{a, b}, 0)
	if len(got) != 2 || got[0].Score != 1.0 || got[0].Path != "a" {
		t.Fatalf("top-k merge = %v", matchKeys(got))
	}
	if got := MergeTopK([][]insitu.Match{a, b}, 1); len(got) != 1 || got[0].Path != "a" {
		t.Fatalf("k=1 merge = %v", matchKeys(got))
	}
}

// FuzzShardMerge checks the merge laws on arbitrary per-shard result
// sets: MergeExact must equal sort-dedup of the concatenation, and
// MergeTopK must equal the global keep-best top-k. Both must be
// insensitive to shard order.
func FuzzShardMerge(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{0, 255, 254, 1, 1, 1, 60, 61, 62})
	f.Fuzz(func(t *testing.T, data []byte) {
		lists, k := decodeMergeInput(data)

		got := MergeExact(lists, k)
		want := refExact(lists, k)
		if !reflect.DeepEqual(matchKeys(got), matchKeys(want)) {
			t.Fatalf("MergeExact = %v, want %v", matchKeys(got), matchKeys(want))
		}
		// Shard order must not matter.
		rev := make([][]insitu.Match, len(lists))
		for i := range lists {
			rev[i] = lists[len(lists)-1-i]
		}
		if got2 := MergeExact(rev, k); !reflect.DeepEqual(matchKeys(got2), matchKeys(got)) {
			t.Fatalf("MergeExact order-sensitive: %v vs %v", matchKeys(got2), matchKeys(got))
		}

		gotK := MergeTopK(lists, k)
		wantK := refTopK(lists, k)
		if !reflect.DeepEqual(matchKeys(gotK), matchKeys(wantK)) {
			t.Fatalf("MergeTopK = %v, want %v", matchKeys(gotK), matchKeys(wantK))
		}
		// The merged exact output must be sorted and duplicate-free.
		for i := 1; i < len(got); i++ {
			if !(got[i-1].Path < got[i].Path || (got[i-1].Path == got[i].Path && got[i-1].Row < got[i].Row)) {
				t.Fatalf("MergeExact not strictly ordered at %d: %v", i, matchKeys(got))
			}
		}
		if !sort.SliceIsSorted(gotK, func(i, j int) bool { return gotK[i].Score < gotK[j].Score }) {
			t.Fatalf("MergeTopK not score-ordered: %v", matchKeys(gotK))
		}
	})
}
