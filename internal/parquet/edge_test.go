package parquet

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"rottnest/internal/objectstore"
)

func TestEmptyFileRoundTrip(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	w := NewFileWriter(testSchema, WriterOptions{})
	data, meta, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumRows != 0 || len(meta.RowGroups) != 0 {
		t.Fatalf("meta = %+v", meta)
	}
	store.Put(ctx, "empty.rpq", data)
	got, err := ReadFileMeta(ctx, store, "empty.rpq")
	if err != nil || got.NumRows != 0 {
		t.Fatalf("ReadFileMeta: %+v, %v", got, err)
	}
	batch, _, err := ReadAll(ctx, store, "empty.rpq")
	if err != nil || batch.NumRows() != 0 {
		t.Fatalf("ReadAll: %d rows, %v", batch.NumRows(), err)
	}
}

func TestSingleRowFile(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	b := testBatch(t, 1, 42)
	meta, tables, err := WriteFile(ctx, store, "one.rpq", b, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumRows != 1 || len(meta.RowGroups) != 1 {
		t.Fatalf("meta = %+v", meta)
	}
	for ci := range testSchema.Columns {
		if len(tables[ci]) != 1 || tables[ci][0].NumValues != 1 {
			t.Fatalf("column %d page table = %+v", ci, tables[ci])
		}
	}
	got, _, err := ReadAll(ctx, store, "one.rpq")
	if err != nil || got.NumRows() != 1 {
		t.Fatalf("ReadAll: %v", err)
	}
}

func TestValueLargerThanPageTarget(t *testing.T) {
	// A single value bigger than PageBytes must land in a page of its
	// own and round-trip intact.
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	schema := MustSchema(Column{Name: "blob", Type: TypeByteArray})
	big := bytes.Repeat([]byte("xyz"), 100000) // 300KB against a 4KB target
	b := NewBatch(schema)
	b.Cols[0] = ColumnValues{Bytes: [][]byte{[]byte("small"), big, []byte("tail")}}
	_, tables, err := WriteFile(ctx, store, "big.rpq", b, WriterOptions{PageBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0]) < 2 {
		t.Fatalf("pages = %d", len(tables[0]))
	}
	vals, _, _, err := ScanColumn(ctx, store, "big.rpq", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vals.Bytes[1], big) {
		t.Fatal("big value corrupted")
	}
}

func TestDisableStatsAndDict(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	vals := make([][]byte, 500)
	for i := range vals {
		vals[i] = []byte("repeated")
	}
	schema := MustSchema(Column{Name: "v", Type: TypeByteArray})
	b := NewBatch(schema)
	b.Cols[0] = ColumnValues{Bytes: vals}
	meta, _, err := WriteFile(ctx, store, "nostats.rpq", b, WriterOptions{DisableStats: true, DisableDict: true})
	if err != nil {
		t.Fatal(err)
	}
	chunk := meta.RowGroups[0].Chunks[0]
	if chunk.Min != nil || chunk.Max != nil {
		t.Fatalf("stats present despite DisableStats: %+v", chunk)
	}
	got, _, _, err := ScanColumn(ctx, store, "nostats.rpq", 0)
	if err != nil || got.Len() != 500 {
		t.Fatalf("scan: %d, %v", got.Len(), err)
	}
}

func TestBoolColumnOddCounts(t *testing.T) {
	// Bit-packing across non-multiple-of-8 page boundaries.
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	schema := MustSchema(Column{Name: "flag", Type: TypeBool})
	for _, n := range []int{1, 7, 8, 9, 63, 65} {
		bools := make([]bool, n)
		for i := range bools {
			bools[i] = i%3 == 0
		}
		b := NewBatch(schema)
		b.Cols[0] = ColumnValues{Bools: bools}
		if _, _, err := WriteFile(ctx, store, "bools.rpq", b, WriterOptions{PageBytes: 4}); err != nil {
			t.Fatal(err)
		}
		got, _, _, err := ScanColumn(ctx, store, "bools.rpq", 0)
		if err != nil || got.Len() != n {
			t.Fatalf("n=%d: %d, %v", n, got.Len(), err)
		}
		for i := range bools {
			if got.Bools[i] != bools[i] {
				t.Fatalf("n=%d row %d", n, i)
			}
		}
	}
}

func TestHugeFooterBeyondSpeculativeRead(t *testing.T) {
	// Thousands of row groups make the footer exceed the 64KB
	// speculative tail; ReadFileMeta must fall back to an exact read.
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	schema := MustSchema(Column{Name: "v", Type: TypeInt64})
	w := NewFileWriter(schema, WriterOptions{RowGroupRows: 2})
	ints := make([]int64, 6000)
	for i := range ints {
		ints[i] = int64(i)
	}
	b := NewBatch(schema)
	b.Cols[0] = ColumnValues{Ints: ints}
	if err := w.Append(b); err != nil {
		t.Fatal(err)
	}
	data, meta, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.RowGroups) != 3000 {
		t.Fatalf("row groups = %d", len(meta.RowGroups))
	}
	store.Put(ctx, "huge.rpq", data)
	got, err := ReadFileMeta(ctx, store, "huge.rpq")
	if err != nil || len(got.RowGroups) != 3000 {
		t.Fatalf("ReadFileMeta: %d groups, %v", len(got.RowGroups), err)
	}
}

func TestFixedLenColumnValidationOnWrite(t *testing.T) {
	schema := MustSchema(Column{Name: "id", Type: TypeFixedLenByteArray, TypeLen: 4})
	w := NewFileWriter(schema, WriterOptions{})
	b := NewBatch(schema)
	b.Cols[0] = ColumnValues{Bytes: [][]byte{[]byte("12345")}} // wrong width
	if err := w.Append(b); err == nil {
		t.Fatal("wrong-width value accepted")
	}
}

func TestColumnValuesHelpers(t *testing.T) {
	v := ColumnValues{Ints: []int64{1, 2, 3, 4}}
	if v.Slice(1, 3).Len() != 2 {
		t.Fatal("Slice")
	}
	v = v.Append(ColumnValues{Ints: []int64{5}})
	if v.Len() != 5 {
		t.Fatal("Append")
	}
	var empty ColumnValues
	if empty.Len() != 0 || empty.Slice(0, 0).Len() != 0 {
		t.Fatal("empty helpers")
	}
	if Type(42).String() == "" || !strings.Contains(Type(42).String(), "42") {
		t.Fatal("unknown type string")
	}
	if TypeByteArray.String() != "BYTE_ARRAY" {
		t.Fatal("type string")
	}
}

func TestStatsMayContainEdges(t *testing.T) {
	// Absent stats: always maybe.
	if !StatsMayContain(nil, nil, []byte("x")) {
		t.Fatal("absent stats must not prune")
	}
	// Value below min pruned; above max pruned; inside kept.
	min, max := []byte("bbb"), []byte("ddd")
	if StatsMayContain(min, max, []byte("aaa")) {
		t.Fatal("below-min kept")
	}
	if StatsMayContain(min, max, []byte("eee")) {
		t.Fatal("above-max kept")
	}
	if !StatsMayContain(min, max, []byte("ccc")) {
		t.Fatal("inside pruned")
	}
	// A value extending a truncated max prefix is kept.
	if !StatsMayContain(min, []byte("ddd"), []byte("ddd-more")) {
		t.Fatal("prefix extension pruned")
	}
}
