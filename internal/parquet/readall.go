package parquet

import (
	"context"

	"rottnest/internal/objectstore"
)

// ReadAll reads every column of a file into a single batch. Lake
// compaction uses it to rewrite small files into large ones; it is a
// full-file scan, not a search path.
func ReadAll(ctx context.Context, store objectstore.Store, key string) (*Batch, *FileMeta, error) {
	meta, err := ReadFileMeta(ctx, store, key)
	if err != nil {
		return nil, nil, err
	}
	batch := NewBatch(meta.Schema)
	for gi := range meta.RowGroups {
		for ci := range meta.Schema.Columns {
			vals, err := ReadColumnChunk(ctx, store, key, meta, gi, ci)
			if err != nil {
				return nil, nil, err
			}
			batch.Cols[ci] = batch.Cols[ci].Append(vals)
		}
	}
	return batch, meta, nil
}
