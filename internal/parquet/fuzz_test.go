package parquet

import (
	"testing"
)

// fuzzColumns covers every physical type the page decoder dispatches
// on, so one corpus exercises all decode paths.
var fuzzColumns = []Column{
	{Name: "b", Type: TypeBool},
	{Name: "i", Type: TypeInt64},
	{Name: "d", Type: TypeDouble},
	{Name: "s", Type: TypeByteArray},
	{Name: "f", Type: TypeFixedLenByteArray, TypeLen: 16},
}

// FuzzPageDecode feeds arbitrary bytes to the page decoder (header
// parse, decompression, value decode) under every column type.
// Corrupted pages must error, never panic or over-allocate.
func FuzzPageDecode(f *testing.F) {
	// Well-formed pages for each type seed the corpus so mutation
	// starts from deep inside the decoders.
	seed := func(col Column, enc Encoding, codec Codec, v ColumnValues) {
		body, err := encodeValues(nil, col, enc, v)
		if err != nil {
			f.Fatal(err)
		}
		compressed, err := compressPage(codec, body)
		if err != nil {
			f.Fatal(err)
		}
		h := pageHeader{
			NumValues:        uint32(v.Len()),
			UncompressedSize: uint32(len(body)),
			CompressedSize:   uint32(len(compressed)),
			Encoding:         enc,
			Codec:            codec,
		}
		f.Add(append(h.append(nil), compressed...))
	}
	seed(fuzzColumns[1], EncodingPlain, CodecNone, ColumnValues{Ints: []int64{1, 2, 3, -7}})
	seed(fuzzColumns[1], EncodingDelta, CodecFlate, ColumnValues{Ints: []int64{10, 11, 12}})
	seed(fuzzColumns[3], EncodingDict, CodecFlate, ColumnValues{Bytes: [][]byte{[]byte("alpha"), []byte("beta"), []byte("alpha")}})
	seed(fuzzColumns[4], EncodingPlain, CodecNone, ColumnValues{Bytes: [][]byte{
		[]byte("0123456789abcdef"), []byte("fedcba9876543210"),
	}})
	f.Add([]byte{})
	f.Add(make([]byte, pageHeaderFixedSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, col := range fuzzColumns {
			// Dict- and delta-encoded pages dispatch on the header's
			// encoding, so a successful decode need not match the
			// column's physical type; the only contract on corrupt
			// input is error-not-panic.
			decodePage(col, data)
		}
	})
}
