package parquet

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"rottnest/internal/objectstore"
)

func benchBatch(n int) *Batch {
	rng := rand.New(rand.NewSource(1))
	b := NewBatch(testSchema)
	ints := make([]int64, n)
	doubles := make([]float64, n)
	bools := make([]bool, n)
	bodies := make([][]byte, n)
	ids := make([][]byte, n)
	for i := 0; i < n; i++ {
		ints[i] = int64(i)
		doubles[i] = rng.NormFloat64()
		bools[i] = i%2 == 0
		bodies[i] = []byte(fmt.Sprintf("log line %d with some filler text payload", i))
		id := make([]byte, 16)
		rng.Read(id)
		ids[i] = id
	}
	b.Cols[0] = ColumnValues{Ints: ints}
	b.Cols[1] = ColumnValues{Doubles: doubles}
	b.Cols[2] = ColumnValues{Bools: bools}
	b.Cols[3] = ColumnValues{Bytes: bodies}
	b.Cols[4] = ColumnValues{Bytes: ids}
	return b
}

// BenchmarkWriteFile measures columnar encode+compress throughput.
func BenchmarkWriteFile(b *testing.B) {
	batch := benchBatch(20000)
	var bytes int64
	for _, v := range batch.Cols[3].Bytes {
		bytes += int64(len(v))
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := NewFileWriter(testSchema, WriterOptions{})
		if err := w.Append(batch); err != nil {
			b.Fatal(err)
		}
		if _, _, err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadColumnChunk measures the traditional whole-chunk read
// path.
func BenchmarkReadColumnChunk(b *testing.B) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	meta, _, err := WriteFile(ctx, store, "f.rpq", benchBatch(20000), WriterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadColumnChunk(ctx, store, "f.rpq", meta, 0, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadSinglePage measures the optimized page-granular read
// path (one ranged GET + decode).
func BenchmarkReadSinglePage(b *testing.B) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	_, tables, err := WriteFile(ctx, store, "f.rpq", benchBatch(20000), WriterOptions{})
	if err != nil {
		b.Fatal(err)
	}
	table := tables[3]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadPages(ctx, store, "f.rpq", testSchema.Columns[3], table[i%len(table):i%len(table)+1]); err != nil {
			b.Fatal(err)
		}
	}
}
