package parquet

import (
	"context"
	"fmt"

	"rottnest/internal/objectstore"
)

// ReadColumnChunk is the traditional read path: it downloads the named
// row group's entire column chunk in one ranged GET and decodes every
// page in it. For wide columns this transfers tens to hundreds of MB
// to answer even single-row lookups — the read-granularity problem of
// Section II-B.
func ReadColumnChunk(ctx context.Context, store objectstore.Store, key string, meta *FileMeta, rowGroup, column int) (ColumnValues, error) {
	if rowGroup < 0 || rowGroup >= len(meta.RowGroups) {
		return ColumnValues{}, fmt.Errorf("parquet: row group %d out of range", rowGroup)
	}
	group := meta.RowGroups[rowGroup]
	if column < 0 || column >= len(group.Chunks) {
		return ColumnValues{}, fmt.Errorf("parquet: column %d out of range", column)
	}
	chunk := group.Chunks[column]
	raw, err := store.GetRange(ctx, key, chunk.Offset, chunk.Size)
	if err != nil {
		return ColumnValues{}, fmt.Errorf("parquet: read chunk %s[%d][%d]: %w", key, rowGroup, column, err)
	}
	return decodeChunk(meta.Schema.Columns[column], raw, chunk.NumPages)
}

// decodeChunk parses the concatenated pages of one chunk.
func decodeChunk(col Column, raw []byte, numPages int) (ColumnValues, error) {
	var out ColumnValues
	pos := 0
	for p := 0; p < numPages; p++ {
		h, n, err := parsePageHeader(raw[pos:])
		if err != nil {
			return ColumnValues{}, err
		}
		total := n + int(h.CompressedSize)
		if pos+total > len(raw) {
			return ColumnValues{}, fmt.Errorf("parquet: chunk truncated at page %d", p)
		}
		vals, err := decodePage(col, raw[pos:pos+total])
		if err != nil {
			return ColumnValues{}, err
		}
		out = out.Append(vals)
		pos += total
	}
	return out, nil
}

// Page is one decoded data page plus its location info.
type Page struct {
	Info   PageInfo
	Values ColumnValues
}

// ReadPages is the Rottnest optimized read path (Section V-A): given
// page locations from an externally stored PageTable, it fetches
// exactly those pages with parallel ranged GETs — no footer read, no
// chunk read — and decodes them. Pages are returned in the order of
// the infos argument.
func ReadPages(ctx context.Context, store objectstore.Store, key string, col Column, infos []PageInfo) ([]Page, error) {
	if len(infos) == 0 {
		return nil, nil
	}
	reqs := make([]objectstore.RangeRequest, len(infos))
	for i, info := range infos {
		reqs[i] = objectstore.RangeRequest{Key: key, Offset: info.Offset, Length: info.Size}
	}
	raws, err := objectstore.FanGet(ctx, store, reqs)
	if err != nil {
		return nil, fmt.Errorf("parquet: read pages of %s: %w", key, err)
	}
	pages := make([]Page, len(infos))
	for i, raw := range raws {
		vals, err := decodePage(col, raw)
		if err != nil {
			return nil, fmt.Errorf("parquet: decode page %d of %s: %w", infos[i].Ordinal, key, err)
		}
		pages[i] = Page{Info: infos[i], Values: vals}
	}
	return pages, nil
}

// ScanColumn reads one full column of a file — every chunk of every
// row group — returning the concatenated values and the reconstructed
// PageTable. Indexers use it: building an index requires reading all
// the data anyway, and recording page boundaries along the way is how
// Rottnest obtains the page table it stores in the index.
func ScanColumn(ctx context.Context, store objectstore.Store, key string, column int) (ColumnValues, PageTable, *FileMeta, error) {
	meta, err := ReadFileMeta(ctx, store, key)
	if err != nil {
		return ColumnValues{}, nil, nil, err
	}
	if column < 0 || column >= len(meta.Schema.Columns) {
		return ColumnValues{}, nil, nil, fmt.Errorf("parquet: column %d out of range", column)
	}
	col := meta.Schema.Columns[column]
	var out ColumnValues
	var table PageTable
	var fileRow int64
	ordinal := 0
	for gi, group := range meta.RowGroups {
		chunk := group.Chunks[column]
		raw, err := store.GetRange(ctx, key, chunk.Offset, chunk.Size)
		if err != nil {
			return ColumnValues{}, nil, nil, fmt.Errorf("parquet: scan %s group %d: %w", key, gi, err)
		}
		pos := 0
		for p := 0; p < chunk.NumPages; p++ {
			h, n, err := parsePageHeader(raw[pos:])
			if err != nil {
				return ColumnValues{}, nil, nil, err
			}
			total := n + int(h.CompressedSize)
			if pos+total > len(raw) {
				return ColumnValues{}, nil, nil, fmt.Errorf("parquet: chunk truncated at page %d", p)
			}
			vals, err := decodePage(col, raw[pos:pos+total])
			if err != nil {
				return ColumnValues{}, nil, nil, err
			}
			table = append(table, PageInfo{
				Ordinal:   ordinal,
				Offset:    chunk.Offset + int64(pos),
				Size:      int64(total),
				NumValues: vals.Len(),
				FirstRow:  fileRow,
			})
			out = out.Append(vals)
			fileRow += int64(vals.Len())
			ordinal++
			pos += total
		}
	}
	return out, table, meta, nil
}

// ChunkForColumn returns the column chunks of the given column across
// all row groups, for brute-force planning.
func ChunkForColumn(meta *FileMeta, column int) []ChunkMeta {
	chunks := make([]ChunkMeta, 0, len(meta.RowGroups))
	for _, g := range meta.RowGroups {
		chunks = append(chunks, g.Chunks[column])
	}
	return chunks
}
