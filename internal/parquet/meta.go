package parquet

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"rottnest/internal/objectstore"
)

// magic identifies files written by this package.
var magic = []byte("RPQ1")

// ChunkMeta describes one column chunk within a row group: its byte
// extent and min/max statistics — the metadata a traditional reader
// uses for predicate pushdown.
type ChunkMeta struct {
	// Column is the schema index of the chunk's column.
	Column int `json:"column"`
	// Offset is the absolute byte offset of the chunk's first page.
	Offset int64 `json:"offset"`
	// Size is the total encoded chunk size in bytes.
	Size int64 `json:"size"`
	// NumPages is the number of data pages in the chunk.
	NumPages int `json:"num_pages"`
	// Min and Max are chunk-level statistics (truncated byte
	// representations; see stats.go). Empty means absent.
	Min []byte `json:"min,omitempty"`
	Max []byte `json:"max,omitempty"`
}

// RowGroupMeta describes one row group.
type RowGroupMeta struct {
	NumRows int64       `json:"num_rows"`
	Chunks  []ChunkMeta `json:"chunks"`
}

// FileMeta is the footer content of a file.
type FileMeta struct {
	Version   int            `json:"version"`
	Schema    *Schema        `json:"schema"`
	NumRows   int64          `json:"num_rows"`
	RowGroups []RowGroupMeta `json:"row_groups"`
}

// encodeFooter appends [json meta][u32 len][magic] to dst.
func encodeFooter(dst []byte, meta *FileMeta) ([]byte, error) {
	body, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("parquet: encode footer: %w", err)
	}
	dst = append(dst, body...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
	dst = append(dst, magic...)
	return dst, nil
}

// decodeFooterTail parses the trailing 8 bytes of a file and returns
// the footer body length.
func decodeFooterTail(tail []byte) (int, error) {
	if len(tail) < 8 || string(tail[len(tail)-4:]) != string(magic) {
		return 0, fmt.Errorf("parquet: bad magic")
	}
	return int(binary.LittleEndian.Uint32(tail[len(tail)-8:])), nil
}

// parseFooter decodes a footer body.
func parseFooter(body []byte) (*FileMeta, error) {
	var meta FileMeta
	if err := json.Unmarshal(body, &meta); err != nil {
		return nil, fmt.Errorf("parquet: decode footer: %w", err)
	}
	if meta.Schema == nil {
		return nil, fmt.Errorf("parquet: footer missing schema")
	}
	return &meta, nil
}

// ReadFileMeta fetches a file's footer from the store the way a
// traditional Parquet reader does: one suffix-range GET for the tail,
// then (if the speculative tail read did not already cover it) one
// more GET for the footer body. This two-request pattern is exactly
// the footer overhead the Rottnest optimized reader avoids.
func ReadFileMeta(ctx context.Context, store objectstore.Store, key string) (*FileMeta, error) {
	// Speculatively read the last 64 KiB, which covers most footers
	// in one request.
	const speculative = 64 << 10
	tail, err := store.GetRange(ctx, key, -speculative, 0)
	if err != nil {
		return nil, fmt.Errorf("parquet: read footer tail of %s: %w", key, err)
	}
	footerLen, err := decodeFooterTail(tail)
	if err != nil {
		return nil, fmt.Errorf("parquet: %s: %w", key, err)
	}
	if footerLen+8 <= len(tail) {
		body := tail[len(tail)-8-footerLen : len(tail)-8]
		return parseFooter(body)
	}
	body, err := store.GetRange(ctx, key, -int64(footerLen+8), 0)
	if err != nil {
		return nil, fmt.Errorf("parquet: read footer of %s: %w", key, err)
	}
	return parseFooter(body[:footerLen])
}

// ParseFileMeta decodes the footer from a fully in-memory file.
func ParseFileMeta(data []byte) (*FileMeta, error) {
	footerLen, err := decodeFooterTail(data)
	if err != nil {
		return nil, err
	}
	if footerLen+8 > len(data) {
		return nil, fmt.Errorf("parquet: footer length %d exceeds file", footerLen)
	}
	return parseFooter(data[len(data)-8-footerLen : len(data)-8])
}
