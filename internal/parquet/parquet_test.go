package parquet

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"rottnest/internal/objectstore"
)

var testSchema = MustSchema(
	Column{Name: "ts", Type: TypeInt64},
	Column{Name: "score", Type: TypeDouble},
	Column{Name: "ok", Type: TypeBool},
	Column{Name: "body", Type: TypeByteArray},
	Column{Name: "id", Type: TypeFixedLenByteArray, TypeLen: 16},
)

func testBatch(t *testing.T, n int, seed int64) *Batch {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBatch(testSchema)
	ints := make([]int64, n)
	doubles := make([]float64, n)
	bools := make([]bool, n)
	bodies := make([][]byte, n)
	ids := make([][]byte, n)
	for i := 0; i < n; i++ {
		ints[i] = 1700000000 + int64(i)
		doubles[i] = rng.NormFloat64()
		bools[i] = rng.Intn(2) == 0
		bodies[i] = []byte(fmt.Sprintf("row-%d-%x", i, rng.Uint64()))
		id := make([]byte, 16)
		rng.Read(id)
		ids[i] = id
	}
	b.Cols[0] = ColumnValues{Ints: ints}
	b.Cols[1] = ColumnValues{Doubles: doubles}
	b.Cols[2] = ColumnValues{Bools: bools}
	b.Cols[3] = ColumnValues{Bytes: bodies}
	b.Cols[4] = ColumnValues{Bytes: ids}
	return b
}

func colsEqual(t *testing.T, col Column, got, want ColumnValues) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("column %s: got %d values, want %d", col.Name, got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		switch col.Type {
		case TypeBool:
			if got.Bools[i] != want.Bools[i] {
				t.Fatalf("column %s row %d: %v != %v", col.Name, i, got.Bools[i], want.Bools[i])
			}
		case TypeInt64:
			if got.Ints[i] != want.Ints[i] {
				t.Fatalf("column %s row %d: %v != %v", col.Name, i, got.Ints[i], want.Ints[i])
			}
		case TypeDouble:
			if got.Doubles[i] != want.Doubles[i] {
				t.Fatalf("column %s row %d: %v != %v", col.Name, i, got.Doubles[i], want.Doubles[i])
			}
		default:
			if !bytes.Equal(got.Bytes[i], want.Bytes[i]) {
				t.Fatalf("column %s row %d: %q != %q", col.Name, i, got.Bytes[i], want.Bytes[i])
			}
		}
	}
}

func TestWriteReadRoundTripAllTypes(t *testing.T) {
	for _, codec := range []Codec{CodecNone, CodecFlate} {
		t.Run(fmt.Sprintf("codec=%d", codec), func(t *testing.T) {
			ctx := context.Background()
			store := objectstore.NewMemStore(nil)
			batch := testBatch(t, 500, 1)
			// Small groups/pages to force multiple of each.
			opts := WriterOptions{RowGroupRows: 120, PageBytes: 512, Codec: codec}
			meta, tables, err := WriteFile(ctx, store, "f.rpq", batch, opts)
			if err != nil {
				t.Fatal(err)
			}
			if meta.NumRows != 500 {
				t.Fatalf("NumRows = %d", meta.NumRows)
			}
			if len(meta.RowGroups) != 5 { // 4x120 + 20
				t.Fatalf("row groups = %d", len(meta.RowGroups))
			}
			if len(tables) != len(testSchema.Columns) {
				t.Fatalf("page tables = %d", len(tables))
			}

			// Traditional path: footer + chunks.
			got, err := ReadFileMeta(ctx, store, "f.rpq")
			if err != nil {
				t.Fatal(err)
			}
			for ci, col := range testSchema.Columns {
				var all ColumnValues
				for gi := range got.RowGroups {
					vals, err := ReadColumnChunk(ctx, store, "f.rpq", got, gi, ci)
					if err != nil {
						t.Fatalf("chunk %d/%d: %v", gi, ci, err)
					}
					all = all.Append(vals)
				}
				colsEqual(t, col, all, batch.Cols[ci])
			}
		})
	}
}

func TestScanColumnMatchesWriterPageTable(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	batch := testBatch(t, 777, 2)
	opts := WriterOptions{RowGroupRows: 200, PageBytes: 1024}
	_, writerTables, err := WriteFile(ctx, store, "f.rpq", batch, opts)
	if err != nil {
		t.Fatal(err)
	}
	for ci, col := range testSchema.Columns {
		vals, table, _, err := ScanColumn(ctx, store, "f.rpq", ci)
		if err != nil {
			t.Fatalf("ScanColumn(%d): %v", ci, err)
		}
		colsEqual(t, col, vals, batch.Cols[ci])
		wt := writerTables[ci]
		if len(table) != len(wt) {
			t.Fatalf("column %s: scanned %d pages, writer recorded %d", col.Name, len(table), len(wt))
		}
		for i := range table {
			if table[i] != wt[i] {
				t.Fatalf("column %s page %d: scan %+v != writer %+v", col.Name, i, table[i], wt[i])
			}
		}
		if table.TotalRows() != 777 {
			t.Fatalf("column %s: TotalRows = %d", col.Name, table.TotalRows())
		}
	}
}

func TestOptimizedPageReadsMatchChunkReads(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	batch := testBatch(t, 1000, 3)
	opts := WriterOptions{RowGroupRows: 300, PageBytes: 2048}
	_, tables, err := WriteFile(ctx, store, "f.rpq", batch, opts)
	if err != nil {
		t.Fatal(err)
	}
	bodyCol := testSchema.ColumnIndex("body")
	table := tables[bodyCol]
	if len(table) < 4 {
		t.Fatalf("want several pages, got %d", len(table))
	}
	// Read a scattered subset of pages directly.
	subset := []PageInfo{table[0], table[2], table[len(table)-1]}
	pages, err := ReadPages(ctx, store, "f.rpq", testSchema.Columns[bodyCol], subset)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		for i := 0; i < p.Values.Len(); i++ {
			row := p.Info.FirstRow + int64(i)
			want := batch.Cols[bodyCol].Bytes[row]
			if !bytes.Equal(p.Values.Bytes[i], want) {
				t.Fatalf("page %d row %d: %q != %q", p.Info.Ordinal, row, p.Values.Bytes[i], want)
			}
		}
	}
}

func TestOptimizedReaderBypassesFooter(t *testing.T) {
	ctx := context.Background()
	inner := objectstore.NewMemStore(nil)
	batch := testBatch(t, 400, 4)
	_, tables, err := WriteFile(ctx, inner, "f.rpq", batch, WriterOptions{RowGroupRows: 100, PageBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	store, metrics := objectstore.Instrument(inner, objectstore.DefaultS3Model())
	// One page read = exactly one GET (no footer, no tail probe).
	before := metrics.Snapshot()
	if _, err := ReadPages(ctx, store, "f.rpq", testSchema.Columns[3], tables[3][:1]); err != nil {
		t.Fatal(err)
	}
	delta := metrics.Snapshot().Sub(before)
	if delta.Gets != 1 {
		t.Fatalf("optimized page read issued %d GETs, want 1", delta.Gets)
	}
	// Traditional path needs footer requests first.
	before = metrics.Snapshot()
	meta, err := ReadFileMeta(ctx, store, "f.rpq")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadColumnChunk(ctx, store, "f.rpq", meta, 0, 3); err != nil {
		t.Fatal(err)
	}
	delta = metrics.Snapshot().Sub(before)
	if delta.Gets < 2 {
		t.Fatalf("traditional read issued %d GETs, want >= 2", delta.Gets)
	}
}

func TestPageTableFindRow(t *testing.T) {
	table := PageTable{
		{Ordinal: 0, FirstRow: 0, NumValues: 10},
		{Ordinal: 1, FirstRow: 10, NumValues: 5},
		{Ordinal: 2, FirstRow: 15, NumValues: 20},
	}
	cases := []struct {
		row  int64
		want int
	}{{0, 0}, {9, 0}, {10, 1}, {14, 1}, {15, 2}, {34, 2}, {35, -1}, {-1, -1}}
	for _, tc := range cases {
		if got := table.FindRow(tc.row); got != tc.want {
			t.Fatalf("FindRow(%d) = %d, want %d", tc.row, got, tc.want)
		}
	}
	if table.TotalRows() != 35 {
		t.Fatalf("TotalRows = %d", table.TotalRows())
	}
	var empty PageTable
	if empty.TotalRows() != 0 || empty.FindRow(0) != -1 {
		t.Fatal("empty table behavior")
	}
}

func TestChunkStatsPruning(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	schema := MustSchema(Column{Name: "v", Type: TypeInt64})
	b := NewBatch(schema)
	// Sorted data: stats are useful.
	ints := make([]int64, 300)
	for i := range ints {
		ints[i] = int64(i)
	}
	b.Cols[0] = ColumnValues{Ints: ints}
	meta, _, err := WriteFile(ctx, store, "sorted.rpq", b, WriterOptions{RowGroupRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Value 250 can only be in the third group.
	key := orderableInt64(250)
	var candidates int
	for _, g := range meta.RowGroups {
		if StatsMayContain(g.Chunks[0].Min, g.Chunks[0].Max, key) {
			candidates++
		}
	}
	if candidates != 1 {
		t.Fatalf("sorted pruning kept %d groups, want 1", candidates)
	}
	if got := decodeOrderableInt64(meta.RowGroups[0].Chunks[0].Min); got != 0 {
		t.Fatalf("group 0 min = %d", got)
	}
	if got := decodeOrderableInt64(meta.RowGroups[2].Chunks[0].Max); got != 299 {
		t.Fatalf("group 2 max = %d", got)
	}
}

func TestStatsUselessForUnsortedUUIDs(t *testing.T) {
	// Section II-B: on unsorted high-cardinality data, min-max stats
	// prune nothing — every chunk spans nearly the full key space.
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	schema := MustSchema(Column{Name: "id", Type: TypeFixedLenByteArray, TypeLen: 16})
	rng := rand.New(rand.NewSource(9))
	b := NewBatch(schema)
	ids := make([][]byte, 1000)
	for i := range ids {
		id := make([]byte, 16)
		rng.Read(id)
		ids[i] = id
	}
	b.Cols[0] = ColumnValues{Bytes: ids}
	meta, _, err := WriteFile(ctx, store, "uuids.rpq", b, WriterOptions{RowGroupRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	probe := make([]byte, 16)
	rng.Read(probe)
	pruned := 0
	for _, g := range meta.RowGroups {
		if !StatsMayContain(g.Chunks[0].Min, g.Chunks[0].Max, probe) {
			pruned++
		}
	}
	if pruned > 2 { // overwhelmingly nothing is pruned
		t.Fatalf("unsorted uuid stats pruned %d of %d groups", pruned, len(meta.RowGroups))
	}
}

func TestTruncatedStatsAreBounds(t *testing.T) {
	long := bytes.Repeat([]byte("z"), 100)
	min := truncateMin(long)
	max := truncateMax(long)
	if bytes.Compare(min, long) > 0 {
		t.Fatal("truncated min exceeds value")
	}
	if bytes.Compare(max, long) < 0 {
		t.Fatal("truncated max below value")
	}
	if len(min) > statTruncate || len(max) > statTruncate+1 {
		t.Fatalf("stat lengths %d/%d", len(min), len(max))
	}
	// All-0xFF prefix cannot be rounded up.
	ff := bytes.Repeat([]byte{0xFF}, 100)
	if got := truncateMax(ff); !bytes.Equal(got, ff) {
		t.Fatal("all-FF max must fall back to the full value")
	}
}

func TestOrderableEncodings(t *testing.T) {
	ints := []int64{-1 << 62, -5, -1, 0, 1, 7, 1 << 40}
	for i := 1; i < len(ints); i++ {
		a, b := orderableInt64(ints[i-1]), orderableInt64(ints[i])
		if bytes.Compare(a, b) >= 0 {
			t.Fatalf("int64 order broken at %d,%d", ints[i-1], ints[i])
		}
		if decodeOrderableInt64(b) != ints[i] {
			t.Fatalf("int64 round trip %d", ints[i])
		}
	}
	doubles := []float64{-1e300, -1.5, -0.0, 0.5, 2.5, 1e300}
	for i := 1; i < len(doubles); i++ {
		a, b := orderableDouble(doubles[i-1]), orderableDouble(doubles[i])
		if bytes.Compare(a, b) >= 0 {
			t.Fatalf("double order broken at %v,%v", doubles[i-1], doubles[i])
		}
		if decodeOrderableDouble(b) != doubles[i] {
			t.Fatalf("double round trip %v", doubles[i])
		}
	}
}

func TestEncodingRoundTripsProperty(t *testing.T) {
	col := Column{Name: "b", Type: TypeByteArray}
	f := func(vals [][]byte) bool {
		for i, v := range vals {
			if v == nil {
				vals[i] = []byte{}
			}
		}
		for _, enc := range []Encoding{EncodingPlain, EncodingDict} {
			body, err := encodeValues(nil, col, enc, ColumnValues{Bytes: vals})
			if err != nil {
				return false
			}
			got, err := decodeValues(col, enc, body, len(vals))
			if err != nil || got.Len() != len(vals) {
				return false
			}
			for i := range vals {
				if !bytes.Equal(got.Bytes[i], vals[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaEncodingRoundTripProperty(t *testing.T) {
	col := Column{Name: "i", Type: TypeInt64}
	f := func(vals []int64) bool {
		body, err := encodeValues(nil, col, EncodingDelta, ColumnValues{Ints: vals})
		if err != nil {
			return false
		}
		got, err := decodeValues(col, EncodingDelta, body, len(vals))
		if err != nil {
			return false
		}
		for i := range vals {
			if got.Ints[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDictEncodingCompact(t *testing.T) {
	// Highly repetitive values should dict-encode far smaller than plain.
	vals := make([][]byte, 10000)
	for i := range vals {
		vals[i] = []byte(fmt.Sprintf("level-%d", i%4))
	}
	col := Column{Name: "b", Type: TypeByteArray}
	plain, err := encodeValues(nil, col, EncodingPlain, ColumnValues{Bytes: vals})
	if err != nil {
		t.Fatal(err)
	}
	dict, err := encodeValues(nil, col, EncodingDict, ColumnValues{Bytes: vals})
	if err != nil {
		t.Fatal(err)
	}
	if len(dict)*3 > len(plain) {
		t.Fatalf("dict %d bytes vs plain %d bytes", len(dict), len(plain))
	}
}

func TestWriterEncodingSelection(t *testing.T) {
	w := NewFileWriter(testSchema, WriterOptions{})
	// Repetitive byte arrays -> dict.
	rep := make([][]byte, 2000)
	for i := range rep {
		rep[i] = []byte(fmt.Sprintf("v%d", i%3))
	}
	if got := w.chooseEncoding(Column{Name: "b", Type: TypeByteArray}, ColumnValues{Bytes: rep}); got != EncodingDict {
		t.Fatalf("repetitive -> %v, want dict", got)
	}
	// Unique byte arrays -> plain.
	uniq := make([][]byte, 2000)
	for i := range uniq {
		uniq[i] = []byte(fmt.Sprintf("unique-%d", i))
	}
	if got := w.chooseEncoding(Column{Name: "b", Type: TypeByteArray}, ColumnValues{Bytes: uniq}); got != EncodingPlain {
		t.Fatalf("unique -> %v, want plain", got)
	}
	if got := w.chooseEncoding(Column{Name: "i", Type: TypeInt64}, ColumnValues{}); got != EncodingDelta {
		t.Fatalf("int64 -> %v, want delta", got)
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{Name: "", Type: TypeInt64}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewSchema(Column{Name: "a", Type: TypeInt64}, Column{Name: "a", Type: TypeBool}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := NewSchema(Column{Name: "f", Type: TypeFixedLenByteArray}); err == nil {
		t.Fatal("fixed-len without TypeLen accepted")
	}
	if _, err := NewSchema(Column{Name: "x", Type: Type(99)}); err == nil {
		t.Fatal("unknown type accepted")
	}
	s := MustSchema(Column{Name: "a", Type: TypeInt64})
	if s.ColumnIndex("a") != 0 || s.ColumnIndex("zz") != -1 {
		t.Fatal("ColumnIndex")
	}
}

func TestBatchValidation(t *testing.T) {
	schema := MustSchema(
		Column{Name: "i", Type: TypeInt64},
		Column{Name: "id", Type: TypeFixedLenByteArray, TypeLen: 4},
	)
	b := NewBatch(schema)
	b.Cols[0] = ColumnValues{Ints: []int64{1, 2}}
	b.Cols[1] = ColumnValues{Bytes: [][]byte{[]byte("abcd")}}
	if err := b.Validate(); err == nil {
		t.Fatal("row count mismatch accepted")
	}
	b.Cols[1] = ColumnValues{Bytes: [][]byte{[]byte("abcd"), []byte("toolong!")}}
	if err := b.Validate(); err == nil {
		t.Fatal("wrong fixed width accepted")
	}
	b.Cols[1] = ColumnValues{Bytes: [][]byte{[]byte("abcd"), []byte("wxyz")}}
	if err := b.Validate(); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	if b.NumRows() != 2 {
		t.Fatalf("NumRows = %d", b.NumRows())
	}
}

func TestWriterErrors(t *testing.T) {
	w := NewFileWriter(testSchema, WriterOptions{})
	if _, _, err := w.Close(); err != nil {
		t.Fatalf("close empty: %v", err)
	}
	if _, _, err := w.Close(); err == nil {
		t.Fatal("double close accepted")
	}
	if err := w.Append(testBatch(t, 1, 0)); err == nil {
		t.Fatal("append after close accepted")
	}
}

func TestParseFileMetaErrors(t *testing.T) {
	if _, err := ParseFileMeta([]byte("short")); err == nil {
		t.Fatal("short file accepted")
	}
	if _, err := ParseFileMeta(append(make([]byte, 100), []byte("XXXX")...)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestMultipleAppendsAcrossGroupBoundary(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	w := NewFileWriter(testSchema, WriterOptions{RowGroupRows: 150, PageBytes: 600})
	var want *Batch
	for i := 0; i < 7; i++ {
		b := testBatch(t, 60, int64(100+i))
		if want == nil {
			want = b
		} else {
			for ci := range want.Cols {
				want.Cols[ci] = want.Cols[ci].Append(b.Cols[ci])
			}
		}
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	data, meta, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumRows != 420 {
		t.Fatalf("NumRows = %d", meta.NumRows)
	}
	if err := store.Put(ctx, "f.rpq", data); err != nil {
		t.Fatal(err)
	}
	for ci, col := range testSchema.Columns {
		vals, _, _, err := ScanColumn(ctx, store, "f.rpq", ci)
		if err != nil {
			t.Fatal(err)
		}
		colsEqual(t, col, vals, want.Cols[ci])
	}
}
