package parquet

import (
	"bytes"
	"encoding/binary"
	"math"
)

// statTruncate caps the stored length of byte-array statistics so wide
// values (long text) don't bloat headers and footers.
const statTruncate = 32

// OrderableInt64 encodes x so that bytes.Compare on the result
// matches numeric order; it is the representation file statistics use
// for int64 columns. Callers use it to compare query bounds against
// stored stats.
func OrderableInt64(x int64) []byte { return orderableInt64(x) }

// DecodeOrderableInt64 inverts OrderableInt64.
func DecodeOrderableInt64(b []byte) int64 { return decodeOrderableInt64(b) }

// orderableInt64 encodes x so that bytes.Compare matches numeric
// order: big-endian with the sign bit flipped.
func orderableInt64(x int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(x)^(1<<63))
	return b[:]
}

// decodeOrderableInt64 inverts orderableInt64.
func decodeOrderableInt64(b []byte) int64 {
	return int64(binary.BigEndian.Uint64(b) ^ (1 << 63))
}

// orderableDouble encodes f so that bytes.Compare matches numeric
// order (the usual IEEE-754 total-order trick; NaNs sort high).
func orderableDouble(f float64) []byte {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		u = ^u
	} else {
		u ^= 1 << 63
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], u)
	return b[:]
}

// decodeOrderableDouble inverts orderableDouble.
func decodeOrderableDouble(b []byte) float64 {
	u := binary.BigEndian.Uint64(b)
	if u&(1<<63) != 0 {
		u ^= 1 << 63
	} else {
		u = ^u
	}
	return math.Float64frombits(u)
}

// truncateMin returns a lower bound of v of at most statTruncate
// bytes: any prefix of v is <= v.
func truncateMin(v []byte) []byte {
	if len(v) <= statTruncate {
		return append([]byte(nil), v...)
	}
	return append([]byte(nil), v[:statTruncate]...)
}

// truncateMax returns an upper bound of v of at most statTruncate+1
// bytes, by incrementing the last kept byte (carrying as needed). If
// every kept byte is 0xFF the full prefix is kept and padded with
// 0xFF, which remains a valid upper bound for comparisons up to that
// length; in the worst case we return v itself.
func truncateMax(v []byte) []byte {
	if len(v) <= statTruncate {
		return append([]byte(nil), v...)
	}
	out := append([]byte(nil), v[:statTruncate]...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] < 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	// All 0xFF: cannot increment; fall back to the full value.
	return append([]byte(nil), v...)
}

// statAcc accumulates min/max statistics for one column chunk or page
// in orderable-bytes form.
type statAcc struct {
	min, max []byte
	set      bool
}

func (a *statAcc) updateBytes(v []byte) {
	if !a.set {
		a.min = truncateMin(v)
		a.max = truncateMax(v)
		a.set = true
		return
	}
	if bytes.Compare(v, a.min) < 0 {
		a.min = truncateMin(v)
	}
	if bytes.Compare(v, a.max) > 0 {
		a.max = truncateMax(v)
	}
}

// update folds every value of v (typed per col) into the accumulator.
func (a *statAcc) update(col Column, v ColumnValues) {
	switch col.Type {
	case TypeInt64:
		for _, x := range v.Ints {
			a.updateBytes(orderableInt64(x))
		}
	case TypeDouble:
		for _, x := range v.Doubles {
			a.updateBytes(orderableDouble(x))
		}
	case TypeByteArray, TypeFixedLenByteArray:
		for _, x := range v.Bytes {
			a.updateBytes(x)
		}
	case TypeBool:
		for _, x := range v.Bools {
			if x {
				a.updateBytes([]byte{1})
			} else {
				a.updateBytes([]byte{0})
			}
		}
	}
}

// merge folds another accumulator in.
func (a *statAcc) merge(b statAcc) {
	if !b.set {
		return
	}
	if !a.set {
		*a = statAcc{min: b.min, max: b.max, set: true}
		return
	}
	if bytes.Compare(b.min, a.min) < 0 {
		a.min = b.min
	}
	if bytes.Compare(b.max, a.max) > 0 {
		a.max = b.max
	}
}

// StatsMayContain reports whether a value could be present in a chunk
// with the given min/max statistics; absent stats mean "maybe". This
// is the predicate-pushdown check a query engine runs against chunk
// metadata — the one the paper observes is useless for unsorted
// high-cardinality columns (Section II-B).
func StatsMayContain(min, max, value []byte) bool {
	if len(min) == 0 && len(max) == 0 {
		return true
	}
	if len(min) > 0 && bytes.Compare(value, min) < 0 {
		return false
	}
	if len(max) > 0 {
		// Compare against the (possibly truncated, rounded-up) max.
		if bytes.Compare(value, max) > 0 && !bytes.HasPrefix(value, max) {
			return false
		}
	}
	return true
}
