// Package parquet implements the columnar file format substrate of the
// reproduction: a from-scratch, Parquet-equivalent format with row
// groups, column chunks, and data pages with inline headers, plus a
// footer holding file metadata and chunk-level min/max statistics.
//
// Two read paths are provided, mirroring Figure 5 of the paper:
//
//   - the traditional reader (ReadFileMeta + ReadColumnChunk) fetches
//     the footer and then entire column chunks, the way mainstream
//     Parquet readers access object storage; and
//   - the Rottnest optimized reader (ReadPages) fetches individual
//     data pages by byte range using an externally stored PageTable,
//     bypassing the footer entirely (Section V-A).
//
// Pages target ~1 MB of raw data, so page reads sit in the flat,
// latency-bound regime of the object-store latency curve while chunk
// reads sit in the throughput-bound regime — the asymmetry the paper's
// in-situ querying argument rests on.
package parquet

import "fmt"

// Type enumerates the physical column types supported by the format.
type Type uint8

// Physical types.
const (
	// TypeBool stores single bits, bit-packed.
	TypeBool Type = iota + 1
	// TypeInt64 stores 64-bit signed integers.
	TypeInt64
	// TypeDouble stores 64-bit IEEE floats.
	TypeDouble
	// TypeByteArray stores variable-length byte strings (text, blobs).
	TypeByteArray
	// TypeFixedLenByteArray stores fixed-width byte strings (UUIDs,
	// packed embedding vectors); the width is Column.TypeLen.
	TypeFixedLenByteArray
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeBool:
		return "BOOL"
	case TypeInt64:
		return "INT64"
	case TypeDouble:
		return "DOUBLE"
	case TypeByteArray:
		return "BYTE_ARRAY"
	case TypeFixedLenByteArray:
		return "FIXED_LEN_BYTE_ARRAY"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Encoding enumerates value encodings within a data page.
type Encoding uint8

// Page encodings.
const (
	// EncodingPlain stores values back to back (length-prefixed for
	// variable-width types).
	EncodingPlain Encoding = iota + 1
	// EncodingDict stores a per-page dictionary followed by varint
	// indices; the writer selects it for repetitive byte-array data.
	EncodingDict
	// EncodingDelta stores zig-zag varint deltas; the writer selects
	// it for int64 columns (timestamps compress very well).
	EncodingDelta
)

// Codec enumerates page compression codecs.
type Codec uint8

// Compression codecs.
const (
	// CodecNone leaves page bytes as encoded.
	CodecNone Codec = iota + 1
	// CodecFlate compresses pages with DEFLATE (the stdlib stand-in
	// for Parquet's snappy/zstd).
	CodecFlate
)

// Column describes one field of a schema.
type Column struct {
	// Name is the field name, unique within the schema.
	Name string `json:"name"`
	// Type is the physical type.
	Type Type `json:"type"`
	// TypeLen is the value width for TypeFixedLenByteArray.
	TypeLen int `json:"type_len,omitempty"`
}

// Schema is an ordered set of columns.
type Schema struct {
	Columns []Column `json:"columns"`
}

// NewSchema returns a schema over the given columns, validating names
// and fixed-length widths.
func NewSchema(cols ...Column) (*Schema, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("parquet: column with empty name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("parquet: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		if c.Type == TypeFixedLenByteArray && c.TypeLen <= 0 {
			return nil, fmt.Errorf("parquet: column %q: fixed-len type needs TypeLen > 0", c.Name)
		}
		switch c.Type {
		case TypeBool, TypeInt64, TypeDouble, TypeByteArray, TypeFixedLenByteArray:
		default:
			return nil, fmt.Errorf("parquet: column %q: unknown type %v", c.Name, c.Type)
		}
	}
	return &Schema{Columns: cols}, nil
}

// MustSchema is NewSchema that panics on error, for tests and
// compile-time-constant schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Equal reports whether the two schemas have the same columns — same
// names, types, and fixed-length widths, in the same order.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil || len(s.Columns) != len(o.Columns) {
		return false
	}
	for i, c := range s.Columns {
		if c != o.Columns[i] {
			return false
		}
	}
	return true
}

// ColumnIndex returns the index of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// ColumnValues holds the values of one column for a batch of rows.
// Exactly one of the slices is populated, chosen by the column type.
type ColumnValues struct {
	Bools   []bool
	Ints    []int64
	Doubles []float64
	// Bytes serves both TypeByteArray and TypeFixedLenByteArray.
	Bytes [][]byte
}

// Len returns the number of values present.
func (v ColumnValues) Len() int {
	switch {
	case v.Bools != nil:
		return len(v.Bools)
	case v.Ints != nil:
		return len(v.Ints)
	case v.Doubles != nil:
		return len(v.Doubles)
	case v.Bytes != nil:
		return len(v.Bytes)
	}
	return 0
}

// Slice returns the sub-range [from, to) of the values.
func (v ColumnValues) Slice(from, to int) ColumnValues {
	switch {
	case v.Bools != nil:
		return ColumnValues{Bools: v.Bools[from:to]}
	case v.Ints != nil:
		return ColumnValues{Ints: v.Ints[from:to]}
	case v.Doubles != nil:
		return ColumnValues{Doubles: v.Doubles[from:to]}
	case v.Bytes != nil:
		return ColumnValues{Bytes: v.Bytes[from:to]}
	}
	return ColumnValues{}
}

// Append returns v with other's values appended.
func (v ColumnValues) Append(other ColumnValues) ColumnValues {
	switch {
	case other.Bools != nil:
		v.Bools = append(v.Bools, other.Bools...)
	case other.Ints != nil:
		v.Ints = append(v.Ints, other.Ints...)
	case other.Doubles != nil:
		v.Doubles = append(v.Doubles, other.Doubles...)
	case other.Bytes != nil:
		v.Bytes = append(v.Bytes, other.Bytes...)
	}
	return v
}

// Batch is a set of rows across all schema columns, the unit of data
// appended to a FileWriter.
type Batch struct {
	Schema *Schema
	Cols   []ColumnValues
}

// NewBatch returns an empty batch for the schema.
func NewBatch(schema *Schema) *Batch {
	return &Batch{Schema: schema, Cols: make([]ColumnValues, len(schema.Columns))}
}

// NumRows returns the row count of the batch.
func (b *Batch) NumRows() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// Validate checks that every column holds the right value kind and the
// same row count.
func (b *Batch) Validate() error {
	if len(b.Cols) != len(b.Schema.Columns) {
		return fmt.Errorf("parquet: batch has %d columns, schema has %d", len(b.Cols), len(b.Schema.Columns))
	}
	n := -1
	for i, c := range b.Schema.Columns {
		v := b.Cols[i]
		switch c.Type {
		case TypeBool:
			if v.Bools == nil && v.Len() > 0 {
				return fmt.Errorf("parquet: column %q: want bools", c.Name)
			}
		case TypeInt64:
			if v.Ints == nil && v.Len() > 0 {
				return fmt.Errorf("parquet: column %q: want ints", c.Name)
			}
		case TypeDouble:
			if v.Doubles == nil && v.Len() > 0 {
				return fmt.Errorf("parquet: column %q: want doubles", c.Name)
			}
		case TypeByteArray, TypeFixedLenByteArray:
			if v.Bytes == nil && v.Len() > 0 {
				return fmt.Errorf("parquet: column %q: want bytes", c.Name)
			}
			if c.Type == TypeFixedLenByteArray {
				for _, b := range v.Bytes {
					if len(b) != c.TypeLen {
						return fmt.Errorf("parquet: column %q: fixed-len value of %d bytes, want %d", c.Name, len(b), c.TypeLen)
					}
				}
			}
		}
		if n == -1 {
			n = v.Len()
		} else if v.Len() != n {
			return fmt.Errorf("parquet: column %q has %d rows, want %d", c.Name, v.Len(), n)
		}
	}
	return nil
}
