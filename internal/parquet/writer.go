package parquet

import (
	"context"
	"fmt"

	"rottnest/internal/objectstore"
)

// WriterOptions configure a FileWriter.
type WriterOptions struct {
	// RowGroupRows is the number of rows per row group. Defaults to
	// 65536. Large row groups make whole-chunk reads expensive, which
	// is the Parquet design property Section V-A discusses.
	RowGroupRows int
	// PageBytes is the target uncompressed size of a data page.
	// Defaults to 1 MiB, matching typical Parquet writers ("the
	// physical size of a data page is equal to the compressed size
	// of 1MB of raw data").
	PageBytes int
	// Codec selects page compression. Defaults to CodecFlate.
	Codec Codec
	// DisableStats suppresses min/max statistics.
	DisableStats bool
	// DisableDict forces plain encoding for byte-array columns.
	DisableDict bool
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.RowGroupRows <= 0 {
		o.RowGroupRows = 65536
	}
	if o.PageBytes <= 0 {
		o.PageBytes = 1 << 20
	}
	if o.Codec == 0 {
		o.Codec = CodecFlate
	}
	return o
}

// FileWriter builds one columnar file in memory. Append rows in
// batches, then Close to obtain the encoded file. After Close,
// PageTables exposes the per-column page locations — the structure
// Rottnest embeds in its indices for footer-free page access.
type FileWriter struct {
	schema  *Schema
	opts    WriterOptions
	pending []ColumnValues
	buf     []byte
	groups  []RowGroupMeta
	tables  []PageTable
	// ordinals tracks the next file-global page ordinal per column.
	ordinals []int
	rows     int64
	closed   bool
}

// NewFileWriter returns a writer for the schema.
func NewFileWriter(schema *Schema, opts WriterOptions) *FileWriter {
	w := &FileWriter{
		schema:   schema,
		opts:     opts.withDefaults(),
		pending:  make([]ColumnValues, len(schema.Columns)),
		buf:      append([]byte(nil), magic...),
		tables:   make([]PageTable, len(schema.Columns)),
		ordinals: make([]int, len(schema.Columns)),
	}
	return w
}

// Append adds a batch of rows, flushing complete row groups.
func (w *FileWriter) Append(b *Batch) error {
	if w.closed {
		return fmt.Errorf("parquet: append after close")
	}
	if !b.Schema.Equal(w.schema) {
		return fmt.Errorf("parquet: batch schema mismatch")
	}
	if err := b.Validate(); err != nil {
		return err
	}
	for i := range w.pending {
		w.pending[i] = w.pending[i].Append(b.Cols[i])
	}
	for w.pendingRows() >= w.opts.RowGroupRows {
		if err := w.flushGroup(w.opts.RowGroupRows); err != nil {
			return err
		}
	}
	return nil
}

func (w *FileWriter) pendingRows() int {
	if len(w.pending) == 0 {
		return 0
	}
	return w.pending[0].Len()
}

// flushGroup writes the first n pending rows as one row group.
func (w *FileWriter) flushGroup(n int) error {
	group := RowGroupMeta{NumRows: int64(n)}
	groupStartRow := w.rows
	for ci, col := range w.schema.Columns {
		vals := w.pending[ci].Slice(0, n)
		chunk, err := w.writeChunk(ci, col, vals, groupStartRow)
		if err != nil {
			return err
		}
		group.Chunks = append(group.Chunks, chunk)
		w.pending[ci] = w.pending[ci].Slice(n, w.pending[ci].Len())
	}
	w.groups = append(w.groups, group)
	w.rows += int64(n)
	return nil
}

// writeChunk encodes one column chunk, splitting values into pages of
// roughly PageBytes uncompressed size.
func (w *FileWriter) writeChunk(ci int, col Column, vals ColumnValues, groupStartRow int64) (ChunkMeta, error) {
	chunk := ChunkMeta{Column: ci, Offset: int64(len(w.buf))}
	var stats statAcc
	n := vals.Len()
	rowInGroup := 0
	for start := 0; start < n || (n == 0 && start == 0); {
		end := w.pageEnd(col, vals, start)
		page := vals.Slice(start, end)
		if err := w.writePage(ci, col, page, groupStartRow+int64(rowInGroup), &stats); err != nil {
			return ChunkMeta{}, err
		}
		chunk.NumPages++
		rowInGroup += end - start
		start = end
		if n == 0 {
			break
		}
	}
	chunk.Size = int64(len(w.buf)) - chunk.Offset
	if !w.opts.DisableStats && stats.set {
		chunk.Min, chunk.Max = stats.min, stats.max
	}
	return chunk, nil
}

// pageEnd returns the exclusive end index of the page starting at
// start, targeting PageBytes of uncompressed data.
func (w *FileWriter) pageEnd(col Column, vals ColumnValues, start int) int {
	n := vals.Len()
	budget := w.opts.PageBytes
	size := 0
	i := start
	for ; i < n; i++ {
		switch col.Type {
		case TypeBool:
			size++ // conservative
		case TypeInt64, TypeDouble:
			size += 8
		case TypeByteArray:
			size += 4 + len(vals.Bytes[i])
		case TypeFixedLenByteArray:
			size += col.TypeLen
		}
		if size >= budget && i > start {
			return i + 1
		}
	}
	return n
}

// writePage encodes, compresses, and appends one page.
func (w *FileWriter) writePage(ci int, col Column, vals ColumnValues, firstRow int64, chunkStats *statAcc) error {
	enc := w.chooseEncoding(col, vals)
	body, err := encodeValues(nil, col, enc, vals)
	if err != nil {
		return err
	}
	compressed, err := compressPage(w.opts.Codec, body)
	if err != nil {
		return err
	}
	h := pageHeader{
		NumValues:        uint32(vals.Len()),
		UncompressedSize: uint32(len(body)),
		CompressedSize:   uint32(len(compressed)),
		Encoding:         enc,
		Codec:            w.opts.Codec,
	}
	if !w.opts.DisableStats {
		var ps statAcc
		ps.update(col, vals)
		if ps.set {
			h.Min, h.Max = ps.min, ps.max
		}
		chunkStats.merge(ps)
	}
	offset := int64(len(w.buf))
	w.buf = h.append(w.buf)
	w.buf = append(w.buf, compressed...)
	w.tables[ci] = append(w.tables[ci], PageInfo{
		Ordinal:   w.ordinals[ci],
		Offset:    offset,
		Size:      int64(len(w.buf)) - offset,
		NumValues: vals.Len(),
		FirstRow:  firstRow,
	})
	w.ordinals[ci]++
	return nil
}

// chooseEncoding picks the page encoding: delta for int64, dictionary
// for repetitive byte arrays, plain otherwise.
func (w *FileWriter) chooseEncoding(col Column, vals ColumnValues) Encoding {
	switch col.Type {
	case TypeInt64:
		return EncodingDelta
	case TypeByteArray:
		if w.opts.DisableDict {
			return EncodingPlain
		}
		sample := len(vals.Bytes)
		if sample > 1000 {
			sample = 1000
		}
		if sample == 0 {
			return EncodingPlain
		}
		distinct := make(map[string]struct{}, sample)
		for _, v := range vals.Bytes[:sample] {
			distinct[string(v)] = struct{}{}
		}
		if float64(len(distinct)) < 0.5*float64(sample) {
			return EncodingDict
		}
		return EncodingPlain
	default:
		return EncodingPlain
	}
}

// Close flushes remaining rows and the footer, returning the complete
// file bytes and its metadata.
func (w *FileWriter) Close() ([]byte, *FileMeta, error) {
	if w.closed {
		return nil, nil, fmt.Errorf("parquet: double close")
	}
	if n := w.pendingRows(); n > 0 {
		if err := w.flushGroup(n); err != nil {
			return nil, nil, err
		}
	}
	w.closed = true
	meta := &FileMeta{Version: 1, Schema: w.schema, NumRows: w.rows, RowGroups: w.groups}
	buf, err := encodeFooter(w.buf, meta)
	if err != nil {
		return nil, nil, err
	}
	w.buf = buf
	return w.buf, meta, nil
}

// PageTables returns the per-column page tables. Valid after Close.
func (w *FileWriter) PageTables() []PageTable { return w.tables }

// WriteFile encodes a single batch as a file and stores it at key,
// returning the metadata and per-column page tables.
func WriteFile(ctx context.Context, store objectstore.Store, key string, b *Batch, opts WriterOptions) (*FileMeta, []PageTable, error) {
	w := NewFileWriter(b.Schema, opts)
	if err := w.Append(b); err != nil {
		return nil, nil, err
	}
	data, meta, err := w.Close()
	if err != nil {
		return nil, nil, err
	}
	if err := store.Put(ctx, key, data); err != nil {
		return nil, nil, err
	}
	return meta, w.PageTables(), nil
}
