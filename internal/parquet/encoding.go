package parquet

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

func doubleBits(f float64) uint64     { return math.Float64bits(f) }
func doubleFromBits(u uint64) float64 { return math.Float64frombits(u) }

// encodeValues serializes values of the given column using the chosen
// encoding, appending to dst.
func encodeValues(dst []byte, col Column, enc Encoding, v ColumnValues) ([]byte, error) {
	switch enc {
	case EncodingPlain:
		return encodePlain(dst, col, v)
	case EncodingDict:
		if col.Type != TypeByteArray && col.Type != TypeFixedLenByteArray {
			return nil, fmt.Errorf("parquet: dict encoding requires byte-array column, got %v", col.Type)
		}
		return encodeDict(dst, v.Bytes), nil
	case EncodingDelta:
		if col.Type != TypeInt64 {
			return nil, fmt.Errorf("parquet: delta encoding requires int64 column, got %v", col.Type)
		}
		return encodeDelta(dst, v.Ints), nil
	default:
		return nil, fmt.Errorf("parquet: unknown encoding %d", enc)
	}
}

// decodeValues parses count values of the given column from data.
func decodeValues(col Column, enc Encoding, data []byte, count int) (ColumnValues, error) {
	switch enc {
	case EncodingPlain:
		return decodePlain(col, data, count)
	case EncodingDict:
		vals, err := decodeDict(data, count)
		return ColumnValues{Bytes: vals}, err
	case EncodingDelta:
		vals, err := decodeDelta(data, count)
		return ColumnValues{Ints: vals}, err
	default:
		return ColumnValues{}, fmt.Errorf("parquet: unknown encoding %d", enc)
	}
}

func encodePlain(dst []byte, col Column, v ColumnValues) ([]byte, error) {
	switch col.Type {
	case TypeBool:
		// Bit-packed, LSB first.
		nbytes := (len(v.Bools) + 7) / 8
		start := len(dst)
		dst = append(dst, make([]byte, nbytes)...)
		for i, b := range v.Bools {
			if b {
				dst[start+i/8] |= 1 << (i % 8)
			}
		}
		return dst, nil
	case TypeInt64:
		for _, x := range v.Ints {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(x))
		}
		return dst, nil
	case TypeDouble:
		for _, x := range v.Doubles {
			dst = binary.LittleEndian.AppendUint64(dst, doubleBits(x))
		}
		return dst, nil
	case TypeByteArray:
		for _, b := range v.Bytes {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
			dst = append(dst, b...)
		}
		return dst, nil
	case TypeFixedLenByteArray:
		for _, b := range v.Bytes {
			if len(b) != col.TypeLen {
				return nil, fmt.Errorf("parquet: fixed-len value of %d bytes, want %d", len(b), col.TypeLen)
			}
			dst = append(dst, b...)
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("parquet: unknown type %v", col.Type)
	}
}

func decodePlain(col Column, data []byte, count int) (ColumnValues, error) {
	switch col.Type {
	case TypeBool:
		if len(data) < (count+7)/8 {
			return ColumnValues{}, fmt.Errorf("parquet: bool page truncated")
		}
		out := make([]bool, count)
		for i := range out {
			out[i] = data[i/8]&(1<<(i%8)) != 0
		}
		return ColumnValues{Bools: out}, nil
	case TypeInt64:
		if len(data) < 8*count {
			return ColumnValues{}, fmt.Errorf("parquet: int64 page truncated")
		}
		out := make([]int64, count)
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
		}
		return ColumnValues{Ints: out}, nil
	case TypeDouble:
		if len(data) < 8*count {
			return ColumnValues{}, fmt.Errorf("parquet: double page truncated")
		}
		out := make([]float64, count)
		for i := range out {
			out[i] = doubleFromBits(binary.LittleEndian.Uint64(data[8*i:]))
		}
		return ColumnValues{Doubles: out}, nil
	case TypeByteArray:
		// Each value carries a 4-byte length prefix; a corrupt count
		// cannot force a preallocation beyond what data could hold.
		prealloc := count
		if prealloc > len(data)/4 {
			prealloc = len(data) / 4
		}
		out := make([][]byte, 0, prealloc)
		pos := 0
		for i := 0; i < count; i++ {
			if pos+4 > len(data) {
				return ColumnValues{}, fmt.Errorf("parquet: byte-array page truncated at value %d", i)
			}
			n := int(binary.LittleEndian.Uint32(data[pos:]))
			pos += 4
			if pos+n > len(data) {
				return ColumnValues{}, fmt.Errorf("parquet: byte-array page truncated at value %d", i)
			}
			val := make([]byte, n)
			copy(val, data[pos:pos+n])
			out = append(out, val)
			pos += n
		}
		return ColumnValues{Bytes: out}, nil
	case TypeFixedLenByteArray:
		if len(data) < col.TypeLen*count {
			return ColumnValues{}, fmt.Errorf("parquet: fixed-len page truncated")
		}
		out := make([][]byte, count)
		for i := range out {
			val := make([]byte, col.TypeLen)
			copy(val, data[i*col.TypeLen:])
			out[i] = val
		}
		return ColumnValues{Bytes: out}, nil
	default:
		return ColumnValues{}, fmt.Errorf("parquet: unknown type %v", col.Type)
	}
}

// encodeDict writes [u32 dictCount][dict entries: u32 len + bytes]
// [uvarint indices...].
func encodeDict(dst []byte, vals [][]byte) []byte {
	dict := make(map[string]uint32)
	var order [][]byte
	indices := make([]uint32, len(vals))
	for i, v := range vals {
		id, ok := dict[string(v)]
		if !ok {
			id = uint32(len(order))
			dict[string(v)] = id
			order = append(order, v)
		}
		indices[i] = id
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(order)))
	for _, e := range order {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e)))
		dst = append(dst, e...)
	}
	for _, id := range indices {
		dst = binary.AppendUvarint(dst, uint64(id))
	}
	return dst
}

func decodeDict(data []byte, count int) ([][]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("parquet: dict page truncated")
	}
	dictCount := int(binary.LittleEndian.Uint32(data))
	pos := 4
	// Every entry needs at least its 4-byte length prefix.
	if dictCount > (len(data)-pos)/4 {
		return nil, fmt.Errorf("parquet: dict page truncated in dictionary")
	}
	dict := make([][]byte, dictCount)
	for i := 0; i < dictCount; i++ {
		if pos+4 > len(data) {
			return nil, fmt.Errorf("parquet: dict page truncated in dictionary")
		}
		n := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		if pos+n > len(data) {
			return nil, fmt.Errorf("parquet: dict page truncated in dictionary")
		}
		e := make([]byte, n)
		copy(e, data[pos:pos+n])
		dict[i] = e
		pos += n
	}
	// Every index needs at least one varint byte.
	if count > len(data)-pos {
		return nil, fmt.Errorf("parquet: dict page truncated in indices")
	}
	out := make([][]byte, count)
	for i := 0; i < count; i++ {
		id, n := binary.Uvarint(data[pos:])
		if n <= 0 || id >= uint64(dictCount) {
			return nil, fmt.Errorf("parquet: dict page bad index at value %d", i)
		}
		pos += n
		out[i] = dict[id]
	}
	return out, nil
}

// encodeDelta writes zig-zag varint deltas from the previous value.
func encodeDelta(dst []byte, vals []int64) []byte {
	prev := int64(0)
	for _, v := range vals {
		dst = binary.AppendVarint(dst, v-prev)
		prev = v
	}
	return dst
}

func decodeDelta(data []byte, count int) ([]int64, error) {
	// Every delta needs at least one varint byte.
	if count > len(data) {
		return nil, fmt.Errorf("parquet: delta page truncated")
	}
	out := make([]int64, count)
	pos := 0
	prev := int64(0)
	for i := 0; i < count; i++ {
		d, n := binary.Varint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("parquet: delta page truncated at value %d", i)
		}
		pos += n
		prev += d
		out[i] = prev
	}
	return out, nil
}

// compressPage applies the codec to the encoded page body.
func compressPage(codec Codec, data []byte) ([]byte, error) {
	switch codec {
	case CodecNone:
		return data, nil
	case CodecFlate:
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return nil, fmt.Errorf("parquet: flate: %w", err)
		}
		if _, err := w.Write(data); err != nil {
			return nil, fmt.Errorf("parquet: flate: %w", err)
		}
		if err := w.Close(); err != nil {
			return nil, fmt.Errorf("parquet: flate: %w", err)
		}
		return buf.Bytes(), nil
	default:
		return nil, fmt.Errorf("parquet: unknown codec %d", codec)
	}
}

// decompressPage reverses compressPage; size is the expected
// uncompressed length.
func decompressPage(codec Codec, data []byte, size int) ([]byte, error) {
	switch codec {
	case CodecNone:
		return data, nil
	case CodecFlate:
		r := flate.NewReader(bytes.NewReader(data))
		defer r.Close()
		// size comes from the page header; cap the preallocation and
		// bound the copy so a corrupt header (or a flate bomb) cannot
		// force a giant allocation.
		prealloc := size
		if prealloc < 0 || prealloc > 64<<20 {
			prealloc = 64 << 20
		}
		buf := bytes.NewBuffer(make([]byte, 0, prealloc))
		n, err := io.Copy(buf, io.LimitReader(r, int64(size)+1))
		if err != nil {
			return nil, fmt.Errorf("parquet: inflate: %w", err)
		}
		if n > int64(size) {
			return nil, fmt.Errorf("parquet: page inflates past declared size %d", size)
		}
		return buf.Bytes(), nil
	default:
		return nil, fmt.Errorf("parquet: unknown codec %d", codec)
	}
}
