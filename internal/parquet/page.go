package parquet

import (
	"encoding/binary"
	"fmt"
)

// pageHeaderFixedSize is the byte length of the fixed portion of a
// page header; variable-length statistics follow.
const pageHeaderFixedSize = 4 + 4 + 4 + 1 + 1 + 2

// pageHeader is the inline header preceding every data page, like
// Parquet's PageHeader. It is what makes pages independently
// addressable: a reader holding (offset, size) can fetch and decode a
// page with a single ranged GET and no footer access.
type pageHeader struct {
	NumValues        uint32
	UncompressedSize uint32
	CompressedSize   uint32
	Encoding         Encoding
	Codec            Codec
	// Min and Max are optional page-level statistics (truncated
	// byte representations; empty means absent).
	Min, Max []byte
}

func (h *pageHeader) size() int {
	n := pageHeaderFixedSize
	if len(h.Min) > 0 || len(h.Max) > 0 {
		n += 2 + len(h.Min) + 2 + len(h.Max)
	}
	return n
}

func (h *pageHeader) append(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, h.NumValues)
	dst = binary.LittleEndian.AppendUint32(dst, h.UncompressedSize)
	dst = binary.LittleEndian.AppendUint32(dst, h.CompressedSize)
	dst = append(dst, byte(h.Encoding), byte(h.Codec))
	statsLen := 0
	if len(h.Min) > 0 || len(h.Max) > 0 {
		statsLen = 2 + len(h.Min) + 2 + len(h.Max)
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(statsLen))
	if statsLen > 0 {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(h.Min)))
		dst = append(dst, h.Min...)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(h.Max)))
		dst = append(dst, h.Max...)
	}
	return dst
}

// parsePageHeader decodes a header from the start of data, returning
// the header and its encoded length.
func parsePageHeader(data []byte) (pageHeader, int, error) {
	if len(data) < pageHeaderFixedSize {
		return pageHeader{}, 0, fmt.Errorf("parquet: page header truncated")
	}
	h := pageHeader{
		NumValues:        binary.LittleEndian.Uint32(data[0:]),
		UncompressedSize: binary.LittleEndian.Uint32(data[4:]),
		CompressedSize:   binary.LittleEndian.Uint32(data[8:]),
		Encoding:         Encoding(data[12]),
		Codec:            Codec(data[13]),
	}
	statsLen := int(binary.LittleEndian.Uint16(data[14:]))
	n := pageHeaderFixedSize
	if statsLen > 0 {
		// Stats carry two u16 length prefixes at minimum.
		if statsLen < 4 {
			return pageHeader{}, 0, fmt.Errorf("parquet: page header stats malformed")
		}
		if len(data) < n+statsLen {
			return pageHeader{}, 0, fmt.Errorf("parquet: page header stats truncated")
		}
		stats := data[n : n+statsLen]
		minLen := int(binary.LittleEndian.Uint16(stats))
		if 2+minLen+2 > len(stats) {
			return pageHeader{}, 0, fmt.Errorf("parquet: page header stats malformed")
		}
		h.Min = append([]byte(nil), stats[2:2+minLen]...)
		maxLen := int(binary.LittleEndian.Uint16(stats[2+minLen:]))
		if 2+minLen+2+maxLen > len(stats) {
			return pageHeader{}, 0, fmt.Errorf("parquet: page header stats malformed")
		}
		h.Max = append([]byte(nil), stats[4+minLen:4+minLen+maxLen]...)
		n += statsLen
	}
	return h, n, nil
}

// PageInfo locates one data page of one column within a file. A slice
// of PageInfo for a whole column is a PageTable — the structure
// Rottnest stores inside its indices so queries can read pages
// directly, bypassing the file footer (Section V-A, "position zone
// maps" in NoDB terms).
type PageInfo struct {
	// Ordinal is the page's index within its column across the whole
	// file (row groups flattened). Posting lists reference pages by
	// this ordinal.
	Ordinal int `json:"ordinal"`
	// Offset is the absolute byte offset of the page header in the
	// file.
	Offset int64 `json:"offset"`
	// Size is the total encoded size of the page including its
	// header; [Offset, Offset+Size) is the exact GET range.
	Size int64 `json:"size"`
	// NumValues is the number of rows in the page.
	NumValues int `json:"num_values"`
	// FirstRow is the file-global row index of the page's first row.
	FirstRow int64 `json:"first_row"`
}

// PageTable is the page-location map for one column of one file.
type PageTable []PageInfo

// TotalRows returns the number of rows covered by the table.
func (t PageTable) TotalRows() int64 {
	if len(t) == 0 {
		return 0
	}
	last := t[len(t)-1]
	return last.FirstRow + int64(last.NumValues)
}

// FindRow returns the index within the table of the page containing
// the file-global row, or -1 if out of range.
func (t PageTable) FindRow(row int64) int {
	lo, hi := 0, len(t)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		p := t[mid]
		switch {
		case row < p.FirstRow:
			hi = mid - 1
		case row >= p.FirstRow+int64(p.NumValues):
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// decodePage decompresses and decodes a full page given its raw bytes
// (header included).
func decodePage(col Column, raw []byte) (ColumnValues, error) {
	h, n, err := parsePageHeader(raw)
	if err != nil {
		return ColumnValues{}, err
	}
	if len(raw) < n+int(h.CompressedSize) {
		return ColumnValues{}, fmt.Errorf("parquet: page body truncated: have %d, want %d", len(raw)-n, h.CompressedSize)
	}
	body, err := decompressPage(h.Codec, raw[n:n+int(h.CompressedSize)], int(h.UncompressedSize))
	if err != nil {
		return ColumnValues{}, err
	}
	return decodeValues(col, h.Encoding, body, int(h.NumValues))
}
