package meta

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"rottnest/internal/component"
	"rottnest/internal/objectstore"
	"rottnest/internal/simtime"
)

func newTable(t *testing.T) (*Table, *objectstore.MemStore) {
	t.Helper()
	clock := simtime.NewVirtualClock()
	store := objectstore.NewMemStore(clock)
	return New(store, clock, "ix/_meta"), store
}

func entry(key, column string, kind component.Kind, files ...string) IndexEntry {
	return IndexEntry{IndexKey: key, Column: column, Kind: kind, Files: files, Rows: int64(len(files)) * 100}
}

func TestInsertListDelete(t *testing.T) {
	ctx := context.Background()
	tbl, _ := newTable(t)

	got, err := tbl.List(ctx)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty list: %v, %v", got, err)
	}
	if err := tbl.Insert(ctx, entry("a.index", "id", component.KindTrie, "f1", "f2")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(ctx, entry("b.index", "id", component.KindTrie, "f3")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(ctx, entry("c.index", "body", component.KindFM, "f1")); err != nil {
		t.Fatal(err)
	}
	got, err = tbl.List(ctx)
	if err != nil || len(got) != 3 {
		t.Fatalf("list = %d, %v", len(got), err)
	}
	if got[0].CreatedAt.IsZero() {
		t.Fatal("CreatedAt not stamped")
	}
	forID, err := tbl.ListFor(ctx, "id", component.KindTrie)
	if err != nil || len(forID) != 2 {
		t.Fatalf("ListFor = %d, %v", len(forID), err)
	}
	if err := tbl.Delete(ctx, "a.index"); err != nil {
		t.Fatal(err)
	}
	got, _ = tbl.List(ctx)
	if len(got) != 2 {
		t.Fatalf("after delete: %d", len(got))
	}
	// Idempotent delete of missing key.
	if err := tbl.Delete(ctx, "a.index", "nope"); err != nil {
		t.Fatal(err)
	}
	// Empty operations are no-ops.
	if err := tbl.Insert(ctx); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInsertsAllLand(t *testing.T) {
	ctx := context.Background()
	tbl, _ := newTable(t)
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = tbl.Insert(ctx, entry(fmt.Sprintf("%02d.index", i), "id", component.KindTrie, fmt.Sprintf("f%d", i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	got, err := tbl.List(ctx)
	if err != nil || len(got) != n {
		t.Fatalf("list = %d, %v", len(got), err)
	}
}

func TestReplaySemantics(t *testing.T) {
	// Delete-then-insert in separate commits resolves by order.
	ctx := context.Background()
	tbl, _ := newTable(t)
	tbl.Insert(ctx, entry("x.index", "id", component.KindTrie, "f"))
	tbl.Delete(ctx, "x.index")
	tbl.Insert(ctx, entry("x.index", "id", component.KindTrie, "f", "g"))
	got, _ := tbl.List(ctx)
	if len(got) != 1 || len(got[0].Files) != 2 {
		t.Fatalf("replay = %+v", got)
	}
}

func TestLogKeysIgnoreForeignObjects(t *testing.T) {
	ctx := context.Background()
	tbl, store := newTable(t)
	// A stray non-log object under the prefix must not break replay.
	store.Put(ctx, "ix/_meta/README", []byte("not a log entry"))
	if err := tbl.Insert(ctx, entry("a.index", "id", component.KindTrie, "f")); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.List(ctx)
	if err != nil || len(got) != 1 {
		t.Fatalf("list = %v, %v", got, err)
	}
}

func TestMetaCheckpointsBoundReplay(t *testing.T) {
	ctx := context.Background()
	tbl, store := newTable(t)
	const commits = 70
	for i := 0; i < commits; i++ {
		if err := tbl.Insert(ctx, entry(fmt.Sprintf("%03d.index", i), "id", component.KindTrie, "f")); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoints landed.
	if _, err := store.Head(ctx, tbl.checkpointKey(64)); err != nil {
		t.Fatalf("checkpoint missing: %v", err)
	}
	got, err := tbl.List(ctx)
	if err != nil || len(got) != commits {
		t.Fatalf("list = %d, %v", len(got), err)
	}
	// Replay after a checkpoint reads only the suffix.
	entriesMap, latest, err := tbl.readAll(ctx)
	if err != nil || latest != commits || len(entriesMap) != commits {
		t.Fatalf("readAll: %d entries at v%d, %v", len(entriesMap), latest, err)
	}
	// Deletes replayed over the checkpoint still apply.
	if err := tbl.Delete(ctx, "000.index"); err != nil {
		t.Fatal(err)
	}
	got, _ = tbl.List(ctx)
	if len(got) != commits-1 {
		t.Fatalf("after delete: %d", len(got))
	}
	// Corrupted checkpoint falls back to full replay.
	store.Put(ctx, tbl.checkpointKey(64), []byte("junk"))
	got, err = tbl.List(ctx)
	if err != nil || len(got) != commits-1 {
		t.Fatalf("fallback list = %d, %v", len(got), err)
	}
}

func TestMetaConcurrentCommitsAroundCheckpoint(t *testing.T) {
	// Concurrent inserts racing across the checkpoint boundary must
	// all land and replay correctly.
	ctx := context.Background()
	tbl, _ := newTable(t)
	for i := 0; i < checkpointInterval-4; i++ {
		if err := tbl.Insert(ctx, entry(fmt.Sprintf("pre-%03d.index", i), "id", component.KindTrie, "f")); err != nil {
			t.Fatal(err)
		}
	}
	const racers = 10
	var wg sync.WaitGroup
	errs := make([]error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = tbl.Insert(ctx, entry(fmt.Sprintf("race-%03d.index", i), "id", component.KindTrie, "f"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("racer %d: %v", i, err)
		}
	}
	got, err := tbl.List(ctx)
	if err != nil || len(got) != checkpointInterval-4+racers {
		t.Fatalf("list = %d, %v", len(got), err)
	}
}
