// Package meta implements the Rottnest metadata table (Section IV of
// the paper): the transactional record of which index files exist and
// which Parquet files each one covers. The paper implements it as a
// Delta Lake table; here it is a JSON transaction log committed with
// conditional PUTs on the same object store — the same
// optimistic-concurrency technique, and, as the paper notes, any
// transactional store would do.
package meta

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/objectstore"
	"rottnest/internal/simtime"
)

// IndexEntry is one row of the metadata table: one committed index
// file.
type IndexEntry struct {
	// IndexKey is the index file's object key (absolute).
	IndexKey string `json:"index_key"`
	// Kind is the index type.
	Kind component.Kind `json:"kind"`
	// Column is the indexed column name.
	Column string `json:"column"`
	// Files are the lake-relative paths of the Parquet files the
	// index covers.
	Files []string `json:"files"`
	// Rows is the total number of rows covered, used by compaction
	// planning.
	Rows int64 `json:"rows"`
	// SizeBytes is the index file size, used by compaction planning.
	SizeBytes int64 `json:"size_bytes"`
	// CreatedAt is the commit time.
	CreatedAt time.Time `json:"created_at"`
}

// record is one transaction-log entry.
type record struct {
	Version int64        `json:"version"`
	Inserts []IndexEntry `json:"inserts,omitempty"`
	Deletes []string     `json:"deletes,omitempty"` // index keys
}

// Table is a handle to the metadata table under a key prefix.
type Table struct {
	store objectstore.Store
	clock simtime.Clock
	root  string
}

// New returns a handle to the metadata table rooted at prefix
// (created lazily on first commit).
func New(store objectstore.Store, clock simtime.Clock, prefix string) *Table {
	if clock == nil {
		clock = simtime.RealClock{}
	}
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	return &Table{store: store, clock: clock, root: prefix}
}

// Root returns the table's key prefix.
func (t *Table) Root() string { return t.root }

func (t *Table) key(version int64) string {
	return fmt.Sprintf("%s%020d.json", t.root, version)
}

func (t *Table) parseVersion(key string) (int64, bool) {
	name := strings.TrimSuffix(strings.TrimPrefix(key, t.root), ".json")
	if len(name) != 20 {
		return 0, false
	}
	var v int64
	for _, c := range name {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	return v, true
}

// checkpointInterval is how many commits between automatic metadata
// checkpoints; like the lake's, they keep log replay cost flat.
const checkpointInterval = 32

// metaCheckpoint is the serialized live-entry set at one version.
type metaCheckpoint struct {
	Version int64        `json:"version"`
	Entries []IndexEntry `json:"entries"`
}

func (t *Table) checkpointKey(version int64) string {
	return fmt.Sprintf("%scheckpoint-%020d.json", t.root, version)
}

func (t *Table) parseCheckpointVersion(key string) (int64, bool) {
	name := strings.TrimPrefix(key, t.root+"checkpoint-")
	if name == key || !strings.HasSuffix(name, ".json") {
		return 0, false
	}
	name = strings.TrimSuffix(name, ".json")
	if len(name) != 20 {
		return 0, false
	}
	var v int64
	for _, c := range name {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	return v, true
}

// maybeCheckpoint writes a checkpoint after every checkpointInterval-th
// commit (best effort; failures are invisible).
func (t *Table) maybeCheckpoint(ctx context.Context, version int64) {
	if version%checkpointInterval != 0 {
		return
	}
	entries, latest, err := t.readAll(ctx)
	if err != nil || latest != version {
		return
	}
	cp := metaCheckpoint{Version: version}
	for _, e := range entries {
		cp.Entries = append(cp.Entries, e)
	}
	sortEntries(cp.Entries)
	data, err := json.Marshal(cp)
	if err != nil {
		return
	}
	_ = t.store.Put(ctx, t.checkpointKey(version), data)
}

// readAll replays the log and returns the live entries plus the
// latest version. The newest usable checkpoint bounds the replayed
// suffix, and log objects are fetched with one parallel fan (the way
// delta-rs reads Delta logs), so replay cost stays flat as the log
// grows.
func (t *Table) readAll(ctx context.Context) (map[string]IndexEntry, int64, error) {
	infos, err := t.store.List(ctx, t.root)
	if err != nil {
		return nil, 0, fmt.Errorf("meta: list log: %w", err)
	}
	// Newest parseable checkpoint.
	var base *metaCheckpoint
	bestV, bestKey := int64(-1), ""
	for _, info := range infos {
		if v, ok := t.parseCheckpointVersion(info.Key); ok && v > bestV {
			bestV, bestKey = v, info.Key
		}
	}
	if bestV >= 0 {
		if data, err := t.store.Get(ctx, bestKey); err == nil {
			var cp metaCheckpoint
			if json.Unmarshal(data, &cp) == nil {
				base = &cp
			}
		}
	}
	minExclusive := int64(0)
	if base != nil {
		minExclusive = base.Version
	}
	var keys []string
	latest := minExclusive
	for _, info := range infos {
		v, ok := t.parseVersion(info.Key)
		if !ok {
			continue
		}
		if v > latest {
			latest = v
		}
		if v <= minExclusive {
			continue
		}
		keys = append(keys, info.Key)
	}
	reqs := make([]objectstore.RangeRequest, len(keys))
	for i, k := range keys {
		reqs[i] = objectstore.RangeRequest{Key: k, Offset: 0, Length: -1}
	}
	bodies, err := objectstore.FanGet(ctx, t.store, reqs)
	if err != nil {
		return nil, 0, fmt.Errorf("meta: read log: %w", err)
	}
	entries := make(map[string]IndexEntry)
	if base != nil {
		for _, e := range base.Entries {
			entries[e.IndexKey] = e
		}
	}
	for i, data := range bodies {
		var rec record
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, 0, fmt.Errorf("meta: parse %s: %w", keys[i], err)
		}
		for _, k := range rec.Deletes {
			delete(entries, k)
		}
		for _, e := range rec.Inserts {
			entries[e.IndexKey] = e
		}
	}
	return entries, latest, nil
}

// List returns every live entry of the table.
func (t *Table) List(ctx context.Context) ([]IndexEntry, error) {
	entries, _, err := t.readAll(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]IndexEntry, 0, len(entries))
	for _, e := range entries {
		out = append(out, e)
	}
	sortEntries(out)
	return out, nil
}

// ListFor returns the live entries for one (column, kind) index.
func (t *Table) ListFor(ctx context.Context, column string, kind component.Kind) ([]IndexEntry, error) {
	all, err := t.List(ctx)
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, e := range all {
		if e.Column == column && e.Kind == kind {
			out = append(out, e)
		}
	}
	return out, nil
}

func sortEntries(entries []IndexEntry) {
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].IndexKey < entries[j-1].IndexKey; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
}

// commit appends a record with optimistic concurrency.
func (t *Table) commit(ctx context.Context, inserts []IndexEntry, deletes []string) error {
	for attempt := 0; attempt < 32; attempt++ {
		_, latest, err := t.readAll(ctx)
		if err != nil {
			return err
		}
		rec := record{Version: latest + 1, Inserts: inserts, Deletes: deletes}
		data, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("meta: encode record: %w", err)
		}
		err = t.store.PutIfAbsent(ctx, t.key(latest+1), data)
		if err == nil {
			t.maybeCheckpoint(ctx, latest+1)
			return nil
		}
		if !errors.Is(err, objectstore.ErrExists) {
			return err
		}
	}
	return fmt.Errorf("meta: commit retries exhausted")
}

// Insert transactionally adds entries, stamping CreatedAt.
func (t *Table) Insert(ctx context.Context, entries ...IndexEntry) error {
	if len(entries) == 0 {
		return nil
	}
	now := t.clock.Now()
	for i := range entries {
		if entries[i].CreatedAt.IsZero() {
			entries[i].CreatedAt = now
		}
	}
	return t.commit(ctx, entries, nil)
}

// Delete transactionally removes the entries with the given index
// keys (missing keys are ignored, keeping Delete idempotent).
func (t *Table) Delete(ctx context.Context, indexKeys ...string) error {
	if len(indexKeys) == 0 {
		return nil
	}
	return t.commit(ctx, nil, indexKeys)
}
