package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTextGenDeterministic(t *testing.T) {
	a := NewTextGen(DefaultTextConfig(7)).Docs(20)
	b := NewTextGen(DefaultTextConfig(7)).Docs(20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("doc %d differs under same seed", i)
		}
	}
	c := NewTextGen(DefaultTextConfig(8)).Docs(20)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestTextGenZipfSkew(t *testing.T) {
	g := NewTextGen(DefaultTextConfig(1))
	counts := map[string]int{}
	total := 0
	for _, d := range g.Docs(500) {
		for _, w := range strings.Fields(d) {
			counts[w]++
			total++
		}
	}
	// Zipf text: the most frequent word should dominate.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(total) < 0.05 {
		t.Fatalf("top word frequency %.3f, want skewed distribution", float64(max)/float64(total))
	}
	if len(counts) < 100 {
		t.Fatalf("only %d distinct words", len(counts))
	}
}

func TestPlantNeedle(t *testing.T) {
	docs := []string{"aaaa bbbb", "cccc dddd", "eeee ffff"}
	docs = PlantNeedle(docs, "NEEDLE", []int{1, 5, -1})
	if !strings.Contains(docs[1], "NEEDLE") {
		t.Fatal("needle not planted at index 1")
	}
	if strings.Contains(docs[0], "NEEDLE") || strings.Contains(docs[2], "NEEDLE") {
		t.Fatal("needle planted at wrong index")
	}
}

func TestUUIDGenDeterministicAndDistinct(t *testing.T) {
	a := NewUUIDGen(3).Batch(1000)
	b := NewUUIDGen(3).Batch(1000)
	seen := make(map[[16]byte]bool, len(a))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("uuid %d differs under same seed", i)
		}
		if seen[a[i]] {
			t.Fatalf("duplicate uuid at %d", i)
		}
		seen[a[i]] = true
	}
}

func TestUUIDString(t *testing.T) {
	id := [16]byte{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88}
	want := "12345678-9abc-def0-1122-334455667788"
	if got := UUIDString(id); got != want {
		t.Fatalf("UUIDString = %s, want %s", got, want)
	}
}

func TestVectorGenShape(t *testing.T) {
	cfg := DefaultVectorConfig(11)
	g := NewVectorGen(cfg)
	if g.Dim() != cfg.Dim {
		t.Fatalf("Dim = %d", g.Dim())
	}
	vecs := g.Batch(100)
	for i, v := range vecs {
		if len(v) != cfg.Dim {
			t.Fatalf("vector %d has dim %d", i, len(v))
		}
	}
	// Clustered data: the average nearest-neighbor distance should be
	// much smaller than the average pairwise distance.
	var nnSum, pairSum float64
	var pairs int
	for i := 0; i < 30; i++ {
		nn := math.Inf(1)
		for j := 0; j < len(vecs); j++ {
			if i == j {
				continue
			}
			d := float64(L2Squared(vecs[i], vecs[j]))
			pairSum += d
			pairs++
			if d < nn {
				nn = d
			}
		}
		nnSum += nn
	}
	if nnSum/30 >= pairSum/float64(pairs) {
		t.Fatal("vectors show no cluster structure")
	}
}

func TestExactNearestAndRecall(t *testing.T) {
	vecs := [][]float32{{0, 0}, {1, 0}, {5, 5}, {0.1, 0}, {10, 10}}
	got := ExactNearest(vecs, []float32{0, 0}, 3)
	if len(got) != 3 || got[0] != 0 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("ExactNearest = %v", got)
	}
	if r := Recall([]int{0, 3, 2}, got); math.Abs(r-2.0/3.0) > 1e-9 {
		t.Fatalf("Recall = %v", r)
	}
	if r := Recall(nil, nil); r != 1 {
		t.Fatalf("Recall(nil,nil) = %v", r)
	}
	// k larger than dataset.
	all := ExactNearest(vecs, []float32{0, 0}, 100)
	if len(all) != len(vecs) {
		t.Fatalf("ExactNearest big k returned %d", len(all))
	}
}

func TestVectorByteRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		v := make([]float32, len(raw))
		for i, u := range raw {
			v[i] = math.Float32frombits(u)
			if math.IsNaN(float64(v[i])) {
				v[i] = 0
			}
		}
		got := BytesToFloat32s(Float32sToBytes(v))
		if len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
