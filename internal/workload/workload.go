// Package workload generates the synthetic datasets and query sets
// used by the evaluation, replacing the paper's external data: a
// Zipfian word-mixture text corpus stands in for C4/FineWeb (substring
// search), seeded uniform 128-bit hashes stand in for the 2B-UUID
// enterprise workload, and Gaussian-cluster embeddings stand in for
// SIFT (vector search). All generators are deterministic under a seed
// so experiments are reproducible.
package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// TextConfig parameterizes the synthetic text corpus.
type TextConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// VocabSize is the number of distinct words.
	VocabSize int
	// ZipfS is the Zipf skew exponent (>1). Web text is roughly 1.1.
	ZipfS float64
	// DocWords is the mean number of words per document.
	DocWords int
}

// DefaultTextConfig mimics web-crawl text statistics at laptop scale.
func DefaultTextConfig(seed int64) TextConfig {
	return TextConfig{Seed: seed, VocabSize: 30000, ZipfS: 1.1, DocWords: 80}
}

// TextGen generates documents with Zipf-distributed word frequencies.
type TextGen struct {
	cfg   TextConfig
	rng   *rand.Rand
	zipf  *rand.Zipf
	vocab []string
}

// NewTextGen returns a generator for the given configuration.
func NewTextGen(cfg TextConfig) *TextGen {
	if cfg.VocabSize <= 0 {
		cfg.VocabSize = 30000
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.1
	}
	if cfg.DocWords <= 0 {
		cfg.DocWords = 80
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.VocabSize-1))
	vocab := make([]string, cfg.VocabSize)
	const letters = "abcdefghijklmnopqrstuvwxyz"
	for i := range vocab {
		n := 3 + rng.Intn(8)
		b := make([]byte, n)
		for j := range b {
			b[j] = letters[rng.Intn(len(letters))]
		}
		vocab[i] = string(b)
	}
	return &TextGen{cfg: cfg, rng: rng, zipf: zipf, vocab: vocab}
}

// Doc returns the next synthetic document.
func (g *TextGen) Doc() string {
	n := g.cfg.DocWords/2 + g.rng.Intn(g.cfg.DocWords)
	buf := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, g.vocab[g.zipf.Uint64()]...)
	}
	return string(buf)
}

// Docs returns the next n documents.
func (g *TextGen) Docs(n int) []string {
	docs := make([]string, n)
	for i := range docs {
		docs[i] = g.Doc()
	}
	return docs
}

// PlantNeedle inserts needle into the middle of every doc whose index
// is in positions, returning the modified slice. Experiments use it to
// create substring queries with known ground truth.
func PlantNeedle(docs []string, needle string, positions []int) []string {
	for _, p := range positions {
		if p < 0 || p >= len(docs) {
			continue
		}
		d := docs[p]
		mid := len(d) / 2
		docs[p] = d[:mid] + needle + d[mid:]
	}
	return docs
}

// UUIDGen generates seeded 16-byte identifiers, mirroring the paper's
// synthetic high-cardinality hash workload.
type UUIDGen struct {
	rng *rand.Rand
}

// NewUUIDGen returns a deterministic UUID generator.
func NewUUIDGen(seed int64) *UUIDGen {
	return &UUIDGen{rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next 16-byte identifier.
func (g *UUIDGen) Next() [16]byte {
	var id [16]byte
	binary.BigEndian.PutUint64(id[0:8], g.rng.Uint64())
	binary.BigEndian.PutUint64(id[8:16], g.rng.Uint64())
	return id
}

// Batch returns the next n identifiers.
func (g *UUIDGen) Batch(n int) [][16]byte {
	out := make([][16]byte, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// UUIDString formats id in canonical 8-4-4-4-12 hex form.
func UUIDString(id [16]byte) string {
	return fmt.Sprintf("%x-%x-%x-%x-%x", id[0:4], id[4:6], id[6:8], id[8:10], id[10:16])
}

// VectorConfig parameterizes the synthetic embedding dataset.
type VectorConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Dim is the vector dimensionality (SIFT uses 128).
	Dim int
	// Clusters is the number of Gaussian modes.
	Clusters int
	// Spread is the intra-cluster standard deviation relative to the
	// unit-scale inter-cluster distances.
	Spread float64
}

// DefaultVectorConfig mimics SIFT-like clustered structure at reduced
// dimensionality for laptop-scale runs.
func DefaultVectorConfig(seed int64) VectorConfig {
	return VectorConfig{Seed: seed, Dim: 64, Clusters: 64, Spread: 0.15}
}

// VectorGen generates vectors from a Gaussian mixture.
type VectorGen struct {
	cfg     VectorConfig
	rng     *rand.Rand
	centers [][]float32
}

// NewVectorGen returns a generator with freshly sampled mixture
// centers.
func NewVectorGen(cfg VectorConfig) *VectorGen {
	if cfg.Dim <= 0 {
		cfg.Dim = 64
	}
	if cfg.Clusters <= 0 {
		cfg.Clusters = 64
	}
	if cfg.Spread <= 0 {
		cfg.Spread = 0.15
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := make([][]float32, cfg.Clusters)
	for i := range centers {
		c := make([]float32, cfg.Dim)
		for j := range c {
			c[j] = float32(rng.NormFloat64())
		}
		centers[i] = c
	}
	return &VectorGen{cfg: cfg, rng: rng, centers: centers}
}

// Dim returns the vector dimensionality.
func (g *VectorGen) Dim() int { return g.cfg.Dim }

// Next returns the next vector, drawn from a random mixture component.
func (g *VectorGen) Next() []float32 {
	c := g.centers[g.rng.Intn(len(g.centers))]
	v := make([]float32, g.cfg.Dim)
	for j := range v {
		v[j] = c[j] + float32(g.rng.NormFloat64()*g.cfg.Spread)
	}
	return v
}

// Batch returns the next n vectors.
func (g *VectorGen) Batch(n int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Queries returns n query vectors drawn from the same mixture, so that
// nearest neighbors exist in the dataset.
func (g *VectorGen) Queries(n int) [][]float32 {
	return g.Batch(n)
}

// L2Squared returns the squared Euclidean distance between a and b,
// which must have equal length.
func L2Squared(a, b []float32) float32 {
	var sum float32
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// ExactNearest returns the indices of the k nearest vectors to q under
// L2 distance by exhaustive scan. It provides recall ground truth.
func ExactNearest(vectors [][]float32, q []float32, k int) []int {
	type cand struct {
		idx  int
		dist float32
	}
	if k > len(vectors) {
		k = len(vectors)
	}
	best := make([]cand, 0, k+1)
	for i, v := range vectors {
		d := L2Squared(q, v)
		if len(best) < k || d < best[len(best)-1].dist {
			// insertion sort into the running top-k
			pos := len(best)
			for pos > 0 && best[pos-1].dist > d {
				pos--
			}
			best = append(best, cand{})
			copy(best[pos+1:], best[pos:])
			best[pos] = cand{idx: i, dist: d}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	out := make([]int, len(best))
	for i, c := range best {
		out[i] = c.idx
	}
	return out
}

// Recall computes |got ∩ truth| / |truth|, the recall@k metric used in
// the paper's vector evaluation.
func Recall(got, truth []int) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := make(map[int]bool, len(truth))
	for _, t := range truth {
		set[t] = true
	}
	hits := 0
	for _, g := range got {
		if set[g] {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}

// Float32sToBytes encodes vectors as little-endian float32 fixed-width
// payloads, the representation stored in the lake's vector column.
func Float32sToBytes(v []float32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

// BytesToFloat32s decodes a fixed-width float32 payload.
func BytesToFloat32s(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}
