// Package bruteforce implements the paper's first baseline: scanning
// the whole data lake with a horizontally scaled query engine
// (Spark-on-EMR in the paper, Section II-C2). The cluster actually
// executes the scans against the same simulated object store Rottnest
// uses, and its virtual latency reproduces the scaling behaviour of
// Figure 8: near-linear speedup while per-query spin-up and scheduling
// overheads are amortized, then a knee where adding workers stops
// helping latency and only inflates cost.
package bruteforce

import (
	"context"
	"fmt"
	"time"

	"rottnest/internal/insitu"
	"rottnest/internal/lake"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
)

// ClusterConfig models a scan cluster.
type ClusterConfig struct {
	// Workers is the number of worker instances.
	Workers int
	// SpinUpBase is the fixed per-query task spin-up latency
	// (driver scheduling, task launch). Defaults to 2s.
	SpinUpBase time.Duration
	// SpinUpPerWorker adds scheduling latency per worker; it is what
	// bends the scaling curve at high worker counts. Defaults to
	// 60ms.
	SpinUpPerWorker time.Duration
	// DecodeBps is each worker's decompress+scan throughput in
	// bytes/second of file data. Defaults to 200 MB/s.
	DecodeBps float64
	// StragglerFactor inflates the slowest worker's share,
	// modelling skew. Defaults to 1.15.
	StragglerFactor float64
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.SpinUpBase <= 0 {
		c.SpinUpBase = 2 * time.Second
	}
	if c.SpinUpPerWorker <= 0 {
		c.SpinUpPerWorker = 60 * time.Millisecond
	}
	if c.DecodeBps <= 0 {
		c.DecodeBps = 200e6
	}
	if c.StragglerFactor < 1 {
		c.StragglerFactor = 1.15
	}
	return c
}

// Cluster scans a lake table.
type Cluster struct {
	table *lake.Table
	cfg   ClusterConfig
}

// NewCluster returns a scan cluster over the table.
func NewCluster(table *lake.Table, cfg ClusterConfig) *Cluster {
	return &Cluster{table: table, cfg: cfg.withDefaults()}
}

// Workers returns the configured worker count.
func (c *Cluster) Workers() int { return c.cfg.Workers }

// Report summarizes one brute-force query.
type Report struct {
	// Latency is the query's virtual wall-clock latency.
	Latency time.Duration
	// WorkerSeconds is Latency times the worker count — the resource
	// the cost model charges for.
	WorkerSeconds float64
	// BytesScanned is the total file bytes read.
	BytesScanned int64
	// FilesScanned is the number of data files read.
	FilesScanned int
}

// Scan scans the given column of every file in the snapshot with the
// predicate, exactly like a full-table Spark SQL filter. Matches from
// every file are returned; top-K truncation is the caller's concern
// (a scoring query must see everything anyway).
func (c *Cluster) Scan(ctx context.Context, snapshotVersion int64, column string, pred insitu.Predicate) ([]insitu.Match, *Report, error) {
	session := simtime.From(ctx)
	start := session.Elapsed()

	snap, err := c.table.SnapshotAt(ctx, snapshotVersion)
	if err != nil {
		return nil, nil, err
	}
	ci := snap.Schema.ColumnIndex(column)
	if ci < 0 {
		return nil, nil, fmt.Errorf("bruteforce: column %q not in schema", column)
	}

	// Spin-up: driver scheduling plus per-worker task launch.
	spinUp := c.cfg.SpinUpBase + time.Duration(c.cfg.Workers)*c.cfg.SpinUpPerWorker
	session.Add(spinUp)

	report := &Report{FilesScanned: len(snap.Files)}
	files := snap.Files
	var totalBytes int64
	for _, f := range files {
		totalBytes += f.Size
	}
	report.BytesScanned = totalBytes

	// Planning wave: fetch footers and deletion vectors, and split
	// every file into row-group scan units — the task granularity
	// Spark uses for Parquet, which is what lets a scan of few large
	// files still occupy many workers.
	metas := make([]*parquet.FileMeta, len(files))
	dvs := make([]*lake.DeletionVector, len(files))
	planErrs := make([]error, len(files))
	session.ParallelN(len(files), c.cfg.Workers, func(i int, s *simtime.Session) {
		bctx := ctx
		if s != nil {
			bctx = simtime.With(ctx, s)
		}
		metas[i], planErrs[i] = parquet.ReadFileMeta(bctx, c.table.Store(), c.table.Root()+files[i].Path)
		if planErrs[i] != nil {
			return
		}
		dvs[i], planErrs[i] = c.table.ReadDeletionVector(bctx, files[i])
	})
	for _, err := range planErrs {
		if err != nil {
			return nil, nil, err
		}
	}
	type unit struct {
		file     int
		group    int
		firstRow int64
	}
	var units []unit
	for fi, meta := range metas {
		var row int64
		for gi, g := range meta.RowGroups {
			units = append(units, unit{file: fi, group: gi, firstRow: row})
			row += g.NumRows
		}
	}

	outs := make([][]insitu.Match, len(units))
	errs := make([]error, len(units))
	scanOne := func(i int, s *simtime.Session) {
		bctx := ctx
		if s != nil {
			bctx = simtime.With(ctx, s)
		}
		u := units[i]
		f := files[u.file]
		vals, err := parquet.ReadColumnChunk(bctx, c.table.Store(), c.table.Root()+f.Path, metas[u.file], u.group, ci)
		if err != nil {
			errs[i] = err
			return
		}
		chunk := metas[u.file].RowGroups[u.group].Chunks[ci]
		var ms []insitu.Match
		for r, v := range vals.Bytes {
			row := u.firstRow + int64(r)
			if dvs[u.file].Contains(uint32(row)) {
				continue
			}
			if keep, score := pred(v); keep {
				ms = append(ms, insitu.Match{Path: f.Path, Row: row, Value: v, Score: score})
			}
		}
		outs[i] = ms
		// Decode/compute cost on top of the store's transfer time.
		s.Add(time.Duration(float64(chunk.Size) / c.cfg.DecodeBps * float64(time.Second)))
	}

	// Session methods are nil-safe: with no session the scan still
	// runs in parallel, just without virtual-time accounting.
	session.ParallelN(len(units), c.cfg.Workers, scanOne)
	// Straggler skew: the critical path is a bit worse than the
	// ideal even partition.
	work := session.Elapsed() - start - spinUp
	if work > 0 && c.cfg.StragglerFactor > 1 {
		session.Add(time.Duration(float64(work) * (c.cfg.StragglerFactor - 1)))
	}

	var matches []insitu.Match
	for i := range units {
		if errs[i] != nil {
			return nil, nil, errs[i]
		}
		matches = append(matches, outs[i]...)
	}
	insitu.SortMatches(matches)

	report.Latency = session.Elapsed() - start
	report.WorkerSeconds = report.Latency.Seconds() * float64(c.cfg.Workers)
	return matches, report, nil
}

// ScanColumns scans several columns of every file at once and applies
// a row-level predicate over the tuple of values — the oracle for
// compound (multi-predicate) queries. vals passed to eval are aligned
// with columns; a nil entry means the value is absent. The returned
// Match.Value carries the column at outputIdx.
func (c *Cluster) ScanColumns(ctx context.Context, snapshotVersion int64, columns []string, outputIdx int, eval func(vals [][]byte) (bool, float64)) ([]insitu.Match, *Report, error) {
	session := simtime.From(ctx)
	start := session.Elapsed()

	if len(columns) == 0 {
		return nil, nil, fmt.Errorf("bruteforce: no columns to scan")
	}
	if outputIdx < 0 || outputIdx >= len(columns) {
		return nil, nil, fmt.Errorf("bruteforce: output index %d out of range", outputIdx)
	}
	snap, err := c.table.SnapshotAt(ctx, snapshotVersion)
	if err != nil {
		return nil, nil, err
	}
	cis := make([]int, len(columns))
	for i, col := range columns {
		cis[i] = snap.Schema.ColumnIndex(col)
		if cis[i] < 0 {
			return nil, nil, fmt.Errorf("bruteforce: column %q not in schema", col)
		}
	}

	spinUp := c.cfg.SpinUpBase + time.Duration(c.cfg.Workers)*c.cfg.SpinUpPerWorker
	session.Add(spinUp)

	report := &Report{FilesScanned: len(snap.Files)}
	files := snap.Files
	var totalBytes int64
	for _, f := range files {
		totalBytes += f.Size
	}
	report.BytesScanned = totalBytes

	metas := make([]*parquet.FileMeta, len(files))
	dvs := make([]*lake.DeletionVector, len(files))
	planErrs := make([]error, len(files))
	session.ParallelN(len(files), c.cfg.Workers, func(i int, s *simtime.Session) {
		bctx := ctx
		if s != nil {
			bctx = simtime.With(ctx, s)
		}
		metas[i], planErrs[i] = parquet.ReadFileMeta(bctx, c.table.Store(), c.table.Root()+files[i].Path)
		if planErrs[i] != nil {
			return
		}
		dvs[i], planErrs[i] = c.table.ReadDeletionVector(bctx, files[i])
	})
	for _, err := range planErrs {
		if err != nil {
			return nil, nil, err
		}
	}
	type unit struct {
		file     int
		group    int
		firstRow int64
	}
	var units []unit
	for fi, meta := range metas {
		var row int64
		for gi, g := range meta.RowGroups {
			units = append(units, unit{file: fi, group: gi, firstRow: row})
			row += g.NumRows
		}
	}

	outs := make([][]insitu.Match, len(units))
	errs := make([]error, len(units))
	scanOne := func(i int, s *simtime.Session) {
		bctx := ctx
		if s != nil {
			bctx = simtime.With(ctx, s)
		}
		u := units[i]
		f := files[u.file]
		cols := make([][][]byte, len(cis))
		var chunkBytes int64
		for k, ci := range cis {
			vals, err := parquet.ReadColumnChunk(bctx, c.table.Store(), c.table.Root()+f.Path, metas[u.file], u.group, ci)
			if err != nil {
				errs[i] = err
				return
			}
			cols[k] = vals.Bytes
			chunkBytes += metas[u.file].RowGroups[u.group].Chunks[ci].Size
		}
		n := len(cols[0])
		var ms []insitu.Match
		tuple := make([][]byte, len(cis))
		for r := 0; r < n; r++ {
			row := u.firstRow + int64(r)
			if dvs[u.file].Contains(uint32(row)) {
				continue
			}
			for k := range cols {
				if r < len(cols[k]) {
					tuple[k] = cols[k][r]
				} else {
					tuple[k] = nil
				}
			}
			if keep, score := eval(tuple); keep {
				ms = append(ms, insitu.Match{Path: f.Path, Row: row, Value: tuple[outputIdx], Score: score})
			}
		}
		outs[i] = ms
		s.Add(time.Duration(float64(chunkBytes) / c.cfg.DecodeBps * float64(time.Second)))
	}

	session.ParallelN(len(units), c.cfg.Workers, scanOne)
	work := session.Elapsed() - start - spinUp
	if work > 0 && c.cfg.StragglerFactor > 1 {
		session.Add(time.Duration(float64(work) * (c.cfg.StragglerFactor - 1)))
	}

	var matches []insitu.Match
	for i := range units {
		if errs[i] != nil {
			return nil, nil, errs[i]
		}
		matches = append(matches, outs[i]...)
	}
	insitu.SortMatches(matches)

	report.Latency = session.Elapsed() - start
	report.WorkerSeconds = report.Latency.Seconds() * float64(c.cfg.Workers)
	return matches, report, nil
}
