package bruteforce

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"rottnest/internal/insitu"
	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

var schema = parquet.MustSchema(parquet.Column{Name: "body", Type: parquet.TypeByteArray})

func newLake(t testing.TB, files, docsPerFile int) (*lake.Table, *simtime.VirtualClock) {
	t.Helper()
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	inner := objectstore.NewMemStore(clock)
	store, _ := objectstore.Instrument(inner, objectstore.DefaultS3Model())
	table, err := lake.CreateWith(ctx, store, "lake", schema, lake.OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewTextGen(workload.DefaultTextConfig(1))
	for f := 0; f < files; f++ {
		docs := gen.Docs(docsPerFile)
		if f == 0 {
			docs = workload.PlantNeedle(docs, "ScanTargetNeedle", []int{3})
		}
		b := parquet.NewBatch(schema)
		vals := make([][]byte, len(docs))
		for i, d := range docs {
			vals[i] = []byte(d)
		}
		b.Cols[0] = parquet.ColumnValues{Bytes: vals}
		if _, err := table.Append(ctx, b, parquet.WriterOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	return table, clock
}

func needlePred(s string) insitu.Predicate {
	return func(v []byte) (bool, float64) { return bytes.Contains(v, []byte(s)), 0 }
}

func TestScanFindsMatches(t *testing.T) {
	table, _ := newLake(t, 4, 200)
	cluster := NewCluster(table, ClusterConfig{Workers: 4})
	sess := simtime.NewSession()
	ctx := simtime.With(context.Background(), sess)
	matches, report, err := cluster.Scan(ctx, -1, "body", needlePred("ScanTargetNeedle"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("matches = %d", len(matches))
	}
	if report.FilesScanned != 4 || report.BytesScanned == 0 {
		t.Fatalf("report = %+v", report)
	}
	if report.Latency <= 0 || report.WorkerSeconds <= 0 {
		t.Fatalf("latency accounting: %+v", report)
	}
}

func TestScanAppliesDeletionVectors(t *testing.T) {
	table, _ := newLake(t, 1, 100)
	ctx := context.Background()
	snap, _ := table.Snapshot(ctx)
	// Find and delete the needle row.
	cluster := NewCluster(table, ClusterConfig{Workers: 2})
	matches, _, err := cluster.Scan(ctx, -1, "body", needlePred("ScanTargetNeedle"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("pre-delete: %d, %v", len(matches), err)
	}
	if err := table.DeleteRows(ctx, snap.Files[0].Path, []uint32{uint32(matches[0].Row)}); err != nil {
		t.Fatal(err)
	}
	matches, _, err = cluster.Scan(ctx, -1, "body", needlePred("ScanTargetNeedle"))
	if err != nil || len(matches) != 0 {
		t.Fatalf("post-delete: %d, %v", len(matches), err)
	}
}

func TestScalingShapeMatchesFig8(t *testing.T) {
	// Latency falls with workers but flattens; cost per query rises
	// markedly at high worker counts — the knee of Figure 8a/8b.
	table, _ := newLake(t, 64, 400)
	latencies := map[int]time.Duration{}
	for _, w := range []int{1, 8, 32, 64} {
		// A slow modelled decode rate makes the laptop-scale dataset
		// behave like the paper's hundreds of GB: total work is large
		// relative to spin-up at 1 worker, and the spin-up growth
		// produces the knee at high worker counts.
		cluster := NewCluster(table, ClusterConfig{Workers: w, DecodeBps: 100e3})
		sess := simtime.NewSession()
		ctx := simtime.With(context.Background(), sess)
		_, report, err := cluster.Scan(ctx, -1, "body", needlePred("zzz"))
		if err != nil {
			t.Fatal(err)
		}
		latencies[w] = report.Latency
	}
	if !(latencies[1] > latencies[8] && latencies[8] > latencies[32]) {
		t.Fatalf("latency not improving: %v", latencies)
	}
	// Near-linear early: 1 -> 8 workers gives >4x.
	if float64(latencies[1])/float64(latencies[8]) < 4 {
		t.Fatalf("1->8 speedup = %.2f", float64(latencies[1])/float64(latencies[8]))
	}
	// Knee: 32 -> 64 gives much less than 2x.
	gain := float64(latencies[32]) / float64(latencies[64])
	if gain > 1.7 {
		t.Fatalf("32->64 speedup = %.2f, expected a knee", gain)
	}
	// Cost per query (worker-seconds) grows from 32 to 64.
	if 32*latencies[32].Seconds() > 64*latencies[64].Seconds() {
		t.Fatal("cost per query should rise past the knee")
	}
}

func TestScanUnknownColumn(t *testing.T) {
	table, _ := newLake(t, 1, 10)
	cluster := NewCluster(table, ClusterConfig{})
	if _, _, err := cluster.Scan(context.Background(), -1, "nope", needlePred("x")); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestDefaults(t *testing.T) {
	c := ClusterConfig{}.withDefaults()
	if c.Workers != 8 || c.DecodeBps <= 0 || c.StragglerFactor < 1 {
		t.Fatalf("defaults = %+v", c)
	}
	cluster := NewCluster(nil, ClusterConfig{Workers: 16})
	if cluster.Workers() != 16 {
		t.Fatal("Workers()")
	}
}

func BenchmarkBruteForceScan(b *testing.B) {
	table, _ := newLake(b, 8, 300)
	cluster := NewCluster(table, ClusterConfig{Workers: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := simtime.NewSession()
		ctx := simtime.With(context.Background(), sess)
		if _, _, err := cluster.Scan(ctx, -1, "body", needlePred(fmt.Sprintf("n%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}
