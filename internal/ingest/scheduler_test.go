package ingest

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/objectstore"
	"rottnest/internal/simtime"
)

// schedWorld is one writer+scheduler pair over a fresh table.
func schedWorld(t *testing.T, opts SchedulerOptions) (*Writer, *Scheduler, *simtime.VirtualClock) {
	t.Helper()
	clock := simtime.NewVirtualClock()
	// Meter requests (zero-latency model) so job costs hit the token
	// bucket; no cache, so every request counts.
	stack := objectstore.NewStack(objectstore.NewMemStore(clock), objectstore.StackOptions{
		Latency:    &objectstore.LatencyModel{},
		CacheBytes: -1,
	})
	tbl := newTestTable(t, stack.Store, clock)
	w := NewWriter(tbl, WriterOptions{MaxBatchRows: 2, Clock: clock, Manual: true})
	opts.Writer = w
	opts.Clock = clock
	if opts.Config.IndexDir == "" {
		opts.Config = core.Config{IndexDir: "idx", Clock: clock}
	}
	if opts.Specs == nil {
		opts.Specs = []core.IndexSpec{{Column: "msg", Kind: component.KindFM}}
	}
	s := NewScheduler(tbl, opts)
	return w, s, clock
}

// ingestRows appends n single-row batches and flushes them.
func ingestRows(t *testing.T, ctx context.Context, w *Writer, tag string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := w.Append(ctx, msgBatch(fmt.Sprintf("%s-%d", tag, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerIndexesAndMeasuresLag verifies the freshness loop: a
// group commit enters the ledger, an index job covers it, and the
// searchable lag (ack → covered, in virtual time) is exact.
func TestSchedulerIndexesAndMeasuresLag(t *testing.T) {
	ctx := context.Background()
	var covered []time.Duration
	w, s, clock := schedWorld(t, SchedulerOptions{
		OnCovered: func(_ string, _ int64, lag time.Duration) { covered = append(covered, lag) },
	})

	ingestRows(t, ctx, w, "a", 4)
	if got := s.Registry().Snapshot().Gauge("ingest.rows_unindexed"); got != 0 {
		// Gauge updates on observe, not on commit.
		t.Fatalf("rows_unindexed before first step = %d", got)
	}
	clock.Advance(3 * time.Second)
	worked, err := s.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !worked {
		t.Fatal("first step scheduled no job despite unindexed files")
	}
	// The index job ran in the same step that first observed the
	// backlog; the next step observes the new coverage.
	if _, err := s.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if len(covered) != 2 { // two 2-row micro-batches → two files
		t.Fatalf("OnCovered fired %d times, want 2", len(covered))
	}
	for _, lag := range covered {
		if lag != 3*time.Second {
			t.Fatalf("lag = %v, want exactly 3s of virtual time", lag)
		}
	}
	reg := s.Registry().Snapshot()
	if got := reg.Gauge("ingest.rows_unindexed"); got != 0 {
		t.Fatalf("rows_unindexed after coverage = %d", got)
	}
	if h := reg.Histograms["ingest.searchable_lag_ns"]; h.Count != 2 {
		t.Fatalf("lag histogram count = %d, want 2", h.Count)
	}
	if got := reg.Counter("ingest.jobs_index"); got != 1 {
		t.Fatalf("jobs_index = %d, want 1", got)
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerBackpressureWatermarks verifies the pause/resume state
// machine: the writer pauses once unindexed rows pass the high
// watermark and resumes below the low one.
func TestSchedulerBackpressureWatermarks(t *testing.T) {
	ctx := context.Background()
	w, s, _ := schedWorld(t, SchedulerOptions{
		PauseAboveRows:  4,
		ResumeBelowRows: 2,
	})

	ingestRows(t, ctx, w, "b", 6)
	// Observe only (drain the budget first so no job runs): simulate
	// by calling observe through Step after zeroing tokens.
	s.mu.Lock()
	s.tokens = -1e9
	s.mu.Unlock()
	if worked, err := s.Step(ctx); err != nil || worked {
		t.Fatalf("budget-starved step: worked=%v err=%v", worked, err)
	}
	if !w.Paused() {
		t.Fatal("writer not paused above high watermark")
	}
	if got := s.Registry().Snapshot().Counter("ingest.sched_pauses"); got != 1 {
		t.Fatalf("sched_pauses = %d, want 1", got)
	}

	// Restore budget, index the backlog, observe coverage: resume.
	s.mu.Lock()
	s.tokens = 1
	s.mu.Unlock()
	if worked, err := s.Step(ctx); err != nil || !worked {
		t.Fatalf("index step: worked=%v err=%v", worked, err)
	}
	s.mu.Lock()
	s.tokens = 1
	s.mu.Unlock()
	if _, err := s.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if w.Paused() {
		t.Fatal("writer still paused after backlog cleared")
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerBudgetPacing verifies the token bucket: a job's cost
// overdraws the bucket, further steps wait, and virtual time refills
// it (yielding floor keeps the rate positive).
func TestSchedulerBudgetPacing(t *testing.T) {
	ctx := context.Background()
	w, s, clock := schedWorld(t, SchedulerOptions{RequestsPerSec: 1})

	ingestRows(t, ctx, w, "c", 4)
	worked, err := s.Step(ctx)
	if err != nil || !worked {
		t.Fatalf("first step: worked=%v err=%v", worked, err)
	}
	s.mu.Lock()
	overdrawn := s.tokens < 0
	s.mu.Unlock()
	if !overdrawn {
		t.Fatal("index job cost did not overdraw a 1 req/s bucket")
	}

	// More data arrives; the bucket is in debt, so nothing schedules.
	ingestRows(t, ctx, w, "d", 4)
	if worked, err := s.Step(ctx); err != nil || worked {
		t.Fatalf("in-debt step: worked=%v err=%v", worked, err)
	}
	if got := s.Registry().Snapshot().Counter("ingest.budget_waits"); got == 0 {
		t.Fatal("no budget wait recorded")
	}

	// Virtual time refills the bucket; the backlog then indexes.
	for i := 0; i < 200; i++ {
		clock.Advance(10 * time.Second)
		worked, err := s.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if worked {
			if err := w.Close(ctx); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatal("bucket never refilled despite 2000s of virtual time")
}

// TestSchedulerRunRecoversFromBudgetStall exercises the Run daemon's
// worst case: the backlog passes the pause watermark, the budget is
// deep in debt, and — because the writer is paused — no further
// commits (and so no commit wakeups) can ever arrive. Run's ticker
// must still refill the budget, index the tail, and resume the
// writer; without it the system deadlocks permanently.
func TestSchedulerRunRecoversFromBudgetStall(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	clock := simtime.RealClock{}
	stack := objectstore.NewStack(objectstore.NewMemStore(clock), objectstore.StackOptions{
		Latency:    &objectstore.LatencyModel{},
		CacheBytes: -1,
	})
	tbl := newTestTable(t, stack.Store, clock)
	w := NewWriter(tbl, WriterOptions{MaxBatchRows: 2, Clock: clock, Manual: true})
	s := NewScheduler(tbl, SchedulerOptions{
		Writer:          w,
		Clock:           clock,
		Config:          core.Config{IndexDir: "idx", Clock: clock},
		Specs:           []core.IndexSpec{{Column: "msg", Kind: component.KindFM}},
		RequestsPerSec:  500,
		PauseAboveRows:  2,
		ResumeBelowRows: 1,
		TickEvery:       5 * time.Millisecond,
	})

	// Commit a backlog past the pause watermark, then overdraw the
	// bucket so the pending commit wakeup finds no budget: the first
	// Run iteration pauses the writer and schedules nothing.
	ingestRows(t, ctx, w, "stall", 6)
	s.mu.Lock()
	s.tokens = -100
	s.mu.Unlock()

	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx) }()

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		snap := s.Registry().Snapshot()
		if snap.Gauge("ingest.rows_unindexed") == 0 &&
			snap.Counter("ingest.jobs_index") > 0 && !w.Paused() {
			if snap.Counter("ingest.sched_pauses") == 0 {
				t.Fatal("writer never paused; the stall precondition was not exercised")
			}
			cancel()
			if err := <-runErr; !errors.Is(err, context.Canceled) {
				t.Fatalf("Run returned %v, want context.Canceled", err)
			}
			if err := w.Close(context.Background()); err != nil {
				t.Fatal(err)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("Run never recovered: budget stall with a paused writer persists")
}

// TestSchedulerRefillBurstCap pins the token bucket's ceiling: no
// matter how long the scheduler idles, refill accumulates at most one
// second of budget (RequestsPerSec tokens), so a long-quiet scheduler
// cannot wake up and slam the store with hours of banked burst.
func TestSchedulerRefillBurstCap(t *testing.T) {
	ctx := context.Background()
	w, s, clock := schedWorld(t, SchedulerOptions{RequestsPerSec: 100})

	s.mu.Lock()
	s.tokens = 0
	s.mu.Unlock()
	clock.Advance(time.Hour) // 360k tokens at the raw rate
	s.refill()
	s.mu.Lock()
	tokens := s.tokens
	s.mu.Unlock()
	if tokens != 100 {
		t.Fatalf("tokens after an idle hour = %v, want the 1s cap of 100", tokens)
	}
	if got := s.Registry().Snapshot().Gauge("ingest.budget_tokens"); got != 100 {
		t.Fatalf("budget_tokens gauge = %d, want 100", got)
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerRefillForegroundFloor pins the yielding floor: when
// observed foreground traffic saturates (and exceeds) the whole
// budget, the refill rate clamps to 10% of RequestsPerSec rather than
// zero or negative, so maintenance always creeps forward.
func TestSchedulerRefillForegroundFloor(t *testing.T) {
	ctx := context.Background()
	w, s, clock := schedWorld(t, SchedulerOptions{RequestsPerSec: 100})

	s.mu.Lock()
	s.tokens = 0
	// Simulate a flood of foreground requests since the last refill:
	// refill computes foreground = total - lastSeen - ownCost, so a
	// deeply negative lastSeen reads as ~100k requests of traffic.
	s.lastSeen -= 100_000
	s.mu.Unlock()
	clock.Advance(time.Second)
	s.refill()
	s.mu.Lock()
	tokens := s.tokens
	s.mu.Unlock()
	if tokens != 10 { // RequestsPerSec/10 × 1s
		t.Fatalf("tokens under saturation = %v, want the 10%% floor of 10", tokens)
	}

	// The flood was absorbed into lastSeen: a quiet second later the
	// full rate is back (and the cap bounds it).
	clock.Advance(time.Second)
	s.refill()
	s.mu.Lock()
	tokens = s.tokens
	s.mu.Unlock()
	if tokens != 100 {
		t.Fatalf("tokens after traffic subsided = %v, want 100", tokens)
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerBudgetTokensGauge verifies the live budget gauge: it
// starts at the burst cap, goes negative when a job overdraws the
// bucket (debt is visible, not clamped), and recovers with refill.
func TestSchedulerBudgetTokensGauge(t *testing.T) {
	ctx := context.Background()
	w, s, clock := schedWorld(t, SchedulerOptions{RequestsPerSec: 1})

	if got := s.Registry().Snapshot().Gauge("ingest.budget_tokens"); got != 1 {
		t.Fatalf("initial budget_tokens = %d, want the 1-token burst", got)
	}
	ingestRows(t, ctx, w, "g", 4)
	if worked, err := s.Step(ctx); err != nil || !worked {
		t.Fatalf("index step: worked=%v err=%v", worked, err)
	}
	debt := s.Registry().Snapshot().Gauge("ingest.budget_tokens")
	if debt >= 0 {
		t.Fatalf("budget_tokens after an overdrawing job = %d, want negative debt", debt)
	}
	// Refill recovers the debt (the step's own Status reads register as
	// foreground, so the rate may run at the floor — loop virtual time).
	for i := 0; i < 100; i++ {
		clock.Advance(10 * time.Second)
		s.refill()
		if s.Registry().Snapshot().Gauge("ingest.budget_tokens") == 1 {
			break
		}
	}
	if got := s.Registry().Snapshot().Gauge("ingest.budget_tokens"); got != 1 {
		t.Fatalf("budget_tokens after refill = %d, want back at the cap", got)
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerJobPriorities verifies index > compact > vacuum: churn
// fragments the index until compaction triggers, whose redundant
// entries then vacuum away, all through scheduled steps.
func TestSchedulerJobPriorities(t *testing.T) {
	ctx := context.Background()
	w, s, clock := schedWorld(t, SchedulerOptions{
		Policy: core.MaintainPolicy{CompactWhenEntries: 2},
	})

	for round := 0; round < 3; round++ {
		ingestRows(t, ctx, w, fmt.Sprintf("r%d", round), 4)
		clock.Advance(time.Minute)
		if err := s.Quiesce(ctx); err != nil {
			t.Fatal(err)
		}
	}
	reg := s.Registry().Snapshot()
	if got := reg.Counter("ingest.jobs_index"); got < 3 {
		t.Fatalf("jobs_index = %d, want >= 3", got)
	}
	if got := reg.Counter("ingest.jobs_compact"); got < 1 {
		t.Fatalf("jobs_compact = %d, want >= 1", got)
	}
	if got := reg.Counter("ingest.jobs_vacuum"); got < 1 {
		t.Fatalf("jobs_vacuum = %d, want >= 1", got)
	}
	// Quiescence means full coverage: nothing unindexed, empty ledger.
	if got := reg.Gauge("ingest.rows_unindexed"); got != 0 {
		t.Fatalf("rows_unindexed = %d after quiesce", got)
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
}
