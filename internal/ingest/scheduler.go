package ingest

import (
	"context"
	"errors"
	"sync"
	"time"

	"rottnest/internal/adaptive"
	"rottnest/internal/core"
	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/obs"
	"rottnest/internal/simtime"
)

// SchedulerOptions configure a Scheduler.
type SchedulerOptions struct {
	// Client runs the index/compact/vacuum jobs. Nil means a new
	// client is built from Config over the scheduler's table.
	Client *core.Client
	// Config builds the client when Client is nil.
	Config core.Config
	// Writer, if set, is the ingest writer to pressure: the scheduler
	// pauses it when unindexed rows pass PauseAboveRows and resumes
	// it below ResumeBelowRows, and its group commits feed the
	// freshness ledger.
	Writer *Writer
	// Specs name the indexes the scheduler keeps fresh. A data file
	// counts as searchable-by-index only once every spec covers it.
	Specs []core.IndexSpec
	// RequestsPerSec is the maintenance budget in object-store
	// requests per (virtual) second. It defaults to 10% of the
	// simulated store's per-prefix GET ceiling
	// (objectstore.DefaultS3Model) — the headroom the throttle model
	// leaves once foreground traffic is served. The scheduler further
	// yields to observed foreground traffic, never dropping below 10%
	// of the configured budget.
	RequestsPerSec float64
	// PauseAboveRows pauses the writer once this many acked rows are
	// not yet index-covered. Default 1<<16. ResumeBelowRows lifts the
	// pause; default PauseAboveRows/2.
	PauseAboveRows  int64
	ResumeBelowRows int64
	// Policy tunes compact/vacuum, as in Client.Maintain.
	Policy core.MaintainPolicy
	// Adaptive, if set, reorders the index backlog by query heat,
	// schedules progressive IVF-PQ refinement, and demotes columns
	// the TCO autopilot rules out (see internal/adaptive). Nil keeps
	// the static largest-gap policy.
	Adaptive adaptive.SchedulerPolicy
	// Clock drives the budget refill and lag measurement. Nil means
	// the real wall clock.
	Clock simtime.Clock
	// TickEvery paces Run's periodic wakeups: a real-time ticker that
	// refills the budget, applies the writer's age bound, and drains
	// whatever backlog is left once commits go quiet or the budget
	// ran dry. Default 100ms. Virtual-clock drivers bypass Run and
	// call Step/Tick directly.
	TickEvery time.Duration
	// OnCovered, if set, runs when a committed file becomes covered
	// by every spec, with its exact searchable lag. Benchmarks use it
	// to collect precise percentiles beside the bucketed histogram.
	// It is called without the scheduler's lock held, so it may call
	// back into the scheduler (or writer) freely.
	OnCovered func(path string, rows int64, lag time.Duration)
}

func (o SchedulerOptions) withDefaults() SchedulerOptions {
	if o.RequestsPerSec <= 0 {
		o.RequestsPerSec = objectstore.DefaultS3Model().MaxGetRPSPerPrefix / 10
	}
	if o.PauseAboveRows <= 0 {
		o.PauseAboveRows = 1 << 16
	}
	if o.ResumeBelowRows <= 0 {
		o.ResumeBelowRows = o.PauseAboveRows / 2
	}
	if o.TickEvery <= 0 {
		o.TickEvery = 100 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = simtime.RealClock{}
	}
	return o
}

// ledgerEntry tracks one committed-but-not-yet-covered data file.
type ledgerEntry struct {
	rows    int64
	ackedAt time.Time
}

// Scheduler is the background maintenance daemon: it watches commit
// hooks and index coverage, schedules index/compact/vacuum jobs by
// priority under a requests/sec budget, yields to foreground traffic,
// and pushes back on the ingest writer when unindexed rows outrun
// indexing.
//
// Backpressure state machine:
//
//	flowing --(unindexed > PauseAboveRows)--> paused
//	paused  --(unindexed < ResumeBelowRows)--> flowing
//
// In paused state the writer blocks producers while its committer
// keeps draining, so the unindexed backlog is bounded by the pending
// budget plus the pause watermark.
type Scheduler struct {
	cli   *core.Client
	table *lake.Table
	opts  SchedulerOptions
	clock simtime.Clock
	reg   *obs.Registry

	commits chan struct{} // table-commit wakeups for Run

	mu         sync.Mutex
	ledger     map[string]ledgerEntry
	stalled    map[int]int64 // spec index → snapshot version it stalled at
	tokens     float64
	lastRefill time.Time
	lastSeen   int64 // store requests observed at last refill
	ownCost    int64 // store requests this scheduler's jobs issued

	lagHist       *obs.Histogram
	rowsUnindexed *obs.Gauge
	steps         *obs.Counter
	jobsIndex     *obs.Counter
	jobsCompact   *obs.Counter
	jobsVacuum    *obs.Counter
	jobsRefine    *obs.Counter
	jobsDemote    *obs.Counter
	pauses        *obs.Counter
	budgetWaits   *obs.Counter
	budgetTokens  *obs.Gauge
	jobRequests   *obs.Counter
}

// NewScheduler returns a scheduler over the table. It registers a
// commit hook for wakeups and, when opts.Writer is set, subscribes to
// its group commits for the freshness ledger.
func NewScheduler(table *lake.Table, opts SchedulerOptions) *Scheduler {
	opts = opts.withDefaults()
	cli := opts.Client
	if cli == nil {
		cfg := opts.Config
		if cfg.Clock == nil {
			cfg.Clock = opts.Clock
		}
		cli = core.NewClient(table, cfg)
	}
	reg := obs.NewRegistry()
	s := &Scheduler{
		cli:     cli,
		table:   table,
		opts:    opts,
		clock:   opts.Clock,
		reg:     reg,
		commits: make(chan struct{}, 1),
		ledger:  make(map[string]ledgerEntry),
		stalled: make(map[int]int64),
		tokens:  opts.RequestsPerSec, // start with one second of burst

		lagHist:       reg.Histogram("ingest.searchable_lag_ns"),
		rowsUnindexed: reg.Gauge("ingest.rows_unindexed"),
		steps:         reg.Counter("ingest.sched_steps"),
		jobsIndex:     reg.Counter("ingest.jobs_index"),
		jobsCompact:   reg.Counter("ingest.jobs_compact"),
		jobsVacuum:    reg.Counter("ingest.jobs_vacuum"),
		jobsRefine:    reg.Counter("ingest.jobs_refine"),
		jobsDemote:    reg.Counter("ingest.jobs_demote"),
		pauses:        reg.Counter("ingest.sched_pauses"),
		budgetWaits:   reg.Counter("ingest.budget_waits"),
		budgetTokens:  reg.Gauge("ingest.budget_tokens"),
		jobRequests:   reg.Counter("ingest.job_requests"),
	}
	s.budgetTokens.Set(int64(s.tokens))
	s.lastRefill = s.clock.Now()
	table.OnCommit(func(int64) {
		select {
		case s.commits <- struct{}{}:
		default:
		}
	})
	if opts.Writer != nil {
		opts.Writer.OnCommitted(s.NoteCommitted)
		cli.AttachRegistry(opts.Writer.Registry())
	}
	// Freshness metrics (searchable lag, rows unindexed) surface in
	// the client's one merged Metrics snapshot.
	cli.AttachRegistry(reg)
	return s
}

// Registry returns the scheduler's metrics registry ("ingest.*").
func (s *Scheduler) Registry() *obs.Registry { return s.reg }

// Client returns the client the scheduler maintains indexes with.
func (s *Scheduler) Client() *core.Client { return s.cli }

// NoteCommitted feeds committed files into the freshness ledger. The
// writer calls it from its group-commit hook; callers appending
// through other paths may call it directly to have those files
// tracked for searchable lag.
func (s *Scheduler) NoteCommitted(files []CommittedFile) {
	s.mu.Lock()
	for _, f := range files {
		s.ledger[f.Path] = ledgerEntry{rows: f.Rows, ackedAt: f.AckedAt}
	}
	s.mu.Unlock()
}

// unindexedRowsLocked sums the ledger.
func (s *Scheduler) unindexedRowsLocked() int64 {
	var n int64
	for _, e := range s.ledger {
		n += e.rows
	}
	return n
}

// coverage describes what one Step observed before picking a job.
type coverage struct {
	// perSpec maps spec index → covered paths; snapPaths is the
	// active file set of the observed snapshot; version its version.
	perSpec   []map[string]bool
	snapPaths map[string]bool
	version   int64
	// files is the snapshot's file list in snapshot order, so backlog
	// candidates handed to an adaptive policy are deterministic.
	files []lake.DataFile
	// demoted marks specs the adaptive policy routed to the scan
	// path; they take no index jobs and do not hold up the freshness
	// ledger.
	demoted []bool
}

// errNoProgress marks a scheduled job that intentionally did nothing
// (e.g. indexing stalled below the minimum row count): the step
// reports no work so converging loops terminate.
var errNoProgress = errors.New("ingest: job made no progress")

// observe reads the snapshot and meta entries once and resolves the
// freshness ledger: files now covered by every spec record their
// searchable lag, files gone from the snapshot (compacted away) are
// dropped, and the rows_unindexed gauge updates.
func (s *Scheduler) observe(ctx context.Context) (*coverage, error) {
	snap, err := s.table.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	entries, err := s.cli.Meta().List(ctx)
	if err != nil {
		return nil, err
	}
	cov := &coverage{snapPaths: snap.Paths(), version: snap.Version, files: snap.Files}
	cov.perSpec = make([]map[string]bool, len(s.opts.Specs))
	cov.demoted = make([]bool, len(s.opts.Specs))
	if s.opts.Adaptive != nil {
		for i, spec := range s.opts.Specs {
			cov.demoted[i] = s.opts.Adaptive.DemotedToScan(spec)
		}
	}
	for i, spec := range s.opts.Specs {
		covered := make(map[string]bool)
		for _, e := range entries {
			if e.Column != spec.Column || e.Kind != spec.Kind {
				continue
			}
			for _, f := range e.Files {
				if cov.snapPaths[f] {
					covered[f] = true
				}
			}
		}
		cov.perSpec[i] = covered
	}

	now := s.clock.Now()
	type coveredFile struct {
		path string
		rows int64
		lag  time.Duration
	}
	var newlyCovered []coveredFile
	s.mu.Lock()
	for p, e := range s.ledger {
		if !cov.snapPaths[p] {
			// Compacted or removed: its surviving rows are tracked
			// via the rewritten file's coverage, not this ledger row.
			delete(s.ledger, p)
			continue
		}
		if s.coveredByAll(cov, p) {
			lag := now.Sub(e.ackedAt)
			s.lagHist.Observe(int64(lag))
			newlyCovered = append(newlyCovered, coveredFile{path: p, rows: e.rows, lag: lag})
			delete(s.ledger, p)
		}
	}
	unindexed := s.unindexedRowsLocked()
	s.mu.Unlock()
	// Fire OnCovered outside s.mu: a callback that re-enters the
	// scheduler (NoteCommitted, say) must not self-deadlock, and the
	// writer's group-commit hook must not stall behind it.
	if s.opts.OnCovered != nil {
		for _, cf := range newlyCovered {
			s.opts.OnCovered(cf.path, cf.rows, cf.lag)
		}
	}
	s.rowsUnindexed.Set(unindexed)

	// Backpressure state machine.
	if w := s.opts.Writer; w != nil {
		switch {
		case unindexed > s.opts.PauseAboveRows && !w.Paused():
			w.Pause()
			s.pauses.Inc()
		case unindexed < s.opts.ResumeBelowRows && w.Paused():
			w.Resume()
		}
	}
	return cov, nil
}

// coveredByAll reports whether every non-demoted spec covers the
// path. With no specs nothing is ever "searchable by index", so the
// ledger drains only by compaction — callers should configure at
// least one spec. Demoted specs don't count: their columns serve from
// scans by decision, so a file is as searchable as it will ever get
// once the remaining specs cover it.
func (s *Scheduler) coveredByAll(cov *coverage, path string) bool {
	if len(cov.perSpec) == 0 {
		return false
	}
	for i, covered := range cov.perSpec {
		if cov.demoted[i] {
			continue
		}
		if !covered[path] {
			return false
		}
	}
	return true
}

// storeRequests sums the request counters of the client's store chain.
func storeRequests(m obs.Snapshot) int64 {
	return m.Counter("store.gets") + m.Counter("store.puts") +
		m.Counter("store.lists") + m.Counter("store.deletes") + m.Counter("store.heads")
}

// refill tops up the token bucket: elapsed virtual time times the
// budget rate, scaled down by observed foreground traffic (total
// store requests minus the scheduler's own), floored at 10% of the
// budget so maintenance always makes progress.
func (s *Scheduler) refill() {
	now := s.clock.Now()
	total := storeRequests(s.cli.Metrics())
	s.mu.Lock()
	defer s.mu.Unlock()
	elapsed := now.Sub(s.lastRefill).Seconds()
	if elapsed <= 0 {
		return
	}
	foreground := float64(total-s.lastSeen-s.ownCost) / elapsed
	if foreground < 0 {
		foreground = 0
	}
	rate := s.opts.RequestsPerSec - foreground
	if min := s.opts.RequestsPerSec / 10; rate < min {
		rate = min
	}
	s.tokens += rate * elapsed
	if s.tokens > s.opts.RequestsPerSec {
		s.tokens = s.opts.RequestsPerSec // one second of burst
	}
	s.lastRefill = now
	s.lastSeen = total
	s.ownCost = 0
	s.budgetTokens.Set(int64(s.tokens))
}

// Step runs one scheduling decision: resolve coverage and freshness,
// apply writer backpressure, and — budget permitting — run the
// highest-priority maintenance job (index > compact > vacuum). It
// reports whether a job ran. Tests and deterministic drivers call
// Step directly; Run loops it.
func (s *Scheduler) Step(ctx context.Context) (bool, error) {
	s.steps.Inc()
	cov, err := s.observe(ctx)
	if err != nil {
		return false, err
	}
	s.refill()
	s.mu.Lock()
	ready := s.tokens > 0
	s.mu.Unlock()
	if !ready {
		s.budgetWaits.Inc()
		return false, nil
	}

	// Adaptive policy housekeeping (autopilot refresh) is maintenance
	// work: meter its store requests against the budget so its Status
	// and snapshot reads don't masquerade as foreground traffic.
	if s.opts.Adaptive != nil {
		before := storeRequests(s.cli.Metrics())
		tickErr := s.opts.Adaptive.Tick(ctx)
		cost := storeRequests(s.cli.Metrics()) - before
		s.mu.Lock()
		s.tokens -= float64(cost)
		s.ownCost += cost
		s.budgetTokens.Set(int64(s.tokens))
		s.mu.Unlock()
		s.jobRequests.Add(cost)
		if tickErr != nil {
			return false, tickErr
		}
	}

	statuses, err := s.cli.Status(ctx)
	if err != nil {
		return false, err
	}
	job, counter := s.pickJob(ctx, cov, statuses)
	if job == nil {
		return false, nil
	}
	before := storeRequests(s.cli.Metrics())
	jobErr := job(ctx)
	cost := storeRequests(s.cli.Metrics()) - before
	s.mu.Lock()
	// The job's cost may overdraw the bucket; the debt carries over,
	// delaying the next job (tokens go negative and must refill).
	s.tokens -= float64(cost)
	s.ownCost += cost
	s.budgetTokens.Set(int64(s.tokens))
	s.mu.Unlock()
	// Cumulative job-issued request counter: what maintenance itself
	// spends against the store, as opposed to the daemon's fixed-rate
	// observation polling. Capacity planning and the adaptive bench
	// compare regimes on this number.
	s.jobRequests.Add(cost)
	if errors.Is(jobErr, errNoProgress) {
		return false, nil
	}
	if jobErr != nil {
		return false, jobErr
	}
	counter.Inc()
	return true, nil
}

// pickJob chooses the highest-priority maintenance job, or nil.
// Indexing fresh data outranks compaction, which outranks vacuum:
// freshness first, then read amplification, then garbage. Compaction
// triggers on the index's *effective* entry count (entries the greedy
// cover would keep), so a just-compacted index waits for vacuum to
// sweep the superseded entries instead of re-compacting them.
func (s *Scheduler) pickJob(ctx context.Context, cov *coverage, statuses []core.IndexStatus) (func(context.Context) error, *obs.Counter) {
	policy := s.opts.Policy
	if policy.CompactWhenEntries <= 0 {
		policy.CompactWhenEntries = 8
	}
	byKey := make(map[core.IndexSpec]core.IndexStatus, len(statuses))
	for _, st := range statuses {
		byKey[core.IndexSpec{Column: st.Column, Kind: st.Kind}] = st
	}

	// Index: the spec with the most uncovered files first — unless an
	// adaptive policy is wired in, which reorders the backlog by heat
	// so hot partitions become searchable before cold tails. A spec
	// with no entries at all (absent from statuses) has everything
	// uncovered. Specs that stalled below the index's minimum row
	// count wait for the snapshot to change before being retried.
	if s.opts.Adaptive != nil {
		if job, counter := s.pickAdaptiveIndex(ctx, cov); job != nil {
			return job, counter
		}
	} else {
		best, bestGap := -1, 0
		for i := range s.opts.Specs {
			s.mu.Lock()
			stalledAt, stalled := s.stalled[i]
			s.mu.Unlock()
			if stalled && stalledAt == cov.version {
				continue
			}
			gap := len(cov.snapPaths) - len(cov.perSpec[i])
			if gap > bestGap {
				best, bestGap = i, gap
			}
		}
		if best >= 0 {
			i, spec := best, s.opts.Specs[best]
			return func(ctx context.Context) error {
				_, err := s.cli.Index(ctx, spec.Column, spec.Kind)
				if errors.Is(err, core.ErrBelowMinRows) {
					// Not enough new rows to justify an index file yet;
					// scans cover the tail until more data commits.
					s.mu.Lock()
					s.stalled[i] = cov.version
					s.mu.Unlock()
					return errNoProgress
				}
				return err
			}, s.jobsIndex
		}
	}
	for i, spec := range s.opts.Specs {
		if cov.demoted[i] {
			continue
		}
		st, ok := byKey[spec]
		if ok && st.Entries-st.RedundantEntries >= policy.CompactWhenEntries {
			spec := spec
			return func(ctx context.Context) error {
				_, err := s.cli.Compact(ctx, spec.Column, spec.Kind, policy.Compact)
				return err
			}, s.jobsCompact
		}
	}
	for _, st := range statuses {
		if st.StaleRefs > 0 || st.RedundantEntries > 0 {
			return func(ctx context.Context) error {
				_, err := s.cli.Vacuum(ctx, policy.Vacuum)
				return err
			}, s.jobsVacuum
		}
	}
	if s.opts.Adaptive != nil {
		if spec, ok := s.opts.Adaptive.PlanDemote(statuses); ok {
			return func(ctx context.Context) error {
				// Drop the rows, then vacuum in the same job so the
				// orphaned index objects are collected (commit-then-
				// delete, as everywhere).
				if _, err := s.cli.DropIndex(ctx, spec.Column, spec.Kind); err != nil {
					return err
				}
				_, err := s.cli.Vacuum(ctx, policy.Vacuum)
				return err
			}, s.jobsDemote
		}
	}
	return nil, nil
}

// pickAdaptiveIndex consults the adaptive policy for the next index
// or refine job over the non-demoted backlog.
func (s *Scheduler) pickAdaptiveIndex(ctx context.Context, cov *coverage) (func(context.Context) error, *obs.Counter) {
	var cands []adaptive.IndexCandidate
	for i, spec := range s.opts.Specs {
		if cov.demoted[i] {
			continue
		}
		s.mu.Lock()
		stalledAt, stalled := s.stalled[i]
		s.mu.Unlock()
		if stalled && stalledAt == cov.version {
			continue
		}
		var uncovered []adaptive.BacklogFile
		for _, f := range cov.files {
			if !cov.perSpec[i][f.Path] {
				uncovered = append(uncovered, adaptive.BacklogFile{Path: f.Path, Rows: f.Rows})
			}
		}
		if len(uncovered) == 0 {
			continue
		}
		cands = append(cands, adaptive.IndexCandidate{Spec: i, IndexSpec: spec, Uncovered: uncovered})
	}
	if len(cands) > 0 {
		if dec, ok := s.opts.Adaptive.PlanIndex(cands); ok {
			i := dec.Spec
			spec := s.opts.Specs[i]
			opts := core.IndexOptions{Version: cov.version, Only: dec.Paths, IVF: dec.IVF}
			return func(ctx context.Context) error {
				_, err := s.cli.IndexWithOptions(ctx, spec.Column, spec.Kind, opts)
				if errors.Is(err, core.ErrBelowMinRows) {
					s.mu.Lock()
					s.stalled[i] = cov.version
					s.mu.Unlock()
					return errNoProgress
				}
				return err
			}, s.jobsIndex
		}
	}
	if plan, ok := s.opts.Adaptive.PlanRefine(ctx, s.opts.Specs); ok {
		return func(ctx context.Context) error {
			entry, err := s.cli.RefineVectorIndex(ctx, plan.Column, plan.IndexKey, plan.Probes, plan.NProbe, plan.Opts)
			if err != nil {
				return err
			}
			if entry == nil {
				return errNoProgress // entry gone, or no refinable cell
			}
			return nil
		}, s.jobsRefine
	}
	return nil, nil
}

// Quiesce steps until no job runs, bringing maintenance fully up to
// date (ignoring the budget's pacing, not its accounting). Shutdown
// paths and tests use it to reach a steady state.
func (s *Scheduler) Quiesce(ctx context.Context) error {
	for {
		s.mu.Lock()
		if s.tokens <= 0 {
			s.tokens = 1 // pacing is Run's job; Quiesce only converges
		}
		s.mu.Unlock()
		worked, err := s.Step(ctx)
		if err != nil {
			return err
		}
		if !worked {
			return nil
		}
	}
}

// Run loops the scheduler until ctx is done: each table commit wakes
// it, and a real-time ticker (TickEvery) wakes it regardless, so a
// pause in traffic still ticks the writer's age bound, refills the
// budget, and drains the tail of committed-but-unindexed files. The
// ticker is what makes backpressure safe: with it, a writer paused at
// the high watermark while the budget is in debt is always revisited —
// tokens refill, the backlog indexes, and the writer resumes — even
// when no further commits (and hence no commit wakeups) can occur. It
// is the daemon entry point for real-clock deployments; virtual-clock
// drivers call Step/Tick/Quiesce directly.
func (s *Scheduler) Run(ctx context.Context) error {
	ticker := time.NewTicker(s.opts.TickEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.commits:
		case <-ticker.C:
		}
		if w := s.opts.Writer; w != nil {
			if err := w.Tick(ctx); err != nil && !errors.Is(err, ErrClosed) {
				return err
			}
		}
		for {
			worked, err := s.Step(ctx)
			if err != nil {
				return err
			}
			if !worked {
				break
			}
		}
	}
}
