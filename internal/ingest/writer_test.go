package ingest

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
)

var testSchema = parquet.MustSchema(
	parquet.Column{Name: "ts", Type: parquet.TypeInt64},
	parquet.Column{Name: "msg", Type: parquet.TypeByteArray},
)

func msgBatch(msgs ...string) *parquet.Batch {
	b := parquet.NewBatch(testSchema)
	ints := make([]int64, len(msgs))
	bytes := make([][]byte, len(msgs))
	for i, m := range msgs {
		ints[i] = int64(i)
		bytes[i] = []byte(m)
	}
	b.Cols[0] = parquet.ColumnValues{Ints: ints}
	b.Cols[1] = parquet.ColumnValues{Bytes: bytes}
	return b
}

func newTestTable(t *testing.T, store objectstore.Store, clock simtime.Clock) *lake.Table {
	t.Helper()
	tbl, err := lake.CreateWith(context.Background(), store, "tbl", testSchema, lake.OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// rowsAt counts the live rows visible in the latest snapshot.
func rowsAt(t *testing.T, tbl *lake.Table) int64 {
	t.Helper()
	snap, err := tbl.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return snap.LiveRows()
}

// TestWriterSizeBoundSeals verifies the size trigger: in manual mode
// nothing commits until Flush, and once flushed, appends that crossed
// MaxBatchRows landed in multiple micro-batches of one group commit.
func TestWriterSizeBoundSeals(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	store := objectstore.NewMemStore(clock)
	tbl := newTestTable(t, store, clock)
	w := NewWriter(tbl, WriterOptions{MaxBatchRows: 4, Clock: clock, Manual: true})

	var acks []*Ack
	for i := 0; i < 10; i++ { // 2 rows each → seal every 2 appends
		a, err := w.Append(ctx, msgBatch("a", "b"))
		if err != nil {
			t.Fatal(err)
		}
		acks = append(acks, a)
	}
	if got := rowsAt(t, tbl); got != 0 {
		t.Fatalf("rows visible before flush: %d", got)
	}
	if err := w.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	for i, a := range acks {
		if v, err := a.Wait(ctx); err != nil || v == 0 {
			t.Fatalf("ack %d: version=%d err=%v", i, v, err)
		}
		if a.Path() == "" {
			t.Fatalf("ack %d has no path", i)
		}
	}
	if got := rowsAt(t, tbl); got != 20 {
		t.Fatalf("rows = %d, want 20", got)
	}
	// 10 appends × 2 rows at 4-row seals = 5 sealed batches; with the
	// default group size 8 that is one group commit of 5 files.
	reg := w.Registry().Snapshot()
	if got := reg.Counter("ingest.group_commits"); got != 1 {
		t.Fatalf("group_commits = %d, want 1", got)
	}
	if got := reg.Counter("ingest.batches_committed"); got != 5 {
		t.Fatalf("batches_committed = %d, want 5", got)
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWriterAgeBoundSeals verifies the age trigger under a virtual
// clock: a Tick before MaxBatchAge leaves rows staged, a Tick after
// the age commits them (manual mode).
func TestWriterAgeBoundSeals(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	store := objectstore.NewMemStore(clock)
	tbl := newTestTable(t, store, clock)
	w := NewWriter(tbl, WriterOptions{MaxBatchAge: time.Second, Clock: clock, Manual: true})

	a, err := w.Append(ctx, msgBatch("x"))
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(500 * time.Millisecond)
	if err := w.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	if got := rowsAt(t, tbl); got != 0 {
		t.Fatalf("young batch committed early: %d rows", got)
	}
	clock.Advance(600 * time.Millisecond)
	if err := w.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	if v, err := a.Wait(ctx); err != nil || v == 0 {
		t.Fatalf("ack after age seal: version=%d err=%v", v, err)
	}
	if got := rowsAt(t, tbl); got != 1 {
		t.Fatalf("rows = %d, want 1", got)
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWriterGroupCommitOneRound is the core amortization property: 8
// sealed batches land through one conditional PUT (one log version).
func TestWriterGroupCommitOneRound(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	store := objectstore.NewMemStore(clock)
	tbl := newTestTable(t, store, clock)
	w := NewWriter(tbl, WriterOptions{MaxBatchRows: 1, GroupCommitBatches: 8, Clock: clock, Manual: true})

	before, err := tbl.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := w.Append(ctx, msgBatch(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	after, err := tbl.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after-before != 1 {
		t.Fatalf("8 batches advanced %d versions, want 1", after-before)
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWriterCloseDrainsUnderFaults verifies Close resolves every
// pending ack even when the store injects transient faults, ambiguous
// conditional PUTs, and latency spikes — and that no acked row is
// duplicated or lost.
func TestWriterCloseDrainsUnderFaults(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	mem := objectstore.NewMemStore(clock)
	tbl0 := newTestTable(t, mem, clock)
	_ = tbl0
	for seed := int64(1); seed <= 5; seed++ {
		faulty := objectstore.NewFaultStoreWithProfile(mem, objectstore.FaultProfile{
			Seed:         seed,
			Transient:    0.1,
			AmbiguousPut: 0.3,
		})
		retry := objectstore.NewRetryStore(faulty, objectstore.RetryPolicy{})
		tbl, err := lake.OpenWith(ctx, retry, "tbl", lake.OpenOptions{Clock: clock})
		if err != nil {
			t.Fatal(err)
		}
		liveBefore := rowsAt(t, tbl)

		w := NewWriter(tbl, WriterOptions{MaxBatchRows: 2, GroupCommitBatches: 4, Clock: clock})
		var acks []*Ack
		for i := 0; i < 12; i++ {
			a, err := w.Append(ctx, msgBatch(fmt.Sprintf("s%d-%d", seed, i)))
			if err != nil {
				t.Fatal(err)
			}
			acks = append(acks, a)
		}
		if err := w.Close(ctx); err != nil {
			t.Fatal(err)
		}
		var ackedRows int64
		for i, a := range acks {
			select {
			case <-a.Done():
			default:
				t.Fatalf("seed %d: ack %d unresolved after Close", seed, i)
			}
			if a.Err() == nil {
				ackedRows++
			}
		}
		// Every successfully acked row is visible exactly once; failed
		// acks' rows must not appear (exactly-once, no duplicates).
		if got := rowsAt(t, tbl) - liveBefore; got != ackedRows {
			t.Fatalf("seed %d: %d rows visible, %d acked", seed, got, ackedRows)
		}
		if _, err := w.Append(ctx, msgBatch("late")); err != ErrClosed {
			t.Fatalf("append after close: %v", err)
		}
	}
}

// TestWriterBackpressure verifies Append blocks at the pending-row
// budget and unblocks as commits drain, and that a paused writer
// blocks producers until resumed.
func TestWriterBackpressure(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	store := objectstore.NewMemStore(clock)
	tbl := newTestTable(t, store, clock)
	w := NewWriter(tbl, WriterOptions{MaxBatchRows: 2, MaxPendingRows: 4, Clock: clock, Manual: true})

	for i := 0; i < 2; i++ {
		if _, err := w.Append(ctx, msgBatch("a", "b")); err != nil {
			t.Fatal(err)
		}
	}
	// Budget is full (4 pending): the next Append must block until a
	// flush drains, or fail via ctx.
	short, cancel := context.WithCancel(ctx)
	blocked := make(chan error, 1)
	go func() {
		_, err := w.Append(short, msgBatch("c"))
		blocked <- err
	}()
	select {
	case err := <-blocked:
		t.Fatalf("append did not block at budget: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	if err := <-blocked; err != context.Canceled {
		t.Fatalf("blocked append: %v, want context.Canceled", err)
	}
	if got := w.Registry().Snapshot().Counter("ingest.backpressure_waits"); got == 0 {
		t.Fatal("no backpressure wait recorded")
	}
	if err := w.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(ctx, msgBatch("c")); err != nil {
		t.Fatalf("append after drain: %v", err)
	}

	// Pause blocks producers; Resume releases them.
	w.Pause()
	unpaused := make(chan error, 1)
	go func() {
		_, err := w.Append(ctx, msgBatch("d"))
		unpaused <- err
	}()
	select {
	case err := <-unpaused:
		t.Fatalf("append did not block while paused: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	w.Resume()
	if err := <-unpaused; err != nil {
		t.Fatalf("append after resume: %v", err)
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWriterConcurrentProducers exercises the auto-mode committer
// with many concurrent producers (the -race gate for the writer): all
// acks resolve successfully and every row is visible exactly once.
func TestWriterConcurrentProducers(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	store := objectstore.NewMemStore(clock)
	tbl := newTestTable(t, store, clock)
	w := NewWriter(tbl, WriterOptions{MaxBatchRows: 8, GroupCommitBatches: 4, Clock: clock})

	const producers, appends = 8, 20
	var wg sync.WaitGroup
	errs := make([]error, producers)
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < appends; i++ {
				a, err := w.Append(ctx, msgBatch(fmt.Sprintf("p%d-%d", p, i)))
				if err != nil {
					errs[p] = err
					return
				}
				if _, err := a.Wait(ctx); err != nil {
					errs[p] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("producer %d: %v", p, err)
		}
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if got := rowsAt(t, tbl); got != producers*appends {
		t.Fatalf("rows = %d, want %d", got, producers*appends)
	}
	reg := w.Registry().Snapshot()
	commits := reg.Counter("ingest.group_commits")
	batches := reg.Counter("ingest.batches_committed")
	if commits == 0 || batches < commits {
		t.Fatalf("group_commits=%d batches=%d", commits, batches)
	}
}

// TestWriterRejectsCrossProducerSchemaMismatch verifies Append rejects
// a batch whose schema differs from the staging batch's even at equal
// arity — merging differently named or typed columns would silently
// corrupt the staged file.
func TestWriterRejectsCrossProducerSchemaMismatch(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	store := objectstore.NewMemStore(clock)
	tbl := newTestTable(t, store, clock)
	w := NewWriter(tbl, WriterOptions{MaxBatchRows: 100, Clock: clock, Manual: true})

	if _, err := w.Append(ctx, msgBatch("a")); err != nil {
		t.Fatal(err)
	}
	// Same column count as testSchema, but the second column has a
	// different name and type; the batch passes its own Validate.
	other := parquet.MustSchema(
		parquet.Column{Name: "ts", Type: parquet.TypeInt64},
		parquet.Column{Name: "level", Type: parquet.TypeInt64},
	)
	b := parquet.NewBatch(other)
	b.Cols[0] = parquet.ColumnValues{Ints: []int64{1}}
	b.Cols[1] = parquet.ColumnValues{Ints: []int64{2}}
	if _, err := w.Append(ctx, b); err == nil {
		t.Fatal("append with mismatched schema of equal arity succeeded")
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// gateStore blocks conditional PUTs (the commit primitive) until the
// test grants permits, parking group commits in flight.
type gateStore struct {
	objectstore.Store
	mu      sync.Mutex
	cond    *sync.Cond
	permits int
	open    bool
}

func newGateStore(inner objectstore.Store) *gateStore {
	g := &gateStore{Store: inner}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *gateStore) PutIfAbsent(ctx context.Context, key string, data []byte) error {
	g.mu.Lock()
	for !g.open && g.permits == 0 {
		g.cond.Wait()
	}
	if !g.open {
		g.permits--
	}
	g.mu.Unlock()
	return g.Store.PutIfAbsent(ctx, key, data)
}

// Allow grants n conditional PUTs.
func (g *gateStore) Allow(n int) {
	g.mu.Lock()
	g.permits += n
	g.cond.Broadcast()
	g.mu.Unlock()
}

// AllowAll opens the gate permanently.
func (g *gateStore) AllowAll() {
	g.mu.Lock()
	g.open = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// TestWriterFlushWaitsOnlyOnPriorRows pins Flush's snapshot
// semantics: rows appended after Flush was called do not extend its
// wait, so sustained concurrent producers cannot starve it. Commits
// are gated so exactly the two pre-Flush micro-batches can land while
// a post-Flush batch stays parked.
func TestWriterFlushWaitsOnlyOnPriorRows(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	mem := objectstore.NewMemStore(clock)
	newTestTable(t, mem, clock) // create "tbl" on the raw store
	gate := newGateStore(mem)
	tbl, err := lake.OpenWith(ctx, gate, "tbl", lake.OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(tbl, WriterOptions{MaxBatchRows: 1, GroupCommitBatches: 1, Clock: clock})

	a1, err := w.Append(ctx, msgBatch("pre-1"))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := w.Append(ctx, msgBatch("pre-2"))
	if err != nil {
		t.Fatal(err)
	}

	flushed := make(chan error, 1)
	go func() { flushed <- w.Flush(ctx) }()
	// Give Flush a beat to seal and snapshot its acks; if the snapshot
	// raced to include the post row the test fails by timeout below
	// (never passes wrongly).
	time.Sleep(100 * time.Millisecond)
	a3, err := w.Append(ctx, msgBatch("post"))
	if err != nil {
		t.Fatal(err)
	}

	// Two permits: the committer lands pre-1 then pre-2 (one
	// conditional PUT each, uncontended), then parks on post.
	gate.Allow(2)
	select {
	case err := <-flushed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Flush starved: waiting on rows appended after the call")
	}
	<-a1.Done()
	<-a2.Done()
	select {
	case <-a3.Done():
		t.Fatal("post-Flush ack resolved while its commit was gated")
	default:
	}

	gate.AllowAll()
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := a3.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}
