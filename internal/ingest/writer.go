// Package ingest is the continuous-ingestion subsystem: a
// micro-batching writer that group-commits many producers' appends in
// one log round, and a budgeted maintenance scheduler that keeps
// indexes fresh behind the stream (ROADMAP "Continuous ingestion +
// maintenance scheduler").
//
// The writer amortizes the lake's conditional-PUT commit round: N
// micro-batches become N Add actions in a single log entry, so eight
// concurrent producers cost one PUT per group instead of eight. The
// scheduler watches commit hooks, schedules index/compact/vacuum by
// priority under a requests/sec budget derived from the store's
// throttle headroom, and pushes back on the writer when unindexed
// rows outrun indexing.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"rottnest/internal/lake"
	"rottnest/internal/obs"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
)

// ErrClosed reports an Append or Flush on a closed writer.
var ErrClosed = errors.New("ingest: writer closed")

// WriterOptions configure a Writer. The zero value is usable: every
// bound has a sensible default.
type WriterOptions struct {
	// MaxBatchRows seals the staging micro-batch when it reaches this
	// many rows. Default 1024.
	MaxBatchRows int
	// MaxBatchBytes seals the staging micro-batch when its estimated
	// in-memory size reaches this many bytes. Default 1 MiB.
	MaxBatchBytes int64
	// MaxBatchAge seals the staging micro-batch when its oldest row
	// has waited this long (by the writer's clock). Age is checked on
	// Tick, so a caller (the scheduler's run loop, or a test driving
	// a virtual clock) must tick the writer for the bound to fire.
	// Default 500ms.
	MaxBatchAge time.Duration
	// GroupCommitBatches is the most sealed micro-batches one commit
	// round may carry. Default 8.
	GroupCommitBatches int
	// MaxPendingRows bounds in-flight memory: Append blocks once this
	// many rows are staged or awaiting commit. When the observed
	// commit latency exceeds SlowCommit the effective bound halves,
	// pushing back on producers before the queue grows. Default 1<<16.
	MaxPendingRows int
	// SlowCommit is the commit-latency threshold (exponential moving
	// average over group commits) above which the writer halves its
	// pending budget. Default 2s.
	SlowCommit time.Duration
	// Parquet are the options for the staged data files.
	Parquet parquet.WriterOptions
	// Clock drives batch ages and commit-latency measurement. Nil
	// means the real wall clock.
	Clock simtime.Clock
	// Manual disables the background committer: batches commit only
	// on Flush, Tick (age-sealed groups), or Close. Deterministic
	// drivers (benchmarks, tests) use it to control grouping exactly.
	Manual bool
	// OnCommitted, if set, runs after every successful group commit
	// with the files that landed. The scheduler uses it to feed its
	// freshness ledger. It must not call back into the writer.
	OnCommitted func(files []CommittedFile)
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.MaxBatchRows <= 0 {
		o.MaxBatchRows = 1024
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 1 << 20
	}
	if o.MaxBatchAge <= 0 {
		o.MaxBatchAge = 500 * time.Millisecond
	}
	if o.GroupCommitBatches <= 0 {
		o.GroupCommitBatches = 8
	}
	if o.MaxPendingRows <= 0 {
		o.MaxPendingRows = 1 << 16
	}
	if o.SlowCommit <= 0 {
		o.SlowCommit = 2 * time.Second
	}
	if o.Clock == nil {
		o.Clock = simtime.RealClock{}
	}
	return o
}

// CommittedFile describes one data file a group commit landed.
type CommittedFile struct {
	// Path is the file key relative to the table root.
	Path string
	// Rows is the file's row count.
	Rows int64
	// Version is the log version the file became visible at.
	Version int64
	// AckedAt is when the commit was acknowledged to producers — the
	// start of the file's searchable lag.
	AckedAt time.Time
}

// Ack is a producer's handle on one Append: it resolves when the
// appended rows are durably committed (or failed).
type Ack struct {
	done    chan struct{}
	version int64
	path    string
	err     error
}

// Done returns a channel closed when the ack resolves.
func (a *Ack) Done() <-chan struct{} { return a.done }

// Wait blocks until the ack resolves or ctx is done, returning the
// committed version.
func (a *Ack) Wait(ctx context.Context) (int64, error) {
	select {
	case <-a.done:
		return a.version, a.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Path returns the data file holding the appended rows. Valid only
// after the ack resolves successfully.
func (a *Ack) Path() string { return a.path }

// Err returns the ack's outcome. Valid only after the ack resolves.
func (a *Ack) Err() error { return a.err }

// microBatch is one staging buffer: accumulated rows plus the acks of
// the producers that contributed them.
type microBatch struct {
	batch *parquet.Batch
	rows  int
	bytes int64
	born  time.Time
	acks  []*Ack
}

// Writer is a micro-batching ingest writer. Many producers Append
// concurrently; rows stage into size/age-bounded micro-batches, and a
// committer lands up to GroupCommitBatches batches per log round —
// one conditional PUT per group instead of one per batch.
type Writer struct {
	table *lake.Table
	opts  WriterOptions
	clock simtime.Clock
	reg   *obs.Registry

	mu        sync.Mutex
	cond      *sync.Cond
	staging   *microBatch
	sealed    []*microBatch
	inflight  map[*microBatch]struct{} // handed to a commit pass, acks unresolved
	pending   int                      // rows staged or awaiting commit
	paused    bool
	closed    bool
	commitEMA time.Duration

	done chan struct{} // background committer exited

	hookMu    sync.Mutex
	committed []func([]CommittedFile)

	rowsAcked     *obs.Counter
	batchesDone   *obs.Counter
	groupCommits  *obs.Counter
	commitErrors  *obs.Counter
	ambResolved   *obs.Counter
	bpWaits       *obs.Counter
	pendingGauge  *obs.Gauge
	commitLatency *obs.Histogram
}

// NewWriter returns a writer over the table. Unless opts.Manual is
// set, a background committer goroutine drains sealed batches; Close
// stops it.
func NewWriter(table *lake.Table, opts WriterOptions) *Writer {
	opts = opts.withDefaults()
	reg := obs.NewRegistry()
	w := &Writer{
		table:    table,
		opts:     opts,
		clock:    opts.Clock,
		reg:      reg,
		inflight: make(map[*microBatch]struct{}),
		done:     make(chan struct{}),

		rowsAcked:     reg.Counter("ingest.rows_acked"),
		batchesDone:   reg.Counter("ingest.batches_committed"),
		groupCommits:  reg.Counter("ingest.group_commits"),
		commitErrors:  reg.Counter("ingest.commit_errors"),
		ambResolved:   reg.Counter("ingest.ambiguous_resolved"),
		bpWaits:       reg.Counter("ingest.backpressure_waits"),
		pendingGauge:  reg.Gauge("ingest.pending_rows"),
		commitLatency: reg.Histogram("ingest.commit_latency_ns"),
	}
	w.cond = sync.NewCond(&w.mu)
	if opts.OnCommitted != nil {
		w.committed = append(w.committed, opts.OnCommitted)
	}
	if opts.Manual {
		close(w.done)
	} else {
		go w.run()
	}
	return w
}

// Registry returns the writer's metrics registry ("ingest.*" names).
func (w *Writer) Registry() *obs.Registry { return w.reg }

// Table returns the table the writer commits to.
func (w *Writer) Table() *lake.Table { return w.table }

// OnCommitted registers fn to run after every successful group
// commit, alongside any hook set in the options. The scheduler uses
// it to feed its freshness ledger. fn must not call back into the
// writer.
func (w *Writer) OnCommitted(fn func([]CommittedFile)) {
	w.hookMu.Lock()
	w.committed = append(w.committed, fn)
	w.hookMu.Unlock()
}

func (w *Writer) fireCommitted(files []CommittedFile) {
	w.hookMu.Lock()
	hooks := make([]func([]CommittedFile), len(w.committed))
	copy(hooks, w.committed)
	w.hookMu.Unlock()
	for _, fn := range hooks {
		fn(files)
	}
}

// budgetLocked is the effective pending-row bound: the configured
// bound, halved while commits are slow (backpressure when commit
// latency rises).
func (w *Writer) budgetLocked() int {
	b := w.opts.MaxPendingRows
	if w.commitEMA > w.opts.SlowCommit {
		b /= 2
	}
	return b
}

// Append stages the batch's rows and returns an ack that resolves
// when they are durably committed. It blocks while the writer is
// paused or the pending-row budget is exhausted, honouring ctx.
func (w *Writer) Append(ctx context.Context, b *parquet.Batch) (*Ack, error) {
	rows := b.NumRows()
	if rows == 0 {
		return nil, fmt.Errorf("ingest: append of empty batch")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	stop := context.AfterFunc(ctx, func() {
		w.mu.Lock()
		w.cond.Broadcast()
		w.mu.Unlock()
	})
	defer stop()

	w.mu.Lock()
	waited := false
	for !w.closed && ctx.Err() == nil &&
		(w.paused || (w.pending > 0 && w.pending+rows > w.budgetLocked())) {
		if !waited {
			waited = true
			w.bpWaits.Inc()
		}
		w.cond.Wait()
	}
	if w.closed {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		w.mu.Unlock()
		return nil, err
	}

	if w.staging == nil {
		w.staging = &microBatch{batch: parquet.NewBatch(b.Schema), born: w.clock.Now()}
	}
	st := w.staging
	if !b.Schema.Equal(st.batch.Schema) {
		// Same arity is not enough: merging differently named or typed
		// columns under the staging schema would corrupt the staged
		// file, so producers must agree on the exact schema.
		w.mu.Unlock()
		return nil, fmt.Errorf("ingest: batch schema mismatch: columns differ from the staging batch's schema")
	}
	for i := range st.batch.Cols {
		st.batch.Cols[i] = st.batch.Cols[i].Append(b.Cols[i])
	}
	st.rows += rows
	st.bytes += batchBytes(b)
	ack := &Ack{done: make(chan struct{})}
	st.acks = append(st.acks, ack)
	w.pending += rows
	w.pendingGauge.Set(int64(w.pending))
	if st.rows >= w.opts.MaxBatchRows || st.bytes >= w.opts.MaxBatchBytes {
		w.sealLocked()
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	return ack, nil
}

// batchBytes estimates a batch's in-memory size for the byte bound.
func batchBytes(b *parquet.Batch) int64 {
	var n int64
	for _, c := range b.Cols {
		n += int64(len(c.Bools))
		n += int64(len(c.Ints)) * 8
		n += int64(len(c.Doubles)) * 8
		for _, v := range c.Bytes {
			n += int64(len(v)) + 16
		}
	}
	return n
}

// sealLocked moves the staging batch to the sealed queue.
func (w *Writer) sealLocked() {
	if w.staging == nil || w.staging.rows == 0 {
		return
	}
	w.sealed = append(w.sealed, w.staging)
	w.staging = nil
}

// Tick applies the age bound: if the staging batch's oldest row has
// waited MaxBatchAge, it seals (and, in manual mode, commits every
// sealed group). Callers advance the writer's clock, then tick.
func (w *Writer) Tick(ctx context.Context) error {
	w.mu.Lock()
	if w.staging != nil && w.staging.rows > 0 &&
		w.clock.Now().Sub(w.staging.born) >= w.opts.MaxBatchAge {
		w.sealLocked()
		w.cond.Broadcast()
	}
	manualWork := w.opts.Manual && len(w.sealed) > 0
	w.mu.Unlock()
	if manualWork {
		return w.drainSealed(ctx)
	}
	return nil
}

// drainSealed commits sealed groups inline without idle-flushing the
// staging batch (manual mode's age path: young staged rows stay put).
func (w *Writer) drainSealed(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !w.commitPass(ctx, false) {
			return nil
		}
	}
}

// Pause blocks producers (Append waits) without stopping the
// committer, so in-flight batches still drain. The scheduler uses it
// as backpressure when unindexed rows outrun indexing.
func (w *Writer) Pause() {
	w.mu.Lock()
	w.paused = true
	w.mu.Unlock()
}

// Resume lifts a Pause.
func (w *Writer) Resume() {
	w.mu.Lock()
	w.paused = false
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Paused reports whether the writer is pausing producers.
func (w *Writer) Paused() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.paused
}

// Flush seals the staging batch and blocks until every row staged
// before the call is committed (or failed, resolving its ack). Rows
// appended by other producers after the call do not extend the wait:
// Flush snapshots the acks outstanding at call time and waits only on
// those, so sustained concurrent traffic cannot starve it.
func (w *Writer) Flush(ctx context.Context) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	w.sealLocked()
	acks := w.outstandingAcksLocked()
	w.cond.Broadcast()
	w.mu.Unlock()
	if w.opts.Manual {
		// No background committer: run commit passes inline until the
		// snapshot resolves (later-staged batches ahead in the queue
		// just commit along the way).
		for !acksResolved(acks) {
			if err := ctx.Err(); err != nil {
				return err
			}
			if !w.commitPass(ctx, false) {
				break
			}
		}
	}
	return waitAcks(ctx, acks)
}

// outstandingAcksLocked snapshots the acks of every batch staged but
// not yet resolved: sealed batches plus groups a commit pass holds.
// (The staging batch is empty at the call sites — Flush seals first.)
func (w *Writer) outstandingAcksLocked() []*Ack {
	var acks []*Ack
	for _, mb := range w.sealed {
		acks = append(acks, mb.acks...)
	}
	for mb := range w.inflight {
		acks = append(acks, mb.acks...)
	}
	return acks
}

// acksResolved reports whether every ack has resolved.
func acksResolved(acks []*Ack) bool {
	for _, a := range acks {
		select {
		case <-a.done:
		default:
			return false
		}
	}
	return true
}

// waitAcks blocks until every ack resolves or ctx is done.
func waitAcks(ctx context.Context, acks []*Ack) error {
	for _, a := range acks {
		select {
		case <-a.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Close seals and drains everything — every pending ack resolves,
// successfully or with an error — then stops the committer. Appends
// after Close fail with ErrClosed.
func (w *Writer) Close(ctx context.Context) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.sealLocked()
	w.cond.Broadcast()
	w.mu.Unlock()
	if w.opts.Manual {
		return w.drain(ctx)
	}
	select {
	case <-w.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// drain runs manual-mode commit passes inline until no work remains.
// Close uses it: a closed writer admits no new rows, so the loop is
// exact.
func (w *Writer) drain(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !w.commitPass(ctx, true) {
			return nil
		}
	}
}

// run is the background committer: it drains sealed batches in
// groups, sealing the staging batch when otherwise idle so latency
// stays low under light load while batching emerges under heavy load
// (a commit in flight lets producers fill the next group).
func (w *Writer) run() {
	defer close(w.done)
	for {
		w.mu.Lock()
		for !w.workLocked() && !w.closed {
			w.cond.Wait()
		}
		if !w.workLocked() && w.closed {
			w.mu.Unlock()
			return
		}
		w.mu.Unlock()
		w.commitPass(context.Background(), true)
	}
}

func (w *Writer) workLocked() bool {
	return len(w.sealed) > 0 || (w.staging != nil && w.staging.rows > 0)
}

// commitPass commits one group of sealed batches (idle-flushing the
// staging batch when the sealed queue is empty and idleFlush is set).
// It reports whether it found work.
func (w *Writer) commitPass(ctx context.Context, idleFlush bool) bool {
	w.mu.Lock()
	if len(w.sealed) == 0 && idleFlush {
		w.sealLocked()
	}
	n := len(w.sealed)
	if n == 0 {
		w.mu.Unlock()
		return false
	}
	if n > w.opts.GroupCommitBatches {
		n = w.opts.GroupCommitBatches
	}
	group := make([]*microBatch, n)
	copy(group, w.sealed[:n])
	w.sealed = w.sealed[n:]
	for _, mb := range group {
		w.inflight[mb] = struct{}{}
	}
	w.mu.Unlock()
	w.commitGroup(ctx, group)
	return true
}

// maxCommitAttempts bounds the commit-and-resolve loop of one group.
const maxCommitAttempts = 10

// commitGroup stages each batch as a data file and lands the whole
// group in one commit round, then resolves every ack exactly once.
//
// Exactly-once across ambiguous outcomes: data-file paths are unique
// and random, and snapshot reconstruction keys files by path, so
// re-committing the same staged files is idempotent — a group that
// landed invisibly cannot duplicate rows on retry. When CommitFiles
// errors, the loop checks the latest snapshot for the group's files
// (landed → acks succeed) and otherwise retries the commit. (A
// compaction racing into the narrow ambiguous window could remove a
// landed file before the presence check; the window requires an
// unresolvable read-back failure and is vanishingly small.)
func (w *Writer) commitGroup(ctx context.Context, group []*microBatch) {
	var totalRows int64
	for _, mb := range group {
		totalRows += int64(mb.rows)
	}

	// Stage the files. Uploads are plain PUTs to unique keys —
	// idempotent, so failures just retry; persistent failures fail
	// the batch's acks and drop it from the group.
	var files []lake.PendingFile
	var committed []*microBatch
	for _, mb := range group {
		var pf lake.PendingFile
		var err error
		for attempt := 0; attempt < 4; attempt++ {
			pf, err = w.table.WriteFile(ctx, mb.batch, w.opts.Parquet)
			if err == nil {
				break
			}
		}
		if err != nil {
			w.finish(mb, 0, "", fmt.Errorf("ingest: stage batch: %w", err))
			continue
		}
		files = append(files, pf)
		committed = append(committed, mb)
	}
	if len(files) == 0 {
		return
	}

	start := w.clock.Now()
	var version int64
	var err error
	for attempt := 0; attempt < maxCommitAttempts; attempt++ {
		version, err = w.table.CommitFiles(ctx, files...)
		if err == nil {
			break
		}
		w.commitErrors.Inc()
		if ctx.Err() != nil {
			break
		}
		if landed, v, perr := w.landed(ctx, files[0].Path); perr == nil && landed {
			w.ambResolved.Inc()
			version, err = v, nil
			break
		}
	}
	latency := w.clock.Now().Sub(start)
	w.commitLatency.Observe(int64(latency))

	w.mu.Lock()
	if w.commitEMA == 0 {
		w.commitEMA = latency
	} else {
		w.commitEMA = (3*w.commitEMA + latency) / 4
	}
	w.mu.Unlock()

	if err != nil {
		for _, mb := range committed {
			w.finish(mb, 0, "", err)
		}
		return
	}
	w.groupCommits.Inc()
	w.batchesDone.Add(int64(len(committed)))
	w.rowsAcked.Add(totalRows)
	acked := w.clock.Now()
	out := make([]CommittedFile, len(committed))
	for i, mb := range committed {
		out[i] = CommittedFile{Path: files[i].Path, Rows: files[i].Rows, Version: version, AckedAt: acked}
		w.finish(mb, version, files[i].Path, nil)
	}
	w.fireCommitted(out)
}

// landed reports whether path is visible in the latest snapshot.
func (w *Writer) landed(ctx context.Context, path string) (bool, int64, error) {
	snap, err := w.table.Snapshot(ctx)
	if err != nil {
		return false, 0, err
	}
	_, ok := snap.File(path)
	return ok, snap.Version, nil
}

// finish resolves a batch's acks and releases its pending rows.
func (w *Writer) finish(mb *microBatch, version int64, path string, err error) {
	w.mu.Lock()
	delete(w.inflight, mb)
	w.pending -= mb.rows
	w.pendingGauge.Set(int64(w.pending))
	w.cond.Broadcast()
	w.mu.Unlock()
	for _, a := range mb.acks {
		a.version, a.path, a.err = version, path, err
		close(a.done)
	}
}
