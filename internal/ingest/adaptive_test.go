package ingest

import (
	"context"
	"fmt"
	"testing"
	"time"

	"rottnest/internal/adaptive"
	"rottnest/internal/component"
	"rottnest/internal/core"
	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
)

var twoColSchema = parquet.MustSchema(
	parquet.Column{Name: "msg", Type: parquet.TypeByteArray},
	parquet.Column{Name: "note", Type: parquet.TypeByteArray},
)

func twoColBatch(msgs, notes []string) *parquet.Batch {
	b := parquet.NewBatch(twoColSchema)
	mb := make([][]byte, len(msgs))
	nb := make([][]byte, len(notes))
	for i := range msgs {
		mb[i], nb[i] = []byte(msgs[i]), []byte(notes[i])
	}
	b.Cols[0] = parquet.ColumnValues{Bytes: mb}
	b.Cols[1] = parquet.ColumnValues{Bytes: nb}
	return b
}

// TestSchedulerAdaptiveColdColumnNeverIndexed drives the full adaptive
// loop under the virtual clock: two specs, but only one column ever
// sees queries. The heat ledger feeds the autopilot, the autopilot
// demotes the never-queried column to the scan path, and the scheduler
// must bring the hot column to full coverage while building zero index
// entries for the cold one — the headline saving of workload-adaptive
// maintenance.
func TestSchedulerAdaptiveColdColumnNeverIndexed(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	stack := objectstore.NewStack(objectstore.NewMemStore(clock), objectstore.StackOptions{
		Latency:    &objectstore.LatencyModel{},
		CacheBytes: -1,
	})
	tbl, err := lake.CreateWith(ctx, stack.Store, "tbl", twoColSchema, lake.OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	cli := core.NewClient(tbl, core.Config{IndexDir: "idx", Clock: clock})
	specs := []core.IndexSpec{
		{Column: "msg", Kind: component.KindFM},
		{Column: "note", Kind: component.KindFM},
	}
	ledger := adaptive.NewLedger(adaptive.LedgerOptions{HalfLife: time.Minute, Clock: clock})
	cli.SetHeatObserver(ledger)
	// ScanBytesPerSec of 1 makes brute force look hopeless at any data
	// size, so queried columns always stay on the indexing path; the
	// cold column is demoted by the never-queried rule, which bypasses
	// the phase diagram entirely.
	pilot := adaptive.NewAutopilot(cli, ledger, specs, adaptive.AutopilotOptions{
		RefreshEvery:    -1,
		ScanBytesPerSec: 1,
		Clock:           clock,
	})
	policy := adaptive.NewPolicy(adaptive.PolicyOptions{Ledger: ledger, Pilot: pilot, Client: cli})
	w := NewWriter(tbl, WriterOptions{MaxBatchRows: 2, Clock: clock, Manual: true})
	s := NewScheduler(tbl, SchedulerOptions{
		Client:   cli,
		Writer:   w,
		Specs:    specs,
		Clock:    clock,
		Adaptive: policy,
	})

	for round := 0; round < 3; round++ {
		var msgs, notes []string
		for i := 0; i < 4; i++ {
			msgs = append(msgs, fmt.Sprintf("hot-r%d-%d", round, i))
			notes = append(notes, fmt.Sprintf("cold-r%d-%d", round, i))
		}
		if _, err := w.Append(ctx, twoColBatch(msgs, notes)); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		// Query traffic on msg only: this is what makes it hot — and
		// what the cold column never gets.
		for i := 0; i < 5; i++ {
			if _, err := cli.Search(ctx, core.Query{Column: "msg", Substring: []byte("hot-")}); err != nil {
				t.Fatal(err)
			}
		}
		clock.Advance(2 * time.Second)
		if err := s.Quiesce(ctx); err != nil {
			t.Fatal(err)
		}
		// The cold column must have zero index entries at every
		// quiescent point, not just at the end.
		cold, err := cli.ListIndexes(ctx, "note", component.KindFM)
		if err != nil {
			t.Fatal(err)
		}
		if len(cold) != 0 {
			t.Fatalf("round %d: cold column has %d index entries, want 0", round, len(cold))
		}
	}

	hot, err := cli.ListIndexes(ctx, "msg", component.KindFM)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) == 0 {
		t.Fatal("hot column never indexed")
	}
	reg := s.Registry().Snapshot()
	if got := reg.Counter("ingest.jobs_index"); got == 0 {
		t.Fatal("no index jobs ran")
	}
	// Jobs ran, so the job-issued request meter must have billed them —
	// this is the number the adaptive bench compares regimes on.
	if got := reg.Counter("ingest.job_requests"); got == 0 {
		t.Fatal("ingest.job_requests = 0 after index jobs ran")
	}
	// Full freshness despite the demoted spec: coverage counts only
	// non-demoted specs, so the ledger drains on the hot column alone.
	if got := reg.Gauge("ingest.rows_unindexed"); got != 0 {
		t.Fatalf("rows_unindexed = %d after quiesce, want 0", got)
	}
	// Demotion skipped jobs; it had nothing to drop (no entries ever).
	if got := reg.Counter("ingest.jobs_demote"); got != 0 {
		t.Fatalf("jobs_demote = %d, want 0 (cold column never had entries)", got)
	}
	// The search path still answers on both columns: msg via its index,
	// note by scanning.
	res, err := cli.Search(ctx, core.Query{Column: "note", Substring: []byte("cold-r2-3")})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("scan-path search on demoted column found %d hits, want 1", len(res.Matches))
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
}
