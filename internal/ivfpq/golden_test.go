package ivfpq

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"testing"

	"rottnest/internal/postings"
	"rottnest/internal/workload"
)

// ivfpqGoldenHash is the SHA-256 of the index file built by the
// original serial implementation (pre-vectorized seed code) for
// goldenIVFPQInput. The unrolled l2sq keeps a single accumulator and
// the early-abandon nearest is exact, so k-means converges to the
// bit-identical centroids and the file must not change.
const ivfpqGoldenHash = "3105c0b77f72e25bf164274d7ee3b3e80b8fe32f0fa88928d584f7cf585549e4"

func goldenIVFPQInput() ([][]float32, []postings.RowRef) {
	vecs := workload.NewVectorGen(workload.VectorConfig{Seed: 42, Dim: 16, Clusters: 32, Spread: 0.2}).Batch(2000)
	refs := make([]postings.RowRef, len(vecs))
	for i := range refs {
		refs[i] = postings.RowRef{File: uint32(i % 3), Row: int64(i)}
	}
	return vecs, refs
}

func TestBuildGoldenBytes(t *testing.T) {
	vecs, refs := goldenIVFPQInput()
	opts := BuildOptions{Seed: 7, NList: 32, KMeansIters: 6, TrainSample: 1500}
	data, err := Build(vecs, refs, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256(data)
	if got := hex.EncodeToString(h[:]); got != ivfpqGoldenHash {
		t.Fatalf("IVF-PQ index bytes diverged from the seed build:\n got %s\nwant %s", got, ivfpqGoldenHash)
	}

	// The parallel build must be independent of the worker count.
	prev := runtime.GOMAXPROCS(1)
	serial, err := Build(vecs, refs, opts)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, data) {
		t.Fatal("IVF-PQ index bytes differ between GOMAXPROCS=1 and parallel build")
	}
}

func TestL2sqBoundedMatchesFull(t *testing.T) {
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 9, Dim: 13, Clusters: 4, Spread: 1.0})
	vecs := gen.Batch(64)
	for i := 1; i < len(vecs); i++ {
		full := l2sq(vecs[0], vecs[i])
		// A bound at or above the true distance must return the exact
		// full value.
		if got := l2sqBounded(vecs[0], vecs[i], full); got != full {
			t.Fatalf("l2sqBounded(bound=full) = %v, want %v", got, full)
		}
		// A tight bound may abandon early, but never below the bound.
		if got := l2sqBounded(vecs[0], vecs[i], full/4); got < full/4 && got != full {
			t.Fatalf("l2sqBounded abandoned at %v below bound %v", got, full/4)
		}
	}
	// Odd lengths exercise the scalar tail.
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if got := l2sq(a, b); got != 27 {
		t.Fatalf("l2sq tail = %v, want 27", got)
	}
}
