package ivfpq

import (
	"context"
	"encoding/binary"
	"math"
	"math/rand"
	"sort"
	"testing"

	"rottnest/internal/component"
	"rottnest/internal/objectstore"
	"rottnest/internal/postings"
	"rottnest/internal/workload"
)

func buildAndOpen(t testing.TB, store objectstore.Store, key string, vecs [][]float32, refs []postings.RowRef, opts BuildOptions) *Index {
	t.Helper()
	ctx := context.Background()
	data, err := Build(vecs, refs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	r, err := component.Open(ctx, store, key, component.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func seqRefs(n int) []postings.RowRef {
	refs := make([]postings.RowRef, n)
	for i := range refs {
		refs[i] = postings.RowRef{File: 0, Row: int64(i)}
	}
	return refs
}

func TestKMeansBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Two well-separated clusters must be found.
	var pts [][]float32
	for i := 0; i < 50; i++ {
		pts = append(pts, []float32{float32(rng.NormFloat64() * 0.1), 0})
		pts = append(pts, []float32{10 + float32(rng.NormFloat64()*0.1), 0})
	}
	cents := kmeans(pts, 2, 20, rng)
	if len(cents) != 2 {
		t.Fatalf("centroids = %d", len(cents))
	}
	lo, hi := cents[0][0], cents[1][0]
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo > 1 || hi < 9 {
		t.Fatalf("centroids at %v and %v, want ~0 and ~10", lo, hi)
	}
	// k > n clamps.
	if got := kmeans(pts[:3], 10, 5, rng); len(got) != 3 {
		t.Fatalf("clamp: %d centroids", len(got))
	}
	if got := kmeans(nil, 5, 5, rng); got != nil {
		t.Fatal("empty points")
	}
}

func TestSearchRecallWithRefine(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 2, Dim: 32, Clusters: 32, Spread: 0.2})
	const n = 8000
	vecs := gen.Batch(n)
	ix := buildAndOpen(t, store, "v.index", vecs, seqRefs(n), BuildOptions{NList: 64, M: 8, Seed: 3})

	queries := gen.Queries(30)
	const k = 10
	var recallSum float64
	for _, q := range queries {
		cands, err := ix.Search(ctx, q, 16, 200)
		if err != nil {
			t.Fatal(err)
		}
		// Refine: exact rerank of the candidates.
		full := make([][]float32, len(cands))
		for i, c := range cands {
			full[i] = vecs[c.Ref.Row]
		}
		top := ExactRerank(q, cands, full, k)
		got := make([]int, len(top))
		for i, c := range top {
			got[i] = int(c.Ref.Row)
		}
		truth := workload.ExactNearest(vecs, q, k)
		recallSum += workload.Recall(got, truth)
	}
	recall := recallSum / float64(len(queries))
	if recall < 0.8 {
		t.Fatalf("recall@10 = %.3f, want >= 0.8", recall)
	}
}

func TestRecallImprovesWithNprobe(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 4, Dim: 32, Clusters: 64, Spread: 0.25})
	const n = 6000
	vecs := gen.Batch(n)
	ix := buildAndOpen(t, store, "v.index", vecs, seqRefs(n), BuildOptions{NList: 64, M: 8, Seed: 5})

	queries := gen.Queries(25)
	const k = 10
	recallAt := func(nprobe int) float64 {
		var sum float64
		for _, q := range queries {
			cands, err := ix.Search(ctx, q, nprobe, 300)
			if err != nil {
				t.Fatal(err)
			}
			full := make([][]float32, len(cands))
			for i, c := range cands {
				full[i] = vecs[c.Ref.Row]
			}
			top := ExactRerank(q, cands, full, k)
			got := make([]int, len(top))
			for i, c := range top {
				got[i] = int(c.Ref.Row)
			}
			sum += workload.Recall(got, workload.ExactNearest(vecs, q, k))
		}
		return sum / float64(len(queries))
	}
	low, high := recallAt(1), recallAt(32)
	if high < low {
		t.Fatalf("recall fell with nprobe: %.3f -> %.3f", low, high)
	}
	if high < 0.85 {
		t.Fatalf("recall@10 with nprobe=32: %.3f", high)
	}
}

func TestSearchRequestPattern(t *testing.T) {
	// A search is one root read (at open) plus one fan of list
	// component reads — width, not depth.
	ctx := context.Background()
	inner := objectstore.NewMemStore(nil)
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 6, Dim: 16, Clusters: 16, Spread: 0.2})
	const n = 4000
	vecs := gen.Batch(n)
	data, err := Build(vecs, seqRefs(n), BuildOptions{NList: 32, M: 4, Seed: 7, TargetComponentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	inner.Put(ctx, "v.index", data)
	store, metrics := objectstore.Instrument(inner, objectstore.DefaultS3Model())
	r, err := component.Open(ctx, store, "v.index", component.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	before := metrics.Snapshot()
	if _, err := ix.Search(ctx, vecs[0], 8, 100); err != nil {
		t.Fatal(err)
	}
	gets := metrics.Snapshot().Sub(before).Gets
	if gets > 8 {
		t.Fatalf("search issued %d GETs for nprobe=8", gets)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, nil, BuildOptions{}); err == nil {
		t.Fatal("empty build accepted")
	}
	if _, err := Build([][]float32{{1, 2}}, seqRefs(2), BuildOptions{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Build([][]float32{{1, 2}, {1, 2, 3}}, seqRefs(2), BuildOptions{}); err == nil {
		t.Fatal("ragged vectors accepted")
	}
}

func TestQueryValidation(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	vecs := workload.NewVectorGen(workload.VectorConfig{Seed: 8, Dim: 8, Clusters: 4}).Batch(100)
	ix := buildAndOpen(t, store, "v.index", vecs, seqRefs(100), BuildOptions{M: 4})
	if _, err := ix.Search(ctx, []float32{1, 2}, 4, 10); err == nil {
		t.Fatal("wrong query dim accepted")
	}
	// nprobe out of range clamps rather than failing.
	if _, err := ix.Search(ctx, vecs[0], 10000, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(ctx, vecs[0], 0, 10); err != nil {
		t.Fatal(err)
	}
}

func TestEntriesAccounting(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	const n = 500
	vecs := workload.NewVectorGen(workload.VectorConfig{Seed: 9, Dim: 8, Clusters: 4}).Batch(n)
	ix := buildAndOpen(t, store, "v.index", vecs, seqRefs(n), BuildOptions{M: 4})
	if ix.NumVectors() != n || ix.Dim() != 8 {
		t.Fatalf("NumVectors=%d Dim=%d", ix.NumVectors(), ix.Dim())
	}
	refs, err := ix.Entries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != n {
		t.Fatalf("Entries = %d, want %d", len(refs), n)
	}
	seen := make(map[int64]bool, n)
	for _, r := range refs {
		if seen[r.Row] {
			t.Fatalf("duplicate ref row %d", r.Row)
		}
		seen[r.Row] = true
	}
}

func TestDimNotDivisibleByM(t *testing.T) {
	// dim=10 with requested M=8 must adjust to a divisor.
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	rng := rand.New(rand.NewSource(10))
	vecs := make([][]float32, 200)
	for i := range vecs {
		v := make([]float32, 10)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		vecs[i] = v
	}
	ix := buildAndOpen(t, store, "v.index", vecs, seqRefs(200), BuildOptions{M: 8})
	if _, err := ix.Search(ctx, vecs[0], 4, 10); err != nil {
		t.Fatal(err)
	}
}

func TestExactRerank(t *testing.T) {
	q := []float32{0, 0}
	cands := []Candidate{
		{Ref: postings.RowRef{Row: 0}, Dist: 99},
		{Ref: postings.RowRef{Row: 1}, Dist: 1},
		{Ref: postings.RowRef{Row: 2}, Dist: 50},
	}
	vectors := [][]float32{{5, 0}, {1, 0}, {0.1, 0}}
	top := ExactRerank(q, cands, vectors, 2)
	if len(top) != 2 || top[0].Ref.Row != 2 || top[1].Ref.Row != 1 {
		t.Fatalf("rerank = %+v", top)
	}
}

func BenchmarkIVFPQBuild(b *testing.B) {
	vecs := workload.NewVectorGen(workload.VectorConfig{Seed: 11, Dim: 32, Clusters: 32}).Batch(5000)
	refs := seqRefs(len(vecs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(vecs, refs, BuildOptions{NList: 64, M: 8, Seed: 12}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIVFPQSearch(b *testing.B) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 13, Dim: 32, Clusters: 32})
	vecs := gen.Batch(20000)
	ix := buildAndOpen(b, store, "v.index", vecs, seqRefs(len(vecs)), BuildOptions{NList: 128, M: 8, Seed: 14})
	queries := gen.Queries(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(ctx, queries[i%len(queries)], 16, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSearchAbandonIdentity pins that early abandonment never changes
// Search's output: with the bound active the returned candidates must
// be identical — refs and distance bits — to a forced full scan, for
// candidate budgets below, at, and above the corpus size.
func TestSearchAbandonIdentity(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 19, Dim: 32, Clusters: 48, Spread: 0.3})
	vecs := gen.Batch(4000)
	ix := buildAndOpen(t, store, "v.index", vecs, seqRefs(len(vecs)), BuildOptions{NList: 64, M: 8, Seed: 20})
	queries := gen.Queries(16)
	for _, maxCands := range []int{1, 7, 100, 5000, 0} {
		for qi, q := range queries {
			fast, err := ix.Search(ctx, q, 12, maxCands)
			if err != nil {
				t.Fatal(err)
			}
			adcAbandonDisabled = true
			full, err := ix.Search(ctx, q, 12, maxCands)
			adcAbandonDisabled = false
			if err != nil {
				t.Fatal(err)
			}
			if len(fast) != len(full) {
				t.Fatalf("q %d maxCands %d: %d candidates with abandon, %d without", qi, maxCands, len(fast), len(full))
			}
			for i := range fast {
				if fast[i].Ref != full[i].Ref ||
					math.Float32bits(fast[i].Dist) != math.Float32bits(full[i].Dist) {
					t.Fatalf("q %d maxCands %d cand %d: abandon %+v vs full %+v", qi, maxCands, i, fast[i], full[i])
				}
			}
		}
	}
}

// decodeScan is the pre-ADC baseline: reconstruct each candidate's
// approximate vector from its PQ codes (centroid + codewords) and
// score it with the L2 kernel. BenchmarkPQScanADC measures the
// table-gather scan against it.
func decodeScan(ctx context.Context, ix *Index, q []float32, nprobe, maxCandidates int) ([]Candidate, error) {
	type cd struct {
		list int
		dist float32
	}
	cds := make([]cd, len(ix.centroids))
	for i, c := range ix.centroids {
		cds[i] = cd{list: i, dist: l2sq(c, q)}
	}
	sort.Slice(cds, func(a, b int) bool { return cds[a].dist < cds[b].dist })
	if nprobe > len(cds) {
		nprobe = len(cds)
	}
	var cands []Candidate
	approx := make([]float32, ix.dim)
	for _, p := range cds[:nprobe] {
		d := ix.lists[p.list]
		if d.Count == 0 {
			continue
		}
		cent := ix.centroids[p.list]
		data, err := ix.r.Component(ctx, d.ComponentID)
		if err != nil {
			return nil, err
		}
		listData, err := listBytes(data, d)
		if err != nil {
			return nil, err
		}
		_, n := binary.Uvarint(listData)
		lpos := n
		for i := 0; i < d.Count; i++ {
			file, n := binary.Uvarint(listData[lpos:])
			lpos += n
			row, n := binary.Varint(listData[lpos:])
			lpos += n
			for m := 0; m < ix.m; m++ {
				cw := ix.codebooks[m][int(listData[lpos+m])]
				for j, v := range cw {
					approx[m*ix.subdim+j] = cent[m*ix.subdim+j] + v
				}
			}
			lpos += ix.m
			cands = append(cands, Candidate{Ref: postings.RowRef{File: uint32(file), Row: row}, Dist: l2sq(q, approx)})
		}
	}
	sortCandidates(cands)
	if maxCandidates > 0 && len(cands) > maxCandidates {
		cands = cands[:maxCandidates]
	}
	return cands, nil
}

// BenchmarkPQScanADC compares the ADC table-gather list scan against
// the decode-and-L2 baseline on the same index and queries. The ADC
// path must be the clear winner: m table adds per candidate versus a
// dim-wide reconstruction plus a dim-wide distance.
func BenchmarkPQScanADC(b *testing.B) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 23, Dim: 64, Clusters: 32})
	vecs := gen.Batch(20000)
	ix := buildAndOpen(b, store, "v.index", vecs, seqRefs(len(vecs)), BuildOptions{NList: 64, M: 8, Seed: 24})
	queries := gen.Queries(64)
	b.Run("adc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.Search(ctx, queries[i%len(queries)], 16, 200); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := decodeScan(ctx, ix, queries[i%len(queries)], 16, 200); err != nil {
				b.Fatal(err)
			}
		}
	})
}
