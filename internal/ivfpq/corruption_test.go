package ivfpq

import (
	"context"
	"math/rand"
	"testing"

	"rottnest/internal/component"
	"rottnest/internal/objectstore"
	"rottnest/internal/workload"
)

// TestCorruptedIVFPQNeverPanics mutates index bytes and drives the
// full open/search/entries path.
func TestCorruptedIVFPQNeverPanics(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(13))
	vecs := workload.NewVectorGen(workload.VectorConfig{Seed: 13, Dim: 8, Clusters: 8}).Batch(800)
	valid, err := Build(vecs, seqRefs(len(vecs)), BuildOptions{M: 4, Seed: 13, TargetComponentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 150; trial++ {
		corrupted := append([]byte(nil), valid...)
		for f := 0; f <= rng.Intn(3); f++ {
			corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
		}
		store := objectstore.NewMemStore(nil)
		store.Put(ctx, "v.index", corrupted)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d panicked: %v", trial, p)
				}
			}()
			r, err := component.Open(ctx, store, "v.index", component.OpenOptions{})
			if err != nil {
				return
			}
			ix, err := Open(ctx, r)
			if err != nil {
				return
			}
			ix.Search(ctx, vecs[0], 4, 20)
			ix.Entries(ctx)
		}()
	}
}
