package ivfpq

import (
	"math/rand"

	"rottnest/internal/parallel"
)

// kmeans clusters points into k centroids with kmeans++ seeding and
// iters Lloyd iterations. It returns the centroids; k is clamped to
// len(points). K-means assignment and PQ encoding dominate index build
// time; the paper notes the indexing API is internally parallel — the
// assignment scan runs on all cores via the shared worker pool.
func kmeans(points [][]float32, k, iters int, rng *rand.Rand) [][]float32 {
	if len(points) == 0 || k <= 0 {
		return nil
	}
	if k > len(points) {
		k = len(points)
	}
	dim := len(points[0])

	// kmeans++ seeding with a running min-distance array, so seeding
	// costs O(k·n·dim) rather than O(k²·n·dim).
	centroids := make([][]float32, 0, k)
	first := points[rng.Intn(len(points))]
	centroids = append(centroids, append([]float32(nil), first...))
	dists := make([]float64, len(points))
	for i, p := range points {
		dists[i] = float64(l2sq(first, p))
	}
	for len(centroids) < k {
		var total float64
		for _, d := range dists {
			total += d
		}
		if total == 0 {
			// All remaining points coincide with centroids; pad with
			// copies to keep k slots.
			for len(centroids) < k {
				centroids = append(centroids, append([]float32(nil), first...))
			}
			break
		}
		target := rng.Float64() * total
		acc := 0.0
		pick := len(points) - 1
		for i, d := range dists {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		newC := append([]float32(nil), points[pick]...)
		centroids = append(centroids, newC)
		for i, p := range points {
			if d := float64(l2sq(newC, p)); d < dists[i] {
				dists[i] = d
			}
		}
	}

	// Lloyd iterations; the assignment pass is the hot loop and runs
	// on all cores.
	assign := make([]int, len(points))
	changedFlags := make([]bool, len(points))
	for it := 0; it < iters; it++ {
		parallel.For(len(points), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c, _ := nearest(centroids, points[i])
				changedFlags[i] = assign[i] != c
				assign[i] = c
			}
		})
		changed := false
		for _, f := range changedFlags {
			if f {
				changed = true
				break
			}
		}
		if !changed && it > 0 {
			break
		}
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = make([]float64, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j, x := range p {
				sums[c][j] += float64(x)
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed empty clusters from a random point.
				copy(centroids[c], points[rng.Intn(len(points))])
				continue
			}
			for j := 0; j < dim; j++ {
				centroids[c][j] = float32(sums[c][j] / float64(counts[c]))
			}
		}
	}
	return centroids
}
