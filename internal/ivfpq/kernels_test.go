package ivfpq

import (
	"math"
	"math/rand"
	"testing"
)

// naiveL2 is the reference scalar loop the unrolled kernel must match
// bit for bit: same clamp-to-shorter semantics, same serial addition
// order.
func naiveL2(a, b []float32) float32 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var sum float32
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

func TestL2SqMatchesNaiveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Lengths straddle the unroll width, including 0 and non-multiples
	// of 4; pairs include mismatched lengths in both directions.
	lens := []int{0, 1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64, 127}
	for _, la := range lens {
		for _, lb := range lens {
			a := make([]float32, la)
			b := make([]float32, lb)
			for i := range a {
				a[i] = rng.Float32()*2e3 - 1e3
			}
			for i := range b {
				b[i] = rng.Float32()*2e3 - 1e3
			}
			got := L2Sq(a, b)
			want := naiveL2(a, b)
			if math.Float32bits(got) != math.Float32bits(want) {
				t.Fatalf("L2Sq(len %d, len %d) = %x, naive = %x: not bit-identical",
					la, lb, math.Float32bits(got), math.Float32bits(want))
			}
		}
	}
}

func TestL2SqSpecialValues(t *testing.T) {
	cases := [][2][]float32{
		{{float32(math.Inf(1)), 1}, {0, 1}},
		{{float32(math.NaN())}, {0}},
		{{math.MaxFloat32}, {-math.MaxFloat32}},
		{{1e-45, 1e-45, 1e-45, 1e-45, 1e-45}, {0, 0, 0, 0, 0}},
	}
	for i, c := range cases {
		got := L2Sq(c[0], c[1])
		want := naiveL2(c[0], c[1])
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("case %d: L2Sq = %x, naive = %x", i, math.Float32bits(got), math.Float32bits(want))
		}
	}
}
