package ivfpq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// naiveL2 is the reference scalar loop the unrolled kernel must match
// bit for bit: same clamp-to-shorter semantics, same serial addition
// order.
func naiveL2(a, b []float32) float32 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var sum float32
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

func TestL2SqMatchesNaiveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Lengths straddle the unroll width, including 0 and non-multiples
	// of 4; pairs include mismatched lengths in both directions.
	lens := []int{0, 1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64, 127}
	for _, la := range lens {
		for _, lb := range lens {
			a := make([]float32, la)
			b := make([]float32, lb)
			for i := range a {
				a[i] = rng.Float32()*2e3 - 1e3
			}
			for i := range b {
				b[i] = rng.Float32()*2e3 - 1e3
			}
			got := L2Sq(a, b)
			want := naiveL2(a, b)
			if math.Float32bits(got) != math.Float32bits(want) {
				t.Fatalf("L2Sq(len %d, len %d) = %x, naive = %x: not bit-identical",
					la, lb, math.Float32bits(got), math.Float32bits(want))
			}
		}
	}
}

func TestL2SqSpecialValues(t *testing.T) {
	cases := [][2][]float32{
		{{float32(math.Inf(1)), 1}, {0, 1}},
		{{float32(math.NaN())}, {0}},
		{{math.MaxFloat32}, {-math.MaxFloat32}},
		{{1e-45, 1e-45, 1e-45, 1e-45, 1e-45}, {0, 0, 0, 0, 0}},
	}
	for i, c := range cases {
		got := L2Sq(c[0], c[1])
		want := naiveL2(c[0], c[1])
		if math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("case %d: L2Sq = %x, naive = %x", i, math.Float32bits(got), math.Float32bits(want))
		}
	}
}

// specialLaneVectors builds vector pairs that exercise the kernels'
// IEEE edge lanes — ±Inf, NaN, overflow-to-Inf differences, and
// denormals — at positions straddling the unroll width.
func specialLaneVectors(rng *rand.Rand) [][2][]float32 {
	specials := []float32{
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
		math.MaxFloat32, -math.MaxFloat32, 1e-45, -1e-45, 0,
	}
	var cases [][2][]float32
	for _, n := range []int{1, 3, 4, 5, 8, 11, 16} {
		for _, pos := range []int{0, n / 2, n - 1} {
			for _, s := range specials {
				a := make([]float32, n)
				b := make([]float32, n)
				for i := range a {
					a[i] = rng.Float32()*2 - 1
					b[i] = rng.Float32()*2 - 1
				}
				a[pos] = s
				cases = append(cases, [2][]float32{a, b})
			}
		}
	}
	return cases
}

// TestL2SqBoundedConsolidated pins the consolidation of l2sq onto
// l2sqBounded: with an infinite bound the kernel must be bit-identical
// to the naive serial loop on every special-value lane, and with a
// finite bound every completed scan must be bit-identical while every
// abandoned scan returns a partial already above the bound.
func TestL2SqBoundedConsolidated(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inf := float32(math.Inf(1))
	for ci, c := range specialLaneVectors(rng) {
		a, b := c[0], c[1]
		want := naiveL2(a, b)
		if got := l2sq(a, b); math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("case %d: l2sq = %x, naive = %x", ci, math.Float32bits(got), math.Float32bits(want))
		}
		if got := l2sqBounded(a, b, inf); math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("case %d: l2sqBounded(+Inf) = %x, naive = %x", ci, math.Float32bits(got), math.Float32bits(want))
		}
		for _, bound := range []float32{0, want / 2, want, want * 2} {
			got := l2sqBounded(a, b, bound)
			if got > bound {
				continue // abandoned (or full sum above bound): partial must exceed bound, which it does
			}
			if math.Float32bits(got) != math.Float32bits(want) {
				t.Fatalf("case %d bound %v: completed scan = %x, naive = %x",
					ci, bound, math.Float32bits(got), math.Float32bits(want))
			}
		}
	}
}

// naiveADC is the reference gather loop adcDist must match bit for bit
// when it completes.
func naiveADC(table []float32, codes []byte) float32 {
	var sum float32
	for m, c := range codes {
		sum += table[m*pqCodebookSize+int(c)]
	}
	return sum
}

func TestADCDistMatchesNaiveGather(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	inf := float32(math.Inf(1))
	specials := []float32{inf, float32(math.NaN()), 1e-45, math.MaxFloat32}
	for _, m := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16} {
		table := make([]float32, m*pqCodebookSize)
		for i := range table {
			table[i] = rng.Float32() * 10
		}
		// Sprinkle special values so gathers cross Inf/NaN/denormal
		// entries too.
		for i := 0; i < m; i++ {
			table[i*pqCodebookSize+rng.Intn(pqCodebookSize)] = specials[rng.Intn(len(specials))]
		}
		for trial := 0; trial < 50; trial++ {
			codes := make([]byte, m)
			rng.Read(codes)
			want := naiveADC(table, codes)
			if got := adcDist(table, codes, inf); math.Float32bits(got) != math.Float32bits(want) {
				t.Fatalf("m=%d: adcDist(+Inf) = %x, naive = %x", m, math.Float32bits(got), math.Float32bits(want))
			}
			bound := rng.Float32() * float32(m) * 5
			got := adcDist(table, codes, bound)
			if got > bound {
				continue // abandoned: by construction the partial exceeds the bound
			}
			if math.Float32bits(got) != math.Float32bits(want) {
				t.Fatalf("m=%d bound %v: completed gather = %x, naive = %x",
					m, bound, math.Float32bits(got), math.Float32bits(want))
			}
		}
	}
}

// TestADCBoundTracksKthSmallest checks the max-heap bound against a
// sort-based oracle as distances stream in.
func TestADCBoundTracksKthSmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, k := range []int{1, 2, 3, 8, 33} {
		kb := adcBound{k: k}
		var seen []float32
		if got := kb.bound(); !math.IsInf(float64(got), 1) {
			t.Fatalf("k=%d: empty bound = %v, want +Inf", k, got)
		}
		for i := 0; i < 200; i++ {
			d := rng.Float32() * 100
			kb.add(d)
			seen = append(seen, d)
			sorted := append([]float32(nil), seen...)
			sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
			got := kb.bound()
			if len(seen) < k {
				if !math.IsInf(float64(got), 1) {
					t.Fatalf("k=%d after %d: bound = %v, want +Inf", k, len(seen), got)
				}
				continue
			}
			if want := sorted[k-1]; got != want {
				t.Fatalf("k=%d after %d: bound = %v, want k-th smallest %v", k, len(seen), got, want)
			}
		}
	}
	// k <= 0 disables the bound entirely.
	kb := adcBound{k: 0}
	kb.add(1)
	if got := kb.bound(); !math.IsInf(float64(got), 1) {
		t.Fatalf("k=0: bound = %v, want +Inf", got)
	}
}
