package ivfpq

import (
	"context"
	"testing"

	"rottnest/internal/component"
	"rottnest/internal/objectstore"
	"rottnest/internal/postings"
	"rottnest/internal/workload"
)

func TestMergePreservesSearchQuality(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 20, Dim: 16, Clusters: 16, Spread: 0.2})
	const half = 2000
	vecsA := gen.Batch(half)
	vecsB := gen.Batch(half)
	ixA := buildAndOpen(t, store, "a.index", vecsA, seqRefs(half), BuildOptions{NList: 32, M: 4, Seed: 21})
	ixB := buildAndOpen(t, store, "b.index", vecsB, seqRefs(half), BuildOptions{NList: 32, M: 4, Seed: 22})

	merged, err := Merge(ctx, []*Index{ixA, ixB}, []map[uint32]uint32{{0: 0}, {0: 1}}, BuildOptions{NList: 48, M: 4, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	store.Put(ctx, "m.index", merged)
	r, err := component.Open(ctx, store, "m.index", component.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ixM, err := Open(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if ixM.NumVectors() != 2*half {
		t.Fatalf("merged NumVectors = %d", ixM.NumVectors())
	}

	// Candidate coverage: the true nearest neighbor of each query (in
	// the combined set) should appear among merged candidates most of
	// the time.
	all := append(append([][]float32(nil), vecsA...), vecsB...)
	queries := gen.Queries(25)
	hits := 0
	for _, q := range queries {
		truth := workload.ExactNearest(all, q, 1)[0]
		wantFile, wantRow := uint32(0), int64(truth)
		if truth >= half {
			wantFile, wantRow = 1, int64(truth-half)
		}
		cands, err := ixM.Search(ctx, q, 16, 500)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cands {
			if c.Ref.File == wantFile && c.Ref.Row == wantRow {
				hits++
				break
			}
		}
	}
	if hits < len(queries)*3/4 {
		t.Fatalf("true NN appeared in merged candidates for only %d/%d queries", hits, len(queries))
	}
}

func TestMergeDropsUnmappedFiles(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	vecs := workload.NewVectorGen(workload.VectorConfig{Seed: 24, Dim: 8, Clusters: 4}).Batch(300)
	refs := make([]postings.RowRef, len(vecs))
	for i := range refs {
		refs[i] = postings.RowRef{File: uint32(i % 3), Row: int64(i)}
	}
	ix := buildAndOpen(t, store, "v.index", vecs, refs, BuildOptions{M: 4, Seed: 25})
	merged, err := Merge(ctx, []*Index{ix}, []map[uint32]uint32{{0: 0, 2: 1}}, BuildOptions{M: 4, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	store.Put(ctx, "m.index", merged)
	r, _ := component.Open(ctx, store, "m.index", component.OpenOptions{})
	ixM, err := Open(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if ixM.NumVectors() != 200 {
		t.Fatalf("merged NumVectors = %d, want 200 (file 1 dropped)", ixM.NumVectors())
	}
	got, err := ixM.Entries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range got {
		if ref.File > 1 {
			t.Fatalf("unmapped file leaked: %+v", ref)
		}
	}
}

func TestMergeErrors(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	vecs := workload.NewVectorGen(workload.VectorConfig{Seed: 27, Dim: 8, Clusters: 4}).Batch(100)
	ix := buildAndOpen(t, store, "v.index", vecs, seqRefs(100), BuildOptions{M: 4})
	if _, err := Merge(ctx, []*Index{ix}, nil, BuildOptions{}); err == nil {
		t.Fatal("file map length mismatch accepted")
	}
	if _, err := Merge(ctx, []*Index{ix}, []map[uint32]uint32{{}}, BuildOptions{}); err == nil {
		t.Fatal("empty merge accepted")
	}
}
