package ivfpq

import "math"

// l2sq returns the squared Euclidean distance between equal-length
// vectors: the bounded kernel with an infinite bound. No partial sum
// compares greater than +Inf (NaN comparisons are false too), so the
// scan always completes and the floating-point additions happen in
// exactly the original serial order — k-means, and therefore the
// index bytes, are unchanged.
func l2sq(a, b []float32) float32 {
	return l2sqBounded(a, b, float32(math.Inf(1)))
}

// L2Sq returns the squared Euclidean distance over the common prefix
// of a and b (mismatched lengths clamp to the shorter, matching the
// tolerant behavior callers scoring raw stored vectors rely on). It
// runs the unrolled kernel with the same single-accumulator serial
// addition order as a naive scalar loop, so results are IEEE
// bit-identical to one.
func L2Sq(a, b []float32) float32 {
	if len(b) < len(a) {
		a = a[:len(b)]
	}
	return l2sq(a, b)
}

// l2sqBounded is l2sq with early abandonment: once the partial sum
// exceeds bound the final distance cannot beat it, so the scan stops
// and returns the (already > bound) partial. Partial sums of
// non-negative terms are monotone under IEEE rounding, and the
// additions run in the same order as l2sq, so a completed scan returns
// the bit-identical full distance.
func l2sqBounded(a, b []float32, bound float32) float32 {
	b = b[:len(a)]
	var sum float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		sum += d0 * d0
		sum += d1 * d1
		sum += d2 * d2
		sum += d3 * d3
		if sum > bound {
			return sum
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// adcTables fills table (laid out m × pqCodebookSize) with the
// asymmetric-distance lookup tables for residual res: entry
// [m][j] is the squared distance between res's m-th subvector and
// codeword j of subquantizer m. One fill costs m·256 kernel calls and
// is amortized over every code string in the probed list; the fills
// use l2sq, so table entries are bit-identical to the previous inline
// construction.
func adcTables(table []float32, res []float32, codebooks [][][]float32, subdim int) {
	for m := range codebooks {
		sub := res[m*subdim : (m+1)*subdim]
		row := table[m*pqCodebookSize : (m+1)*pqCodebookSize]
		for j, cw := range codebooks[m] {
			row[j] = l2sq(sub, cw)
		}
	}
}

// adcDist gathers the ADC distance of one code string from table,
// unrolled by four, abandoning early once the partial sum exceeds
// bound (terms are non-negative, so partials are monotone and the
// final sum cannot recover). A completed gather accumulates in the
// same serial order as the scalar loop, so it is bit-identical;
// pass an infinite bound to force completion.
func adcDist(table []float32, codes []byte, bound float32) float32 {
	var sum float32
	i := 0
	for ; i+4 <= len(codes); i += 4 {
		sum += table[i*pqCodebookSize+int(codes[i])]
		sum += table[(i+1)*pqCodebookSize+int(codes[i+1])]
		sum += table[(i+2)*pqCodebookSize+int(codes[i+2])]
		sum += table[(i+3)*pqCodebookSize+int(codes[i+3])]
		if sum > bound {
			return sum
		}
	}
	for ; i < len(codes); i++ {
		sum += table[i*pqCodebookSize+int(codes[i])]
	}
	return sum
}

// adcBound tracks the k-th smallest distance seen so far with a
// fixed-capacity max-heap, serving as the early-abandon bound for
// adcDist: a candidate whose distance exceeds the current k-th best
// can never make the final top-k cut. k <= 0 disables the bound
// (bound stays +Inf and add is a no-op), which is also the
// abandon-off test hook's path.
type adcBound struct {
	k int
	h []float32
}

// bound returns the current k-th smallest distance, or +Inf until k
// distances have been seen.
func (b *adcBound) bound() float32 {
	if b.k <= 0 || len(b.h) < b.k {
		return float32(math.Inf(1))
	}
	return b.h[0]
}

// add offers a distance to the heap. NaN distances are harmless: NaN
// comparisons are false, so a NaN that reaches the root merely makes
// the bound permanently un-exceedable (abandonment off), never
// incorrect.
func (b *adcBound) add(d float32) {
	if b.k <= 0 {
		return
	}
	if len(b.h) < b.k {
		b.h = append(b.h, d)
		i := len(b.h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !(b.h[i] > b.h[p]) {
				break
			}
			b.h[i], b.h[p] = b.h[p], b.h[i]
			i = p
		}
		return
	}
	if !(d < b.h[0]) {
		return
	}
	b.h[0] = d
	i := 0
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < len(b.h) && b.h[l] > b.h[m] {
			m = l
		}
		if r < len(b.h) && b.h[r] > b.h[m] {
			m = r
		}
		if m == i {
			break
		}
		b.h[i], b.h[m] = b.h[m], b.h[i]
		i = m
	}
}

// nearest returns the index of the centroid closest to v and the
// squared distance. Early abandonment against the best distance so far
// is exact (see l2sqBounded): an abandoned candidate's true distance
// is at least the returned partial, which already exceeds bestD, so
// the winner and its distance match the exhaustive scan bit for bit.
func nearest(centroids [][]float32, v []float32) (int, float32) {
	best, bestD := 0, float32(math.MaxFloat32)
	for i, c := range centroids {
		if d := l2sqBounded(c, v, bestD); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
