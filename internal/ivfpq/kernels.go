package ivfpq

import "math"

// l2sq returns the squared Euclidean distance between equal-length
// vectors. The loop is unrolled by four with an up-front reslice so
// the compiler drops bounds checks, but keeps a single accumulator:
// the floating-point additions happen in exactly the original serial
// order, so k-means — and therefore the index bytes — are unchanged.
func l2sq(a, b []float32) float32 {
	b = b[:len(a)]
	var sum float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		sum += d0 * d0
		sum += d1 * d1
		sum += d2 * d2
		sum += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// L2Sq returns the squared Euclidean distance over the common prefix
// of a and b (mismatched lengths clamp to the shorter, matching the
// tolerant behavior callers scoring raw stored vectors rely on). It
// runs the unrolled kernel with the same single-accumulator serial
// addition order as a naive scalar loop, so results are IEEE
// bit-identical to one.
func L2Sq(a, b []float32) float32 {
	if len(b) < len(a) {
		a = a[:len(b)]
	}
	return l2sq(a, b)
}

// l2sqBounded is l2sq with early abandonment: once the partial sum
// exceeds bound the final distance cannot beat it, so the scan stops
// and returns the (already > bound) partial. Partial sums of
// non-negative terms are monotone under IEEE rounding, and the
// additions run in the same order as l2sq, so a completed scan returns
// the bit-identical full distance.
func l2sqBounded(a, b []float32, bound float32) float32 {
	b = b[:len(a)]
	var sum float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		sum += d0 * d0
		sum += d1 * d1
		sum += d2 * d2
		sum += d3 * d3
		if sum > bound {
			return sum
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// nearest returns the index of the centroid closest to v and the
// squared distance. Early abandonment against the best distance so far
// is exact (see l2sqBounded): an abandoned candidate's true distance
// is at least the returned partial, which already exceeds bestD, so
// the winner and its distance match the exhaustive scan bit for bit.
func nearest(centroids [][]float32, v []float32) (int, float32) {
	best, bestD := 0, float32(math.MaxFloat32)
	for i, c := range centroids {
		if d := l2sqBounded(c, v, bestD); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
