// Package ivfpq implements Rottnest's vector ANN index (Section V-C3
// of the paper): an IVF-PQ index chosen over graph indices because its
// centroid-probe access pattern is wide (one parallel fan of list
// reads) rather than deep (a chain of dependent graph hops) — the
// right trade for high-latency object storage.
//
// Layout (a component file of kind KindIVFPQ):
//
//   - list components: the inverted lists (row refs + PQ codes of the
//     residuals), packed several lists per component;
//   - root component (appended last): dimensions, coarse centroids,
//     PQ codebooks, and the list directory.
//
// A query probes the nprobe nearest centroids, fetches their list
// components in one fan, scores candidates with asymmetric distance
// computation (ADC), and returns the best candidates; the caller then
// refines by fetching full-precision vectors in situ from the lake
// (the paper's refine parameter).
package ivfpq

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"rottnest/internal/component"
	"rottnest/internal/parallel"
	"rottnest/internal/postings"
)

// BuildOptions tune index construction.
type BuildOptions struct {
	// NList is the number of coarse centroids. Defaults to
	// ~sqrt(n) clamped to [16, 1024].
	NList int
	// M is the number of PQ subquantizers; the dimension is reduced
	// to the nearest divisor. Defaults to 8.
	M int
	// KMeansIters bounds Lloyd iterations. Defaults to 12.
	KMeansIters int
	// TrainSample caps the number of vectors used for training.
	// Defaults to 20000.
	TrainSample int
	// TargetComponentBytes bounds each list component's serialized
	// size. Defaults to 256 KiB.
	TargetComponentBytes int
	// Seed makes training deterministic.
	Seed int64
}

func (o BuildOptions) withDefaults(n, dim int) BuildOptions {
	if o.NList <= 0 {
		o.NList = int(math.Sqrt(float64(n)))
		if o.NList < 16 {
			o.NList = 16
		}
		if o.NList > 1024 {
			o.NList = 1024
		}
	}
	if o.M <= 0 {
		o.M = 8
	}
	for dim%o.M != 0 && o.M > 1 {
		o.M--
	}
	if o.KMeansIters <= 0 {
		o.KMeansIters = 12
	}
	if o.TrainSample <= 0 {
		o.TrainSample = 20000
	}
	if o.TargetComponentBytes <= 0 {
		o.TargetComponentBytes = 256 << 10
	}
	return o
}

// pqCodebookSize is the number of centroids per subquantizer (8-bit
// codes).
const pqCodebookSize = 256

// Build constructs an IVF-PQ index file over parallel slices of
// vectors and row refs.
func Build(vectors [][]float32, refs []postings.RowRef, opts BuildOptions) ([]byte, error) {
	b := component.NewBuilder(component.KindIVFPQ)
	if err := BuildInto(b, vectors, refs, opts); err != nil {
		return nil, err
	}
	return b.Finish()
}

// BuildInto appends the index's components (root last) to an existing
// builder, letting callers prepend their own components — Rottnest's
// client stores its file-table manifest as component 0 of every index
// file.
func BuildInto(b *component.Builder, vectors [][]float32, refs []postings.RowRef, opts BuildOptions) error {
	if len(vectors) != len(refs) {
		return fmt.Errorf("ivfpq: %d vectors but %d refs", len(vectors), len(refs))
	}
	if len(vectors) == 0 {
		return fmt.Errorf("ivfpq: no vectors")
	}
	dim := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dim {
			return fmt.Errorf("ivfpq: vector %d has dim %d, want %d", i, len(v), dim)
		}
	}
	opts = opts.withDefaults(len(vectors), dim)
	rng := rand.New(rand.NewSource(opts.Seed))

	// Training sample.
	sample := vectors
	if len(sample) > opts.TrainSample {
		sample = make([][]float32, opts.TrainSample)
		perm := rng.Perm(len(vectors))
		for i := range sample {
			sample[i] = vectors[perm[i]]
		}
	}

	// Coarse quantizer.
	centroids := kmeans(sample, opts.NList, opts.KMeansIters, rng)
	nlist := len(centroids)

	// Assign vectors and collect residuals for PQ training (parallel:
	// the assignment scan dominates build time at scale).
	assign := make([]int, len(vectors))
	residuals := make([][]float32, len(vectors))
	parallel.For(len(vectors), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := vectors[i]
			c, _ := nearest(centroids, v)
			assign[i] = c
			r := make([]float32, dim)
			for j := range r {
				r[j] = v[j] - centroids[c][j]
			}
			residuals[i] = r
		}
	})

	// PQ codebooks per subspace, trained on (a sample of) residuals.
	subdim := dim / opts.M
	trainRes := residuals
	if len(trainRes) > opts.TrainSample {
		trainRes = make([][]float32, opts.TrainSample)
		perm := rng.Perm(len(residuals))
		for i := range trainRes {
			trainRes[i] = residuals[perm[i]]
		}
	}
	codebooks := make([][][]float32, opts.M)
	for m := 0; m < opts.M; m++ {
		sub := make([][]float32, len(trainRes))
		for i, r := range trainRes {
			sub[i] = r[m*subdim : (m+1)*subdim]
		}
		cb := kmeans(sub, pqCodebookSize, opts.KMeansIters, rng)
		// Pad to exactly 256 entries so codes are always one byte.
		for len(cb) < pqCodebookSize {
			cb = append(cb, append([]float32(nil), cb[0]...))
		}
		codebooks[m] = cb
	}

	// Encode (parallel).
	codes := make([][]byte, len(vectors))
	parallel.For(len(residuals), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := residuals[i]
			code := make([]byte, opts.M)
			for m := 0; m < opts.M; m++ {
				c, _ := nearest(codebooks[m], r[m*subdim:(m+1)*subdim])
				code[m] = byte(c)
			}
			codes[i] = code
		}
	})

	// Inverted lists.
	lists := make([][]int, nlist)
	for i, c := range assign {
		lists[c] = append(lists[c], i)
	}

	// Serialize lists into components: each list's payload is encoded
	// independently in parallel, then lists are grouped into components
	// under the serial flush rule (close a component once it reaches
	// TargetComponentBytes after a list completes) and the groups are
	// deflated in parallel by AddAll. The emitted bytes match the old
	// serial single-buffer encode exactly.
	listBufs := make([][]byte, nlist)
	parallel.ForEach(nlist, func(li int) {
		members := lists[li]
		buf := binary.AppendUvarint(nil, uint64(len(members)))
		for _, vi := range members {
			buf = binary.AppendUvarint(buf, uint64(refs[vi].File))
			buf = binary.AppendVarint(buf, refs[vi].Row)
			buf = append(buf, codes[vi]...)
		}
		listBufs[li] = buf
	})

	descs := make([]listDesc, nlist)
	type group struct{ first, end int }
	var groups []group
	var payloads [][]byte
	curFirst, curLen := 0, 0
	closeGroup := func(end int) {
		if end == curFirst {
			return
		}
		payload := make([]byte, 0, curLen)
		for li := curFirst; li < end; li++ {
			payload = append(payload, listBufs[li]...)
		}
		groups = append(groups, group{first: curFirst, end: end})
		payloads = append(payloads, payload)
		curFirst, curLen = end, 0
	}
	for li := 0; li < nlist; li++ {
		descs[li] = listDesc{ByteOffset: curLen, ByteLen: len(listBufs[li]), Count: len(lists[li])}
		curLen += len(listBufs[li])
		if curLen >= opts.TargetComponentBytes {
			closeGroup(li + 1)
		}
	}
	closeGroup(nlist)
	firstID := b.AddAll(payloads)
	for gi, g := range groups {
		for li := g.first; li < g.end; li++ {
			descs[li].ComponentID = firstID + gi
		}
	}

	// Root.
	root := encodeRoot(dim, opts.M, subdim, centroids, codebooks, descs, len(vectors))
	b.Add(root)
	return nil
}

type listDesc struct {
	ComponentID int
	ByteOffset  int
	ByteLen     int
	Count       int
}

// listBytes bounds-checks a list's extent within its component.
func listBytes(data []byte, d listDesc) ([]byte, error) {
	if d.ByteOffset < 0 || d.ByteLen < 0 || d.ByteOffset+d.ByteLen > len(data) {
		return nil, fmt.Errorf("ivfpq: list extent [%d,%d) outside component of %d bytes",
			d.ByteOffset, d.ByteOffset+d.ByteLen, len(data))
	}
	return data[d.ByteOffset : d.ByteOffset+d.ByteLen], nil
}

func appendF32s(dst []byte, v []float32) []byte {
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(x))
	}
	return dst
}

func encodeRoot(dim, m, subdim int, centroids [][]float32, codebooks [][][]float32, descs []listDesc, total int) []byte {
	root := binary.AppendUvarint(nil, uint64(dim))
	root = binary.AppendUvarint(root, uint64(m))
	root = binary.AppendUvarint(root, uint64(subdim))
	root = binary.AppendUvarint(root, uint64(len(centroids)))
	root = binary.AppendUvarint(root, uint64(total))
	for _, c := range centroids {
		root = appendF32s(root, c)
	}
	for mi := 0; mi < m; mi++ {
		for _, cb := range codebooks[mi] {
			root = appendF32s(root, cb)
		}
	}
	for _, d := range descs {
		root = binary.AppendUvarint(root, uint64(d.ComponentID))
		root = binary.AppendUvarint(root, uint64(d.ByteOffset))
		root = binary.AppendUvarint(root, uint64(d.ByteLen))
		root = binary.AppendUvarint(root, uint64(d.Count))
	}
	return root
}

// Candidate is one ANN candidate scored by ADC distance.
type Candidate struct {
	Ref postings.RowRef
	// Dist is the approximate squared L2 distance.
	Dist float32
}

// Index is an opened IVF-PQ index ready for queries.
type Index struct {
	r         *component.Reader
	dim       int
	m         int
	subdim    int
	total     int
	centroids [][]float32
	codebooks [][][]float32
	lists     []listDesc
}

// Footprint estimates the decoded index's resident bytes — coarse
// centroids, PQ codebooks, and list descriptors — for cache cost
// accounting. Posting lists are fetched lazily per probe and are not
// part of the open result.
func (ix *Index) Footprint() int64 {
	return 4*int64(len(ix.centroids))*int64(ix.dim) +
		4*int64(ix.m)*256*int64(ix.subdim) +
		32*int64(len(ix.lists)) + 128
}

// Open parses the root component of the index behind r.
func Open(ctx context.Context, r *component.Reader) (*Index, error) {
	if r.Kind() != component.KindIVFPQ {
		return nil, fmt.Errorf("ivfpq: %s is not an IVF-PQ index (kind %d)", r.Key(), r.Kind())
	}
	root, err := r.Component(ctx, r.NumComponents()-1)
	if err != nil {
		return nil, err
	}
	ix := &Index{r: r}
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(root[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("ivfpq: corrupt root")
		}
		pos += n
		return v, nil
	}
	hdr := make([]uint64, 5)
	for i := range hdr {
		v, err := next()
		if err != nil {
			return nil, err
		}
		hdr[i] = v
	}
	ix.dim, ix.m, ix.subdim = int(hdr[0]), int(hdr[1]), int(hdr[2])
	nlist := int(hdr[3])
	ix.total = int(hdr[4])
	// Sanity bounds: the centroid and codebook float payloads must
	// fit inside the root. A corrupted root must not drive
	// allocations.
	if ix.dim <= 0 || ix.m <= 0 || ix.subdim <= 0 || nlist < 0 || ix.total < 0 ||
		ix.m*ix.subdim != ix.dim {
		return nil, fmt.Errorf("ivfpq: corrupt root geometry")
	}
	need := int64(nlist)*int64(ix.dim)*4 + int64(ix.m)*pqCodebookSize*int64(ix.subdim)*4
	if need > int64(len(root)) {
		return nil, fmt.Errorf("ivfpq: root claims %d float bytes in %d bytes", need, len(root))
	}
	readF32s := func(n int) ([]float32, error) {
		if pos+4*n > len(root) {
			return nil, fmt.Errorf("ivfpq: corrupt root floats")
		}
		out := make([]float32, n)
		for i := range out {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(root[pos:]))
			pos += 4
		}
		return out, nil
	}
	ix.centroids = make([][]float32, nlist)
	for i := range ix.centroids {
		c, err := readF32s(ix.dim)
		if err != nil {
			return nil, err
		}
		ix.centroids[i] = c
	}
	ix.codebooks = make([][][]float32, ix.m)
	for m := range ix.codebooks {
		ix.codebooks[m] = make([][]float32, pqCodebookSize)
		for j := range ix.codebooks[m] {
			cb, err := readF32s(ix.subdim)
			if err != nil {
				return nil, err
			}
			ix.codebooks[m][j] = cb
		}
	}
	ix.lists = make([]listDesc, nlist)
	for i := range ix.lists {
		vals := make([]uint64, 4)
		for j := range vals {
			v, err := next()
			if err != nil {
				return nil, err
			}
			vals[j] = v
		}
		ix.lists[i] = listDesc{
			ComponentID: int(vals[0]),
			ByteOffset:  int(vals[1]),
			ByteLen:     int(vals[2]),
			Count:       int(vals[3]),
		}
	}
	return ix, nil
}

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// NumVectors returns the number of indexed vectors.
func (ix *Index) NumVectors() int { return ix.total }

// NumLists returns the number of coarse lists.
func (ix *Index) NumLists() int { return len(ix.lists) }

// Search probes the nprobe nearest coarse lists and returns the
// maxCandidates best candidates by ADC distance, ascending. The
// caller refines the top candidates against full-precision vectors.
func (ix *Index) Search(ctx context.Context, q []float32, nprobe, maxCandidates int) ([]Candidate, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("ivfpq: query dim %d, want %d", len(q), ix.dim)
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > len(ix.lists) {
		nprobe = len(ix.lists)
	}
	// Rank centroids by distance to q.
	type cd struct {
		list int
		dist float32
	}
	cds := make([]cd, len(ix.centroids))
	for i, c := range ix.centroids {
		cds[i] = cd{list: i, dist: l2sq(c, q)}
	}
	sort.Slice(cds, func(a, b int) bool { return cds[a].dist < cds[b].dist })
	probes := cds[:nprobe]

	// Fetch the probed lists' components in one fan.
	compSet := make(map[int]bool)
	var compIDs []int
	for _, p := range probes {
		if ix.lists[p.list].Count == 0 {
			continue
		}
		id := ix.lists[p.list].ComponentID
		if !compSet[id] {
			compSet[id] = true
			compIDs = append(compIDs, id)
		}
	}
	comps := make(map[int][]byte, len(compIDs))
	if len(compIDs) > 0 {
		data, err := ix.r.Components(ctx, compIDs)
		if err != nil {
			return nil, err
		}
		for i, id := range compIDs {
			comps[id] = data[i]
		}
	}

	var cands []Candidate
	table := make([]float32, ix.m*pqCodebookSize)
	res := make([]float32, ix.dim)
	// kb tracks the maxCandidates-th best distance seen so far; code
	// strings whose partial ADC sum exceeds it are abandoned mid-gather.
	// Abandonment cannot change the returned top-maxCandidates set: the
	// bound only shrinks, so every candidate at or below the final k-th
	// distance completes its gather (its monotone partials never exceed
	// the bound in effect while it scans), and the tie-break sort below
	// makes the cut deterministic.
	kb := adcBound{k: maxCandidates}
	if adcAbandonDisabled {
		kb.k = 0
	}
	for _, p := range probes {
		d := ix.lists[p.list]
		if d.Count == 0 {
			continue
		}
		// ADC tables on the residual q - centroid.
		cent := ix.centroids[p.list]
		for j := range res {
			res[j] = q[j] - cent[j]
		}
		adcTables(table, res, ix.codebooks, ix.subdim)
		data := comps[d.ComponentID]
		listData, err := listBytes(data, d)
		if err != nil {
			return nil, err
		}
		count, n := binary.Uvarint(listData)
		if n <= 0 || int(count) != d.Count {
			return nil, fmt.Errorf("ivfpq: corrupt list header")
		}
		lpos := n
		for i := 0; i < d.Count; i++ {
			file, n := binary.Uvarint(listData[lpos:])
			if n <= 0 {
				return nil, fmt.Errorf("ivfpq: corrupt list entry")
			}
			lpos += n
			row, n := binary.Varint(listData[lpos:])
			if n <= 0 {
				return nil, fmt.Errorf("ivfpq: corrupt list entry")
			}
			lpos += n
			if lpos+ix.m > len(listData) {
				return nil, fmt.Errorf("ivfpq: corrupt list codes")
			}
			bound := kb.bound()
			dist := adcDist(table, listData[lpos:lpos+ix.m], bound)
			lpos += ix.m
			if dist > bound {
				// Abandoned mid-gather, or completed strictly worse
				// than the current k-th best — either way it cannot
				// make the final cut.
				continue
			}
			cands = append(cands, Candidate{Ref: postings.RowRef{File: uint32(file), Row: row}, Dist: dist})
			kb.add(dist)
		}
	}
	sortCandidates(cands)
	if maxCandidates > 0 && len(cands) > maxCandidates {
		cands = cands[:maxCandidates]
	}
	return cands, nil
}

// adcAbandonDisabled forces every ADC gather to completion (tests
// flip it to pin abandon-on results against the exhaustive scan).
var adcAbandonDisabled bool

// sortCandidates orders candidates by ascending ADC distance with a
// deterministic (file, row) tie-break, so the top-maxCandidates cut
// among equal distances does not depend on scan or abandonment order.
func sortCandidates(cands []Candidate) {
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Dist != cands[b].Dist {
			return cands[a].Dist < cands[b].Dist
		}
		if cands[a].Ref.File != cands[b].Ref.File {
			return cands[a].Ref.File < cands[b].Ref.File
		}
		return cands[a].Ref.Row < cands[b].Ref.Row
	})
}

// Entries decodes every (ref, approximate vector) pair in the index
// by decoding PQ codes. Used for diagnostics and size accounting.
func (ix *Index) Entries(ctx context.Context) ([]postings.RowRef, error) {
	var refs []postings.RowRef
	for li, d := range ix.lists {
		if d.Count == 0 {
			continue
		}
		data, err := ix.r.Component(ctx, d.ComponentID)
		if err != nil {
			return nil, err
		}
		listData, err := listBytes(data, d)
		if err != nil {
			return nil, err
		}
		_, n := binary.Uvarint(listData)
		if n <= 0 {
			return nil, fmt.Errorf("ivfpq: corrupt list %d header", li)
		}
		lpos := n
		for i := 0; i < d.Count; i++ {
			file, n := binary.Uvarint(listData[lpos:])
			if n <= 0 {
				return nil, fmt.Errorf("ivfpq: corrupt list %d", li)
			}
			lpos += n
			row, n := binary.Varint(listData[lpos:])
			if n <= 0 {
				return nil, fmt.Errorf("ivfpq: corrupt list %d", li)
			}
			lpos += n + ix.m
			refs = append(refs, postings.RowRef{File: uint32(file), Row: row})
		}
	}
	return refs, nil
}

// ExactRerank reorders candidate refs by exact distance to q given
// their full-precision vectors (fetched by the caller from the lake)
// and returns the k best. vectors[i] corresponds to cands[i].
func ExactRerank(q []float32, cands []Candidate, vectors [][]float32, k int) []Candidate {
	out := make([]Candidate, len(cands))
	for i := range cands {
		out[i] = Candidate{Ref: cands[i].Ref, Dist: l2sq(q, vectors[i])}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Dist < out[b].Dist })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
