package ivfpq

import (
	"context"
	"testing"

	"rottnest/internal/component"
	"rottnest/internal/objectstore"
	"rottnest/internal/postings"
	"rottnest/internal/workload"
)

// refineAndOpen runs RefineInto over ix and opens the result.
func refineAndOpen(t *testing.T, store objectstore.Store, key string, ix *Index, cells []int, opts RefineOptions) *Index {
	t.Helper()
	ctx := context.Background()
	b := component.NewBuilder(component.KindIVFPQ)
	if err := RefineInto(ctx, b, ix, cells, opts); err != nil {
		t.Fatal(err)
	}
	data, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	r, err := component.Open(ctx, store, key, component.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Open(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// refSet collects every ref in the index as a set.
func refSet(t *testing.T, ix *Index) map[postings.RowRef]bool {
	t.Helper()
	refs, err := ix.Entries(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[postings.RowRef]bool, len(refs))
	for _, r := range refs {
		set[r] = true
	}
	return set
}

// TestRefinePreservesMembership pins that refinement is a pure
// re-partition: every indexed ref survives, none duplicate, and the
// split cells fan out into more lists.
func TestRefinePreservesMembership(t *testing.T) {
	store := objectstore.NewMemStore(nil)
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 7, Dim: 16, Clusters: 16, Spread: 0.3})
	const n = 4000
	vecs := gen.Batch(n)
	ix := buildAndOpen(t, store, "v.index", vecs, seqRefs(n), BuildOptions{NList: 16, M: 8, Seed: 5})

	split := []int{0, 3}
	refined := refineAndOpen(t, store, "r.index", ix, split, RefineOptions{SplitFactor: 4, Seed: 9})
	wantLists := ix.NumLists()
	for _, li := range split {
		if ix.lists[li].Count >= 2 {
			wantLists += 3 // 1 list became up to 4
		}
	}
	if refined.NumLists() > wantLists || refined.NumLists() <= ix.NumLists() {
		t.Fatalf("refined lists = %d, original %d, want in (%d, %d]",
			refined.NumLists(), ix.NumLists(), ix.NumLists(), wantLists)
	}
	if refined.NumVectors() != n {
		t.Fatalf("refined total = %d, want %d", refined.NumVectors(), n)
	}
	before, after := refSet(t, ix), refSet(t, refined)
	if len(before) != n || len(after) != n {
		t.Fatalf("ref sets %d/%d, want %d (duplicates or losses)", len(before), len(after), n)
	}
	for r := range before {
		if !after[r] {
			t.Fatalf("ref %v lost by refinement", r)
		}
	}
}

// TestRefineKeepsRecall verifies a refined index still answers: recall
// of exact top-k against brute force does not collapse after
// splitting the hottest cells, and searches return the same count.
func TestRefineKeepsRecall(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 11, Dim: 32, Clusters: 32, Spread: 0.2})
	const n, k, queries = 6000, 10, 40
	vecs := gen.Batch(n)
	ix := buildAndOpen(t, store, "v.index", vecs, seqRefs(n), BuildOptions{NList: 64, M: 8, Seed: 3})

	probes := gen.Batch(queries)
	cells := HotCells(ix, probes, 8, 8)
	if len(cells) == 0 {
		t.Fatal("no hot cells from probe traffic")
	}
	refined := refineAndOpen(t, store, "r.index", ix, cells, RefineOptions{SplitFactor: 4, Seed: 13})

	recall := func(target *Index, nprobe int) float64 {
		hits, want := 0, 0
		for _, q := range probes {
			cands, err := target.Search(ctx, q, nprobe, 4*k)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[int64]bool)
			for _, c := range cands {
				got[c.Ref.Row] = true
			}
			exact := exactTopK(vecs, q, k)
			for _, row := range exact {
				want++
				if got[row] {
					hits++
				}
			}
		}
		return float64(hits) / float64(want)
	}
	base, ref := recall(ix, 8), recall(refined, 8)
	if ref < base-0.1 {
		t.Fatalf("refined recall %.3f fell more than 0.1 below base %.3f", ref, base)
	}
}

// exactTopK brute-forces the k nearest rows.
func exactTopK(vecs [][]float32, q []float32, k int) []int64 {
	type rd struct {
		row  int64
		dist float32
	}
	all := make([]rd, len(vecs))
	for i, v := range vecs {
		all[i] = rd{row: int64(i), dist: l2sq(q, v)}
	}
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && (all[j].dist < all[j-1].dist ||
			(all[j].dist == all[j-1].dist && all[j].row < all[j-1].row)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	out := make([]int64, 0, k)
	for i := 0; i < k && i < len(all); i++ {
		out = append(out, all[i].row)
	}
	return out
}

// TestHotCellsDeterministic pins ordering and the tie-break.
func TestHotCellsDeterministic(t *testing.T) {
	store := objectstore.NewMemStore(nil)
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 21, Dim: 16, Clusters: 8, Spread: 0.2})
	const n = 2000
	ix := buildAndOpen(t, store, "v.index", gen.Batch(n), seqRefs(n), BuildOptions{NList: 16, M: 8, Seed: 5})
	probes := gen.Batch(16)
	a := HotCells(ix, probes, 4, 6)
	b := HotCells(ix, probes, 4, 6)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("HotCells lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("HotCells not deterministic: %v vs %v", a, b)
		}
	}
	if got := HotCells(ix, nil, 4, 6); got != nil {
		t.Fatal("HotCells with no probes should be empty")
	}
}
