package ivfpq

import (
	"context"
	"encoding/binary"
	"fmt"

	"rottnest/internal/component"
	"rottnest/internal/postings"
)

// decodeAll reconstructs every (ref, approximate vector) pair of the
// index by decoding PQ codes against the coarse centroids.
func (ix *Index) decodeAll(ctx context.Context) ([]postings.RowRef, [][]float32, error) {
	var refs []postings.RowRef
	var vecs [][]float32
	for li, d := range ix.lists {
		if d.Count == 0 {
			continue
		}
		data, err := ix.r.Component(ctx, d.ComponentID)
		if err != nil {
			return nil, nil, err
		}
		listData, err := listBytes(data, d)
		if err != nil {
			return nil, nil, fmt.Errorf("ivfpq: list %d: %w", li, err)
		}
		_, n := binary.Uvarint(listData)
		if n <= 0 {
			return nil, nil, fmt.Errorf("ivfpq: corrupt list %d", li)
		}
		lpos := n
		cent := ix.centroids[li]
		for i := 0; i < d.Count; i++ {
			file, n := binary.Uvarint(listData[lpos:])
			if n <= 0 {
				return nil, nil, fmt.Errorf("ivfpq: corrupt list %d", li)
			}
			lpos += n
			row, n := binary.Varint(listData[lpos:])
			if n <= 0 {
				return nil, nil, fmt.Errorf("ivfpq: corrupt list %d", li)
			}
			lpos += n
			if lpos+ix.m > len(listData) {
				return nil, nil, fmt.Errorf("ivfpq: corrupt list %d codes", li)
			}
			v := make([]float32, ix.dim)
			for m := 0; m < ix.m; m++ {
				cb := ix.codebooks[m][listData[lpos+m]]
				for j, x := range cb {
					v[m*ix.subdim+j] = cent[m*ix.subdim+j] + x
				}
			}
			lpos += ix.m
			refs = append(refs, postings.RowRef{File: uint32(file), Row: row})
			vecs = append(vecs, v)
		}
	}
	return refs, vecs, nil
}

// Merge combines several IVF-PQ indices into one file. Because source
// Parquet files may already have been compacted away by the lake,
// merging does not read raw data: it decodes each source's PQ-encoded
// vectors (an approximation) and rebuilds. fileMaps[i] rebases source
// i's file numbers into the merged file table; refs to unmapped files
// are dropped. The second quantization costs a little recall, which
// in-situ refinement recovers at query time.
func Merge(ctx context.Context, sources []*Index, fileMaps []map[uint32]uint32, opts BuildOptions) ([]byte, error) {
	b := component.NewBuilder(component.KindIVFPQ)
	if err := MergeInto(ctx, b, sources, fileMaps, opts); err != nil {
		return nil, err
	}
	return b.Finish()
}

// MergeInto is Merge appending to an existing builder, mirroring
// BuildInto.
func MergeInto(ctx context.Context, b *component.Builder, sources []*Index, fileMaps []map[uint32]uint32, opts BuildOptions) error {
	if len(sources) != len(fileMaps) {
		return fmt.Errorf("ivfpq: %d sources but %d file maps", len(sources), len(fileMaps))
	}
	var allRefs []postings.RowRef
	var allVecs [][]float32
	dim := -1
	for i, src := range sources {
		if dim == -1 {
			dim = src.dim
		} else if src.dim != dim {
			return fmt.Errorf("ivfpq: source %d has dim %d, want %d", i, src.dim, dim)
		}
		refs, vecs, err := src.decodeAll(ctx)
		if err != nil {
			return err
		}
		for j, r := range refs {
			mapped, ok := fileMaps[i][r.File]
			if !ok {
				continue
			}
			allRefs = append(allRefs, postings.RowRef{File: mapped, Row: r.Row})
			allVecs = append(allVecs, vecs[j])
		}
	}
	if len(allRefs) == 0 {
		return fmt.Errorf("ivfpq: merge produced no vectors")
	}
	return BuildInto(b, allVecs, allRefs, opts)
}
