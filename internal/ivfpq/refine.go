package ivfpq

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"rottnest/internal/component"
	"rottnest/internal/postings"
)

// RefineOptions tune progressive refinement of an opened index.
type RefineOptions struct {
	// SplitFactor is how many sub-centroids each refined (hot) cell is
	// re-clustered into. Defaults to 4.
	SplitFactor int
	// MaxCells bounds how many cells one refine pass splits.
	// Defaults to 8.
	MaxCells int
	// KMeansIters bounds Lloyd iterations per split. Defaults to 8.
	KMeansIters int
	// TargetComponentBytes bounds each rewritten list component's
	// size. Defaults to 256 KiB.
	TargetComponentBytes int
	// Seed makes re-clustering deterministic.
	Seed int64
}

func (o RefineOptions) withDefaults() RefineOptions {
	if o.SplitFactor <= 1 {
		o.SplitFactor = 4
	}
	if o.MaxCells <= 0 {
		o.MaxCells = 8
	}
	if o.KMeansIters <= 0 {
		o.KMeansIters = 8
	}
	if o.TargetComponentBytes <= 0 {
		o.TargetComponentBytes = 256 << 10
	}
	return o
}

// NearestLists returns the nprobe list indices a query for q would
// probe, nearest centroid first, with a deterministic tie-break.
func (ix *Index) NearestLists(q []float32, nprobe int) []int {
	if len(q) != ix.dim || len(ix.lists) == 0 {
		return nil
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > len(ix.lists) {
		nprobe = len(ix.lists)
	}
	type cd struct {
		list int
		dist float32
	}
	cds := make([]cd, len(ix.centroids))
	for i, c := range ix.centroids {
		cds[i] = cd{list: i, dist: l2sq(c, q)}
	}
	sort.Slice(cds, func(a, b int) bool {
		if cds[a].dist != cds[b].dist {
			return cds[a].dist < cds[b].dist
		}
		return cds[a].list < cds[b].list
	})
	out := make([]int, nprobe)
	for i := range out {
		out[i] = cds[i].list
	}
	return out
}

// HotCells ranks the index's cells by how often the observed probe
// traffic would touch them and returns the up-to-max hottest non-empty
// ones, hottest first (ties broken by list index, ascending).
func HotCells(ix *Index, probes [][]float32, nprobe, max int) []int {
	if max <= 0 || len(probes) == 0 {
		return nil
	}
	hits := make(map[int]int)
	for _, q := range probes {
		for _, li := range ix.NearestLists(q, nprobe) {
			hits[li]++
		}
	}
	type hc struct{ list, n int }
	ranked := make([]hc, 0, len(hits))
	for li, n := range hits {
		if ix.lists[li].Count > 1 { // splitting a 0/1-member cell is a no-op
			ranked = append(ranked, hc{list: li, n: n})
		}
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].n != ranked[b].n {
			return ranked[a].n > ranked[b].n
		}
		return ranked[a].list < ranked[b].list
	})
	if len(ranked) > max {
		ranked = ranked[:max]
	}
	out := make([]int, len(ranked))
	for i, h := range ranked {
		out[i] = h.list
	}
	return out
}

// listMember is one decoded inverted-list entry: its row ref plus its
// PQ code string.
type listMember struct {
	ref  postings.RowRef
	code []byte
}

// decodeList decodes every member of list li.
func (ix *Index) decodeList(ctx context.Context, li int) ([]listMember, error) {
	d := ix.lists[li]
	if d.Count == 0 {
		return nil, nil
	}
	data, err := ix.r.Component(ctx, d.ComponentID)
	if err != nil {
		return nil, err
	}
	listData, err := listBytes(data, d)
	if err != nil {
		return nil, err
	}
	count, n := binary.Uvarint(listData)
	if n <= 0 || int(count) != d.Count {
		return nil, fmt.Errorf("ivfpq: corrupt list %d header", li)
	}
	lpos := n
	members := make([]listMember, 0, d.Count)
	for i := 0; i < d.Count; i++ {
		file, n := binary.Uvarint(listData[lpos:])
		if n <= 0 {
			return nil, fmt.Errorf("ivfpq: corrupt list %d", li)
		}
		lpos += n
		row, n := binary.Varint(listData[lpos:])
		if n <= 0 {
			return nil, fmt.Errorf("ivfpq: corrupt list %d", li)
		}
		lpos += n
		if lpos+ix.m > len(listData) {
			return nil, fmt.Errorf("ivfpq: corrupt list %d codes", li)
		}
		code := append([]byte(nil), listData[lpos:lpos+ix.m]...)
		lpos += ix.m
		members = append(members, listMember{ref: postings.RowRef{File: uint32(file), Row: row}, code: code})
	}
	return members, nil
}

// reconstruct returns the member's approximate vector: its cell
// centroid plus the PQ-decoded residual.
func (ix *Index) reconstruct(li int, code []byte) []float32 {
	v := append([]float32(nil), ix.centroids[li]...)
	for m := 0; m < ix.m; m++ {
		cw := ix.codebooks[m][code[m]]
		for j, x := range cw {
			v[m*ix.subdim+j] += x
		}
	}
	return v
}

// RefineInto rewrites ix with the cells in split re-clustered into
// SplitFactor sub-cells each, appending the refined index's components
// (root last) to b. The PQ codebooks are retained; only the coarse
// partition changes, so splitting sharpens the residuals ADC scores
// are computed from. Recall for queries landing in a split cell
// improves at equal nprobe because each probe now covers a tighter
// region. Cells not in split are carried over unchanged.
func RefineInto(ctx context.Context, b *component.Builder, ix *Index, split []int, opts RefineOptions) error {
	opts = opts.withDefaults()
	splitSet := make(map[int]bool, len(split))
	for _, li := range split {
		if li < 0 || li >= len(ix.lists) {
			return fmt.Errorf("ivfpq: split cell %d out of range [0,%d)", li, len(ix.lists))
		}
		splitSet[li] = true
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	// New coarse partition: walk lists in order; unsplit cells carry
	// over verbatim, split cells fan out into sub-centroids trained on
	// their members' reconstructed vectors, with residual codes
	// recomputed against the new centers using the existing codebooks.
	var centroids [][]float32
	var newLists [][]listMember
	total := 0
	for li := range ix.lists {
		members, err := ix.decodeList(ctx, li)
		if err != nil {
			return err
		}
		total += len(members)
		if !splitSet[li] || len(members) < 2 {
			centroids = append(centroids, ix.centroids[li])
			newLists = append(newLists, members)
			continue
		}
		approx := make([][]float32, len(members))
		for i, mb := range members {
			approx[i] = ix.reconstruct(li, mb.code)
		}
		subCents := kmeans(approx, opts.SplitFactor, opts.KMeansIters, rng)
		if len(subCents) == 0 {
			centroids = append(centroids, ix.centroids[li])
			newLists = append(newLists, members)
			continue
		}
		subMembers := make([][]listMember, len(subCents))
		res := make([]float32, ix.dim)
		for i, mb := range members {
			c, _ := nearest(subCents, approx[i])
			for j := range res {
				res[j] = approx[i][j] - subCents[c][j]
			}
			code := make([]byte, ix.m)
			for m := 0; m < ix.m; m++ {
				cw, _ := nearest(ix.codebooks[m], res[m*ix.subdim:(m+1)*ix.subdim])
				code[m] = byte(cw)
			}
			subMembers[c] = append(subMembers[c], listMember{ref: mb.ref, code: code})
		}
		for c := range subCents {
			centroids = append(centroids, subCents[c])
			newLists = append(newLists, subMembers[c])
		}
	}

	// Serialize with the same layout rules as BuildInto: per-list
	// payloads grouped into components under the flush threshold, then
	// the root.
	nlist := len(newLists)
	listBufs := make([][]byte, nlist)
	for li, members := range newLists {
		buf := binary.AppendUvarint(nil, uint64(len(members)))
		for _, mb := range members {
			buf = binary.AppendUvarint(buf, uint64(mb.ref.File))
			buf = binary.AppendVarint(buf, mb.ref.Row)
			buf = append(buf, mb.code...)
		}
		listBufs[li] = buf
	}
	descs := make([]listDesc, nlist)
	type group struct{ first, end int }
	var groups []group
	var payloads [][]byte
	curFirst, curLen := 0, 0
	closeGroup := func(end int) {
		if end == curFirst {
			return
		}
		payload := make([]byte, 0, curLen)
		for li := curFirst; li < end; li++ {
			payload = append(payload, listBufs[li]...)
		}
		groups = append(groups, group{first: curFirst, end: end})
		payloads = append(payloads, payload)
		curFirst, curLen = end, 0
	}
	for li := 0; li < nlist; li++ {
		descs[li] = listDesc{ByteOffset: curLen, ByteLen: len(listBufs[li]), Count: len(newLists[li])}
		curLen += len(listBufs[li])
		if curLen >= opts.TargetComponentBytes {
			closeGroup(li + 1)
		}
	}
	closeGroup(nlist)
	firstID := b.AddAll(payloads)
	for gi, g := range groups {
		for li := g.first; li < g.end; li++ {
			descs[li].ComponentID = firstID + gi
		}
	}
	b.Add(encodeRoot(ix.dim, ix.m, ix.subdim, centroids, ix.codebooks, descs, total))
	return nil
}
