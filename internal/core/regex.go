package core

import (
	"regexp"
	"regexp/syntax"
)

// requiredLiteral extracts the longest byte literal that every match
// of the pattern must contain. Rottnest uses it to drive the FM-index
// for regex queries (the paper's motivating "text regex" predicate):
// the index narrows to pages containing the literal, and in-situ
// probing re-checks the full pattern. An empty result means the
// pattern has no usable required literal (e.g. a top-level
// alternation), in which case the query falls back to scanning.
func requiredLiteral(pattern string) ([]byte, error) {
	re, err := syntax.Parse(pattern, syntax.Perl)
	if err != nil {
		return nil, err
	}
	return longestLiteral(re.Simplify()), nil
}

func longestLiteral(re *syntax.Regexp) []byte {
	switch re.Op {
	case syntax.OpLiteral:
		if re.Flags&syntax.FoldCase != 0 {
			return nil // case-insensitive literals are not exact bytes
		}
		return []byte(string(re.Rune))
	case syntax.OpCapture:
		if len(re.Sub) == 1 {
			return longestLiteral(re.Sub[0])
		}
	case syntax.OpPlus:
		// The child occurs at least once.
		if len(re.Sub) == 1 {
			return longestLiteral(re.Sub[0])
		}
	case syntax.OpConcat:
		// Merge adjacent literal children into runs; any non-literal
		// child still contributes its own required literal. Take the
		// longest candidate.
		var best []byte
		var run []byte
		flush := func() {
			if len(run) > len(best) {
				best = append([]byte(nil), run...)
			}
			run = nil
		}
		for _, sub := range re.Sub {
			if sub.Op == syntax.OpLiteral && sub.Flags&syntax.FoldCase == 0 {
				run = append(run, []byte(string(sub.Rune))...)
				continue
			}
			flush()
			if inner := longestLiteral(sub); len(inner) > len(best) {
				best = inner
			}
		}
		flush()
		return best
	}
	return nil
}

// minRegexLiteral is the shortest literal worth an index probe;
// shorter literals match too many pages to beat a scan.
const minRegexLiteral = 3

// compileRegex validates and compiles a query's pattern.
func compileRegex(pattern string) (*regexp.Regexp, error) {
	return regexp.Compile(pattern)
}
