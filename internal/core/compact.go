package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/fmindex"
	"rottnest/internal/ivfpq"
	"rottnest/internal/meta"
	"rottnest/internal/objectstore"
	"rottnest/internal/obs"
	"rottnest/internal/trie"
)

// CompactOptions tune index compaction planning.
type CompactOptions struct {
	// SmallerThanBytes selects which index files are merge
	// candidates; entries at or above the threshold are left alone
	// ("it may be less important, and more expensive, to merge
	// indices that already cover a large number of files"). Zero
	// means merge everything.
	SmallerThanBytes int64
	// MaxBinEntries bounds how many index files merge into one
	// output (the bin-packing strategy of Section IV-C). Zero means
	// unlimited (a single output).
	MaxBinEntries int
}

// Compact merges small index files of one (column, kind) index into
// larger ones, LSM-style (Section IV-C):
//
//  1. Plan: pick committed entries below the size threshold and
//     bin-pack them.
//  2. Merge: build each merged index file and upload it.
//  3. Commit: insert the merged entries into the metadata table.
//
// Old index files are NOT deleted — that is vacuum's job — so
// concurrent searches planned against the old entries keep working
// (Existence holds throughout). Compaction never consults the lake's
// log and is fully decoupled from the lake's own compaction.
func (c *Client) Compact(ctx context.Context, column string, kind component.Kind, opts CompactOptions) ([]meta.IndexEntry, error) {
	start := c.clock.Now()
	pctx, planSpan := obs.Start(ctx, "compact.plan")
	defer planSpan.End()
	entries, err := c.meta.ListFor(pctx, column, kind)
	if err != nil {
		return nil, err
	}
	var small []meta.IndexEntry
	for _, e := range entries {
		if opts.SmallerThanBytes <= 0 || e.SizeBytes < opts.SmallerThanBytes {
			small = append(small, e)
		}
	}
	planSpan.SetAttr("column", column)
	planSpan.SetAttr("candidates", len(small))
	planSpan.End() // idempotent: the defer covers the error return above
	if len(small) < 2 {
		return nil, nil
	}
	binSize := opts.MaxBinEntries
	if binSize <= 0 {
		binSize = len(small)
	}

	var out []meta.IndexEntry
	for lo := 0; lo < len(small); lo += binSize {
		hi := lo + binSize
		if hi > len(small) {
			hi = len(small)
		}
		if hi-lo < 2 {
			break // a leftover single entry stays as-is
		}
		entry, err := c.mergeBin(ctx, column, kind, small[lo:hi], start)
		if err != nil {
			if errors.Is(err, objectstore.ErrNotFound) {
				// A concurrent vacuum collected a source index after we
				// planned against it: the plan is stale. Abort and let
				// the caller retry against the new metadata, exactly as
				// IndexAt does when a lake file vanishes mid-scan.
				return out, fmt.Errorf("core: compact plan went stale: %w", ErrAborted)
			}
			return out, err
		}
		out = append(out, *entry)
	}
	return out, nil
}

// mergeBin merges one bin of index files into a new one and commits
// it. The merged file table is the union of the sources' manifests
// (deduplicated by path); each source's posting refs are rebased onto
// it.
func (c *Client) mergeBin(ctx context.Context, column string, kind component.Kind, bin []meta.IndexEntry, start time.Time) (*meta.IndexEntry, error) {
	mctx, mergeSpan := obs.Start(ctx, "compact.merge")
	defer mergeSpan.End()
	mergeSpan.SetAttr("sources", len(bin))
	ctx = mctx
	readers := make([]*component.Reader, len(bin))
	manifests := make([]*Manifest, len(bin))
	for i, e := range bin {
		r, err := c.openReader(ctx, e.IndexKey)
		if err != nil {
			return nil, fmt.Errorf("core: compact open %s: %w", e.IndexKey, err)
		}
		m, err := c.manifest(ctx, r)
		if err != nil {
			return nil, err
		}
		readers[i] = r
		manifests[i] = m
	}

	// Merged file table + per-source rebasing maps.
	var mergedFiles []ManifestFile
	byPath := make(map[string]uint32)
	fileMaps := make([]map[uint32]uint32, len(bin))
	var totalRows int64
	for i, m := range manifests {
		fileMaps[i] = make(map[uint32]uint32, len(m.Files))
		for j, mf := range m.Files {
			id, ok := byPath[mf.Path]
			if !ok {
				id = uint32(len(mergedFiles))
				byPath[mf.Path] = id
				mergedFiles = append(mergedFiles, mf)
				totalRows += mf.Rows
			}
			fileMaps[i][uint32(j)] = id
		}
	}

	builder := component.NewBuilder(kind)
	manifestJSON, err := json.Marshal(&Manifest{Column: column, Kind: kind, Files: mergedFiles})
	if err != nil {
		return nil, fmt.Errorf("core: encode merged manifest: %w", err)
	}
	builder.Add(manifestJSON) // component 0

	switch kind {
	case component.KindTrie:
		sources := make([]*trie.Index, len(readers))
		for i, r := range readers {
			if sources[i], err = trie.Open(ctx, r); err != nil {
				return nil, err
			}
		}
		if err := trie.MergeInto(ctx, builder, sources, fileMaps, c.cfg.Trie); err != nil {
			return nil, err
		}
	case component.KindFM:
		sources := make([]*fmindex.Index, len(readers))
		for i, r := range readers {
			if sources[i], err = fmindex.Open(ctx, r); err != nil {
				return nil, err
			}
		}
		if err := fmindex.MergeInto(ctx, builder, sources, fileMaps, c.cfg.FM); err != nil {
			return nil, err
		}
	case component.KindIVFPQ:
		sources := make([]*ivfpq.Index, len(readers))
		for i, r := range readers {
			if sources[i], err = ivfpq.Open(ctx, r); err != nil {
				return nil, err
			}
		}
		if err := ivfpq.MergeInto(ctx, builder, sources, fileMaps, c.cfg.IVF); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown index kind %d", kind)
	}

	data, err := builder.Finish()
	if err != nil {
		return nil, err
	}
	indexKey := c.cfg.IndexDir + indexFilePrefix + randomName() + ".index"
	mergeSpan.SetAttr("key", indexKey)
	mergeSpan.SetAttr("bytes", len(data))
	if err := c.store.Put(ctx, indexKey, data); err != nil {
		return nil, err
	}
	mergeSpan.End()
	if c.clock.Now().Sub(start) > c.cfg.Timeout {
		return nil, fmt.Errorf("core: compact of %d index files: %w", len(bin), ErrTimeout)
	}
	paths := make([]string, len(mergedFiles))
	for i, mf := range mergedFiles {
		paths[i] = mf.Path
	}
	entry := meta.IndexEntry{
		IndexKey:  indexKey,
		Kind:      kind,
		Column:    column,
		Files:     paths,
		Rows:      totalRows,
		SizeBytes: int64(len(data)),
	}
	cctx, commitSpan := obs.Start(ctx, "compact.commit")
	defer commitSpan.End()
	if err := c.meta.Insert(cctx, entry); err != nil {
		return nil, err
	}
	// The metadata table changed without a lake commit; cached plans
	// must replan to pick up the new index file.
	c.plans.invalidateAll()
	commitSpan.End()
	// Post-commit timeout re-check, mirroring IndexAt: if the clock
	// passed the deadline between the check above and the insert, a
	// vacuum may have collected the upload as an orphan — roll back.
	if c.clock.Now().Sub(start) > c.cfg.Timeout {
		rctx, rollbackSpan := obs.Start(ctx, "compact.rollback")
		defer rollbackSpan.End()
		if err := c.meta.Delete(rctx, entry.IndexKey); err != nil {
			return nil, err
		}
		c.plans.invalidateAll()
		return nil, fmt.Errorf("core: compact of %d index files overran commit: %w", len(bin), ErrTimeout)
	}
	entry.CreatedAt = c.clock.Now()
	return &entry, nil
}
