package core

import (
	"context"
	"testing"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/workload"
)

func TestStatusTracksCoverageAndFragmentation(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(70)

	// Empty table state (after one append, before any index).
	e.appendUUIDs(t, gen, 100)
	statuses, err := e.cli.Status(ctx)
	if err != nil || len(statuses) != 0 {
		t.Fatalf("pre-index status = %v, %v", statuses, err)
	}

	// Three indexed batches, then one unindexed.
	for i := 0; i < 2; i++ {
		if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
			t.Fatal(err)
		}
		e.appendUUIDs(t, gen, 100)
	}
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	e.appendUUIDs(t, gen, 100)

	statuses, err = e.cli.Status(ctx)
	if err != nil || len(statuses) != 1 {
		t.Fatalf("status = %v, %v", statuses, err)
	}
	st := statuses[0]
	if st.Column != "id" || st.Kind != component.KindTrie {
		t.Fatalf("status identity = %+v", st)
	}
	if st.Entries != 3 || st.CoveredFiles != 3 || st.UnindexedFiles != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.StaleRefs != 0 || st.RedundantEntries != 0 || st.IndexBytes == 0 {
		t.Fatalf("status = %+v", st)
	}

	// Lake compaction turns all coverage stale.
	if _, err := e.table.Compact(ctx, 1<<30, 0); err != nil {
		t.Fatal(err)
	}
	// The three indexed files are now stale refs (the fourth batch
	// was never indexed, so it never became a ref).
	statuses, _ = e.cli.Status(ctx)
	st = statuses[0]
	if st.StaleRefs != 3 || st.CoveredFiles != 0 {
		t.Fatalf("post-lake-compaction status = %+v", st)
	}
}

func TestMaintainRunsTheFullLoop(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{Timeout: time.Hour})
	gen := workload.NewUUIDGen(71)
	spec := IndexSpec{Column: "id", Kind: component.KindTrie}
	policy := MaintainPolicy{CompactWhenEntries: 3}

	var keys [][16]byte
	// Batches 1 and 2: maintain indexes each, no compaction yet.
	for i := 0; i < 2; i++ {
		ks, _ := e.appendUUIDs(t, gen, 150)
		keys = append(keys, ks...)
		report, err := e.cli.Maintain(ctx, policy, spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(report.Indexed) != 1 || report.Compacted != 0 {
			t.Fatalf("pass %d report = %+v", i, report)
		}
	}
	// Batch 3 trips the fragmentation threshold: compaction + vacuum.
	ks, _ := e.appendUUIDs(t, gen, 150)
	keys = append(keys, ks...)
	e.clock.Advance(2 * time.Hour) // age earlier files past the timeout
	report, err := e.cli.Maintain(ctx, policy, spec)
	if err != nil {
		t.Fatal(err)
	}
	if report.Compacted != 1 || report.Vacuum == nil {
		t.Fatalf("compaction pass report = %+v", report)
	}
	if report.Vacuum.KeptEntries != 1 {
		t.Fatalf("vacuum kept %d entries", report.Vacuum.KeptEntries)
	}

	// Steady state: nothing to do, no spurious work.
	report, err = e.cli.Maintain(ctx, policy, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Indexed) != 0 || report.Compacted != 0 {
		t.Fatalf("steady-state report = %+v", report)
	}

	// Everything stays searchable throughout.
	for _, i := range []int{0, 200, 449} {
		res, err := e.cli.Search(ctx, uuidQuery(keys[i]))
		if err != nil || len(res.Matches) != 1 {
			t.Fatalf("key %d: %d, %v", i, len(res.Matches), err)
		}
	}
	if err := e.cli.CheckExistence(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestMaintainToleratesBelowMinVectors(t *testing.T) {
	ctx := context.Background()
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 72, Dim: 8, Clusters: 4})
	e := newEnv(t, vecSchema(8), Config{MinVectorRows: 500})
	e.appendVectors(t, gen.Batch(100))
	report, err := e.cli.Maintain(ctx, MaintainPolicy{}, IndexSpec{Column: "emb", Kind: component.KindIVFPQ})
	if err != nil {
		t.Fatalf("maintain with too-few rows: %v", err)
	}
	if len(report.Indexed) != 0 {
		t.Fatalf("report = %+v", report)
	}
	// Enough rows now: the next pass indexes.
	e.appendVectors(t, gen.Batch(500))
	report, err = e.cli.Maintain(ctx, MaintainPolicy{}, IndexSpec{Column: "emb", Kind: component.KindIVFPQ})
	if err != nil || len(report.Indexed) != 1 {
		t.Fatalf("second pass: %+v, %v", report, err)
	}
}
