package core

import (
	"testing"
)

func TestParseWhereGrammar(t *testing.T) {
	uuid := "0123456789abcdef0123456789abcdef"
	cases := []struct {
		in   string
		want string // exprKey of the normalized parse, via a reference tree
		ref  *Expr
	}{
		{in: "body~needle", ref: PredSubstring("body", []byte("needle"))},
		{in: `body ~ "two words"`, ref: PredSubstring("body", []byte("two words"))},
		{in: `body =~ "err(or)?s"`, ref: PredRegex("body", "err(or)?s")},
		{in: "id=" + uuid, ref: PredUUID("id", mustUUID(t, uuid))},
		{in: "a~x AND b~y", ref: And(PredSubstring("a", []byte("x")), PredSubstring("b", []byte("y")))},
		{in: "a~x and b~y or c~z", ref: Or(And(PredSubstring("a", []byte("x")), PredSubstring("b", []byte("y"))), PredSubstring("c", []byte("z")))},
		{in: "a~x AND (b~y OR c~z)", ref: And(PredSubstring("a", []byte("x")), Or(PredSubstring("b", []byte("y")), PredSubstring("c", []byte("z"))))},
		{in: `"weird col"~'it\'s'`, ref: PredSubstring("weird col", []byte("it's"))},
		{in: `"and"~x`, ref: PredSubstring("and", []byte("x"))},
		{in: `body~"esc\"aped\\"`, ref: PredSubstring("body", []byte(`esc"aped\`))},
	}
	for _, tc := range cases {
		got, err := ParseWhere(tc.in)
		if err != nil {
			t.Fatalf("ParseWhere(%q): %v", tc.in, err)
		}
		ng, err := normalizeExpr(got)
		if err != nil {
			t.Fatalf("normalize(%q): %v", tc.in, err)
		}
		nw, err := normalizeExpr(tc.ref)
		if err != nil {
			t.Fatal(err)
		}
		if exprKey(ng) != exprKey(nw) {
			t.Fatalf("ParseWhere(%q) = %q, want %q", tc.in, exprKey(ng), exprKey(nw))
		}
	}

	for _, bad := range []string{
		"", "body", "body~", "(body~x", "body~x)", "id=nothex",
		"id=0123", "AND~x", "body~x AND", "body~x OR OR body~y",
		`body~"unterminated`, `body~"dangling\`,
	} {
		if _, err := ParseWhere(bad); err == nil {
			t.Fatalf("ParseWhere(%q) accepted", bad)
		}
	}
}

func mustUUID(t *testing.T, s string) [16]byte {
	t.Helper()
	e, err := ParseWhere("x=" + s)
	if err != nil {
		t.Fatal(err)
	}
	return *e.Pred.UUID
}

func TestFormatWhereRoundTrip(t *testing.T) {
	key := mustUUID(t, "00112233445566778899aabbccddeeff")
	trees := []*Expr{
		PredSubstring("body", []byte("with \"quotes\" and \\slashes\\")),
		And(PredUUID("id", key), Or(PredSubstring("a b", []byte("x")), PredRegex("c", "lit(eral)+"))),
		Or(And(PredSubstring("a", []byte("1")), PredSubstring("b", []byte("2"))), PredSubstring("and", []byte("keyword-col"))),
	}
	for _, tree := range trees {
		text, err := FormatWhere(tree)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseWhere(text)
		if err != nil {
			t.Fatalf("reparse %q: %v", text, err)
		}
		n1, err := normalizeExpr(tree)
		if err != nil {
			t.Fatal(err)
		}
		n2, err := normalizeExpr(back)
		if err != nil {
			t.Fatalf("normalize reparse of %q: %v", text, err)
		}
		if exprKey(n1) != exprKey(n2) {
			t.Fatalf("round trip changed tree:\n in: %q\nout: %q\ntext: %q", exprKey(n1), exprKey(n2), text)
		}
	}
	if _, err := FormatWhere(PredVector("emb", []float32{1}, 0, 0)); err == nil {
		t.Fatal("vector leaf formatted")
	}
}

// FuzzPredicateParser fuzzes the -where grammar: the parser must
// never panic, and any input it accepts must survive a
// format-and-reparse round trip with its canonical key intact.
func FuzzPredicateParser(f *testing.F) {
	f.Add("body~needle")
	f.Add("id=0123456789abcdef0123456789abcdef")
	f.Add(`a~x AND (b=~"er+or" OR c~'z z')`)
	f.Add(`(((a~x)))`)
	f.Add("a~x and a~x and a~x")
	f.Add(`"col"~"\\\""`)
	f.Fuzz(func(t *testing.T, input string) {
		e, err := ParseWhere(input)
		if err != nil {
			return
		}
		norm, err := normalizeExpr(e)
		if err != nil {
			// Parseable but invalid as a predicate tree (e.g. a
			// predicate with an empty column name is unreachable from
			// this grammar, so any error here is a bug).
			t.Fatalf("parsed %q but normalize failed: %v", input, err)
		}
		text, err := FormatWhere(e)
		if err != nil {
			t.Fatalf("parsed %q but format failed: %v", input, err)
		}
		back, err := ParseWhere(text)
		if err != nil {
			t.Fatalf("format of %q produced unparseable %q: %v", input, text, err)
		}
		normBack, err := normalizeExpr(back)
		if err != nil {
			t.Fatalf("reparse of %q un-normalizable: %v", text, err)
		}
		if exprKey(norm) != exprKey(normBack) {
			t.Fatalf("round trip changed canonical key:\ninput: %q\ntext:  %q\n in:   %q\n out:  %q", input, text, exprKey(norm), exprKey(normBack))
		}
		// Compiling may still reject the tree semantically (an invalid
		// regex body is a grammar-level string), but it must not panic.
		_, _ = compileShape(CompoundQuery{Expr: e})
	})
}
