package core

import (
	"context"
	"errors"
	"fmt"

	"rottnest/internal/component"
	"rottnest/internal/meta"
)

// IndexStatus describes the state of one (column, kind) index
// relative to a lake snapshot.
type IndexStatus struct {
	Column string
	Kind   component.Kind
	// Entries is the number of committed index files.
	Entries int
	// IndexBytes is their total size.
	IndexBytes int64
	// CoveredFiles counts snapshot files some index covers;
	// UnindexedFiles counts the rest; StaleRefs counts covered paths
	// that are no longer in the snapshot (candidates for vacuum).
	CoveredFiles   int
	UnindexedFiles int
	StaleRefs      int
	// RedundantEntries counts index files the greedy cover would not
	// pick — the fragmentation that compaction+vacuum removes.
	RedundantEntries int
}

// Status reports the state of every index against the latest
// snapshot. Operators use it to decide when to run Index, Compact,
// and Vacuum; Maintain automates exactly that.
func (c *Client) Status(ctx context.Context) ([]IndexStatus, error) {
	snap, err := c.table.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	entries, err := c.meta.List(ctx)
	if err != nil {
		return nil, err
	}
	active := snap.Paths()

	type groupKey struct {
		column string
		kind   component.Kind
	}
	groups := make(map[groupKey][]meta.IndexEntry)
	for _, e := range entries {
		k := groupKey{e.Column, e.Kind}
		groups[k] = append(groups[k], e)
	}
	var out []IndexStatus
	for k, group := range groups {
		st := IndexStatus{Column: k.column, Kind: k.kind, Entries: len(group)}
		covered := make(map[string]bool)
		stale := make(map[string]bool)
		for _, e := range group {
			st.IndexBytes += e.SizeBytes
			for _, f := range e.Files {
				if active[f] {
					covered[f] = true
				} else {
					stale[f] = true
				}
			}
		}
		st.CoveredFiles = len(covered)
		st.UnindexedFiles = len(snap.Files) - len(covered)
		st.StaleRefs = len(stale)
		chosen, _ := coverEntries(group, active)
		st.RedundantEntries = len(group) - len(chosen)
		out = append(out, st)
	}
	sortStatuses(out)
	return out, nil
}

func sortStatuses(sts []IndexStatus) {
	for i := 1; i < len(sts); i++ {
		for j := i; j > 0; j-- {
			a, b := sts[j-1], sts[j]
			if a.Column < b.Column || (a.Column == b.Column && a.Kind <= b.Kind) {
				break
			}
			sts[j-1], sts[j] = b, a
		}
	}
}

// MaintainPolicy tunes the automated maintenance pass.
type MaintainPolicy struct {
	// CompactWhenEntries triggers index compaction once a (column,
	// kind) index fragments into at least this many files. Defaults
	// to 8.
	CompactWhenEntries int
	// Compact options forwarded to Compact.
	Compact CompactOptions
	// Vacuum options forwarded to Vacuum.
	Vacuum VacuumOptions
}

func (p MaintainPolicy) withDefaults() MaintainPolicy {
	if p.CompactWhenEntries <= 0 {
		p.CompactWhenEntries = 8
	}
	return p
}

// MaintainReport summarizes one maintenance pass.
type MaintainReport struct {
	// Indexed lists the (column, kind) pairs that gained a new index
	// file this pass.
	Indexed []IndexStatus
	// Compacted counts the merge outputs produced.
	Compacted int
	// Vacuum is the garbage-collection report, nil if vacuum was
	// skipped (nothing compacted and nothing stale).
	Vacuum *VacuumReport
}

// Maintain is the background-maintenance loop body the paper sketches
// (index new data; compact LSM-style when fragmented; vacuum): one
// call brings every registered (column, kind) index up to date and
// tidies the index directory. Specs name the indices to maintain.
func (c *Client) Maintain(ctx context.Context, policy MaintainPolicy, specs ...IndexSpec) (*MaintainReport, error) {
	policy = policy.withDefaults()
	report := &MaintainReport{}
	needVacuum := false
	for _, spec := range specs {
		entry, err := c.Index(ctx, spec.Column, spec.Kind)
		switch {
		case errors.Is(err, ErrBelowMinRows):
			// Not enough new rows yet; scans cover the tail.
		case err != nil:
			return report, fmt.Errorf("core: maintain index %s: %w", spec.Column, err)
		case entry != nil:
			st := IndexStatus{Column: spec.Column, Kind: spec.Kind}
			report.Indexed = append(report.Indexed, st)
		}
		entries, err := c.meta.ListFor(ctx, spec.Column, spec.Kind)
		if err != nil {
			return report, err
		}
		if len(entries) >= policy.CompactWhenEntries {
			merged, err := c.Compact(ctx, spec.Column, spec.Kind, policy.Compact)
			if err != nil {
				return report, fmt.Errorf("core: maintain compact %s: %w", spec.Column, err)
			}
			report.Compacted += len(merged)
			if len(merged) > 0 {
				needVacuum = true
			}
		}
	}
	// Vacuum when compaction produced redundancy, or when stale refs
	// have accumulated from lake maintenance.
	if !needVacuum {
		statuses, err := c.Status(ctx)
		if err != nil {
			return report, err
		}
		for _, st := range statuses {
			if st.StaleRefs > 0 || st.RedundantEntries > 0 {
				needVacuum = true
				break
			}
		}
	}
	if needVacuum {
		vr, err := c.Vacuum(ctx, policy.Vacuum)
		if err != nil {
			return report, fmt.Errorf("core: maintain vacuum: %w", err)
		}
		report.Vacuum = vr
	}
	return report, nil
}

// IndexSpec names one maintained index.
type IndexSpec struct {
	Column string
	Kind   component.Kind
}
