package core

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"rottnest/internal/component"
	"rottnest/internal/fmindex"
	"rottnest/internal/ivfpq"
	"rottnest/internal/meta"
	"rottnest/internal/objectstore"
	"rottnest/internal/obs"
	"rottnest/internal/parquet"
	"rottnest/internal/postings"
	"rottnest/internal/simtime"
	"rottnest/internal/trie"
)

func float32frombits(u uint32) float32 { return math.Float32frombits(u) }

// Index brings the (column, kind) index up to date with the latest
// lake snapshot, following the protocol of Section IV-A:
//
//  1. Plan: diff the snapshot's manifest list against the metadata
//     table to find Parquet files not yet indexed — every new file is
//     indexed regardless of whether it came from an insert, update,
//     or lake compaction.
//  2. Index: scan the new files' column, build one index file
//     covering all of them, and upload it to the index directory.
//  3. Commit: insert the index file's record into the metadata table
//     transactionally. Upload-then-commit order preserves the
//     Existence invariant.
//  4. Timeout: if the operation exceeds the configured timeout it
//     aborts before commit; vacuum later collects the orphan upload.
//
// It returns the new metadata entry, or nil if every snapshot file was
// already covered. If an input file disappears mid-scan (lake GC), it
// returns ErrAborted and should be retried.
func (c *Client) Index(ctx context.Context, column string, kind component.Kind) (*meta.IndexEntry, error) {
	return c.IndexAt(ctx, column, kind, -1)
}

// IndexAt is Index against a specific lake snapshot version (data
// lakes support time travel; the paper's index API takes a snapshot).
// Version < 0 means latest.
func (c *Client) IndexAt(ctx context.Context, column string, kind component.Kind, version int64) (*meta.IndexEntry, error) {
	return c.IndexWithOptions(ctx, column, kind, IndexOptions{Version: version})
}

// IndexOptions parameterizes one index job beyond the (column, kind)
// pair, so a maintenance policy can shape what gets indexed and how
// deep.
type IndexOptions struct {
	// Version is the lake snapshot version to index against; <= 0
	// means latest.
	Version int64
	// Only, when non-nil, restricts the job to uncovered files in the
	// set — an adaptive policy uses it to index hot partitions first,
	// leaving the cold tail for later jobs. Files outside the snapshot
	// or already covered are ignored.
	Only []string
	// IVF, when non-nil, overrides the client's IVF-PQ build options
	// for this job — e.g. a coarse low-nlist first pass for fast
	// time-to-searchable, refined later from probe traffic.
	IVF *ivfpq.BuildOptions
}

// IndexWithOptions is IndexAt with per-job options; see IndexOptions.
func (c *Client) IndexWithOptions(ctx context.Context, column string, kind component.Kind, opts IndexOptions) (*meta.IndexEntry, error) {
	start := c.clock.Now()
	version := opts.Version
	if version <= 0 {
		version = -1
	}

	// Plan.
	pctx, planSpan := obs.Start(ctx, "index.plan")
	defer planSpan.End()
	snap, err := c.table.SnapshotAt(pctx, version)
	if err != nil {
		return nil, err
	}
	ci, col, err := kindForColumn(snap.Schema, column, kind)
	if err != nil {
		return nil, err
	}
	existing, err := c.meta.ListFor(pctx, column, kind)
	if err != nil {
		return nil, err
	}
	covered := make(map[string]bool)
	for _, e := range existing {
		for _, f := range e.Files {
			covered[f] = true
		}
	}
	var only map[string]bool
	if opts.Only != nil {
		only = make(map[string]bool, len(opts.Only))
		for _, p := range opts.Only {
			only[p] = true
		}
	}
	var newFiles []ManifestFile
	for _, f := range snap.Files {
		if covered[f.Path] || (only != nil && !only[f.Path]) {
			continue
		}
		newFiles = append(newFiles, ManifestFile{Path: f.Path, Rows: f.Rows})
	}
	planSpan.SetAttr("column", column)
	planSpan.SetAttr("kind", kind.String())
	planSpan.SetAttr("new_files", len(newFiles))
	planSpan.End() // idempotent: the defer covers the error returns above
	if len(newFiles) == 0 {
		return nil, nil
	}

	// Index: scan the new files (internally parallel, as the paper
	// notes the index API is) and build. Scanning is IO-bound and input
	// assembly is CPU-bound, so the two are pipelined: a consumer
	// goroutine flattens each file's values into the builder inputs —
	// in file order, keeping the assembled inputs (and hence the index
	// bytes) deterministic — as soon as that file's scan lands, while
	// later scans are still in flight. Each file's column is released
	// right after assembly, bounding peak memory to in-flight scans
	// plus the growing input.
	builder := component.NewBuilder(kind)
	manifest := &Manifest{Column: column, Kind: kind, Files: newFiles}
	var totalRows int64
	columns := make([]parquet.ColumnValues, len(newFiles))
	scanErrs := make([]error, len(newFiles))
	scanned := make([]chan struct{}, len(newFiles))
	for i := range scanned {
		scanned[i] = make(chan struct{})
	}
	asm := &inputAssembler{kind: kind, vecDim: col.TypeLen / 4}
	asmDone := make(chan struct{})
	go func() {
		defer close(asmDone)
		for i := range newFiles {
			<-scanned[i]
			if scanErrs[i] != nil {
				return // the error check below reports it
			}
			asm.addFile(i, newFiles[i], columns[i])
			columns[i] = parquet.ColumnValues{} // release the scanned values
		}
	}()
	scanCtx, scanSpan := obs.Start(ctx, "index.scan")
	scanSpan.SetAttr("files", len(newFiles))
	session := simtime.From(ctx)
	session.ParallelN(len(newFiles), c.cfg.SearchWidth, func(i int, s *simtime.Session) {
		defer close(scanned[i])
		bctx := scanCtx
		if s != nil {
			bctx = simtime.With(scanCtx, s)
		}
		vals, pages, _, err := parquet.ScanColumn(bctx, c.store, c.table.Root()+newFiles[i].Path, ci)
		if err != nil {
			scanErrs[i] = err
			return
		}
		newFiles[i].Pages = pages
		newFiles[i].Rows = pages.TotalRows()
		columns[i] = vals
	})
	<-asmDone
	scanSpan.End()
	for i, err := range scanErrs {
		if err != nil {
			if errors.Is(err, objectstore.ErrNotFound) {
				return nil, fmt.Errorf("core: input %s vanished during indexing: %w", newFiles[i].Path, ErrAborted)
			}
			return nil, err
		}
	}
	for i := range newFiles {
		totalRows += newFiles[i].Rows
	}
	if kind == component.KindIVFPQ && totalRows < c.cfg.MinVectorRows {
		return nil, fmt.Errorf("core: %d new rows < %d: %w", totalRows, c.cfg.MinVectorRows, ErrBelowMinRows)
	}

	_, buildSpan := obs.Start(ctx, "index.build")
	defer buildSpan.End()
	manifestJSON, err := json.Marshal(manifest)
	if err != nil {
		return nil, fmt.Errorf("core: encode manifest: %w", err)
	}
	builder.Add(manifestJSON) // component 0

	switch kind {
	case component.KindTrie:
		if err := trie.BuildInto(builder, asm.keys, asm.pageRefs, c.cfg.Trie); err != nil {
			return nil, err
		}
	case component.KindFM:
		if err := fmindex.BuildInto(builder, asm.text, asm.starts, asm.pageRefs, c.cfg.FM); err != nil {
			return nil, err
		}
	case component.KindIVFPQ:
		ivfOpts := c.cfg.IVF
		if opts.IVF != nil {
			ivfOpts = *opts.IVF
		}
		if err := ivfpq.BuildInto(builder, asm.vecs, asm.rowRefs, ivfOpts); err != nil {
			return nil, err
		}
	}
	data, err := builder.Finish()
	if err != nil {
		return nil, err
	}
	buildSpan.SetAttr("rows", totalRows)
	buildSpan.SetAttr("bytes", len(data))
	buildSpan.End()

	// Upload.
	uctx, uploadSpan := obs.Start(ctx, "index.upload")
	defer uploadSpan.End()
	indexKey := c.cfg.IndexDir + indexFilePrefix + randomName() + ".index"
	uploadSpan.SetAttr("key", indexKey)
	if err := c.store.Put(uctx, indexKey, data); err != nil {
		return nil, err
	}
	uploadSpan.End()

	// Timeout check, then commit.
	if c.clock.Now().Sub(start) > c.cfg.Timeout {
		return nil, fmt.Errorf("core: index of %d files: %w", len(newFiles), ErrTimeout)
	}
	paths := make([]string, len(newFiles))
	for i, f := range newFiles {
		paths[i] = f.Path
	}
	entry := meta.IndexEntry{
		IndexKey:  indexKey,
		Kind:      kind,
		Column:    column,
		Files:     paths,
		Rows:      totalRows,
		SizeBytes: int64(len(data)),
	}
	cctx, commitSpan := obs.Start(ctx, "index.commit")
	defer commitSpan.End()
	if err := c.meta.Insert(cctx, entry); err != nil {
		return nil, err
	}
	// The metadata table changed without a lake commit; cached plans
	// must replan to pick up the new index file.
	c.plans.invalidateAll()
	commitSpan.End()
	// Re-check the timeout after commit: the clock can pass the
	// deadline between the check above and the insert, and a vacuum
	// judging object age by that same clock may already have collected
	// the upload as an orphan. Any such vacuum ran after the deadline
	// passed, so the overshoot is always visible here; rolling the
	// commit back restores the Existence invariant and the caller
	// retries cleanly.
	if c.clock.Now().Sub(start) > c.cfg.Timeout {
		rctx, rollbackSpan := obs.Start(ctx, "index.rollback")
		defer rollbackSpan.End()
		if err := c.meta.Delete(rctx, entry.IndexKey); err != nil {
			return nil, err
		}
		c.plans.invalidateAll()
		return nil, fmt.Errorf("core: index of %d files overran commit: %w", len(newFiles), ErrTimeout)
	}
	entry.CreatedAt = c.clock.Now()
	return &entry, nil
}

// randomName returns a fresh hex name for an index file.
func randomName() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand does not fail on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// inputAssembler incrementally flattens scanned columns into the
// kind-specific builder inputs, one file at a time in file order —
// the same flattening the old batch helpers performed over the full
// column set, so the assembled inputs (and the index bytes derived
// from them) are unchanged.
type inputAssembler struct {
	kind   component.Kind
	vecDim int

	keys     [][16]byte         // trie: row keys
	text     []byte             // fm: separator-joined values
	starts   []int64            // fm: page-boundary offsets
	pageRefs []postings.PageRef // trie + fm: page refs
	vecs     [][]float32        // ivfpq: decoded vectors
	rowRefs  []postings.RowRef  // ivfpq: row refs
}

// addFile appends file fi's scanned column to the inputs. For trie,
// each row's ref is the page containing it. For fm, sentinel bytes
// inside values are rewritten to the separator so the FM-index build
// constraint holds; in-situ probing re-checks against the raw value,
// so this cannot cause wrong results, only (vanishingly rare) false
// negatives for patterns containing 0x00, which fall back to scans.
func (a *inputAssembler) addFile(fi int, f ManifestFile, col parquet.ColumnValues) {
	switch a.kind {
	case component.KindTrie:
		vals := col.Bytes
		for _, p := range f.Pages {
			for r := 0; r < p.NumValues; r++ {
				row := p.FirstRow + int64(r)
				var k [16]byte
				copy(k[:], vals[row])
				a.keys = append(a.keys, k)
				a.pageRefs = append(a.pageRefs, postings.PageRef{File: uint32(fi), Page: uint32(p.Ordinal)})
			}
		}
	case component.KindFM:
		vals := col.Bytes
		for _, p := range f.Pages {
			a.starts = append(a.starts, int64(len(a.text)))
			a.pageRefs = append(a.pageRefs, postings.PageRef{File: uint32(fi), Page: uint32(p.Ordinal)})
			for r := 0; r < p.NumValues; r++ {
				v := vals[p.FirstRow+int64(r)]
				if bytes.IndexByte(v, fmindex.Sentinel) >= 0 {
					v = bytes.ReplaceAll(v, []byte{fmindex.Sentinel}, []byte{fmindex.Separator})
				}
				a.text = append(a.text, v...)
				a.text = append(a.text, fmindex.Separator)
			}
		}
	case component.KindIVFPQ:
		for row, v := range col.Bytes {
			a.vecs = append(a.vecs, decodeVector(v, a.vecDim))
			a.rowRefs = append(a.rowRefs, postings.RowRef{File: uint32(fi), Row: int64(row)})
		}
	}
}

// decodeVector unpacks a little-endian float32 column value.
func decodeVector(v []byte, dim int) []float32 {
	if dim > len(v)/4 {
		dim = len(v) / 4
	}
	out := make([]float32, dim)
	for i := range out {
		out[i] = float32frombits(binary.LittleEndian.Uint32(v[4*i:]))
	}
	return out
}
