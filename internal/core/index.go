package core

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"rottnest/internal/component"
	"rottnest/internal/fmindex"
	"rottnest/internal/ivfpq"
	"rottnest/internal/meta"
	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/postings"
	"rottnest/internal/simtime"
	"rottnest/internal/trie"
)

func float32frombits(u uint32) float32 { return math.Float32frombits(u) }

// Index brings the (column, kind) index up to date with the latest
// lake snapshot, following the protocol of Section IV-A:
//
//  1. Plan: diff the snapshot's manifest list against the metadata
//     table to find Parquet files not yet indexed — every new file is
//     indexed regardless of whether it came from an insert, update,
//     or lake compaction.
//  2. Index: scan the new files' column, build one index file
//     covering all of them, and upload it to the index directory.
//  3. Commit: insert the index file's record into the metadata table
//     transactionally. Upload-then-commit order preserves the
//     Existence invariant.
//  4. Timeout: if the operation exceeds the configured timeout it
//     aborts before commit; vacuum later collects the orphan upload.
//
// It returns the new metadata entry, or nil if every snapshot file was
// already covered. If an input file disappears mid-scan (lake GC), it
// returns ErrAborted and should be retried.
func (c *Client) Index(ctx context.Context, column string, kind component.Kind) (*meta.IndexEntry, error) {
	return c.IndexAt(ctx, column, kind, -1)
}

// IndexAt is Index against a specific lake snapshot version (data
// lakes support time travel; the paper's index API takes a snapshot).
// Version < 0 means latest.
func (c *Client) IndexAt(ctx context.Context, column string, kind component.Kind, version int64) (*meta.IndexEntry, error) {
	start := c.clock.Now()

	// Plan.
	snap, err := c.table.SnapshotAt(ctx, version)
	if err != nil {
		return nil, err
	}
	ci, col, err := kindForColumn(snap.Schema, column, kind)
	if err != nil {
		return nil, err
	}
	existing, err := c.meta.ListFor(ctx, column, kind)
	if err != nil {
		return nil, err
	}
	covered := make(map[string]bool)
	for _, e := range existing {
		for _, f := range e.Files {
			covered[f] = true
		}
	}
	var newFiles []ManifestFile
	for _, f := range snap.Files {
		if !covered[f.Path] {
			newFiles = append(newFiles, ManifestFile{Path: f.Path, Rows: f.Rows})
		}
	}
	if len(newFiles) == 0 {
		return nil, nil
	}

	// Index: scan the new files (internally parallel, as the paper
	// notes the index API is) and build.
	builder := component.NewBuilder(kind)
	manifest := &Manifest{Column: column, Kind: kind, Files: newFiles}
	var totalRows int64
	columns := make([]parquet.ColumnValues, len(newFiles))
	scanErrs := make([]error, len(newFiles))
	session := simtime.From(ctx)
	session.ParallelN(len(newFiles), c.cfg.SearchWidth, func(i int, s *simtime.Session) {
		bctx := ctx
		if s != nil {
			bctx = simtime.With(ctx, s)
		}
		vals, pages, _, err := parquet.ScanColumn(bctx, c.store, c.table.Root()+newFiles[i].Path, ci)
		if err != nil {
			scanErrs[i] = err
			return
		}
		newFiles[i].Pages = pages
		newFiles[i].Rows = pages.TotalRows()
		columns[i] = vals
	})
	for i, err := range scanErrs {
		if err != nil {
			if errors.Is(err, objectstore.ErrNotFound) {
				return nil, fmt.Errorf("core: input %s vanished during indexing: %w", newFiles[i].Path, ErrAborted)
			}
			return nil, err
		}
	}
	for i := range newFiles {
		totalRows += newFiles[i].Rows
	}
	if kind == component.KindIVFPQ && totalRows < c.cfg.MinVectorRows {
		return nil, fmt.Errorf("core: %d new rows < %d: %w", totalRows, c.cfg.MinVectorRows, ErrBelowMinRows)
	}

	manifestJSON, err := json.Marshal(manifest)
	if err != nil {
		return nil, fmt.Errorf("core: encode manifest: %w", err)
	}
	builder.Add(manifestJSON) // component 0

	switch kind {
	case component.KindTrie:
		keys, refs := trieInputs(newFiles, columns)
		if err := trie.BuildInto(builder, keys, refs, c.cfg.Trie); err != nil {
			return nil, err
		}
	case component.KindFM:
		text, starts, refs := fmInputs(newFiles, columns)
		if err := fmindex.BuildInto(builder, text, starts, refs, c.cfg.FM); err != nil {
			return nil, err
		}
	case component.KindIVFPQ:
		vecs, refs := vectorInputs(newFiles, columns, col.TypeLen/4)
		if err := ivfpq.BuildInto(builder, vecs, refs, c.cfg.IVF); err != nil {
			return nil, err
		}
	}
	data, err := builder.Finish()
	if err != nil {
		return nil, err
	}

	// Upload.
	indexKey := c.cfg.IndexDir + indexFilePrefix + randomName() + ".index"
	if err := c.store.Put(ctx, indexKey, data); err != nil {
		return nil, err
	}

	// Timeout check, then commit.
	if c.clock.Now().Sub(start) > c.cfg.Timeout {
		return nil, fmt.Errorf("core: index of %d files: %w", len(newFiles), ErrTimeout)
	}
	paths := make([]string, len(newFiles))
	for i, f := range newFiles {
		paths[i] = f.Path
	}
	entry := meta.IndexEntry{
		IndexKey:  indexKey,
		Kind:      kind,
		Column:    column,
		Files:     paths,
		Rows:      totalRows,
		SizeBytes: int64(len(data)),
	}
	if err := c.meta.Insert(ctx, entry); err != nil {
		return nil, err
	}
	entry.CreatedAt = c.clock.Now()
	return &entry, nil
}

// randomName returns a fresh hex name for an index file.
func randomName() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand does not fail on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// trieInputs flattens per-file UUID columns into (key, page ref)
// pairs: each row's ref is the page containing it.
func trieInputs(files []ManifestFile, columns []parquet.ColumnValues) ([][16]byte, []postings.PageRef) {
	var keys [][16]byte
	var refs []postings.PageRef
	for fi := range files {
		vals := columns[fi].Bytes
		for _, p := range files[fi].Pages {
			for r := 0; r < p.NumValues; r++ {
				row := p.FirstRow + int64(r)
				var k [16]byte
				copy(k[:], vals[row])
				keys = append(keys, k)
				refs = append(refs, postings.PageRef{File: uint32(fi), Page: uint32(p.Ordinal)})
			}
		}
	}
	return keys, refs
}

// fmInputs concatenates per-file text columns into one separator-
// joined text with page-boundary offsets. Sentinel bytes inside
// values are rewritten to the separator so the FM-index build
// constraint holds; in-situ probing re-checks against the raw value,
// so this cannot cause wrong results, only (vanishingly rare) false
// negatives for patterns containing 0x00, which fall back to scans.
func fmInputs(files []ManifestFile, columns []parquet.ColumnValues) ([]byte, []int64, []postings.PageRef) {
	var text []byte
	var starts []int64
	var refs []postings.PageRef
	for fi := range files {
		vals := columns[fi].Bytes
		for _, p := range files[fi].Pages {
			starts = append(starts, int64(len(text)))
			refs = append(refs, postings.PageRef{File: uint32(fi), Page: uint32(p.Ordinal)})
			for r := 0; r < p.NumValues; r++ {
				v := vals[p.FirstRow+int64(r)]
				if bytes.IndexByte(v, fmindex.Sentinel) >= 0 {
					v = bytes.ReplaceAll(v, []byte{fmindex.Sentinel}, []byte{fmindex.Separator})
				}
				text = append(text, v...)
				text = append(text, fmindex.Separator)
			}
		}
	}
	return text, starts, refs
}

// vectorInputs decodes per-file packed float32 columns into vectors
// with row-level refs.
func vectorInputs(files []ManifestFile, columns []parquet.ColumnValues, dim int) ([][]float32, []postings.RowRef) {
	var vecs [][]float32
	var refs []postings.RowRef
	for fi := range files {
		for row, v := range columns[fi].Bytes {
			vecs = append(vecs, decodeVector(v, dim))
			refs = append(refs, postings.RowRef{File: uint32(fi), Row: int64(row)})
		}
	}
	return vecs, refs
}

// decodeVector unpacks a little-endian float32 column value.
func decodeVector(v []byte, dim int) []float32 {
	if dim > len(v)/4 {
		dim = len(v) / 4
	}
	out := make([]float32, dim)
	for i := range out {
		out[i] = float32frombits(binary.LittleEndian.Uint32(v[4*i:]))
	}
	return out
}
