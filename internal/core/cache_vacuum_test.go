package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/workload"
)

// TestCacheSurvivesCompactAndVacuum primes the read cache with
// searches against small index files, then compacts the index and
// vacuums — physically deleting index objects whose components are
// cache-resident — and verifies that searches stay correct and that
// reads of the deleted objects through the cached store report
// not-found rather than serving stale cached bytes.
func TestCacheSurvivesCompactAndVacuum(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{Timeout: time.Hour})
	gen := workload.NewUUIDGen(31)

	var keys [][16]byte
	for i := 0; i < 4; i++ {
		ks, _ := e.appendUUIDs(t, gen, 300)
		keys = append(keys, ks...)
		if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
			t.Fatal(err)
		}
	}

	// Prime: repeated searches load index tails, components, and data
	// pages into the cache.
	for i := 0; i < 40; i++ {
		k := keys[i*7%len(keys)]
		res, err := e.cli.Search(ctx, uuidQuery(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 1 {
			t.Fatalf("key matched %d times before compact", len(res.Matches))
		}
	}
	if s := objectstore.CacheStatsFrom(e.cli.Metrics()); s.Hits == 0 {
		t.Fatalf("priming produced no cache hits: %+v", s)
	}

	// Remember the small index files that compaction will supersede.
	entries, err := e.cli.Meta().ListFor(ctx, "id", component.KindTrie)
	if err != nil {
		t.Fatal(err)
	}
	oldKeys := make([]string, 0, len(entries))
	for _, en := range entries {
		oldKeys = append(oldKeys, en.IndexKey)
	}

	if _, err := e.cli.Compact(ctx, "id", component.KindTrie, CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(2 * time.Hour) // old files leave the timeout window
	if _, err := e.cli.Vacuum(ctx, VacuumOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := e.cli.CheckExistence(ctx); err != nil {
		t.Fatal(err)
	}

	// The vacuumed objects were cache-resident; the cached store must
	// not resurrect them.
	cached := objectstore.FindCached(e.cli.store)
	if cached == nil {
		t.Fatal("client has no cached store")
	}
	deletedSeen := 0
	for _, k := range oldKeys {
		if _, err := e.store.Head(ctx, k); err == nil {
			continue // kept by the timeout rule
		}
		deletedSeen++
		if _, err := cached.Get(ctx, k); !errors.Is(err, objectstore.ErrNotFound) {
			t.Fatalf("stale cache read of vacuumed %s: err = %v", k, err)
		}
	}
	if deletedSeen == 0 {
		t.Fatal("vacuum deleted no superseded index files; scenario not exercised")
	}

	// Searches after vacuum read the compacted index and stay correct.
	for i := 0; i < 40; i++ {
		k := keys[i*11%len(keys)]
		res, err := e.cli.Search(ctx, uuidQuery(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 1 {
			t.Fatalf("key matched %d times after vacuum", len(res.Matches))
		}
	}
}

// TestConcurrentCacheVacuumInvariants is a randomized storm of
// appends, index builds, index compactions, vacuums, and searches
// against a cache-enabled client. It verifies the protocol invariants
// under delete-heavy maintenance with a warm cache:
//
//   - Existence holds at the end;
//   - no search errors and no search ever returns a foreign value
//     (which a stale cached range would produce);
//   - every live planted key is found exactly once afterwards, and
//     deleted keys never resurface;
//   - the cache actually participated (hits > 0).
func TestConcurrentCacheVacuumInvariants(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{Timeout: time.Hour})
	gen := workload.NewUUIDGen(77)

	var mu sync.Mutex
	live := make(map[[16]byte]bool)
	deleted := make(map[[16]byte]bool)
	var paths []string

	appendBatch := func(rng *rand.Rand) error {
		n := 80 + rng.Intn(80)
		mu.Lock()
		keys := gen.Batch(n)
		mu.Unlock()
		path, err := appendKeys(ctx, e, keys)
		if err != nil {
			return err
		}
		mu.Lock()
		for _, k := range keys {
			live[k] = true
		}
		paths = append(paths, path)
		mu.Unlock()
		return nil
	}

	deleteSome := func(rng *rand.Rand) error {
		mu.Lock()
		if len(paths) == 0 {
			mu.Unlock()
			return nil
		}
		path := paths[rng.Intn(len(paths))]
		mu.Unlock()
		snap, err := e.table.Snapshot(ctx)
		if err != nil {
			return err
		}
		if _, ok := snap.File(path); !ok {
			return nil // compacted away
		}
		row := uint32(rng.Intn(40))
		vals, _, _, err := parquet.ScanColumn(ctx, e.store, e.table.Root()+path, 0)
		if err != nil || int(row) >= len(vals.Bytes) {
			return nil
		}
		var victim [16]byte
		copy(victim[:], vals.Bytes[row])
		mu.Lock()
		if !live[victim] {
			mu.Unlock()
			return nil // already deleted via another row/file
		}
		mu.Unlock()
		if err := e.table.DeleteRows(ctx, path, []uint32{row}); err != nil {
			if errors.Is(err, lake.ErrConflict) {
				return nil
			}
			return err
		}
		mu.Lock()
		delete(live, victim)
		deleted[victim] = true
		mu.Unlock()
		return nil
	}

	searchOne := func(rng *rand.Rand) error {
		mu.Lock()
		var k [16]byte
		found := false
		for key := range live {
			k, found = key, true
			break
		}
		mu.Unlock()
		if !found {
			return nil
		}
		res, err := e.cli.Search(ctx, uuidQuery(k))
		if err != nil {
			return fmt.Errorf("search: %w", err)
		}
		for _, m := range res.Matches {
			if string(m.Value) != string(k[:]) {
				return fmt.Errorf("search returned foreign value (stale read?)")
			}
		}
		return nil
	}

	ops := []func(*rand.Rand) error{
		appendBatch,
		deleteSome,
		searchOne,
		searchOne, // search-heavy mix keeps the cache hot
		func(*rand.Rand) error {
			_, err := e.cli.Index(ctx, "id", component.KindTrie)
			return ignoreAbort(err)
		},
		func(*rand.Rand) error {
			_, err := e.cli.Compact(ctx, "id", component.KindTrie, CompactOptions{})
			return ignoreAbort(err)
		},
		func(*rand.Rand) error {
			// Age everything out, then vacuum: superseded index files
			// (often cache-resident) are physically deleted mid-storm.
			e.clock.Advance(2 * time.Hour)
			_, err := e.cli.Vacuum(ctx, VacuumOptions{})
			return err
		},
	}

	for i := 0; i < 3; i++ {
		if err := appendBatch(rand.New(rand.NewSource(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}

	const workers = 6
	const opsPerWorker = 20
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(4000 + w)))
			for i := 0; i < opsPerWorker; i++ {
				op := ops[rng.Intn(len(ops))]
				if err := op(rng); err != nil {
					errs[w] = fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if err := e.cli.CheckExistence(ctx); err != nil {
		t.Fatal(err)
	}
	if s := objectstore.CacheStatsFrom(e.cli.Metrics()); s.Hits == 0 {
		t.Fatalf("storm produced no cache hits: %+v", s)
	}

	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for k := range live {
		res, err := e.cli.Search(ctx, uuidQuery(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 1 {
			t.Fatalf("live key %x matched %d times", k, len(res.Matches))
		}
		checked++
		if checked >= 120 {
			break
		}
	}
	checked = 0
	for k := range deleted {
		res, err := e.cli.Search(ctx, uuidQuery(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 0 {
			t.Fatalf("deleted key %x resurrected (stale read)", k)
		}
		checked++
		if checked >= 40 {
			break
		}
	}
}

// ignoreAbort treats the protocol's abort-and-retry outcomes as
// benign: the storm's clock advances can push an in-flight index or
// compact past the timeout, which is exactly the abort the protocol
// prescribes (vacuum collects the orphaned upload).
func ignoreAbort(err error) error {
	if errors.Is(err, ErrTimeout) || errors.Is(err, ErrAborted) {
		return nil
	}
	return err
}

// appendKeys appends one batch of uuid rows outside the testing.TB
// helpers (storm workers must return errors, not t.Fatal).
func appendKeys(ctx context.Context, e *env, keys [][16]byte) (string, error) {
	b := parquet.NewBatch(uuidSchema)
	ids := make([][]byte, len(keys))
	pay := make([][]byte, len(keys))
	for i, k := range keys {
		kk := k
		ids[i] = kk[:]
		pay[i] = []byte("p")
	}
	b.Cols[0] = parquet.ColumnValues{Bytes: ids}
	b.Cols[1] = parquet.ColumnValues{Bytes: pay}
	return e.table.Append(ctx, b, parquet.WriterOptions{RowGroupRows: 64, PageBytes: 1024})
}
