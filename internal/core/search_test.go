package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/meta"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

var multiSchema = parquet.MustSchema(
	parquet.Column{Name: "id", Type: parquet.TypeFixedLenByteArray, TypeLen: 16},
	parquet.Column{Name: "body", Type: parquet.TypeByteArray},
	parquet.Column{Name: "emb", Type: parquet.TypeFixedLenByteArray, TypeLen: 4 * 8},
)

// appendMulti adds n rows across all three searchable columns.
func appendMulti(t *testing.T, e *env, n int, seed int64) ([][16]byte, []string, [][]float32) {
	t.Helper()
	uuids := workload.NewUUIDGen(seed)
	texts := workload.NewTextGen(workload.DefaultTextConfig(seed))
	vgen := workload.NewVectorGen(workload.VectorConfig{Seed: seed, Dim: 8, Clusters: 8})
	keys := uuids.Batch(n)
	docs := texts.Docs(n)
	vecs := vgen.Batch(n)
	b := parquet.NewBatch(multiSchema)
	ids := make([][]byte, n)
	bodies := make([][]byte, n)
	embs := make([][]byte, n)
	for i := 0; i < n; i++ {
		k := keys[i]
		ids[i] = k[:]
		bodies[i] = []byte(docs[i])
		embs[i] = workload.Float32sToBytes(vecs[i])
	}
	b.Cols[0] = parquet.ColumnValues{Bytes: ids}
	b.Cols[1] = parquet.ColumnValues{Bytes: bodies}
	b.Cols[2] = parquet.ColumnValues{Bytes: embs}
	if _, err := e.table.Append(context.Background(), b, parquet.WriterOptions{RowGroupRows: 256, PageBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	return keys, docs, vecs
}

func TestMultipleIndexKindsCoexist(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, multiSchema, Config{})
	keys, docs, vecs := appendMulti(t, e, 600, 21)

	for _, spec := range []struct {
		column string
		kind   component.Kind
	}{{"id", component.KindTrie}, {"body", component.KindFM}, {"emb", component.KindIVFPQ}} {
		if _, err := e.cli.Index(ctx, spec.column, spec.kind); err != nil {
			t.Fatalf("index %s: %v", spec.column, err)
		}
	}
	entries, err := e.cli.Meta().List(ctx)
	if err != nil || len(entries) != 3 {
		t.Fatalf("entries = %d, %v", len(entries), err)
	}

	// Each kind answers from its own index without cross-talk.
	res, err := e.cli.Search(ctx, uuidQuery(keys[5]))
	if err != nil || len(res.Matches) != 1 {
		t.Fatalf("uuid: %d, %v", len(res.Matches), err)
	}
	res, err = e.cli.Search(ctx, Query{Column: "body", Substring: []byte(docs[10][:12]), K: 5, Snapshot: -1})
	if err != nil || len(res.Matches) == 0 {
		t.Fatalf("substring: %d, %v", len(res.Matches), err)
	}
	res, err = e.cli.Search(ctx, Query{Column: "emb", Vector: vecs[20], K: 1, NProbe: 8, Snapshot: -1})
	if err != nil || len(res.Matches) != 1 {
		t.Fatalf("vector: %d, %v", len(res.Matches), err)
	}
	if res.Matches[0].Score != 0 {
		t.Fatalf("self-query should find itself at distance 0, got %v", res.Matches[0].Score)
	}
	// Vacuum keeps all three (different groups).
	report, err := e.cli.Vacuum(ctx, VacuumOptions{})
	if err != nil || report.KeptEntries != 3 {
		t.Fatalf("vacuum kept %d, %v", report.KeptEntries, err)
	}
}

func TestVectorSearchHonorsDeletionVectors(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, multiSchema, Config{})
	_, _, vecs := appendMulti(t, e, 500, 22)
	if _, err := e.cli.Index(ctx, "emb", component.KindIVFPQ); err != nil {
		t.Fatal(err)
	}
	// The exact nearest neighbor of vecs[7] is itself; delete row 7
	// and it must vanish from results.
	snap, _ := e.table.Snapshot(ctx)
	if err := e.table.DeleteRows(ctx, snap.Files[0].Path, []uint32{7}); err != nil {
		t.Fatal(err)
	}
	res, err := e.cli.Search(ctx, Query{Column: "emb", Vector: vecs[7], K: 3, NProbe: 8, Snapshot: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matches {
		if m.Row == 7 {
			t.Fatal("deleted vector returned")
		}
	}
	if len(res.Matches) != 3 {
		t.Fatalf("matches = %d", len(res.Matches))
	}
}

func TestSearchStaleIndexLocationsFiltered(t *testing.T) {
	// An index covering files that left the snapshot must contribute
	// nothing — its physical locations are filtered at search time.
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(23)
	keys, _ := e.appendUUIDs(t, gen, 300)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	e.appendUUIDs(t, gen, 300)
	if _, err := e.table.Compact(ctx, 1<<30, 0); err != nil {
		t.Fatal(err)
	}
	// All indexed files are gone from the snapshot.
	res, err := e.cli.Search(ctx, uuidQuery(keys[0]))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %d", len(res.Matches))
	}
	// The match must come from the scan of the new file, not from a
	// stale pointer into a removed file.
	snap, _ := e.table.Snapshot(ctx)
	if _, ok := snap.File(res.Matches[0].Path); !ok {
		t.Fatalf("match points at non-snapshot file %s", res.Matches[0].Path)
	}
	if res.Stats.CoveredFiles != 0 {
		t.Fatalf("stats claim coverage of stale files: %+v", res.Stats)
	}
}

func TestSearchWidthSerializesWaves(t *testing.T) {
	// With many index files and a narrow search width, virtual
	// latency grows in waves — the mechanism behind Figure 13.
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{SearchWidth: 2})
	gen := workload.NewUUIDGen(24)
	var keys [][16]byte
	for i := 0; i < 8; i++ {
		ks, _ := e.appendUUIDs(t, gen, 100)
		keys = append(keys, ks...)
		if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
			t.Fatal(err)
		}
	}
	narrow := simtime.NewSession()
	if _, err := e.cli.Search(simtime.With(ctx, narrow), uuidQuery(keys[0])); err != nil {
		t.Fatal(err)
	}
	wide := NewClient(e.table, Config{Clock: e.clock, IndexDir: "rottnest", SearchWidth: 64})
	wideSession := simtime.NewSession()
	if _, err := wide.Search(simtime.With(ctx, wideSession), uuidQuery(keys[0])); err != nil {
		t.Fatal(err)
	}
	if narrow.Elapsed() <= wideSession.Elapsed() {
		t.Fatalf("width 2 (%v) should be slower than width 64 (%v)", narrow.Elapsed(), wideSession.Elapsed())
	}
}

func TestIndexAtPinsSnapshot(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(25)
	e.appendUUIDs(t, gen, 100) // version 2
	e.appendUUIDs(t, gen, 100) // version 3
	entry, err := e.cli.IndexAt(ctx, "id", component.KindTrie, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(entry.Files) != 1 {
		t.Fatalf("IndexAt(v2) covered %d files", len(entry.Files))
	}
	// A follow-up latest-snapshot index covers only the remainder.
	entry, err = e.cli.Index(ctx, "id", component.KindTrie)
	if err != nil {
		t.Fatal(err)
	}
	if len(entry.Files) != 1 {
		t.Fatalf("follow-up covered %d files", len(entry.Files))
	}
}

func TestSearchZeroSnapshotMeansLatest(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(26)
	keys, _ := e.appendUUIDs(t, gen, 50)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	k := keys[0]
	res, err := e.cli.Search(ctx, Query{Column: "id", UUID: &k, K: 1}) // Snapshot zero value
	if err != nil || len(res.Matches) != 1 {
		t.Fatalf("zero-snapshot search: %d, %v", len(res.Matches), err)
	}
}

func TestClientStatelessAcrossInstances(t *testing.T) {
	// A second client (another process in practice) sees the first
	// client's committed index immediately.
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(27)
	keys, _ := e.appendUUIDs(t, gen, 200)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	other := NewClient(e.table, Config{Clock: e.clock, IndexDir: "rottnest"})
	res, err := other.Search(ctx, uuidQuery(keys[11]))
	if err != nil || len(res.Matches) != 1 {
		t.Fatalf("second client: %d, %v", len(res.Matches), err)
	}
	// And it plans no redundant work.
	again, err := other.Index(ctx, "id", component.KindTrie)
	if err != nil || again != nil {
		t.Fatalf("second client re-indexed: %v, %v", again, err)
	}
}

func TestCoverEntriesGreedy(t *testing.T) {
	active := map[string]bool{"a": true, "b": true, "c": true, "d": true}
	entries := []meta.IndexEntry{
		{IndexKey: "small1", Files: []string{"a"}},
		{IndexKey: "big", Files: []string{"a", "b", "c"}},
		{IndexKey: "small2", Files: []string{"d"}},
		{IndexKey: "redundant", Files: []string{"b", "c"}},
		{IndexKey: "stale", Files: []string{"gone"}},
	}
	chosen, covered := coverEntries(entries, active)
	if len(chosen) != 2 {
		t.Fatalf("chosen = %v", chosen)
	}
	if chosen[0].IndexKey != "big" || chosen[1].IndexKey != "small2" {
		t.Fatalf("greedy order wrong: %s, %s", chosen[0].IndexKey, chosen[1].IndexKey)
	}
	for _, f := range []string{"a", "b", "c", "d"} {
		if !covered[f] {
			t.Fatalf("%s uncovered", f)
		}
	}
	// No active files: nothing chosen.
	chosen, _ = coverEntries(entries, map[string]bool{})
	if len(chosen) != 0 {
		t.Fatalf("chose %d entries for empty snapshot", len(chosen))
	}
}

func TestSearchLatencyAccounting(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(28)
	keys, _ := e.appendUUIDs(t, gen, 100)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	// Without a session, latency is zero but the search still works.
	res, err := e.cli.Search(ctx, uuidQuery(keys[0]))
	if err != nil || res.Stats.Latency != 0 {
		t.Fatalf("no-session latency = %v, %v", res.Stats.Latency, err)
	}
	// With an instrumented store + session, latency accumulates.
	// (env's store is bare MemStore; wrap it here.)
	clock := e.clock
	_ = clock
	sess := simtime.NewSession()
	sess.Add(time.Millisecond) // pre-existing elapsed must not leak in
	res, err = e.cli.Search(simtime.With(ctx, sess), uuidQuery(keys[0]))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Latency < 0 {
		t.Fatalf("latency = %v", res.Stats.Latency)
	}
}

func TestSearchErrorPaths(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(29)
	keys, _ := e.appendUUIDs(t, gen, 10)
	k := keys[0]
	// Unknown column.
	if _, err := e.cli.Search(ctx, Query{Column: "nope", UUID: &k, K: 1, Snapshot: -1}); err == nil {
		t.Fatal("unknown column accepted")
	}
	// Wrong kind for column.
	if _, err := e.cli.Search(ctx, Query{Column: "payload", UUID: &k, K: 1, Snapshot: -1}); err == nil {
		t.Fatal("uuid query on text column accepted")
	}
	// Nonexistent snapshot.
	if _, err := e.cli.Search(ctx, Query{Column: "id", UUID: &k, K: 1, Snapshot: 999}); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

func TestCompactBinning(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(30)
	for i := 0; i < 6; i++ {
		e.appendUUIDs(t, gen, 100)
		if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
			t.Fatal(err)
		}
	}
	// Bins of at most 3 entries: 6 entries -> 2 merged outputs.
	merged, err := e.cli.Compact(ctx, "id", component.KindTrie, CompactOptions{MaxBinEntries: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 {
		t.Fatalf("merged = %d bins", len(merged))
	}
	for _, m := range merged {
		if len(m.Files) != 3 {
			t.Fatalf("bin covers %d files", len(m.Files))
		}
	}
	// Size threshold excluding everything: no-op.
	merged, err = e.cli.Compact(ctx, "id", component.KindTrie, CompactOptions{SmallerThanBytes: 1})
	if err != nil || merged != nil {
		t.Fatalf("threshold compact: %v, %v", merged, err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(31)
	e.appendUUIDs(t, gen, 100)
	entry, err := e.cli.Index(ctx, "id", component.KindTrie)
	if err != nil {
		t.Fatal(err)
	}
	r, err := component.Open(ctx, e.store, entry.IndexKey, component.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := readManifest(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if m.Column != "id" || m.Kind != component.KindTrie || len(m.Files) != 1 {
		t.Fatalf("manifest = %+v", m)
	}
	if m.Files[0].Rows != 100 || len(m.Files[0].Pages) == 0 {
		t.Fatalf("manifest file = %+v", m.Files[0])
	}
	if m.Files[0].Pages.TotalRows() != 100 {
		t.Fatalf("page table rows = %d", m.Files[0].Pages.TotalRows())
	}
}

func TestVacuumKeepSnapshotRetainsOldIndexes(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{Timeout: time.Hour})
	gen := workload.NewUUIDGen(32)
	keys, _ := e.appendUUIDs(t, gen, 100)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	// Lake compaction replaces the file; re-index.
	e.appendUUIDs(t, gen, 100)
	if _, err := e.table.Compact(ctx, 1<<30, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(2 * time.Hour)

	// Keeping from version 2 preserves the old index (it covers old
	// snapshot files) — time travel stays fast.
	report, err := e.cli.Vacuum(ctx, VacuumOptions{KeepSnapshot: 2})
	if err != nil {
		t.Fatal(err)
	}
	if report.KeptEntries != 2 {
		t.Fatalf("kept %d entries, want both generations", report.KeptEntries)
	}
	// Old snapshot still searches via its index.
	q := uuidQuery(keys[0])
	q.Snapshot = 2
	res, err := e.cli.Search(ctx, q)
	if err != nil || len(res.Matches) != 1 {
		t.Fatalf("time-travel search: %d, %v", len(res.Matches), err)
	}
	if res.Stats.IndexFiles != 1 || res.Stats.FilesScanned != 0 {
		t.Fatalf("time-travel search fell back to scan: %+v", res.Stats)
	}

	// Keeping only latest drops the old index.
	report, err = e.cli.Vacuum(ctx, VacuumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.KeptEntries != 1 {
		t.Fatalf("latest-only vacuum kept %d", report.KeptEntries)
	}
}

func TestSubstringUnindexedTailAfterBelowMinVector(t *testing.T) {
	// ErrBelowMinRows leaves data unindexed; searches still answer
	// via scan, and once enough rows accumulate indexing succeeds.
	ctx := context.Background()
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 33, Dim: 8, Clusters: 4})
	e := newEnv(t, vecSchema(8), Config{MinVectorRows: 150})
	e.appendVectors(t, gen.Batch(100))
	if _, err := e.cli.Index(ctx, "emb", component.KindIVFPQ); err == nil {
		t.Fatal("below-min index accepted")
	}
	q := gen.Queries(1)[0]
	res, err := e.cli.Search(ctx, Query{Column: "emb", Vector: q, K: 5, Snapshot: -1})
	if err != nil || len(res.Matches) != 5 {
		t.Fatalf("scan fallback: %d, %v", len(res.Matches), err)
	}
	if res.Stats.FilesScanned != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	e.appendVectors(t, gen.Batch(100))
	if _, err := e.cli.Index(ctx, "emb", component.KindIVFPQ); err != nil {
		t.Fatalf("index after threshold: %v", err)
	}
}

func TestSearchManyConcurrentClients(t *testing.T) {
	// The shared-nothing deployment of Section VIII: independent
	// searcher processes with object storage as the only shared
	// state.
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(34)
	keys, _ := e.appendUUIDs(t, gen, 500)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	const searchers = 8
	errs := make(chan error, searchers)
	for s := 0; s < searchers; s++ {
		go func(s int) {
			cli := NewClient(e.table, Config{Clock: e.clock, IndexDir: "rottnest"})
			for i := 0; i < 10; i++ {
				res, err := cli.Search(ctx, uuidQuery(keys[(s*37+i*11)%len(keys)]))
				if err != nil {
					errs <- fmt.Errorf("searcher %d: %w", s, err)
					return
				}
				if len(res.Matches) != 1 {
					errs <- fmt.Errorf("searcher %d: %d matches", s, len(res.Matches))
					return
				}
			}
			errs <- nil
		}(s)
	}
	for s := 0; s < searchers; s++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

var tsSchema = parquet.MustSchema(
	parquet.Column{Name: "ts", Type: parquet.TypeInt64},
	parquet.Column{Name: "id", Type: parquet.TypeFixedLenByteArray, TypeLen: 16},
)

func TestPartitionPruning(t *testing.T) {
	// Time-partitioned ingest: each batch covers a disjoint hour.
	// A filtered search must touch only the matching partition's
	// files, whether answered by index or scan.
	ctx := context.Background()
	e := newEnv(t, tsSchema, Config{})
	gen := workload.NewUUIDGen(40)
	const perBatch = 200
	var keys [][16]byte
	for hour := 0; hour < 5; hour++ {
		ks := gen.Batch(perBatch)
		keys = append(keys, ks...)
		b := parquet.NewBatch(tsSchema)
		tss := make([]int64, perBatch)
		ids := make([][]byte, perBatch)
		for i := 0; i < perBatch; i++ {
			tss[i] = int64(hour*3600 + i)
			k := ks[i]
			ids[i] = k[:]
		}
		b.Cols[0] = parquet.ColumnValues{Ints: tss}
		b.Cols[1] = parquet.ColumnValues{Bytes: ids}
		if _, err := e.table.Append(ctx, b, parquet.WriterOptions{RowGroupRows: 128, PageBytes: 1024}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}

	// A key from hour 2 with a filter on hour 2: found, 4 files pruned.
	target := keys[2*perBatch+17]
	q := uuidQuery(target)
	q.Partition = &PartitionFilter{Column: "ts", Min: 2 * 3600, Max: 3*3600 - 1}
	res, err := e.cli.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("filtered search: %d matches", len(res.Matches))
	}
	if res.Stats.PrunedFiles != 4 || res.Stats.CoveredFiles != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	// Same key filtered to the WRONG hour: nothing (its file pruned).
	q.Partition = &PartitionFilter{Column: "ts", Min: 0, Max: 3599}
	res, err = e.cli.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Fatal("filter did not prune the key's partition")
	}
	// Unknown partition column errors.
	q.Partition = &PartitionFilter{Column: "nope", Min: 0, Max: 1}
	if _, err := e.cli.Search(ctx, q); err == nil {
		t.Fatal("unknown partition column accepted")
	}
	// A filter spanning everything prunes nothing.
	q.Partition = &PartitionFilter{Column: "ts", Min: 0, Max: 1 << 40}
	res, err = e.cli.Search(ctx, q)
	if err != nil || res.Stats.PrunedFiles != 0 {
		t.Fatalf("broad filter: %+v, %v", res.Stats, err)
	}
}

func TestSubstringTopKSurvivesTruncationWithDeletes(t *testing.T) {
	// The needle appears in many rows; most are then deleted. A
	// bounded FM lookup (K*8 rows) could land entirely on deleted
	// rows — the search must detect the truncation and retry
	// unbounded so the surviving matches are still found.
	ctx := context.Background()
	e := newEnv(t, textSchema, Config{})
	const n = 600
	docs := make([]string, n)
	for i := range docs {
		docs[i] = fmt.Sprintf("TruncNdl occurrence number %04d", i)
	}
	path := e.appendDocs(t, docs)
	if _, err := e.cli.Index(ctx, "body", component.KindFM); err != nil {
		t.Fatal(err)
	}
	// Delete all but the last 3 occurrences.
	var rows []uint32
	for i := 0; i < n-3; i++ {
		rows = append(rows, uint32(i))
	}
	if err := e.table.DeleteRows(ctx, path, rows); err != nil {
		t.Fatal(err)
	}
	res, err := e.cli.Search(ctx, Query{Column: "body", Substring: []byte("TruncNdl"), K: 3, Snapshot: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("matches = %d, want the 3 survivors", len(res.Matches))
	}
	for _, m := range res.Matches {
		if m.Row < n-3 {
			t.Fatalf("deleted row %d returned", m.Row)
		}
	}
}
