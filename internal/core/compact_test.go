package core

import (
	"context"
	"testing"

	"rottnest/internal/component"
	"rottnest/internal/workload"
)

// TestCompactFMIndexPreservesResults merges several FM index files
// through the full client path and verifies search equivalence.
func TestCompactFMIndexPreservesResults(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, textSchema, Config{})
	gen := workload.NewTextGen(workload.DefaultTextConfig(60))
	needles := make([]string, 4)
	for i := range needles {
		needles[i] = string(rune('A'+i)) + "lphaCompactNdl"
		docs := workload.PlantNeedle(gen.Docs(150), needles[i], []int{40, 90})
		e.appendDocs(t, docs)
		if _, err := e.cli.Index(ctx, "body", component.KindFM); err != nil {
			t.Fatal(err)
		}
	}
	// Baseline results before compaction.
	type key struct {
		path string
		row  int64
	}
	baseline := make(map[string][]key)
	for _, n := range needles {
		res, err := e.cli.Search(ctx, Query{Column: "body", Substring: []byte(n), K: 0, Snapshot: -1})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range res.Matches {
			baseline[n] = append(baseline[n], key{m.Path, m.Row})
		}
		if len(baseline[n]) != 2 {
			t.Fatalf("needle %s: %d pre-compaction matches", n, len(baseline[n]))
		}
	}

	merged, err := e.cli.Compact(ctx, "body", component.KindFM, CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 1 || len(merged[0].Files) != 4 {
		t.Fatalf("merged = %+v", merged)
	}
	if _, err := e.cli.Vacuum(ctx, VacuumOptions{}); err != nil {
		t.Fatal(err)
	}

	for _, n := range needles {
		res, err := e.cli.Search(ctx, Query{Column: "body", Substring: []byte(n), K: 0, Snapshot: -1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.IndexFiles != 1 || res.Stats.FilesScanned != 0 {
			t.Fatalf("needle %s stats = %+v", n, res.Stats)
		}
		if len(res.Matches) != len(baseline[n]) {
			t.Fatalf("needle %s: %d post-compaction matches, want %d", n, len(res.Matches), len(baseline[n]))
		}
		for i, m := range res.Matches {
			if (key{m.Path, m.Row}) != baseline[n][i] {
				t.Fatalf("needle %s match %d moved", n, i)
			}
		}
	}
}

// TestCompactVectorIndexPreservesQuality merges IVF-PQ index files
// through the client and checks searches still return close
// neighbors (the decode-and-rebuild merge costs a little recall; the
// in-situ refine step recovers exactness for returned rows).
func TestCompactVectorIndexPreservesQuality(t *testing.T) {
	ctx := context.Background()
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 61, Dim: 8, Clusters: 16, Spread: 0.2})
	e := newEnv(t, vecSchema(8), Config{})
	var all [][]float32
	for i := 0; i < 3; i++ {
		vecs := gen.Batch(400)
		all = append(all, vecs...)
		e.appendVectors(t, vecs)
		if _, err := e.cli.Index(ctx, "emb", component.KindIVFPQ); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := e.cli.Compact(ctx, "emb", component.KindIVFPQ, CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 1 || len(merged[0].Files) != 3 {
		t.Fatalf("merged = %+v", merged)
	}
	if _, err := e.cli.Vacuum(ctx, VacuumOptions{}); err != nil {
		t.Fatal(err)
	}

	queries := gen.Queries(15)
	hits := 0
	for _, q := range queries {
		res, err := e.cli.Search(ctx, Query{Column: "emb", Vector: q, K: 10, NProbe: 12, Snapshot: -1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.IndexFiles != 1 {
			t.Fatalf("stats = %+v", res.Stats)
		}
		truth := workload.ExactNearest(all, q, 1)[0]
		// The true global NN lives in file truth/400, row truth%400.
		for _, m := range res.Matches {
			// Identify by value equality (paths differ per file).
			if string(m.Value) == string(workload.Float32sToBytes(all[truth])) {
				hits++
				break
			}
		}
	}
	if hits < len(queries)*2/3 {
		t.Fatalf("true NN found for only %d/%d queries after compaction", hits, len(queries))
	}
}

// TestCompactMixedSizeThreshold leaves large index files alone.
func TestCompactMixedSizeThreshold(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(62)
	// One big batch, then two small ones.
	e.appendUUIDs(t, gen, 5000)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	big, _ := e.cli.Meta().ListFor(ctx, "id", component.KindTrie)
	bigSize := big[0].SizeBytes
	for i := 0; i < 2; i++ {
		e.appendUUIDs(t, gen, 100)
		if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
			t.Fatal(err)
		}
	}
	// Merge only entries smaller than the big one.
	merged, err := e.cli.Compact(ctx, "id", component.KindTrie, CompactOptions{SmallerThanBytes: bigSize})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 1 || len(merged[0].Files) != 2 {
		t.Fatalf("merged = %+v", merged)
	}
	entries, _ := e.cli.Meta().ListFor(ctx, "id", component.KindTrie)
	// big + 2 small + merged = 4 until vacuum.
	if len(entries) != 4 {
		t.Fatalf("entries = %d", len(entries))
	}
	report, err := e.cli.Vacuum(ctx, VacuumOptions{})
	if err != nil || report.KeptEntries != 2 { // big + merged
		t.Fatalf("vacuum: %+v, %v", report, err)
	}
}
