package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/fmindex"
	"rottnest/internal/insitu"
	"rottnest/internal/ivfpq"
	"rottnest/internal/lake"
	"rottnest/internal/meta"
	"rottnest/internal/objectstore"
	"rottnest/internal/obs"
	"rottnest/internal/parquet"
	"rottnest/internal/postings"
	"rottnest/internal/simtime"
	"rottnest/internal/trie"
)

// searchMaxReplans bounds how many times one Search replans after an
// index object it planned against is vacuumed out from under it. Each
// replan excludes the vanished index, so every retry makes progress.
const searchMaxReplans = 8

// staleIndexError marks an index file that vanished (vacuumed) after
// the search planned against it, letting the replan exclude exactly
// that entry. It unwraps to the underlying not-found error.
type staleIndexError struct {
	key string
	err error
}

func (e *staleIndexError) Error() string { return e.err.Error() }
func (e *staleIndexError) Unwrap() error { return e.err }

// Query describes one search. Exactly one of UUID, Substring, or
// Vector must be set; the index kind follows from it.
type Query struct {
	// Column is the column to search.
	Column string
	// K bounds the result count. For exact-match queries 0 means
	// "all matches" (which always scans unindexed files too); vector
	// queries require K > 0.
	K int
	// Snapshot selects the lake snapshot to search (-1 = latest).
	Snapshot int64
	// UUID is an exact-match key for a trie-indexed column.
	UUID *[16]byte
	// Substring is an exact substring pattern for an FM-indexed
	// column.
	Substring []byte
	// Regex is a regular expression for an FM-indexed column. The
	// search extracts a required literal from the pattern to drive
	// the index and re-checks the full expression in situ; patterns
	// with no usable literal fall back to scanning.
	Regex string
	// Vector is a query embedding for an IVF-PQ-indexed column.
	Vector []float32
	// NProbe is the number of coarse lists probed per vector index
	// file (default 8). Higher values raise recall and cost — the
	// recall knob of Figure 9.
	NProbe int
	// Refine is the number of candidates re-ranked against
	// full-precision vectors fetched in situ (default 4*K).
	Refine int
	// Partition optionally restricts the search to files whose
	// recorded stats overlap a structured-attribute range — the
	// paper's "normalized query" mechanism (Section VI): data
	// clustered by an attribute like timestamp lets every approach
	// touch only the matching partition.
	Partition *PartitionFilter
}

// PartitionFilter prunes the searched files by an int64 column range
// (inclusive). Pruning is file-granular: on data clustered by the
// attribute it is exact partition selection; on unclustered data it
// is best-effort (files without stats are always searched).
type PartitionFilter struct {
	Column string
	Min    int64
	Max    int64
}

func (q Query) kind() (component.Kind, error) {
	set := 0
	var kind component.Kind
	if q.UUID != nil {
		set, kind = set+1, component.KindTrie
	}
	if q.Substring != nil {
		set, kind = set+1, component.KindFM
	}
	if q.Regex != "" {
		set, kind = set+1, component.KindFM
	}
	if q.Vector != nil {
		set, kind = set+1, component.KindIVFPQ
	}
	if set != 1 {
		return 0, fmt.Errorf("core: query must set exactly one of UUID, Substring, Regex, Vector (got %d)", set)
	}
	return kind, nil
}

// Stats summarizes a search's work.
type Stats struct {
	// IndexFiles is the number of index files queried.
	IndexFiles int
	// CoveredFiles and UnindexedFiles partition the snapshot.
	CoveredFiles   int
	UnindexedFiles int
	// PagesProbed counts data pages fetched for in-situ probing.
	PagesProbed int
	// FilesScanned counts unindexed files scanned in full.
	FilesScanned int
	// PrunedFiles counts snapshot files skipped by the partition
	// filter.
	PrunedFiles int
	// Latency is the virtual latency of the search when run inside a
	// simtime session.
	Latency time.Duration
	// GETs and BytesRead are the search's object-store request
	// footprint: GET requests issued and bytes fetched, after cache
	// hits and range coalescing. Counters are store-global, so
	// concurrent operations on the same store may bleed into each
	// other's deltas.
	GETs      int64
	BytesRead int64
	// CacheHits, CacheMisses, and CacheBytesSaved report the read
	// cache's activity during this search (all zero when the cache is
	// disabled).
	CacheHits       int64
	CacheMisses     int64
	CacheBytesSaved int64
	// Retries and ThrottleWaits report the retry layer's recovery work
	// during this search (zero when retries are disabled; see
	// Config.Retry). Like GETs, the counters are store-global, so
	// concurrent operations may bleed into each other's deltas.
	Retries       int64
	ThrottleWaits int64
}

// Result is a search outcome.
type Result struct {
	Matches []insitu.Match
	Stats   Stats
}

// Search executes the protocol of Section IV-B: plan against the
// snapshot and metadata table, query covering index files in
// parallel, filter stale physical locations, probe result pages in
// situ (applying deletion vectors), and scan unindexed files when the
// indexed results cannot satisfy the query.
func (c *Client) Search(ctx context.Context, q Query) (*Result, error) {
	kind, err := q.kind()
	if err != nil {
		return nil, err
	}
	if kind == component.KindIVFPQ && q.K <= 0 {
		return nil, fmt.Errorf("core: vector queries require K > 0")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	session := simtime.From(ctx)
	startElapsed := session.Elapsed()
	var startMetrics objectstore.Snapshot
	if c.inst != nil {
		startMetrics = c.inst.Metrics().Snapshot()
	}
	var startCache objectstore.CacheStats
	if c.cache != nil {
		startCache = c.cache.Stats()
	}
	var startRetry objectstore.RetryStats
	if c.retry != nil {
		startRetry = c.retry.Stats()
	}

	snapVersion := q.Snapshot
	if snapVersion == 0 {
		snapVersion = -1
	}
	attempt := func(excluded map[string]bool) (*Result, error) {
		// The plan phase is one span on the root session: its virtual
		// duration is exactly the session time the planning round costs,
		// so sibling phase durations sum to the search latency.
		pctx, planSpan := obs.Start(ctx, "search.plan")
		defer planSpan.End()
		// Plan. The lake snapshot and the metadata table are
		// independent logs; a repeat query at a version the plan cache
		// has seen reuses both, otherwise read them in parallel so
		// planning pays one round of LIST latency, not two. Replans
		// (excluded non-empty) always go to the store: the cached plan
		// is what referenced the vanished index.
		var snap *lake.Snapshot
		var entries []meta.IndexEntry
		planCached := false
		if len(excluded) == 0 {
			if e, ok := c.plans.get(snapVersion, q.Column, kind); ok {
				snap, entries = e.snap, e.entries
				planCached = true
				planSpan.SetAttr("plan_cache", true)
			}
		}
		if !planCached {
			var snapErr, metaErr error
			session.Parallel(
				func(s *simtime.Session) {
					snap, snapErr = c.table.SnapshotAt(simtime.With(pctx, s), snapVersion)
				},
				func(s *simtime.Session) {
					entries, metaErr = c.meta.ListFor(simtime.With(pctx, s), q.Column, kind)
				},
			)
			if snapErr != nil {
				return nil, snapErr
			}
			if metaErr == nil && len(excluded) == 0 {
				c.plans.put(snap.Version, q.Column, kind, snap, entries)
			}
			if metaErr != nil {
				if _, _, err := kindForColumn(snap.Schema, q.Column, kind); err != nil {
					return nil, err
				}
				return nil, metaErr
			}
		}
		if _, _, err := kindForColumn(snap.Schema, q.Column, kind); err != nil {
			return nil, err
		}
		if len(excluded) > 0 {
			kept := entries[:0:0]
			for _, e := range entries {
				if !excluded[e.IndexKey] {
					kept = append(kept, e)
				}
			}
			entries = kept
		}
		// Regex planning: extract the required literal that drives the
		// FM-index. Patterns with no usable literal bypass the index and
		// scan (an index cannot help them).
		fmPattern := q.Substring
		if q.Regex != "" {
			lit, err := requiredLiteral(q.Regex)
			if err != nil {
				return nil, fmt.Errorf("core: bad regex: %w", err)
			}
			if len(lit) < minRegexLiteral {
				entries = nil
			}
			fmPattern = lit
		}
		// Partition pruning: restrict the searched file set before any
		// index or scan planning.
		searched := snap.Files
		if q.Partition != nil {
			if snap.Schema.ColumnIndex(q.Partition.Column) < 0 {
				return nil, fmt.Errorf("core: partition column %q not in schema: %w", q.Partition.Column, ErrBadColumn)
			}
			min := parquet.OrderableInt64(q.Partition.Min)
			max := parquet.OrderableInt64(q.Partition.Max)
			kept := searched[:0:0]
			for _, f := range searched {
				if f.MayContainRange(q.Partition.Column, min, max) {
					kept = append(kept, f)
				}
			}
			searched = kept
		}

		active := make(map[string]bool, len(searched))
		fileByPath := make(map[string]lake.DataFile, len(searched))
		for _, f := range searched {
			active[f.Path] = true
			fileByPath[f.Path] = f
		}
		chosen, covered := coverEntries(entries, active)
		var unindexed []lake.DataFile
		for _, f := range searched {
			if !covered[f.Path] {
				unindexed = append(unindexed, f)
			}
		}
		stats := Stats{IndexFiles: len(chosen), CoveredFiles: len(covered), UnindexedFiles: len(unindexed), PrunedFiles: len(snap.Files) - len(searched)}
		planSpan.SetAttr("snapshot", snap.Version)
		planSpan.SetAttr("index_files", stats.IndexFiles)
		planSpan.SetAttr("covered_files", stats.CoveredFiles)
		planSpan.SetAttr("unindexed_files", stats.UnindexedFiles)
		planSpan.SetAttr("pruned_files", stats.PrunedFiles)
		planSpan.End() // idempotent: the defer covers the early error returns

		switch kind {
		case component.KindTrie, component.KindFM:
			return c.searchExact(ctx, q, kind, fmPattern, snap, chosen, unindexed, fileByPath, &stats)
		default:
			return c.searchVector(ctx, q, snap, chosen, unindexed, fileByPath, &stats)
		}
	}
	// A vacuum may physically delete an index object after this search
	// planned against it (commit-then-delete: the metadata row goes
	// first, so by the time the object is gone the plan is stale).
	// Replan rather than failing the query, excluding the vanished
	// index so files it covered fall to another index or to the scan
	// path — either way the results stay exact.
	var result *Result
	var excluded map[string]bool
	for tries := 0; ; tries++ {
		result, err = attempt(excluded)
		var stale *staleIndexError
		if err == nil || tries >= searchMaxReplans || !errors.As(err, &stale) {
			break
		}
		if excluded == nil {
			excluded = make(map[string]bool)
		}
		excluded[stale.key] = true
		// The stale plan and any decoded forms of the vanished index
		// must not serve again.
		c.plans.invalidateAll()
		c.objc.Invalidate(stale.key)
	}
	if err != nil {
		return nil, err
	}
	result.Stats.Latency = session.Elapsed() - startElapsed
	var cacheDelta objectstore.CacheStats
	if c.cache != nil {
		cacheDelta = c.cache.Stats().Sub(startCache)
		result.Stats.CacheHits = cacheDelta.Hits
		result.Stats.CacheMisses = cacheDelta.Misses
		result.Stats.CacheBytesSaved = cacheDelta.BytesSaved
	}
	switch {
	case c.inst != nil:
		m := c.inst.Metrics().Snapshot().Sub(startMetrics)
		result.Stats.GETs = m.Gets
		result.Stats.BytesRead = m.BytesRead
	case c.cache != nil:
		// No instrumented store underneath (e.g. a bare directory
		// store): meter requests at the cache boundary instead.
		result.Stats.GETs = cacheDelta.UpstreamGets
		result.Stats.BytesRead = cacheDelta.UpstreamBytes
	}
	if c.retry != nil {
		r := c.retry.Stats().Sub(startRetry)
		result.Stats.Retries = r.Retries
		result.Stats.ThrottleWaits = r.ThrottleWaits
	}
	c.searches.Inc()
	c.pagesProbed.Add(int64(result.Stats.PagesProbed))
	c.scannedFull.Add(int64(result.Stats.FilesScanned))
	c.latencyHist.Observe(int64(result.Stats.Latency))
	return result, nil
}

// exactPred returns the in-situ re-check predicate for exact queries.
func exactPred(q Query, kind component.Kind) (insitu.Predicate, error) {
	switch {
	case kind == component.KindTrie:
		key := *q.UUID
		return func(v []byte) (bool, float64) { return bytes.Equal(v, key[:]), 0 }, nil
	case q.Regex != "":
		re, err := compileRegex(q.Regex)
		if err != nil {
			return nil, fmt.Errorf("core: bad regex: %w", err)
		}
		return func(v []byte) (bool, float64) { return re.Match(v), 0 }, nil
	default:
		pattern := q.Substring
		return func(v []byte) (bool, float64) { return bytes.Contains(v, pattern), 0 }, nil
	}
}

// probeTarget collects the pages of one snapshot file that index
// queries flagged, deduplicated by page ordinal: several indices can
// cover the same file (overlapping coverage before compaction), and
// each page should be fetched and probed once.
type probeTarget struct {
	file  lake.DataFile
	pages []parquet.PageInfo
	seen  map[int]bool
}

func (t *probeTarget) add(pages []parquet.PageInfo) {
	for _, p := range pages {
		if !t.seen[p.Ordinal] {
			t.seen[p.Ordinal] = true
			t.pages = append(t.pages, p)
		}
	}
}

// searchExact runs UUID, substring, and regex queries. fmPattern is
// the byte pattern driving FM-index lookups (the substring itself, or
// the regex's required literal).
func (c *Client) searchExact(ctx context.Context, q Query, kind component.Kind, fmPattern []byte, snap *lake.Snapshot, chosen []meta.IndexEntry, unindexed []lake.DataFile, fileByPath map[string]lake.DataFile, stats *Stats) (*Result, error) {
	session := simtime.From(ctx)
	pred, err := exactPred(q, kind)
	if err != nil {
		return nil, err
	}
	colIdx := snap.Schema.ColumnIndex(q.Column)
	col := snap.Schema.Columns[colIdx]

	// One pass of index query + in-situ probing. Bounded FM lookups
	// may truncate; the caller retries unbounded if the bounded pass
	// under-fills an exact top-K.
	runPass := func(unbounded bool) ([]insitu.Match, bool, error) {
		// Probe phase: fan the index-file queries. The span lives on the
		// root session; per-index "index.probe" children live on their
		// branch sessions.
		probeCtx, probeSpan := obs.Start(ctx, "search.probe")
		defer probeSpan.End()
		probeSpan.SetAttr("index_files", len(chosen))
		if unbounded {
			probeSpan.SetAttr("unbounded", true)
		}
		targets := make(map[string]*probeTarget)
		anyTruncated := false
		var mu sync.Mutex
		errs := make([]error, len(chosen))
		branches := make([]func(*simtime.Session), len(chosen))
		for i := range chosen {
			entry := chosen[i]
			idx := i
			branches[i] = func(s *simtime.Session) {
				bctx := probeCtx
				if s != nil {
					bctx = simtime.With(probeCtx, s)
				}
				found, truncated, err := c.queryIndexExact(bctx, entry, kind, q, fmPattern, unbounded)
				if err != nil {
					if errors.Is(err, objectstore.ErrNotFound) {
						err = &staleIndexError{key: entry.IndexKey, err: err}
					}
					errs[idx] = err
					return
				}
				mu.Lock()
				if truncated {
					anyTruncated = true
				}
				for path, pages := range found {
					f, ok := fileByPath[path]
					if !ok {
						continue // stale physical location, filtered out
					}
					t := targets[path]
					if t == nil {
						t = &probeTarget{file: f, seen: make(map[int]bool)}
						targets[path] = t
					}
					t.add(pages)
				}
				mu.Unlock()
			}
		}
		runBranches(session, c.cfg.SearchWidth, branches)
		probeSpan.End()
		for _, err := range errs {
			if err != nil {
				return nil, false, err
			}
		}

		// Read phase: in-situ probing, parallel across files.
		paths := make([]*probeTarget, 0, len(targets))
		pagesThisPass := 0
		for _, t := range targets {
			paths = append(paths, t)
			stats.PagesProbed += len(t.pages)
			pagesThisPass += len(t.pages)
		}
		readCtx, readSpan := obs.Start(ctx, "search.read")
		defer readSpan.End()
		readSpan.SetAttr("files", len(paths))
		readSpan.SetAttr("pages", pagesThisPass)
		probeErrs := make([]error, len(paths))
		probeOut := make([][]insitu.Match, len(paths))
		branches = make([]func(*simtime.Session), len(paths))
		for i := range paths {
			t := paths[i]
			idx := i
			branches[i] = func(s *simtime.Session) {
				bctx := readCtx
				if s != nil {
					bctx = simtime.With(readCtx, s)
				}
				dv, err := c.readDV(bctx, t.file)
				if err != nil {
					probeErrs[idx] = err
					return
				}
				probeOut[idx], probeErrs[idx] = insitu.ProbePages(bctx, c.store, c.table.Root()+t.file.Path, col, t.file.Path, t.pages, dv, pred)
			}
		}
		runBranches(session, c.cfg.SearchWidth, branches)
		readSpan.End()
		for _, err := range probeErrs {
			if err != nil {
				return nil, false, err
			}
		}
		var matches []insitu.Match
		for _, m := range probeOut {
			matches = append(matches, m...)
		}
		return matches, anyTruncated, nil
	}

	matches, truncated, err := runPass(false)
	if err != nil {
		return nil, err
	}
	if q.K > 0 && len(matches) < q.K && truncated {
		// The bounded sample under-filled K (deleted rows or page
		// false positives): retry unbounded for exact top-K.
		matches, _, err = runPass(true)
		if err != nil {
			return nil, err
		}
	}

	// Scan unindexed files when the indexed results cannot satisfy
	// the query (Section IV-B step 3).
	needScan := len(unindexed) > 0 && (q.K <= 0 || len(matches) < q.K)
	if needScan {
		scanned, err := c.scanFiles(ctx, unindexed, colIdx, pred)
		if err != nil {
			return nil, err
		}
		matches = append(matches, scanned...)
		stats.FilesScanned = len(unindexed)
	}

	insitu.SortMatches(matches)
	if q.K > 0 && len(matches) > q.K {
		matches = matches[:q.K]
	}
	return &Result{Matches: matches, Stats: *stats}, nil
}

// queryIndexExact opens one index file and returns path -> page infos
// for the query key/pattern. The manifest (component 0) is fetched in
// parallel with the index probe itself.
func (c *Client) queryIndexExact(ctx context.Context, entry meta.IndexEntry, kind component.Kind, q Query, fmPattern []byte, unbounded bool) (map[string][]parquet.PageInfo, bool, error) {
	ctx, span := obs.Start(ctx, "index.probe")
	defer span.End()
	span.SetAttr("index", entry.IndexKey)
	span.SetAttr("kind", kind.String())
	r, err := c.openReader(ctx, entry.IndexKey)
	if err != nil {
		return nil, false, err
	}
	session := simtime.From(ctx)
	var manifest *Manifest
	var refs []postings.PageRef
	var truncated bool
	var mErr, qErr error
	branches := []func(*simtime.Session){
		func(s *simtime.Session) {
			bctx := ctx
			if s != nil {
				bctx = simtime.With(ctx, s)
			}
			manifest, mErr = c.manifest(bctx, r)
		},
		func(s *simtime.Session) {
			bctx := ctx
			if s != nil {
				bctx = simtime.With(ctx, s)
			}
			switch kind {
			case component.KindTrie:
				var ix *trie.Index
				ix, qErr = c.openTrie(bctx, r)
				if qErr == nil {
					refs, qErr = ix.Lookup(bctx, *q.UUID)
				}
			default:
				var ix *fmindex.Index
				ix, qErr = c.openFM(bctx, r)
				if qErr == nil {
					maxRows := 0
					if q.K > 0 && q.Regex == "" && !unbounded {
						// Over-fetch to survive page-level false
						// positives and deleted rows. Regex queries
						// read all literal hits: the literal may be
						// far more common than the full pattern.
						maxRows = q.K * 8
					}
					refs, truncated, qErr = ix.LookupBounded(bctx, fmPattern, maxRows)
				}
			}
		},
	}
	runBranches(session, c.cfg.SearchWidth, branches)
	if mErr != nil {
		return nil, false, mErr
	}
	if qErr != nil {
		return nil, false, qErr
	}
	out := make(map[string][]parquet.PageInfo)
	for _, ref := range refs {
		if int(ref.File) >= len(manifest.Files) {
			continue
		}
		mf := manifest.Files[ref.File]
		if int(ref.Page) >= len(mf.Pages) {
			continue
		}
		out[mf.Path] = append(out[mf.Path], mf.Pages[ref.Page])
	}
	span.SetAttr("refs", len(refs))
	if truncated {
		span.SetAttr("truncated", true)
	}
	return out, truncated, nil
}

// scanFiles scans unindexed files in parallel with the predicate, as
// one "search.scan" phase span.
func (c *Client) scanFiles(ctx context.Context, files []lake.DataFile, colIdx int, pred insitu.Predicate) ([]insitu.Match, error) {
	ctx, span := obs.Start(ctx, "search.scan")
	defer span.End()
	span.SetAttr("files", len(files))
	session := simtime.From(ctx)
	outs := make([][]insitu.Match, len(files))
	errs := make([]error, len(files))
	branches := make([]func(*simtime.Session), len(files))
	for i := range files {
		f := files[i]
		idx := i
		branches[i] = func(s *simtime.Session) {
			bctx := ctx
			if s != nil {
				bctx = simtime.With(ctx, s)
			}
			dv, err := c.readDV(bctx, f)
			if err != nil {
				errs[idx] = err
				return
			}
			outs[idx], errs[idx] = insitu.ScanFile(bctx, c.store, c.table.Root()+f.Path, colIdx, f.Path, dv, pred)
		}
	}
	runBranches(session, c.cfg.SearchWidth, branches)
	var all []insitu.Match
	for i := range files {
		if errs[i] != nil {
			return nil, errs[i]
		}
		all = append(all, outs[i]...)
	}
	return all, nil
}

// runBranches executes branches in parallel on the session in waves
// of at most width (a Rottnest search runs on one instance, so its
// request concurrency is bounded). Session methods are nil-safe: with
// no session the branches still run concurrently, just without
// virtual-time accounting.
func runBranches(session *simtime.Session, width int, branches []func(*simtime.Session)) {
	if len(branches) == 0 {
		return
	}
	session.ParallelN(len(branches), width, func(i int, s *simtime.Session) {
		branches[i](s)
	})
}

// vecCandidate is one vector candidate resolved to a physical
// location.
type vecCandidate struct {
	file   lake.DataFile
	page   parquet.PageInfo
	row    int64 // file-global row
	approx float32
}

// searchVector runs ANN queries: index probe, in-situ refine, and
// exhaustive scoring of unindexed files (scoring queries must rank
// all data).
func (c *Client) searchVector(ctx context.Context, q Query, snap *lake.Snapshot, chosen []meta.IndexEntry, unindexed []lake.DataFile, fileByPath map[string]lake.DataFile, stats *Stats) (*Result, error) {
	session := simtime.From(ctx)
	nprobe := q.NProbe
	if nprobe <= 0 {
		nprobe = 8
	}
	refine := q.Refine
	if refine <= 0 {
		refine = 4 * q.K
	}
	if refine < q.K {
		refine = q.K
	}

	// Probe phase: query all chosen vector index files in parallel.
	probeCtx, probeSpan := obs.Start(ctx, "search.probe")
	defer probeSpan.End()
	probeSpan.SetAttr("index_files", len(chosen))
	probeSpan.SetAttr("nprobe", nprobe)
	candLists := make([][]vecCandidate, len(chosen))
	errs := make([]error, len(chosen))
	branches := make([]func(*simtime.Session), len(chosen))
	for i := range chosen {
		entry := chosen[i]
		idx := i
		branches[i] = func(s *simtime.Session) {
			bctx := probeCtx
			if s != nil {
				bctx = simtime.With(probeCtx, s)
			}
			candLists[idx], errs[idx] = c.queryIndexVector(bctx, entry, q.Vector, nprobe, refine, fileByPath)
			if errs[idx] != nil && errors.Is(errs[idx], objectstore.ErrNotFound) {
				errs[idx] = &staleIndexError{key: entry.IndexKey, err: errs[idx]}
			}
		}
	}
	runBranches(session, c.cfg.SearchWidth, branches)
	probeSpan.End()
	var cands []vecCandidate
	for i := range chosen {
		if errs[i] != nil {
			return nil, errs[i]
		}
		cands = append(cands, candLists[i]...)
	}

	// Keep the best `refine` candidates by approximate distance.
	sortVecCandidates(cands)
	if len(cands) > refine {
		cands = cands[:refine]
	}

	// Read phase: fetch the candidate pages in situ and score exactly.
	readCtx, readSpan := obs.Start(ctx, "search.read")
	defer readSpan.End()
	readSpan.SetAttr("candidates", len(cands))
	matches, pages, err := c.refineCandidates(readCtx, q, snap, cands)
	readSpan.SetAttr("pages", pages)
	readSpan.End()
	if err != nil {
		return nil, err
	}
	stats.PagesProbed += pages

	// Unindexed files must be scanned exhaustively for scoring
	// queries.
	if len(unindexed) > 0 {
		colIdx := snap.Schema.ColumnIndex(q.Column)
		dim := len(q.Vector)
		pred := func(v []byte) (bool, float64) {
			vec := decodeVector(v, dim)
			return true, float64(ivfpq.L2Sq(q.Vector, vec))
		}
		scanned, err := c.scanFiles(ctx, unindexed, colIdx, pred)
		if err != nil {
			return nil, err
		}
		matches = append(matches, scanned...)
		stats.FilesScanned = len(unindexed)
	}

	insitu.SortByScore(matches)
	if len(matches) > q.K {
		matches = matches[:q.K]
	}
	return &Result{Matches: matches, Stats: *stats}, nil
}

// queryIndexVector opens one vector index file, probes it, and
// resolves candidates to snapshot files and pages.
func (c *Client) queryIndexVector(ctx context.Context, entry meta.IndexEntry, vec []float32, nprobe, maxCands int, fileByPath map[string]lake.DataFile) ([]vecCandidate, error) {
	ctx, span := obs.Start(ctx, "index.probe")
	defer span.End()
	span.SetAttr("index", entry.IndexKey)
	span.SetAttr("kind", component.KindIVFPQ.String())
	r, err := c.openReader(ctx, entry.IndexKey)
	if err != nil {
		return nil, err
	}
	session := simtime.From(ctx)
	var manifest *Manifest
	var raw []ivfpq.Candidate
	var mErr, qErr error
	branches := []func(*simtime.Session){
		func(s *simtime.Session) {
			bctx := ctx
			if s != nil {
				bctx = simtime.With(ctx, s)
			}
			manifest, mErr = c.manifest(bctx, r)
		},
		func(s *simtime.Session) {
			bctx := ctx
			if s != nil {
				bctx = simtime.With(ctx, s)
			}
			var ix *ivfpq.Index
			ix, qErr = c.openIVF(bctx, r)
			if qErr == nil {
				raw, qErr = ix.Search(bctx, vec, nprobe, maxCands)
			}
		},
	}
	runBranches(session, c.cfg.SearchWidth, branches)
	if mErr != nil {
		return nil, mErr
	}
	if qErr != nil {
		return nil, qErr
	}
	var out []vecCandidate
	for _, cand := range raw {
		if int(cand.Ref.File) >= len(manifest.Files) {
			continue
		}
		mf := manifest.Files[cand.Ref.File]
		f, ok := fileByPath[mf.Path]
		if !ok {
			continue // stale physical location
		}
		pi := mf.Pages.FindRow(cand.Ref.Row)
		if pi < 0 {
			continue
		}
		out = append(out, vecCandidate{file: f, page: mf.Pages[pi], row: cand.Ref.Row, approx: cand.Dist})
	}
	span.SetAttr("candidates", len(out))
	return out, nil
}

// refineCandidates fetches candidate pages per file (one parallel fan
// per file, files in parallel) and scores the exact rows.
func (c *Client) refineCandidates(ctx context.Context, q Query, snap *lake.Snapshot, cands []vecCandidate) ([]insitu.Match, int, error) {
	session := simtime.From(ctx)
	colIdx := snap.Schema.ColumnIndex(q.Column)
	col := snap.Schema.Columns[colIdx]
	dim := len(q.Vector)

	// Candidate pages are deduplicated by ordinal as they accumulate:
	// several candidates usually land on the same page, and each page
	// should be fetched and probed once.
	type fileGroup struct {
		file  lake.DataFile
		pages []parquet.PageInfo
		rows  map[int64]bool
		seen  map[int]bool
	}
	groups := make(map[string]*fileGroup)
	for _, cand := range cands {
		g := groups[cand.file.Path]
		if g == nil {
			g = &fileGroup{file: cand.file, rows: make(map[int64]bool), seen: make(map[int]bool)}
			groups[cand.file.Path] = g
		}
		if !g.seen[cand.page.Ordinal] {
			g.seen[cand.page.Ordinal] = true
			g.pages = append(g.pages, cand.page)
		}
		g.rows[cand.row] = true
	}
	ordered := make([]*fileGroup, 0, len(groups))
	totalPages := 0
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	outs := make([][]insitu.Match, len(ordered))
	errs := make([]error, len(ordered))
	branches := make([]func(*simtime.Session), len(ordered))
	for i := range ordered {
		g := ordered[i]
		idx := i
		branches[i] = func(s *simtime.Session) {
			bctx := ctx
			if s != nil {
				bctx = simtime.With(ctx, s)
			}
			dv, err := c.readDV(bctx, g.file)
			if err != nil {
				errs[idx] = err
				return
			}
			pred := func(v []byte) (bool, float64) {
				return true, float64(ivfpq.L2Sq(q.Vector, decodeVector(v, dim)))
			}
			all, err := insitu.ProbePages(bctx, c.store, c.table.Root()+g.file.Path, col, g.file.Path, g.pages, dv, pred)
			if err != nil {
				errs[idx] = err
				return
			}
			// Keep only the candidate rows.
			kept := all[:0]
			for _, m := range all {
				if g.rows[m.Row] {
					kept = append(kept, m)
				}
			}
			outs[idx] = kept
		}
	}
	runBranches(session, c.cfg.SearchWidth, branches)
	var matches []insitu.Match
	for i := range ordered {
		if errs[i] != nil {
			return nil, 0, errs[i]
		}
		matches = append(matches, outs[i]...)
		totalPages += len(ordered[i].pages)
	}
	return matches, totalPages, nil
}

func sortVecCandidates(cands []vecCandidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].approx != cands[j].approx {
			return cands[i].approx < cands[j].approx
		}
		if cands[i].file.Path != cands[j].file.Path {
			return cands[i].file.Path < cands[j].file.Path
		}
		return cands[i].row < cands[j].row
	})
}
