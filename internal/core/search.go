package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/insitu"
	"rottnest/internal/lake"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
)

// searchMaxReplans bounds how many times one Search replans after an
// index object it planned against is vacuumed out from under it. Each
// replan excludes the vanished index, so every retry makes progress.
const searchMaxReplans = 8

// staleIndexError marks an index file that vanished (vacuumed) after
// the search planned against it, letting the replan exclude exactly
// that entry. It unwraps to the underlying not-found error.
type staleIndexError struct {
	key string
	err error
}

func (e *staleIndexError) Error() string { return e.err.Error() }
func (e *staleIndexError) Unwrap() error { return e.err }

// Query describes one search. Exactly one of UUID, Substring, or
// Vector must be set; the index kind follows from it.
type Query struct {
	// Column is the column to search.
	Column string
	// K bounds the result count. For exact-match queries 0 means
	// "all matches" (which always scans unindexed files too); vector
	// queries require K > 0.
	K int
	// Snapshot selects the lake snapshot to search (-1 = latest).
	Snapshot int64
	// UUID is an exact-match key for a trie-indexed column.
	UUID *[16]byte
	// Substring is an exact substring pattern for an FM-indexed
	// column.
	Substring []byte
	// Regex is a regular expression for an FM-indexed column. The
	// search extracts a required literal from the pattern to drive
	// the index and re-checks the full expression in situ; patterns
	// with no usable literal fall back to scanning.
	Regex string
	// Vector is a query embedding for an IVF-PQ-indexed column.
	Vector []float32
	// NProbe is the number of coarse lists probed per vector index
	// file (default 8). Higher values raise recall and cost — the
	// recall knob of Figure 9.
	NProbe int
	// Refine is the number of candidates re-ranked against
	// full-precision vectors fetched in situ (default 4*K).
	Refine int
	// Partition optionally restricts the search to files whose
	// recorded stats overlap a structured-attribute range — the
	// paper's "normalized query" mechanism (Section VI): data
	// clustered by an attribute like timestamp lets every approach
	// touch only the matching partition.
	Partition *PartitionFilter
	// FileRange optionally restricts the search to a contiguous
	// path range of the snapshot's files — the shard-scoped view the
	// scatter-gather router fans out (internal/shard). Nil searches
	// the whole snapshot.
	FileRange *FileRange
}

// FileRange selects snapshot files whose path lies in the half-open
// interval [Start, End); an empty Start means "from the beginning"
// and an empty End means "to the end". Ranges produced by the shard
// partitioner are disjoint and cover the whole snapshot, so a union
// of per-range results equals the unrestricted search.
type FileRange struct {
	Start string
	End   string
}

// Contains reports whether path falls inside the range. A nil range
// contains everything.
func (r *FileRange) Contains(path string) bool {
	if r == nil {
		return true
	}
	return path >= r.Start && (r.End == "" || path < r.End)
}

// PartitionFilter prunes the searched files by an int64 column range
// (inclusive). Pruning is file-granular: on data clustered by the
// attribute it is exact partition selection; on unclustered data it
// is best-effort (files without stats are always searched).
type PartitionFilter struct {
	Column string
	Min    int64
	Max    int64
}

func (q Query) kind() (component.Kind, error) {
	set := 0
	var kind component.Kind
	if q.UUID != nil {
		set, kind = set+1, component.KindTrie
	}
	if q.Substring != nil {
		set, kind = set+1, component.KindFM
	}
	if q.Regex != "" {
		set, kind = set+1, component.KindFM
	}
	if q.Vector != nil {
		set, kind = set+1, component.KindIVFPQ
	}
	if set != 1 {
		return 0, fmt.Errorf("core: query must set exactly one of UUID, Substring, Regex, Vector (got %d)", set)
	}
	return kind, nil
}

// Stats summarizes a search's work.
type Stats struct {
	// IndexFiles is the number of index files queried.
	IndexFiles int
	// CoveredFiles and UnindexedFiles partition the snapshot.
	CoveredFiles   int
	UnindexedFiles int
	// PagesProbed counts data pages fetched for in-situ probing.
	PagesProbed int
	// PagesCandidate counts pages (or vector candidates) the indices
	// nominated before the plan's set algebra ran; PagesPruned is how
	// many of those the intersection discarded without a fetch. For
	// single-predicate plans the two are equal and zero respectively.
	PagesCandidate int
	PagesPruned    int
	// FilesScanned counts unindexed files scanned in full.
	FilesScanned int
	// PrunedFiles counts snapshot files skipped by the partition
	// filter.
	PrunedFiles int
	// ProbesCoalesced counts index probes this search answered from
	// the shared-probe batcher (joined an identical in-flight probe or
	// hit its memo) instead of walking the index. Like GETs the
	// counter is client-global, so concurrent searches may bleed into
	// each other's deltas.
	ProbesCoalesced int64
	// OrderedAND reports that the probe phase staged this plan's
	// top-level AND children by estimated cost: cheap children (trie
	// walks, memoized probes, unindexed leaves) probed first, expensive
	// ones only if the cheap intersection left any file alive.
	OrderedAND bool
	// ShortCircuited reports that the cheap stage emptied the page-set
	// intersection for every searched file, so the expensive AND
	// branches were never probed. LeavesSkipped counts the (leaf,
	// index) probes skipped that way.
	ShortCircuited bool
	LeavesSkipped  int
	// Latency is the virtual latency of the search when run inside a
	// simtime session.
	Latency time.Duration
	// GETs and BytesRead are the search's object-store request
	// footprint: GET requests issued and bytes fetched, after cache
	// hits and range coalescing. Counters are store-global, so
	// concurrent operations on the same store may bleed into each
	// other's deltas.
	GETs      int64
	BytesRead int64
	// CacheHits, CacheMisses, and CacheBytesSaved report the read
	// cache's activity during this search (all zero when the cache is
	// disabled).
	CacheHits       int64
	CacheMisses     int64
	CacheBytesSaved int64
	// Retries and ThrottleWaits report the retry layer's recovery work
	// during this search (zero when retries are disabled; see
	// Config.Retry). Like GETs, the counters are store-global, so
	// concurrent operations may bleed into each other's deltas.
	Retries       int64
	ThrottleWaits int64
}

// Result is a search outcome.
type Result struct {
	Matches []insitu.Match
	Stats   Stats

	// heat is the final attempt's per-unit plan resolution, reported
	// to the client's HeatObserver (if any) by searchTree.
	heat []QueryHeat
}

// Search executes the protocol of Section IV-B: plan against the
// snapshot and metadata table, query covering index files in
// parallel, filter stale physical locations, probe result pages in
// situ (applying deletion vectors), and scan unindexed files when the
// indexed results cannot satisfy the query.
//
// A single-predicate Query is the degenerate one-leaf compound tree;
// every search runs through the compound planner (SearchCompound), so
// the two paths cannot drift.
func (c *Client) Search(ctx context.Context, q Query) (*Result, error) {
	cq, err := q.compound()
	if err != nil {
		return nil, err
	}
	return c.SearchCompound(ctx, cq)
}

// runBranches executes branches in parallel on the session in waves
// of at most width (a Rottnest search runs on one instance, so its
// request concurrency is bounded). Session methods are nil-safe: with
// no session the branches still run concurrently, just without
// virtual-time accounting.
func runBranches(session *simtime.Session, width int, branches []func(*simtime.Session)) {
	if len(branches) == 0 {
		return
	}
	session.ParallelN(len(branches), width, func(i int, s *simtime.Session) {
		branches[i](s)
	})
}

// vecCandidate is one vector candidate resolved to a physical
// location.
type vecCandidate struct {
	file   lake.DataFile
	page   parquet.PageInfo
	row    int64 // file-global row
	approx float32
}

func sortVecCandidates(cands []vecCandidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].approx != cands[j].approx {
			return cands[i].approx < cands[j].approx
		}
		if cands[i].file.Path != cands[j].file.Path {
			return cands[i].file.Path < cands[j].file.Path
		}
		return cands[i].row < cands[j].row
	})
}
