package core

import (
	"context"
	"testing"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/parquet"
	"rottnest/internal/workload"
)

// TestPaperFigure3And4Example replays the running example of the
// paper's Figures 3 and 4 step by step:
//
//   - a.parquet and b.parquet, c.parquet exist; an index file
//     ("09xf") covers a+b+c;
//   - the lake compacts b+c into d.parquet, and an update adds
//     e.parquet plus a deletion vector on a.parquet;
//   - `index` covers exactly the new data files {d, e} with one new
//     index file ("ac02") — not the deletion vector;
//   - `search` queries both index files, filters physical locations
//     not in the snapshot (b, c), probes in situ applying dv.bin, and
//     touches no unindexed files;
//   - after f.parquet lands un-indexed, search scans exactly f when
//     the indexed results cannot satisfy the query.
func TestPaperFigure3And4Example(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{Timeout: time.Hour})
	gen := workload.NewUUIDGen(80)

	// a, b, c land and are indexed by "09xf".
	keysA, pathA := e.appendUUIDs(t, gen, 120)
	keysB, pathB := e.appendUUIDs(t, gen, 120)
	keysC, _ := e.appendUUIDs(t, gen, 120)
	first, err := e.cli.Index(ctx, "id", component.KindTrie)
	if err != nil || len(first.Files) != 3 {
		t.Fatalf("09xf covers %v, %v", first, err)
	}

	// Lake compaction merges b+c into d; an update appends e and
	// deletes one row of a via dv.bin.
	if err := e.table.DeleteRows(ctx, pathB, nil); err != nil {
		t.Fatal(err) // no-op delete keeps b eligible; just exercises the path
	}
	// Compact only b and c: use the size threshold trick — delete a
	// from compaction scope by making it large is overkill; compact
	// everything except a by removing a's eligibility via threshold
	// is not expressible, so compact all three (the protocol does not
	// care which files the lake rewrites).
	newPaths, err := e.table.Compact(ctx, 1<<30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(newPaths) != 1 {
		t.Fatalf("compacted into %v", newPaths)
	}
	pathD := newPaths[0]
	keysE, pathE := e.appendUUIDs(t, gen, 120)
	// dv.bin on d: delete the row holding keysA[0] (a was folded into
	// d by the compaction; the paper's dv applies to a live file).
	vals, _, _, err := parquet.ScanColumn(ctx, e.store, e.table.Root()+pathD, 0)
	if err != nil {
		t.Fatal(err)
	}
	deletedKey := keysA[0]
	for i, v := range vals.Bytes {
		if string(v) == string(deletedKey[:]) {
			if err := e.table.DeleteRows(ctx, pathD, []uint32{uint32(i)}); err != nil {
				t.Fatal(err)
			}
			break
		}
	}

	// Step "index": the plan finds {d, e} new (a, b, c covered;
	// dv.bin is not a data file) and builds one file covering both.
	second, err := e.cli.Index(ctx, "id", component.KindTrie)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Files) != 2 {
		t.Fatalf("ac02 covers %d files, want {d, e}", len(second.Files))
	}
	coveredDE := map[string]bool{second.Files[0]: true, second.Files[1]: true}
	if !coveredDE[pathD] || !coveredDE[pathE] {
		t.Fatalf("ac02 covers %v, want {%s, %s}", second.Files, pathD, pathE)
	}

	// Step "search": keys from every era are found; the deleted row
	// is not; both index files participate; nothing is scanned.
	for _, probe := range []struct {
		key  [16]byte
		want int
	}{
		{keysA[1], 1}, // now physically in d, found via ac02
		{keysB[5], 1},
		{keysC[5], 1},
		{keysE[5], 1},
		{deletedKey, 0}, // masked by dv.bin
	} {
		res, err := e.cli.Search(ctx, uuidQuery(probe.key))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != probe.want {
			t.Fatalf("key %x: %d matches, want %d", probe.key[:4], len(res.Matches), probe.want)
		}
		if res.Stats.FilesScanned != 0 {
			t.Fatalf("fully indexed search scanned files: %+v", res.Stats)
		}
	}
	// The stale index ("09xf") covers no snapshot file, so the greedy
	// cover picks only ac02.
	res, err := e.cli.Search(ctx, uuidQuery(keysB[5]))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IndexFiles != 1 {
		t.Fatalf("search touched %d index files, want just ac02", res.Stats.IndexFiles)
	}
	// pathA is gone from the snapshot; no result may reference it.
	for _, m := range res.Matches {
		if m.Path == pathA {
			t.Fatal("stale physical location leaked into results")
		}
	}

	// Figure 4's epilogue: f.parquet lands un-indexed; a search for
	// its keys falls back to scanning exactly f.
	keysF, pathF := e.appendUUIDs(t, gen, 120)
	res, err = e.cli.Search(ctx, uuidQuery(keysF[3]))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].Path != pathF {
		t.Fatalf("unindexed key: %+v", res.Matches)
	}
	if res.Stats.FilesScanned != 1 || res.Stats.UnindexedFiles != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if err := e.cli.CheckExistence(ctx); err != nil {
		t.Fatal(err)
	}
}
