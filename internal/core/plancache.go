package core

import (
	"sync"
	"sync/atomic"

	"rottnest/internal/component"
	"rottnest/internal/lake"
	"rottnest/internal/meta"
	"rottnest/internal/obs"
)

// defaultPlanTTLVersions is how many lake versions behind the latest
// known commit a cached plan may trail before it is pruned.
const defaultPlanTTLVersions = 8

// planKey identifies one resolved search plan: the lake version it
// was planned against plus the (column, kind) pair that selected the
// metadata listing.
type planKey struct {
	version int64
	column  string
	kind    component.Kind
}

// planEntry is a cached planning round: the snapshot and the metadata
// listing that together cost the search its LIST round. Both are
// treated as immutable by the search path (filters copy before
// trimming), so one entry serves any number of concurrent queries.
type planEntry struct {
	snap    *lake.Snapshot
	entries []meta.IndexEntry
}

// compoundKey identifies one compound plan: the lake version plus the
// full canonical expression key (planShape.key). Keying on the whole
// normalized tree is load-bearing: the cached listings are aligned to
// the tree's probe units, so two different trees over the same columns
// must never share an entry.
type compoundKey struct {
	version int64
	expr    string
}

// compoundEntry is one compound planning round: the snapshot plus one
// metadata listing per probe unit, in planUnits order.
type compoundEntry struct {
	snap     *lake.Snapshot
	listings [][]meta.IndexEntry
}

// planCache memoizes planning rounds keyed by resolved snapshot
// version. Safety comes from version keying, not freshness: a pinned
// version's snapshot is immutable, and a stale metadata listing can
// only under-use indices (files fall to the scan path) or reference a
// vacuumed index file — which the search already self-heals via
// staleIndexError, and every replan bypasses this cache. The latest
// version is advanced by lake commit hooks (forward-only: commits may
// report out of order, and versions are monotone, so max is correct),
// letting repeat latest-snapshot queries skip the planning LIST
// entirely.
type planCache struct {
	ttl int64
	gen atomic.Int64

	hits          *obs.Counter
	misses        *obs.Counter
	invalidations *obs.Counter
	entries       *obs.Gauge

	mu        sync.Mutex
	latest    int64
	plans     map[planKey]planEntry
	compounds map[compoundKey]compoundEntry
}

// newPlanCache returns a plan cache keeping entries within ttl
// versions of the latest known commit (<= 0 means the default),
// registering its counters under "search.plan_cache_*" in reg.
func newPlanCache(ttl int, reg *obs.Registry) *planCache {
	if ttl <= 0 {
		ttl = defaultPlanTTLVersions
	}
	return &planCache{
		ttl:           int64(ttl),
		hits:          reg.Counter("search.plan_cache_hits"),
		misses:        reg.Counter("search.plan_cache_misses"),
		invalidations: reg.Counter("search.plan_cache_invalidations"),
		entries:       reg.Gauge("search.plan_cache_entries"),
		plans:         make(map[planKey]planEntry),
		compounds:     make(map[compoundKey]compoundEntry),
	}
}

// get returns the cached plan for the key; version < 0 resolves to
// the latest hook-reported version (a miss when no commit has been
// observed yet). Nil-safe.
func (p *planCache) get(version int64, column string, kind component.Kind) (planEntry, bool) {
	if p == nil {
		return planEntry{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if version < 0 {
		if p.latest <= 0 {
			p.misses.Inc()
			return planEntry{}, false
		}
		version = p.latest
	}
	e, ok := p.plans[planKey{version, column, kind}]
	if ok {
		p.hits.Inc()
	} else {
		p.misses.Inc()
	}
	return e, ok
}

// put stores a resolved plan and advances the latest pointer to its
// version if newer. Nil-safe.
func (p *planCache) put(version int64, column string, kind component.Kind, snap *lake.Snapshot, entries []meta.IndexEntry) {
	if p == nil || version <= 0 {
		return
	}
	p.mu.Lock()
	if version > p.latest {
		p.latest = version
	}
	p.plans[planKey{version, column, kind}] = planEntry{snap: snap, entries: entries}
	p.pruneLocked()
	p.mu.Unlock()
}

// peek is get without hit/miss accounting or version resolution: the
// compound planner resolves the version once, then peeks every probe
// unit's listing, counting one hit or miss for the whole round.
// Nil-safe.
func (p *planCache) peek(version int64, column string, kind component.Kind) (planEntry, bool) {
	if p == nil {
		return planEntry{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.plans[planKey{version, column, kind}]
	return e, ok
}

// resolveVersion maps the caller's requested version to a cache key:
// negative (latest) resolves through the hook-maintained pointer,
// returning 0 when no commit has been observed. Nil-safe.
func (p *planCache) resolveVersion(version int64) int64 {
	if p == nil {
		return 0
	}
	if version >= 0 {
		return version
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.latest
}

// getCompound returns the cached compound plan for (version, expr).
// The entry must carry exactly units listings (a defensive check: a
// shape change across processes cannot happen under one key, but a
// mismatched entry must never misalign probe units). Non-counting;
// nil-safe.
func (p *planCache) getCompound(version int64, expr string, units int) (compoundEntry, bool) {
	if p == nil {
		return compoundEntry{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if version < 0 {
		if p.latest <= 0 {
			return compoundEntry{}, false
		}
		version = p.latest
	}
	e, ok := p.compounds[compoundKey{version, expr}]
	if ok && len(e.listings) != units {
		return compoundEntry{}, false
	}
	return e, ok
}

// putCompound stores a compound planning round and advances the latest
// pointer to its version if newer. Nil-safe.
func (p *planCache) putCompound(version int64, expr string, snap *lake.Snapshot, listings [][]meta.IndexEntry) {
	if p == nil || version <= 0 {
		return
	}
	p.mu.Lock()
	if version > p.latest {
		p.latest = version
	}
	p.compounds[compoundKey{version, expr}] = compoundEntry{snap: snap, listings: listings}
	p.pruneLocked()
	p.mu.Unlock()
}

// noteHit and noteMiss record one planning round's cache outcome (the
// compound planner counts per round, not per listing). Nil-safe.
func (p *planCache) noteHit() {
	if p == nil {
		return
	}
	p.hits.Inc()
}

func (p *planCache) noteMiss() {
	if p == nil {
		return
	}
	p.misses.Inc()
}

// noteCommit advances the latest pointer (forward-only) from a lake
// commit hook and prunes plans that fell out of the TTL window.
// Nil-safe.
func (p *planCache) noteCommit(version int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if version > p.latest {
		p.latest = version
	}
	p.pruneLocked()
	p.mu.Unlock()
}

func (p *planCache) pruneLocked() {
	for k := range p.plans {
		if k.version < p.latest-p.ttl {
			delete(p.plans, k)
		}
	}
	for k := range p.compounds {
		if k.version < p.latest-p.ttl {
			delete(p.compounds, k)
		}
	}
	p.entries.Set(int64(len(p.plans) + len(p.compounds)))
}

// invalidateAll drops every cached plan and bumps the generation.
// Metadata-table writers (index commit, compact commit, vacuum) call
// it: the meta table is a separate log from the lake, so its changes
// do not move the version key. Nil-safe.
func (p *planCache) invalidateAll() {
	if p == nil {
		return
	}
	p.gen.Add(1)
	p.invalidations.Inc()
	p.mu.Lock()
	p.plans = make(map[planKey]planEntry)
	p.compounds = make(map[compoundKey]compoundEntry)
	p.entries.Set(0)
	p.mu.Unlock()
}

// generation returns the invalidation count (tests assert hooks fire
// by watching it). Nil-safe.
func (p *planCache) generation() int64 {
	if p == nil {
		return 0
	}
	return p.gen.Load()
}

// latestVersion returns the hook-maintained latest commit version (0
// when none observed). Nil-safe.
func (p *planCache) latestVersion() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.latest
}
