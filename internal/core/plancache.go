package core

import (
	"sync"
	"sync/atomic"

	"rottnest/internal/component"
	"rottnest/internal/lake"
	"rottnest/internal/meta"
	"rottnest/internal/obs"
)

// defaultPlanTTLVersions is how many lake versions behind the latest
// known commit a cached plan may trail before it is pruned.
const defaultPlanTTLVersions = 8

// planKey identifies one resolved search plan: the lake version it
// was planned against plus the (column, kind) pair that selected the
// metadata listing.
type planKey struct {
	version int64
	column  string
	kind    component.Kind
}

// planEntry is a cached planning round: the snapshot and the metadata
// listing that together cost the search its LIST round. Both are
// treated as immutable by the search path (filters copy before
// trimming), so one entry serves any number of concurrent queries.
type planEntry struct {
	snap    *lake.Snapshot
	entries []meta.IndexEntry
}

// planCache memoizes planning rounds keyed by resolved snapshot
// version. Safety comes from version keying, not freshness: a pinned
// version's snapshot is immutable, and a stale metadata listing can
// only under-use indices (files fall to the scan path) or reference a
// vacuumed index file — which the search already self-heals via
// staleIndexError, and every replan bypasses this cache. The latest
// version is advanced by lake commit hooks (forward-only: commits may
// report out of order, and versions are monotone, so max is correct),
// letting repeat latest-snapshot queries skip the planning LIST
// entirely.
type planCache struct {
	ttl int64
	gen atomic.Int64

	hits          *obs.Counter
	misses        *obs.Counter
	invalidations *obs.Counter

	mu     sync.Mutex
	latest int64
	plans  map[planKey]planEntry
}

// newPlanCache returns a plan cache keeping entries within ttl
// versions of the latest known commit (<= 0 means the default),
// registering its counters under "search.plan_cache_*" in reg.
func newPlanCache(ttl int, reg *obs.Registry) *planCache {
	if ttl <= 0 {
		ttl = defaultPlanTTLVersions
	}
	return &planCache{
		ttl:           int64(ttl),
		hits:          reg.Counter("search.plan_cache_hits"),
		misses:        reg.Counter("search.plan_cache_misses"),
		invalidations: reg.Counter("search.plan_cache_invalidations"),
		plans:         make(map[planKey]planEntry),
	}
}

// get returns the cached plan for the key; version < 0 resolves to
// the latest hook-reported version (a miss when no commit has been
// observed yet). Nil-safe.
func (p *planCache) get(version int64, column string, kind component.Kind) (planEntry, bool) {
	if p == nil {
		return planEntry{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if version < 0 {
		if p.latest <= 0 {
			p.misses.Inc()
			return planEntry{}, false
		}
		version = p.latest
	}
	e, ok := p.plans[planKey{version, column, kind}]
	if ok {
		p.hits.Inc()
	} else {
		p.misses.Inc()
	}
	return e, ok
}

// put stores a resolved plan and advances the latest pointer to its
// version if newer. Nil-safe.
func (p *planCache) put(version int64, column string, kind component.Kind, snap *lake.Snapshot, entries []meta.IndexEntry) {
	if p == nil || version <= 0 {
		return
	}
	p.mu.Lock()
	if version > p.latest {
		p.latest = version
	}
	p.plans[planKey{version, column, kind}] = planEntry{snap: snap, entries: entries}
	p.pruneLocked()
	p.mu.Unlock()
}

// noteCommit advances the latest pointer (forward-only) from a lake
// commit hook and prunes plans that fell out of the TTL window.
// Nil-safe.
func (p *planCache) noteCommit(version int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if version > p.latest {
		p.latest = version
	}
	p.pruneLocked()
	p.mu.Unlock()
}

func (p *planCache) pruneLocked() {
	for k := range p.plans {
		if k.version < p.latest-p.ttl {
			delete(p.plans, k)
		}
	}
}

// invalidateAll drops every cached plan and bumps the generation.
// Metadata-table writers (index commit, compact commit, vacuum) call
// it: the meta table is a separate log from the lake, so its changes
// do not move the version key. Nil-safe.
func (p *planCache) invalidateAll() {
	if p == nil {
		return
	}
	p.gen.Add(1)
	p.invalidations.Inc()
	p.mu.Lock()
	p.plans = make(map[planKey]planEntry)
	p.mu.Unlock()
}

// generation returns the invalidation count (tests assert hooks fire
// by watching it). Nil-safe.
func (p *planCache) generation() int64 {
	if p == nil {
		return 0
	}
	return p.gen.Load()
}

// latestVersion returns the hook-maintained latest commit version (0
// when none observed). Nil-safe.
func (p *planCache) latestVersion() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.latest
}
