package core

import (
	"time"

	"rottnest/internal/component"
)

// HeatFile is one searched file as a query's plan resolved it.
type HeatFile struct {
	// Path is the lake-relative data file path.
	Path string
	// Rows is the file's row count in the searched snapshot.
	Rows int64
	// Covered reports whether the (column, kind) index cover served
	// the file; uncovered files fell to the scan path.
	Covered bool
}

// QueryHeat is the plan resolution of one (column, kind) probe unit:
// the files the query's plan touched for that unit, covered or not.
type QueryHeat struct {
	Column string
	Kind   component.Kind
	Files  []HeatFile
}

// SearchHeat is the full heat record of one executed search: every
// probe unit's resolved file set plus the search's virtual latency.
type SearchHeat struct {
	Units   []QueryHeat
	Latency time.Duration
}

// HeatObserver taps the query stream where plans resolve files. An
// adaptive maintenance policy uses the taps to learn which columns and
// file ranges are hot; the client calls them synchronously from the
// search path, so implementations must be cheap and must not call back
// into the client.
type HeatObserver interface {
	// ObserveSearch fires once per completed search with the resolved
	// plan of its final (post-replan) attempt. The Files slices are
	// owned by the observer.
	ObserveSearch(SearchHeat)
	// ObserveVectorQuery fires at plan time for ranked queries with
	// the query embedding and the effective nprobe, so refinement can
	// be driven by the actual probe traffic. The vec slice is shared;
	// observers must copy it if they retain it.
	ObserveVectorQuery(column string, vec []float32, nprobe int)
}

// SetHeatObserver installs (or, with nil, removes) the client's heat
// observer. Safe to call concurrently with searches.
func (c *Client) SetHeatObserver(h HeatObserver) {
	c.heatMu.Lock()
	c.heat = h
	c.heatMu.Unlock()
}

func (c *Client) heatObserver() HeatObserver {
	c.heatMu.RLock()
	h := c.heat
	c.heatMu.RUnlock()
	return h
}
