package core

import (
	"context"
	"testing"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/objectstore"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

// TestTraceGoldenTree pins the span taxonomy for the canonical
// indexed search: the root's children are exactly the protocol
// phases, in protocol order, and each phase contains the work it is
// responsible for (index probes under probe, in-situ page reads under
// read, store requests below both).
func TestTraceGoldenTree(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(1)
	keys, _ := e.appendUUIDs(t, gen, 300)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}

	res, tree, err := e.cli.Trace(ctx, uuidQuery(keys[42]))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %d, want 1", len(res.Matches))
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("malformed tree: %v", err)
	}
	if tree.Name != "search" {
		t.Fatalf("root = %q, want \"search\"", tree.Name)
	}

	// Exact phase ordering: every snapshot file is covered by the
	// index, so there is no search.scan phase.
	var phases []string
	for _, ch := range tree.Children {
		phases = append(phases, ch.Name)
	}
	want := []string{"search.plan", "search.probe", "search.read"}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases = %v, want %v", phases, want)
		}
	}

	probe := tree.Children[1]
	if probe.Find("index.probe") == nil {
		t.Fatal("no index.probe span under search.probe")
	}
	if probe.Find("insitu.probe") != nil {
		t.Fatal("insitu.probe leaked into the probe phase")
	}
	read := tree.Children[2]
	if read.Find("insitu.probe") == nil {
		t.Fatal("no insitu.probe span under search.read")
	}
	// Both IO phases bottom out in store requests.
	if probe.Find("store.get") == nil || read.Find("store.get") == nil {
		t.Fatal("phases did not record store.get spans")
	}
	// The plan phase reads metadata, so it performs store work too.
	if tree.Children[0].Find("store.get") == nil && tree.Children[0].Find("store.list") == nil {
		t.Fatal("plan phase recorded no store requests")
	}
}

// TestTraceScanPhase checks that searching with unindexed files adds
// the search.scan phase with insitu.scan spans beneath it.
func TestTraceScanPhase(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(2)
	keys, _ := e.appendUUIDs(t, gen, 100)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	// A second, never-indexed batch forces the scan fallback.
	e.appendUUIDs(t, gen, 100)

	_, tree, err := e.cli.Trace(ctx, uuidQuery(keys[7]))
	if err != nil {
		t.Fatal(err)
	}
	scan := tree.Find("search.scan")
	if scan == nil {
		t.Fatal("no search.scan phase despite unindexed files")
	}
	if scan.Find("insitu.scan") == nil {
		t.Fatal("no insitu.scan span under search.scan")
	}
}

// TestTraceVirtualMatchesLatency proves the exactness claim: on a
// virtual clock the phase spans' summed virtual duration equals the
// reported Stats.Latency exactly, because the session only advances
// inside phases.
func TestTraceVirtualMatchesLatency(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(3)
	keys, _ := e.appendUUIDs(t, gen, 300)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}

	res, tree, err := e.cli.Trace(ctx, uuidQuery(keys[0]))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Latency <= 0 {
		t.Fatalf("virtual latency = %v, want > 0", res.Stats.Latency)
	}
	if tree.Virtual != res.Stats.Latency {
		t.Fatalf("root virtual = %v, Stats.Latency = %v", tree.Virtual, res.Stats.Latency)
	}
	var sum time.Duration
	for _, phase := range tree.Children {
		sum += phase.Virtual
	}
	if sum != res.Stats.Latency {
		t.Fatalf("phase virtual sum = %v, Stats.Latency = %v", sum, res.Stats.Latency)
	}
}

// TestTraceSessionReuse runs Trace inside a caller-provided session:
// the root span must measure only the search's share of the session.
func TestTraceSessionReuse(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(4)
	keys, _ := e.appendUUIDs(t, gen, 100)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}

	sess := simtime.NewSession()
	sess.Add(5 * time.Second) // pre-existing virtual time
	sctx := simtime.With(ctx, sess)
	res, tree, err := e.cli.Trace(sctx, uuidQuery(keys[0]))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Virtual != res.Stats.Latency {
		t.Fatalf("root virtual = %v, Stats.Latency = %v (prior session time leaked in)", tree.Virtual, res.Stats.Latency)
	}
	if sess.Elapsed() != 5*time.Second+res.Stats.Latency {
		t.Fatalf("session elapsed = %v, want %v", sess.Elapsed(), 5*time.Second+res.Stats.Latency)
	}
}

// TestTraceTreeOnError returns the partial tree when the search fails.
func TestTraceTreeOnError(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(5)
	e.appendUUIDs(t, gen, 10)

	_, tree, err := e.cli.Trace(ctx, Query{Column: "nope", UUID: &[16]byte{1}, K: 1, Snapshot: -1})
	if err == nil {
		t.Fatal("expected error for unknown column")
	}
	if tree == nil || tree.Name != "search" {
		t.Fatalf("tree = %+v, want a search root even on error", tree)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("error-path tree malformed: %v", err)
	}
}

// TestClientMetricsSnapshot checks the unified metrics surface: the
// deprecated CacheStats/RetryStats views must agree with the embedded
// obs.Snapshot, and search counters must advance.
func TestClientMetricsSnapshot(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(6)
	keys, _ := e.appendUUIDs(t, gen, 100)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	if _, err := e.cli.Search(ctx, uuidQuery(keys[1])); err != nil {
		t.Fatal(err)
	}

	snap := e.cli.Metrics()
	if got := snap.Counter("search.queries"); got != 1 {
		t.Fatalf("search.queries = %d, want 1", got)
	}
	if snap.Counter("search.pages_probed") <= 0 {
		t.Fatal("search.pages_probed did not advance")
	}
	// The legacy stats structs are pure views over the snapshot.
	if cs := objectstore.CacheStatsFrom(snap); cs.Hits != snap.Counter("cache.hits") || cs.Misses != snap.Counter("cache.misses") {
		t.Fatal("CacheStatsFrom deviates from the snapshot's cache.* counters")
	}
	if rs := objectstore.RetryStatsFrom(snap); rs.Retries != snap.Counter("retry.retries") {
		t.Fatal("RetryStatsFrom deviates from the snapshot's retry.* counters")
	}
}
