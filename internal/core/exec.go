package core

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"rottnest/internal/component"
	"rottnest/internal/insitu"
	"rottnest/internal/ivfpq"
	"rottnest/internal/lake"
	"rottnest/internal/meta"
	"rottnest/internal/objectstore"
	"rottnest/internal/obs"
	"rottnest/internal/parquet"
	"rottnest/internal/postings"
	"rottnest/internal/simtime"
)

// SearchCompound executes a compound boolean query as one plan: every
// referenced index is probed once, candidate page sets are converted
// to row ranges and intersected/unioned in memory, and the in-situ
// phase fetches each surviving page at most once, evaluating all
// residual predicates in a single pass over the decoded values. A
// vector leaf (root, or direct child of a root AND) ranks: IVF-PQ
// candidate generation runs first, the sibling filter's row set is
// applied before refinement, and exact-distance reads touch only
// admitted rows.
func (c *Client) SearchCompound(ctx context.Context, cq CompoundQuery) (*Result, error) {
	shape, err := compileShape(cq)
	if err != nil {
		return nil, err
	}
	return c.searchTree(ctx, cq, shape)
}

// TraceCompound is Trace for compound queries: SearchCompound with a
// trace attached, returning the finished span tree.
func (c *Client) TraceCompound(ctx context.Context, cq CompoundQuery) (*Result, *obs.Node, error) {
	if simtime.From(ctx) == nil {
		ctx = simtime.With(ctx, simtime.NewSession())
	}
	ctx, root := obs.WithTrace(ctx, "search")
	res, err := c.SearchCompound(ctx, cq)
	root.End()
	return res, root.Tree(), err
}

// leafExec is one exact leaf bound to a plan attempt: the compiled
// predicate plus the chosen index cover for the searched file set.
type leafExec struct {
	plan    *leafPlan
	colIdx  int
	col     parquet.Column
	chosen  []meta.IndexEntry
	covered map[string]bool
}

// leafCandSet accumulates one leaf's probe results across its chosen
// index files: candidate pages per snapshot file (deduplicated by
// ordinal) and their row ranges.
type leafCandSet struct {
	pages     map[string][]parquet.PageInfo
	seen      map[string]map[int]bool
	ranges    map[string][]postings.RowRange
	truncated bool
}

func newLeafCandSet() *leafCandSet {
	return &leafCandSet{
		pages: make(map[string][]parquet.PageInfo),
		seen:  make(map[string]map[int]bool),
	}
}

func (s *leafCandSet) add(path string, pages []parquet.PageInfo) {
	seen := s.seen[path]
	if seen == nil {
		seen = make(map[int]bool)
		s.seen[path] = seen
	}
	for _, p := range pages {
		if !seen[p.Ordinal] {
			seen[p.Ordinal] = true
			s.pages[path] = append(s.pages[path], p)
		}
	}
}

func (s *leafCandSet) buildRanges() {
	s.ranges = make(map[string][]postings.RowRange, len(s.pages))
	for path, pages := range s.pages {
		rs := make([]postings.RowRange, 0, len(pages))
		for _, p := range pages {
			rs = append(rs, postings.RowRange{Lo: p.FirstRow, Hi: p.FirstRow + int64(p.NumValues)})
		}
		s.ranges[path] = postings.NormalizeRanges(rs)
	}
}

// pageTables maps snapshot file path -> column name -> page table,
// harvested from every probed manifest so surviving row ranges can be
// mapped back to each column's pages.
type pageTables map[string]map[string]parquet.PageTable

func (t pageTables) add(m *Manifest, active map[string]bool) {
	for _, mf := range m.Files {
		if !active[mf.Path] || len(mf.Pages) == 0 {
			continue
		}
		byCol := t[mf.Path]
		if byCol == nil {
			byCol = make(map[string]parquet.PageTable)
			t[mf.Path] = byCol
		}
		if _, ok := byCol[m.Column]; !ok {
			byCol[m.Column] = mf.Pages
		}
	}
}

// execEnv is the state of one plan attempt shared by the exec phases.
type execEnv struct {
	cq         CompoundQuery
	shape      *planShape
	snap       *lake.Snapshot
	searched   []lake.DataFile
	active     map[string]bool
	fileByPath map[string]lake.DataFile
	leaves     []*leafExec
	// vector cover (ranked queries only).
	vecEntries []meta.IndexEntry
	vecCovered map[string]bool
	vecColIdx  int
	vecCol     parquet.Column
	// orderedCols is the deterministic residual-evaluation column
	// order; colPos is its inverse.
	orderedCols []string
	colPos      map[string]int
	stats       *Stats
}

// searchTree is the unified three-phase executor behind Search and
// SearchCompound, including the metrics prologue/epilogue and the
// vacuumed-index replan loop.
func (c *Client) searchTree(ctx context.Context, cq CompoundQuery, shape *planShape) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	session := simtime.From(ctx)
	startElapsed := session.Elapsed()
	var startMetrics objectstore.Snapshot
	if c.inst != nil {
		startMetrics = c.inst.Metrics().Snapshot()
	}
	var startCache objectstore.CacheStats
	if c.cache != nil {
		startCache = c.cache.Stats()
	}
	var startRetry objectstore.RetryStats
	if c.retry != nil {
		startRetry = c.retry.Stats()
	}
	startCoalesced := c.probeCoalesced.Value()

	snapVersion := cq.Snapshot
	if snapVersion == 0 {
		snapVersion = -1
	}

	// A vacuum may physically delete an index object after this search
	// planned against it (commit-then-delete: the metadata row goes
	// first, so by the time the object is gone the plan is stale).
	// Replan rather than failing the query, excluding the vanished
	// index so files it covered fall to another index or to the scan
	// path — either way the results stay exact.
	var result *Result
	var err error
	var excluded map[string]bool
	for tries := 0; ; tries++ {
		result, err = c.attempt(ctx, cq, shape, snapVersion, excluded)
		var stale *staleIndexError
		if err == nil || tries >= searchMaxReplans || !errors.As(err, &stale) {
			break
		}
		if excluded == nil {
			excluded = make(map[string]bool)
		}
		excluded[stale.key] = true
		// The stale plan, any decoded forms of the vanished index, and
		// any memoized probes of it must not serve again.
		c.plans.invalidateAll()
		c.objc.Invalidate(stale.key)
		c.batch.invalidateIndex(stale.key)
	}
	if err != nil {
		return nil, err
	}
	result.Stats.Latency = session.Elapsed() - startElapsed
	var cacheDelta objectstore.CacheStats
	if c.cache != nil {
		cacheDelta = c.cache.Stats().Sub(startCache)
		result.Stats.CacheHits = cacheDelta.Hits
		result.Stats.CacheMisses = cacheDelta.Misses
		result.Stats.CacheBytesSaved = cacheDelta.BytesSaved
	}
	switch {
	case c.inst != nil:
		m := c.inst.Metrics().Snapshot().Sub(startMetrics)
		result.Stats.GETs = m.Gets
		result.Stats.BytesRead = m.BytesRead
	case c.cache != nil:
		// No instrumented store underneath (e.g. a bare directory
		// store): meter requests at the cache boundary instead.
		result.Stats.GETs = cacheDelta.UpstreamGets
		result.Stats.BytesRead = cacheDelta.UpstreamBytes
	}
	if c.retry != nil {
		r := c.retry.Stats().Sub(startRetry)
		result.Stats.Retries = r.Retries
		result.Stats.ThrottleWaits = r.ThrottleWaits
	}
	result.Stats.ProbesCoalesced = c.probeCoalesced.Value() - startCoalesced
	c.searches.Inc()
	c.pagesProbed.Add(int64(result.Stats.PagesProbed))
	c.scannedFull.Add(int64(result.Stats.FilesScanned))
	c.pagesCandidate.Add(int64(result.Stats.PagesCandidate))
	c.pagesPruned.Add(int64(result.Stats.PagesPruned))
	c.latencyHist.Observe(int64(result.Stats.Latency))
	if h := c.heatObserver(); h != nil && result.heat != nil {
		h.ObserveSearch(SearchHeat{Units: result.heat, Latency: result.Stats.Latency})
	}
	return result, nil
}

// probeUnit names one metadata listing a plan needs.
type probeUnit struct {
	column string
	kind   component.Kind
}

// planUnits returns one unit per exact leaf plus one for the vector
// leaf, in canonical (shape) order, so cached listings align.
func planUnits(shape *planShape) []probeUnit {
	units := make([]probeUnit, 0, len(shape.leaves)+1)
	for _, lp := range shape.leaves {
		units = append(units, probeUnit{column: lp.pred.Column, kind: lp.kind})
	}
	if shape.vector != nil {
		units = append(units, probeUnit{column: shape.vector.Column, kind: component.KindIVFPQ})
	}
	return units
}

// attempt runs one full planning + execution round.
func (c *Client) attempt(ctx context.Context, cq CompoundQuery, shape *planShape, snapVersion int64, excluded map[string]bool) (*Result, error) {
	session := simtime.From(ctx)
	// The plan phase is one span on the root session: its virtual
	// duration is exactly the session time the planning round costs,
	// so sibling phase durations sum to the search latency.
	pctx, planSpan := obs.Start(ctx, "search.plan")
	defer planSpan.End()

	units := planUnits(shape)
	// Plan. The lake snapshot and the metadata listings are
	// independent logs; a repeat of the same normalized tree at a
	// version the plan cache has seen reuses the whole round, and a
	// different tree over already-listed (column, kind) pairs reuses
	// the listings. Replans (excluded non-empty) always go to the
	// store: the cached plan is what referenced the vanished index.
	var snap *lake.Snapshot
	listings := make([][]meta.IndexEntry, len(units))
	planCached := false
	if len(excluded) == 0 {
		if e, ok := c.plans.getCompound(snapVersion, shape.key, len(units)); ok {
			snap, listings = e.snap, e.listings
			planCached = true
			planSpan.SetAttr("plan_cache", true)
		}
	}
	if !planCached {
		// Try serving every unit from per-(column, kind) listings
		// cached by other trees at the resolved version.
		type pair = probeUnit
		uniq := make([]pair, 0, len(units))
		seen := make(map[pair]int)
		for _, u := range units {
			if _, ok := seen[u]; !ok {
				seen[u] = len(uniq)
				uniq = append(uniq, u)
			}
		}
		byPair := make([][]meta.IndexEntry, len(uniq))
		served := false
		if len(excluded) == 0 {
			if v := c.plans.resolveVersion(snapVersion); v > 0 {
				served = true
				for i, u := range uniq {
					e, ok := c.plans.peek(v, u.column, u.kind)
					if !ok {
						served = false
						break
					}
					byPair[i] = e.entries
					if snap == nil {
						snap = e.snap
					}
				}
			}
		}
		if !served || snap == nil {
			snap = nil
			errs := make([]error, len(uniq)+1)
			branches := make([]func(*simtime.Session), 0, len(uniq)+1)
			branches = append(branches, func(s *simtime.Session) {
				bctx := pctx
				if s != nil {
					bctx = simtime.With(pctx, s)
				}
				snap, errs[0] = c.table.SnapshotAt(bctx, snapVersion)
			})
			for i := range uniq {
				u := uniq[i]
				idx := i
				branches = append(branches, func(s *simtime.Session) {
					bctx := pctx
					if s != nil {
						bctx = simtime.With(pctx, s)
					}
					byPair[idx], errs[idx+1] = c.meta.ListFor(bctx, u.column, u.kind)
				})
			}
			session.Parallel(branches...)
			if errs[0] != nil {
				return nil, errs[0]
			}
			var metaErr error
			for _, err := range errs[1:] {
				if err != nil {
					metaErr = err
					break
				}
			}
			if metaErr != nil {
				// Surface a schema error over the listing failure, as
				// the single-predicate path always has.
				if err := c.validateColumns(snap, shape); err != nil {
					return nil, err
				}
				return nil, metaErr
			}
			if len(excluded) == 0 {
				for i, u := range uniq {
					c.plans.put(snap.Version, u.column, u.kind, snap, byPair[i])
				}
			}
			c.plans.noteMiss()
		} else {
			c.plans.noteHit()
			planSpan.SetAttr("plan_cache", true)
		}
		for i, u := range units {
			listings[i] = byPair[seen[u]]
		}
		if len(excluded) == 0 {
			c.plans.putCompound(snap.Version, shape.key, snap, listings)
		}
	} else {
		c.plans.noteHit()
	}
	if err := c.validateColumns(snap, shape); err != nil {
		return nil, err
	}
	if len(excluded) > 0 {
		for i, l := range listings {
			kept := l[:0:0]
			for _, e := range l {
				if !excluded[e.IndexKey] {
					kept = append(kept, e)
				}
			}
			listings[i] = kept
		}
	}

	// Partition pruning: restrict the searched file set before any
	// index or scan planning.
	searched := snap.Files
	if cq.Partition != nil {
		if snap.Schema.ColumnIndex(cq.Partition.Column) < 0 {
			return nil, fmt.Errorf("core: partition column %q not in schema: %w", cq.Partition.Column, ErrBadColumn)
		}
		min := parquet.OrderableInt64(cq.Partition.Min)
		max := parquet.OrderableInt64(cq.Partition.Max)
		kept := searched[:0:0]
		for _, f := range searched {
			if f.MayContainRange(cq.Partition.Column, min, max) {
				kept = append(kept, f)
			}
		}
		searched = kept
	}
	if cq.FileRange != nil {
		kept := searched[:0:0]
		for _, f := range searched {
			if cq.FileRange.Contains(f.Path) {
				kept = append(kept, f)
			}
		}
		searched = kept
	}
	active := make(map[string]bool, len(searched))
	fileByPath := make(map[string]lake.DataFile, len(searched))
	for _, f := range searched {
		active[f.Path] = true
		fileByPath[f.Path] = f
	}

	// Per-leaf index cover. Leaves sharing a (column, kind) share the
	// listing, so their covers coincide; compute each pair once.
	env := &execEnv{
		cq: cq, shape: shape, snap: snap,
		searched: searched, active: active, fileByPath: fileByPath,
		colPos: make(map[string]int),
		stats:  &Stats{PrunedFiles: len(snap.Files) - len(searched)},
	}
	type cover struct {
		chosen  []meta.IndexEntry
		covered map[string]bool
	}
	covers := make(map[probeUnit]*cover)
	coverFor := func(u probeUnit, listing []meta.IndexEntry) *cover {
		if cv, ok := covers[u]; ok {
			return cv
		}
		chosen, covered := coverEntries(listing, active)
		cv := &cover{chosen: chosen, covered: covered}
		covers[u] = cv
		return cv
	}
	indexKeys := make(map[string]bool)
	for i, lp := range shape.leaves {
		colIdx := snap.Schema.ColumnIndex(lp.pred.Column)
		le := &leafExec{plan: lp, colIdx: colIdx, col: snap.Schema.Columns[colIdx]}
		if lp.indexable {
			cv := coverFor(units[i], listings[i])
			le.chosen, le.covered = cv.chosen, cv.covered
			for _, e := range cv.chosen {
				indexKeys[e.IndexKey] = true
			}
		} else {
			le.covered = map[string]bool{}
		}
		env.leaves = append(env.leaves, le)
		if _, ok := env.colPos[lp.pred.Column]; !ok {
			env.colPos[lp.pred.Column] = len(env.orderedCols)
			env.orderedCols = append(env.orderedCols, lp.pred.Column)
		}
	}
	if shape.vector != nil {
		u := units[len(units)-1]
		cv := coverFor(u, listings[len(units)-1])
		env.vecEntries, env.vecCovered = cv.chosen, cv.covered
		for _, e := range cv.chosen {
			indexKeys[e.IndexKey] = true
		}
		env.vecColIdx = snap.Schema.ColumnIndex(shape.vector.Column)
		env.vecCol = snap.Schema.Columns[env.vecColIdx]
		if _, ok := env.colPos[shape.vector.Column]; !ok {
			env.colPos[shape.vector.Column] = len(env.orderedCols)
			env.orderedCols = append(env.orderedCols, shape.vector.Column)
		}
	}

	// Snapshot partition stats. A file counts as covered when every
	// leaf's cover (and the vector cover, for ranked queries) includes
	// it — those are the files the plan can serve purely from pages.
	coveredCount := 0
	for _, f := range searched {
		if env.fileCovered(f.Path) {
			coveredCount++
		}
	}
	env.stats.IndexFiles = len(indexKeys)
	env.stats.CoveredFiles = coveredCount
	env.stats.UnindexedFiles = len(searched) - coveredCount
	planSpan.SetAttr("snapshot", snap.Version)
	planSpan.SetAttr("index_files", env.stats.IndexFiles)
	planSpan.SetAttr("covered_files", env.stats.CoveredFiles)
	planSpan.SetAttr("unindexed_files", env.stats.UnindexedFiles)
	planSpan.SetAttr("pruned_files", env.stats.PrunedFiles)
	planSpan.SetAttr("leaves", len(shape.leaves))
	planSpan.End() // idempotent: the defer covers the early error returns

	// Heat tap: record how this plan resolved files per probe unit, and
	// surface vector probe traffic, before execution so the observer
	// sees the plan even if execution fails downstream.
	var heat []QueryHeat
	if h := c.heatObserver(); h != nil {
		heat = heatUnits(env, units)
		if shape.vector != nil {
			nprobe := shape.vector.NProbe
			if nprobe <= 0 {
				nprobe = 8
			}
			h.ObserveVectorQuery(shape.vector.Column, shape.vector.Vector, nprobe)
		}
	}

	var result *Result
	var err error
	if shape.vector != nil {
		result, err = c.execVector(ctx, env)
	} else {
		result, err = c.execExact(ctx, env)
	}
	if result != nil {
		result.heat = heat
	}
	return result, err
}

// heatUnits flattens the attempt's per-leaf covers into QueryHeat
// records, deduplicating leaves that share a (column, kind) pair.
func heatUnits(env *execEnv, units []probeUnit) []QueryHeat {
	seen := make(map[probeUnit]bool, len(units))
	out := make([]QueryHeat, 0, len(units))
	emit := func(u probeUnit, covered map[string]bool) {
		if seen[u] {
			return
		}
		seen[u] = true
		files := make([]HeatFile, 0, len(env.searched))
		for _, f := range env.searched {
			files = append(files, HeatFile{Path: f.Path, Rows: f.Rows, Covered: covered[f.Path]})
		}
		out = append(out, QueryHeat{Column: u.column, Kind: u.kind, Files: files})
	}
	for i, le := range env.leaves {
		if le.plan.indexable {
			emit(units[i], le.covered)
		}
	}
	if env.shape.vector != nil {
		emit(units[len(units)-1], env.vecCovered)
	}
	return out
}

// fileCovered reports whether every leaf (and the vector cover, when
// present) covers the file.
func (e *execEnv) fileCovered(path string) bool {
	for _, le := range e.leaves {
		if !le.plan.indexable || !le.covered[path] {
			return false
		}
	}
	if e.shape.vector != nil && !e.vecCovered[path] {
		return false
	}
	return true
}

// validateColumns checks every referenced column against the schema.
func (c *Client) validateColumns(snap *lake.Snapshot, shape *planShape) error {
	for _, lp := range shape.leaves {
		if _, _, err := kindForColumn(snap.Schema, lp.pred.Column, lp.kind); err != nil {
			return err
		}
	}
	if shape.vector != nil {
		if _, _, err := kindForColumn(snap.Schema, shape.vector.Column, component.KindIVFPQ); err != nil {
			return err
		}
	}
	return nil
}

// leafProbeKey is the batcher key of one normalized probe: the
// predicate pattern (hex, so no input forges a separator) plus the
// lookup bound.
func leafProbeKey(lp *leafPlan, maxRows int) string {
	if lp.kind == component.KindTrie {
		return "t:" + hex.EncodeToString(lp.pred.UUID[:])
	}
	return fmt.Sprintf("f:%s:%d", hex.EncodeToString(lp.fmPattern), maxRows)
}

// exactProbe is one memoized exact-probe result.
type exactProbe struct {
	refs      []postings.PageRef
	truncated bool
}

// probeExactEntry opens one index file and resolves the leaf's probe
// against it: path -> page infos plus the manifest (for page tables).
// The manifest fetch and the index walk fan in parallel; the walk
// itself goes through the shared-probe batcher.
func (c *Client) probeExactEntry(ctx context.Context, le *leafExec, entry meta.IndexEntry, maxRows int) (*Manifest, []postings.PageRef, bool, error) {
	ctx, span := obs.Start(ctx, "index.probe")
	defer span.End()
	span.SetAttr("index", entry.IndexKey)
	span.SetAttr("kind", le.plan.kind.String())
	r, err := c.openReader(ctx, entry.IndexKey)
	if err != nil {
		return nil, nil, false, err
	}
	session := simtime.From(ctx)
	var manifest *Manifest
	var probe exactProbe
	var mErr, qErr error
	branches := []func(*simtime.Session){
		func(s *simtime.Session) {
			bctx := ctx
			if s != nil {
				bctx = simtime.With(ctx, s)
			}
			manifest, mErr = c.manifest(bctx, r)
		},
		func(s *simtime.Session) {
			bctx := ctx
			if s != nil {
				bctx = simtime.With(ctx, s)
			}
			if le.plan.kind == component.KindTrie {
				v, err := c.batch.do(bctx, entry.IndexKey, leafProbeKey(le.plan, maxRows), func(bctx context.Context) (any, int64, error) {
					c.probeRuns.Inc()
					var p exactProbe
					ix, err := c.openTrie(bctx, r)
					if err == nil {
						p.refs, err = ix.Lookup(bctx, *le.plan.pred.UUID)
					}
					if err != nil {
						return nil, 0, err
					}
					return p, int64(len(p.refs)*8 + 96), nil
				})
				if err != nil {
					qErr = err
					return
				}
				probe = v.(exactProbe)
			} else {
				// FM probes route through the batcher's group path even
				// as singletons: a probe arriving while another query's
				// superwalk is in flight rides the next wave.
				vs, err := c.batch.doFMBatch(bctx, entry.IndexKey,
					[]fmReq{{probeKey: leafProbeKey(le.plan, maxRows), pattern: le.plan.fmPattern, maxRows: maxRows}},
					c.fmRunner(r))
				if err != nil {
					qErr = err
					return
				}
				probe = vs[0].(exactProbe)
			}
		},
	}
	runBranches(session, c.cfg.SearchWidth, branches)
	if mErr != nil {
		return nil, nil, false, mErr
	}
	if qErr != nil {
		return nil, nil, false, qErr
	}
	span.SetAttr("refs", len(probe.refs))
	if probe.truncated {
		span.SetAttr("truncated", true)
	}
	return manifest, probe.refs, probe.truncated, nil
}

// fmRunner returns the batcher's runMany closure for the FM index
// behind r: one multi-pattern superwalk resolving every pattern in the
// wave, with checkpoint-block fetches deduplicated across them.
func (c *Client) fmRunner(r *component.Reader) func(context.Context, [][]byte, []int) ([]any, []int64, error) {
	return func(bctx context.Context, patterns [][]byte, bounds []int) ([]any, []int64, error) {
		c.probeRuns.Inc()
		ix, err := c.openFM(bctx, r)
		if err != nil {
			return nil, nil, err
		}
		refs, trunc, stats, err := ix.LookupManyBounded(bctx, patterns, bounds)
		if err != nil {
			return nil, nil, err
		}
		c.occFetched.Add(int64(stats.OccFetched))
		c.occReused.Add(int64(stats.OccReused))
		vals := make([]any, len(patterns))
		costs := make([]int64, len(patterns))
		for i := range patterns {
			vals[i] = exactProbe{refs: refs[i], truncated: trunc[i]}
			costs[i] = int64(len(refs[i])*8 + 96)
		}
		return vals, costs, nil
	}
}

// probeFMGroup probes several FM leaves that chose the same index
// object with one superwalk: the manifest is fetched once and the
// batcher's group path walks all unmemoized patterns together.
// probes[i] is the result for leaves[i].
func (c *Client) probeFMGroup(ctx context.Context, indexKey string, leaves []*leafExec, maxRows []int) (*Manifest, []exactProbe, error) {
	ctx, span := obs.Start(ctx, "index.probe")
	defer span.End()
	span.SetAttr("index", indexKey)
	span.SetAttr("kind", leaves[0].plan.kind.String())
	span.SetAttr("patterns", len(leaves))
	r, err := c.openReader(ctx, indexKey)
	if err != nil {
		return nil, nil, err
	}
	reqs := make([]fmReq, len(leaves))
	for i, le := range leaves {
		reqs[i] = fmReq{probeKey: leafProbeKey(le.plan, maxRows[i]), pattern: le.plan.fmPattern, maxRows: maxRows[i]}
	}
	session := simtime.From(ctx)
	var manifest *Manifest
	probes := make([]exactProbe, len(leaves))
	var mErr, qErr error
	branches := []func(*simtime.Session){
		func(s *simtime.Session) {
			bctx := ctx
			if s != nil {
				bctx = simtime.With(ctx, s)
			}
			manifest, mErr = c.manifest(bctx, r)
		},
		func(s *simtime.Session) {
			bctx := ctx
			if s != nil {
				bctx = simtime.With(ctx, s)
			}
			vs, err := c.batch.doFMBatch(bctx, indexKey, reqs, c.fmRunner(r))
			if err != nil {
				qErr = err
				return
			}
			for i, v := range vs {
				probes[i] = v.(exactProbe)
			}
		},
	}
	runBranches(session, c.cfg.SearchWidth, branches)
	if mErr != nil {
		return nil, nil, mErr
	}
	if qErr != nil {
		return nil, nil, qErr
	}
	total := 0
	for _, p := range probes {
		total += len(p.refs)
	}
	span.SetAttr("refs", total)
	return manifest, probes, nil
}

// probeJob is one (leaf, chosen index) probe of the exact probe phase.
type probeJob struct {
	leaf  int
	entry meta.IndexEntry
}

// countLeaves returns the number of leaves in the expression subtree,
// matching the DFS leaf numbering of planShape.leaves.
func countLeaves(e *Expr) int {
	if e.Op == OpLeaf {
		return 1
	}
	n := 0
	for _, child := range e.Children {
		n += countLeaves(child)
	}
	return n
}

// andStaging is the cost model's partition of a top-level AND: which
// children are cheap to probe (trie walks, memoized probes, leaves
// that probe nothing) and which leaf indexes they own.
type andStaging struct {
	children   []*Expr
	childStart []int // first leaf index of each child's subtree
	childLen   []int
	cheap      []bool
	cheapLeaf  []bool // per leaf index
}

// planANDStages builds the probe-order plan for a top-level AND:
// children whose probes are all cheap — trie lookups (fixed shallow
// walks), probes the batcher has memoized, or leaves that probe
// nothing — run first; children needing fresh FM walks wait, and are
// skipped entirely when the cheap stage's page-set intersection
// already rules out every file. Returns nil when staging is a no-op:
// ordering is worthwhile only with both a cheap child that can prune
// and an expensive child to save.
func (c *Client) planANDStages(env *execEnv, maxRowsFor func(*leafExec) int) *andStaging {
	root := env.shape.filter
	if c.cfg.DisableANDOrdering || root == nil || root.Op != OpAnd || len(env.leaves) < 2 {
		return nil
	}
	st := &andStaging{children: root.Children}
	leafIdx := 0
	anyCheapPruning, anyExpensive := false, false
	for _, child := range root.Children {
		start := leafIdx
		n := countLeaves(child)
		leafIdx += n
		cheap, prunes := true, false
		for i := start; i < start+n && cheap; i++ {
			le := env.leaves[i]
			if !le.plan.indexable || len(le.chosen) == 0 {
				continue // probes nothing: free either way
			}
			prunes = true
			if le.plan.kind == component.KindTrie {
				continue
			}
			for _, e := range le.chosen {
				if !c.batch.peek(e.IndexKey, leafProbeKey(le.plan, maxRowsFor(le))) {
					cheap = false
					break
				}
			}
		}
		st.childStart = append(st.childStart, start)
		st.childLen = append(st.childLen, n)
		st.cheap = append(st.cheap, cheap)
		if cheap && prunes {
			anyCheapPruning = true
		}
		if !cheap {
			anyExpensive = true
		}
	}
	if !anyCheapPruning || !anyExpensive {
		return nil
	}
	st.cheapLeaf = make([]bool, len(env.leaves))
	for ci := range st.children {
		if st.cheap[ci] {
			for i := st.childStart[ci]; i < st.childStart[ci]+st.childLen[ci]; i++ {
				st.cheapLeaf[i] = true
			}
		}
	}
	return st
}

// cheapStageKills reports whether the cheap stage alone already rules
// out every searched file: per file, the intersection of the cheap
// AND children's admitted ranges is empty. Adding the remaining AND
// terms can only shrink those sets, so an empty result is final and
// the expensive probes are pure waste.
func cheapStageKills(env *execEnv, st *andStaging, cands []*leafCandSet) bool {
	for _, f := range env.searched {
		if f.Rows == 0 {
			continue // no rows to match regardless of probes
		}
		var inter []postings.RowRange
		first := true
		for ci, child := range st.children {
			if !st.cheap[ci] {
				continue
			}
			leafIdx := st.childStart[ci]
			rs := filterRanges(child, env, cands, f, &leafIdx)
			if first {
				inter, first = rs, false
			} else {
				inter = postings.IntersectRanges(inter, rs)
			}
			if len(inter) == 0 {
				break
			}
		}
		if len(inter) > 0 {
			return false
		}
	}
	return true
}

// probeExactLeaves fans all (leaf, chosen index) probes as one
// "search.probe" phase, returning per-leaf candidate sets and the
// harvested page tables. FM probes sharing an index object run as one
// multi-pattern superwalk; under a top-level AND the cost model may
// stage the fan, probing cheap children first and skipping the rest
// when their intersection already rules out every file.
func (c *Client) probeExactLeaves(ctx context.Context, env *execEnv, unbounded bool) ([]*leafCandSet, pageTables, error) {
	session := simtime.From(ctx)
	probeCtx, probeSpan := obs.Start(ctx, "search.probe")
	defer probeSpan.End()

	boundedK := 0
	if !unbounded && c.boundedEligible(env) {
		// Over-fetch to survive page-level false positives and deleted
		// rows. Regex and multi-leaf plans read all literal hits: the
		// literal may be far more common than the full predicate, and
		// truncation would break the set algebra.
		boundedK = env.cq.K * 8
	}
	maxRowsFor := func(le *leafExec) int {
		if boundedK > 0 && le.plan.kind == component.KindFM {
			return boundedK
		}
		return 0
	}

	cands := make([]*leafCandSet, len(env.leaves))
	tables := make(pageTables)
	var jobs []probeJob
	for i, le := range env.leaves {
		cands[i] = newLeafCandSet()
		for _, e := range le.chosen {
			jobs = append(jobs, probeJob{leaf: i, entry: e})
		}
	}
	probeSpan.SetAttr("index_files", len(jobs))
	if unbounded {
		probeSpan.SetAttr("unbounded", true)
	}

	var mu sync.Mutex
	merge := func(leaf int, manifest *Manifest, refs []postings.PageRef, truncated bool) {
		mu.Lock()
		defer mu.Unlock()
		if truncated {
			cands[leaf].truncated = true
		}
		tables.add(manifest, env.active)
		for _, ref := range refs {
			if int(ref.File) >= len(manifest.Files) {
				continue
			}
			mf := manifest.Files[ref.File]
			if int(ref.Page) >= len(mf.Pages) {
				continue
			}
			if !env.active[mf.Path] {
				continue // stale physical location, filtered out
			}
			cands[leaf].add(mf.Path, []parquet.PageInfo{mf.Pages[ref.Page]})
		}
	}

	// runJobs fans one wave of probes: FM jobs sharing an index object
	// group into a single superwalk branch, everything else probes on
	// its own branch exactly as before.
	runJobs := func(run []probeJob) error {
		fmCount := make(map[string]int)
		for _, j := range run {
			if env.leaves[j.leaf].plan.kind == component.KindFM {
				fmCount[j.entry.IndexKey]++
			}
		}
		var singles []probeJob
		groups := make(map[string][]probeJob)
		for _, j := range run {
			if env.leaves[j.leaf].plan.kind == component.KindFM && fmCount[j.entry.IndexKey] >= 2 {
				groups[j.entry.IndexKey] = append(groups[j.entry.IndexKey], j)
			} else {
				singles = append(singles, j)
			}
		}
		groupKeys := make([]string, 0, len(groups))
		for k := range groups {
			groupKeys = append(groupKeys, k)
		}
		sort.Strings(groupKeys) // deterministic branch (and wave) order

		errs := make([]error, len(singles)+len(groupKeys))
		branches := make([]func(*simtime.Session), 0, len(errs))
		for i := range singles {
			j := singles[i]
			idx := i
			branches = append(branches, func(s *simtime.Session) {
				bctx := probeCtx
				if s != nil {
					bctx = simtime.With(probeCtx, s)
				}
				le := env.leaves[j.leaf]
				manifest, refs, truncated, err := c.probeExactEntry(bctx, le, j.entry, maxRowsFor(le))
				if err != nil {
					if errors.Is(err, objectstore.ErrNotFound) {
						err = &staleIndexError{key: j.entry.IndexKey, err: err}
					}
					errs[idx] = err
					return
				}
				merge(j.leaf, manifest, refs, truncated)
			})
		}
		for gi, key := range groupKeys {
			g := groups[key]
			key := key
			idx := len(singles) + gi
			branches = append(branches, func(s *simtime.Session) {
				bctx := probeCtx
				if s != nil {
					bctx = simtime.With(probeCtx, s)
				}
				les := make([]*leafExec, len(g))
				bounds := make([]int, len(g))
				for i, j := range g {
					les[i] = env.leaves[j.leaf]
					bounds[i] = maxRowsFor(les[i])
				}
				manifest, probes, err := c.probeFMGroup(bctx, key, les, bounds)
				if err != nil {
					if errors.Is(err, objectstore.ErrNotFound) {
						err = &staleIndexError{key: key, err: err}
					}
					errs[idx] = err
					return
				}
				for i, j := range g {
					merge(j.leaf, manifest, probes[i].refs, probes[i].truncated)
				}
			})
		}
		runBranches(session, c.cfg.SearchWidth, branches)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	staged := c.planANDStages(env, maxRowsFor)
	if staged == nil {
		if err := runJobs(jobs); err != nil {
			return nil, nil, err
		}
	} else {
		var stageA, stageB []probeJob
		for _, j := range jobs {
			if staged.cheapLeaf[j.leaf] {
				stageA = append(stageA, j)
			} else {
				stageB = append(stageB, j)
			}
		}
		env.stats.OrderedAND = true
		probeSpan.SetAttr("ordered", true)
		if err := runJobs(stageA); err != nil {
			return nil, nil, err
		}
		for _, s := range cands {
			s.buildRanges() // cheap-stage ranges for the kill check
		}
		if cheapStageKills(env, staged, cands) {
			// Every file is already dead under the cheap children alone;
			// AND can only shrink further, so the expensive probes can
			// never resurrect a row. Their candidate sets stay empty and
			// the normal downstream pipeline yields the same (empty)
			// result it would have computed the long way.
			env.stats.ShortCircuited = true
			env.stats.LeavesSkipped = len(stageB)
			c.leavesSkipped.Add(int64(len(stageB)))
			probeSpan.SetAttr("short_circuited", true)
			probeSpan.SetAttr("leaves_skipped", len(stageB))
		} else if err := runJobs(stageB); err != nil {
			return nil, nil, err
		}
	}
	probeSpan.End()
	for _, s := range cands {
		s.buildRanges()
	}
	return cands, tables, nil
}

// boundedEligible reports whether the plan may use bounded FM lookups
// with an unbounded retry: a single substring leaf with K > 0 —
// exactly the single-predicate fast path. Multi-leaf plans always
// probe unbounded: a truncated candidate set is not a superset, which
// the set algebra requires.
func (c *Client) boundedEligible(env *execEnv) bool {
	return len(env.leaves) == 1 && env.shape.vector == nil &&
		env.leaves[0].plan.pred.Substring != nil && env.cq.K > 0
}

// filterRanges evaluates the filter tree's row-set algebra for one
// file: leaves admit their candidate ranges (or the whole file when
// the leaf's index cannot speak for it), AND intersects, OR unions.
// The result is a superset of the rows that can match.
func filterRanges(e *Expr, env *execEnv, cands []*leafCandSet, f lake.DataFile, leafIdx *int) []postings.RowRange {
	if e.Op == OpLeaf {
		i := *leafIdx
		*leafIdx++
		le := env.leaves[i]
		if !le.plan.indexable || !le.covered[f.Path] {
			return []postings.RowRange{{Lo: 0, Hi: f.Rows}}
		}
		return cands[i].ranges[f.Path]
	}
	var out []postings.RowRange
	for i, child := range e.Children {
		rs := filterRanges(child, env, cands, f, leafIdx)
		if i == 0 {
			out = rs
			continue
		}
		if e.Op == OpAnd {
			out = postings.IntersectRanges(out, rs)
		} else {
			out = postings.UnionRanges(out, rs)
		}
	}
	return out
}

// buildEval compiles the filter tree into one per-row check over the
// residual values, in env.orderedCols order. Every leaf re-checks its
// exact predicate, so index false positives die here.
func buildEval(e *Expr, env *execEnv) func(vals [][]byte) bool {
	idx := 0
	var build func(e *Expr) func([][]byte) bool
	build = func(e *Expr) func([][]byte) bool {
		if e.Op == OpLeaf {
			le := env.leaves[idx]
			idx++
			pos := env.colPos[le.plan.pred.Column]
			match := le.plan.match
			return func(vals [][]byte) bool { return vals[pos] != nil && match(vals[pos]) }
		}
		kids := make([]func([][]byte) bool, len(e.Children))
		for i, c := range e.Children {
			kids[i] = build(c)
		}
		if e.Op == OpAnd {
			return func(vals [][]byte) bool {
				for _, k := range kids {
					if !k(vals) {
						return false
					}
				}
				return true
			}
		}
		return func(vals [][]byte) bool {
			for _, k := range kids {
				if k(vals) {
					return true
				}
			}
			return false
		}
	}
	return build(e)
}

// fileTarget is one file's surviving plan: the admitted row ranges
// and how to read each needed column.
type fileTarget struct {
	file      lake.DataFile
	surviving []postings.RowRange
	cols      []insitu.ColumnRead
	planned   int  // pages selected across page-driven columns
	scan      bool // true when any column falls back to a full scan
}

// intersectTargets runs the in-memory set phase: per file, the filter
// tree's range algebra, then the surviving ranges mapped back to each
// needed column's pages. Files split into page-driven targets (every
// column served by exact page fetches) and scan targets (at least one
// column must be read in full).
func (c *Client) intersectTargets(ctx context.Context, env *execEnv, cands []*leafCandSet, tables pageTables, neededCols []string) (pageDriven, scanMode []*fileTarget) {
	// Degenerate single-leaf plans have no set algebra worth a phase
	// span; compound plans get one so traces show the pruning. SetAttr
	// and End are nil-safe.
	var span *obs.Span
	if len(env.leaves) > 1 {
		_, span = obs.Start(ctx, "search.intersect")
		defer span.End()
	}

	candidatePages := 0
	for _, s := range cands {
		for _, pages := range s.pages {
			candidatePages += len(pages)
		}
	}
	var rowsSurviving int64
	for _, f := range env.searched {
		leafIdx := 0
		surviving := filterRanges(env.shape.filter, env, cands, f, &leafIdx)
		if len(surviving) == 0 && f.Rows > 0 {
			continue // the set algebra pruned the whole file
		}
		rowsSurviving += postings.RangesLen(surviving)
		t := &fileTarget{file: f, surviving: surviving}
		byCol := tables[f.Path]
		for _, col := range neededCols {
			ci := env.snap.Schema.ColumnIndex(col)
			cr := insitu.ColumnRead{Name: col, Col: env.snap.Schema.Columns[ci], ColIdx: ci}
			if table, ok := byCol[col]; ok {
				for _, p := range table {
					if postings.RangesOverlap(surviving, p.FirstRow, p.FirstRow+int64(p.NumValues)) {
						cr.Pages = append(cr.Pages, p)
					}
				}
				t.planned += len(cr.Pages)
			} else {
				cr.Scan = true
				t.scan = true
			}
			t.cols = append(t.cols, cr)
		}
		if t.scan {
			scanMode = append(scanMode, t)
		} else {
			pageDriven = append(pageDriven, t)
		}
	}
	sort.Slice(pageDriven, func(i, j int) bool { return pageDriven[i].file.Path < pageDriven[j].file.Path })
	sort.Slice(scanMode, func(i, j int) bool { return scanMode[i].file.Path < scanMode[j].file.Path })

	planned := 0
	for _, t := range pageDriven {
		planned += t.planned
	}
	for _, t := range scanMode {
		planned += t.planned
	}
	pruned := candidatePages - planned
	if pruned < 0 {
		pruned = 0
	}
	env.stats.PagesCandidate += candidatePages
	env.stats.PagesPruned += pruned
	span.SetAttr("pages_candidate", candidatePages)
	span.SetAttr("pages_planned", planned)
	span.SetAttr("pages_pruned", pruned)
	span.SetAttr("rows_surviving", rowsSurviving)
	span.SetAttr("files_page_driven", len(pageDriven))
	span.SetAttr("files_scan", len(scanMode))
	return pageDriven, scanMode
}

// evalTargets reads and evaluates targets in parallel under the named
// phase span, one EvalPages pass per file.
func (c *Client) evalTargets(ctx context.Context, env *execEnv, phase string, targets []*fileTarget, eval func(t *fileTarget) insitu.RowEval, output int) ([]insitu.Match, error) {
	session := simtime.From(ctx)
	ectx, span := obs.Start(ctx, phase)
	defer span.End()
	span.SetAttr("files", len(targets))
	pages := 0
	for _, t := range targets {
		pages += t.planned
	}
	span.SetAttr("pages", pages)
	outs := make([][]insitu.Match, len(targets))
	fetched := make([]int, len(targets))
	errs := make([]error, len(targets))
	branches := make([]func(*simtime.Session), len(targets))
	for i := range targets {
		t := targets[i]
		idx := i
		branches[i] = func(s *simtime.Session) {
			bctx := ectx
			if s != nil {
				bctx = simtime.With(ectx, s)
			}
			dv, err := c.readDV(bctx, t.file)
			if err != nil {
				errs[idx] = err
				return
			}
			outs[idx], fetched[idx], errs[idx] = insitu.EvalPages(bctx, c.store, c.table.Root()+t.file.Path, t.file.Path, t.cols, t.surviving, dv, eval(t), output)
		}
	}
	runBranches(session, c.cfg.SearchWidth, branches)
	span.End()
	var matches []insitu.Match
	for i := range targets {
		if errs[i] != nil {
			return nil, errs[i]
		}
		matches = append(matches, outs[i]...)
		env.stats.PagesProbed += fetched[i]
	}
	return matches, nil
}

// execExact runs pure-filter compound plans (UUID, substring, regex
// leaves under AND/OR): probe once per (leaf, index), intersect in
// memory, then one single-pass read per surviving file.
func (c *Client) execExact(ctx context.Context, env *execEnv) (*Result, error) {
	output := env.colPos[env.shape.output]
	rowEval := func(t *fileTarget) insitu.RowEval {
		check := buildEval(env.shape.filter, env)
		return func(row int64, vals [][]byte) (bool, float64) {
			return check(vals), 0
		}
	}

	// One pass of probe + intersect + page-driven reads. Bounded FM
	// lookups may truncate; retry unbounded if the bounded pass
	// under-fills an exact top-K.
	var scanMode []*fileTarget
	runPass := func(unbounded bool) ([]insitu.Match, bool, error) {
		cands, tables, err := c.probeExactLeaves(ctx, env, unbounded)
		if err != nil {
			return nil, false, err
		}
		truncated := false
		for _, s := range cands {
			if s.truncated {
				truncated = true
			}
		}
		var pageDriven []*fileTarget
		pageDriven, scanMode = c.intersectTargets(ctx, env, cands, tables, env.orderedCols)
		matches, err := c.evalTargets(ctx, env, "search.read", pageDriven, rowEval, output)
		if err != nil {
			return nil, false, err
		}
		return matches, truncated, nil
	}

	matches, truncated, err := runPass(false)
	if err != nil {
		return nil, err
	}
	if env.cq.K > 0 && len(matches) < env.cq.K && truncated {
		// The bounded sample under-filled K (deleted rows or page
		// false positives): retry unbounded for exact top-K.
		matches, _, err = runPass(true)
		if err != nil {
			return nil, err
		}
	}

	// Scan files the index cover cannot serve when the page-driven
	// results cannot satisfy the query (Section IV-B step 3).
	if len(scanMode) > 0 && (env.cq.K <= 0 || len(matches) < env.cq.K) {
		scanned, err := c.evalTargets(ctx, env, "search.scan", scanMode, rowEval, output)
		if err != nil {
			return nil, err
		}
		matches = append(matches, scanned...)
		env.stats.FilesScanned = len(scanMode)
	}

	insitu.SortMatches(matches)
	if env.cq.K > 0 && len(matches) > env.cq.K {
		matches = matches[:env.cq.K]
	}
	return &Result{Matches: matches, Stats: *env.stats}, nil
}

// vectorProbeKey is the batcher key of one normalized vector probe.
func vectorProbeKey(vec []float32, nprobe, maxCands int) string {
	var b []byte
	b = append(b, fmt.Sprintf("v:%d:%d:", nprobe, maxCands)...)
	for _, f := range vec {
		b = append(b, fmt.Sprintf("%08x", math.Float32bits(f))...)
	}
	return string(b)
}

// probeVectorEntry opens one vector index file, probes it through the
// batcher, and resolves candidates to snapshot files and pages.
func (c *Client) probeVectorEntry(ctx context.Context, entry meta.IndexEntry, vec []float32, nprobe, maxCands int, fileByPath map[string]lake.DataFile) ([]vecCandidate, error) {
	ctx, span := obs.Start(ctx, "index.probe")
	defer span.End()
	span.SetAttr("index", entry.IndexKey)
	span.SetAttr("kind", component.KindIVFPQ.String())
	r, err := c.openReader(ctx, entry.IndexKey)
	if err != nil {
		return nil, err
	}
	session := simtime.From(ctx)
	var manifest *Manifest
	var raw []ivfpq.Candidate
	var mErr, qErr error
	branches := []func(*simtime.Session){
		func(s *simtime.Session) {
			bctx := ctx
			if s != nil {
				bctx = simtime.With(ctx, s)
			}
			manifest, mErr = c.manifest(bctx, r)
		},
		func(s *simtime.Session) {
			bctx := ctx
			if s != nil {
				bctx = simtime.With(ctx, s)
			}
			v, err := c.batch.do(bctx, entry.IndexKey, vectorProbeKey(vec, nprobe, maxCands), func(bctx context.Context) (any, int64, error) {
				c.probeRuns.Inc()
				ix, err := c.openIVF(bctx, r)
				if err != nil {
					return nil, 0, err
				}
				cands, err := ix.Search(bctx, vec, nprobe, maxCands)
				if err != nil {
					return nil, 0, err
				}
				return cands, int64(len(cands)*24 + 96), nil
			})
			if err != nil {
				qErr = err
				return
			}
			raw = v.([]ivfpq.Candidate)
		},
	}
	runBranches(session, c.cfg.SearchWidth, branches)
	if mErr != nil {
		return nil, mErr
	}
	if qErr != nil {
		return nil, qErr
	}
	var out []vecCandidate
	for _, cand := range raw {
		if int(cand.Ref.File) >= len(manifest.Files) {
			continue
		}
		mf := manifest.Files[cand.Ref.File]
		f, ok := fileByPath[mf.Path]
		if !ok {
			continue // stale physical location
		}
		pi := mf.Pages.FindRow(cand.Ref.Row)
		if pi < 0 {
			continue
		}
		out = append(out, vecCandidate{file: f, page: mf.Pages[pi], row: cand.Ref.Row, approx: cand.Dist})
	}
	span.SetAttr("candidates", len(out))
	return out, nil
}

// execVector runs ranked plans: IVF-PQ candidate generation (and the
// filter subtree's index probes) in one probe phase, the filter's row
// sets applied before refinement, exact-distance refinement reading
// each admitted page once, and exhaustive scoring of files the vector
// cover misses (scoring queries must rank all data), restricted to
// the filter's surviving rows.
func (c *Client) execVector(ctx context.Context, env *execEnv) (*Result, error) {
	session := simtime.From(ctx)
	vp := env.shape.vector
	nprobe := vp.NProbe
	if nprobe <= 0 {
		nprobe = 8
	}
	refine := vp.Refine
	if refine <= 0 {
		refine = 4 * env.cq.K
	}
	if refine < env.cq.K {
		refine = env.cq.K
	}
	maxCands := refine
	if env.shape.filter != nil {
		// The filter discards candidates before refinement; generate
		// proportionally more so a selective filter still fills K.
		maxCands = refine * 4
	}

	// Probe phase: the vector indices and the filter leaves' indices
	// fan together.
	probeCtx, probeSpan := obs.Start(ctx, "search.probe")
	defer probeSpan.End()
	probeSpan.SetAttr("nprobe", nprobe)

	var filterCands []*leafCandSet
	tables := make(pageTables)
	candLists := make([][]vecCandidate, len(env.vecEntries))
	vecErrs := make([]error, len(env.vecEntries))
	var mu sync.Mutex
	type leafJob struct {
		leaf  int
		entry meta.IndexEntry
	}
	var leafJobs []leafJob
	filterCands = make([]*leafCandSet, len(env.leaves))
	for i, le := range env.leaves {
		filterCands[i] = newLeafCandSet()
		for _, e := range le.chosen {
			leafJobs = append(leafJobs, leafJob{leaf: i, entry: e})
		}
	}
	probeSpan.SetAttr("index_files", len(env.vecEntries)+len(leafJobs))
	leafErrs := make([]error, len(leafJobs))
	branches := make([]func(*simtime.Session), 0, len(env.vecEntries)+len(leafJobs))
	for i := range env.vecEntries {
		entry := env.vecEntries[i]
		idx := i
		branches = append(branches, func(s *simtime.Session) {
			bctx := probeCtx
			if s != nil {
				bctx = simtime.With(probeCtx, s)
			}
			candLists[idx], vecErrs[idx] = c.probeVectorEntry(bctx, entry, vp.Vector, nprobe, maxCands, env.fileByPath)
			if vecErrs[idx] != nil && errors.Is(vecErrs[idx], objectstore.ErrNotFound) {
				vecErrs[idx] = &staleIndexError{key: entry.IndexKey, err: vecErrs[idx]}
			}
		})
	}
	for i := range leafJobs {
		j := leafJobs[i]
		idx := i
		branches = append(branches, func(s *simtime.Session) {
			bctx := probeCtx
			if s != nil {
				bctx = simtime.With(probeCtx, s)
			}
			le := env.leaves[j.leaf]
			manifest, refs, _, err := c.probeExactEntry(bctx, le, j.entry, 0)
			if err != nil {
				if errors.Is(err, objectstore.ErrNotFound) {
					err = &staleIndexError{key: j.entry.IndexKey, err: err}
				}
				leafErrs[idx] = err
				return
			}
			mu.Lock()
			defer mu.Unlock()
			tables.add(manifest, env.active)
			for _, ref := range refs {
				if int(ref.File) >= len(manifest.Files) {
					continue
				}
				mf := manifest.Files[ref.File]
				if int(ref.Page) >= len(mf.Pages) || !env.active[mf.Path] {
					continue
				}
				filterCands[j.leaf].add(mf.Path, []parquet.PageInfo{mf.Pages[ref.Page]})
			}
		})
	}
	runBranches(session, c.cfg.SearchWidth, branches)
	probeSpan.End()
	for _, err := range vecErrs {
		if err != nil {
			return nil, err
		}
	}
	for _, err := range leafErrs {
		if err != nil {
			return nil, err
		}
	}
	for _, s := range filterCands {
		s.buildRanges()
	}

	// Intersect phase: the filter's surviving row set per file, used
	// to discard vector candidates before any exact-distance read.
	surviving := make(map[string][]postings.RowRange, len(env.searched))
	if env.shape.filter != nil {
		_, span := obs.Start(ctx, "search.intersect")
		pruned := 0
		for _, f := range env.searched {
			leafIdx := 0
			surviving[f.Path] = filterRanges(env.shape.filter, env, filterCands, f, &leafIdx)
		}
		var cands []vecCandidate
		total := 0
		for _, list := range candLists {
			for _, cand := range list {
				total++
				if postings.RangesContain(surviving[cand.file.Path], cand.row) {
					cands = append(cands, cand)
				} else {
					pruned++
				}
			}
		}
		candLists = [][]vecCandidate{cands}
		span.SetAttr("candidates", total)
		span.SetAttr("candidates_pruned", pruned)
		env.stats.PagesCandidate += total
		env.stats.PagesPruned += pruned
		span.End()
	}
	var cands []vecCandidate
	for _, list := range candLists {
		cands = append(cands, list...)
	}

	// Keep the best `refine` candidates by approximate distance.
	sortVecCandidates(cands)
	if len(cands) > refine {
		cands = cands[:refine]
	}

	// Read phase: fetch each admitted page once, score exactly, and
	// re-check the filter's residual predicates on the same pass.
	dim := len(vp.Vector)
	vecPos := env.colPos[vp.Column]
	output := env.colPos[env.shape.output]
	var filterCheck func(vals [][]byte) bool
	if env.shape.filter != nil {
		filterCheck = buildEval(env.shape.filter, env)
	}
	rowEval := func(t *fileTarget) insitu.RowEval {
		return func(row int64, vals [][]byte) (bool, float64) {
			if vals[vecPos] == nil {
				return false, 0
			}
			if filterCheck != nil && !filterCheck(vals) {
				return false, 0
			}
			return true, float64(ivfpq.L2Sq(vp.Vector, decodeVector(vals[vecPos], dim)))
		}
	}
	refineTargets := c.vectorTargets(env, cands, tables)
	readCtx, readSpan := obs.Start(ctx, "search.read")
	readSpan.SetAttr("candidates", len(cands))
	matches, err := c.evalTargets(readCtx, env, "search.refine", refineTargets, rowEval, output)
	readSpan.End()
	if err != nil {
		return nil, err
	}

	// Files the vector cover misses must be scanned exhaustively for
	// scoring queries — restricted to the filter's surviving rows.
	var scanTargets []*fileTarget
	for _, f := range env.searched {
		if env.vecCovered[f.Path] {
			continue
		}
		rows := []postings.RowRange{{Lo: 0, Hi: f.Rows}}
		if env.shape.filter != nil {
			rows = surviving[f.Path]
			if len(rows) == 0 && f.Rows > 0 {
				continue
			}
		}
		t := &fileTarget{file: f, surviving: rows, scan: true}
		for _, col := range env.orderedCols {
			ci := env.snap.Schema.ColumnIndex(col)
			cr := insitu.ColumnRead{Name: col, Col: env.snap.Schema.Columns[ci], ColIdx: ci}
			if table, ok := tables[f.Path][col]; ok && col != vp.Column {
				for _, p := range table {
					if postings.RangesOverlap(rows, p.FirstRow, p.FirstRow+int64(p.NumValues)) {
						cr.Pages = append(cr.Pages, p)
					}
				}
				t.planned += len(cr.Pages)
			} else {
				cr.Scan = true
			}
			t.cols = append(t.cols, cr)
		}
		scanTargets = append(scanTargets, t)
	}
	if len(scanTargets) > 0 {
		scanned, err := c.evalTargets(ctx, env, "search.scan", scanTargets, rowEval, output)
		if err != nil {
			return nil, err
		}
		matches = append(matches, scanned...)
		env.stats.FilesScanned = len(scanTargets)
	}

	insitu.SortByScore(matches)
	if len(matches) > env.cq.K {
		matches = matches[:env.cq.K]
	}
	return &Result{Matches: matches, Stats: *env.stats}, nil
}

// vectorTargets groups refinement candidates by file: the vector
// column's candidate pages (deduplicated) plus any filter columns'
// pages overlapping the candidate rows, with the surviving set being
// exactly the candidate rows.
func (c *Client) vectorTargets(env *execEnv, cands []vecCandidate, tables pageTables) []*fileTarget {
	type group struct {
		file  lake.DataFile
		pages []parquet.PageInfo
		seen  map[int]bool
		rows  []postings.RowRange
	}
	groups := make(map[string]*group)
	for _, cand := range cands {
		g := groups[cand.file.Path]
		if g == nil {
			g = &group{file: cand.file, seen: make(map[int]bool)}
			groups[cand.file.Path] = g
		}
		if !g.seen[cand.page.Ordinal] {
			g.seen[cand.page.Ordinal] = true
			g.pages = append(g.pages, cand.page)
		}
		g.rows = append(g.rows, postings.RowRange{Lo: cand.row, Hi: cand.row + 1})
	}
	var targets []*fileTarget
	for _, g := range groups {
		rows := postings.NormalizeRanges(g.rows)
		t := &fileTarget{file: g.file, surviving: rows}
		for _, col := range env.orderedCols {
			ci := env.snap.Schema.ColumnIndex(col)
			cr := insitu.ColumnRead{Name: col, Col: env.snap.Schema.Columns[ci], ColIdx: ci}
			if col == env.shape.vector.Column {
				cr.Pages = g.pages
				t.planned += len(g.pages)
			} else if table, ok := tables[g.file.Path][col]; ok {
				for _, p := range table {
					if postings.RangesOverlap(rows, p.FirstRow, p.FirstRow+int64(p.NumValues)) {
						cr.Pages = append(cr.Pages, p)
					}
				}
				t.planned += len(cr.Pages)
			} else {
				cr.Scan = true
				t.scan = true
			}
			t.cols = append(t.cols, cr)
		}
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].file.Path < targets[j].file.Path })
	return targets
}
