package core

import (
	"context"

	"rottnest/internal/component"
	"rottnest/internal/fmindex"
	"rottnest/internal/ivfpq"
	"rottnest/internal/lake"
	"rottnest/internal/trie"
)

// This file is the client's warm serving path: every decoded object a
// search reconstructs per query — component reader directories,
// manifests, index open results, deletion vectors — is fetched
// through the decoded-object cache when one is configured. Each
// helper degrades to the direct decode when the cache is off, so the
// cold path is byte-identical to the pre-cache client.
//
// All cached values are immutable under their id: index files,
// manifests (component 0 of the index file), and deletion vectors all
// live at crypto-random object keys that are never overwritten, so an
// id can only go stale by deletion — and the deleting operations
// (core vacuum, lake vacuum) invalidate exactly those ids.

// openReader returns a (possibly shared) component reader for the
// index object at key. Shared readers are opened with NoRetain so
// posting payloads read through them do not accumulate; repeat-read
// savings for payload bytes belong to the byte-level CachedStore.
func (c *Client) openReader(ctx context.Context, key string) (*component.Reader, error) {
	if c.objc == nil {
		return component.Open(ctx, c.store, key, component.OpenOptions{})
	}
	v, err := c.objc.Do(ctx, "reader", key, func(ctx context.Context) (any, int64, error) {
		r, err := component.Open(ctx, c.store, key, component.OpenOptions{NoRetain: true})
		if err != nil {
			return nil, 0, err
		}
		return r, r.Footprint(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*component.Reader), nil
}

// manifest returns the (possibly shared) decoded manifest of the
// index file behind r.
func (c *Client) manifest(ctx context.Context, r *component.Reader) (*Manifest, error) {
	if c.objc == nil {
		return readManifest(ctx, r)
	}
	v, err := c.objc.Do(ctx, "manifest", r.Key(), func(ctx context.Context) (any, int64, error) {
		m, err := readManifest(ctx, r)
		if err != nil {
			return nil, 0, err
		}
		return m, manifestFootprint(m), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Manifest), nil
}

// manifestFootprint estimates a decoded manifest's resident bytes.
func manifestFootprint(m *Manifest) int64 {
	total := int64(128)
	for _, f := range m.Files {
		total += int64(len(f.Path)) + 48*int64(len(f.Pages)) + 64
	}
	return total
}

// openTrie returns the (possibly shared) open result of the trie
// index behind r — its root bucket table; node payloads stay lazy.
func (c *Client) openTrie(ctx context.Context, r *component.Reader) (*trie.Index, error) {
	if c.objc == nil {
		return trie.Open(ctx, r)
	}
	v, err := c.objc.Do(ctx, "trie", r.Key(), func(ctx context.Context) (any, int64, error) {
		ix, err := trie.Open(ctx, r)
		if err != nil {
			return nil, 0, err
		}
		return ix, ix.Footprint(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*trie.Index), nil
}

// openFM returns the (possibly shared) open result of the FM-index
// behind r — page starts, refs, and occ checkpoints; BWT blocks stay
// lazy.
func (c *Client) openFM(ctx context.Context, r *component.Reader) (*fmindex.Index, error) {
	if c.objc == nil {
		return fmindex.Open(ctx, r)
	}
	v, err := c.objc.Do(ctx, "fm", r.Key(), func(ctx context.Context) (any, int64, error) {
		ix, err := fmindex.Open(ctx, r)
		if err != nil {
			return nil, 0, err
		}
		return ix, ix.Footprint(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*fmindex.Index), nil
}

// openIVF returns the (possibly shared) open result of the IVF-PQ
// index behind r — centroids, codebooks, and list descriptors;
// posting lists stay lazy.
func (c *Client) openIVF(ctx context.Context, r *component.Reader) (*ivfpq.Index, error) {
	if c.objc == nil {
		return ivfpq.Open(ctx, r)
	}
	v, err := c.objc.Do(ctx, "ivfpq", r.Key(), func(ctx context.Context) (any, int64, error) {
		ix, err := ivfpq.Open(ctx, r)
		if err != nil {
			return nil, 0, err
		}
		return ix, ix.Footprint(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*ivfpq.Index), nil
}

// readDV returns the (possibly shared) decoded deletion vector of f.
// The cache id is the DV's full object key: DeleteRows writes each
// new vector to a fresh random path, so the id doubles as the DV
// version and a cached entry can never serve a superseded vector.
func (c *Client) readDV(ctx context.Context, f lake.DataFile) (*lake.DeletionVector, error) {
	if c.objc == nil || f.DVPath == "" {
		return c.table.ReadDeletionVector(ctx, f)
	}
	v, err := c.objc.Do(ctx, "dv", c.table.Root()+f.DVPath, func(ctx context.Context) (any, int64, error) {
		dv, err := c.table.ReadDeletionVector(ctx, f)
		if err != nil {
			return nil, 0, err
		}
		return dv, dv.Footprint(), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*lake.DeletionVector), nil
}
