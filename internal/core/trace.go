package core

import (
	"context"

	"rottnest/internal/obs"
	"rottnest/internal/simtime"
)

// Trace runs Search with a trace attached and returns the result plus
// the finished span tree — an "EXPLAIN ANALYZE" for the query. The
// root "search" span's children are the protocol phases
// (search.plan, search.probe, search.read, and search.scan when
// unindexed files were scanned); under each phase sit the per-index
// probes, in-situ page reads, and individual store requests.
//
// If ctx carries no simtime.Session, a fresh one is attached so the
// trace records virtual durations: on a virtual clock the phase
// spans' summed virtual time equals Result.Stats.Latency exactly,
// because the session only advances inside phases.
//
// The tree is returned even when the search fails (nil Result), so
// callers can see how far a failing query got.
func (c *Client) Trace(ctx context.Context, q Query) (*Result, *obs.Node, error) {
	if simtime.From(ctx) == nil {
		ctx = simtime.With(ctx, simtime.NewSession())
	}
	ctx, root := obs.WithTrace(ctx, "search")
	res, err := c.Search(ctx, q)
	root.End()
	return res, root.Tree(), err
}
