package core

import (
	"encoding/hex"
	"fmt"
	"strings"
)

// ParseWhere parses the CLI predicate grammar into an expression
// tree:
//
//	expr  := or
//	or    := and ( OR and )*
//	and   := unary ( AND unary )*
//	unary := '(' expr ')' | pred
//	pred  := column '=' uuid-32-hex
//	       | column '~' pattern        (substring)
//	       | column '=~' pattern       (regex)
//
// AND/OR are case-insensitive keywords; patterns are single- or
// double-quoted strings (with \", \', and \\ escapes) or bare words
// (no spaces or parentheses). AND binds tighter than OR. Vector
// predicates have no textual form — the CLI supplies them separately
// and conjoins them with the parsed filter.
func ParseWhere(input string) (*Expr, error) {
	p := &whereParser{in: input}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.in) {
		return nil, fmt.Errorf("core: parse -where: trailing input at %d: %q", p.pos, p.in[p.pos:])
	}
	return e, nil
}

// FormatWhere renders an expression tree back to the -where grammar.
// Round-tripping through ParseWhere yields an equivalent tree (same
// canonical key); vector leaves are not representable and error.
func FormatWhere(e *Expr) (string, error) {
	var b strings.Builder
	if err := formatWhere(&b, e, false); err != nil {
		return "", err
	}
	return b.String(), nil
}

func formatWhere(b *strings.Builder, e *Expr, parens bool) error {
	if e == nil {
		return fmt.Errorf("core: format -where: nil expression")
	}
	switch e.Op {
	case OpLeaf:
		p := e.Pred
		if p == nil {
			return fmt.Errorf("core: format -where: leaf without predicate")
		}
		switch {
		case p.UUID != nil:
			fmt.Fprintf(b, "%s=%s", quoteWhereWord(p.Column), hex.EncodeToString(p.UUID[:]))
		case p.Substring != nil:
			fmt.Fprintf(b, "%s~%s", quoteWhereWord(p.Column), quoteWhere(string(p.Substring)))
		case p.Regex != "":
			fmt.Fprintf(b, "%s=~%s", quoteWhereWord(p.Column), quoteWhere(p.Regex))
		default:
			return fmt.Errorf("core: format -where: vector predicates have no textual form")
		}
		return nil
	case OpAnd, OpOr:
		word := " AND "
		if e.Op == OpOr {
			word = " OR "
		}
		if parens {
			b.WriteByte('(')
		}
		for i, c := range e.Children {
			if i > 0 {
				b.WriteString(word)
			}
			// Parenthesize any nested compound: AND inside OR needs it
			// for precedence, and explicit grouping never hurts.
			if err := formatWhere(b, c, c.Op != OpLeaf); err != nil {
				return err
			}
		}
		if parens {
			b.WriteByte(')')
		}
		return nil
	default:
		return fmt.Errorf("core: format -where: unknown op %d", e.Op)
	}
}

// quoteWhere renders a pattern as a double-quoted -where string.
func quoteWhere(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"', '\\':
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	b.WriteByte('"')
	return b.String()
}

// quoteWhereWord quotes a column name only when the bare-word form
// cannot carry it.
func quoteWhereWord(s string) string {
	if s != "" && !strings.ContainsAny(s, " \t\r\n()\"'~=\\") && !isKeyword(s) {
		return s
	}
	return quoteWhere(s)
}

func isKeyword(s string) bool {
	return strings.EqualFold(s, "and") || strings.EqualFold(s, "or")
}

type whereParser struct {
	in  string
	pos int
}

func (p *whereParser) skipSpace() {
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

// peekKeyword reports whether the next token is the keyword (case-
// insensitive, followed by a word boundary) and consumes it if so.
func (p *whereParser) peekKeyword(word string) bool {
	p.skipSpace()
	if p.pos+len(word) > len(p.in) {
		return false
	}
	if !strings.EqualFold(p.in[p.pos:p.pos+len(word)], word) {
		return false
	}
	rest := p.in[p.pos+len(word):]
	if rest != "" {
		switch rest[0] {
		case ' ', '\t', '\r', '\n', '(':
		default:
			return false
		}
	}
	p.pos += len(word)
	return true
}

func (p *whereParser) parseOr() (*Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	children := []*Expr{left}
	for p.peekKeyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return left, nil
	}
	return &Expr{Op: OpOr, Children: children}, nil
}

func (p *whereParser) parseAnd() (*Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	children := []*Expr{left}
	for p.peekKeyword("and") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	if len(children) == 1 {
		return left, nil
	}
	return &Expr{Op: OpAnd, Children: children}, nil
}

func (p *whereParser) parseUnary() (*Expr, error) {
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == '(' {
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.in) || p.in[p.pos] != ')' {
			return nil, fmt.Errorf("core: parse -where: missing ')' at %d", p.pos)
		}
		p.pos++
		return e, nil
	}
	return p.parsePred()
}

func (p *whereParser) parsePred() (*Expr, error) {
	col, quoted, err := p.parseColumn()
	if err != nil {
		return nil, err
	}
	if !quoted && isKeyword(col) {
		return nil, fmt.Errorf("core: parse -where: keyword %q where a column was expected", col)
	}
	if col == "" {
		return nil, fmt.Errorf("core: parse -where: empty column name")
	}
	p.skipSpace()
	switch {
	case strings.HasPrefix(p.in[p.pos:], "=~"):
		p.pos += 2
		pat, err := p.parseWord("regex")
		if err != nil {
			return nil, err
		}
		if pat == "" {
			return nil, fmt.Errorf("core: parse -where: empty regex for column %q", col)
		}
		return Leaf(Pred{Column: col, Regex: pat}), nil
	case p.pos < len(p.in) && p.in[p.pos] == '=':
		p.pos++
		word, err := p.parseWord("uuid")
		if err != nil {
			return nil, err
		}
		raw, err := hex.DecodeString(word)
		if err != nil || len(raw) != 16 {
			return nil, fmt.Errorf("core: parse -where: %q is not a 32-hex-digit uuid", word)
		}
		var key [16]byte
		copy(key[:], raw)
		return Leaf(Pred{Column: col, UUID: &key}), nil
	case p.pos < len(p.in) && p.in[p.pos] == '~':
		p.pos++
		pat, err := p.parseWord("pattern")
		if err != nil {
			return nil, err
		}
		if pat == "" {
			return nil, fmt.Errorf("core: parse -where: empty pattern for column %q", col)
		}
		return Leaf(Pred{Column: col, Substring: []byte(pat)}), nil
	default:
		return nil, fmt.Errorf("core: parse -where: expected '=', '~', or '=~' after column %q at %d", col, p.pos)
	}
}

// parseColumn reads a column name: a quoted string (which may carry
// keywords or operator characters), or a bare word that additionally
// stops at the '='/'~' operators.
func (p *whereParser) parseColumn() (string, bool, error) {
	p.skipSpace()
	if p.pos < len(p.in) {
		if q := p.in[p.pos]; q == '"' || q == '\'' {
			col, err := p.parseWord("column")
			return col, true, err
		}
	}
	start := p.pos
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\r', '\n', '(', ')', '"', '\'', '=', '~':
			goto done
		}
		p.pos++
	}
done:
	if p.pos == start {
		return "", false, fmt.Errorf("core: parse -where: expected column at %d", start)
	}
	return p.in[start:p.pos], false, nil
}

// parseWord reads a quoted string or a bare word (patterns: operators
// are legal inside).
func (p *whereParser) parseWord(what string) (string, error) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return "", fmt.Errorf("core: parse -where: expected %s at end of input", what)
	}
	if q := p.in[p.pos]; q == '"' || q == '\'' {
		p.pos++
		var b strings.Builder
		for p.pos < len(p.in) {
			c := p.in[p.pos]
			switch c {
			case q:
				p.pos++
				return b.String(), nil
			case '\\':
				if p.pos+1 >= len(p.in) {
					return "", fmt.Errorf("core: parse -where: dangling escape in %s", what)
				}
				p.pos++
				b.WriteByte(p.in[p.pos])
				p.pos++
			default:
				b.WriteByte(c)
				p.pos++
			}
		}
		return "", fmt.Errorf("core: parse -where: unterminated quoted %s", what)
	}
	start := p.pos
	for p.pos < len(p.in) {
		switch p.in[p.pos] {
		case ' ', '\t', '\r', '\n', '(', ')', '"', '\'':
			goto done
		}
		p.pos++
	}
done:
	if p.pos == start {
		return "", fmt.Errorf("core: parse -where: expected %s at %d", what, start)
	}
	return p.in[start:p.pos], nil
}
