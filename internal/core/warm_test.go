package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/workload"
)

// TestWarmRepeatQueryZeroGETs is the tentpole acceptance check: with
// the default configuration (byte cache + decoded-object cache + plan
// cache all on), a repeated query issues zero object-store GETs — no
// planning LIST round, no index directory or manifest fetch, no index
// header decode fetch, and every probed page served from the byte
// cache.
func TestWarmRepeatQueryZeroGETs(t *testing.T) {
	ctx := context.Background()

	t.Run("uuid", func(t *testing.T) {
		e := newEnv(t, uuidSchema, Config{})
		gen := workload.NewUUIDGen(11)
		keys, _ := e.appendUUIDs(t, gen, 1500)
		if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
			t.Fatal(err)
		}
		assertWarmZeroGETs(t, e, uuidQuery(keys[17]))
	})

	t.Run("substring", func(t *testing.T) {
		e := newEnv(t, textSchema, Config{})
		docs := make([]string, 600)
		for i := range docs {
			docs[i] = fmt.Sprintf("log line %d with filler text", i)
		}
		docs[123] = "log line 123 carrying NdlWarmXq inside"
		e.appendDocs(t, docs)
		if _, err := e.cli.Index(ctx, "body", component.KindFM); err != nil {
			t.Fatal(err)
		}
		assertWarmZeroGETs(t, e, Query{Column: "body", Substring: []byte("NdlWarmXq"), K: 5, Snapshot: -1})
	})

	t.Run("vector", func(t *testing.T) {
		gen := workload.NewVectorGen(workload.VectorConfig{Seed: 7, Dim: 8, Clusters: 8, Spread: 0.2})
		vecs := gen.Batch(1500)
		e := newEnv(t, vecSchema(8), Config{})
		e.appendVectors(t, vecs)
		if _, err := e.cli.Index(ctx, "emb", component.KindIVFPQ); err != nil {
			t.Fatal(err)
		}
		assertWarmZeroGETs(t, e, Query{Column: "emb", Vector: vecs[31], K: 5, NProbe: 8, Snapshot: -1})
	})
}

func assertWarmZeroGETs(t *testing.T, e *env, q Query) {
	t.Helper()
	ctx := context.Background()
	cold, err := e.cli.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.GETs == 0 {
		t.Fatal("priming search issued no GETs; scenario not exercised")
	}
	for i := 0; i < 3; i++ {
		warm, err := e.cli.Search(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Stats.GETs != 0 {
			t.Fatalf("warm repeat %d issued %d GETs (%d bytes), want 0", i, warm.Stats.GETs, warm.Stats.BytesRead)
		}
		if !reflect.DeepEqual(warm.Matches, cold.Matches) {
			t.Fatalf("warm matches diverged from cold: %v vs %v", warm.Matches, cold.Matches)
		}
	}
	snap := e.cli.Metrics()
	if snap.Counter("objcache.hits") == 0 {
		t.Error("warm repeats produced no decoded-cache hits")
	}
	if snap.Counter("search.plan_cache_hits") == 0 {
		t.Error("warm repeats produced no plan-cache hits")
	}
}

// TestInvalidationHooksFire asserts that every mutation path actually
// reaches the caches, via their generation counters: metadata-table
// writers (index commit, compact commit, vacuum commit, rollbacks are
// exercised elsewhere) must bump the plan cache's generation, lake
// commits must advance its latest-version pointer, and physical
// deletions (core vacuum, lake vacuum) must bump the decoded cache's
// generation.
func TestInvalidationHooksFire(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(3)
	_, path := e.appendUUIDs(t, gen, 800)
	e.appendUUIDs(t, gen, 800)

	planGen := func() int64 { return e.cli.plans.generation() }
	objGen := func() int64 { return e.cli.objc.Generation() }

	// Lake commit hook: Append advanced the plan cache's latest
	// pointer (versions 2 and 3 after the two appends above).
	if got := e.cli.plans.latestVersion(); got != 3 {
		t.Fatalf("latest version after appends = %d, want 3", got)
	}

	// Index commit invalidates plans.
	g := planGen()
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	if planGen() <= g {
		t.Fatal("index commit did not invalidate the plan cache")
	}

	// DeleteRows is a lake commit: the latest pointer advances.
	v := e.cli.plans.latestVersion()
	if err := e.table.DeleteRows(ctx, path, []uint32{7}); err != nil {
		t.Fatal(err)
	}
	if got := e.cli.plans.latestVersion(); got != v+1 {
		t.Fatalf("latest version after DeleteRows = %d, want %d", got, v+1)
	}

	// Compact commit invalidates plans. Two more small indexed
	// batches give it bins to merge.
	e.appendUUIDs(t, gen, 800)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	g = planGen()
	merged, err := e.cli.Compact(ctx, "id", component.KindTrie, CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) == 0 {
		t.Fatal("compact merged nothing; scenario not exercised")
	}
	if planGen() <= g {
		t.Fatal("compact commit did not invalidate the plan cache")
	}

	// Core vacuum: the metadata delete invalidates plans, and every
	// physically removed index object invalidates its decoded forms.
	e.clock.Advance(2 * time.Hour)
	g, og := planGen(), objGen()
	report, err := e.cli.Vacuum(ctx, VacuumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.DroppedEntries) == 0 || len(report.RemovedObjects) == 0 {
		t.Fatalf("vacuum dropped %d entries, removed %d objects; scenario not exercised",
			len(report.DroppedEntries), len(report.RemovedObjects))
	}
	if planGen() <= g {
		t.Fatal("vacuum commit did not invalidate the plan cache")
	}
	if objGen() < og+int64(len(report.RemovedObjects)) {
		t.Fatalf("vacuum removed %d objects but decoded-cache generation moved %d",
			len(report.RemovedObjects), objGen()-og)
	}

	// Lake vacuum hook: physically deleted lake files (the pre-delete
	// data file version and superseded DVs) invalidate decoded forms.
	if err := e.table.DeleteRows(ctx, path, []uint32{9}); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(2 * time.Hour)
	og = objGen()
	latest, err := e.table.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	removed, err := e.table.Vacuum(ctx, latest, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) == 0 {
		t.Fatal("lake vacuum removed nothing; scenario not exercised")
	}
	if objGen() < og+int64(len(removed)) {
		t.Fatalf("lake vacuum removed %d files but decoded-cache generation moved %d",
			len(removed), objGen()-og)
	}
}

// TestWarmSearchesMatchColdUnderMutation runs warm searches (all
// caches on) concurrently with appends, deletes, index builds,
// compactions, and vacuums, comparing every result byte-for-byte
// against a cold-cache client on the same store at the same pinned
// snapshot version. Run under -race in make check.
func TestWarmSearchesMatchColdUnderMutation(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	cold := NewClient(e.table, Config{
		IndexDir: "rottnest", Clock: e.clock,
		CacheBytes: -1, DecodedCacheBytes: -1, PlanCacheTTLVersions: -1,
	})
	gen := workload.NewUUIDGen(5)
	var mu sync.Mutex
	var keys [][16]byte
	var paths []string
	addBatch := func(n int) {
		ks, p := e.appendUUIDs(t, gen, n)
		mu.Lock()
		keys = append(keys, ks...)
		paths = append(paths, p)
		mu.Unlock()
	}
	addBatch(600)
	addBatch(600)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		defer close(writerDone)
		for i := 0; i < 6; i++ {
			addBatch(400)
			mu.Lock()
			p := paths[i%len(paths)]
			mu.Unlock()
			if err := e.table.DeleteRows(ctx, p, []uint32{uint32(i * 3)}); err != nil {
				writerDone <- err
				return
			}
			if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
				writerDone <- err
				return
			}
			if i%2 == 1 {
				if _, err := e.cli.Compact(ctx, "id", component.KindTrie, CompactOptions{}); err != nil {
					writerDone <- err
					return
				}
			}
			if i%3 == 2 {
				if _, err := e.cli.Vacuum(ctx, VacuumOptions{}); err != nil {
					writerDone <- err
					return
				}
			}
		}
	}()

	const searchers = 4
	var wg sync.WaitGroup
	errs := make([]error, searchers)
	for s := 0; s < searchers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v, err := e.table.Version(ctx)
				if err != nil {
					errs[s] = err
					return
				}
				mu.Lock()
				k := keys[(s*997+i*31)%len(keys)]
				mu.Unlock()
				q := uuidQuery(k)
				q.Snapshot = v
				warm, err := e.cli.Search(ctx, q)
				if err != nil {
					errs[s] = fmt.Errorf("warm search at v%d: %w", v, err)
					return
				}
				coldRes, err := cold.Search(ctx, q)
				if err != nil {
					errs[s] = fmt.Errorf("cold search at v%d: %w", v, err)
					return
				}
				if !reflect.DeepEqual(warm.Matches, coldRes.Matches) {
					errs[s] = fmt.Errorf("at v%d key %x: warm %v != cold %v", v, k, warm.Matches, coldRes.Matches)
					return
				}
			}
		}(s)
	}
	if err := <-writerDone; err != nil {
		t.Error(err)
	}
	close(stop)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
