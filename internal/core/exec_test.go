package core

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"rottnest/internal/component"
	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

// coldConfig disables every warm-path cache so GET deltas measure the
// plan itself.
func coldConfig() Config {
	return Config{
		CacheBytes:           -1,
		DecodedCacheBytes:    -1,
		PlanCacheTTLVersions: -1,
		ProbeBatchBytes:      -1,
	}
}

// rangeRecorder records every GetRange against keys under prefix,
// for duplicate-fetch assertions.
type rangeRecorder struct {
	objectstore.Store
	prefix string

	mu     sync.Mutex
	armed  bool
	ranges map[string]int
}

func (r *rangeRecorder) GetRange(ctx context.Context, key string, off, n int64) ([]byte, error) {
	r.mu.Lock()
	if r.armed && strings.HasPrefix(key, r.prefix) {
		r.ranges[fmt.Sprintf("%s@%d+%d", key, off, n)]++
	}
	r.mu.Unlock()
	return r.Store.GetRange(ctx, key, off, n)
}

func (r *rangeRecorder) arm() {
	r.mu.Lock()
	r.armed = true
	r.ranges = make(map[string]int)
	r.mu.Unlock()
}

func (r *rangeRecorder) duplicates() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var dups []string
	for k, n := range r.ranges {
		if n > 1 {
			dups = append(dups, fmt.Sprintf("%s x%d", k, n))
		}
	}
	return dups
}

// appendNeedled appends n uuid rows whose payloads carry "needle" on
// every strideth row.
func appendNeedled(t testing.TB, table *lake.Table, gen *workload.UUIDGen, n, stride int) [][16]byte {
	t.Helper()
	keys := gen.Batch(n)
	b := parquet.NewBatch(uuidSchema)
	ids := make([][]byte, n)
	payloads := make([][]byte, n)
	for i := range keys {
		k := keys[i]
		ids[i] = k[:]
		if i%stride == 0 {
			payloads[i] = []byte(fmt.Sprintf("row %06d has the xyzneedle marker", i))
		} else {
			payloads[i] = []byte(fmt.Sprintf("row %06d plain", i))
		}
	}
	b.Cols[0] = parquet.ColumnValues{Bytes: ids}
	b.Cols[1] = parquet.ColumnValues{Bytes: payloads}
	if _, err := table.Append(context.Background(), b, parquet.WriterOptions{RowGroupRows: 512, PageBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	return keys
}

// TestCompoundANDFewerGETsThanSeparateSearches is the tentpole's core
// acceptance: a 2-predicate AND whose leaves candidate overlapping
// pages must issue strictly fewer GETs than running the two
// predicates as separate searches, and no surviving page may be
// fetched twice within the plan.
func TestCompoundANDFewerGETsThanSeparateSearches(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	mem := objectstore.NewMemStore(clock)
	rec := &rangeRecorder{Store: mem, prefix: "lake/"}
	store, metrics := objectstore.Instrument(rec, objectstore.DefaultS3Model())
	table, err := lake.CreateWith(ctx, store, "lake", uuidSchema, lake.OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	cfg := coldConfig()
	cfg.IndexDir = "rottnest"
	cfg.Clock = clock
	cli := NewClient(table, cfg)

	gen := workload.NewUUIDGen(31)
	// 4000 rows, a needle every 25th row: the substring predicate
	// candidates many pages, the uuid predicate exactly one.
	keys := appendNeedled(t, table, gen, 4000, 25)
	if _, err := cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Index(ctx, "payload", component.KindFM); err != nil {
		t.Fatal(err)
	}

	// Row 100 carries the needle (100 % 25 == 0), so the AND has
	// exactly one answer.
	target := keys[100]
	gets := func(f func()) int64 {
		before := metrics.Snapshot()
		f()
		return metrics.Snapshot().Sub(before).Gets
	}

	var sep1, sep2, comp *Result
	sepGETs := gets(func() {
		var err error
		if sep1, err = cli.Search(ctx, Query{Column: "id", UUID: &target, Snapshot: -1}); err != nil {
			t.Fatal(err)
		}
		if sep2, err = cli.Search(ctx, Query{Column: "payload", Substring: []byte("xyzneedle"), Snapshot: -1}); err != nil {
			t.Fatal(err)
		}
	})
	if len(sep1.Matches) != 1 || len(sep2.Matches) != 4000/25 {
		t.Fatalf("separate searches: %d, %d matches", len(sep1.Matches), len(sep2.Matches))
	}

	rec.arm()
	compGETs := gets(func() {
		var err error
		comp, err = cli.SearchCompound(ctx, CompoundQuery{
			Expr: And(
				PredUUID("id", target),
				PredSubstring("payload", []byte("xyzneedle")),
			),
			Snapshot: -1,
			Output:   "payload",
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	if len(comp.Matches) != 1 || comp.Matches[0].Row != 100 {
		t.Fatalf("compound matches = %+v", comp.Matches)
	}
	if !bytes.Contains(comp.Matches[0].Value, []byte("xyzneedle")) {
		t.Fatalf("output column wrong: %q", comp.Matches[0].Value)
	}
	if compGETs >= sepGETs {
		t.Fatalf("compound AND issued %d GETs, separate searches %d — want strictly fewer", compGETs, sepGETs)
	}
	if dups := rec.duplicates(); len(dups) > 0 {
		t.Fatalf("pages fetched more than once in one plan: %v", dups)
	}
	if comp.Stats.PagesCandidate <= comp.Stats.PagesProbed-comp.Stats.FilesScanned {
		t.Fatalf("stats: candidate %d, probed %d", comp.Stats.PagesCandidate, comp.Stats.PagesProbed)
	}
	if comp.Stats.PagesPruned == 0 {
		t.Fatalf("intersection pruned nothing: %+v", comp.Stats)
	}
}

// TestCompoundOrAndSemantics pins the set algebra: OR unions, AND
// intersects, and nested trees compose.
func TestCompoundOrAndSemantics(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(32)
	keys := appendNeedled(t, e.table, gen, 2000, 40)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	if _, err := e.cli.Index(ctx, "payload", component.KindFM); err != nil {
		t.Fatal(err)
	}

	search := func(expr *Expr, output string) []int64 {
		t.Helper()
		res, err := e.cli.SearchCompound(ctx, CompoundQuery{Expr: expr, Snapshot: -1, Output: output})
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]int64, len(res.Matches))
		for i, m := range res.Matches {
			rows[i] = m.Row
		}
		return rows
	}

	// OR of two uuids: both rows.
	rows := search(Or(PredUUID("id", keys[3]), PredUUID("id", keys[999])), "id")
	if len(rows) != 2 || rows[0] != 3 || rows[1] != 999 {
		t.Fatalf("uuid OR rows = %v", rows)
	}
	// AND of uuid and non-matching substring: empty.
	rows = search(And(PredUUID("id", keys[3]), PredSubstring("payload", []byte("xyzneedle"))), "id")
	if len(rows) != 0 {
		t.Fatalf("disjoint AND rows = %v", rows)
	}
	// AND of uuid and matching substring: the row (40 % 40 == 0).
	rows = search(And(PredUUID("id", keys[40]), PredSubstring("payload", []byte("xyzneedle"))), "payload")
	if len(rows) != 1 || rows[0] != 40 {
		t.Fatalf("matching AND rows = %v", rows)
	}
	// Nested: (uuid OR uuid) AND substring — one of the two carries
	// the needle.
	rows = search(And(
		Or(PredUUID("id", keys[80]), PredUUID("id", keys[81])),
		PredSubstring("payload", []byte("xyzneedle")),
	), "id")
	if len(rows) != 1 || rows[0] != 80 {
		t.Fatalf("nested rows = %v", rows)
	}
	// Regex leaf intersected with substring leaf on the same column.
	rows = search(And(
		PredRegex("payload", "row 0000[48]0 has"),
		PredSubstring("payload", []byte("xyzneedle")),
	), "payload")
	if len(rows) != 2 || rows[0] != 40 || rows[1] != 80 {
		t.Fatalf("regex AND rows = %v", rows)
	}
}

// TestCompoundScanFallback checks compound queries stay exact when
// some files are unindexed for some leaves.
func TestCompoundScanFallback(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(33)
	appendNeedled(t, e.table, gen, 1000, 30)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	if _, err := e.cli.Index(ctx, "payload", component.KindFM); err != nil {
		t.Fatal(err)
	}
	// A second file indexed for id but not payload.
	keys2 := appendNeedled(t, e.table, gen, 1000, 30)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}

	res, err := e.cli.SearchCompound(ctx, CompoundQuery{
		Expr:     And(PredUUID("id", keys2[60]), PredSubstring("payload", []byte("xyzneedle"))),
		Snapshot: -1,
		Output:   "payload",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].Row != 60 {
		t.Fatalf("matches = %+v", res.Matches)
	}
	if res.Stats.FilesScanned == 0 {
		t.Fatalf("expected scan fallback for the payload-unindexed file: %+v", res.Stats)
	}
}

// TestProbeCoalescingMemoAndSingleflight checks identical probes
// coalesce: across sequential repeats (memo) and across a concurrent
// burst (singleflight + memo), the index is walked far fewer times
// than it is asked.
func TestProbeCoalescingMemoAndSingleflight(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{}) // batcher on by default
	gen := workload.NewUUIDGen(34)
	appendNeedled(t, e.table, gen, 2000, 25)
	if _, err := e.cli.Index(ctx, "payload", component.KindFM); err != nil {
		t.Fatal(err)
	}

	q := Query{Column: "payload", Substring: []byte("xyzneedle"), Snapshot: -1}
	first, err := e.cli.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.ProbesCoalesced != 0 {
		t.Fatalf("first search coalesced %d probes", first.Stats.ProbesCoalesced)
	}
	runsAfterFirst := e.cli.probeRuns.Value()
	if runsAfterFirst == 0 {
		t.Fatal("no probe runs recorded")
	}

	second, err := e.cli.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.ProbesCoalesced == 0 {
		t.Fatal("repeat search did not coalesce its probe")
	}
	if got := e.cli.probeRuns.Value(); got != runsAfterFirst {
		t.Fatalf("repeat search re-ran the probe: runs %d -> %d", runsAfterFirst, got)
	}
	if len(second.Matches) != len(first.Matches) {
		t.Fatalf("coalesced search changed results: %d vs %d", len(second.Matches), len(first.Matches))
	}

	// Concurrent burst of a fresh probe: the walk happens once.
	q2 := Query{Column: "payload", Substring: []byte("plain"), Snapshot: -1, K: 5}
	runsBefore := e.cli.probeRuns.Value()
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.cli.Search(ctx, q2)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if runs := e.cli.probeRuns.Value() - runsBefore; runs >= 16 {
		t.Fatalf("burst of 16 identical searches ran %d probes", runs)
	}
	if e.cli.probeCoalesced.Value() == 0 {
		t.Fatal("probe_coalesced counter never moved")
	}
}

// TestCompoundPlanCacheKeysOnFullTree is the ride-along: two
// different compound trees over the same column must not collide in
// the plan cache — and repeats of each must hit it.
func TestCompoundPlanCacheKeysOnFullTree(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(35)
	keys := appendNeedled(t, e.table, gen, 2000, 50)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	if _, err := e.cli.Index(ctx, "payload", component.KindFM); err != nil {
		t.Fatal(err)
	}

	and := CompoundQuery{
		Expr:     And(PredUUID("id", keys[50]), PredSubstring("payload", []byte("xyzneedle"))),
		Snapshot: -1, Output: "id",
	}
	or := CompoundQuery{
		Expr:     Or(PredUUID("id", keys[50]), PredSubstring("payload", []byte("xyzneedle"))),
		Snapshot: -1, Output: "id",
	}
	single := CompoundQuery{
		Expr:     PredSubstring("payload", []byte("xyzneedle")),
		Snapshot: -1,
	}
	// Same leaves, different ops — the trees must produce different
	// cache keys.
	sa, err := compileShape(and)
	if err != nil {
		t.Fatal(err)
	}
	so, err := compileShape(or)
	if err != nil {
		t.Fatal(err)
	}
	if sa.key == so.key {
		t.Fatalf("AND and OR trees share plan key %q", sa.key)
	}

	run := func(cq CompoundQuery) int {
		t.Helper()
		res, err := e.cli.SearchCompound(ctx, cq)
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Matches)
	}
	andN := run(and)
	orN := run(or)
	singleN := run(single)
	if andN != 1 {
		t.Fatalf("AND matches = %d, want 1", andN)
	}
	if want := 2000 / 50; orN != want || singleN != want {
		t.Fatalf("OR = %d, single = %d, want %d", orN, singleN, want)
	}

	// Repeats (now warm) must return identical counts — a collision
	// would misalign cached listings and corrupt one of them — and the
	// identical-tree repeat must count a plan-cache hit.
	hitsBefore := e.cli.plans.hits.Value()
	if got := run(and); got != andN {
		t.Fatalf("warm AND = %d, cold %d", got, andN)
	}
	if got := run(or); got != orN {
		t.Fatalf("warm OR = %d, cold %d", got, orN)
	}
	if got := run(single); got != singleN {
		t.Fatalf("warm single = %d, cold %d", got, singleN)
	}
	if e.cli.plans.hits.Value() == hitsBefore {
		t.Fatal("warm repeats never hit the plan cache")
	}
	// Commutative trees share one normalized form: swapping AND's
	// children is a cache hit, not a new entry.
	sb, err := compileShape(CompoundQuery{
		Expr:     And(PredSubstring("payload", []byte("xyzneedle")), PredUUID("id", keys[50])),
		Snapshot: -1, Output: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	if sb.key != sa.key {
		t.Fatalf("commuted AND has different key:\n%q\n%q", sb.key, sa.key)
	}
}

// TestVectorWithFilterPredicates checks the ranked path: the filter's
// page-set intersection runs before refinement, every result
// satisfies the filter, and the planted best filtered vector wins.
func TestVectorWithFilterPredicates(t *testing.T) {
	ctx := context.Background()
	schema := parquet.MustSchema(
		parquet.Column{Name: "emb", Type: parquet.TypeFixedLenByteArray, TypeLen: 4 * 8},
		parquet.Column{Name: "tag", Type: parquet.TypeByteArray},
	)
	e := newEnv(t, schema, Config{})
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 36, Dim: 8, Clusters: 8, Spread: 0.2})
	const n = 2000
	vecs := gen.Batch(n)
	q := gen.Queries(1)[0]
	// Row n-1 is exactly the query and tagged red; every other red row
	// is far away, and near-identical untagged decoys sit next to it.
	vecs[n-1] = q
	b := parquet.NewBatch(schema)
	embs := make([][]byte, n)
	tags := make([][]byte, n)
	for i, v := range vecs {
		embs[i] = workload.Float32sToBytes(v)
		if i%7 == 0 || i == n-1 {
			tags[i] = []byte(fmt.Sprintf("tag red %d", i))
		} else {
			tags[i] = []byte(fmt.Sprintf("tag blue %d", i))
		}
	}
	b.Cols[0] = parquet.ColumnValues{Bytes: embs}
	b.Cols[1] = parquet.ColumnValues{Bytes: tags}
	if _, err := e.table.Append(ctx, b, parquet.WriterOptions{RowGroupRows: 512, PageBytes: 4096}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.cli.Index(ctx, "emb", component.KindIVFPQ); err != nil {
		t.Fatal(err)
	}
	if _, err := e.cli.Index(ctx, "tag", component.KindFM); err != nil {
		t.Fatal(err)
	}

	res, err := e.cli.SearchCompound(ctx, CompoundQuery{
		Expr: And(
			PredVector("emb", q, 8, 40),
			PredSubstring("tag", []byte("red")),
		),
		K: 5, Snapshot: -1, Output: "tag",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 5 {
		t.Fatalf("matches = %d", len(res.Matches))
	}
	for _, m := range res.Matches {
		if !bytes.Contains(m.Value, []byte("red")) {
			t.Fatalf("filter violated: %q at row %d", m.Value, m.Row)
		}
	}
	if res.Matches[0].Row != n-1 || res.Matches[0].Score != 0 {
		t.Fatalf("planted exact red vector lost: %+v", res.Matches[0])
	}

	// Vector leaves are rejected under OR and below the top level.
	if _, err := e.cli.SearchCompound(ctx, CompoundQuery{
		Expr: Or(PredVector("emb", q, 8, 40), PredSubstring("tag", []byte("red"))),
		K:    5, Snapshot: -1,
	}); err == nil {
		t.Fatal("vector under OR accepted")
	}
	q2 := append([]float32(nil), q...)
	q2[0] += 1
	if _, err := e.cli.SearchCompound(ctx, CompoundQuery{
		Expr: And(Or(PredVector("emb", q, 8, 40), PredVector("emb", q2, 8, 40)), PredSubstring("tag", []byte("red"))),
		K:    5, Snapshot: -1,
	}); err == nil {
		t.Fatal("nested vector accepted")
	}
}

// TestCompoundCrossColumnPageAlignment exercises differing page
// boundaries: the id column (16-byte values) and payload column
// (longer values) paginate differently, and row-range intersection
// must still line up.
func TestCompoundCrossColumnPageAlignment(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(37)
	keys := appendNeedled(t, e.table, gen, 3000, 1) // every row has the needle
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	if _, err := e.cli.Index(ctx, "payload", component.KindFM); err != nil {
		t.Fatal(err)
	}
	// Every AND of (uuid, needle) must find exactly its row.
	for _, i := range []int{0, 1, 777, 1500, 2999} {
		res, err := e.cli.SearchCompound(ctx, CompoundQuery{
			Expr:     And(PredUUID("id", keys[i]), PredSubstring("payload", []byte("xyzneedle"))),
			Snapshot: -1, Output: "id",
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 1 || res.Matches[0].Row != int64(i) {
			t.Fatalf("row %d: matches = %+v", i, res.Matches)
		}
		if !bytes.Equal(res.Matches[0].Value, keys[i][:]) {
			t.Fatalf("row %d: wrong id value", i)
		}
	}
}
