// Package core implements the Rottnest index protocol (Section IV of
// the paper): the four client APIs — index, search, compact, vacuum —
// that maintain object-storage-resident secondary indices over a
// transactional data lake while preserving two invariants:
//
//   - Existence: every index file referenced by the metadata table is
//     present in the object storage bucket; and
//   - Consistency: an index file correctly indexes its associated
//     Parquet files if they still exist.
//
// The protocol is bolt-on and lazy: it never touches the lake's own
// log, requires only strong read-after-write consistency and
// conditional PUT (no atomic rename), and tolerates concurrent lake
// maintenance (compaction, deletes, vacuum) by indexing every new
// Parquet file regardless of its origin and filtering stale physical
// locations at search time.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/fmindex"
	"rottnest/internal/ivfpq"
	"rottnest/internal/lake"
	"rottnest/internal/meta"
	"rottnest/internal/objcache"
	"rottnest/internal/objectstore"
	"rottnest/internal/obs"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
	"rottnest/internal/trie"
)

// Errors returned by the client APIs.
var (
	// ErrAborted reports that an index or compact operation observed
	// a disappearing input (e.g. lake garbage collection removed a
	// file mid-scan) and must be retried.
	ErrAborted = errors.New("core: operation aborted, retry")
	// ErrTimeout reports that an index or compact operation exceeded
	// the index timeout and aborted before commit; its uploaded file
	// (if any) will be garbage collected by vacuum.
	ErrTimeout = errors.New("core: operation exceeded index timeout")
	// ErrBelowMinRows reports that too few new rows exist to justify
	// an index file (the paper's footnote 2: small batches are left
	// for brute-force scanning).
	ErrBelowMinRows = errors.New("core: new rows below index minimum")
	// ErrBadColumn reports an index/search against a column whose
	// type does not match the index kind.
	ErrBadColumn = errors.New("core: column type incompatible with index kind")
)

// Config tunes a Client.
type Config struct {
	// IndexDir is the key prefix (the paper's index_dir bucket) that
	// holds index files and the metadata table.
	IndexDir string
	// Clock is the world clock stamping index timeouts and vacuum
	// cutoffs. nil means the real wall clock; simulations pass the
	// world's VirtualClock.
	Clock simtime.Clock
	// Timeout is the index timeout: index/compact operations abort
	// rather than commit beyond it, and vacuum may physically delete
	// uncommitted objects older than it (Section IV-C). Defaults to
	// one hour.
	Timeout time.Duration
	// Trie, FM, and IVF tune the per-kind index construction.
	Trie trie.BuildOptions
	FM   fmindex.BuildOptions
	IVF  ivfpq.BuildOptions
	// MinVectorRows is the minimum number of new rows worth a vector
	// index file. Defaults to 64.
	MinVectorRows int64
	// SearchWidth caps a single search's request concurrency —
	// Rottnest searches run on one instance (Section VII-A), so
	// fan-outs over many index files proceed in waves of this width.
	// Defaults to 32.
	SearchWidth int
	// CacheBytes bounds the shared read cache the client layers over
	// the table's store: component tails, index components, data
	// pages, deletion vectors, and meta-log records are immutable, so
	// repeated and concurrent searches reuse them without re-GETting.
	// 0 means the 64 MiB default; negative disables the cache (and
	// range coalescing with it). Ignored when the table's store is
	// already a CachedStore — the client then joins that cache.
	CacheBytes int64
	// CoalesceGap merges adjacent ranged GETs of the same object
	// whose gap is at most this many bytes into one request (the
	// latency model is flat until ~1 MiB, so nearby pages cost one
	// TTFB instead of two). 0 means the 128 KiB default; negative
	// disables coalescing.
	CoalesceGap int64
	// DecodedCacheBytes bounds the decoded-object cache holding
	// per-query reconstruction results across queries: component
	// reader directories, manifests, FM/trie/IVF-PQ open results
	// (headers, checkpoints, centroids, codebooks — not posting
	// payloads), and deletion vectors. Where CacheBytes removes the
	// repeat GET, this removes the repeat decode CPU and the request
	// fan above it. 0 means the 64 MiB default; negative disables.
	// Invalidation is exact (vacuum/compact/append hooks), never
	// TTL-based, so results are identical with the cache on or off.
	DecodedCacheBytes int64
	// PlanCacheTTLVersions bounds the plan cache, which memoizes the
	// planning round (lake snapshot + metadata listing) keyed by
	// resolved snapshot version so repeat queries against an
	// unchanged table skip the planning LIST entirely. The value is
	// how many lake versions behind the latest commit a cached plan
	// may trail before being pruned (hygiene only — version keying,
	// not freshness, is what keeps results exact). 0 means the
	// default of 8; negative disables the plan cache.
	PlanCacheTTLVersions int
	// ProbeBatchBytes bounds the shared-probe batcher, which coalesces
	// identical index probes across concurrent queries (singleflight)
	// and memoizes recent probe results keyed by (index object,
	// normalized probe). Under concurrent skewed workloads N clients
	// asking the same question of the same immutable index pay one
	// walk. 0 means the 8 MiB default; negative disables batching.
	// Correctness does not depend on it: index objects are immutable
	// under their keys, and the deleting paths (vacuum, stale-index
	// replans) invalidate the batcher exactly as they do the decoded
	// cache.
	ProbeBatchBytes int64
	// DisableANDOrdering turns off cost-based ordering of top-level
	// AND children in the probe phase (cheap/selective children probed
	// first, expensive ones skipped when the running page-set
	// intersection is already empty). Results are identical either
	// way; the flag exists for differential testing and benchmarks.
	DisableANDOrdering bool
	// Retry, when Enabled, layers bounded exponential-backoff retries
	// (with read-back resolution of ambiguous conditional puts) under
	// the client's read cache. Off by default: fault-free stores need
	// no retries, and protocol tests inject faults expecting to see
	// them surface. Ignored when the table's store already has a
	// RetryStore in its chain — the client then shares it.
	Retry objectstore.RetryPolicy
}

func (c Config) withDefaults() Config {
	if !strings.HasSuffix(c.IndexDir, "/") {
		c.IndexDir += "/"
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Hour
	}
	if c.MinVectorRows <= 0 {
		c.MinVectorRows = 64
	}
	if c.SearchWidth <= 0 {
		c.SearchWidth = 32
	}
	return c
}

// Client is a Rottnest client bound to one lake table and one index
// directory. Clients are stateless beyond configuration: every API
// call re-plans against the current metadata table and lake snapshot,
// so any number of processes can run clients concurrently.
type Client struct {
	table *lake.Table
	store objectstore.Store
	clock simtime.Clock
	cfg   Config
	meta  *meta.Table
	// cache is the read cache on the client's store chain (nil when
	// disabled); inst is the instrumented store underneath, if any;
	// retry is the retry layer, if enabled. All three feed per-query
	// request accounting in Stats.
	cache *objectstore.CachedStore
	inst  *objectstore.Instrumented
	retry *objectstore.RetryStore
	// objc caches decoded objects (readers, manifests, index opens,
	// deletion vectors) across queries; plans caches planning rounds
	// keyed by snapshot version. Both are nil when disabled.
	objc  *objcache.Cache
	plans *planCache
	// batch coalesces and memoizes index probes across concurrent
	// queries (nil when disabled).
	batch *probeBatcher
	// reg holds the client's own "search.*" metrics; Metrics() merges
	// it with the store-layer registries and any attached extras.
	extraMu   sync.Mutex
	extraRegs []*obs.Registry

	// heat, when set, taps the search path for an adaptive
	// maintenance policy; see SetHeatObserver.
	heatMu sync.RWMutex
	heat   HeatObserver

	reg            *obs.Registry
	searches       *obs.Counter
	pagesProbed    *obs.Counter
	scannedFull    *obs.Counter
	pagesCandidate *obs.Counter
	pagesPruned    *obs.Counter
	probeRuns      *obs.Counter
	probeCoalesced *obs.Counter
	leavesSkipped  *obs.Counter
	occFetched     *obs.Counter
	occReused      *obs.Counter
	latencyHist    *obs.Histogram
}

// NewClient returns a client over the table, storing its index under
// cfg.IndexDir on the table's object store. The world clock comes
// from cfg.Clock (nil = real time).
//
// Unless cfg.CacheBytes is negative, the client's reads (index files,
// probed data pages, deletion vectors, metadata log) flow through a
// shared LRU read cache with singleflight coalescing, layered over
// the table's store. If the table was itself built on a CachedStore,
// that cache is reused — then lake snapshot reads share it too.
func NewClient(table *lake.Table, cfg Config) *Client {
	clock := cfg.Clock
	if clock == nil {
		clock = simtime.RealClock{}
	}
	cfg = cfg.withDefaults()
	store := table.Store()
	// Retries sit under the cache: hits never pay the retry loop, and
	// every upstream request (including metadata commits) is protected.
	retry := objectstore.FindRetry(store)
	if retry == nil && cfg.Retry.Enabled {
		retry = objectstore.NewRetryStore(store, cfg.Retry)
		store = retry
	}
	cache := objectstore.FindCached(store)
	if cache == nil && cfg.CacheBytes >= 0 {
		cache = objectstore.NewCachedStore(store, objectstore.CacheOptions{
			MaxBytes:    cfg.CacheBytes,
			CoalesceGap: cfg.CoalesceGap,
		})
		store = cache
	}
	reg := obs.NewRegistry()
	var objc *objcache.Cache
	if cfg.DecodedCacheBytes >= 0 {
		objc = objcache.New(cfg.DecodedCacheBytes)
	}
	var plans *planCache
	if cfg.PlanCacheTTLVersions >= 0 {
		plans = newPlanCache(cfg.PlanCacheTTLVersions, reg)
	}
	c := &Client{
		table:          table,
		store:          store,
		clock:          clock,
		cfg:            cfg,
		meta:           meta.New(store, clock, cfg.IndexDir+"_meta/"),
		cache:          cache,
		inst:           objectstore.FindInstrumented(store),
		retry:          retry,
		objc:           objc,
		plans:          plans,
		reg:            reg,
		searches:       reg.Counter("search.queries"),
		pagesProbed:    reg.Counter("search.pages_probed"),
		scannedFull:    reg.Counter("search.files_scanned"),
		pagesCandidate: reg.Counter("search.pages_candidate"),
		pagesPruned:    reg.Counter("search.pages_pruned"),
		probeRuns:      reg.Counter("search.probe_runs"),
		probeCoalesced: reg.Counter("search.probe_coalesced"),
		leavesSkipped:  reg.Counter("search.leaves_skipped"),
		occFetched:     reg.Counter("search.occ_fetched"),
		occReused:      reg.Counter("search.occ_reused"),
		latencyHist:    reg.Histogram("search.latency_ns"),
	}
	if cfg.ProbeBatchBytes >= 0 {
		c.batch = newProbeBatcher(cfg.ProbeBatchBytes, c.probeCoalesced)
	}
	// Lake hooks keep the warm caches exact under mutation through
	// this table handle: commits advance the plan cache's latest
	// version, and lake vacuum drops decoded deletion vectors for the
	// files it physically deleted.
	if plans != nil {
		table.OnCommit(plans.noteCommit)
	}
	if objc != nil {
		root := table.Root()
		table.OnVacuum(func(removed []string) {
			for _, rel := range removed {
				objc.Invalidate(root + rel)
			}
		})
	}
	return c
}

// Meta exposes the metadata table (tests and tooling).
func (c *Client) Meta() *meta.Table { return c.meta }

// Table returns the underlying lake table.
func (c *Client) Table() *lake.Table { return c.table }

// Metrics returns one merged snapshot of every metrics registry on
// the client's store chain plus the client's own search counters:
// "store.*" (request/byte totals), "cache.*" (hit/miss/eviction),
// "retry.*" (recovery work), "objcache.*" (decoded-object cache,
// aggregate and per-kind), and "search.*" (query counts, pages
// probed, plan-cache activity, latency histogram), plus any attached
// registries ("ingest.*" when a writer/scheduler is wired in). The
// legacy per-layer stats structs (objectstore.CacheStatsFrom,
// RetryStatsFrom) are views derived from this snapshot.
func (c *Client) Metrics() obs.Snapshot {
	var snaps []obs.Snapshot
	if c.retry != nil {
		snaps = append(snaps, c.retry.Registry().Snapshot())
	}
	if c.inst != nil {
		snaps = append(snaps, c.inst.Registry().Snapshot())
	}
	if c.cache != nil {
		snaps = append(snaps, c.cache.Registry().Snapshot())
	}
	if c.objc != nil {
		snaps = append(snaps, c.objc.Registry().Snapshot())
	}
	snaps = append(snaps, c.reg.Snapshot())
	c.extraMu.Lock()
	extras := make([]*obs.Registry, len(c.extraRegs))
	copy(extras, c.extraRegs)
	c.extraMu.Unlock()
	for _, r := range extras {
		snaps = append(snaps, r.Snapshot())
	}
	return obs.Merge(snaps...)
}

// AttachRegistry adds a registry to the client's Metrics merge, so
// subsystems built beside the client (the ingest writer and
// scheduler) surface through the one snapshot. Registries should use
// prefix-disjoint names ("ingest.*").
func (c *Client) AttachRegistry(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.extraMu.Lock()
	c.extraRegs = append(c.extraRegs, reg)
	c.extraMu.Unlock()
}

// indexFilePrefix is where index files live under IndexDir.
const indexFilePrefix = "files/"

// Manifest is component 0 of every index file: the table of Parquet
// files the index covers, with each file's page table (Section V-A) so
// searches can translate page refs to exact byte ranges without
// touching Parquet footers.
type Manifest struct {
	Column string         `json:"column"`
	Kind   component.Kind `json:"kind"`
	Files  []ManifestFile `json:"files"`
}

// ManifestFile is one covered Parquet file.
type ManifestFile struct {
	// Path is the lake-relative file path.
	Path string `json:"path"`
	// Rows is the file's row count.
	Rows int64 `json:"rows"`
	// Pages is the page table of the indexed column.
	Pages parquet.PageTable `json:"pages"`
}

// readManifest fetches and parses component 0 of an index file.
func readManifest(ctx context.Context, r *component.Reader) (*Manifest, error) {
	data, err := r.Component(ctx, 0)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("core: parse manifest of %s: %w", r.Key(), err)
	}
	return &m, nil
}

// kindForColumn validates that the column can host the index kind and
// returns the schema column.
func kindForColumn(schema *parquet.Schema, column string, kind component.Kind) (int, parquet.Column, error) {
	ci := schema.ColumnIndex(column)
	if ci < 0 {
		return 0, parquet.Column{}, fmt.Errorf("core: column %q not in schema: %w", column, ErrBadColumn)
	}
	col := schema.Columns[ci]
	switch kind {
	case component.KindTrie:
		if col.Type != parquet.TypeFixedLenByteArray || col.TypeLen != trie.KeyLen {
			return 0, parquet.Column{}, fmt.Errorf("core: trie index needs FIXED_LEN_BYTE_ARRAY(16) column, %q is %v(%d): %w", column, col.Type, col.TypeLen, ErrBadColumn)
		}
	case component.KindFM:
		if col.Type != parquet.TypeByteArray {
			return 0, parquet.Column{}, fmt.Errorf("core: substring index needs BYTE_ARRAY column, %q is %v: %w", column, col.Type, ErrBadColumn)
		}
	case component.KindIVFPQ:
		if col.Type != parquet.TypeFixedLenByteArray || col.TypeLen%4 != 0 || col.TypeLen == 0 {
			return 0, parquet.Column{}, fmt.Errorf("core: vector index needs FIXED_LEN_BYTE_ARRAY(4*dim) column, %q is %v(%d): %w", column, col.Type, col.TypeLen, ErrBadColumn)
		}
	default:
		return 0, parquet.Column{}, fmt.Errorf("core: unknown index kind %d", kind)
	}
	return ci, col, nil
}

// coverEntries greedily selects metadata entries until no entry adds
// coverage of an active path, returning the chosen entries and the
// covered set. Both search planning and vacuum use it: it maximizes
// covered Parquet files while heuristically minimizing index files
// (Section IV-C).
func coverEntries(entries []meta.IndexEntry, active map[string]bool) ([]meta.IndexEntry, map[string]bool) {
	covered := make(map[string]bool)
	remaining := append([]meta.IndexEntry(nil), entries...)
	var chosen []meta.IndexEntry
	for {
		bestGain, bestIdx := 0, -1
		for i, e := range remaining {
			gain := 0
			for _, f := range e.Files {
				if active[f] && !covered[f] {
					gain++
				}
			}
			if gain > bestGain {
				bestGain, bestIdx = gain, i
			}
		}
		if bestIdx < 0 {
			return chosen, covered
		}
		e := remaining[bestIdx]
		chosen = append(chosen, e)
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		for _, f := range e.Files {
			if active[f] {
				covered[f] = true
			}
		}
	}
}

// CheckExistence verifies the Existence invariant (Lemma 1): every
// index file referenced by the metadata table is present in the
// bucket. Tests run it between and during concurrent operations.
func (c *Client) CheckExistence(ctx context.Context) error {
	entries, err := c.meta.List(ctx)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if _, err := c.store.Head(ctx, e.IndexKey); err != nil {
			return fmt.Errorf("core: existence violated for %s: %w", e.IndexKey, err)
		}
	}
	return nil
}
