package core

import (
	"context"
	"errors"
	"strings"

	"rottnest/internal/lake"
	"rottnest/internal/meta"
	"rottnest/internal/obs"
)

// VacuumOptions tune garbage collection.
type VacuumOptions struct {
	// KeepSnapshot is the oldest lake snapshot version whose files
	// must stay searchable (the paper's snapshot_id); index files
	// are retained if they cover files of any snapshot at or after
	// it. Values < 1 mean "latest only".
	KeepSnapshot int64
}

// VacuumReport summarizes what a vacuum removed.
type VacuumReport struct {
	// DroppedEntries are the metadata rows deleted in the commit
	// step.
	DroppedEntries []string
	// RemovedObjects are the index files physically deleted.
	RemovedObjects []string
	// KeptEntries is the number of live metadata rows afterwards.
	KeptEntries int
}

// Vacuum garbage-collects the index directory (Section IV-C):
//
//  1. Plan: compute the Parquet files of every retained snapshot,
//     then greedily keep the index files covering the most active
//     files; entries adding no coverage are redundant.
//  2. Commit: delete the redundant entries from the metadata table.
//  3. Remove: physically delete index objects that are no longer in
//     the metadata table AND are older than the index timeout — a
//     younger uncommitted object may belong to an in-flight indexer,
//     which is exactly why the timeout exists (commit-then-delete
//     here, versus upload-then-commit in index/compact, preserves
//     the Existence invariant in both directions).
//
// Object age is judged by the store's own clock, which is valid
// because modern object stores are strongly consistent and expose a
// single global clock.
func (c *Client) Vacuum(ctx context.Context, opts VacuumOptions) (*VacuumReport, error) {
	report := &VacuumReport{}
	// Pin the age cutoff now, before reading the metadata table. An
	// indexer that commits after our metadata read re-checks its own
	// timeout post-commit (and rolls back on overshoot), so any object
	// older than vacuum-start-minus-timeout that is still unreferenced
	// below is provably orphaned. Computing the cutoff later would
	// reopen the race: the clock can pass the deadline between our
	// metadata read and the object sweep.
	cutoff := c.clock.Now().Add(-c.cfg.Timeout)

	// Plan: active paths across retained snapshots.
	pctx, planSpan := obs.Start(ctx, "vacuum.plan")
	defer planSpan.End()
	latest, err := c.table.Version(pctx)
	if err != nil {
		return nil, err
	}
	keep := opts.KeepSnapshot
	if keep < 1 || keep > latest {
		keep = latest
	}
	active := make(map[string]bool)
	for v := keep; v <= latest; v++ {
		snap, err := c.table.SnapshotAt(pctx, v)
		if err != nil {
			if errors.Is(err, lake.ErrNoSnapshot) {
				continue
			}
			return nil, err
		}
		for _, f := range snap.Files {
			active[f.Path] = true
		}
	}

	// Greedy cover per (column, kind) group.
	entries, err := c.meta.List(pctx)
	if err != nil {
		return nil, err
	}
	groups := make(map[string][]meta.IndexEntry)
	for _, e := range entries {
		key := e.Column + "\x00" + string(rune(e.Kind))
		groups[key] = append(groups[key], e)
	}
	kept := make(map[string]bool)
	for _, group := range groups {
		chosen, _ := coverEntries(group, active)
		for _, e := range chosen {
			kept[e.IndexKey] = true
		}
	}
	var dropped []string
	for _, e := range entries {
		if !kept[e.IndexKey] {
			dropped = append(dropped, e.IndexKey)
		}
	}
	planSpan.SetAttr("entries", len(entries))
	planSpan.SetAttr("dropped", len(dropped))
	planSpan.End() // idempotent: the defer covers the error returns above

	// Commit.
	if len(dropped) > 0 {
		cctx, commitSpan := obs.Start(ctx, "vacuum.commit")
		defer commitSpan.End()
		commitSpan.SetAttr("dropped", len(dropped))
		if err := c.meta.Delete(cctx, dropped...); err != nil {
			return nil, err
		}
		// The metadata table changed without a lake commit, so cached
		// plans would keep probing the dropped entries until their
		// index objects vanish; drop the plans now.
		c.plans.invalidateAll()
		commitSpan.End()
	}
	report.DroppedEntries = dropped
	report.KeptEntries = len(kept)

	// Remove: LIST the index directory (acceptable because vacuum is
	// infrequent) and delete unreferenced, out-of-timeout objects.
	rctx, removeSpan := obs.Start(ctx, "vacuum.remove")
	defer removeSpan.End()
	live, err := c.meta.List(rctx)
	if err != nil {
		return nil, err
	}
	referenced := make(map[string]bool, len(live))
	for _, e := range live {
		referenced[e.IndexKey] = true
	}
	infos, err := c.store.List(rctx, c.cfg.IndexDir+indexFilePrefix)
	if err != nil {
		return nil, err
	}
	for _, info := range infos {
		if referenced[info.Key] || !strings.HasSuffix(info.Key, ".index") {
			continue
		}
		if info.Created.After(cutoff) {
			continue // may belong to an in-flight indexer
		}
		if err := c.store.Delete(rctx, info.Key); err != nil {
			return nil, err
		}
		// Every decoded form of the deleted object (reader, manifest,
		// index open result) and every memoized probe of it must not
		// serve again.
		c.objc.Invalidate(info.Key)
		c.batch.invalidateIndex(info.Key)
		report.RemovedObjects = append(report.RemovedObjects, info.Key)
	}
	removeSpan.SetAttr("removed", len(report.RemovedObjects))
	return report, nil
}
