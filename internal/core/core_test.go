package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

// env bundles a simulated world: clock, store, lake table, client.
// The store is an instrumented MemStore, so searches run inside
// simtime sessions accumulate realistic virtual latency.
type env struct {
	clock *simtime.VirtualClock
	mem   *objectstore.MemStore
	store *objectstore.Instrumented
	table *lake.Table
	cli   *Client
}

var uuidSchema = parquet.MustSchema(
	parquet.Column{Name: "id", Type: parquet.TypeFixedLenByteArray, TypeLen: 16},
	parquet.Column{Name: "payload", Type: parquet.TypeByteArray},
)

var textSchema = parquet.MustSchema(
	parquet.Column{Name: "body", Type: parquet.TypeByteArray},
)

func vecSchema(dim int) *parquet.Schema {
	return parquet.MustSchema(
		parquet.Column{Name: "emb", Type: parquet.TypeFixedLenByteArray, TypeLen: 4 * dim},
	)
}

func newEnv(t testing.TB, schema *parquet.Schema, cfg Config) *env {
	t.Helper()
	clock := simtime.NewVirtualClock()
	mem := objectstore.NewMemStore(clock)
	store, _ := objectstore.Instrument(mem, objectstore.DefaultS3Model())
	table, err := lake.CreateWith(context.Background(), store, "lake", schema, lake.OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.IndexDir == "" {
		cfg.IndexDir = "rottnest"
	}
	cfg.Clock = clock
	return &env{clock: clock, mem: mem, store: store, table: table, cli: NewClient(table, cfg)}
}

// appendUUIDs appends a batch of uuid rows and returns the keys.
func (e *env) appendUUIDs(t testing.TB, gen *workload.UUIDGen, n int) ([][16]byte, string) {
	t.Helper()
	keys := gen.Batch(n)
	b := parquet.NewBatch(uuidSchema)
	ids := make([][]byte, n)
	payloads := make([][]byte, n)
	for i, k := range keys {
		kk := k
		ids[i] = kk[:]
		payloads[i] = []byte(fmt.Sprintf("payload-%d", i))
	}
	b.Cols[0] = parquet.ColumnValues{Bytes: ids}
	b.Cols[1] = parquet.ColumnValues{Bytes: payloads}
	path, err := e.table.Append(context.Background(), b, parquet.WriterOptions{RowGroupRows: 512, PageBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return keys, path
}

func (e *env) appendDocs(t testing.TB, docs []string) string {
	t.Helper()
	b := parquet.NewBatch(textSchema)
	vals := make([][]byte, len(docs))
	for i, d := range docs {
		vals[i] = []byte(d)
	}
	b.Cols[0] = parquet.ColumnValues{Bytes: vals}
	path, err := e.table.Append(context.Background(), b, parquet.WriterOptions{RowGroupRows: 256, PageBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func (e *env) appendVectors(t testing.TB, vecs [][]float32) string {
	t.Helper()
	schema := vecSchema(len(vecs[0]))
	b := parquet.NewBatch(schema)
	vals := make([][]byte, len(vecs))
	for i, v := range vecs {
		vals[i] = workload.Float32sToBytes(v)
	}
	b.Cols[0] = parquet.ColumnValues{Bytes: vals}
	path, err := e.table.Append(context.Background(), b, parquet.WriterOptions{RowGroupRows: 512, PageBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func uuidQuery(k [16]byte) Query {
	kk := k
	return Query{Column: "id", UUID: &kk, K: 10, Snapshot: -1}
}

func TestUUIDIndexAndSearchEndToEnd(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(1)
	keys1, _ := e.appendUUIDs(t, gen, 2000)
	keys2, _ := e.appendUUIDs(t, gen, 2000)

	entry, err := e.cli.Index(ctx, "id", component.KindTrie)
	if err != nil {
		t.Fatal(err)
	}
	if entry == nil || len(entry.Files) != 2 || entry.Rows != 4000 {
		t.Fatalf("entry = %+v", entry)
	}
	// Idempotent: nothing new.
	again, err := e.cli.Index(ctx, "id", component.KindTrie)
	if err != nil || again != nil {
		t.Fatalf("re-index = %+v, %v", again, err)
	}

	for _, k := range append(keys1[:50:50], keys2[:50]...) {
		res, err := e.cli.Search(ctx, uuidQuery(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 1 {
			t.Fatalf("matches = %d for key %x", len(res.Matches), k)
		}
		if !bytes.Equal(res.Matches[0].Value, k[:]) {
			t.Fatalf("wrong value returned")
		}
		if res.Stats.IndexFiles != 1 || res.Stats.UnindexedFiles != 0 || res.Stats.FilesScanned != 0 {
			t.Fatalf("stats = %+v", res.Stats)
		}
	}
	// A missing key finds nothing and doesn't scan.
	miss := workload.NewUUIDGen(999).Next()
	res, err := e.cli.Search(ctx, uuidQuery(miss))
	if err != nil {
		t.Fatal(err)
	}
	// With K=10 and <K matches, unindexed files would be scanned —
	// but everything is indexed, so no scans.
	if len(res.Matches) != 0 || res.Stats.FilesScanned != 0 {
		t.Fatalf("miss: %+v", res.Stats)
	}
}

func TestSearchFindsUnindexedViaScan(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(2)
	keysOld, _ := e.appendUUIDs(t, gen, 1000)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	// New data arrives after indexing — the RocksDB-like "newest data
	// unindexed" state.
	keysNew, _ := e.appendUUIDs(t, gen, 1000)

	res, err := e.cli.Search(ctx, uuidQuery(keysNew[42]))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("unindexed key not found: %+v", res.Stats)
	}
	if res.Stats.FilesScanned != 1 || res.Stats.UnindexedFiles != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	// Indexed keys are still found via the index; the unindexed file
	// is scanned only because matches < K.
	res, err = e.cli.Search(ctx, uuidQuery(keysOld[7]))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatal("indexed key lost")
	}
}

func TestSearchHonorsSnapshotTimeTravel(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(3)
	keys1, _ := e.appendUUIDs(t, gen, 500) // snapshot v2
	keys2, _ := e.appendUUIDs(t, gen, 500) // snapshot v3
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	// Searching snapshot v2 must not see keys2.
	q := uuidQuery(keys2[0])
	q.Snapshot = 2
	res, err := e.cli.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Fatal("time travel leaked future rows")
	}
	q = uuidQuery(keys1[0])
	q.Snapshot = 2
	res, err = e.cli.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatal("time travel lost past rows")
	}
}

func TestDeletionVectorsMaskResults(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(4)
	keys, path := e.appendUUIDs(t, gen, 300)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	// Delete row 42 from the lake; the index still points at it.
	if err := e.table.DeleteRows(ctx, path, []uint32{42}); err != nil {
		t.Fatal(err)
	}
	res, err := e.cli.Search(ctx, uuidQuery(keys[42]))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Fatal("deleted row returned")
	}
	// Neighbors survive.
	res, err = e.cli.Search(ctx, uuidQuery(keys[41]))
	if err != nil || len(res.Matches) != 1 {
		t.Fatalf("neighbor lost: %d, %v", len(res.Matches), err)
	}
}

func TestLakeCompactionInvalidatesAndReindexes(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(5)
	keys1, _ := e.appendUUIDs(t, gen, 400)
	keys2, _ := e.appendUUIDs(t, gen, 400)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	// Lake compaction rewrites both files into one new file.
	newPaths, err := e.table.Compact(ctx, 1<<30, 0)
	if err != nil || len(newPaths) == 0 {
		t.Fatalf("lake compact: %v, %v", newPaths, err)
	}
	// The old index now covers zero snapshot files; search must fall
	// back to scanning and still find everything.
	res, err := e.cli.Search(ctx, uuidQuery(keys1[5]))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatal("row lost after lake compaction")
	}
	if res.Stats.FilesScanned == 0 {
		t.Fatalf("expected scan fallback, stats = %+v", res.Stats)
	}
	// Re-index covers the new files; search uses the index again.
	entry, err := e.cli.Index(ctx, "id", component.KindTrie)
	if err != nil || entry == nil {
		t.Fatalf("re-index: %+v, %v", entry, err)
	}
	res, err = e.cli.Search(ctx, uuidQuery(keys2[7]))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Stats.FilesScanned != 0 {
		t.Fatalf("post-reindex search: %d matches, stats %+v", len(res.Matches), res.Stats)
	}
	if err := e.cli.CheckExistence(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSubstringIndexAndSearch(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, textSchema, Config{})
	gen := workload.NewTextGen(workload.DefaultTextConfig(6))
	docs := workload.PlantNeedle(gen.Docs(400), "KlaatuBarada", []int{11, 222})
	e.appendDocs(t, docs)
	e.appendDocs(t, workload.PlantNeedle(gen.Docs(400), "KlaatuBarada", []int{300}))

	if _, err := e.cli.Index(ctx, "body", component.KindFM); err != nil {
		t.Fatal(err)
	}
	res, err := e.cli.Search(ctx, Query{Column: "body", Substring: []byte("KlaatuBarada"), K: 0, Snapshot: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("matches = %d, want 3", len(res.Matches))
	}
	for _, m := range res.Matches {
		if !bytes.Contains(m.Value, []byte("KlaatuBarada")) {
			t.Fatal("false positive survived probing")
		}
	}
	// Top-K stops early.
	res, err = e.cli.Search(ctx, Query{Column: "body", Substring: []byte("KlaatuBarada"), K: 1, Snapshot: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("K=1 returned %d", len(res.Matches))
	}
	// Absent needle.
	res, err = e.cli.Search(ctx, Query{Column: "body", Substring: []byte("NoSuchNeedleAnywhere"), K: 0, Snapshot: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Fatal("phantom matches")
	}
}

func TestVectorIndexAndSearch(t *testing.T) {
	ctx := context.Background()
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 7, Dim: 16, Clusters: 16, Spread: 0.15})
	const n = 3000
	vecs := gen.Batch(n)
	e := newEnv(t, vecSchema(16), Config{})
	e.appendVectors(t, vecs)

	if _, err := e.cli.Index(ctx, "emb", component.KindIVFPQ); err != nil {
		t.Fatal(err)
	}
	queries := gen.Queries(20)
	const k = 10
	var recallSum float64
	for _, q := range queries {
		res, err := e.cli.Search(ctx, Query{Column: "emb", Vector: q, K: k, NProbe: 16, Refine: 80, Snapshot: -1})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != k {
			t.Fatalf("matches = %d", len(res.Matches))
		}
		got := make([]int, len(res.Matches))
		for i, m := range res.Matches {
			got[i] = int(m.Row)
		}
		recallSum += workload.Recall(got, workload.ExactNearest(vecs, q, k))
	}
	if recall := recallSum / float64(len(queries)); recall < 0.75 {
		t.Fatalf("recall@10 = %.3f", recall)
	}
}

func TestVectorSearchMergesUnindexedExactly(t *testing.T) {
	ctx := context.Background()
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 8, Dim: 8, Clusters: 8, Spread: 0.2})
	e := newEnv(t, vecSchema(8), Config{})
	vecs1 := gen.Batch(1500)
	e.appendVectors(t, vecs1)
	if _, err := e.cli.Index(ctx, "emb", component.KindIVFPQ); err != nil {
		t.Fatal(err)
	}
	// New unindexed vectors, one of which is planted to be the exact
	// query — it must win via the exhaustive scan of unindexed files.
	q := gen.Queries(1)[0]
	vecs2 := gen.Batch(99)
	vecs2 = append(vecs2, q)
	e.appendVectors(t, vecs2)

	res, err := e.cli.Search(ctx, Query{Column: "emb", Vector: q, K: 1, NProbe: 8, Snapshot: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].Score != 0 {
		t.Fatalf("planted exact match lost: %+v", res.Matches)
	}
	if res.Stats.FilesScanned != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestIndexValidation(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(9)
	e.appendUUIDs(t, gen, 100)
	// Wrong column type for kind.
	if _, err := e.cli.Index(ctx, "payload", component.KindTrie); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("trie on byte-array: %v", err)
	}
	if _, err := e.cli.Index(ctx, "id", component.KindFM); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("fm on fixed-len: %v", err)
	}
	if _, err := e.cli.Index(ctx, "missing", component.KindTrie); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("missing column: %v", err)
	}
	// Vector min-rows gate.
	e2 := newEnv(t, vecSchema(8), Config{MinVectorRows: 1000})
	e2.appendVectors(t, workload.NewVectorGen(workload.VectorConfig{Seed: 10, Dim: 8, Clusters: 2}).Batch(100))
	if _, err := e2.cli.Index(ctx, "emb", component.KindIVFPQ); !errors.Is(err, ErrBelowMinRows) {
		t.Fatalf("min rows gate: %v", err)
	}
}

func TestQueryValidation(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(11)
	e.appendUUIDs(t, gen, 10)
	if _, err := e.cli.Search(ctx, Query{Column: "id"}); err == nil {
		t.Fatal("query with no predicate accepted")
	}
	k := gen.Next()
	if _, err := e.cli.Search(ctx, Query{Column: "id", UUID: &k, Substring: []byte("x")}); err == nil {
		t.Fatal("query with two predicates accepted")
	}
	if _, err := e.cli.Search(ctx, Query{Column: "id", Vector: []float32{1}, K: 0}); err == nil {
		t.Fatal("vector query without K accepted")
	}
}

func TestCompactMergesIndexFiles(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(12)
	var allKeys [][16]byte
	// Five appends, each indexed separately -> five small index files.
	for i := 0; i < 5; i++ {
		keys, _ := e.appendUUIDs(t, gen, 300)
		allKeys = append(allKeys, keys...)
		if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
			t.Fatal(err)
		}
	}
	entries, _ := e.cli.Meta().ListFor(ctx, "id", component.KindTrie)
	if len(entries) != 5 {
		t.Fatalf("entries = %d", len(entries))
	}

	merged, err := e.cli.Compact(ctx, "id", component.KindTrie, CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 1 || len(merged[0].Files) != 5 {
		t.Fatalf("merged = %+v", merged)
	}
	// Old entries remain until vacuum; search planning prefers the
	// merged entry (max coverage) and touches one index file.
	res, err := e.cli.Search(ctx, uuidQuery(allKeys[100]))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatal("key lost after compaction")
	}
	if res.Stats.IndexFiles != 1 {
		t.Fatalf("compacted search touched %d index files", res.Stats.IndexFiles)
	}
	if err := e.cli.CheckExistence(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestVacuumDropsRedundantAndOrphans(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{Timeout: time.Hour})
	gen := workload.NewUUIDGen(13)
	var allKeys [][16]byte
	for i := 0; i < 3; i++ {
		keys, _ := e.appendUUIDs(t, gen, 200)
		allKeys = append(allKeys, keys...)
		if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.cli.Compact(ctx, "id", component.KindTrie, CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	// Plant an orphan upload (indexer that died before commit).
	orphan := e.cli.cfg.IndexDir + indexFilePrefix + "deadbeef.index"
	if err := e.store.Put(ctx, orphan, []byte("orphan")); err != nil {
		t.Fatal(err)
	}

	// Young orphan + fresh entries: vacuum drops redundant metadata
	// rows but must keep the young orphan object.
	report, err := e.cli.Vacuum(ctx, VacuumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.DroppedEntries) != 3 || report.KeptEntries != 1 {
		t.Fatalf("report = %+v", report)
	}
	if _, err := e.store.Head(ctx, orphan); err != nil {
		t.Fatal("young orphan deleted before timeout")
	}
	if err := e.cli.CheckExistence(ctx); err != nil {
		t.Fatal(err)
	}

	// After the timeout, physical removal happens.
	e.clock.Advance(2 * time.Hour)
	report, err = e.cli.Vacuum(ctx, VacuumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.RemovedObjects) != 4 { // 3 pre-compaction files + orphan
		t.Fatalf("removed = %v", report.RemovedObjects)
	}
	if _, err := e.store.Head(ctx, orphan); !errors.Is(err, objectstore.ErrNotFound) {
		t.Fatal("orphan survived post-timeout vacuum")
	}
	// Searches still work off the single compacted index.
	res, err := e.cli.Search(ctx, uuidQuery(allKeys[42]))
	if err != nil || len(res.Matches) != 1 {
		t.Fatalf("post-vacuum search: %d, %v", len(res.Matches), err)
	}
	if err := e.cli.CheckExistence(ctx); err != nil {
		t.Fatal(err)
	}
}

// advancingStore advances the virtual clock on every operation,
// modelling wall time passing during IO.
type advancingStore struct {
	objectstore.Store
	clock *simtime.VirtualClock
	step  time.Duration
}

func (s *advancingStore) Put(ctx context.Context, key string, data []byte) error {
	s.clock.Advance(s.step)
	return s.Store.Put(ctx, key, data)
}

func (s *advancingStore) GetRange(ctx context.Context, key string, off, n int64) ([]byte, error) {
	s.clock.Advance(s.step)
	return s.Store.GetRange(ctx, key, off, n)
}

func TestIndexTimeoutWithAdvancingClock(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	mem := objectstore.NewMemStore(clock)
	slow := &advancingStore{Store: mem, clock: clock, step: 10 * time.Minute}
	table, err := lake.CreateWith(ctx, slow, "lake", uuidSchema, lake.OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(table, Config{Clock: clock, IndexDir: "rottnest", Timeout: time.Hour})

	gen := workload.NewUUIDGen(15)
	keys := gen.Batch(100)
	b := parquet.NewBatch(uuidSchema)
	ids := make([][]byte, len(keys))
	pay := make([][]byte, len(keys))
	for i := range keys {
		k := keys[i]
		ids[i] = k[:]
		pay[i] = []byte("x")
	}
	b.Cols[0] = parquet.ColumnValues{Bytes: ids}
	b.Cols[1] = parquet.ColumnValues{Bytes: pay}
	if _, err := table.Append(ctx, b, parquet.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	// Each IO advances 10 minutes; indexing needs several, blowing a
	// 1-hour... not quite: scan+put is ~3 ops = 30min < 1h. Tighten.
	cli.cfg.Timeout = 15 * time.Minute
	_, err = cli.Index(ctx, "id", component.KindTrie)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// Nothing was committed: the metadata table is empty and a fresh
	// retry (with a sane timeout) succeeds.
	entries, err := cli.Meta().List(ctx)
	if err != nil || len(entries) != 0 {
		t.Fatalf("entries after abort = %v, %v", entries, err)
	}
	cli.cfg.Timeout = 24 * time.Hour
	if _, err := cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	if err := cli.CheckExistence(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestIndexAbortsWhenInputVanishes(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(16)
	_, path := e.appendUUIDs(t, gen, 100)
	// Simulate lake GC racing the indexer: the file is deleted from
	// under it (still in the snapshot manifest).
	if err := e.store.Delete(ctx, e.table.Root()+path); err != nil {
		t.Fatal(err)
	}
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	entries, _ := e.cli.Meta().List(ctx)
	if len(entries) != 0 {
		t.Fatal("aborted index committed metadata")
	}
}

func TestFailedCommitLeavesOrphanNotCorruption(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	mem := objectstore.NewMemStore(clock)
	// Fail the FIRST meta-table commit PUT (the one after the index
	// file upload), modelling an indexer that dies between upload and
	// commit; subsequent attempts succeed.
	var fired bool
	fs := objectstore.NewFaultStore(mem, func(op objectstore.Op, key string, _ int64) bool {
		if fired || op != objectstore.OpPut || !bytes.Contains([]byte(key), []byte("rottnest/_meta/")) {
			return false
		}
		fired = true
		return true
	})
	table, err := lake.CreateWith(ctx, fs, "lake", uuidSchema, lake.OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(table, Config{Clock: clock, IndexDir: "rottnest"})
	gen := workload.NewUUIDGen(17)
	keys := gen.Batch(50)
	b := parquet.NewBatch(uuidSchema)
	ids := make([][]byte, len(keys))
	pay := make([][]byte, len(keys))
	for i := range keys {
		k := keys[i]
		ids[i] = k[:]
		pay[i] = []byte("x")
	}
	b.Cols[0] = parquet.ColumnValues{Bytes: ids}
	b.Cols[1] = parquet.ColumnValues{Bytes: pay}
	if _, err := table.Append(ctx, b, parquet.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Index(ctx, "id", component.KindTrie); !errors.Is(err, objectstore.ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	// Existence holds (metadata is empty); the orphan index file sits
	// in the bucket awaiting vacuum, and a retry succeeds.
	if err := cli.CheckExistence(ctx); err != nil {
		t.Fatal(err)
	}
	infos, _ := mem.List(ctx, "rottnest/files/")
	if len(infos) != 1 {
		t.Fatalf("orphans = %d", len(infos))
	}
	// The fault fired once; the retry succeeds (the orphan stays
	// behind for vacuum) and search works.
	if _, err := cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	infos, _ = mem.List(ctx, "rottnest/files/")
	if len(infos) != 2 {
		t.Fatalf("index files = %d, want committed + orphan", len(infos))
	}
	res, err := cli.Search(ctx, uuidQuery(keys[0]))
	if err != nil || len(res.Matches) != 1 {
		t.Fatalf("post-retry search: %d, %v", len(res.Matches), err)
	}
	if err := cli.CheckExistence(ctx); err != nil {
		t.Fatal(err)
	}
}
