package core

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"rottnest/internal/obs"
	"rottnest/internal/simtime"
)

// DefaultProbeBatchBytes is the probe batcher's default memo budget,
// used when Config.ProbeBatchBytes is zero.
const DefaultProbeBatchBytes = 8 << 20

// probeBatcher coalesces identical index probes across concurrent
// queries (singleflight) and memoizes their results in a small
// byte-budgeted LRU. Keys combine the index object key with the
// normalized probe (predicate pattern plus bound), so N clients
// walking the same FM checkpoint or trie root for the same pattern
// pay one walk whose result fans out to all waiters — the collision
// pattern the Zipf serve workload generates.
//
// Memoization is safe for the same reason the decoded-object cache
// is: an index object is immutable under its key, so a probe result
// (a posting list) can only go stale by deletion of the index object
// — and the deleting paths (vacuum's physical removal, the search
// replan on a vanished index) call invalidateIndex. Snapshot version
// does not enter the key: postings are positions within the immutable
// index file, and stale physical locations are filtered against the
// snapshot after the probe, exactly as for an uncoalesced probe.
type probeBatcher struct {
	maxBytes int64
	gen      atomic.Int64

	// coalesced counts probes answered without an index walk (joined
	// an in-flight probe or hit the memo); runs is owned by the
	// executor (it counts walks actually performed).
	coalesced *obs.Counter

	fmu     sync.Mutex
	flights map[string]*probeFlight

	// qmu guards fqueues, the per-index wave queues of the FM group
	// path (doFMBatch).
	qmu     sync.Mutex
	fqueues map[string]*fmQueue

	mu      sync.Mutex
	lru     *list.List
	items   map[string]*list.Element
	byIndex map[string]map[string]*list.Element
	bytes   int64
}

type probeFlight struct {
	wg    sync.WaitGroup
	val   any
	err   error
	vcost time.Duration
	// runner is the session that executed the probe; a caller whose
	// flight another session ran charges vcost instead (it did no store
	// reads of its own).
	runner *simtime.Session
}

type probeEntry struct {
	key      string
	indexKey string
	val      any
	cost     int64
}

// newProbeBatcher returns a batcher with the given memo budget (<= 0
// means the default).
func newProbeBatcher(maxBytes int64, coalesced *obs.Counter) *probeBatcher {
	if maxBytes <= 0 {
		maxBytes = DefaultProbeBatchBytes
	}
	return &probeBatcher{
		maxBytes:  maxBytes,
		coalesced: coalesced,
		flights:   make(map[string]*probeFlight),
		fqueues:   make(map[string]*fmQueue),
		lru:       list.New(),
		items:     make(map[string]*list.Element),
		byIndex:   make(map[string]map[string]*list.Element),
	}
}

// do returns the probe result for (indexKey, probeKey), running the
// probe at most once across concurrent identical callers and serving
// repeats from the memo. run returns the result and a memo cost
// estimate in bytes. Nil-safe: a nil (disabled) batcher just runs.
//
// Virtual-time accounting follows the decoded-object cache: the
// leader's store reads charge its own session; a follower that joined
// the in-flight probe is charged the leader's virtual probe duration;
// a memo hit charges nothing.
func (b *probeBatcher) do(ctx context.Context, indexKey, probeKey string, run func(ctx context.Context) (any, int64, error)) (any, error) {
	if b == nil {
		v, _, err := run(ctx)
		return v, err
	}
	key := indexKey + "\x00" + probeKey
	if v, ok := b.lookup(key); ok {
		b.coalesced.Inc()
		return v, nil
	}

	b.fmu.Lock()
	if f, ok := b.flights[key]; ok {
		b.fmu.Unlock()
		f.wg.Wait()
		if f.err != nil {
			return nil, f.err
		}
		b.coalesced.Inc()
		simtime.Charge(ctx, f.vcost)
		return f.val, nil
	}
	f := &probeFlight{}
	f.wg.Add(1)
	b.flights[key] = f
	b.fmu.Unlock()

	startGen := b.gen.Load()
	session := simtime.From(ctx)
	startElapsed := session.Elapsed()
	val, cost, err := run(ctx)
	f.val, f.err = val, err
	f.vcost = session.Elapsed() - startElapsed

	b.fmu.Lock()
	delete(b.flights, key)
	b.fmu.Unlock()
	f.wg.Done()

	if err != nil {
		return nil, err
	}
	// An invalidation that landed mid-probe may target exactly this
	// index; skipping the insert keeps invalidation race-free.
	if b.gen.Load() == startGen {
		b.insert(key, indexKey, val, cost)
	}
	return val, nil
}

// fmReq is one FM probe inside a doFMBatch group: the normalized
// probe key plus the raw pattern and lookup bound the superwalk needs.
type fmReq struct {
	probeKey string
	pattern  []byte
	maxRows  int
}

// fmQueue is the per-index wave queue of the FM group path. Callers
// enqueue their unmemoized probes into pending, then contend on
// walkMu; whoever acquires it drains everything pending at that
// moment — its own probes plus any that queued up while the previous
// wave's superwalk was in flight — and runs them as one walk. Probes
// therefore chain into waves: non-identical probes arriving during a
// walk coalesce into the next one instead of walking independently.
type fmQueue struct {
	mu      sync.Mutex
	pending []*fmWaiter
	walkMu  sync.Mutex
}

// fmWaiter is one enqueued FM probe awaiting a wave.
type fmWaiter struct {
	key     string // full memo key (index + probe)
	req     fmReq
	flight  *probeFlight
	cost    int64
	reqsIdx int // position in the caller's reqs slice
}

func (b *probeBatcher) fmQueueFor(indexKey string) *fmQueue {
	b.qmu.Lock()
	defer b.qmu.Unlock()
	q := b.fqueues[indexKey]
	if q == nil {
		q = &fmQueue{}
		b.fqueues[indexKey] = q
	}
	return q
}

// doFMBatch resolves a group of FM probes against one index object,
// running at most one multi-pattern superwalk for every probe the memo
// and in-flight probes cannot answer. runMany executes the walk: it
// receives the distinct patterns and per-pattern bounds, and returns
// one result and memo-cost per pattern.
//
// Cross-call coalescing happens two ways: identical probes join the
// existing flight exactly as in do, and distinct probes chain into
// waves through the per-index queue — a probe arriving while another
// caller's superwalk is in flight parks in pending and rides the next
// wave together with every other parked probe, whichever query issued
// it. Nil-safe: a disabled batcher runs the group as one walk with no
// memoization.
func (b *probeBatcher) doFMBatch(ctx context.Context, indexKey string, reqs []fmReq,
	runMany func(ctx context.Context, patterns [][]byte, maxRows []int) ([]any, []int64, error)) ([]any, error) {
	if b == nil {
		patterns := make([][]byte, len(reqs))
		bounds := make([]int, len(reqs))
		for i, r := range reqs {
			patterns[i] = r.pattern
			bounds[i] = r.maxRows
		}
		vals, _, err := runMany(ctx, patterns, bounds)
		return vals, err
	}
	out := make([]any, len(reqs))
	type joined struct {
		idx    int
		flight *probeFlight
	}
	var joins []joined
	var mine []*fmWaiter
	for i, req := range reqs {
		key := indexKey + "\x00" + req.probeKey
		if v, ok := b.lookup(key); ok {
			b.coalesced.Inc()
			out[i] = v
			continue
		}
		b.fmu.Lock()
		if f, ok := b.flights[key]; ok {
			b.fmu.Unlock()
			// Joined flights are collected after our own wave runs:
			// waiting here would deadlock on a duplicate key whose
			// flight our own wave completes.
			joins = append(joins, joined{idx: i, flight: f})
			continue
		}
		f := &probeFlight{}
		f.wg.Add(1)
		b.flights[key] = f
		b.fmu.Unlock()
		mine = append(mine, &fmWaiter{key: key, req: req, flight: f, reqsIdx: i})
	}

	session := simtime.From(ctx)
	if len(mine) > 0 {
		q := b.fmQueueFor(indexKey)
		q.mu.Lock()
		q.pending = append(q.pending, mine...)
		q.mu.Unlock()
		// By the time walkMu is ours, our waiters either are still
		// pending (we drain and run them) or were drained by a previous
		// holder — which completed them before releasing.
		q.walkMu.Lock()
		q.mu.Lock()
		wave := q.pending
		q.pending = nil
		q.mu.Unlock()
		ranByMe := make(map[*fmWaiter]bool, len(wave))
		if len(wave) > 0 {
			b.runWave(ctx, indexKey, wave, runMany)
			for _, w := range wave {
				ranByMe[w] = true
			}
		}
		q.walkMu.Unlock()
		for _, w := range mine {
			w.flight.wg.Wait()
			if w.flight.err != nil {
				return nil, w.flight.err
			}
			if !ranByMe[w] {
				// Another caller's wave carried this probe: no store
				// reads of our own, so charge the wave's virtual cost.
				b.coalesced.Inc()
				simtime.Charge(ctx, w.flight.vcost)
			}
			out[w.reqsIdx] = w.flight.val
		}
	}
	for _, j := range joins {
		j.flight.wg.Wait()
		if j.flight.err != nil {
			return nil, j.flight.err
		}
		b.coalesced.Inc()
		if j.flight.runner != session {
			simtime.Charge(ctx, j.flight.vcost)
		}
		out[j.idx] = j.flight.val
	}
	return out, nil
}

// runWave executes one superwalk over every waiter in the wave,
// completing their flights and memoizing the results.
func (b *probeBatcher) runWave(ctx context.Context, indexKey string, wave []*fmWaiter,
	runMany func(ctx context.Context, patterns [][]byte, maxRows []int) ([]any, []int64, error)) {
	startGen := b.gen.Load()
	session := simtime.From(ctx)
	startElapsed := session.Elapsed()
	patterns := make([][]byte, len(wave))
	bounds := make([]int, len(wave))
	for i, w := range wave {
		patterns[i] = w.req.pattern
		bounds[i] = w.req.maxRows
	}
	vals, costs, err := runMany(ctx, patterns, bounds)
	vcost := session.Elapsed() - startElapsed
	for i, w := range wave {
		w.flight.runner = session
		w.flight.vcost = vcost
		if err != nil {
			w.flight.err = err
		} else {
			w.flight.val = vals[i]
			w.cost = costs[i]
		}
	}
	b.fmu.Lock()
	for _, w := range wave {
		delete(b.flights, w.key)
	}
	b.fmu.Unlock()
	for _, w := range wave {
		w.flight.wg.Done()
	}
	if err == nil && b.gen.Load() == startGen {
		for _, w := range wave {
			b.insert(w.key, indexKey, w.flight.val, w.cost)
		}
	}
}

// peek reports whether (indexKey, probeKey) is memoized, without
// touching LRU order — the planner's cost model asks, it does not
// consume. Nil-safe.
func (b *probeBatcher) peek(indexKey, probeKey string) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.items[indexKey+"\x00"+probeKey]
	return ok
}

func (b *probeBatcher) lookup(key string) (any, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	elem, ok := b.items[key]
	if !ok {
		return nil, false
	}
	b.lru.MoveToFront(elem)
	return elem.Value.(*probeEntry).val, true
}

func (b *probeBatcher) insert(key, indexKey string, val any, cost int64) {
	if cost < 0 {
		cost = 0
	}
	if cost > b.maxBytes/4 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.items[key]; ok {
		return
	}
	elem := b.lru.PushFront(&probeEntry{key: key, indexKey: indexKey, val: val, cost: cost})
	b.items[key] = elem
	forKey := b.byIndex[indexKey]
	if forKey == nil {
		forKey = make(map[string]*list.Element)
		b.byIndex[indexKey] = forKey
	}
	forKey[key] = elem
	b.bytes += cost
	for b.bytes > b.maxBytes {
		back := b.lru.Back()
		if back == nil {
			break
		}
		b.removeLocked(back)
	}
}

func (b *probeBatcher) removeLocked(elem *list.Element) {
	e := elem.Value.(*probeEntry)
	b.lru.Remove(elem)
	delete(b.items, e.key)
	if forKey := b.byIndex[e.indexKey]; forKey != nil {
		delete(forKey, e.key)
		if len(forKey) == 0 {
			delete(b.byIndex, e.indexKey)
		}
	}
	b.bytes -= e.cost
}

// invalidateIndex drops every memoized probe of the index object and
// bumps the generation (suppressing inserts of probes in flight).
// The deleting paths call it: vacuum's physical removal and the
// search replan on a vanished index. Nil-safe.
func (b *probeBatcher) invalidateIndex(indexKey string) {
	if b == nil {
		return
	}
	b.gen.Add(1)
	b.mu.Lock()
	forKey := b.byIndex[indexKey]
	dropped := make([]*list.Element, 0, len(forKey))
	for _, elem := range forKey {
		dropped = append(dropped, elem)
	}
	for _, elem := range dropped {
		b.removeLocked(elem)
	}
	b.mu.Unlock()
}

// entries returns the resident memo count (tests).
func (b *probeBatcher) entries() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}
