package core

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"rottnest/internal/obs"
	"rottnest/internal/simtime"
)

// DefaultProbeBatchBytes is the probe batcher's default memo budget,
// used when Config.ProbeBatchBytes is zero.
const DefaultProbeBatchBytes = 8 << 20

// probeBatcher coalesces identical index probes across concurrent
// queries (singleflight) and memoizes their results in a small
// byte-budgeted LRU. Keys combine the index object key with the
// normalized probe (predicate pattern plus bound), so N clients
// walking the same FM checkpoint or trie root for the same pattern
// pay one walk whose result fans out to all waiters — the collision
// pattern the Zipf serve workload generates.
//
// Memoization is safe for the same reason the decoded-object cache
// is: an index object is immutable under its key, so a probe result
// (a posting list) can only go stale by deletion of the index object
// — and the deleting paths (vacuum's physical removal, the search
// replan on a vanished index) call invalidateIndex. Snapshot version
// does not enter the key: postings are positions within the immutable
// index file, and stale physical locations are filtered against the
// snapshot after the probe, exactly as for an uncoalesced probe.
type probeBatcher struct {
	maxBytes int64
	gen      atomic.Int64

	// coalesced counts probes answered without an index walk (joined
	// an in-flight probe or hit the memo); runs is owned by the
	// executor (it counts walks actually performed).
	coalesced *obs.Counter

	fmu     sync.Mutex
	flights map[string]*probeFlight

	mu      sync.Mutex
	lru     *list.List
	items   map[string]*list.Element
	byIndex map[string]map[string]*list.Element
	bytes   int64
}

type probeFlight struct {
	wg    sync.WaitGroup
	val   any
	err   error
	vcost time.Duration
}

type probeEntry struct {
	key      string
	indexKey string
	val      any
	cost     int64
}

// newProbeBatcher returns a batcher with the given memo budget (<= 0
// means the default).
func newProbeBatcher(maxBytes int64, coalesced *obs.Counter) *probeBatcher {
	if maxBytes <= 0 {
		maxBytes = DefaultProbeBatchBytes
	}
	return &probeBatcher{
		maxBytes:  maxBytes,
		coalesced: coalesced,
		flights:   make(map[string]*probeFlight),
		lru:       list.New(),
		items:     make(map[string]*list.Element),
		byIndex:   make(map[string]map[string]*list.Element),
	}
}

// do returns the probe result for (indexKey, probeKey), running the
// probe at most once across concurrent identical callers and serving
// repeats from the memo. run returns the result and a memo cost
// estimate in bytes. Nil-safe: a nil (disabled) batcher just runs.
//
// Virtual-time accounting follows the decoded-object cache: the
// leader's store reads charge its own session; a follower that joined
// the in-flight probe is charged the leader's virtual probe duration;
// a memo hit charges nothing.
func (b *probeBatcher) do(ctx context.Context, indexKey, probeKey string, run func(ctx context.Context) (any, int64, error)) (any, error) {
	if b == nil {
		v, _, err := run(ctx)
		return v, err
	}
	key := indexKey + "\x00" + probeKey
	if v, ok := b.lookup(key); ok {
		b.coalesced.Inc()
		return v, nil
	}

	b.fmu.Lock()
	if f, ok := b.flights[key]; ok {
		b.fmu.Unlock()
		f.wg.Wait()
		if f.err != nil {
			return nil, f.err
		}
		b.coalesced.Inc()
		simtime.Charge(ctx, f.vcost)
		return f.val, nil
	}
	f := &probeFlight{}
	f.wg.Add(1)
	b.flights[key] = f
	b.fmu.Unlock()

	startGen := b.gen.Load()
	session := simtime.From(ctx)
	startElapsed := session.Elapsed()
	val, cost, err := run(ctx)
	f.val, f.err = val, err
	f.vcost = session.Elapsed() - startElapsed

	b.fmu.Lock()
	delete(b.flights, key)
	b.fmu.Unlock()
	f.wg.Done()

	if err != nil {
		return nil, err
	}
	// An invalidation that landed mid-probe may target exactly this
	// index; skipping the insert keeps invalidation race-free.
	if b.gen.Load() == startGen {
		b.insert(key, indexKey, val, cost)
	}
	return val, nil
}

func (b *probeBatcher) lookup(key string) (any, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	elem, ok := b.items[key]
	if !ok {
		return nil, false
	}
	b.lru.MoveToFront(elem)
	return elem.Value.(*probeEntry).val, true
}

func (b *probeBatcher) insert(key, indexKey string, val any, cost int64) {
	if cost < 0 {
		cost = 0
	}
	if cost > b.maxBytes/4 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.items[key]; ok {
		return
	}
	elem := b.lru.PushFront(&probeEntry{key: key, indexKey: indexKey, val: val, cost: cost})
	b.items[key] = elem
	forKey := b.byIndex[indexKey]
	if forKey == nil {
		forKey = make(map[string]*list.Element)
		b.byIndex[indexKey] = forKey
	}
	forKey[key] = elem
	b.bytes += cost
	for b.bytes > b.maxBytes {
		back := b.lru.Back()
		if back == nil {
			break
		}
		b.removeLocked(back)
	}
}

func (b *probeBatcher) removeLocked(elem *list.Element) {
	e := elem.Value.(*probeEntry)
	b.lru.Remove(elem)
	delete(b.items, e.key)
	if forKey := b.byIndex[e.indexKey]; forKey != nil {
		delete(forKey, e.key)
		if len(forKey) == 0 {
			delete(b.byIndex, e.indexKey)
		}
	}
	b.bytes -= e.cost
}

// invalidateIndex drops every memoized probe of the index object and
// bumps the generation (suppressing inserts of probes in flight).
// The deleting paths call it: vacuum's physical removal and the
// search replan on a vanished index. Nil-safe.
func (b *probeBatcher) invalidateIndex(indexKey string) {
	if b == nil {
		return
	}
	b.gen.Add(1)
	b.mu.Lock()
	forKey := b.byIndex[indexKey]
	dropped := make([]*list.Element, 0, len(forKey))
	for _, elem := range forKey {
		dropped = append(dropped, elem)
	}
	for _, elem := range dropped {
		b.removeLocked(elem)
	}
	b.mu.Unlock()
}

// entries returns the resident memo count (tests).
func (b *probeBatcher) entries() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}
