package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"rottnest/internal/component"
	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

// TestSearchPreCanceledContext checks Search fails fast with ctx.Err()
// when handed a dead context, before touching the store.
func TestSearchPreCanceledContext(t *testing.T) {
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(31)
	keys, _ := e.appendUUIDs(t, gen, 64)
	if _, err := e.cli.Index(context.Background(), "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.cli.Search(ctx, uuidQuery(keys[0])); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSearchCanceledMidFlight cancels the context partway through a
// search's store reads (a fault-store script fires the cancel as a
// side effect after a few operations) and checks the search surfaces
// the cancellation instead of plowing on through the remaining reads.
func TestSearchCanceledMidFlight(t *testing.T) {
	clock := simtime.NewVirtualClock()
	mem := objectstore.NewMemStore(clock)
	ctx, cancel := context.WithCancel(context.Background())
	var opsAfterIndex atomic.Int64
	var armed atomic.Bool
	fs := objectstore.NewFaultStore(mem, func(op objectstore.Op, key string, seq int64) bool {
		if armed.Load() && opsAfterIndex.Add(1) == 3 {
			cancel()
		}
		return false // never inject a fault; the cancel is the event
	})
	table, err := lake.CreateWith(context.Background(), fs, "lake", uuidSchema, lake.OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(table, Config{Clock: clock, IndexDir: "rottnest"})
	e := &env{clock: clock, mem: mem, table: table, cli: cli}
	gen := workload.NewUUIDGen(32)
	keys, _ := e.appendUUIDs(t, gen, 512)
	if _, err := cli.Index(context.Background(), "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	armed.Store(true)
	if _, err := cli.Search(ctx, uuidQuery(keys[7])); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
