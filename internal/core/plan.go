package core

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"

	"rottnest/internal/component"
)

// Op is a compound-expression node type.
type Op int

const (
	// OpLeaf is a single predicate.
	OpLeaf Op = iota
	// OpAnd intersects its children.
	OpAnd
	// OpOr unions its children.
	OpOr
)

// Pred is one predicate leaf of a compound query: exactly one of
// UUID, Substring, Regex, or Vector must be set, mirroring Query.
// A Vector leaf ranks rather than filters; it may appear only at the
// root of the tree or as a direct child of a root AND (its siblings
// become the filter the plan applies before refinement).
type Pred struct {
	// Column is the column the predicate applies to.
	Column string
	// UUID is an exact-match key (trie index).
	UUID *[16]byte
	// Substring is an exact substring pattern (FM-index).
	Substring []byte
	// Regex is a regular expression (FM-index via required literal).
	Regex string
	// Vector is a query embedding (IVF-PQ index); NProbe and Refine
	// carry the recall knobs (same defaults as Query).
	Vector []float32
	NProbe int
	Refine int
}

func (p *Pred) kind() (component.Kind, error) {
	set := 0
	var kind component.Kind
	if p.UUID != nil {
		set, kind = set+1, component.KindTrie
	}
	if p.Substring != nil {
		set, kind = set+1, component.KindFM
	}
	if p.Regex != "" {
		set, kind = set+1, component.KindFM
	}
	if p.Vector != nil {
		set, kind = set+1, component.KindIVFPQ
	}
	if p.Column == "" {
		return 0, fmt.Errorf("core: predicate has no column")
	}
	if set != 1 {
		return 0, fmt.Errorf("core: predicate on %q must set exactly one of UUID, Substring, Regex, Vector (got %d)", p.Column, set)
	}
	return kind, nil
}

// Expr is a node of a compound boolean predicate tree.
type Expr struct {
	// Op is the node type; OpLeaf nodes carry Pred, the others carry
	// Children.
	Op       Op
	Pred     *Pred
	Children []*Expr
}

// Leaf wraps a predicate as an expression.
func Leaf(p Pred) *Expr { return &Expr{Op: OpLeaf, Pred: &p} }

// And combines expressions conjunctively.
func And(children ...*Expr) *Expr { return &Expr{Op: OpAnd, Children: children} }

// Or combines expressions disjunctively.
func Or(children ...*Expr) *Expr { return &Expr{Op: OpOr, Children: children} }

// PredUUID builds an exact-match leaf.
func PredUUID(column string, key [16]byte) *Expr {
	return Leaf(Pred{Column: column, UUID: &key})
}

// PredSubstring builds a substring leaf.
func PredSubstring(column string, pattern []byte) *Expr {
	return Leaf(Pred{Column: column, Substring: append([]byte(nil), pattern...)})
}

// PredRegex builds a regular-expression leaf.
func PredRegex(column, expr string) *Expr {
	return Leaf(Pred{Column: column, Regex: expr})
}

// PredVector builds a vector top-k leaf (rankable; see Pred).
func PredVector(column string, vec []float32, nprobe, refine int) *Expr {
	return Leaf(Pred{Column: column, Vector: append([]float32(nil), vec...), NProbe: nprobe, Refine: refine})
}

// CompoundQuery describes one compound search: a boolean tree of
// predicates executed as a single plan — each referenced index probed
// once, candidate page sets intersected before any data page is
// fetched, and every surviving page read at most once.
type CompoundQuery struct {
	// Expr is the predicate tree.
	Expr *Expr
	// K bounds the result count (0 = all matches for pure-filter
	// trees; required > 0 when the tree contains a vector leaf).
	K int
	// Snapshot selects the lake snapshot (-1 or 0 = latest).
	Snapshot int64
	// Partition optionally restricts the searched files, exactly as
	// Query.Partition.
	Partition *PartitionFilter
	// FileRange optionally restricts the searched files to a
	// contiguous path range, exactly as Query.FileRange.
	FileRange *FileRange
	// Output names the column whose values populate Match.Value. It
	// must be the column of one of the tree's predicates; empty means
	// the first predicate's column in the tree as written (or the
	// vector column for ranked queries).
	Output string
}

// compound converts a single-predicate Query to its degenerate
// compound form; Search plans every query through this path.
func (q Query) compound() (CompoundQuery, error) {
	if _, err := q.kind(); err != nil {
		return CompoundQuery{}, err
	}
	p := Pred{Column: q.Column, UUID: q.UUID, Substring: q.Substring, Regex: q.Regex,
		Vector: q.Vector, NProbe: q.NProbe, Refine: q.Refine}
	return CompoundQuery{
		Expr:      &Expr{Op: OpLeaf, Pred: &p},
		K:         q.K,
		Snapshot:  q.Snapshot,
		Partition: q.Partition,
		FileRange: q.FileRange,
		Output:    q.Column,
	}, nil
}

// normalizeExpr returns a canonical copy of the tree: nested
// same-op nodes flattened, single-child AND/OR collapsed, children
// sorted by canonical key and deduplicated. Canonical form is what
// the plan cache and the shared-probe batcher key on, so equivalent
// trees written differently share plans and probes.
func normalizeExpr(e *Expr) (*Expr, error) {
	if e == nil {
		return nil, fmt.Errorf("core: empty expression")
	}
	switch e.Op {
	case OpLeaf:
		if e.Pred == nil {
			return nil, fmt.Errorf("core: leaf without predicate")
		}
		if _, err := e.Pred.kind(); err != nil {
			return nil, err
		}
		return &Expr{Op: OpLeaf, Pred: e.Pred}, nil
	case OpAnd, OpOr:
		if len(e.Children) == 0 {
			return nil, fmt.Errorf("core: %s with no children", opName(e.Op))
		}
		var flat []*Expr
		for _, c := range e.Children {
			nc, err := normalizeExpr(c)
			if err != nil {
				return nil, err
			}
			if nc.Op == e.Op {
				flat = append(flat, nc.Children...)
			} else {
				flat = append(flat, nc)
			}
		}
		if len(flat) == 1 {
			return flat[0], nil
		}
		sort.SliceStable(flat, func(i, j int) bool { return exprKey(flat[i]) < exprKey(flat[j]) })
		uniq := flat[:1]
		for _, c := range flat[1:] {
			if exprKey(c) != exprKey(uniq[len(uniq)-1]) {
				uniq = append(uniq, c)
			}
		}
		if len(uniq) == 1 {
			return uniq[0], nil
		}
		return &Expr{Op: e.Op, Children: uniq}, nil
	default:
		return nil, fmt.Errorf("core: unknown expression op %d", e.Op)
	}
}

func opName(op Op) string {
	switch op {
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	default:
		return "LEAF"
	}
}

// exprKey renders a tree to its canonical string form. Equal keys
// mean equivalent normalized trees; the plan cache keys compound
// plans on it (two different trees over the same column must never
// collide), and probe batching derives per-leaf probe keys from the
// same encoding.
func exprKey(e *Expr) string {
	var b strings.Builder
	writeExprKey(&b, e)
	return b.String()
}

func writeExprKey(b *strings.Builder, e *Expr) {
	switch e.Op {
	case OpLeaf:
		b.WriteString(predKey(e.Pred))
	case OpAnd, OpOr:
		if e.Op == OpAnd {
			b.WriteString("and(")
		} else {
			b.WriteString("or(")
		}
		for i, c := range e.Children {
			if i > 0 {
				b.WriteByte(',')
			}
			writeExprKey(b, c)
		}
		b.WriteByte(')')
	}
}

// predKey renders one predicate canonically. Byte patterns are
// hex-encoded so no input can forge a separator; vectors encode the
// exact bit pattern of every component plus the recall knobs.
func predKey(p *Pred) string {
	switch {
	case p.UUID != nil:
		return fmt.Sprintf("u:%s:%s", hex.EncodeToString([]byte(p.Column)), hex.EncodeToString(p.UUID[:]))
	case p.Substring != nil:
		return fmt.Sprintf("s:%s:%s", hex.EncodeToString([]byte(p.Column)), hex.EncodeToString(p.Substring))
	case p.Regex != "":
		return fmt.Sprintf("r:%s:%s", hex.EncodeToString([]byte(p.Column)), hex.EncodeToString([]byte(p.Regex)))
	default:
		var b strings.Builder
		fmt.Fprintf(&b, "v:%s:%d:%d:", hex.EncodeToString([]byte(p.Column)), p.NProbe, p.Refine)
		for _, f := range p.Vector {
			fmt.Fprintf(&b, "%08x", math.Float32bits(f))
		}
		return b.String()
	}
}

// planShape is the validated, normalized form of a compound query the
// executor runs: the exact (filter) leaves in canonical order, the
// optional vector leaf, and the filter subtree with leaves replaced
// by indices into the leaf list.
type planShape struct {
	// root is the normalized tree including the vector leaf.
	root *Expr
	// filter is the normalized exact subtree (nil when the query is a
	// bare vector leaf). Its leaves are the exact leaves below.
	filter *Expr
	// leaves are the exact predicate leaves of filter, in canonical
	// (normalized tree) order, each compiled for residual evaluation.
	leaves []*leafPlan
	// vector is the ranker leaf, nil for pure-filter trees.
	vector *Pred
	// output is the column whose value populates Match.Value.
	output string
	// key is the canonical tree key (plan-cache keying); it includes
	// the partition filter and bound so distinct plans never collide.
	key string
}

// leafPlan is one exact predicate leaf compiled for execution.
type leafPlan struct {
	pred *Pred
	kind component.Kind
	// fmPattern drives FM lookups: the substring itself or the
	// regex's required literal.
	fmPattern []byte
	// indexable is false when no index can serve the leaf (regex with
	// no usable literal): the leaf admits every row and is checked
	// purely in situ.
	indexable bool
	// match re-checks the predicate against a raw value (exact).
	match func(v []byte) bool
}

// firstLeafColumn returns the column of the first leaf in the tree as
// written (pre-normalization), for the Output default.
func firstLeafColumn(e *Expr) string {
	if e == nil {
		return ""
	}
	if e.Op == OpLeaf {
		if e.Pred != nil {
			return e.Pred.Column
		}
		return ""
	}
	for _, c := range e.Children {
		if col := firstLeafColumn(c); col != "" {
			return col
		}
	}
	return ""
}

// compileShape validates cq and produces its executable shape.
func compileShape(cq CompoundQuery) (*planShape, error) {
	root, err := normalizeExpr(cq.Expr)
	if err != nil {
		return nil, err
	}
	// Locate vector leaves: at most one, and only at the root or as a
	// direct child of a root AND (a ranked leaf under OR has no
	// coherent semantics — it scores, it does not filter).
	var vector *Pred
	var filterChildren []*Expr
	countVectors := func(e *Expr) int {
		n := 0
		var walk func(*Expr)
		walk = func(e *Expr) {
			if e.Op == OpLeaf {
				if e.Pred.Vector != nil {
					n++
				}
				return
			}
			for _, c := range e.Children {
				walk(c)
			}
		}
		walk(e)
		return n
	}
	switch {
	case root.Op == OpLeaf && root.Pred.Vector != nil:
		vector = root.Pred
	case root.Op == OpAnd:
		for _, c := range root.Children {
			if c.Op == OpLeaf && c.Pred.Vector != nil {
				if vector != nil {
					return nil, fmt.Errorf("core: at most one vector predicate per query")
				}
				vector = c.Pred
				continue
			}
			if countVectors(c) > 0 {
				return nil, fmt.Errorf("core: vector predicates may appear only at the root or as a direct child of a root AND")
			}
			filterChildren = append(filterChildren, c)
		}
	default:
		if countVectors(root) > 0 {
			return nil, fmt.Errorf("core: vector predicates may appear only at the root or as a direct child of a root AND")
		}
	}
	var filter *Expr
	switch {
	case vector == nil:
		filter = root
	case len(filterChildren) == 1:
		filter = filterChildren[0]
	case len(filterChildren) > 1:
		filter = &Expr{Op: OpAnd, Children: filterChildren}
	}
	if vector != nil && cq.K <= 0 {
		return nil, fmt.Errorf("core: vector queries require K > 0")
	}
	if cq.K < 0 {
		return nil, fmt.Errorf("core: negative K")
	}

	shape := &planShape{root: root, filter: filter, vector: vector}

	// Compile the exact leaves in canonical order.
	colSet := make(map[string]bool)
	var compileLeaves func(e *Expr) error
	compileLeaves = func(e *Expr) error {
		if e.Op != OpLeaf {
			for _, c := range e.Children {
				if err := compileLeaves(c); err != nil {
					return err
				}
			}
			return nil
		}
		lp, err := compileLeaf(e.Pred)
		if err != nil {
			return err
		}
		shape.leaves = append(shape.leaves, lp)
		colSet[e.Pred.Column] = true
		return nil
	}
	if filter != nil {
		if err := compileLeaves(filter); err != nil {
			return nil, err
		}
	}
	if vector != nil {
		colSet[vector.Column] = true
	}

	// Resolve the output column.
	output := cq.Output
	if output == "" {
		if vector != nil {
			output = vector.Column
		} else {
			output = firstLeafColumn(cq.Expr)
		}
	}
	if !colSet[output] {
		return nil, fmt.Errorf("core: output column %q is not referenced by any predicate", output)
	}
	shape.output = output

	// Plan-cache key: the full normalized tree plus everything else
	// that shapes the plan.
	key := exprKey(root)
	if cq.Partition != nil {
		key += fmt.Sprintf("|p:%s:%d:%d", hex.EncodeToString([]byte(cq.Partition.Column)), cq.Partition.Min, cq.Partition.Max)
	}
	if cq.FileRange != nil {
		key += fmt.Sprintf("|fr:%s:%s", hex.EncodeToString([]byte(cq.FileRange.Start)), hex.EncodeToString([]byte(cq.FileRange.End)))
	}
	shape.key = key
	return shape, nil
}

// compileLeaf builds the execution form of one exact leaf.
func compileLeaf(p *Pred) (*leafPlan, error) {
	kind, err := p.kind()
	if err != nil {
		return nil, err
	}
	lp := &leafPlan{pred: p, kind: kind, indexable: true}
	switch {
	case p.UUID != nil:
		key := *p.UUID
		lp.match = func(v []byte) bool { return bytes.Equal(v, key[:]) }
	case p.Substring != nil:
		pat := p.Substring
		lp.fmPattern = pat
		lp.match = func(v []byte) bool { return bytes.Contains(v, pat) }
	case p.Regex != "":
		lit, err := requiredLiteral(p.Regex)
		if err != nil {
			return nil, fmt.Errorf("core: bad regex: %w", err)
		}
		re, err := compileRegex(p.Regex)
		if err != nil {
			return nil, fmt.Errorf("core: bad regex: %w", err)
		}
		lp.fmPattern = lit
		lp.indexable = len(lit) >= minRegexLiteral
		lp.match = re.Match
	default:
		return nil, fmt.Errorf("core: vector predicate %q cannot be a filter leaf", p.Column)
	}
	return lp, nil
}
