package core

import (
	"context"
	"fmt"
	"testing"

	"rottnest/internal/component"
	"rottnest/internal/workload"
)

func TestRequiredLiteral(t *testing.T) {
	cases := []struct {
		pattern string
		want    string
	}{
		{`ERROR`, "ERROR"},
		{`ERROR \d+ at`, "ERROR "},
		{`conn(ection)? reset`, " reset"},
		{`user-[0-9a-f]{8} logged in`, " logged in"},
		{`(payment failed)+`, "payment failed"},
		{`foo|bar`, ""},   // alternation: no required literal
		{`(?i)error`, ""}, // case folding: bytes not exact
		{`\d+`, ""},       // no literal at all
		{`a*`, ""},        // optional: not required
		{`x`, "x"},        // single byte
		{`prefix.{0,5}suffix-longer`, "suffix-longer"},
	}
	for _, tc := range cases {
		got, err := requiredLiteral(tc.pattern)
		if err != nil {
			t.Fatalf("%q: %v", tc.pattern, err)
		}
		if string(got) != tc.want {
			t.Fatalf("requiredLiteral(%q) = %q, want %q", tc.pattern, got, tc.want)
		}
	}
	if _, err := requiredLiteral(`(`); err == nil {
		t.Fatal("bad pattern accepted")
	}
}

func TestRegexSearchUsesIndexViaLiteral(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, textSchema, Config{})
	gen := workload.NewTextGen(workload.DefaultTextConfig(50))
	docs := gen.Docs(800)
	docs[123] = "ERROR 4021 at checkout stage"
	docs[456] = "ERROR 13 at login stage"
	docs[700] = "errors at no stage" // must NOT match the anchored pattern
	e.appendDocs(t, docs)
	if _, err := e.cli.Index(ctx, "body", component.KindFM); err != nil {
		t.Fatal(err)
	}

	res, err := e.cli.Search(ctx, Query{Column: "body", Regex: `ERROR \d+ at \w+ stage`, K: 0, Snapshot: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 2 {
		t.Fatalf("matches = %d: %v", len(res.Matches), res.Matches)
	}
	// Answered by the index (literal "ERROR " drove the probe), not a
	// scan.
	if res.Stats.FilesScanned != 0 || res.Stats.IndexFiles != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestRegexWithoutLiteralFallsBackToScan(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, textSchema, Config{})
	gen := workload.NewTextGen(workload.DefaultTextConfig(51))
	docs := gen.Docs(300)
	docs[50] = "alpha999omega"
	e.appendDocs(t, docs)
	if _, err := e.cli.Index(ctx, "body", component.KindFM); err != nil {
		t.Fatal(err)
	}
	// Top-level alternation has no required literal: scan fallback.
	res, err := e.cli.Search(ctx, Query{Column: "body", Regex: `alpha999omega|beta888psi`, K: 0, Snapshot: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("matches = %d", len(res.Matches))
	}
	if res.Stats.FilesScanned == 0 {
		t.Fatalf("expected scan fallback, stats = %+v", res.Stats)
	}
}

func TestRegexValidation(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, textSchema, Config{})
	e.appendDocs(t, []string{"x"})
	if _, err := e.cli.Search(ctx, Query{Column: "body", Regex: `(`, K: 1, Snapshot: -1}); err == nil {
		t.Fatal("invalid regex accepted")
	}
	// Regex + Substring together is ambiguous.
	if _, err := e.cli.Search(ctx, Query{Column: "body", Regex: `a`, Substring: []byte("b"), K: 1, Snapshot: -1}); err == nil {
		t.Fatal("two predicates accepted")
	}
}

func TestRegexNeverMissesVsScan(t *testing.T) {
	// Property-style check: for each planted line, the indexed regex
	// search returns exactly what a full scan returns.
	ctx := context.Background()
	e := newEnv(t, textSchema, Config{})
	gen := workload.NewTextGen(workload.DefaultTextConfig(52))
	docs := gen.Docs(500)
	for i := 0; i < 10; i++ {
		docs[i*37] = fmt.Sprintf("svc-%02d request took %dms to finish", i, 100+i)
	}
	e.appendDocs(t, docs)
	if _, err := e.cli.Index(ctx, "body", component.KindFM); err != nil {
		t.Fatal(err)
	}
	pattern := `request took \d+ms`
	indexed, err := e.cli.Search(ctx, Query{Column: "body", Regex: pattern, K: 0, Snapshot: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth via the unindexed path: fresh client with an
	// empty index dir forces a scan.
	scanCli := NewClient(e.table, Config{Clock: e.clock, IndexDir: "empty-index"})
	scanned, err := scanCli.Search(ctx, Query{Column: "body", Regex: pattern, K: 0, Snapshot: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(indexed.Matches) != 10 || len(scanned.Matches) != 10 {
		t.Fatalf("indexed %d vs scanned %d", len(indexed.Matches), len(scanned.Matches))
	}
	for i := range indexed.Matches {
		if indexed.Matches[i].Row != scanned.Matches[i].Row {
			t.Fatalf("row mismatch at %d", i)
		}
	}
}
