package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rottnest/internal/component"
	"rottnest/internal/lake"
	"rottnest/internal/parquet"
	"rottnest/internal/workload"
)

// TestConcurrentProtocolInvariants hammers the protocol with
// concurrent appenders, indexers, compactors (index and lake),
// deleters, vacuums, and searchers, then verifies:
//
//   - the Existence invariant holds at the end (and vacuums ran
//     during the storm without breaking concurrent searches);
//   - no search ever errors;
//   - a final search finds every live planted key exactly once and
//     never returns a deleted key.
func TestConcurrentProtocolInvariants(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{Timeout: time.Hour})
	gen := workload.NewUUIDGen(100)

	var mu sync.Mutex
	live := make(map[[16]byte]string) // key -> file path at insert
	deleted := make(map[[16]byte]bool)

	appendBatch := func(rng *rand.Rand) error {
		n := 50 + rng.Intn(100)
		mu.Lock()
		keys := gen.Batch(n)
		mu.Unlock()
		b := parquet.NewBatch(uuidSchema)
		ids := make([][]byte, n)
		pay := make([][]byte, n)
		for i, k := range keys {
			kk := k
			ids[i] = kk[:]
			pay[i] = []byte("p")
		}
		b.Cols[0] = parquet.ColumnValues{Bytes: ids}
		b.Cols[1] = parquet.ColumnValues{Bytes: pay}
		path, err := e.table.Append(ctx, b, parquet.WriterOptions{RowGroupRows: 64, PageBytes: 1024})
		if err != nil {
			return err
		}
		mu.Lock()
		for _, k := range keys {
			live[k] = path
		}
		mu.Unlock()
		return nil
	}

	deleteSome := func(rng *rand.Rand) error {
		mu.Lock()
		var victim [16]byte
		var path string
		for k, p := range live {
			victim, path = k, p
			break
		}
		mu.Unlock()
		if path == "" {
			return nil
		}
		// Find the row of the victim in its file; the file may have
		// been compacted away, in which case skip.
		snap, err := e.table.Snapshot(ctx)
		if err != nil {
			return err
		}
		if _, ok := snap.File(path); !ok {
			return nil
		}
		vals, _, _, err := parquet.ScanColumn(ctx, e.store, e.table.Root()+path, 0)
		if err != nil {
			return nil // racing lake vacuum; fine
		}
		for i, v := range vals.Bytes {
			if string(v) == string(victim[:]) {
				if err := e.table.DeleteRows(ctx, path, []uint32{uint32(i)}); err != nil {
					if errors.Is(err, lake.ErrConflict) {
						return nil
					}
					return err
				}
				mu.Lock()
				delete(live, victim)
				deleted[victim] = true
				mu.Unlock()
				return nil
			}
		}
		return nil
	}

	searchOne := func(rng *rand.Rand) error {
		mu.Lock()
		var k [16]byte
		found := false
		for key := range live {
			k, found = key, true
			break
		}
		mu.Unlock()
		if !found {
			return nil
		}
		res, err := e.cli.Search(ctx, uuidQuery(k))
		if err != nil {
			return fmt.Errorf("search: %w", err)
		}
		// The key may have been deleted between pick and search;
		// just require no error and no obviously wrong value.
		for _, m := range res.Matches {
			if string(m.Value) != string(k[:]) {
				return fmt.Errorf("search returned foreign value")
			}
		}
		return nil
	}

	ops := []func(*rand.Rand) error{
		appendBatch,
		deleteSome,
		searchOne,
		func(*rand.Rand) error {
			_, err := e.cli.Index(ctx, "id", component.KindTrie)
			return err
		},
		func(*rand.Rand) error {
			_, err := e.cli.Compact(ctx, "id", component.KindTrie, CompactOptions{})
			return err
		},
		func(*rand.Rand) error {
			_, err := e.table.Compact(ctx, 1<<30, 0)
			if errors.Is(err, lake.ErrConflict) {
				return nil
			}
			return err
		},
		func(*rand.Rand) error {
			_, err := e.cli.Vacuum(ctx, VacuumOptions{})
			return err
		},
	}

	// Seed data.
	for i := 0; i < 3; i++ {
		if err := appendBatch(rand.New(rand.NewSource(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 6
	const opsPerWorker = 25
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < opsPerWorker; i++ {
				op := ops[rng.Intn(len(ops))]
				if err := op(rng); err != nil {
					errs[w] = fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Invariants after the storm.
	if err := e.cli.CheckExistence(ctx); err != nil {
		t.Fatal(err)
	}
	// Bring the index fully up to date, then every live key must be
	// found exactly once and every deleted key not at all.
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for k := range live {
		res, err := e.cli.Search(ctx, uuidQuery(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 1 {
			t.Fatalf("live key %x matched %d times", k, len(res.Matches))
		}
		checked++
		if checked >= 150 {
			break
		}
	}
	checked = 0
	for k := range deleted {
		res, err := e.cli.Search(ctx, uuidQuery(k))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 0 {
			t.Fatalf("deleted key %x resurrected", k)
		}
		checked++
		if checked >= 50 {
			break
		}
	}
}

// TestVacuumNeverBreaksConcurrentSearch interleaves vacuum with
// searches against a compacted index: the timeout rule must keep the
// files a planned search will read alive.
func TestVacuumNeverBreaksConcurrentSearch(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{Timeout: time.Hour})
	gen := workload.NewUUIDGen(200)
	var keys [][16]byte
	for i := 0; i < 4; i++ {
		ks, _ := e.appendUUIDs(t, gen, 200)
		keys = append(keys, ks...)
		if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.cli.Compact(ctx, "id", component.KindTrie, CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	e.clock.Advance(2 * time.Hour) // old files leave the timeout window

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var searchErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := keys[rng.Intn(len(keys))]
			res, err := e.cli.Search(ctx, uuidQuery(k))
			if err != nil {
				searchErr = err
				return
			}
			if len(res.Matches) != 1 {
				searchErr = fmt.Errorf("key matched %d times during vacuum", len(res.Matches))
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if _, err := e.cli.Vacuum(ctx, VacuumOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if searchErr != nil {
		t.Fatal(searchErr)
	}
	if err := e.cli.CheckExistence(ctx); err != nil {
		t.Fatal(err)
	}
}
