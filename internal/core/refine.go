package core

import (
	"context"
	"encoding/json"
	"fmt"

	"rottnest/internal/component"
	"rottnest/internal/ivfpq"
	"rottnest/internal/meta"
	"rottnest/internal/obs"
)

// RefineVectorIndex progressively deepens the vector index file at
// indexKey: it re-clusters the cells the observed probe traffic hits
// hardest (see ivfpq.RefineInto) and commits the result as a
// compact-style replacement — upload the refined file, insert its
// metadata row, delete the old row in the same breath, leaving the old
// object an orphan for vacuum. The replacement covers exactly the same
// data files, so the Consistency invariant holds throughout; a search
// planning against either row sees identical coverage.
//
// probes are the recent query embeddings driving cell selection;
// nprobe is the probe width those queries used. Returns the new entry,
// or nil if indexKey no longer exists in the metadata table or probe
// traffic identifies no refinable cell.
func (c *Client) RefineVectorIndex(ctx context.Context, column string, indexKey string, probes [][]float32, nprobe int, opts ivfpq.RefineOptions) (*meta.IndexEntry, error) {
	start := c.clock.Now()
	pctx, planSpan := obs.Start(ctx, "refine.plan")
	defer planSpan.End()
	entries, err := c.meta.ListFor(pctx, column, component.KindIVFPQ)
	if err != nil {
		return nil, err
	}
	var old *meta.IndexEntry
	for i := range entries {
		if entries[i].IndexKey == indexKey {
			old = &entries[i]
			break
		}
	}
	if old == nil {
		return nil, nil // already compacted, vacuumed, or refined away
	}
	r, err := c.openReader(pctx, indexKey)
	if err != nil {
		return nil, err
	}
	man, err := c.manifest(pctx, r)
	if err != nil {
		return nil, err
	}
	ix, err := c.openIVF(pctx, r)
	if err != nil {
		return nil, err
	}
	if nprobe <= 0 {
		nprobe = 8
	}
	cells := ivfpq.HotCells(ix, probes, nprobe, opts.MaxCells)
	planSpan.SetAttr("column", column)
	planSpan.SetAttr("cells", len(cells))
	planSpan.End()
	if len(cells) == 0 {
		return nil, nil
	}

	bctx, buildSpan := obs.Start(ctx, "refine.build")
	defer buildSpan.End()
	builder := component.NewBuilder(component.KindIVFPQ)
	manifestJSON, err := json.Marshal(man)
	if err != nil {
		return nil, fmt.Errorf("core: encode manifest: %w", err)
	}
	builder.Add(manifestJSON) // component 0, same as every index file
	if err := ivfpq.RefineInto(bctx, builder, ix, cells, opts); err != nil {
		return nil, err
	}
	data, err := builder.Finish()
	if err != nil {
		return nil, err
	}
	buildSpan.SetAttr("bytes", len(data))
	buildSpan.End()

	uctx, uploadSpan := obs.Start(ctx, "refine.upload")
	defer uploadSpan.End()
	newKey := c.cfg.IndexDir + indexFilePrefix + randomName() + ".index"
	uploadSpan.SetAttr("key", newKey)
	if err := c.store.Put(uctx, newKey, data); err != nil {
		return nil, err
	}
	uploadSpan.End()

	if c.clock.Now().Sub(start) > c.cfg.Timeout {
		return nil, fmt.Errorf("core: refine of %s: %w", indexKey, ErrTimeout)
	}
	entry := meta.IndexEntry{
		IndexKey:  newKey,
		Kind:      component.KindIVFPQ,
		Column:    column,
		Files:     append([]string(nil), old.Files...),
		Rows:      old.Rows,
		SizeBytes: int64(len(data)),
	}
	cctx, commitSpan := obs.Start(ctx, "refine.commit")
	defer commitSpan.End()
	// Insert-then-delete: both orders keep every file covered, but the
	// old row must go — greedy cover selection breaks ties toward the
	// earlier-listed entry, so leaving it would keep serving the
	// unrefined index forever.
	if err := c.meta.Insert(cctx, entry); err != nil {
		return nil, err
	}
	if err := c.meta.Delete(cctx, indexKey); err != nil {
		return nil, err
	}
	c.plans.invalidateAll()
	commitSpan.End()
	if c.clock.Now().Sub(start) > c.cfg.Timeout {
		// Same post-commit re-check as Index: a vacuum judging the new
		// upload's age by this clock may already have collected it.
		// Roll back to the old row, whose object a vacuum only deletes
		// after its metadata row is gone — and it wasn't until now.
		rctx, rollbackSpan := obs.Start(ctx, "refine.rollback")
		defer rollbackSpan.End()
		if err := c.meta.Insert(rctx, *old); err != nil {
			return nil, err
		}
		if err := c.meta.Delete(rctx, newKey); err != nil {
			return nil, err
		}
		c.plans.invalidateAll()
		return nil, fmt.Errorf("core: refine of %s overran commit: %w", indexKey, ErrTimeout)
	}
	entry.CreatedAt = c.clock.Now()
	return &entry, nil
}

// ListIndexes returns the committed metadata rows of the (column,
// kind) index, for policies that plan maintenance over them.
func (c *Client) ListIndexes(ctx context.Context, column string, kind component.Kind) ([]meta.IndexEntry, error) {
	return c.meta.ListFor(ctx, column, kind)
}

// DropIndex deletes every metadata row of the (column, kind) index,
// demoting the column to the scan path. The index objects become
// unreferenced and are flagged for the next vacuum, which physically
// collects them. Returns the number of rows dropped.
func (c *Client) DropIndex(ctx context.Context, column string, kind component.Kind) (int, error) {
	dctx, span := obs.Start(ctx, "index.drop")
	defer span.End()
	entries, err := c.meta.ListFor(dctx, column, kind)
	if err != nil {
		return 0, err
	}
	if len(entries) == 0 {
		return 0, nil
	}
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.IndexKey
	}
	if err := c.meta.Delete(dctx, keys...); err != nil {
		return 0, err
	}
	// Cached plans reference the dropped rows; replan against the scan
	// path. The objects themselves stay valid until vacuum removes
	// them, so decoded-object and probe caches need no invalidation
	// here — vacuum's remove phase handles that when it collects them.
	c.plans.invalidateAll()
	span.SetAttr("column", column)
	span.SetAttr("dropped", len(keys))
	return len(keys), nil
}
