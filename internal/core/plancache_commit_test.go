package core

import (
	"context"
	"fmt"
	"testing"

	"rottnest/internal/component"
	"rottnest/internal/lake"
	"rottnest/internal/parquet"
	"rottnest/internal/workload"
)

// TestPlanCacheBoundedUnderRapidCommits pins the plan cache's behaviour
// under a continuous-ingestion commit rate: every group commit advances
// the lake version (firing the commit hook that moves the cache's
// latest pointer), searches at the latest snapshot always see the rows
// of the newest commit, and the entry count stays within the TTL
// window instead of growing with the commit count.
func TestPlanCacheBoundedUnderRapidCommits(t *testing.T) {
	ctx := context.Background()
	e := newEnv(t, uuidSchema, Config{})
	gen := workload.NewUUIDGen(11)
	keys, _ := e.appendUUIDs(t, gen, 200)
	if _, err := e.cli.Index(ctx, "id", component.KindTrie); err != nil {
		t.Fatal(err)
	}
	// Warm the cache at the current version.
	if _, err := e.cli.Search(ctx, uuidQuery(keys[0])); err != nil {
		t.Fatal(err)
	}

	const rounds = 30
	for round := 0; round < rounds; round++ {
		// One group commit per round: two staged files, one log entry.
		var pending []lake.PendingFile
		var probe [16]byte
		for f := 0; f < 2; f++ {
			ks := gen.Batch(4)
			probe = ks[0]
			b := parquet.NewBatch(uuidSchema)
			ids := make([][]byte, len(ks))
			pay := make([][]byte, len(ks))
			for i, k := range ks {
				kk := k
				ids[i] = kk[:]
				pay[i] = []byte(fmt.Sprintf("r%d", round))
			}
			b.Cols[0] = parquet.ColumnValues{Bytes: ids}
			b.Cols[1] = parquet.ColumnValues{Bytes: pay}
			pf, err := e.table.WriteFile(ctx, b, parquet.WriterOptions{})
			if err != nil {
				t.Fatal(err)
			}
			pending = append(pending, pf)
		}
		if _, err := e.table.CommitFiles(ctx, pending...); err != nil {
			t.Fatal(err)
		}
		// Freshness: a latest-snapshot search must see the rows this
		// very commit landed (they are unindexed, so the scan path
		// covers them — a stale cached plan would miss the new files).
		res, err := e.cli.Search(ctx, uuidQuery(probe))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 1 {
			t.Fatalf("round %d: fresh key matched %d times", round, len(res.Matches))
		}
	}

	snap := e.cli.Metrics()
	entries := snap.Gauge("search.plan_cache_entries")
	if entries <= 0 {
		t.Fatalf("plan_cache_entries = %d, want > 0", entries)
	}
	// At most two entries per version in the TTL window (one per
	// planner path); the bound is the window size, not the commit count.
	if max := int64(2 * (defaultPlanTTLVersions + 1)); entries > max {
		t.Fatalf("plan_cache_entries = %d after %d rapid commits, want <= %d (TTL pruning)",
			entries, rounds, max)
	}
	if misses := snap.Counter("search.plan_cache_misses"); misses < rounds {
		t.Fatalf("plan_cache_misses = %d, want >= %d (every commit is a new version)", misses, rounds)
	}
}
