package trie

import (
	"context"
	"fmt"
	"testing"

	"rottnest/internal/component"
	"rottnest/internal/objectstore"
	"rottnest/internal/postings"
	"rottnest/internal/workload"
)

func buildAndOpen(t *testing.T, store *objectstore.MemStore, key string, keys [][16]byte, refs []postings.PageRef, opts BuildOptions) *Index {
	t.Helper()
	ctx := context.Background()
	data, err := Build(keys, refs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ctx, key, data); err != nil {
		t.Fatal(err)
	}
	r, err := component.Open(ctx, store, key, component.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestLookupFindsEveryKey(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	gen := workload.NewUUIDGen(1)
	const n = 5000
	keys := gen.Batch(n)
	refs := make([]postings.PageRef, n)
	for i := range refs {
		refs[i] = postings.PageRef{File: uint32(i % 7), Page: uint32(i / 100)}
	}
	ix := buildAndOpen(t, store, "t.index", keys, refs, BuildOptions{})
	if ix.NumEntries() != n {
		t.Fatalf("NumEntries = %d, want %d", ix.NumEntries(), n)
	}
	for i, k := range keys {
		got, err := ix.Lookup(ctx, k)
		if err != nil {
			t.Fatalf("Lookup(%d): %v", i, err)
		}
		found := false
		for _, r := range got {
			if r == refs[i] {
				found = true
			}
		}
		if !found {
			t.Fatalf("key %d: ref %v missing from %v (false negative)", i, refs[i], got)
		}
	}
}

func TestLookupMissingKeysMostlyEmpty(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	gen := workload.NewUUIDGen(2)
	keys := gen.Batch(5000)
	refs := make([]postings.PageRef, len(keys))
	for i := range refs {
		refs[i] = postings.PageRef{Page: uint32(i)}
	}
	ix := buildAndOpen(t, store, "t.index", keys, refs, BuildOptions{})
	// Random probes: with LCP+8 truncation, false positives are
	// possible but must be rare.
	probes := workload.NewUUIDGen(999).Batch(2000)
	falsePos := 0
	for _, p := range probes {
		got, err := ix.Lookup(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) > 0 {
			falsePos++
		}
	}
	if falsePos > 20 { // 1% of probes
		t.Fatalf("%d/%d random probes hit (too many false positives)", falsePos, len(probes))
	}
}

func TestDuplicateKeysMergeRefs(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	k := workload.NewUUIDGen(3).Next()
	keys := [][16]byte{k, k, k}
	refs := []postings.PageRef{{File: 0, Page: 1}, {File: 1, Page: 2}, {File: 0, Page: 1}}
	ix := buildAndOpen(t, store, "t.index", keys, refs, BuildOptions{})
	got, err := ix.Lookup(ctx, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Lookup = %v, want 2 deduped refs", got)
	}
}

func TestLookupRequestCount(t *testing.T) {
	// The componentized trie answers a lookup with the open's suffix
	// read plus at most one leaf-component GET (Figure 6).
	ctx := context.Background()
	inner := objectstore.NewMemStore(nil)
	gen := workload.NewUUIDGen(4)
	keys := gen.Batch(20000)
	refs := make([]postings.PageRef, len(keys))
	for i := range refs {
		refs[i] = postings.PageRef{Page: uint32(i)}
	}
	data, err := Build(keys, refs, BuildOptions{TargetComponentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	inner.Put(ctx, "t.index", data)
	store, metrics := objectstore.Instrument(inner, objectstore.DefaultS3Model())
	r, err := component.Open(ctx, store, "t.index", component.OpenOptions{TailBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Open(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	before := metrics.Snapshot()
	if _, err := ix.Lookup(ctx, keys[7]); err != nil {
		t.Fatal(err)
	}
	if d := metrics.Snapshot().Sub(before); d.Gets > 1 {
		t.Fatalf("lookup issued %d GETs, want <= 1", d.Gets)
	}
}

func TestMergeEquivalentToFreshBuild(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	gen := workload.NewUUIDGen(5)
	keysA := gen.Batch(1500)
	keysB := gen.Batch(1500)
	refsA := make([]postings.PageRef, len(keysA))
	refsB := make([]postings.PageRef, len(keysB))
	for i := range refsA {
		refsA[i] = postings.PageRef{File: 0, Page: uint32(i)}
	}
	for i := range refsB {
		refsB[i] = postings.PageRef{File: 0, Page: uint32(i)}
	}
	ixA := buildAndOpen(t, store, "a.index", keysA, refsA, BuildOptions{})
	ixB := buildAndOpen(t, store, "b.index", keysB, refsB, BuildOptions{})

	// Merged file table: A's file 0 -> 0, B's file 0 -> 1.
	merged, err := Merge(ctx, []*Index{ixA, ixB}, []map[uint32]uint32{{0: 0}, {0: 1}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	store.Put(ctx, "m.index", merged)
	r, err := component.Open(ctx, store, "m.index", component.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ixM, err := Open(ctx, r)
	if err != nil {
		t.Fatal(err)
	}

	for i, k := range keysA {
		got, err := ixM.Lookup(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		want := postings.PageRef{File: 0, Page: uint32(i)}
		if !containsRef(got, want) {
			t.Fatalf("merged lookup keyA %d: %v missing %v", i, got, want)
		}
	}
	for i, k := range keysB {
		got, err := ixM.Lookup(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		want := postings.PageRef{File: 1, Page: uint32(i)}
		if !containsRef(got, want) {
			t.Fatalf("merged lookup keyB %d: %v missing %v", i, got, want)
		}
	}
}

func TestMergeDropsUnmappedFiles(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	gen := workload.NewUUIDGen(6)
	keys := gen.Batch(100)
	refs := make([]postings.PageRef, len(keys))
	for i := range refs {
		refs[i] = postings.PageRef{File: uint32(i % 2), Page: uint32(i)}
	}
	ix := buildAndOpen(t, store, "t.index", keys, refs, BuildOptions{})
	// Only file 0 survives the merge.
	merged, err := Merge(ctx, []*Index{ix}, []map[uint32]uint32{{0: 0}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	store.Put(ctx, "m.index", merged)
	r, _ := component.Open(ctx, store, "m.index", component.OpenOptions{})
	ixM, err := Open(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		got, err := ixM.Lookup(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range got {
			if ref.File != 0 {
				t.Fatalf("unmapped file leaked: %v", ref)
			}
		}
		if i%2 == 0 && !containsRef(got, postings.PageRef{File: 0, Page: uint32(i)}) {
			t.Fatalf("mapped ref lost for key %d", i)
		}
	}
}

func TestIndexSizeMuchSmallerThanKeys(t *testing.T) {
	// The LCP+8 truncation keeps the index well under raw key size
	// (the property that keeps cpm_r low for UUID search, Fig 7b).
	gen := workload.NewUUIDGen(7)
	const n = 50000
	keys := gen.Batch(n)
	refs := make([]postings.PageRef, n)
	for i := range refs {
		refs[i] = postings.PageRef{Page: uint32(i / 1000)}
	}
	data, err := Build(keys, refs, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rawBytes := n * KeyLen
	if len(data) > rawBytes/2 {
		t.Fatalf("index %d bytes for %d raw key bytes", len(data), rawBytes)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(make([][16]byte, 2), make([]postings.PageRef, 1), BuildOptions{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestEmptyTrie(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	ix := buildAndOpen(t, store, "e.index", nil, nil, BuildOptions{})
	got, err := ix.Lookup(ctx, workload.NewUUIDGen(8).Next())
	if err != nil || got != nil {
		t.Fatalf("empty trie lookup = %v, %v", got, err)
	}
}

func TestOpenWrongKind(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	b := component.NewBuilder(component.KindFM)
	b.Add([]byte("x"))
	data, _ := b.Finish()
	store.Put(ctx, "fm.index", data)
	r, err := component.Open(ctx, store, "fm.index", component.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(ctx, r); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestAdversarialSharedPrefixes(t *testing.T) {
	// Keys differing only in the last bits stress deep LCP paths.
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	var keys [][16]byte
	var refs []postings.PageRef
	base := workload.NewUUIDGen(9).Next()
	for i := 0; i < 64; i++ {
		k := base
		k[15] = byte(i)
		keys = append(keys, k)
		refs = append(refs, postings.PageRef{Page: uint32(i)})
	}
	ix := buildAndOpen(t, store, "deep.index", keys, refs, BuildOptions{})
	for i, k := range keys {
		got, err := ix.Lookup(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if !containsRef(got, refs[i]) {
			t.Fatalf("deep key %d lost", i)
		}
	}
}

func TestLCPBits(t *testing.T) {
	a := [16]byte{0xFF, 0x00}
	b := [16]byte{0xFF, 0x80}
	if got := lcpBits(a[:], b[:]); got != 8 {
		t.Fatalf("lcpBits = %d, want 8", got)
	}
	if got := lcpBits(a[:], a[:]); got != 128 {
		t.Fatalf("identical keys lcp = %d", got)
	}
	c := [16]byte{0x00}
	d := [16]byte{0x80}
	if got := lcpBits(c[:], d[:]); got != 0 {
		t.Fatalf("lcpBits = %d, want 0", got)
	}
}

func containsRef(refs []postings.PageRef, want postings.PageRef) bool {
	for _, r := range refs {
		if r == want {
			return true
		}
	}
	return false
}

func BenchmarkTrieLookup(b *testing.B) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	gen := workload.NewUUIDGen(10)
	keys := gen.Batch(100000)
	refs := make([]postings.PageRef, len(keys))
	for i := range refs {
		refs[i] = postings.PageRef{Page: uint32(i)}
	}
	data, err := Build(keys, refs, BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	store.Put(ctx, "t.index", data)
	r, _ := component.Open(ctx, store, "t.index", component.OpenOptions{})
	ix, err := Open(ctx, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Lookup(ctx, keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrieBuild(b *testing.B) {
	gen := workload.NewUUIDGen(11)
	keys := gen.Batch(50000)
	refs := make([]postings.PageRef, len(keys))
	for i := range refs {
		refs[i] = postings.PageRef{Page: uint32(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(keys, refs, BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleBuild() {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	keys := workload.NewUUIDGen(42).Batch(3)
	refs := []postings.PageRef{{File: 0, Page: 0}, {File: 0, Page: 1}, {File: 1, Page: 0}}
	data, _ := Build(keys, refs, BuildOptions{})
	store.Put(ctx, "uuids.index", data)
	r, _ := component.Open(ctx, store, "uuids.index", component.OpenOptions{})
	ix, _ := Open(ctx, r)
	got, _ := ix.Lookup(ctx, keys[1])
	fmt.Println(got)
	// Output: [{0 1}]
}
