package trie

import (
	"testing"

	"rottnest/internal/postings"
)

// FuzzTrieNodeDecode drives the two raw trie decoders — leaf entries
// and the root lookup table — over arbitrary bytes. Corrupted input
// must error; it must never panic or report consuming more bytes than
// it was given.
func FuzzTrieNodeDecode(f *testing.F) {
	// A well-formed entry: 8-bit path 0xAB with one posting.
	f.Add([]byte{8, 0xAB, 1, 0, 0})
	// A well-formed entry with a longer path and two postings.
	entry := appendEntry(nil, &Entry{
		Bits:   []byte{0xDE, 0xAD, 0xBE, 0xEF},
		BitLen: 30,
		Refs:   []postings.PageRef{{File: 1, Page: 2}, {File: 1, Page: 9}},
	})
	f.Add(entry)
	// A well-formed (empty) root: total 0 + 256 zeroed bucket descriptors.
	f.Add(make([]byte, 1+256*4))
	// Truncation and garbage.
	f.Add([]byte{})
	f.Add([]byte{129})
	f.Add([]byte{8, 0xAB, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		if e, n, err := decodeEntry(data); err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("decodeEntry consumed %d of %d bytes", n, len(data))
			}
			if e.BitLen <= 0 || e.BitLen > keyBits {
				t.Fatalf("decodeEntry accepted bit length %d", e.BitLen)
			}
		}
		if total, buckets, err := parseRoot(data); err == nil {
			if total < 0 {
				t.Fatalf("parseRoot accepted negative total %d", total)
			}
			_ = buckets
		}
	})
}
