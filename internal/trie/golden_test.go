package trie

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"testing"

	"rottnest/internal/postings"
	"rottnest/internal/workload"
)

// trieGoldenHash is the SHA-256 of the index file built by the
// original serial builder (pre-parallel seed code) for
// goldenTrieInput. The parallel bucketed build must keep emitting
// byte-identical files.
const trieGoldenHash = "7dd49dec652799b3650454d48ef35cd3f867cdfcd60913b2f410b0405d90dbe9"

func goldenTrieInput() ([][16]byte, []postings.PageRef) {
	keys := workload.NewUUIDGen(42).Batch(5000)
	for i := 0; i < 500; i++ {
		keys = append(keys, keys[i%100]) // duplicates across pages
	}
	refs := make([]postings.PageRef, len(keys))
	for i := range refs {
		refs[i] = postings.PageRef{File: uint32(i / 256), Page: uint32(i % 256)}
	}
	return keys, refs
}

func TestBuildGoldenBytes(t *testing.T) {
	keys, refs := goldenTrieInput()
	opts := BuildOptions{TargetComponentBytes: 8 << 10}
	data, err := Build(keys, refs, opts)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.Sum256(data)
	if got := hex.EncodeToString(h[:]); got != trieGoldenHash {
		t.Fatalf("trie index bytes diverged from the seed build:\n got %s\nwant %s", got, trieGoldenHash)
	}

	// The parallel build must be independent of the worker count.
	prev := runtime.GOMAXPROCS(1)
	serial, err := Build(keys, refs, opts)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, data) {
		t.Fatal("trie index bytes differ between GOMAXPROCS=1 and parallel build")
	}
}
