package trie

import (
	"context"
	"math/rand"
	"testing"

	"rottnest/internal/component"
	"rottnest/internal/objectstore"
	"rottnest/internal/postings"
	"rottnest/internal/workload"
)

// TestCorruptedTrieNeverPanics mutates index bytes and drives the
// full open/lookup path: damaged indices must error (or return wrong
// refs, which in-situ probing filters), never panic.
func TestCorruptedTrieNeverPanics(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	keys := workload.NewUUIDGen(11).Batch(2000)
	refs := make([]postings.PageRef, len(keys))
	for i := range refs {
		refs[i] = postings.PageRef{Page: uint32(i)}
	}
	valid, err := Build(keys, refs, BuildOptions{TargetComponentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		corrupted := append([]byte(nil), valid...)
		for f := 0; f <= rng.Intn(3); f++ {
			corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
		}
		store := objectstore.NewMemStore(nil)
		store.Put(ctx, "t.index", corrupted)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d panicked: %v", trial, p)
				}
			}()
			r, err := component.Open(ctx, store, "t.index", component.OpenOptions{})
			if err != nil {
				return
			}
			ix, err := Open(ctx, r)
			if err != nil {
				return
			}
			for probe := 0; probe < 5; probe++ {
				ix.Lookup(ctx, keys[rng.Intn(len(keys))])
			}
			ix.Entries(ctx)
		}()
	}
}
