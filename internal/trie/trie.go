// Package trie implements Rottnest's high-cardinality UUID index
// (Section V-C1 of the paper): a binary trie over 128-bit keys in
// which each key is indexed only up to its longest common prefix plus
// eight extra bits, so the index stays far smaller than the keys
// themselves while remaining exact up to harmless false positives
// (which in-situ probing filters out).
//
// The trie is componentized for object storage (Section V-B): the
// first eight trie levels are replaced by a 256-entry lookup table
// stored in the root component, and the subtries below are serialized
// as their sorted leaf paths, packed into leaf components of bounded
// size. A lookup therefore costs one suffix read (directory + root,
// performed at open) plus one leaf-component read — the two-request
// pattern of Figure 6.
package trie

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"rottnest/internal/component"
	"rottnest/internal/parallel"
	"rottnest/internal/postings"
)

// KeyLen is the fixed key width in bytes.
const KeyLen = 16

// keyBits is the fixed key width in bits.
const keyBits = KeyLen * 8

// Entry is one leaf of the trie: a truncated key path and the pages
// containing the full keys below it.
type Entry struct {
	// Bits holds the truncated key path, packed MSB-first.
	Bits []byte
	// BitLen is the number of meaningful bits in Bits.
	BitLen int
	// Refs are the pages containing matching keys.
	Refs []postings.PageRef
}

// matches reports whether the entry's path is a prefix of key.
func (e *Entry) matches(key []byte) bool {
	return prefixMatches(e.Bits, e.BitLen, key)
}

func prefixMatches(bits []byte, bitLen int, key []byte) bool {
	full := bitLen / 8
	if !bytes.Equal(bits[:full], key[:full]) {
		return false
	}
	rem := bitLen % 8
	if rem == 0 {
		return true
	}
	mask := byte(0xFF << (8 - rem))
	return bits[full]&mask == key[full]&mask
}

// compareEntries orders entries by their bit paths (lexicographic,
// with a shorter path ordering before any longer path it prefixes).
func compareEntries(a, b *Entry) int {
	minLen := a.BitLen
	if b.BitLen < minLen {
		minLen = b.BitLen
	}
	full := minLen / 8
	if c := bytes.Compare(a.Bits[:full], b.Bits[:full]); c != 0 {
		return c
	}
	if rem := minLen % 8; rem != 0 {
		mask := byte(0xFF << (8 - rem))
		av, bv := a.Bits[full]&mask, b.Bits[full]&mask
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return a.BitLen - b.BitLen
}

// BuildOptions tune trie construction.
type BuildOptions struct {
	// ExtraBits is the number of bits indexed beyond each key's
	// unique prefix. The paper uses 8.
	ExtraBits int
	// MinBits floors the truncated path length so every path covers
	// at least the root lookup-table depth.
	MinBits int
	// TargetComponentBytes bounds the serialized size of each leaf
	// component. Defaults to 128 KiB — squarely in the flat region of
	// the object-store latency curve.
	TargetComponentBytes int
}

func (o BuildOptions) withDefaults() BuildOptions {
	if o.ExtraBits <= 0 {
		o.ExtraBits = 8
	}
	if o.MinBits < 16 {
		o.MinBits = 16
	}
	if o.TargetComponentBytes <= 0 {
		o.TargetComponentBytes = 128 << 10
	}
	return o
}

// lcpBits returns the length in bits of the longest common prefix of
// a and b.
func lcpBits(a, b []byte) int {
	n := 0
	for i := 0; i < KeyLen; i++ {
		if a[i] == b[i] {
			n += 8
			continue
		}
		x := a[i] ^ b[i]
		for x&0x80 == 0 {
			n++
			x <<= 1
		}
		return n
	}
	return n
}

// Build constructs a componentized trie file over parallel slices of
// keys and page refs (keys[i] is found on refs[i]).
func Build(keys [][16]byte, refs []postings.PageRef, opts BuildOptions) ([]byte, error) {
	b := component.NewBuilder(component.KindTrie)
	if err := BuildInto(b, keys, refs, opts); err != nil {
		return nil, err
	}
	return b.Finish()
}

// BuildInto appends the trie's components (root last) to an existing
// builder, letting callers prepend their own components — Rottnest's
// client stores its file-table manifest as component 0 of every index
// file.
func BuildInto(b *component.Builder, keys [][16]byte, refs []postings.PageRef, opts BuildOptions) error {
	if len(keys) != len(refs) {
		return fmt.Errorf("trie: %d keys but %d refs", len(keys), len(refs))
	}
	opts = opts.withDefaults()

	// Sort (key, ref) pairs: partition indices by first key byte in one
	// counting pass, then sort the 256 partitions in parallel. The
	// partition order equals the global sorted order, so this matches
	// one full sort. Duplicate keys may land in any relative order
	// across workers, which is harmless: their refs are folded into a
	// single entry below and Dedup sorts them.
	idx := make([]int, len(keys))
	var counts [257]int
	for i := range keys {
		counts[int(keys[i][0])+1]++
	}
	for c := 1; c < 257; c++ {
		counts[c] += counts[c-1]
	}
	place := counts
	for i := range keys {
		c := keys[i][0]
		idx[place[c]] = i
		place[c]++
	}
	parallel.ForEach(256, func(c int) {
		part := idx[counts[c]:counts[c+1]]
		sort.Slice(part, func(a, b int) bool {
			return bytes.Compare(keys[part[a]][:], keys[part[b]][:]) < 0
		})
	})

	type flat struct {
		key  [16]byte
		refs []postings.PageRef
	}
	var flats []flat
	for _, i := range idx {
		if n := len(flats); n > 0 && flats[n-1].key == keys[i] {
			flats[n-1].refs = append(flats[n-1].refs, refs[i])
			continue
		}
		flats = append(flats, flat{key: keys[i], refs: []postings.PageRef{refs[i]}})
	}

	// Truncate each key to LCP+1+ExtraBits. Each entry reads only its
	// immediate neighbours, so the pass parallelizes cleanly.
	entries := make([]*Entry, len(flats))
	parallel.ForEach(len(flats), func(i int) {
		f := flats[i]
		lcp := 0
		if i > 0 {
			lcp = lcpBits(f.key[:], flats[i-1].key[:])
		}
		if i+1 < len(flats) {
			if l := lcpBits(f.key[:], flats[i+1].key[:]); l > lcp {
				lcp = l
			}
		}
		bitLen := lcp + 1 + opts.ExtraBits
		if bitLen < opts.MinBits {
			bitLen = opts.MinBits
		}
		if bitLen > keyBits {
			bitLen = keyBits
		}
		entries[i] = truncate(f.key, bitLen, f.refs)
	})
	serializeInto(b, entries, opts)
	return nil
}

// truncate returns an entry holding the first bitLen bits of key.
func truncate(key [16]byte, bitLen int, refs []postings.PageRef) *Entry {
	nbytes := (bitLen + 7) / 8
	bits := make([]byte, nbytes)
	copy(bits, key[:nbytes])
	if rem := bitLen % 8; rem != 0 {
		bits[nbytes-1] &= 0xFF << (8 - rem)
	}
	refs = postings.Dedup(refs)
	return &Entry{Bits: bits, BitLen: bitLen, Refs: refs}
}

// bucketDesc locates one root-table bucket inside a leaf component.
type bucketDesc struct {
	ComponentID int
	ByteOffset  int
	ByteLen     int
	Count       int
}

// serializeInto packs sorted entries into leaf components bucketed by
// their first byte, then appends the root lookup table. Buckets are
// encoded in parallel and the resulting components compressed in
// parallel; the grouping below reproduces the serial flush rule
// exactly, so the emitted bytes are unchanged.
func serializeInto(b *component.Builder, entries []*Entry, opts BuildOptions) {
	var buckets [256]bucketDesc

	// Partition the sorted entries into the 256 root buckets.
	var bStart, bEnd [256]int
	pos := 0
	for bk := 0; bk < 256; bk++ {
		bStart[bk] = pos
		for pos < len(entries) && int(entries[pos].Bits[0]) == bk {
			pos++
		}
		bEnd[bk] = pos
	}

	// Encode each bucket independently; entries within a bucket are
	// already in final order, so concatenating the buckets yields the
	// same stream the serial single-buffer encode produced.
	var bufs [256][]byte
	parallel.ForEach(256, func(bk int) {
		var buf []byte
		for _, e := range entries[bStart[bk]:bEnd[bk]] {
			buf = appendEntry(buf, e)
		}
		bufs[bk] = buf
	})

	// Group buckets into leaf components under the serial flush rule: a
	// component closes as soon as it reaches TargetComponentBytes after
	// a bucket completes. Empty trailing buckets keep ComponentID 0,
	// matching the old builder (their Count is 0, so it is never read).
	type group struct{ firstBucket, endBucket int }
	var groups []group
	var payloads [][]byte
	curFirst, curLen := 0, 0
	closeGroup := func(endBucket int) {
		if curLen == 0 {
			return
		}
		payload := make([]byte, 0, curLen)
		for bk := curFirst; bk < endBucket; bk++ {
			payload = append(payload, bufs[bk]...)
		}
		groups = append(groups, group{firstBucket: curFirst, endBucket: endBucket})
		payloads = append(payloads, payload)
		curLen = 0
	}
	for bk := 0; bk < 256; bk++ {
		buckets[bk] = bucketDesc{
			ByteOffset: curLen,
			ByteLen:    len(bufs[bk]),
			Count:      bEnd[bk] - bStart[bk],
		}
		curLen += len(bufs[bk])
		if curLen >= opts.TargetComponentBytes {
			closeGroup(bk + 1)
			curFirst = bk + 1
		}
	}
	closeGroup(256)

	first := b.AddAll(payloads)
	for gi, g := range groups {
		for bk := g.firstBucket; bk < g.endBucket; bk++ {
			buckets[bk].ComponentID = first + gi
		}
	}

	// Root component: total entry count + 256 bucket descriptors.
	root := binary.AppendUvarint(nil, uint64(len(entries)))
	for _, bd := range buckets {
		root = binary.AppendUvarint(root, uint64(bd.ComponentID))
		root = binary.AppendUvarint(root, uint64(bd.ByteOffset))
		root = binary.AppendUvarint(root, uint64(bd.ByteLen))
		root = binary.AppendUvarint(root, uint64(bd.Count))
	}
	b.Add(root)
}

// appendEntry serializes one entry: [u8 bitLen][path bytes][postings].
func appendEntry(dst []byte, e *Entry) []byte {
	dst = append(dst, byte(e.BitLen))
	dst = append(dst, e.Bits[:(e.BitLen+7)/8]...)
	return postings.AppendList(dst, e.Refs)
}

// decodeEntry parses one entry, returning it and the bytes consumed.
func decodeEntry(data []byte) (*Entry, int, error) {
	if len(data) < 1 {
		return nil, 0, fmt.Errorf("trie: truncated entry")
	}
	bitLen := int(data[0])
	if bitLen == 0 || bitLen > keyBits {
		return nil, 0, fmt.Errorf("trie: bad entry bit length %d", bitLen)
	}
	nbytes := (bitLen + 7) / 8
	if len(data) < 1+nbytes {
		return nil, 0, fmt.Errorf("trie: truncated entry path")
	}
	bits := append([]byte(nil), data[1:1+nbytes]...)
	refs, n, err := postings.DecodeList(data[1+nbytes:])
	if err != nil {
		return nil, 0, err
	}
	return &Entry{Bits: bits, BitLen: bitLen, Refs: refs}, 1 + nbytes + n, nil
}

// parseRoot decodes the root component.
func parseRoot(data []byte) (total int, buckets [256]bucketDesc, err error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, buckets, fmt.Errorf("trie: corrupt root")
	}
	total = int(v)
	pos := n
	for i := range buckets {
		var vals [4]uint64
		for j := range vals {
			v, n := binary.Uvarint(data[pos:])
			if n <= 0 {
				return 0, buckets, fmt.Errorf("trie: corrupt root bucket %d", i)
			}
			vals[j] = v
			pos += n
		}
		buckets[i] = bucketDesc{
			ComponentID: int(vals[0]),
			ByteOffset:  int(vals[1]),
			ByteLen:     int(vals[2]),
			Count:       int(vals[3]),
		}
	}
	return total, buckets, nil
}

// Index is an opened trie ready for queries.
type Index struct {
	r       *component.Reader
	total   int
	buckets [256]bucketDesc
}

// Footprint estimates the decoded index's resident bytes (the root
// bucket table; node payloads are fetched lazily per lookup) for
// cache cost accounting.
func (ix *Index) Footprint() int64 {
	return 256*32 + 64
}

// Open prepares the trie at key for querying. The component open's
// suffix read captures the directory and root lookup table in one
// request.
func Open(ctx context.Context, r *component.Reader) (*Index, error) {
	if r.Kind() != component.KindTrie {
		return nil, fmt.Errorf("trie: %s is not a trie index (kind %d)", r.Key(), r.Kind())
	}
	root, err := r.Component(ctx, r.NumComponents()-1)
	if err != nil {
		return nil, err
	}
	total, buckets, err := parseRoot(root)
	if err != nil {
		return nil, err
	}
	return &Index{r: r, total: total, buckets: buckets}, nil
}

// NumEntries returns the total number of trie leaves.
func (ix *Index) NumEntries() int { return ix.total }

// Lookup returns the pages that may contain key: every leaf whose
// path is a prefix of key. False positives are possible (paths are
// truncated); false negatives are not.
func (ix *Index) Lookup(ctx context.Context, key [16]byte) ([]postings.PageRef, error) {
	bd := ix.buckets[key[0]]
	if bd.Count == 0 {
		return nil, nil
	}
	comp, err := ix.r.Component(ctx, bd.ComponentID)
	if err != nil {
		return nil, err
	}
	if bd.ByteOffset < 0 || bd.ByteLen < 0 || bd.ByteOffset+bd.ByteLen > len(comp) {
		return nil, fmt.Errorf("trie: bucket extent out of range")
	}
	data := comp[bd.ByteOffset : bd.ByteOffset+bd.ByteLen]
	var out []postings.PageRef
	for i := 0; i < bd.Count; i++ {
		e, n, err := decodeEntry(data)
		if err != nil {
			return nil, err
		}
		data = data[n:]
		if e.matches(key[:]) {
			out = append(out, e.Refs...)
		}
	}
	return postings.Dedup(out), nil
}

// Entries decodes every leaf of the trie (all components read).
// Merging uses it; queries never do.
func (ix *Index) Entries(ctx context.Context) ([]*Entry, error) {
	var out []*Entry
	for bk := 0; bk < 256; bk++ {
		bd := ix.buckets[bk]
		if bd.Count == 0 {
			continue
		}
		comp, err := ix.r.Component(ctx, bd.ComponentID)
		if err != nil {
			return nil, err
		}
		if bd.ByteOffset < 0 || bd.ByteLen < 0 || bd.ByteOffset+bd.ByteLen > len(comp) {
			return nil, fmt.Errorf("trie: bucket %d extent out of range", bk)
		}
		data := comp[bd.ByteOffset : bd.ByteOffset+bd.ByteLen]
		for i := 0; i < bd.Count; i++ {
			e, n, err := decodeEntry(data)
			if err != nil {
				return nil, err
			}
			data = data[n:]
			out = append(out, e)
		}
	}
	return out, nil
}

// Merge combines several tries into one file. fileMaps[i] rewrites
// source i's file numbers into the merged file table (refs to files
// absent from the map are dropped). Leaves with identical paths are
// folded; a leaf that is a prefix of another is kept as-is — queries
// match all prefix leaves, so this only admits the false positives
// the paper's design already tolerates.
func Merge(ctx context.Context, sources []*Index, fileMaps []map[uint32]uint32, opts BuildOptions) ([]byte, error) {
	b := component.NewBuilder(component.KindTrie)
	if err := MergeInto(ctx, b, sources, fileMaps, opts); err != nil {
		return nil, err
	}
	return b.Finish()
}

// MergeInto is Merge appending to an existing builder, mirroring
// BuildInto.
func MergeInto(ctx context.Context, b *component.Builder, sources []*Index, fileMaps []map[uint32]uint32, opts BuildOptions) error {
	if len(sources) != len(fileMaps) {
		return fmt.Errorf("trie: %d sources but %d file maps", len(sources), len(fileMaps))
	}
	opts = opts.withDefaults()
	var all []*Entry
	for i, src := range sources {
		entries, err := src.Entries(ctx)
		if err != nil {
			return err
		}
		for _, e := range entries {
			refs := postings.Remap(append([]postings.PageRef(nil), e.Refs...), fileMaps[i])
			if len(refs) == 0 {
				continue
			}
			all = append(all, &Entry{Bits: e.Bits, BitLen: e.BitLen, Refs: refs})
		}
	}
	sort.Slice(all, func(a, b int) bool { return compareEntries(all[a], all[b]) < 0 })
	// Fold identical paths.
	var merged []*Entry
	for _, e := range all {
		if n := len(merged); n > 0 && merged[n-1].BitLen == e.BitLen && bytes.Equal(merged[n-1].Bits, e.Bits) {
			merged[n-1].Refs = postings.Dedup(append(merged[n-1].Refs, e.Refs...))
			continue
		}
		e.Refs = postings.Dedup(e.Refs)
		merged = append(merged, e)
	}
	serializeInto(b, merged, opts)
	return nil
}
