// Package dedicated implements the paper's second baseline: copying
// data out of the lake into an always-on specialized search system
// (OpenSearch for text/UUID search, LanceDB for vectors in the
// paper's evaluation, Section II-C1). The system holds its index in
// RAM on a replicated cluster, so queries are fast and cheap — the
// cost is the always-on cluster, which the TCO model charges per
// month regardless of load.
package dedicated

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"rottnest/internal/insitu"
	"rottnest/internal/lake"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

// Config models the dedicated cluster.
type Config struct {
	// Replicas is the number of always-on instances (the paper uses
	// 3 r6g.large/xlarge).
	Replicas int
	// QueryBase is the fixed query latency (network + coordinator).
	// Defaults to 20ms.
	QueryBase time.Duration
	// RAMScanBps is the in-memory scan/score throughput. Defaults to
	// 5 GB/s.
	RAMScanBps float64
	// IngestBps is the ETL copy throughput from the lake. Defaults
	// to 100 MB/s.
	IngestBps float64
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.QueryBase <= 0 {
		c.QueryBase = 20 * time.Millisecond
	}
	if c.RAMScanBps <= 0 {
		c.RAMScanBps = 5e9
	}
	if c.IngestBps <= 0 {
		c.IngestBps = 100e6
	}
	return c
}

// System is an always-on copy-data search system holding one column
// of one lake snapshot in memory.
type System struct {
	cfg    Config
	column string

	// Exact in-memory structures (the "specialized index").
	uuid    map[[16]byte][]ref
	docs    []entry
	vectors [][]float32
	vecRefs []ref
	bytes   int64
}

type ref struct {
	path string
	row  int64
}

type entry struct {
	ref
	value []byte
}

// Ingest ETLs the snapshot's column into a fresh System, charging the
// copy latency to the session. This is the data-duplication step the
// lakehouse paradigm tries to avoid.
func Ingest(ctx context.Context, table *lake.Table, snapshotVersion int64, column string, cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	snap, err := table.SnapshotAt(ctx, snapshotVersion)
	if err != nil {
		return nil, err
	}
	ci := snap.Schema.ColumnIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("dedicated: column %q not in schema", column)
	}
	col := snap.Schema.Columns[ci]
	s := &System{cfg: cfg, column: column, uuid: make(map[[16]byte][]ref)}
	for _, f := range snap.Files {
		vals, _, _, err := parquet.ScanColumn(ctx, table.Store(), table.Root()+f.Path, ci)
		if err != nil {
			return nil, err
		}
		dv, err := table.ReadDeletionVector(ctx, f)
		if err != nil {
			return nil, err
		}
		for i, v := range vals.Bytes {
			if dv.Contains(uint32(i)) {
				continue
			}
			r := ref{path: f.Path, row: int64(i)}
			s.bytes += int64(len(v))
			switch {
			case col.Type == parquet.TypeFixedLenByteArray && col.TypeLen == 16:
				var k [16]byte
				copy(k[:], v)
				s.uuid[k] = append(s.uuid[k], r)
			case col.Type == parquet.TypeFixedLenByteArray:
				s.vectors = append(s.vectors, workload.BytesToFloat32s(v))
				s.vecRefs = append(s.vecRefs, r)
			default:
				s.docs = append(s.docs, entry{ref: r, value: append([]byte(nil), v...)})
			}
		}
		// Ingest transfer+index time.
		simtime.Charge(ctx, time.Duration(float64(f.Size)/cfg.IngestBps*float64(time.Second)))
	}
	return s, nil
}

// Bytes returns the copied data volume, which the cost model
// multiplies by the replication factor for EBS storage.
func (s *System) Bytes() int64 { return s.bytes }

// Replicas returns the instance count.
func (s *System) Replicas() int { return s.cfg.Replicas }

// SearchUUID answers an exact UUID lookup from RAM.
func (s *System) SearchUUID(ctx context.Context, key [16]byte, k int) []insitu.Match {
	simtime.Charge(ctx, s.cfg.QueryBase)
	var out []insitu.Match
	for _, r := range s.uuid[key] {
		kk := key
		out = append(out, insitu.Match{Path: r.path, Row: r.row, Value: kk[:]})
		if k > 0 && len(out) >= k {
			break
		}
	}
	return out
}

// SearchSubstring scans the in-RAM corpus (OpenSearch would use an
// n-gram index; an in-memory scan at RAM bandwidth models the same
// sub-second latency class without building a fourth index family).
func (s *System) SearchSubstring(ctx context.Context, pattern []byte, k int) []insitu.Match {
	simtime.Charge(ctx, s.cfg.QueryBase)
	simtime.Charge(ctx, time.Duration(float64(s.bytes)/float64(s.cfg.Replicas)/s.cfg.RAMScanBps*float64(time.Second)))
	var out []insitu.Match
	for _, e := range s.docs {
		if bytes.Contains(e.value, pattern) {
			out = append(out, insitu.Match{Path: e.path, Row: e.row, Value: e.value})
			if k > 0 && len(out) >= k {
				break
			}
		}
	}
	return out
}

// SearchVector answers an exact (perfect-recall) nearest-neighbor
// query from RAM.
func (s *System) SearchVector(ctx context.Context, q []float32, k int) []insitu.Match {
	simtime.Charge(ctx, s.cfg.QueryBase)
	simtime.Charge(ctx, time.Duration(float64(s.bytes)/float64(s.cfg.Replicas)/s.cfg.RAMScanBps*float64(time.Second)))
	idx := workload.ExactNearest(s.vectors, q, k)
	out := make([]insitu.Match, 0, len(idx))
	for _, i := range idx {
		r := s.vecRefs[i]
		out = append(out, insitu.Match{
			Path:  r.path,
			Row:   r.row,
			Value: workload.Float32sToBytes(s.vectors[i]),
			Score: float64(workload.L2Squared(q, s.vectors[i])),
		})
	}
	return out
}
