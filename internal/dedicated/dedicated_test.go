package dedicated

import (
	"context"
	"testing"
	"time"

	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/simtime"
	"rottnest/internal/workload"
)

func TestUUIDSystem(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	store := objectstore.NewMemStore(clock)
	schema := parquet.MustSchema(parquet.Column{Name: "id", Type: parquet.TypeFixedLenByteArray, TypeLen: 16})
	table, err := lake.CreateWith(ctx, store, "lake", schema, lake.OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewUUIDGen(1)
	keys := gen.Batch(500)
	b := parquet.NewBatch(schema)
	ids := make([][]byte, len(keys))
	for i := range keys {
		k := keys[i]
		ids[i] = k[:]
	}
	b.Cols[0] = parquet.ColumnValues{Bytes: ids}
	path, err := table.Append(ctx, b, parquet.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Delete one row before ingest; it must not appear.
	if err := table.DeleteRows(ctx, path, []uint32{7}); err != nil {
		t.Fatal(err)
	}

	sess := simtime.NewSession()
	sctx := simtime.With(ctx, sess)
	sys, err := Ingest(sctx, table, -1, "id", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Elapsed() <= 0 {
		t.Fatal("ingest charged no time")
	}
	if sys.Bytes() == 0 || sys.Replicas() != 3 {
		t.Fatalf("sys = %d bytes, %d replicas", sys.Bytes(), sys.Replicas())
	}

	got := sys.SearchUUID(ctx, keys[3], 10)
	if len(got) != 1 || got[0].Row != 3 {
		t.Fatalf("SearchUUID = %+v", got)
	}
	if got := sys.SearchUUID(ctx, keys[7], 10); len(got) != 0 {
		t.Fatal("deleted row served")
	}
	// Query latency is in the sub-second always-on class.
	qs := simtime.NewSession()
	sys.SearchUUID(simtime.With(ctx, qs), keys[3], 10)
	if qs.Elapsed() > 500*time.Millisecond {
		t.Fatalf("dedicated query latency %v", qs.Elapsed())
	}
}

func TestSubstringSystem(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	store := objectstore.NewMemStore(clock)
	schema := parquet.MustSchema(parquet.Column{Name: "body", Type: parquet.TypeByteArray})
	table, err := lake.CreateWith(ctx, store, "lake", schema, lake.OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	docs := workload.PlantNeedle(workload.NewTextGen(workload.DefaultTextConfig(2)).Docs(300), "CopperNeedle", []int{5, 100})
	b := parquet.NewBatch(schema)
	vals := make([][]byte, len(docs))
	for i, d := range docs {
		vals[i] = []byte(d)
	}
	b.Cols[0] = parquet.ColumnValues{Bytes: vals}
	if _, err := table.Append(ctx, b, parquet.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	sys, err := Ingest(ctx, table, -1, "body", Config{})
	if err != nil {
		t.Fatal(err)
	}
	got := sys.SearchSubstring(ctx, []byte("CopperNeedle"), 0)
	if len(got) != 2 {
		t.Fatalf("matches = %d", len(got))
	}
	if got := sys.SearchSubstring(ctx, []byte("CopperNeedle"), 1); len(got) != 1 {
		t.Fatal("top-k")
	}
}

func TestVectorSystemPerfectRecall(t *testing.T) {
	ctx := context.Background()
	clock := simtime.NewVirtualClock()
	store := objectstore.NewMemStore(clock)
	dim := 8
	schema := parquet.MustSchema(parquet.Column{Name: "emb", Type: parquet.TypeFixedLenByteArray, TypeLen: 4 * dim})
	table, err := lake.CreateWith(ctx, store, "lake", schema, lake.OpenOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewVectorGen(workload.VectorConfig{Seed: 3, Dim: dim, Clusters: 8})
	vecs := gen.Batch(800)
	b := parquet.NewBatch(schema)
	vals := make([][]byte, len(vecs))
	for i, v := range vecs {
		vals[i] = workload.Float32sToBytes(v)
	}
	b.Cols[0] = parquet.ColumnValues{Bytes: vals}
	if _, err := table.Append(ctx, b, parquet.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	sys, err := Ingest(ctx, table, -1, "emb", Config{})
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	for _, q := range gen.Queries(10) {
		got := sys.SearchVector(ctx, q, k)
		truth := workload.ExactNearest(vecs, q, k)
		rows := make([]int, len(got))
		for i, m := range got {
			rows[i] = int(m.Row)
		}
		if r := workload.Recall(rows, truth); r != 1 {
			t.Fatalf("dedicated recall = %v, want perfect", r)
		}
	}
}
