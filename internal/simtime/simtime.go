// Package simtime provides virtual-time accounting for simulated
// object-storage workloads.
//
// Rottnest's evaluation depends on the latency shape of cloud object
// storage: chains of dependent requests (access "depth") accumulate
// latency, while parallel fans of requests (access "width") largely
// overlap. Instead of sleeping, every logical operation (a search, an
// indexing run, a brute-force scan) runs inside a Session that records
// its position on a virtual timeline. Sequential work advances the
// session; Parallel branches each start at the parent's current time
// and the parent resumes at the latest branch finish time.
//
// A Clock is the single global wall clock of a simulated world. Object
// stores stamp object creation times from it, which the vacuum
// protocol relies on ("modern object stores provide strong consistency,
// and thus have a single global clock", Section IV-C of the paper).
package simtime

import (
	"context"
	"sync"
	"time"
)

// Clock is a source of timestamps for a simulated world. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the current time of the world.
	Now() time.Time
	// Advance moves the clock forward by d and returns the new time.
	// Real clocks ignore the requested delta and return the real time.
	Advance(d time.Duration) time.Time
}

// VirtualClock is a manually advanced Clock starting at a fixed epoch.
// It is the single global clock of a simulated object-storage world.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// Epoch is the starting instant of every VirtualClock.
var Epoch = time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)

// NewVirtualClock returns a VirtualClock positioned at Epoch.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: Epoch}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the virtual clock forward by d (negative deltas are
// ignored) and returns the new time.
func (c *VirtualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}

// RealClock is a Clock backed by the machine's wall clock. It is used
// when Rottnest runs against a directory-backed store outside of a
// simulation (for example, from the CLI).
type RealClock struct{}

// Now returns the real wall-clock time.
func (RealClock) Now() time.Time { return time.Now() }

// Advance ignores d and returns the real wall-clock time.
func (RealClock) Advance(time.Duration) time.Time { return time.Now() }

// A Session tracks the virtual elapsed time of one logical operation.
// The zero value is ready to use. Sessions are safe for concurrent use,
// though concurrent Add calls model independent work and callers who
// need parallel semantics should use Parallel.
type Session struct {
	mu      sync.Mutex
	elapsed time.Duration
}

// NewSession returns a Session positioned at zero elapsed time.
func NewSession() *Session { return &Session{} }

// Add advances the session's timeline by d. Negative durations are
// ignored.
func (s *Session) Add(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.mu.Lock()
	s.elapsed += d
	s.mu.Unlock()
}

// Elapsed reports the session's current virtual elapsed time.
func (s *Session) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.elapsed
}

// advanceTo moves the session's timeline forward to at least t.
func (s *Session) advanceTo(t time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if t > s.elapsed {
		s.elapsed = t
	}
	s.mu.Unlock()
}

// Parallel runs the branch functions concurrently, each on a child
// Session starting at the parent's current elapsed time. When all
// branches return, the parent's timeline advances to the latest branch
// finish time. Branches run on real goroutines, so the real work they
// perform is also parallel.
func (s *Session) Parallel(branches ...func(*Session)) {
	if len(branches) == 0 {
		return
	}
	start := s.Elapsed()
	children := make([]*Session, len(branches))
	var wg sync.WaitGroup
	for i, fn := range branches {
		children[i] = &Session{elapsed: start}
		wg.Add(1)
		go func(child *Session, fn func(*Session)) {
			defer wg.Done()
			fn(child)
		}(children[i], fn)
	}
	wg.Wait()
	end := start
	for _, c := range children {
		if e := c.Elapsed(); e > end {
			end = e
		}
	}
	s.advanceTo(end)
}

// ParallelN runs fn(i, child) for i in [0, n) with at most width
// branches in flight at a time, modelling a worker pool: the virtual
// timeline advances as if the n tasks were executed by width parallel
// workers (each wave takes the max of its branch durations). If width
// <= 0 it defaults to n.
func (s *Session) ParallelN(n, width int, fn func(int, *Session)) {
	if n <= 0 {
		return
	}
	if width <= 0 || width > n {
		width = n
	}
	for base := 0; base < n; base += width {
		count := width
		if base+count > n {
			count = n - base
		}
		branches := make([]func(*Session), count)
		for j := 0; j < count; j++ {
			i := base + j
			branches[j] = func(child *Session) { fn(i, child) }
		}
		s.Parallel(branches...)
	}
}

type sessionKey struct{}

// With returns a context carrying the session. Store instrumentation
// charges request latency to the session found in the context; when no
// session is present latency accounting is skipped.
func With(ctx context.Context, s *Session) context.Context {
	return context.WithValue(ctx, sessionKey{}, s)
}

// From extracts the session carried by ctx, or nil if none.
func From(ctx context.Context) *Session {
	s, _ := ctx.Value(sessionKey{}).(*Session)
	return s
}

// Charge adds d to the session carried by ctx, if any.
func Charge(ctx context.Context, d time.Duration) {
	From(ctx).Add(d)
}
