package simtime

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestVirtualClockAdvance(t *testing.T) {
	c := NewVirtualClock()
	if got := c.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want epoch %v", got, Epoch)
	}
	c.Advance(time.Minute)
	if got := c.Now(); !got.Equal(Epoch.Add(time.Minute)) {
		t.Fatalf("after Advance: Now() = %v", got)
	}
	c.Advance(-time.Hour) // ignored
	if got := c.Now(); !got.Equal(Epoch.Add(time.Minute)) {
		t.Fatalf("negative Advance moved the clock: %v", got)
	}
}

func TestVirtualClockConcurrent(t *testing.T) {
	c := NewVirtualClock()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Advance(time.Millisecond)
		}()
	}
	wg.Wait()
	if got := c.Now(); !got.Equal(Epoch.Add(50 * time.Millisecond)) {
		t.Fatalf("concurrent advances lost: %v", got)
	}
}

func TestRealClock(t *testing.T) {
	var c RealClock
	before := time.Now()
	got := c.Advance(time.Hour)
	if got.Before(before) || time.Since(got) > time.Minute {
		t.Fatalf("RealClock.Advance returned %v", got)
	}
}

func TestSessionSequentialAdd(t *testing.T) {
	s := NewSession()
	s.Add(10 * time.Millisecond)
	s.Add(5 * time.Millisecond)
	s.Add(-time.Second) // ignored
	if got := s.Elapsed(); got != 15*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 15ms", got)
	}
}

func TestNilSessionIsSafe(t *testing.T) {
	var s *Session
	s.Add(time.Second)
	if got := s.Elapsed(); got != 0 {
		t.Fatalf("nil session Elapsed = %v", got)
	}
}

func TestParallelTakesMax(t *testing.T) {
	s := NewSession()
	s.Add(time.Millisecond)
	s.Parallel(
		func(b *Session) { b.Add(30 * time.Millisecond) },
		func(b *Session) { b.Add(70 * time.Millisecond) },
		func(b *Session) { b.Add(10 * time.Millisecond) },
	)
	if got := s.Elapsed(); got != 71*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 71ms (1ms + max branch)", got)
	}
}

func TestParallelNestedChains(t *testing.T) {
	s := NewSession()
	s.Parallel(
		func(b *Session) {
			b.Add(10 * time.Millisecond)
			b.Parallel(
				func(c *Session) { c.Add(20 * time.Millisecond) },
				func(c *Session) { c.Add(5 * time.Millisecond) },
			)
		},
		func(b *Session) { b.Add(25 * time.Millisecond) },
	)
	if got := s.Elapsed(); got != 30*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 30ms", got)
	}
}

func TestParallelNWorkerPoolWaves(t *testing.T) {
	s := NewSession()
	// 6 tasks of 10ms each on 2 workers: 3 waves => 30ms.
	s.ParallelN(6, 2, func(i int, b *Session) { b.Add(10 * time.Millisecond) })
	if got := s.Elapsed(); got != 30*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 30ms", got)
	}
}

func TestParallelNDefaultsWidth(t *testing.T) {
	s := NewSession()
	s.ParallelN(8, 0, func(i int, b *Session) { b.Add(10 * time.Millisecond) })
	if got := s.Elapsed(); got != 10*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 10ms (single wave)", got)
	}
}

func TestParallelEmpty(t *testing.T) {
	s := NewSession()
	s.Parallel()
	s.ParallelN(0, 4, func(int, *Session) { t.Fatal("must not run") })
	if got := s.Elapsed(); got != 0 {
		t.Fatalf("Elapsed = %v", got)
	}
}

func TestContextPlumbing(t *testing.T) {
	s := NewSession()
	ctx := With(context.Background(), s)
	if From(ctx) != s {
		t.Fatal("From did not return the stored session")
	}
	Charge(ctx, 42*time.Millisecond)
	if got := s.Elapsed(); got != 42*time.Millisecond {
		t.Fatalf("Charge: Elapsed = %v", got)
	}
	if From(context.Background()) != nil {
		t.Fatal("From on empty context should be nil")
	}
	Charge(context.Background(), time.Second) // must not panic
}
