// Package insitu implements Rottnest's in-situ probing (Sections III
// and V-A of the paper): resolving index hits by reading individual
// data pages of the original Parquet files with ranged GETs, re-
// checking the predicate against the raw values, and applying the
// lake's deletion vectors. Because the index stores no copy of the
// data, this is the only data access a search performs.
package insitu

import (
	"context"
	"fmt"
	"sort"

	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/obs"
	"rottnest/internal/parquet"
)

// Match is one row that satisfied the predicate.
type Match struct {
	// Path is the lake-relative path of the file containing the row.
	Path string
	// Row is the file-global row index.
	Row int64
	// Value is the raw column value of the row.
	Value []byte
	// Score is the predicate's score (exact distance for vector
	// queries; 0 for exact-match queries).
	Score float64
}

// Predicate re-checks a candidate value. Return keep=false to discard
// (an index false positive); score is recorded on the match.
type Predicate func(value []byte) (keep bool, score float64)

// ProbePages fetches exactly the given pages of one file's column (a
// single parallel fan of ranged GETs), decodes them, and returns the
// rows passing the predicate, excluding rows masked by the deletion
// vector. Pages are deduplicated by ordinal.
func ProbePages(ctx context.Context, store objectstore.Store, key string, col parquet.Column, path string, pages []parquet.PageInfo, dv *lake.DeletionVector, pred Predicate) (matches []Match, err error) {
	if len(pages) == 0 {
		return nil, nil
	}
	ctx, span := obs.Start(ctx, "insitu.probe")
	defer span.End()
	span.SetAttr("path", path)
	defer func() { span.SetAttr("matches", len(matches)) }()
	// Dedup by ordinal, preserving ascending order. Sort a copy: the
	// caller's slice (often a shared page table) must not be reordered.
	pages = append([]parquet.PageInfo(nil), pages...)
	sort.Slice(pages, func(i, j int) bool { return pages[i].Ordinal < pages[j].Ordinal })
	uniq := pages[:1]
	for _, p := range pages[1:] {
		if p.Ordinal != uniq[len(uniq)-1].Ordinal {
			uniq = append(uniq, p)
		}
	}
	span.SetAttr("pages", len(uniq))
	decoded, err := parquet.ReadPages(ctx, store, key, col, uniq)
	if err != nil {
		return nil, fmt.Errorf("insitu: probe %s: %w", path, err)
	}
	var out []Match
	for _, page := range decoded {
		vals := page.Values.Bytes
		if vals == nil {
			return nil, fmt.Errorf("insitu: column %s of %s is not byte-typed", col.Name, path)
		}
		for i, v := range vals {
			row := page.Info.FirstRow + int64(i)
			if dv.Contains(uint32(row)) {
				continue
			}
			if keep, score := pred(v); keep {
				out = append(out, Match{Path: path, Row: row, Value: v, Score: score})
			}
		}
	}
	return out, nil
}

// ScanFile reads one file's entire column (the fallback for files no
// index covers yet, and the building block of the brute-force
// baseline) and returns the rows passing the predicate.
func ScanFile(ctx context.Context, store objectstore.Store, key string, column int, path string, dv *lake.DeletionVector, pred Predicate) (matches []Match, err error) {
	ctx, span := obs.Start(ctx, "insitu.scan")
	defer span.End()
	span.SetAttr("path", path)
	defer func() { span.SetAttr("matches", len(matches)) }()
	vals, _, _, err := parquet.ScanColumn(ctx, store, key, column)
	if err != nil {
		return nil, fmt.Errorf("insitu: scan %s: %w", path, err)
	}
	if vals.Bytes == nil && vals.Len() > 0 {
		return nil, fmt.Errorf("insitu: column %d of %s is not byte-typed", column, path)
	}
	var out []Match
	for i, v := range vals.Bytes {
		if dv.Contains(uint32(i)) {
			continue
		}
		if keep, score := pred(v); keep {
			out = append(out, Match{Path: path, Row: int64(i), Value: v, Score: score})
		}
	}
	return out, nil
}

// SortMatches orders matches deterministically by (path, row).
func SortMatches(matches []Match) {
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Path != matches[j].Path {
			return matches[i].Path < matches[j].Path
		}
		return matches[i].Row < matches[j].Row
	})
}

// SortByScore orders matches by ascending score, breaking ties by
// (path, row).
func SortByScore(matches []Match) {
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Score != matches[j].Score {
			return matches[i].Score < matches[j].Score
		}
		if matches[i].Path != matches[j].Path {
			return matches[i].Path < matches[j].Path
		}
		return matches[i].Row < matches[j].Row
	})
}
