package insitu

import (
	"context"
	"fmt"
	"sort"

	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/obs"
	"rottnest/internal/parquet"
	"rottnest/internal/postings"
	"rottnest/internal/simtime"
)

// ColumnRead describes how one column's values are obtained for a
// multi-predicate evaluation of one file: either an exact page set
// (the compound planner's surviving pages, fetched with ranged GETs)
// or a full column scan (the fallback when no index manifest supplies
// a page table for the column).
type ColumnRead struct {
	// Name is the column name, for error messages.
	Name string
	// Col is the schema column (used to decode fetched pages).
	Col parquet.Column
	// ColIdx is the column's schema ordinal (used by full scans).
	ColIdx int
	// Pages are the pages to fetch when Scan is false. Duplicate
	// ordinals are allowed; each page is fetched once.
	Pages []parquet.PageInfo
	// Scan selects the full-column scan path.
	Scan bool
}

// RowEval decides one row of a compound query given the row's value
// in each requested column, in ColumnRead order. A value is nil when
// the row fell outside that column's fetched pages (only possible for
// page-driven columns whose page set does not cover the row).
type RowEval func(row int64, vals [][]byte) (keep bool, score float64)

// colValues resolves row numbers to one column's values.
type colValues struct {
	// scan holds the whole column when scanned.
	scan parquet.ColumnValues
	// pages holds decoded pages sorted by FirstRow when page-driven.
	pages []parquet.Page
}

func (c *colValues) at(row int64) []byte {
	if c.scan.Bytes != nil || c.pages == nil {
		if row < 0 || row >= int64(len(c.scan.Bytes)) {
			return nil
		}
		return c.scan.Bytes[row]
	}
	i := sort.Search(len(c.pages), func(i int) bool {
		p := c.pages[i].Info
		return p.FirstRow+int64(p.NumValues) > row
	})
	if i >= len(c.pages) {
		return nil
	}
	p := c.pages[i]
	off := row - p.Info.FirstRow
	if off < 0 || off >= int64(len(p.Values.Bytes)) {
		return nil
	}
	return p.Values.Bytes[off]
}

// EvalPages is the compound in-situ evaluator: it reads each listed
// column of one file — page-driven columns with one parallel fan of
// ranged GETs, scan columns in full — then makes a single pass over
// the surviving row ranges, applying the deletion vector and the
// compound predicate once per row. It returns the matching rows (with
// Value taken from cols[output]) and the number of pages fetched on
// page-driven columns.
//
// Each page appears in at most one fetch regardless of how many
// predicates selected it: the caller is expected to pass the plan's
// already-intersected page sets, and duplicate ordinals within one
// ColumnRead are deduplicated here.
func EvalPages(ctx context.Context, store objectstore.Store, key, path string, cols []ColumnRead, rows []postings.RowRange, dv *lake.DeletionVector, eval RowEval, output int) (matches []Match, pagesFetched int, err error) {
	if len(cols) == 0 || output < 0 || output >= len(cols) {
		return nil, 0, fmt.Errorf("insitu: eval %s: bad column set", path)
	}
	if len(rows) == 0 {
		// The plan admitted no rows; nothing to read. Zero-row files
		// still take this path (an empty file cannot match).
		hasScan := false
		for _, c := range cols {
			if c.Scan {
				hasScan = true
			}
		}
		if !hasScan {
			return nil, 0, nil
		}
	}

	// Read every column, each under its own span so traces show the
	// page-driven fetches (insitu.probe) apart from full scans
	// (insitu.scan). Columns fan in parallel on the session: they are
	// independent ranged GETs of the same file.
	vals := make([]*colValues, len(cols))
	errs := make([]error, len(cols))
	fetched := make([]int, len(cols))
	session := simtime.From(ctx)
	branches := make([]func(*simtime.Session), len(cols))
	for i := range cols {
		cr := cols[i]
		idx := i
		branches[i] = func(s *simtime.Session) {
			bctx := ctx
			if s != nil {
				bctx = simtime.With(ctx, s)
			}
			if cr.Scan {
				sctx, span := obs.Start(bctx, "insitu.scan")
				defer span.End()
				span.SetAttr("path", path)
				span.SetAttr("column", cr.Name)
				v, _, _, err := parquet.ScanColumn(sctx, store, key, cr.ColIdx)
				if err != nil {
					errs[idx] = fmt.Errorf("insitu: scan %s: %w", path, err)
					return
				}
				if v.Bytes == nil && v.Len() > 0 {
					errs[idx] = fmt.Errorf("insitu: column %s of %s is not byte-typed", cr.Name, path)
					return
				}
				vals[idx] = &colValues{scan: v}
				return
			}
			pctx, span := obs.Start(bctx, "insitu.probe")
			defer span.End()
			span.SetAttr("path", path)
			span.SetAttr("column", cr.Name)
			// Dedup by ordinal on a copy: the caller's slice is often a
			// shared page table and must not be reordered.
			pages := append([]parquet.PageInfo(nil), cr.Pages...)
			sort.Slice(pages, func(a, b int) bool { return pages[a].Ordinal < pages[b].Ordinal })
			uniq := pages[:0]
			for _, p := range pages {
				if len(uniq) == 0 || p.Ordinal != uniq[len(uniq)-1].Ordinal {
					uniq = append(uniq, p)
				}
			}
			span.SetAttr("pages", len(uniq))
			fetched[idx] = len(uniq)
			if len(uniq) == 0 {
				vals[idx] = &colValues{pages: []parquet.Page{}}
				return
			}
			decoded, err := parquet.ReadPages(pctx, store, key, cr.Col, uniq)
			if err != nil {
				errs[idx] = fmt.Errorf("insitu: probe %s: %w", path, err)
				return
			}
			for _, p := range decoded {
				if p.Values.Bytes == nil && p.Values.Len() > 0 {
					errs[idx] = fmt.Errorf("insitu: column %s of %s is not byte-typed", cr.Name, path)
					return
				}
			}
			vals[idx] = &colValues{pages: decoded}
		}
	}
	if session == nil {
		for _, b := range branches {
			b(nil)
		}
	} else {
		session.Parallel(branches...)
	}
	for i := range cols {
		if errs[i] != nil {
			return nil, 0, errs[i]
		}
		pagesFetched += fetched[i]
	}

	// Single pass over the surviving rows: deletion vector, then the
	// compound predicate with every column's value at hand.
	rowVals := make([][]byte, len(cols))
	var out []Match
	for _, r := range rows {
		for row := r.Lo; row < r.Hi; row++ {
			if dv.Contains(uint32(row)) {
				continue
			}
			for i := range cols {
				rowVals[i] = vals[i].at(row)
			}
			if keep, score := eval(row, rowVals); keep {
				out = append(out, Match{Path: path, Row: row, Value: rowVals[output], Score: score})
			}
		}
	}
	return out, pagesFetched, nil
}
