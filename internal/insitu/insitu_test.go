package insitu

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
)

var schema = parquet.MustSchema(parquet.Column{Name: "body", Type: parquet.TypeByteArray})

func writeDocs(t *testing.T, store objectstore.Store, key string, docs []string) []parquet.PageInfo {
	t.Helper()
	b := parquet.NewBatch(schema)
	vals := make([][]byte, len(docs))
	for i, d := range docs {
		vals[i] = []byte(d)
	}
	b.Cols[0] = parquet.ColumnValues{Bytes: vals}
	_, tables, err := parquet.WriteFile(context.Background(), store, key, b, parquet.WriterOptions{RowGroupRows: 64, PageBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	return tables[0]
}

func contains(sub string) Predicate {
	return func(v []byte) (bool, float64) { return bytes.Contains(v, []byte(sub)), 0 }
}

func TestProbePagesFindsAndFilters(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	docs := make([]string, 300)
	for i := range docs {
		docs[i] = fmt.Sprintf("document number %d with filler text", i)
	}
	docs[137] = "NEEDLE here"
	pages := writeDocs(t, store, "f.rpq", docs)

	// Probe every page: one match.
	got, err := ProbePages(ctx, store, "f.rpq", schema.Columns[0], "f.rpq", pages, nil, contains("NEEDLE"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Row != 137 {
		t.Fatalf("got = %+v", got)
	}
	// Probe with a false-positive page set (all pages, no match).
	got, err = ProbePages(ctx, store, "f.rpq", schema.Columns[0], "f.rpq", pages, nil, contains("ABSENT"))
	if err != nil || len(got) != 0 {
		t.Fatalf("false positives survived: %v, %v", got, err)
	}
	// Empty page list.
	got, err = ProbePages(ctx, store, "f.rpq", schema.Columns[0], "f.rpq", nil, nil, contains("x"))
	if err != nil || got != nil {
		t.Fatalf("empty pages: %v, %v", got, err)
	}
}

func TestProbePagesDedupsAndAppliesDV(t *testing.T) {
	ctx := context.Background()
	inner := objectstore.NewMemStore(nil)
	docs := make([]string, 200)
	for i := range docs {
		docs[i] = fmt.Sprintf("row %04d", i)
	}
	pages := writeDocs(t, inner, "f.rpq", docs)
	store, metrics := objectstore.Instrument(inner, objectstore.DefaultS3Model())

	dv := lake.NewDeletionVector()
	dv.Add(10)

	// Duplicate the first page three times: one GET, not three.
	dup := []parquet.PageInfo{pages[0], pages[0], pages[0]}
	before := metrics.Snapshot()
	got, err := ProbePages(ctx, store, "f.rpq", schema.Columns[0], "f.rpq", dup, dv, contains("row 00"))
	if err != nil {
		t.Fatal(err)
	}
	if d := metrics.Snapshot().Sub(before); d.Gets != 1 {
		t.Fatalf("dedup failed: %d GETs", d.Gets)
	}
	for _, m := range got {
		if m.Row == 10 {
			t.Fatal("deleted row returned")
		}
	}
}

func TestProbePagesDoesNotReorderCallerSlice(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	docs := make([]string, 300)
	for i := range docs {
		docs[i] = fmt.Sprintf("document number %d with filler text", i)
	}
	pages := writeDocs(t, store, "f.rpq", docs)
	if len(pages) < 3 {
		t.Fatalf("want >= 3 pages, got %d", len(pages))
	}

	// Hand ProbePages a descending-ordinal slice (as an index might
	// emit refs); the probe must not reorder the caller's array.
	arg := append([]parquet.PageInfo(nil), pages...)
	for i, j := 0, len(arg)-1; i < j; i, j = i+1, j-1 {
		arg[i], arg[j] = arg[j], arg[i]
	}
	want := append([]parquet.PageInfo(nil), arg...)

	if _, err := ProbePages(ctx, store, "f.rpq", schema.Columns[0], "f.rpq", arg, nil, contains("document")); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if arg[i].Ordinal != want[i].Ordinal {
			t.Fatalf("caller slice reordered at %d: got ordinal %d, want %d", i, arg[i].Ordinal, want[i].Ordinal)
		}
	}
}

func TestScanFile(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	docs := []string{"alpha", "beta", "alphabet", "gamma"}
	writeDocs(t, store, "f.rpq", docs)
	dv := lake.NewDeletionVector()
	dv.Add(2) // mask "alphabet"
	got, err := ScanFile(ctx, store, "f.rpq", 0, "f.rpq", dv, contains("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Row != 0 || string(got[0].Value) != "alpha" {
		t.Fatalf("got = %+v", got)
	}
}

func TestSortHelpers(t *testing.T) {
	ms := []Match{
		{Path: "b", Row: 1, Score: 0.5},
		{Path: "a", Row: 9, Score: 0.1},
		{Path: "a", Row: 2, Score: 0.9},
	}
	SortMatches(ms)
	if ms[0].Path != "a" || ms[0].Row != 2 || ms[2].Path != "b" {
		t.Fatalf("SortMatches = %+v", ms)
	}
	SortByScore(ms)
	if ms[0].Score != 0.1 || ms[2].Score != 0.9 {
		t.Fatalf("SortByScore = %+v", ms)
	}
}
