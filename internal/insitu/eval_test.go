package insitu

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"rottnest/internal/lake"
	"rottnest/internal/objectstore"
	"rottnest/internal/parquet"
	"rottnest/internal/postings"
)

var twoColSchema = parquet.MustSchema(
	parquet.Column{Name: "id", Type: parquet.TypeFixedLenByteArray, TypeLen: 16},
	parquet.Column{Name: "body", Type: parquet.TypeByteArray},
)

func writeTwoCol(t *testing.T, store objectstore.Store, key string, n int) (ids [][]byte, bodies [][]byte, tables []parquet.PageTable) {
	t.Helper()
	b := parquet.NewBatch(twoColSchema)
	ids = make([][]byte, n)
	bodies = make([][]byte, n)
	for i := 0; i < n; i++ {
		id := make([]byte, 16)
		id[0], id[1] = byte(i>>8), byte(i)
		ids[i] = id
		bodies[i] = []byte(fmt.Sprintf("row %04d body text", i))
	}
	b.Cols[0] = parquet.ColumnValues{Bytes: ids}
	b.Cols[1] = parquet.ColumnValues{Bytes: bodies}
	_, tables, err := parquet.WriteFile(context.Background(), store, key, b, parquet.WriterOptions{RowGroupRows: 64, PageBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	return ids, bodies, tables
}

// TestEvalPagesMultiColumn drives the compound evaluator over two
// columns with different page boundaries: a page-driven body column
// intersected with a page-driven id column, restricted to a surviving
// row set, with a deletion vector applied.
func TestEvalPagesMultiColumn(t *testing.T) {
	ctx := context.Background()
	store := objectstore.NewMemStore(nil)
	ids, _, tables := writeTwoCol(t, store, "f.rpq", 300)

	dv := lake.NewDeletionVector()
	dv.Add(41)

	rows := []postings.RowRange{{Lo: 40, Hi: 44}, {Lo: 100, Hi: 101}}
	pagesFor := func(tbl parquet.PageTable) []parquet.PageInfo {
		var out []parquet.PageInfo
		for _, p := range tbl {
			if postings.RangesOverlap(rows, p.FirstRow, p.FirstRow+int64(p.NumValues)) {
				out = append(out, p)
			}
		}
		return out
	}
	cols := []ColumnRead{
		{Name: "id", Col: twoColSchema.Columns[0], ColIdx: 0, Pages: pagesFor(tables[0])},
		{Name: "body", Col: twoColSchema.Columns[1], ColIdx: 1, Pages: pagesFor(tables[1])},
	}
	eval := func(row int64, vals [][]byte) (bool, float64) {
		// id matches rows 40..43 and 100; body predicate excludes 42.
		if vals[0] == nil || vals[1] == nil {
			t.Fatalf("row %d: missing value (%v, %v)", row, vals[0], vals[1])
		}
		return bytes.Equal(vals[0][:2], ids[row][:2]) && !bytes.Contains(vals[1], []byte("0042")), 0
	}
	got, pages, err := EvalPages(ctx, store, "f.rpq", "f.rpq", cols, rows, dv, eval, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pages == 0 {
		t.Fatal("no pages fetched; scenario not exercised")
	}
	// Surviving rows 40,42,43,100 minus deleted 41 minus predicate-excluded 42.
	wantRows := []int64{40, 43, 100}
	if len(got) != len(wantRows) {
		t.Fatalf("got %d matches %v, want rows %v", len(got), got, wantRows)
	}
	for i, m := range got {
		if m.Row != wantRows[i] {
			t.Fatalf("match %d row = %d, want %d", i, m.Row, wantRows[i])
		}
		if want := fmt.Sprintf("row %04d body text", m.Row); string(m.Value) != want {
			t.Fatalf("match %d value = %q, want %q", i, m.Value, want)
		}
	}
}

// TestEvalPagesScanFallback mixes a page-driven column with a
// full-scan column and checks each page is fetched once.
func TestEvalPagesScanFallback(t *testing.T) {
	ctx := context.Background()
	inner := objectstore.NewMemStore(nil)
	_, _, tables := writeTwoCol(t, inner, "f.rpq", 200)
	store, metrics := objectstore.Instrument(inner, objectstore.DefaultS3Model())

	rows := []postings.RowRange{{Lo: 0, Hi: 200}}
	// Duplicate page infos: the fetch must dedup by ordinal.
	idPages := append(append([]parquet.PageInfo(nil), tables[0]...), tables[0]...)
	cols := []ColumnRead{
		{Name: "id", Col: twoColSchema.Columns[0], ColIdx: 0, Pages: idPages},
		{Name: "body", ColIdx: 1, Scan: true},
	}
	before := metrics.Snapshot()
	got, pages, err := EvalPages(ctx, store, "f.rpq", "f.rpq", cols, rows, nil, func(row int64, vals [][]byte) (bool, float64) {
		return bytes.Contains(vals[1], []byte("0007")), 0
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Row != 7 {
		t.Fatalf("got = %v, want one match at row 7", got)
	}
	if pages != len(tables[0]) {
		t.Fatalf("pagesFetched = %d, want %d (dedup)", pages, len(tables[0]))
	}
	delta := metrics.Snapshot().Sub(before)
	if delta.Gets == 0 {
		t.Fatal("no GETs observed")
	}

	// Empty surviving rows with only page-driven columns: no reads.
	before = metrics.Snapshot()
	got, pages, err = EvalPages(ctx, store, "f.rpq", "f.rpq", cols[:1], nil, nil, func(int64, [][]byte) (bool, float64) { return true, 0 }, 0)
	if err != nil || len(got) != 0 || pages != 0 {
		t.Fatalf("empty rows: got %v pages %d err %v", got, pages, err)
	}
	if delta := metrics.Snapshot().Sub(before); delta.Gets != 0 {
		t.Fatalf("empty rows issued %d GETs", delta.Gets)
	}
}
